# Chaos soak, run by ctest under the "chaos-soak" label (see the tests
# section of the root CMakeLists): the chaos-soak scenario - the SMT paper
# box under a dense seeded fault plan (hotplug churn, thermal spikes,
# P-state clamps) with the InvariantChecker armed on every tick - through
# eastool, checking the fault layer's determinism contracts byte-for-byte:
#
#   * request replay: the run's own --print-request file, fed back through
#     --request, reproduces the summary byte-for-byte;
#   * runner-thread independence: --threads 1, 2 and 8 must produce
#     byte-identical summaries (faults are injected engine-side, never from
#     runner workers);
#   * intra-worker independence: --intra-threads 0, 1 and 3 agree bit-for-bit
#     (the FaultPhase runs engine-sequentially before any package fan-out);
#   * skip-ahead neutrality: --no-skip-ahead must not change the bytes (a
#     pending fault bounds the quiescent span, so skipping never jumps one);
#   * fault-free cancellation: --faults none on the same scenario still runs
#     and emits no fault columns.
#
# A run that trips the InvariantChecker exits non-zero, so every invocation
# below is also a liveness check on the conservation/ledger invariants.
#
# Variables: EASTOOL (path to the binary), OUT_DIR (writable scratch dir).

set(scenario chaos-soak)

set(base_csv ${OUT_DIR}/chaos_soak_base.csv)
set(replay_csv ${OUT_DIR}/chaos_soak_replay.csv)
set(threads2_csv ${OUT_DIR}/chaos_soak_threads2.csv)
set(threads8_csv ${OUT_DIR}/chaos_soak_threads8.csv)
set(intra1_csv ${OUT_DIR}/chaos_soak_intra1.csv)
set(intra3_csv ${OUT_DIR}/chaos_soak_intra3.csv)
set(noskip_csv ${OUT_DIR}/chaos_soak_noskip.csv)
set(nofault_csv ${OUT_DIR}/chaos_soak_nofault.csv)
set(request_file ${OUT_DIR}/chaos_soak.req)
file(REMOVE ${base_csv} ${replay_csv} ${threads2_csv} ${threads8_csv}
     ${intra1_csv} ${intra3_csv} ${noskip_csv} ${nofault_csv} ${request_file})

function(run_chaos description out_csv)
  execute_process(
    COMMAND ${EASTOOL} --summary-csv ${out_csv} ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${description} failed (${result}):\n${stdout}${stderr}")
  endif()
  if(NOT EXISTS ${out_csv})
    message(FATAL_ERROR "${description}: summary CSV was not written")
  endif()
endfunction()

run_chaos("chaos baseline" ${base_csv} --scenario ${scenario} --threads 1)
run_chaos("chaos, 2 runner threads" ${threads2_csv} --scenario ${scenario} --threads 2)
run_chaos("chaos, 8 runner threads" ${threads8_csv} --scenario ${scenario} --threads 8)
run_chaos("chaos, 1 intra worker" ${intra1_csv} --scenario ${scenario} --intra-threads 1)
run_chaos("chaos, 3 intra workers" ${intra3_csv} --scenario ${scenario} --intra-threads 3)
run_chaos("chaos, skip-ahead off" ${noskip_csv} --scenario ${scenario} --no-skip-ahead)
run_chaos("chaos cancelled by --faults none" ${nofault_csv} --scenario ${scenario}
          --faults none)

# Replay from the canonical request file the run itself prints.
execute_process(
  COMMAND ${EASTOOL} --scenario ${scenario} --print-request
  RESULT_VARIABLE result
  OUTPUT_VARIABLE request_text
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "--print-request failed (${result}):\n${stderr}")
endif()
file(WRITE ${request_file} "${request_text}")
run_chaos("chaos replayed from its request file" ${replay_csv} --request ${request_file})

# The summary must be a faulted run: the fault columns exist and faults
# actually fired.
file(STRINGS ${base_csv} summary_lines)
string(REPLACE ";" "\n" summary_text "${summary_lines}")
foreach(key migrations throughput faults_fired offline_cpu_ticks)
  if(NOT summary_text MATCHES "${key},")
    message(FATAL_ERROR "chaos summary CSV is missing ${key}:\n${summary_text}")
  endif()
endforeach()
if(summary_text MATCHES "faults_fired,0\n")
  message(FATAL_ERROR "chaos run fired no faults:\n${summary_text}")
endif()

# The cancelled run must carry no fault columns at all (byte-compatibility
# of fault-free output is the point of the optional columns).
file(STRINGS ${nofault_csv} nofault_lines)
string(REPLACE ";" "\n" nofault_text "${nofault_lines}")
if(nofault_text MATCHES "faults_fired" OR nofault_text MATCHES "offline_cpu_ticks")
  message(FATAL_ERROR "--faults none still emitted fault columns:\n${nofault_text}")
endif()

function(expect_identical description file_a file_b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${file_a} ${file_b}
                  RESULT_VARIABLE result)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${description}: ${file_a} and ${file_b} differ")
  endif()
endfunction()

expect_identical("request replay" ${base_csv} ${replay_csv})
expect_identical("runner-thread independence (2)" ${base_csv} ${threads2_csv})
expect_identical("runner-thread independence (8)" ${base_csv} ${threads8_csv})
expect_identical("intra-worker independence (1)" ${base_csv} ${intra1_csv})
expect_identical("intra-worker independence (3)" ${base_csv} ${intra3_csv})
expect_identical("skip-ahead neutrality" ${base_csv} ${noskip_csv})

message(STATUS "chaos soak passed")
