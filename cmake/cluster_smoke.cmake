# Cluster smoke test, run by ctest under the "cluster-smoke" label (see the
# tests section of the root CMakeLists): the datacenter-consolidation
# scenario - 512 logical CPUs on the five-level 2:4:8:4:2 tree - at a
# reduced duration, exercising the sharded tick pipeline end to end and
# checking its determinism contracts byte-for-byte on the summary CSV:
#
#   * worker-count independence: --intra-threads 1 and --intra-threads 3
#     must produce byte-identical summaries;
#   * skip-ahead neutrality: --no-skip-ahead must not change the bytes;
#   * interleaved/sharded agreement: this scenario completes no tasks, so
#     cross-package lifecycle feedback never happens and the historical
#     interleaved loop (--intra-threads 0) coincides with the sharded
#     pipeline bit-for-bit.
#
# The duration is sized for sanitized Debug builds (ASan/UBSan/TSan legs run
# this label); the TIMEOUT on the ctest registration is the real guard.
#
# Variables: EASTOOL (path to the binary), OUT_DIR (writable scratch dir).

set(scenario datacenter-consolidation)
set(duration 2)

set(intra1_csv ${OUT_DIR}/cluster_smoke_intra1.csv)
set(intra3_csv ${OUT_DIR}/cluster_smoke_intra3.csv)
set(intra0_csv ${OUT_DIR}/cluster_smoke_intra0.csv)
set(noskip_csv ${OUT_DIR}/cluster_smoke_noskip.csv)
file(REMOVE ${intra1_csv} ${intra3_csv} ${intra0_csv} ${noskip_csv})

function(run_cluster description out_csv)
  execute_process(
    COMMAND ${EASTOOL} --scenario ${scenario} --duration-s ${duration}
            --summary-csv ${out_csv} ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${description} failed (${result}):\n${stdout}${stderr}")
  endif()
  if(NOT EXISTS ${out_csv})
    message(FATAL_ERROR "${description}: summary CSV was not written")
  endif()
endfunction()

run_cluster("sharded run (1 worker)" ${intra1_csv} --intra-threads 1)
run_cluster("sharded run (3 workers)" ${intra3_csv} --intra-threads 3)
run_cluster("interleaved run" ${intra0_csv} --intra-threads 0)
run_cluster("sharded run, skip-ahead off" ${noskip_csv} --intra-threads 3 --no-skip-ahead)

# The summary must be a real run of the 512-CPU machine, not a truncated one.
file(STRINGS ${intra1_csv} summary_lines)
list(LENGTH summary_lines summary_length)
if(summary_length LESS 5)
  message(FATAL_ERROR "cluster summary has ${summary_length} line(s); want the full summary")
endif()
string(REPLACE ";" "\n" summary_text "${summary_lines}")
foreach(key migrations completions throughput)
  if(NOT summary_text MATCHES "${key},")
    message(FATAL_ERROR "cluster summary CSV is missing ${key}:\n${summary_text}")
  endif()
endforeach()

function(expect_identical description file_a file_b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${file_a} ${file_b}
                  RESULT_VARIABLE result)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${description}: ${file_a} and ${file_b} differ")
  endif()
endfunction()

expect_identical("worker-count independence" ${intra1_csv} ${intra3_csv})
expect_identical("skip-ahead neutrality" ${intra3_csv} ${noskip_csv})
expect_identical("interleaved/sharded agreement" ${intra0_csv} ${intra1_csv})

message(STATUS "cluster smoke test passed")
