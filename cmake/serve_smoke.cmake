# Experiment-service smoke test, run by ctest under the "service" label
# (see the tests section of the root CMakeLists): the daemon end to end
# through the real binary and a real Unix-domain socket.
#
#   * `eastool serve` starts on a private socket and prints its ready line;
#   * `eastool submit --batch` drives a two-request batch (a seed sweep and
#     a single run) over the socket and writes the streamed records as
#     JSONL, reordered to file order;
#   * that file must be byte-identical to the offline replay - one
#     `eastool --request --jsonl` invocation per request, concatenated in
#     submission order - which is the service's determinism contract;
#   * a tagged submission must carry its tag into the JSONL;
#   * `eastool status` must answer with the expected counters;
#   * `eastool shutdown` must stop the daemon, which then exits 0.
#
# Variables: EASTOOL (path to the binary), OUT_DIR (writable scratch dir).

set(work_dir ${OUT_DIR}/serve_smoke)
file(REMOVE_RECURSE ${work_dir})
file(MAKE_DIRECTORY ${work_dir})
# Unix socket paths are length-limited (~100 chars), so the socket lives in
# /tmp keyed by this script's pid rather than under the build tree.
execute_process(COMMAND sh -c "echo $$" OUTPUT_VARIABLE smoke_pid
                OUTPUT_STRIP_TRAILING_WHITESPACE)
set(socket /tmp/eas_serve_smoke_${smoke_pid}.sock)
file(REMOVE ${socket})

set(serve_log ${work_dir}/serve.log)
set(batch_file ${work_dir}/batch.txt)
set(serve_jsonl ${work_dir}/serve.jsonl)
set(offline_jsonl ${work_dir}/offline.jsonl)

set(request_a "name = sweep-a; topology = 1:2:1; workload = hot:2; duration-s = 2; seed = 5; runs = 2")
set(request_b "name = solo-b; tag = smoke-lane; topology = 1:2:1; workload = hot:2; duration-s = 2; seed = 9")
file(WRITE ${batch_file} "${request_a}\n${request_b}\n")

# --- start the daemon in the background and wait for its ready line ----------

execute_process(
  COMMAND sh -c "'${EASTOOL}' serve --socket '${socket}' --queue-depth 8 --threads 2 > '${serve_log}' 2>&1 & echo $!"
  OUTPUT_VARIABLE daemon_pid
  OUTPUT_STRIP_TRAILING_WHITESPACE
  RESULT_VARIABLE start_result)
if(NOT start_result EQUAL 0 OR daemon_pid STREQUAL "")
  message(FATAL_ERROR "could not start eastool serve")
endif()

function(stop_daemon)
  execute_process(COMMAND sh -c "kill ${daemon_pid} 2>/dev/null || true")
endfunction()

set(ready FALSE)
foreach(attempt RANGE 100)
  if(EXISTS ${serve_log})
    file(READ ${serve_log} log_text)
    if(log_text MATCHES "serving on")
      set(ready TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT ready)
  stop_daemon()
  file(READ ${serve_log} log_text)
  message(FATAL_ERROR "eastool serve never became ready:\n${log_text}")
endif()

# --- submit the batch over the socket ----------------------------------------

execute_process(
  COMMAND ${EASTOOL} submit --socket ${socket} --batch ${batch_file} --jsonl ${serve_jsonl}
  RESULT_VARIABLE submit_result
  OUTPUT_VARIABLE submit_stdout
  ERROR_VARIABLE submit_stderr)
if(NOT submit_result EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "eastool submit failed (${submit_result}):\n${submit_stdout}${submit_stderr}")
endif()
if(NOT submit_stderr MATCHES "3 records from 2 submissions")
  stop_daemon()
  message(FATAL_ERROR "submit record accounting off:\n${submit_stdout}${submit_stderr}")
endif()

# --- offline replay: one eastool --request per request, concatenated ---------

# The request texts contain semicolons, so they travel as single quoted
# arguments, never through CMake lists (which would split them).
function(replay_offline index request_text)
  set(request_file ${work_dir}/request_${index}.txt)
  set(part_jsonl ${work_dir}/offline_${index}.jsonl)
  file(WRITE ${request_file} "${request_text}\n")
  execute_process(
    COMMAND ${EASTOOL} --request ${request_file} --jsonl ${part_jsonl}
    RESULT_VARIABLE offline_result
    OUTPUT_VARIABLE offline_stdout
    ERROR_VARIABLE offline_stderr)
  if(NOT offline_result EQUAL 0)
    stop_daemon()
    message(FATAL_ERROR "offline replay failed (${offline_result}):\n${offline_stdout}${offline_stderr}")
  endif()
  file(READ ${part_jsonl} part_text)
  set(offline_part_${index} "${part_text}" PARENT_SCOPE)
endfunction()

replay_offline(0 "${request_a}")
replay_offline(1 "${request_b}")
file(WRITE ${offline_jsonl} "${offline_part_0}${offline_part_1}")

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${serve_jsonl} ${offline_jsonl}
                RESULT_VARIABLE compare_result)
if(NOT compare_result EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "serve output is not byte-identical to the offline replay: "
                      "${serve_jsonl} vs ${offline_jsonl}")
endif()

# The tagged request's record must carry its tag, and only that record:
# three records, exactly one tag field. (The lines themselves hold
# semicolons, so this checks the raw text, not a CMake list of lines.)
file(READ ${serve_jsonl} serve_text)
string(REGEX MATCHALL "\"tag\": \"smoke-lane\"" tag_fields "${serve_text}")
list(LENGTH tag_fields tag_count)
if(NOT tag_count EQUAL 1)
  stop_daemon()
  message(FATAL_ERROR "want exactly 1 tagged record, found ${tag_count}:\n${serve_text}")
endif()

# --- status ------------------------------------------------------------------

execute_process(
  COMMAND ${EASTOOL} status --socket ${socket}
  RESULT_VARIABLE status_result
  OUTPUT_VARIABLE status_stdout
  ERROR_VARIABLE status_stderr)
if(NOT status_result EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "eastool status failed (${status_result}):\n${status_stdout}${status_stderr}")
endif()
foreach(expectation "\"queue_capacity\": 8" "\"completed_runs\": 3"
        "\"completed_submissions\": 2" "\"workers\": 2" "uptime_s" "runs_per_s")
  if(NOT status_stdout MATCHES "${expectation}")
    stop_daemon()
    message(FATAL_ERROR "status is missing `${expectation}`:\n${status_stdout}")
  endif()
endforeach()

# --- shutdown: the verb stops the daemon, which exits on its own -------------

execute_process(
  COMMAND ${EASTOOL} shutdown --socket ${socket}
  RESULT_VARIABLE shutdown_result
  OUTPUT_VARIABLE shutdown_stdout
  ERROR_VARIABLE shutdown_stderr)
if(NOT shutdown_result EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "eastool shutdown failed (${shutdown_result}):\n${shutdown_stdout}${shutdown_stderr}")
endif()

set(stopped FALSE)
foreach(attempt RANGE 100)
  execute_process(COMMAND sh -c "kill -0 ${daemon_pid} 2>/dev/null"
                  RESULT_VARIABLE alive_result)
  if(NOT alive_result EQUAL 0)
    set(stopped TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT stopped)
  stop_daemon()
  message(FATAL_ERROR "daemon still running after eastool shutdown")
endif()

file(READ ${serve_log} log_text)
if(NOT log_text MATCHES "service stopped")
  message(FATAL_ERROR "daemon did not log a clean stop:\n${log_text}")
endif()

message(STATUS "serve smoke test passed")
