# eastool smoke test, run by ctest (see the tests section of the root
# CMakeLists): one scenario end to end with both CSV outputs parsed
# non-empty, the request-file round trip (--print-request output must rerun
# to a byte-identical summary), per-run sweep outputs, batch mode, plus the
# CLI rejection paths (unknown flags, bad topology, unknown policy, unknown
# scenario) exiting non-zero.
#
# Variables: EASTOOL (path to the binary), OUT_DIR (writable scratch dir).

function(run_expect_failure description)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE result OUTPUT_QUIET ERROR_VARIABLE stderr)
  if(result EQUAL 0)
    message(FATAL_ERROR "${description}: expected a non-zero exit, got success")
  endif()
  if(stderr STREQUAL "")
    message(FATAL_ERROR "${description}: rejected silently (no stderr diagnostic)")
  endif()
endfunction()

set(trace_csv ${OUT_DIR}/eastool_smoke_trace.csv)
set(summary_csv ${OUT_DIR}/eastool_smoke_summary.csv)
file(REMOVE ${trace_csv} ${summary_csv})

# --- happy path: one scenario through the parallel runner ---------------------
execute_process(
  COMMAND ${EASTOOL} --scenario phase-shift --duration-s 20
          --trace-csv ${trace_csv} --summary-csv ${summary_csv}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "eastool --scenario phase-shift failed (${result}):\n${stdout}${stderr}")
endif()

file(STRINGS ${trace_csv} trace_lines)
list(LENGTH trace_lines trace_length)
if(trace_length LESS 2)
  message(FATAL_ERROR "trace CSV has ${trace_length} line(s); want a header plus data rows")
endif()
list(GET trace_lines 0 trace_header)
if(NOT trace_header MATCHES "^tick,cpu0")
  message(FATAL_ERROR "trace CSV header looks wrong: ${trace_header}")
endif()
list(GET trace_lines 1 trace_row)
if(NOT trace_row MATCHES "^[0-9]+,[0-9.]+")
  message(FATAL_ERROR "trace CSV first data row looks wrong: ${trace_row}")
endif()

file(STRINGS ${summary_csv} summary_lines)
list(LENGTH summary_lines summary_length)
if(summary_length LESS 5)
  message(FATAL_ERROR "summary CSV has ${summary_length} line(s); want the full summary")
endif()
string(REPLACE ";" "\n" summary_text "${summary_lines}")
foreach(key migrations completions throughput avg_throttled_fraction)
  if(NOT summary_text MATCHES "${key},")
    message(FATAL_ERROR "summary CSV is missing ${key}:\n${summary_text}")
  endif()
endforeach()

# --- governed happy path: the DVFS layer end to end ---------------------------
# thermal-stepdown on the capping scenario must run, report the governor and
# export the frequency columns; --governor none must be accepted and export
# none of them (the pre-DVFS summary format).
set(governed_csv ${OUT_DIR}/eastool_smoke_governed.csv)
file(REMOVE ${governed_csv})
execute_process(
  COMMAND ${EASTOOL} --scenario dvfs-vs-throttle --duration-s 20
          --summary-csv ${governed_csv}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "eastool --scenario dvfs-vs-throttle failed (${result}):\n${stdout}${stderr}")
endif()
if(NOT stdout MATCHES "governor:[ ]+thermal-stepdown")
  message(FATAL_ERROR "governed run does not report its governor:\n${stdout}")
endif()
file(READ ${governed_csv} governed_text)
foreach(key avg_frequency_cpu0 pstate_residency_cpu0_p0)
  if(NOT governed_text MATCHES "${key},")
    message(FATAL_ERROR "governed summary CSV is missing ${key}:\n${governed_text}")
  endif()
endforeach()

execute_process(
  COMMAND ${EASTOOL} --governor none --workload mixed:2 --duration-s 5
          --summary-csv ${governed_csv}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "eastool --governor none failed (${result}):\n${stdout}${stderr}")
endif()
file(READ ${governed_csv} ungoverned_text)
if(ungoverned_text MATCHES "avg_frequency")
  message(FATAL_ERROR "--governor none must not emit DVFS columns:\n${ungoverned_text}")
endif()

# --- --list-scenarios shows the catalogue ------------------------------------
execute_process(COMMAND ${EASTOOL} --list-scenarios RESULT_VARIABLE result
                OUTPUT_VARIABLE listing ERROR_QUIET)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "eastool --list-scenarios failed (${result})")
endif()
foreach(name paper-mixed paper-homogeneous paper-hot-task short-tasks phase-shift
        poisson-open-loop server-consolidation trace-replay dvfs-vs-throttle
        governor-comparison)
  if(NOT listing MATCHES "${name}")
    message(FATAL_ERROR "--list-scenarios is missing ${name}:\n${listing}")
  endif()
endforeach()

# --- --list-governors shows the registry --------------------------------------
execute_process(COMMAND ${EASTOOL} --list-governors RESULT_VARIABLE result
                OUTPUT_VARIABLE governors ERROR_QUIET)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "eastool --list-governors failed (${result})")
endif()
foreach(name none thermal-stepdown ondemand)
  if(NOT governors MATCHES "${name}")
    message(FATAL_ERROR "--list-governors is missing ${name}:\n${governors}")
  endif()
endforeach()

# --- request-file round trip --------------------------------------------------
# The canonical request file for a flag invocation must rerun to the exact
# summary bytes the flags produce - a request file fully reproduces a run.
set(flags_csv ${OUT_DIR}/eastool_smoke_flags.csv)
set(request_csv ${OUT_DIR}/eastool_smoke_request.csv)
set(request_file ${OUT_DIR}/eastool_smoke.req)
file(REMOVE ${flags_csv} ${request_csv} ${request_file})
execute_process(
  COMMAND ${EASTOOL} --topology 2:4:1 --policy eas --workload mixed:2
          --duration-s 8 --seed 5 --summary-csv ${flags_csv}
  RESULT_VARIABLE result ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "flag-driven run failed (${result}): ${stderr}")
endif()
execute_process(
  COMMAND ${EASTOOL} --topology 2:4:1 --policy eas --workload mixed:2
          --duration-s 8 --seed 5 --print-request
  RESULT_VARIABLE result OUTPUT_FILE ${request_file} ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "--print-request failed (${result}): ${stderr}")
endif()
execute_process(
  COMMAND ${EASTOOL} --request ${request_file} --summary-csv ${request_csv}
  RESULT_VARIABLE result ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "--request rerun failed (${result}): ${stderr}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${flags_csv} ${request_csv}
                RESULT_VARIABLE result)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "--request run is not byte-identical to the flag-driven run")
endif()

# --- per-run sweep outputs ----------------------------------------------------
# --runs N must keep every run: one summary row per run, per-run trace files
# (run 0 at FILE, run K at FILE.runK).
set(sweep_summary ${OUT_DIR}/eastool_smoke_sweep_summary.csv)
set(sweep_trace ${OUT_DIR}/eastool_smoke_sweep_trace.csv)
file(REMOVE ${sweep_summary} ${sweep_trace} ${sweep_trace}.run1)
execute_process(
  COMMAND ${EASTOOL} --scenario phase-shift --duration-s 10 --runs 2
          --summary-csv ${sweep_summary} --trace-csv ${sweep_trace}
  RESULT_VARIABLE result ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "--runs 2 sweep failed (${result}): ${stderr}")
endif()
file(STRINGS ${sweep_summary} sweep_lines)
list(LENGTH sweep_lines sweep_length)
if(NOT sweep_length EQUAL 3)
  message(FATAL_ERROR "sweep summary has ${sweep_length} line(s); want header + 2 run rows")
endif()
list(GET sweep_lines 0 sweep_header)
if(NOT sweep_header MATCHES "^run,name,seed,migrations,")
  message(FATAL_ERROR "sweep summary header looks wrong: ${sweep_header}")
endif()
list(GET sweep_lines 2 sweep_row)
if(NOT sweep_row MATCHES "^1,phase-shift/seed43,43,")
  message(FATAL_ERROR "sweep summary run-1 row looks wrong: ${sweep_row}")
endif()
foreach(trace_file ${sweep_trace} ${sweep_trace}.run1)
  if(NOT EXISTS ${trace_file})
    message(FATAL_ERROR "sweep trace file ${trace_file} was not written")
  endif()
endforeach()

# --- batch mode ---------------------------------------------------------------
set(batch_file ${OUT_DIR}/eastool_smoke_batch.req)
set(batch_jsonl ${OUT_DIR}/eastool_smoke_batch.jsonl)
file(WRITE ${batch_file}
     "# two requests, one per line\n"
     "scenario = paper-mixed; duration-s = 5\n"
     "scenario = paper-hot-task; duration-s = 5; seed = 9\n")
file(REMOVE ${batch_jsonl})
execute_process(
  COMMAND ${EASTOOL} --batch ${batch_file} --jsonl ${batch_jsonl}
  RESULT_VARIABLE result ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "--batch failed (${result}): ${stderr}")
endif()
file(STRINGS ${batch_jsonl} batch_lines)
list(LENGTH batch_lines batch_length)
if(NOT batch_length EQUAL 2)
  message(FATAL_ERROR "batch JSONL has ${batch_length} line(s); want one per request")
endif()
list(GET batch_lines 1 batch_row)
if(NOT batch_row MATCHES "\"request\": \"name = paper-hot-task; scenario = paper-hot-task")
  message(FATAL_ERROR "batch JSONL row does not embed its request: ${batch_row}")
endif()

# --batch --print-request emits the canonical batch file (one request per
# line) and that file must replay through --batch.
set(batch_canon ${OUT_DIR}/eastool_smoke_batch_canon.req)
file(REMOVE ${batch_canon})
execute_process(
  COMMAND ${EASTOOL} --batch ${batch_file} --print-request
  RESULT_VARIABLE result OUTPUT_FILE ${batch_canon} ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "--batch --print-request failed (${result}): ${stderr}")
endif()
execute_process(
  COMMAND ${EASTOOL} --batch ${batch_canon} --jsonl ${batch_jsonl}
  RESULT_VARIABLE result ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "canonical batch file did not replay (${result}): ${stderr}")
endif()
file(STRINGS ${batch_jsonl} batch_lines)
list(LENGTH batch_lines batch_length)
if(NOT batch_length EQUAL 2)
  message(FATAL_ERROR "canonical batch replay wrote ${batch_length} record(s); want 2")
endif()

# --- rejection paths ----------------------------------------------------------
run_expect_failure("unknown flag" ${EASTOOL} --polcy eas --duration-s 1)
run_expect_failure("request flag with --batch"
                   ${EASTOOL} --batch ${batch_file} --seed 3)
run_expect_failure("--request with --batch"
                   ${EASTOOL} --batch ${batch_file} --request ${request_file})
run_expect_failure("missing request file" ${EASTOOL} --request ${OUT_DIR}/no_such.req)
run_expect_failure("bad seed value" ${EASTOOL} --seed 4z2 --duration-s 1)
run_expect_failure("bad topology" ${EASTOOL} --topology junk:0:x --duration-s 1)
run_expect_failure("zero-CPU topology" ${EASTOOL} --topology 1:0:1 --duration-s 1)
run_expect_failure("unknown policy" ${EASTOOL} --policy no_such_policy --duration-s 1)
run_expect_failure("unknown scenario" ${EASTOOL} --scenario no-such-scenario --duration-s 1)
run_expect_failure("bad workload" ${EASTOOL} --workload bogus:3 --duration-s 1)
run_expect_failure("unknown governor" ${EASTOOL} --governor no-such-governor --duration-s 1)
run_expect_failure("unknown governor over scenario"
                   ${EASTOOL} --scenario paper-mixed --governor bogus --duration-s 1)

message(STATUS "eastool smoke test passed")
