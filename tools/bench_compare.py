#!/usr/bin/env python3
"""Benchmark regression gate: diff a fresh BENCH_*.json against a committed baseline.

Usage:
    bench_compare.py --baseline bench/baselines/BENCH_tick_hot_path.json \
                     --current build/BENCH_tick_hot_path.json [--threshold 0.25]

Compares the throughput-style metrics of the known bench formats and
exits non-zero when the current run regresses by more than the threshold
(default 25%, overridable via --threshold or the BENCH_COMPARE_THRESHOLD
environment variable - CI runners are noisy, calibrate there, not here):

  tick_hot_path:  engine_ticks_per_second per named row (the population rows
                  plus the sparse_idle skip-ahead row), and every row's
                  bit-identity cross-check (engine vs scan, skip vs naive)
                  must still report identical states.
  sweep_scaling:  single_thread_ticks_per_second, and the sweep must still be
                  deterministic across thread counts.
  governor_sweep: simulated throughput (work-ticks/s) per governor x policy
                  row - deterministic simulation output, so rows are
                  comparable across machines and gate at the tighter of the
                  global threshold and 1% - plus the DVFS-columns presence
                  rule (governed rows carry avg_frequency_cpu*, pure-hlt
                  "none" rows must not).
  cluster_scale:  ticks/s per tick-pipeline row and balance passes/s per
                  balance row at 1k CPUs, plus the worker-count bit-identity
                  and sublinear-balance invariants.
  serve_throughput: requests/s per execution-path row (warm in-process
                  service, warm socket daemon, fork-per-run eastool), plus
                  every row's byte-identity cross-check against the offline
                  JSONL replay.
  chaos_overhead: chaos-soak under three fault plans - fault-free,
                  armed-but-never-firing, full chaos. Simulated throughput
                  gates tight (deterministic rows), wall ticks/s gates at
                  the global threshold (the armed-idle wall rate is the
                  fault layer's idle cost), plus three invariants: the
                  armed-idle run leaves physics bit-identical, the chaos
                  run actually fires faults, and the fault-free row never
                  grows fault columns.

Row sets compare asymmetrically: a baseline row missing from the current run
fails (a gated metric disappeared), while a current-run row absent from the
baseline is warned and skipped - new rows gate only after the baseline is
refreshed.

Files are either one JSON document (tick_hot_path, sweep_scaling) or JSONL
as the result sinks write it (governor_sweep: a header object with "bench",
one object per run keyed by "name", optional trailer objects merged into
the header).

Only regressions gate; improvements are reported and pass. To refresh a
baseline after an intentional change, copy the current file over the
committed one (the gate prints the exact command).

Stdlib only - no third-party imports.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        sys.exit(f"bench_compare: cannot read {path}: {error}")
    try:
        return json.loads(text)
    except ValueError:
        pass  # not a single document - try JSONL
    merged = {"runs": []}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except ValueError as error:
            sys.exit(f"bench_compare: {path}:{number}: bad JSON line: {error}")
        if "name" in obj:
            merged["runs"].append(obj)
        else:
            merged.update(obj)  # header/trailer metadata
    if "bench" not in merged:
        sys.exit(f"bench_compare: {path} is neither a bench JSON document nor bench JSONL")
    return merged


class Gate:
    """Collects metric comparisons and renders the verdict."""

    def __init__(self, threshold):
        self.threshold = threshold
        self.failures = []
        self.lines = []
        self.rates_compared = 0

    def config(self, name, baseline, current):
        """Run-configuration fields must match exactly - ticks/s measured
        under different flags are not comparable, and silently gating
        nothing is worse than failing loudly."""
        self.lines.append(f"  config {name}: baseline {baseline}, current {current}")
        if baseline != current:
            self.failures.append(
                f"config mismatch on '{name}': baseline ran with {baseline}, current with "
                f"{current} - align the bench flags or refresh the baseline"
            )

    def rows(self, baseline_names, current_names):
        """Row-set comparison, asymmetric on purpose: a row the baseline
        gated that vanished from the current run is a failure (a metric
        silently stopped being measured), but a row the current run added
        that the baseline has never seen is only warned and skipped - a
        bench growing a new row must not fail every checkout until the
        baseline is refreshed."""
        baseline_names = set(baseline_names)
        current_names = set(current_names)
        missing = sorted(baseline_names - current_names)
        if missing:
            self.failures.append(
                f"rows missing from current run: {', '.join(missing)} - "
                f"a gated metric is no longer measured"
            )
        for name in sorted(current_names - baseline_names):
            self.lines.append(
                f"  row '{name}': not in baseline; skipped (refresh the baseline to gate it)"
            )

    def rate(self, name, baseline, current, threshold=None):
        """`threshold` overrides the gate-wide tolerance for this metric -
        deterministic metrics gate much tighter than wall-clock ones."""
        if baseline <= 0:
            self.lines.append(f"  {name}: baseline {baseline:.0f} not positive; skipped")
            return
        if threshold is None:
            threshold = self.threshold
        self.rates_compared += 1
        change = (current - baseline) / baseline
        verdict = "ok"
        if change < -threshold:
            verdict = "REGRESSION"
            self.failures.append(
                f"{name}: {baseline:.0f} -> {current:.0f} ({change:+.1%}, "
                f"limit -{threshold:.0%})"
            )
        self.lines.append(f"  {name}: {baseline:.0f} -> {current:.0f} ({change:+.1%}) {verdict}")

    def invariant(self, name, holds):
        self.lines.append(f"  {name}: {'ok' if holds else 'VIOLATED'}")
        if not holds:
            self.failures.append(f"{name} no longer holds")


def compare_tick_hot_path(baseline, current, gate):
    # Wall-clock ticks/s depend on the measurement conditions, so the run
    # configuration must match before any rate is comparable.
    for field in ("ticks", "sparse_ticks", "threads", "build_type"):
        gate.config(field, baseline.get(field), current.get(field))
    base_rows = {row["name"]: row for row in baseline.get("populations", [])}
    gate.rows(base_rows, [row["name"] for row in current.get("populations", [])])
    for row in current.get("populations", []):
        name = row["name"]
        base = base_rows.get(name)
        if base is None:
            continue  # warned and skipped via the rows check
        gate.rate(
            f"engine_ticks_per_second[{name}]",
            base["engine_ticks_per_second"],
            row["engine_ticks_per_second"],
        )
        gate.invariant(f"bit-identical states[{name}]", row.get("identical", False))


def compare_sweep_scaling(baseline, current, gate):
    # threads and build_type shape the wall-clock numbers as much as the
    # sweep shape does - a debug run or a different thread count against a
    # release baseline must refuse, not silently "pass".
    for field in ("runs", "duration_ticks", "threads", "build_type"):
        gate.config(field, baseline.get(field), current.get(field))
    gate.rate(
        "single_thread_ticks_per_second",
        baseline["single_thread_ticks_per_second"],
        current["single_thread_ticks_per_second"],
    )
    gate.invariant(
        "deterministic_across_threads", current.get("deterministic_across_threads", False)
    )


def compare_governor_sweep(baseline, current, gate):
    # Simulated throughput is deterministic, so rows gate at the tighter of
    # the global threshold and 1% - enough slack to absorb floating-point
    # jitter across compilers, tight enough that a real behavioral shift
    # (the wall-clock benches' 25% would hide a -20% scheduling regression)
    # fails loudly.
    threshold = min(gate.threshold, 0.01)
    for field in ("scenario", "duration_ticks"):
        gate.config(field, baseline.get(field), current.get(field))
    base_rows = {row["name"]: row for row in baseline.get("runs", [])}
    gate.rows(base_rows, [row["name"] for row in current.get("runs", [])])
    for row in current.get("runs", []):
        name = row["name"]
        base = base_rows.get(name)
        if base is None:
            continue  # warned and skipped via the rows check
        gate.rate(f"throughput[{name}]", base["throughput"], row["throughput"], threshold)
        # The DVFS presence rule: governed rows carry the avg_frequency
        # columns, pure-hlt "none" rows must not grow them.
        governed = not name.startswith("none/")
        gate.invariant(
            f"dvfs columns {'present' if governed else 'absent'}[{name}]",
            ("avg_frequency_cpu0" in row) == governed,
        )


def compare_cluster_scale(baseline, current, gate):
    # Wall-clock ticks/s and balance passes/s, so the run shape must match.
    # The pool_on speedup is a property of the measuring machine's core
    # count, not of the code - it is informational here; what gates is each
    # row's own throughput against the baseline plus the two invariants the
    # bench asserts (worker-count bit-identity, sublinear balance scaling).
    for field in ("ticks", "intra_threads", "balance_sweeps", "threads", "build_type"):
        gate.config(field, baseline.get(field), current.get(field))
    base_rows = {row["name"]: row for row in baseline.get("rows", [])}
    gate.rows(base_rows, [row["name"] for row in current.get("rows", [])])
    for row in current.get("rows", []):
        name = row["name"]
        base = base_rows.get(name)
        if base is None:
            continue  # warned and skipped via the rows check
        if "ticks_per_second" in row:
            gate.rate(
                f"ticks_per_second[{name}]",
                base.get("ticks_per_second", 0),
                row["ticks_per_second"],
            )
            gate.invariant(f"bit-identical states[{name}]", row.get("identical", False))
        elif "passes_per_second" in row:
            gate.rate(
                f"passes_per_second[{name}]",
                base.get("passes_per_second", 0),
                row["passes_per_second"],
            )
        elif name == "balance_scaling":
            gate.invariant("balance per-pass cost sublinear", row.get("sublinear", False))


def compare_serve_throughput(baseline, current, gate):
    # Requests/s through the resident service (in-process and over the
    # socket) vs fork-per-run eastool. All three are wall-clock, so the run
    # shape must match; what gates beyond the rates is the byte-identity
    # cross-check every row carries - a "faster" serve path that streams
    # different bytes than the offline replay is a correctness bug, not a
    # win.
    for field in ("requests", "duration_ms", "threads", "build_type"):
        gate.config(field, baseline.get(field), current.get(field))
    base_rows = {row["name"]: row for row in baseline.get("rows", [])}
    gate.rows(base_rows, [row["name"] for row in current.get("rows", [])])
    for row in current.get("rows", []):
        name = row["name"]
        base = base_rows.get(name)
        if base is None:
            continue  # warned and skipped via the rows check
        gate.rate(
            f"requests_per_second[{name}]",
            base["requests_per_second"],
            row["requests_per_second"],
        )
        gate.invariant(
            f"byte-identical records[{name}]", row.get("identical", False)
        )


def compare_chaos_overhead(baseline, current, gate):
    # Three rows over the same scenario and horizon. Simulated throughput is
    # deterministic, so it gates at the tighter of the global threshold and
    # 1% (same rationale as the governor sweep); wall ticks/s is
    # machine-bound and gates at the global threshold - the armed-idle row's
    # wall rate is the one that catches a fault layer that starts costing
    # ticks while doing nothing.
    deterministic = min(gate.threshold, 0.01)
    for field in ("scenario", "duration_ticks", "threads", "build_type"):
        gate.config(field, baseline.get(field), current.get(field))
    base_rows = {row["name"]: row for row in baseline.get("runs", [])}
    gate.rows(base_rows, [row["name"] for row in current.get("runs", [])])
    for row in current.get("runs", []):
        name = row["name"]
        base = base_rows.get(name)
        if base is None:
            continue  # warned and skipped via the rows check
        gate.rate(f"throughput[{name}]", base["throughput"], row["throughput"], deterministic)
        gate.rate(
            f"wall_ticks_per_second[{name}]",
            base["wall_ticks_per_second"],
            row["wall_ticks_per_second"],
        )
        if name == "armed-idle":
            gate.invariant(
                "armed-but-idle plan leaves physics identical",
                row.get("identical_physics", False),
            )
            gate.invariant("armed-idle fires nothing", row.get("faults_fired", -1) == 0)
        elif name == "chaos":
            gate.invariant("chaos plan fires faults", row.get("faults_fired", 0) > 0)
        elif name == "fault-free":
            gate.invariant("fault columns absent[fault-free]", "faults_fired" not in row)


COMPARATORS = {
    "tick_hot_path": compare_tick_hot_path,
    "sweep_scaling": compare_sweep_scaling,
    "governor_sweep": compare_governor_sweep,
    "cluster_scale": compare_cluster_scale,
    "serve_throughput": compare_serve_throughput,
    "chaos_overhead": compare_chaos_overhead,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_COMPARE_THRESHOLD", "0.25")),
        help="maximum tolerated relative regression (default 0.25 = 25%%)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    bench = current.get("bench")
    if bench != baseline.get("bench"):
        sys.exit(
            f"bench_compare: baseline is '{baseline.get('bench')}' "
            f"but current is '{bench}' - wrong file pairing?"
        )
    comparator = COMPARATORS.get(bench)
    if comparator is None:
        sys.exit(f"bench_compare: no comparator for bench '{bench}' "
                 f"(known: {', '.join(sorted(COMPARATORS))})")

    gate = Gate(args.threshold)
    comparator(baseline, current, gate)
    if gate.rates_compared == 0:
        gate.failures.append("no throughput metrics were compared - the gate gated nothing")

    print(f"bench_compare: {bench} (threshold {gate.threshold:.0%})")
    for line in gate.lines:
        print(line)
    if gate.failures:
        print("\nFAIL: benchmark regression gate")
        for failure in gate.failures:
            print(f"  - {failure}")
        print(
            f"\nIf intentional, refresh the baseline:\n"
            f"  cp {args.current} {args.baseline}"
        )
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
