#!/usr/bin/env python3
"""easlint: project-specific static analysis for the energy-aware scheduler.

The simulator's reproducibility claims rest on invariants no general linter
knows about: every run must be bit-identical across thread counts, worker
counts and skip-ahead modes. easlint enforces the whole class at lint time
instead of one instance at test time. Three check families:

  determinism        In src/, wall-clock reads, rand()/srand()/
                     std::random_device and std::<random> engines are banned
                     (eas::Rng, explicitly seeded, is the one sanctioned
                     randomness source); iteration over std::unordered_{map,
                     set} is flagged (iteration order is
                     implementation-defined, so a result-affecting loop over
                     one breaks bit-identity); declaring an associative
                     container keyed by a pointer is flagged (address-keyed
                     order changes run to run - the historical seed case was
                     BalanceAggregateCache keying group aggregates by
                     `const CpuGroup*`).
  shard-confinement  Functions annotated EAS_SHARD_LOCAL (src/base/
                     annotations.h) run inside the package-parallel tick
                     region and must never reach an EAS_CROSS_SHARD function
                     - directly or through any call chain within src/. The
                     checker builds a token-level call graph and reports the
                     offending chain.
  registry/metric    Registered scenario and governor names are lowercase
  hygiene            kebab-case, balance-policy names lowercase snake_case
                     (the established naming rules); the metric schema is
                     defined exactly once - MetricValue construction and
                     RegisterScalar/RegisterSeries calls outside
                     src/sim/metrics.cc are flagged so every summary column
                     keeps flowing through MetricRegistry.

Engines
-------
easlint is driven from the build's compile_commands.json (configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON; the project CMakeLists sets it). When the
libclang Python bindings are importable (`python3-clang` + libclang), the
determinism family runs as real AST matching over each translation unit, with
the token engine covering headers; otherwise every check runs on the
token engine. The token engine is a complete, documented fallback - a
comment/string-blanked line-exact scan - so an environment without libclang
still enforces every rule; nothing is ever silently skipped. The report
header names the engine that ran (`--engine ast` errors out if libclang is
unavailable rather than degrade quietly; the default `auto` degrades loudly).

Suppressions
------------
    some_call();  // easlint: allow(rule-name) -- why this is sound

on the offending line or the line directly above. The justification after
`--` is mandatory: a bare allow() suppresses the original finding but is
itself reported as `suppression-justification`. Unknown rule names in
allow() are reported too.

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import json
import os
import re
import sys

RULES = (
    "determinism-wall-clock",
    "determinism-raw-rand",
    "determinism-unseeded-prng",
    "determinism-unordered-iter",
    "determinism-pointer-key",
    "shard-confinement",
    "fault-rng-isolation",
    "registry-naming",
    "metric-schema",
    "suppression-justification",
)

# Rules the determinism family comprises (the set the AST engine can take
# over from the token engine for .cc translation units).
DETERMINISM_RULES = {
    "determinism-wall-clock",
    "determinism-raw-rand",
    "determinism-unseeded-prng",
    "determinism-unordered-iter",
    "determinism-pointer-key",
}

# The one source file allowed to construct MetricValue / register builtin
# metric families: the schema single source of truth.
METRIC_SCHEMA_SOURCE = os.path.join("src", "sim", "metrics.cc")

SUPPRESS_RE = re.compile(r"//\s*easlint:\s*allow\(([\w,\s-]+)\)(\s*--\s*(\S.*))?")

# C++ keywords and cast-like tokens that look like calls in `name (`.
NOT_CALLS = frozenset(
    """if for while switch catch sizeof alignof alignas decltype return new delete
    static_cast dynamic_cast reinterpret_cast const_cast static_assert assert
    defined throw noexcept operator""".split()
)

# Method names too generic to traverse in the shard-confinement call graph:
# they are overwhelmingly std:: members (begin, size, ...) and following every
# same-named definition in src/ would only manufacture collisions. A genuine
# cross-shard accessor must not hide behind one of these names - keep
# annotated API names distinctive.
GENERIC_NAMES = frozenset(
    """begin end cbegin cend rbegin rend size empty clear resize reserve
    push_back pop_back emplace_back emplace front back at data find count
    insert erase get reset release str c_str swap min max abs first second
    value has_value push pop top""".split()
)

WALL_CLOCK_RES = (
    re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b"),
    re.compile(r"\bgettimeofday\s*\("),
    re.compile(r"\bclock_gettime\s*\("),
    re.compile(r"\bstd\s*::\s*time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
    re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
    re.compile(r"\bstd\s*::\s*clock\s*\(\s*\)"),
    re.compile(r"(?<![\w:.>])clock\s*\(\s*\)"),
)

RAW_RAND_RES = (
    re.compile(r"\bstd\s*::\s*s?rand\s*\("),
    re.compile(r"(?<![\w:.>])s?rand\s*\("),
    re.compile(r"\brandom_device\b"),
    re.compile(r"\b(?:lrand48|drand48|mrand48)\s*\("),
)

STD_ENGINE_RE = re.compile(
    r"\b(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux(?:24|48)(?:_base)?|knuth_b|subtract_with_carry_engine|"
    r"linear_congruential_engine|mersenne_twister_engine)\b"
)

ASSOC_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?(unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset|map|set|multimap|multiset)\s*<"
)

IDENT_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

# Fault-layer RNG isolation: a chaos schedule must be a function of the
# fault spec text alone. Drawing from a shared RNG accessor (state.rng(),
# env->rng()) couples fault timing to workload evolution; a
# default-constructed Rng hides the seed. Both break replay.
FAULT_SHARED_RNG_RE = re.compile(r"(?:\.|->)\s*rng\s*\(")
FAULT_UNSEEDED_RNG_RE = re.compile(r"\b(?:eas\s*::\s*)?Rng\s+\w+\s*;")


def die(message):
    sys.stderr.write(message + "\n")
    sys.exit(2)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self, root):
        path = os.path.relpath(self.path, root) if root else self.path
        return f"{path}:{self.line}: [{self.rule}] {self.message}"


class Suppression:
    def __init__(self, rules, justified, line):
        self.rules = rules
        self.justified = justified
        self.line = line
        self.used = False


class SourceFile:
    """One scanned file: raw text plus comment/string-blanked views.

    `code` blanks comments, string and char literals, and preprocessor
    directives (layout preserved, so offsets and line numbers match the raw
    text). `nocomment` blanks only comments and preprocessor lines - the view
    the registry-naming check reads string literals from.
    """

    def __init__(self, path, text, in_src):
        self.path = path
        self.text = text
        self.in_src = in_src
        self.code, self.nocomment = _blank_views(text)
        self.lines = text.splitlines()
        self.suppressions = self._parse_suppressions()

    def _parse_suppressions(self):
        out = {}
        for number, line in enumerate(self.lines, start=1):
            match = SUPPRESS_RE.search(line)
            if match:
                rules = tuple(r.strip() for r in match.group(1).split(","))
                out[number] = Suppression(rules, match.group(3) is not None, number)
        return out

    def suppression_for(self, line, rule):
        """allow() applies on the finding's line or the line directly above."""
        for candidate in (line, line - 1):
            supp = self.suppressions.get(candidate)
            if supp and rule in supp.rules:
                return supp
        return None

    def line_of(self, offset):
        return self.code.count("\n", 0, offset) + 1


def _blank_views(text):
    """Blanks comments/strings/preprocessor lines, preserving layout."""
    code = []
    nocomment = []
    i, n = 0, len(text)
    state = "code"  # code, line_comment, block_comment, string, char, raw_string
    raw_delim = ""
    line_start = True
    preproc = False
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if preproc:
                # Blank the whole preprocessor line (plus continuations).
                if c == "\n":
                    preproc = text[i - 1] == "\\"
                    code.append("\n")
                    nocomment.append("\n")
                else:
                    code.append(" ")
                    nocomment.append(" ")
                i += 1
                line_start = c == "\n"
                continue
            if line_start and c == "#":
                preproc = True
                code.append(" ")
                nocomment.append(" ")
                i += 1
                line_start = False
                continue
            if c == "/" and nxt == "/":
                state = "line_comment"
                code.append("  ")
                nocomment.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                code.append("  ")
                nocomment.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                end = text.find("(", i + 2)
                if end != -1:
                    raw_delim = ")" + text[i + 2 : end] + '"'
                    state = "raw_string"
                    span = end + 1 - i
                    code.append(" " * span)
                    nocomment.append(text[i : end + 1])
                    i = end + 1
                    continue
            if c == '"':
                state = "string"
                code.append(" ")
                nocomment.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                code.append(" ")
                nocomment.append("'")
                i += 1
                continue
            code.append(c)
            nocomment.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                code.append("\n")
                nocomment.append("\n")
            else:
                code.append(" ")
                nocomment.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                code.append("  ")
                nocomment.append("  ")
                i += 2
                continue
            code.append("\n" if c == "\n" else " ")
            nocomment.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                code.append("  ")
                nocomment.append(text[i : i + 2] if state == "string" else "  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                code.append(" ")
                nocomment.append(quote)
            elif c == "\n":  # unterminated; recover
                state = "code"
                code.append("\n")
                nocomment.append("\n")
            else:
                code.append(" ")
                nocomment.append(c)
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                span = len(raw_delim)
                code.append(" " * span)
                nocomment.append(text[i : i + span])
                state = "code"
                i += span
                continue
            code.append("\n" if c == "\n" else " ")
            nocomment.append("\n" if c == "\n" else " ")
        line_start = c == "\n"
        i += 1
    return "".join(code), "".join(nocomment)


def match_paren(text, open_index):
    """Index just past the ')' matching the '(' at open_index, or -1."""
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def match_brace(text, open_index):
    """Index just past the '}' matching the '{' at open_index, or -1."""
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


# --- the linter --------------------------------------------------------------


class Linter:
    def __init__(self, disabled, root):
        self.disabled = disabled
        self.root = root
        self.findings = []
        self.files = []

    def add(self, source, line, rule, message):
        if rule in self.disabled:
            return
        supp = source.suppression_for(line, rule)
        if supp is not None:
            supp.used = True
            return
        self.findings.append(Finding(source.path, line, rule, message))

    # -- determinism (token engine) ------------------------------------------

    def check_determinism_tokens(self, source):
        if not source.in_src:
            return
        code = source.code
        for regex in WALL_CLOCK_RES:
            for match in regex.finditer(code):
                self.add(
                    source,
                    source.line_of(match.start()),
                    "determinism-wall-clock",
                    f"wall-clock read '{match.group(0).strip()}' in src/: results "
                    "must not depend on real time (use the tick clock)",
                )
        for regex in RAW_RAND_RES:
            for match in regex.finditer(code):
                self.add(
                    source,
                    source.line_of(match.start()),
                    "determinism-raw-rand",
                    f"'{match.group(0).strip()}' in src/: all randomness must come "
                    "from an explicitly seeded eas::Rng",
                )
        for match in STD_ENGINE_RE.finditer(code):
            self.add(
                source,
                source.line_of(match.start()),
                "determinism-unseeded-prng",
                f"std::<random> engine '{match.group(0)}' in src/: eas::Rng "
                "(explicitly seeded, platform-stable) is the sanctioned PRNG",
            )
        self._check_containers(source)

    def _check_containers(self, source):
        """Pointer-keyed associative containers and unordered iteration."""
        code = source.code
        unordered_vars = []
        for match in ASSOC_DECL_RE.finditer(code):
            family = match.group(1)
            open_angle = code.index("<", match.end() - 1)
            args, close = _template_args(code, open_angle)
            if args is None:
                continue
            line = source.line_of(match.start())
            key = args[0].strip()
            if key.endswith("*"):
                self.add(
                    source,
                    line,
                    "determinism-pointer-key",
                    f"std::{family} keyed by pointer type '{key}': address-based "
                    "order/hashing varies run to run; key by a stable dense index "
                    "instead (cf. DomainHierarchy group indices)",
                )
            if family.startswith("unordered"):
                name_match = re.match(r"\s*(\w+)\s*(?:[;={]|$)", code[close:close + 80])
                if name_match:
                    unordered_vars.append((name_match.group(1), family))
        for var, family in unordered_vars:
            # Range-for over the container, possibly through a qualified
            # access path (state.shards, this->counts_, ...).
            for match in re.finditer(
                    r"for\s*\([^;)]*:[^;)]*\b" + re.escape(var) + r"\s*\)", code):
                self.add(
                    source,
                    source.line_of(match.start()),
                    "determinism-unordered-iter",
                    f"iteration over std::{family} '{var}': iteration order is "
                    "implementation-defined, so any result-affecting loop breaks "
                    "bit-identity; iterate a sorted or dense-indexed mirror",
                )
            for match in re.finditer(re.escape(var) + r"\s*\.\s*c?begin\s*\(", code):
                self.add(
                    source,
                    source.line_of(match.start()),
                    "determinism-unordered-iter",
                    f"iterator over std::{family} '{var}': iteration order is "
                    "implementation-defined and breaks bit-identity",
                )

    # -- registry / metric hygiene -------------------------------------------

    KEBAB_RE = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")
    SNAKE_RE = re.compile(r"^[a-z0-9]+(_[a-z0-9]+)*$")

    REGISTRY_STYLES = {
        "BalancePolicyRegistry": ("snake_case", SNAKE_RE),
        "ScenarioRegistry": ("kebab-case", KEBAB_RE),
        "FrequencyGovernorRegistry": ("kebab-case", KEBAB_RE),
    }

    def check_fault_rng_isolation(self, source):
        """The fault layer never draws from shared or unseeded RNG streams.

        Scope: fault-layer files (src/fault/ plus fault_*.cc/.h living in
        other src/ layers, e.g. the engine-facing FaultPhase). The chaos
        schedule must be a pure function of the spec text: two runs that
        differ only in workload must see identical fault timings.
        """
        if not source.in_src:
            return
        path_norm = source.path.replace(os.sep, "/")
        basename = os.path.basename(path_norm)
        if "/fault/" not in path_norm and "fault" not in basename:
            return
        code = source.code
        for match in FAULT_SHARED_RNG_RE.finditer(code):
            self.add(
                source,
                source.line_of(match.start()),
                "fault-rng-isolation",
                "fault-layer draw from a shared rng() accessor: chaos "
                "schedules must come only from the plan's own seeded "
                "eas::Rng, never the experiment's stream",
            )
        for match in FAULT_UNSEEDED_RNG_RE.finditer(code):
            self.add(
                source,
                source.line_of(match.start()),
                "fault-rng-isolation",
                "default-constructed Rng in the fault layer: construct "
                "eas::Rng with the clause's explicit seed so the schedule "
                "replays from the spec text",
            )

    def check_registry_naming(self, source):
        text = source.nocomment
        for match in re.finditer(
                r"\b(\w+(?:\s*::\s*Global\s*\(\s*\))?)\s*\.\s*Register\s*\(\s*\"([^\"]*)\"",
                text):
            receiver = match.group(1)
            name = match.group(2)
            registry = self._registry_type(source, receiver)
            if registry is None:
                continue
            style, regex = self.REGISTRY_STYLES[registry]
            if not regex.match(name):
                self.add(
                    source,
                    source.line_of(match.start(2)),
                    "registry-naming",
                    f"{registry} name '{name}' breaks the established naming "
                    f"rule: {registry} names are lowercase {style}",
                )

    def _registry_type(self, source, receiver):
        if "Global" in receiver:
            base = receiver.split("::", 1)[0].strip()
            return base if base in self.REGISTRY_STYLES else None
        # A plain identifier: resolve its declared type in this file
        # (parameter or local of one of the known registry types).
        for registry in self.REGISTRY_STYLES:
            if re.search(r"\b" + registry + r"\s*[&*]?\s*" + re.escape(receiver) + r"\b", source.nocomment):
                return registry
        return None

    def check_metric_schema(self, source):
        if source.path.replace(os.sep, "/").endswith("src/sim/metrics.cc"):
            return
        if not source.in_src:
            return
        code = source.code
        for match in re.finditer(r"\bMetricValue\s*\{", code):
            # The type's own definition (`struct MetricValue {`) is not a
            # construction site.
            before = code[: match.start()].rstrip()
            if re.search(r"\b(?:struct|class)$", before):
                continue
            self.add(
                source,
                source.line_of(match.start()),
                "metric-schema",
                "MetricValue constructed outside src/sim/metrics.cc: summary "
                "columns are defined once, in the MetricRegistry expanders - "
                "register a scalar family there instead",
            )
        # Only call sites through a receiver: plain `void RegisterScalar(...)`
        # declarations (metrics.h) define the API, they don't extend the schema.
        for match in re.finditer(r"(?:\.|->)\s*(RegisterScalar|RegisterSeries)\s*\(", code):
            self.add(
                source,
                source.line_of(match.start()),
                "metric-schema",
                f"{match.group(1)} call outside src/sim/metrics.cc: the builtin "
                "metric schema has exactly one source of truth (tests may build "
                "private registries; src/ must not)",
            )

    # -- suppression hygiene ---------------------------------------------------

    def check_suppressions(self, source):
        for supp in source.suppressions.values():
            for rule in supp.rules:
                if rule not in RULES:
                    self.add(
                        source,
                        supp.line,
                        "suppression-justification",
                        f"allow() names unknown rule '{rule}' (known: "
                        f"{', '.join(RULES)})",
                    )
            if not supp.justified:
                self.add(
                    source,
                    supp.line,
                    "suppression-justification",
                    "suppression without a written justification: use "
                    "'// easlint: allow(rule) -- why this is sound'",
                )


# --- shard-confinement -------------------------------------------------------


class Definition:
    def __init__(self, name, qualified, source, line, calls):
        self.name = name
        self.qualified = qualified
        self.source = source
        self.line = line
        self.calls = calls  # list of (simple_name, line, kind); kind in
        #                     {"plain", "member", "scoped"}

    @property
    def cls(self):
        return self.qualified.split("::", 1)[0] if self.qualified else None


def _template_args(code, open_angle):
    """Splits the top-level comma-separated args of the <...> at open_angle.

    Returns (args, index_past_closing_angle) or (None, -1) when unbalanced.
    """
    depth = 0
    args = []
    current = []
    i = open_angle
    while i < len(code):
        c = code[i]
        if c == "<":
            depth += 1
            if depth > 1:
                current.append(c)
        elif c == ">":
            depth -= 1
            if depth == 0:
                args.append("".join(current))
                return args, i + 1
            current.append(c)
        elif c == "," and depth == 1:
            args.append("".join(current))
            current = []
        elif c in ";{}" :
            return None, -1
        else:
            current.append(c)
        i += 1
    return None, -1


def parse_annotations(source):
    """(macro, simple_name, line) for each EAS_* annotated declaration."""
    out = []
    for match in re.finditer(r"\b(EAS_SHARD_LOCAL|EAS_CROSS_SHARD)\b", source.code):
        paren = source.code.find("(", match.end())
        if paren == -1:
            continue
        head = source.code[match.end():paren]
        idents = re.findall(r"[A-Za-z_]\w*", head)
        if not idents:
            continue
        out.append((match.group(1), idents[-1], source.line_of(match.start())))
    return out


def parse_definitions(source):
    """Token-level function definitions with their outgoing calls."""
    out = []
    code = source.code
    for match in IDENT_CALL_RE.finditer(code):
        name = match.group(1)
        if name in NOT_CALLS:
            continue
        close = match_paren(code, match.end() - 1)
        if close == -1:
            continue
        # Skip trailing qualifiers to find the body opener (or bail: a call).
        i = close
        while i < len(code):
            rest = code[i:]
            qualifier = re.match(
                r"\s*(const|noexcept|override|final|mutable|->\s*[\w:<>,\s&*]+)", rest
            )
            if qualifier and qualifier.end() > 0 and qualifier.group(1):
                i += qualifier.end()
                continue
            break
        tail = code[i:]
        body_open = None
        brace = re.match(r"\s*\{", tail)
        if brace:
            body_open = i + brace.end() - 1
        else:
            init = re.match(r"\s*:\s*[^;{]*\{", tail)  # constructor init list
            if init:
                body_open = i + init.end() - 1
        if body_open is None:
            continue
        # Reject control flow that slipped through and declarations like
        # `struct Foo {`: require the '(' to directly follow the name.
        body_close = match_brace(code, body_open)
        if body_close == -1:
            continue
        qualified = None
        before = code[: match.start()].rstrip()
        qual_match = re.search(r"([A-Za-z_]\w*)\s*::\s*$", before)
        if qual_match:
            qualified = f"{qual_match.group(1)}::{name}"
        body = code[body_open:body_close]
        body_line = source.line_of(body_open)
        calls = []
        for call in IDENT_CALL_RE.finditer(body):
            callee = call.group(1)
            if callee in NOT_CALLS or callee == name:
                continue
            # How the callee is reached decides how it may be resolved later:
            # `x.Foo(` / `x->Foo(` is a member of the receiver's class (which
            # the token engine cannot name), `NS::Foo(` is scoped, a bare
            # `Foo(` is this-class or free.
            prefix = body[: call.start()].rstrip()
            if prefix.endswith(".") or prefix.endswith("->"):
                kind = "member"
            elif prefix.endswith("::"):
                kind = "scoped"
            else:
                kind = "plain"
            calls.append((callee, body_line + body[: call.start()].count("\n"), kind))
        out.append(Definition(name, qualified, source, source.line_of(match.start()), calls))
    return out


def check_shard_confinement(linter, sources):
    shard_local = {}
    cross_shard = {}
    for source in sources:
        for macro, name, line in parse_annotations(source):
            target = shard_local if macro == "EAS_SHARD_LOCAL" else cross_shard
            target.setdefault(name, (source, line))
    if not shard_local and not cross_shard:
        return

    defs_by_name = {}
    for source in sources:
        for definition in parse_definitions(source):
            defs_by_name.setdefault(definition.name, []).append(definition)

    for root_name in sorted(shard_local):
        for root_def in defs_by_name.get(root_name, []):
            _walk_shard_local(linter, root_def, root_name, shard_local, cross_shard,
                              defs_by_name)


def _resolve_targets(definition, callee, kind, defs_by_name):
    """Definitions a call from `definition` may land on.

    Annotated (cross-shard) names are matched by bare name elsewhere; this
    resolution only governs how far the walk *expands* through unannotated
    intermediates, so it must stay precise rather than complete:
      - a bare call resolves within the caller's class, then to free/sibling
        definitions in the caller's file;
      - a member call through a receiver (whose class the token engine cannot
        name) or a scoped call expands only when the name is defined exactly
        once in the tree - an ambiguous name would conflate unrelated classes
        (e.g. every `Step`/`Run` in the codebase) into one node.
    """
    candidates = defs_by_name.get(callee, [])
    if not candidates:
        return []
    if kind == "plain":
        same_class = [d for d in candidates
                      if definition.cls and d.cls == definition.cls]
        if same_class:
            return same_class
        same_file = [d for d in candidates if d.source is definition.source]
        if same_file:
            return same_file
    if len(candidates) == 1:
        return candidates
    return []


def _walk_shard_local(linter, root_def, root_name, shard_local, cross_shard,
                      defs_by_name):
    # DFS over the call graph. Cross-shard hits are matched by annotated name
    # regardless of call form; expansion through unannotated intermediates
    # follows _resolve_targets, and generic std-ish names are never expanded
    # (see GENERIC_NAMES). Chains through another shard-local entry point are
    # not re-walked - that entry point is checked from its own root.
    stack = [(root_def, [f"{root_def.qualified or root_def.name}"])]
    visited = {root_name}
    while stack:
        definition, chain = stack.pop()
        for callee, line, kind in definition.calls:
            if callee in cross_shard:
                pretty = " -> ".join(chain + [callee])
                linter.add(
                    definition.source,
                    line,
                    "shard-confinement",
                    f"shard-local '{root_name}' reaches cross-shard '{callee}' "
                    f"({pretty}): package-parallel phases must only touch their "
                    "own PackageShard; move this call to a sequential section "
                    "or re-scope the annotation",
                )
                continue
            if callee in visited or callee in GENERIC_NAMES or callee in shard_local:
                continue
            visited.add(callee)
            for target in _resolve_targets(definition, callee, kind, defs_by_name):
                if len(chain) < 12:
                    stack.append((target, chain + [callee]))


# --- AST engine (libclang) ---------------------------------------------------


class AstEngine:
    """Determinism checks as real AST matching, when libclang is importable.

    Covers .cc translation units from compile_commands.json; headers (and
    everything the AST cannot see) stay on the token engine. Any per-TU
    failure falls back to the token engine for that TU and is noted in the
    report - never silently skipped.
    """

    BANNED_CALLS = {
        "rand": "determinism-raw-rand",
        "srand": "determinism-raw-rand",
        "lrand48": "determinism-raw-rand",
        "drand48": "determinism-raw-rand",
        "gettimeofday": "determinism-wall-clock",
        "clock_gettime": "determinism-wall-clock",
        "clock": "determinism-wall-clock",
    }
    CLOCKS = ("system_clock", "steady_clock", "high_resolution_clock")

    def __init__(self):
        import clang.cindex as cindex  # noqa: deferred, availability-gated

        self.cindex = cindex
        self.index = cindex.Index.create()

    def scan(self, linter, source, compile_args):
        cindex = self.cindex
        tu = self.index.parse(source.path, args=compile_args)
        for cursor in tu.cursor.walk_preorder():
            location = cursor.location
            if location.file is None or os.path.abspath(location.file.name) != source.path:
                continue
            line = location.line
            kind = cursor.kind
            if kind == cindex.CursorKind.CALL_EXPR:
                callee = cursor.referenced
                name = callee.spelling if callee is not None else cursor.spelling
                rule = self.BANNED_CALLS.get(name)
                if rule is not None and self._is_global(callee):
                    linter.add(source, line, rule,
                               f"call to '{name}' (AST): banned in src/")
                if name == "now" and callee is not None:
                    parent = callee.semantic_parent
                    if parent is not None and parent.spelling in self.CLOCKS:
                        linter.add(source, line, "determinism-wall-clock",
                                   f"std::chrono::{parent.spelling}::now() (AST): "
                                   "results must not depend on real time")
            elif kind in (cindex.CursorKind.VAR_DECL, cindex.CursorKind.FIELD_DECL):
                spelling = cursor.type.spelling
                if "random_device" in spelling:
                    linter.add(source, line, "determinism-raw-rand",
                               "std::random_device (AST): all randomness must "
                               "come from an explicitly seeded eas::Rng")
                elif STD_ENGINE_RE.search(spelling):
                    linter.add(source, line, "determinism-unseeded-prng",
                               f"std::<random> engine '{spelling}' (AST): "
                               "eas::Rng is the sanctioned PRNG")
                pointer_key = re.search(
                    r"\b(unordered_map|unordered_set|unordered_multimap|"
                    r"unordered_multiset|map|set|multimap|multiset)<\s*"
                    r"(?:const\s+)?[\w:]+\s*\*", spelling)
                if pointer_key:
                    linter.add(source, line, "determinism-pointer-key",
                               f"std::{pointer_key.group(1)} keyed by pointer "
                               "(AST): address order varies run to run; key by "
                               "a stable dense index")
            elif kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                for child in cursor.get_children():
                    spelling = child.type.spelling
                    if re.search(r"\bunordered_(map|set|multimap|multiset)\b", spelling):
                        linter.add(source, line, "determinism-unordered-iter",
                                   f"range-for over '{spelling}' (AST): iteration "
                                   "order is implementation-defined and breaks "
                                   "bit-identity")
                        break

    @staticmethod
    def _is_global(callee):
        # rand()/clock()/... are free functions; a method of the same simple
        # name (e.g. some class's clock()) is not the libc call.
        if callee is None:
            return False
        parent = callee.semantic_parent
        return parent is None or parent.kind.name in ("TRANSLATION_UNIT", "NAMESPACE",
                                                      "LINKAGE_SPEC")


# --- driver ------------------------------------------------------------------


def discover_from_compile_commands(path, root):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            db = json.load(handle)
    except (OSError, ValueError) as error:
        die(f"easlint: cannot read compile database {path}: {error}\n"
                 "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON")
    tus = {}
    src_prefix = os.path.join(root, "src") + os.sep
    for entry in db:
        file_path = os.path.abspath(os.path.join(entry.get("directory", "."), entry["file"]))
        if not file_path.startswith(src_prefix):
            continue
        if "arguments" in entry:
            args = entry["arguments"][1:]
        else:
            args = entry.get("command", "").split()[1:]
        # Strip -o/-c and the source file itself; keep includes/defines/std.
        kept = []
        skip = False
        for arg in args:
            if skip:
                skip = False
                continue
            if arg in ("-o", "-c"):
                skip = arg == "-o"
                continue
            if os.path.abspath(arg) == file_path:
                continue
            kept.append(arg)
        tus[file_path] = kept
    headers = []
    for dirpath, _, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if name.endswith(".h"):
                headers.append(os.path.join(dirpath, name))
    return tus, headers


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[1], formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*",
                        help="explicit files to lint (fixture mode); default: the "
                             "src/ tree via --compile-commands")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json (default: <root>/build/compile_commands.json)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels above this script)")
    parser.add_argument("--engine", choices=("auto", "ast", "tokens"), default="auto",
                        help="auto: AST via libclang when importable, token fallback "
                             "otherwise; ast: require libclang; tokens: force the "
                             "token engine")
    parser.add_argument("--disable", action="append", default=[], metavar="RULE",
                        help="disable a rule (repeatable); known: " + ", ".join(RULES))
    parser.add_argument("--report", default=None, help="also write findings to this file")
    args = parser.parse_args()

    for rule in args.disable:
        if rule not in RULES:
            die(f"easlint: --disable names unknown rule '{rule}'")

    root = os.path.abspath(args.root) if args.root else os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, os.pardir))

    ast_engine = None
    engine_note = "tokens"
    if args.engine in ("auto", "ast"):
        try:
            ast_engine = AstEngine()
            engine_note = "ast+tokens"
        except Exception as error:  # ImportError, LibclangError, ...
            if args.engine == "ast":
                die(f"easlint: --engine ast requested but libclang is "
                         f"unavailable ({error}); install python3-clang + libclang "
                         "or run --engine tokens")
            engine_note = f"tokens (libclang unavailable: {type(error).__name__})"

    tu_args = {}
    if args.files:
        paths = [os.path.abspath(f) for f in args.files]
        for path in paths:
            if not os.path.exists(path):
                die(f"easlint: no such file: {path}")
    else:
        db = args.compile_commands or os.path.join(root, "build", "compile_commands.json")
        tu_args, headers = discover_from_compile_commands(db, root)
        paths = sorted(tu_args) + headers

    sources = []
    src_prefix = os.path.join(root, "src") + os.sep
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            text = handle.read()
        # Explicit files (fixture mode) are all treated as src-scoped.
        in_src = bool(args.files) or path.startswith(src_prefix)
        sources.append(SourceFile(path, text, in_src))

    linter = Linter(set(args.disable), root)
    notes = []
    for source in sources:
        ast_covered = False
        if ast_engine is not None and source.path in tu_args and source.path.endswith(".cc"):
            try:
                ast_engine.scan(linter, source, tu_args[source.path])
                ast_covered = True
            except Exception as error:
                notes.append(f"note: AST parse failed for "
                             f"{os.path.relpath(source.path, root)} ({error}); "
                             "token engine covered it")
        if not ast_covered:
            linter.check_determinism_tokens(source)
        linter.check_fault_rng_isolation(source)
        linter.check_registry_naming(source)
        linter.check_metric_schema(source)
        linter.check_suppressions(source)
    check_shard_confinement(linter, sources)

    linter.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    out_lines = [f"easlint: engine={engine_note} files={len(sources)} "
                 f"findings={len(linter.findings)}"]
    out_lines += notes
    out_lines += [finding.render(root) for finding in linter.findings]
    output = "\n".join(out_lines) + "\n"
    sys.stdout.write(output)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(output)
    return 1 if linter.findings else 0


if __name__ == "__main__":
    sys.exit(main())
