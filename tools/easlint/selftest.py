#!/usr/bin/env python3
"""easlint regression suite over the known-good / known-bad fixture corpus.

Contract the fixtures encode (and this suite enforces):

  fixtures/good/*.cc   must lint completely clean - zero findings, exit 0.
                       A finding here is a false positive regression.
  fixtures/bad/*.cc    carry `// expect: <rule>` markers. For each file the
                       multiset of reported rules must EQUAL the multiset of
                       expected markers - a missing finding means a check
                       stopped detecting its known-bad pattern (e.g. someone
                       disabled or broke it), an extra finding is a new false
                       positive. Exit status must be 1.

Additionally, for every rule expected by a bad fixture, the suite re-runs
easlint with `--disable <rule>` and asserts those findings disappear (and
nothing else changes), proving the disable plumbing works per-rule. Unknown
`--disable` names must be rejected with exit 2.

Run:  python3 tools/easlint/selftest.py          (wired into ctest as
                                                  `easlint_selftest`)
"""

import collections
import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
EASLINT = os.path.join(HERE, "easlint.py")
GOOD_DIR = os.path.join(HERE, "fixtures", "good")
BAD_DIR = os.path.join(HERE, "fixtures", "bad")

EXPECT_RE = re.compile(r"//.*?\bexpect:\s*([\w-]+)")
FINDING_RE = re.compile(r"^.+?:\d+:\s+\[([\w-]+)\]", re.MULTILINE)

failures = []


def run_easlint(files, extra_args=()):
    cmd = [sys.executable, EASLINT, "--engine", "tokens", *extra_args, *files]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def reported_rules(stdout):
    return collections.Counter(FINDING_RE.findall(stdout))


def check(condition, label, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"{status:4s} {label}")
    if not condition:
        if detail:
            print("     " + detail.replace("\n", "\n     "))
        failures.append(label)


def main():
    good = sorted(
        os.path.join(GOOD_DIR, f) for f in os.listdir(GOOD_DIR) if f.endswith(".cc"))
    bad = sorted(
        os.path.join(BAD_DIR, f) for f in os.listdir(BAD_DIR) if f.endswith(".cc"))
    check(good, "fixture corpus has known-good files")
    check(bad, "fixture corpus has known-bad files")

    # Known-good: clean as a batch (cross-file checks see them together too).
    code, stdout, stderr = run_easlint(good)
    check(code == 0 and not reported_rules(stdout),
          "good fixtures lint clean (exit 0, zero findings)",
          stdout + stderr)

    rules_covered = collections.Counter()
    for path in bad:
        name = os.path.basename(path)
        with open(path, "r", encoding="utf-8") as handle:
            expected = collections.Counter(EXPECT_RE.findall(handle.read()))
        check(expected, f"{name}: declares expect markers")
        rules_covered.update(expected)

        code, stdout, stderr = run_easlint([path])
        found = reported_rules(stdout)
        check(code == 1, f"{name}: exits 1", stdout + stderr)
        check(
            found == expected,
            f"{name}: findings match expect markers exactly",
            f"expected {dict(expected)}\nfound    {dict(found)}\n{stdout}{stderr}")

        # Disabling each expected rule must remove exactly those findings.
        for rule in sorted(expected):
            code, stdout, stderr = run_easlint([path], ["--disable", rule])
            remaining = reported_rules(stdout)
            without = expected.copy()
            del without[rule]
            want_code = 1 if without else 0
            check(
                remaining == without and code == want_code,
                f"{name}: --disable {rule} removes exactly those findings",
                f"expected {dict(without)} exit {want_code}\n"
                f"found    {dict(remaining)} exit {code}\n{stdout}{stderr}")

    # Every check family is represented by at least one known-bad fixture.
    required = {
        "determinism-wall-clock", "determinism-raw-rand",
        "determinism-unseeded-prng", "determinism-unordered-iter",
        "determinism-pointer-key", "shard-confinement", "fault-rng-isolation",
        "registry-naming", "metric-schema", "suppression-justification",
    }
    missing = required - set(rules_covered)
    check(not missing, "every rule has a known-bad fixture",
          f"missing: {sorted(missing)}")

    code, stdout, stderr = run_easlint(bad[:1], ["--disable", "no-such-rule"])
    check(code == 2, "--disable with unknown rule is rejected (exit 2)",
          stdout + stderr)

    print(f"\n{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
