// Known-bad fixture: registration names breaking the established rules
// (policies are lowercase snake_case; scenarios and governors are lowercase
// kebab-case).
namespace eas {

struct BalancePolicyRegistry {
  static BalancePolicyRegistry& Global();
  void Register(const char* name, int factory);
};

struct ScenarioRegistry {
  static ScenarioRegistry& Global();
  void Register(const char* name, int factory);
};

struct FrequencyGovernorRegistry {
  static FrequencyGovernorRegistry& Global();
  void Register(const char* name, int factory);
};

void RegisterBuiltins() {
  BalancePolicyRegistry::Global().Register("energy-aware", 1);  // expect: registry-naming
  ScenarioRegistry::Global().Register("paper_mixed", 2);  // expect: registry-naming
  FrequencyGovernorRegistry::Global().Register("ThermalStepdown", 3);  // expect: registry-naming
  BalancePolicyRegistry::Global().Register("load_only", 4);  // conforming: no finding
  ScenarioRegistry::Global().Register("paper-mixed", 5);  // conforming: no finding
}

}  // namespace eas
