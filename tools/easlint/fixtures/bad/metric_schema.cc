// Known-bad fixture: defining metric schema outside src/sim/metrics.cc.
#include <string>
#include <vector>

namespace eas {

struct MetricValue {
  std::string name;
  double value;
};

struct MetricRegistry {
  void RegisterScalar(const char* name, int expander);
  void RegisterSeries(const char* name, int expander);
};

void SmuggleColumn(MetricRegistry& registry, std::vector<MetricValue>& out) {
  out.push_back(MetricValue{"rogue_column", 1.0});  // expect: metric-schema
  registry.RegisterScalar("rogue_scalar", 7);  // expect: metric-schema
  registry.RegisterSeries("rogue_series", 8);  // expect: metric-schema
}

}  // namespace eas
