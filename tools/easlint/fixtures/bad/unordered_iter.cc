// Known-bad fixture: result-affecting iteration over unordered containers.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace eas {

struct LoadTable {
  std::unordered_map<int, double> load_by_cpu;
  std::unordered_set<int> hot_cpus;
};

int FirstHotCpu(const LoadTable& table) {
  for (int cpu : table.hot_cpus) {  // expect: determinism-unordered-iter
    return cpu;  // first element of an unordered container: run-dependent
  }
  auto it = table.load_by_cpu.begin();  // expect: determinism-unordered-iter
  return it == table.load_by_cpu.end() ? -1 : it->first;
}

}  // namespace eas
