// Known-bad fixture: libc randomness and std::random_device.
#include <cstdlib>
#include <random>

namespace eas {

int JitterTicks() {
  srand(42);  // expect: determinism-raw-rand
  int jitter = rand() % 8;  // expect: determinism-raw-rand
  std::random_device device;  // expect: determinism-raw-rand
  return jitter + static_cast<int>(device() % 4);
}

}  // namespace eas
