// Known-bad fixture: a shard-local phase reaching cross-shard state through
// an intermediate helper. The linter must report the full chain
// TickPackagePhase -> RollupMachineLoad -> ScanAllShards.
#define EAS_SHARD_LOCAL
#define EAS_CROSS_SHARD

namespace eas {

struct SimulationState;

EAS_CROSS_SHARD double ScanAllShards(SimulationState& state);
EAS_SHARD_LOCAL void TickPackagePhase(SimulationState& state, int package);

double RollupMachineLoad(SimulationState& state) {
  return ScanAllShards(state);
}

EAS_CROSS_SHARD double ScanAllShards(SimulationState& state) {
  (void)state;
  return 0.0;
}

EAS_SHARD_LOCAL void TickPackagePhase(SimulationState& state, int package) {
  (void)package;
  RollupMachineLoad(state);  // expect: shard-confinement
}

}  // namespace eas
