// Known-bad fixture: std::<random> engines instead of eas::Rng.
#include <random>

namespace eas {

double SampleServiceTime() {
  std::mt19937_64 engine;  // expect: determinism-unseeded-prng
  std::default_random_engine fallback;  // expect: determinism-unseeded-prng
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine) + dist(fallback);
}

}  // namespace eas
