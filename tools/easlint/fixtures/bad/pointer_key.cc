// Known-bad fixture: associative containers keyed by pointer. The seed case
// was BalanceAggregateCache keying group aggregates by `const CpuGroup*` -
// lookup-only at the time, but one range-for away from address-ordered
// nondeterminism.
#include <map>
#include <unordered_map>

namespace eas {

struct CpuGroup {
  int first_cpu;
};

struct GroupAggregates {
  std::unordered_map<const CpuGroup*, double> rq_sums;  // expect: determinism-pointer-key
  std::map<CpuGroup*, double> thermal_sums;  // expect: determinism-pointer-key
};

}  // namespace eas
