// Known-bad fixture: fault-layer code drawing randomness from anywhere but
// a clause-seeded eas::Rng. (The file name carries "fault" so the rule's
// fault-layer scoping applies, exactly as it does to src/fault/ files.)

namespace eas {

class Rng {
 public:
  Rng() = default;
  explicit Rng(unsigned long long seed) : state_(seed) {}
  unsigned long long Next() { return state_ += 1; }

 private:
  unsigned long long state_ = 0;
};

struct FakeState {
  Rng& rng() { return shared_; }
  Rng shared_;  // expect: fault-rng-isolation
};

unsigned long long ExpandChurn(FakeState& state) {
  // Drawing from the experiment's shared stream: fault timing would depend
  // on how much randomness the workload consumed first.
  unsigned long long tick = state.rng().Next();  // expect: fault-rng-isolation
  Rng unseeded;  // expect: fault-rng-isolation
  tick += unseeded.Next();
  Rng seeded(1337);  // fine: the clause's explicit seed
  tick += seeded.Next();
  return tick;
}

}  // namespace eas
