// Known-bad fixture: wall-clock reads in result-affecting code.
#include <chrono>
#include <ctime>

namespace eas {

long TickBudgetFromRealTime() {
  auto now = std::chrono::steady_clock::now();  // expect: determinism-wall-clock
  auto wall = std::chrono::system_clock::now();  // expect: determinism-wall-clock
  std::time_t stamp = time(nullptr);  // expect: determinism-wall-clock
  (void)wall;
  (void)stamp;
  return now.time_since_epoch().count();
}

}  // namespace eas
