// Known-bad fixture: suppressions without written justification, and an
// allow() naming an unknown rule. The original findings are silenced (that
// part of the mechanism works) but each bare allow() is itself reported.
#include <unordered_map>

namespace eas {

struct Cache {
  // easlint: allow(determinism-pointer-key)
  std::unordered_map<const int*, int> entries;  // expect-silenced: determinism-pointer-key
};
// The bare allow() above:  expect: suppression-justification

int Drain(Cache& cache) {
  int total = 0;
  for (const auto& entry : cache.entries) {  // easlint: allow(determinism-unordered-iter, no-such-rule) -- sum is commutative
    total += entry.second;
  }
  return total;
}
// The unknown rule name in the allow() above:  expect: suppression-justification

}  // namespace eas
