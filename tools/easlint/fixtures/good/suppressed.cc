// Known-good fixture: findings silenced by *justified* suppressions. Both
// allow() forms (same line, line above) must work, and neither may produce a
// suppression-justification finding because each carries a written reason.
#include <string>
#include <unordered_map>

namespace eas {

struct Probe {
  // easlint: allow(determinism-pointer-key) -- diagnostic-only aside; never iterated, never affects results
  std::unordered_map<const int*, int> watch_counts;
};

int CountProbes(const Probe& probe) {
  int total = 0;
  // Order-independent fold: commutative sum over values only.
  for (const auto& entry : probe.watch_counts) {  // easlint: allow(determinism-unordered-iter) -- commutative integer sum; order cannot affect the result
    total += entry.second;
  }
  return total;
}

}  // namespace eas
