// Known-good fixture: idiomatic project code that every easlint rule must
// accept. A regression that makes any rule fire here is a false positive.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eas {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t NextU64() { return state_ += 0x9E3779B97F4A7C15ull; }

 private:
  std::uint64_t state_;
};

// Dense-indexed aggregate storage: the sanctioned alternative to keying by
// pointer (cf. BalanceAggregateCache after the DomainHierarchy re-key).
struct Aggregates {
  std::vector<double> by_group_index;
  std::map<int, double> by_cpu;  // ordered key: deterministic iteration
};

double SumAggregates(const Aggregates& aggregates) {
  double total = 0.0;
  for (const auto& [cpu, value] : aggregates.by_cpu) {
    total += value;
  }
  for (double value : aggregates.by_group_index) {
    total += value;
  }
  return total;
}

std::uint64_t DrawSeeded(Rng& rng) { return rng.NextU64(); }

// Mentioning rand or steady_clock in comments and strings must not fire:
// the token engine blanks both views. rand() std::random_device
const char* kDocString =
    "wall-clock reads like steady_clock::now() are banned in src/";

}  // namespace eas
