// eastool - run energy-aware scheduling experiments from the command line.
//
// Quickstart:
//   eastool --list-scenarios
//   eastool --scenario paper-mixed --duration-s 120 --trace-csv thermal.csv
//   eastool --scenario poisson-open-loop --policy load_only --runs 4
//   eastool --topology 2:4:2 --policy energy_aware --workload mixed:6
//           --duration-s 300 --temp-limit 38 --throttle
//   eastool --policy energy_aware --workload trace:arrivals.csv --summary-csv s.csv
//   eastool --scenario paper-hot-task --runs 3 --print-request > hot.req
//   eastool --request hot.req --summary-csv s.csv
//   eastool --batch sweep.req --jsonl results.jsonl
//
//   eastool serve --socket /tmp/eas.sock             # resident service
//   eastool submit --socket /tmp/eas.sock --batch sweep.req --jsonl out.jsonl
//   eastool status --socket /tmp/eas.sock
//   eastool shutdown --socket /tmp/eas.sock
//
// Every run is described by a RunRequest (src/api/run_request.h): the flags
// below assemble one, --request reads one from a `key = value` file, and
// --print-request writes the canonical file for the current flags - so any
// flag invocation can be captured as data and replayed exactly. --batch
// runs one request per line of a file, fanned across the parallel
// ExperimentRunner together. Results stream through ResultSinks: the
// summary/trace CSVs, JSONL, an ASCII thermal plot, or any --sink
// kind:path spec the SinkRegistry resolves.
//
// The serve/submit/status/shutdown verbs talk the line protocol of
// src/service/wire.h over a Unix socket; `submit` records are byte-for-byte
// what the same request writes through --jsonl offline.

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/api/result_sink.h"
#include "src/api/run_session.h"
#include "src/api/sink_registry.h"
#include "src/base/flags.h"
#include "src/fault/fault_plan.h"
#include "src/freq/governor_registry.h"
#include "src/service/experiment_server.h"
#include "src/service/service_client.h"
#include "src/sim/scenario.h"

namespace {

void PrintUsage() {
  std::printf(
      "usage: eastool [verb] [flags]\n"
      "verbs (default: run the request offline, in this process):\n"
      "  serve               run the resident experiment service: listen on\n"
      "                      --socket, admit requests into a bounded queue\n"
      "                      (--queue-depth), execute on a persistent worker\n"
      "                      pool (--threads), stream records back per client\n"
      "  submit              send the current request(s) (flags / --request /\n"
      "                      --batch) to a running service and stream results;\n"
      "                      --jsonl writes records byte-identical to the same\n"
      "                      requests run offline\n"
      "  status              print the service's status JSON (queue depth,\n"
      "                      in-flight and completed runs, runs/s, uptime)\n"
      "  shutdown            drain the service and stop it\n"
      "flags:\n"
      "  --socket PATH       Unix socket the service listens on / clients dial\n"
      "  --queue-depth N     serve: job slots in the admission queue (default 64;\n"
      "                      a submission needing more free slots is rejected\n"
      "                      whole with queue-full)\n"
      "  --list-scenarios    list registered scenarios and exit\n"
      "  --list-sinks        list registered sink kinds and exit\n"
      "  --scenario NAME     run a registered scenario (flags below override it)\n"
      "  --topology SPEC     colon-separated level widths, outermost level first,\n"
      "                      last level = SMT threads per package (default 2:4:1,\n"
      "                      the classic nodes:physical-per-node:smt grid). Up to\n"
      "                      8 levels build arbitrary-depth domain trees, e.g.\n"
      "                      4:8:2:4:2; levels can be named: rack=2:board=4:\n"
      "                      node=8:package=4:smt=2\n"
      "  --policy NAME       any BalancePolicyRegistry name (default energy_aware;\n"
      "                      aliases: baseline = load_only, eas = energy_aware,\n"
      "                      temp-only = temperature_only; '-' matches '_')\n"
      "  --workload SPEC     mixed:<inst> | homog:<m>,<p>,<b> | hot:<n> | short:<n>\n"
      "                      | list:<prog>[*<count>],...  (programs by name)\n"
      "                      | trace:<file.csv>   (rows: tick,program[,nice])\n"
      "  --governor NAME     DVFS frequency governor (default none = P0 pinned;\n"
      "                      see --list-governors)\n"
      "  --list-governors    list registered frequency governors and exit\n"
      "  --faults SPEC       seeded fault plan injected at exact ticks: comma-\n"
      "                      separated off:<cpu>@<tick> | on:<cpu>@<tick> |\n"
      "                      spike:<pkg>@<tick>:<degC>:<dur> |\n"
      "                      clamp:<pkg>@<tick>:<floor>:<dur> |\n"
      "                      churn:<n>@<horizon>:<seed> clauses, or the literal\n"
      "                      none to cancel a scenario's plan (see --list-faults;\n"
      "                      replays are bit-identical for any thread count)\n"
      "  --list-faults       print the fault-plan grammar and exit\n"
      "  --duration-s SEC    simulated seconds (default 120)\n"
      "  --runs N            expand into an N-seed sweep (default 1)\n"
      "  --seed N            experiment seed (default 42)\n"
      "  --tag LABEL         correlation tag echoed into every record (serve\n"
      "                      clients demux on it; empty = untagged)\n"
      "  --max-power W       explicit per-package power limit\n"
      "  --temp-limit C      derive per-package limits from cooling (default 38)\n"
      "  --throttle          enforce thermal throttling\n"
      "  --no-skip-ahead     step quiescent spans tick by tick instead of\n"
      "                      skipping ahead (results are bit-identical; this\n"
      "                      is the A/B timing escape hatch)\n"
      "  --intra-threads N   intra-run workers for the package-parallel tick\n"
      "                      pipeline (default 0 = the historical interleaved\n"
      "                      loop; any N >= 1 runs the sharded pipeline, whose\n"
      "                      results are bit-identical for every N >= 1)\n"
      "  --request FILE      load a RunRequest file (key = value lines; flags\n"
      "                      above override its fields)\n"
      "  --batch FILE        run every request in FILE (one per line, 'key = v;\n"
      "                      key = v' form) as one parallel sweep; run-shaping\n"
      "                      flags are rejected, sink flags below apply\n"
      "  --print-request     print the canonical request file for the current\n"
      "                      flags and exit (replay it with --request); with\n"
      "                      --batch, the canonical batch file (one per line)\n"
      "  --threads N         runner/service worker threads, 0 = hardware\n"
      "                      (default 0)\n"
      "  --trace-csv FILE    write each run's per-CPU thermal power trace: run 0\n"
      "                      to FILE, run K of a --runs/--batch sweep to FILE.runK\n"
      "  --summary-csv FILE  write the run summary: a single run keeps the\n"
      "                      key,value format; a sweep writes a table with one\n"
      "                      row per run (columns run,name,seed,<metrics>)\n"
      "  --jsonl FILE        write one JSON object per run (metrics + the\n"
      "                      request that reproduces it); FILE '-' = stdout\n"
      "  --sink SPEC         add a sink by registry spec: csv:PATH | trace:PATH |\n"
      "                      jsonl:PATH | plot:PATH (PATH '-' = stdout)\n"
      "  --plot              print an ASCII thermal-power plot per run\n");
}

constexpr const char* kKnownFlags[] = {
    "help",       "list-scenarios", "list-governors", "list-sinks",  "scenario",
    "topology",   "policy",         "workload",       "governor",    "duration-s",
    "runs",       "seed",           "tag",            "request",     "batch",
    "print-request", "threads",     "trace-csv",      "summary-csv", "jsonl",
    "sink",       "plot",           "max-power",      "temp-limit",  "throttle",
    "no-skip-ahead", "intra-threads", "socket",       "queue-depth", "faults",
    "list-faults"};

// The flags that shape the request itself (as opposed to execution/output);
// rejected with --batch, where the batch file is the single source of truth.
constexpr const char* kRequestFlags[] = {"scenario",   "topology",   "policy",
                                         "workload",   "governor",   "duration-s",
                                         "runs",       "seed",       "tag",
                                         "max-power",  "temp-limit", "throttle",
                                         "no-skip-ahead", "intra-threads", "request",
                                         "faults"};

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    return false;
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  *out = buffer.str();
  return true;
}

// Overlays the request-shaping flags onto `request` (flags win over a
// --request file, exactly as they win over a --scenario base). Values go
// through the same validation the request-file parser applies, so
// `--seed 4z2` is rejected exactly like `seed = 4z2` in a file instead of
// silently running with seed 0. False (with a printed diagnostic) on a bad
// value.
bool ApplyFlagOverrides(const eas::FlagParser& flags, eas::RunRequest* request) {
  for (const char* key : {"scenario", "topology", "policy", "workload", "governor",
                          "faults", "duration-s", "max-power", "temp-limit",
                          "intra-threads", "seed", "runs", "tag"}) {
    if (!flags.Has(key)) {
      continue;
    }
    if (auto error = eas::ApplyRunRequestField(key, flags.GetString(key), request)) {
      std::fprintf(stderr, "--%s: %s\n", key, error->Render().c_str());
      return false;
    }
  }
  // --throttle is a switch (bare --throttle means true), so it cannot go
  // through the key = value path verbatim.
  if (flags.Has("throttle")) {
    request->throttle = flags.GetBool("throttle", false);
  }
  // --no-skip-ahead is likewise a bare switch; it maps onto the request's
  // skip-ahead key (the file spelling of the same choice).
  if (flags.Has("no-skip-ahead")) {
    request->skip_ahead = false;
  }
  return true;
}

// Parses a --batch file into one request per non-blank line. False (with
// printed diagnostics) on a malformed line.
bool LoadBatchRequests(const std::string& path, std::vector<eas::RunRequest>* requests) {
  std::string text;
  if (!ReadFileToString(path, &text)) {
    std::fprintf(stderr, "cannot read --batch file %s\n", path.c_str());
    return false;
  }
  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    const std::string body = hash == std::string::npos ? line : line.substr(0, hash);
    if (body.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank or comment-only line
    }
    const auto request = eas::ParseRunRequest(body);
    if (!request.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), line_number,
                   request.error().Render().c_str());
      return false;
    }
    eas::RunRequest named = *request;
    if (named.name.empty()) {
      named.name = named.scenario.empty() ? "req" + std::to_string(requests->size())
                                          : named.scenario;
    }
    requests->push_back(std::move(named));
  }
  if (requests->empty()) {
    std::fprintf(stderr, "--batch file %s holds no requests\n", path.c_str());
    return false;
  }
  return true;
}

// Assembles the invocation's requests from --batch / --request / flags,
// exactly the same way for offline runs and `submit`.
bool AssembleRequests(const eas::FlagParser& flags, bool batch,
                      std::vector<eas::RunRequest>* requests) {
  if (batch) {
    for (const char* flag : kRequestFlags) {
      if (flags.Has(flag)) {
        std::fprintf(stderr, "--%s cannot be combined with --batch (put it in the file)\n",
                     flag);
        return false;
      }
    }
    return LoadBatchRequests(flags.GetString("batch"), requests);
  }
  eas::RunRequest request;
  if (flags.Has("request")) {
    const std::string path = flags.GetString("request");
    std::string text;
    if (!ReadFileToString(path, &text)) {
      std::fprintf(stderr, "cannot read --request file %s\n", path.c_str());
      return false;
    }
    const auto parsed = eas::ParseRunRequest(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), parsed.error().Render().c_str());
      return false;
    }
    request = *parsed;
  }
  if (!ApplyFlagOverrides(flags, &request)) {
    return false;
  }
  requests->push_back(std::move(request));
  return true;
}

void PrintResult(const eas::RunRecord& record) {
  const eas::MachineConfig& config = record.spec.config;
  const eas::RunResult& result = record.result;
  std::printf("run:               %s\n", record.spec.name.c_str());
  std::printf("arrivals:          %zu scheduled\n", record.spec.workload.size());
  std::printf("cpus:              %zu logical / %zu physical\n", config.topology.num_logical(),
              config.topology.num_physical());
  std::printf("throughput:        %.1f work-ticks/s\n", result.Throughput());
  std::printf("migrations:        %lld\n", static_cast<long long>(result.migrations));
  std::printf("completions:       %lld\n", static_cast<long long>(result.completions));
  std::printf("avg throttled:     %.2f%%\n", result.AverageThrottledFraction() * 100);
  if (!result.average_frequency.empty()) {
    std::printf("avg frequency:     %.3fx\n", result.AverageFrequencyMultiplier());
  }
  std::printf("peak thermal:      %.1f W\n", result.thermal_power.MaxValue());
  std::printf("spread (steady):   %.1f W\n",
              result.MaxThermalSpreadAfter(record.spec.options.duration_ticks / 2));
}

std::string RequireSocket(const eas::FlagParser& flags) {
  const std::string socket = flags.GetString("socket");
  if (socket.empty()) {
    std::fprintf(stderr, "eastool: this verb needs --socket PATH\n");
  }
  return socket;
}

// --- verbs -------------------------------------------------------------------

int RunServe(const eas::FlagParser& flags) {
  const std::string socket = RequireSocket(flags);
  if (socket.empty()) {
    return 1;
  }
  eas::ServerOptions options;
  options.socket_path = socket;
  options.service.queue_depth =
      static_cast<std::size_t>(std::max(1LL, flags.GetInt("queue-depth", 64)));
  options.service.workers =
      static_cast<std::size_t>(std::max(0LL, flags.GetInt("threads", 0)));
  auto server = eas::ExperimentServer::Start(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "eastool serve: %s\n", server.error().Render().c_str());
    return 1;
  }
  // The smoke script and wrappers poll for this line to know the socket is
  // live; keep it first and flushed.
  std::printf("serving on %s\n", socket.c_str());
  std::fflush(stdout);
  (*server)->Wait();
  std::printf("service stopped\n");
  return 0;
}

int RunSubmit(const eas::FlagParser& flags) {
  const std::string socket = RequireSocket(flags);
  if (socket.empty()) {
    return 1;
  }
  std::vector<eas::RunRequest> requests;
  if (!AssembleRequests(flags, flags.Has("batch"), &requests)) {
    return 1;
  }
  std::vector<std::string> texts;
  texts.reserve(requests.size());
  for (const eas::RunRequest& request : requests) {
    texts.push_back(eas::FormatRunRequestLine(request));
  }

  auto client = eas::ServiceClient::Connect(socket);
  if (!client.ok()) {
    std::fprintf(stderr, "eastool submit: %s\n", client.error().Render().c_str());
    return 1;
  }

  // Records arrive in completion order; for file output they are reordered
  // by (submission, index) so the bytes match the offline --jsonl file for
  // the same request.
  const std::string jsonl_path = flags.GetString("jsonl");
  std::map<std::pair<std::uint64_t, std::size_t>, std::string> ordered;
  auto outcome = client->SubmitAndStream(texts, [&](const eas::ClientRecord& record) {
    if (jsonl_path.empty()) {
      std::printf("%s\n", record.jsonl.c_str());
    } else {
      ordered[{record.submission, record.index}] = record.jsonl;
    }
  });
  if (!outcome.ok()) {
    std::fprintf(stderr, "eastool submit: %s\n", outcome.error().Render().c_str());
    return 1;
  }
  if (!jsonl_path.empty()) {
    eas::JsonlSink sink(jsonl_path);
    for (const auto& [key, line] : ordered) {
      sink.AppendLine(line);
    }
    sink.Finish();
    if (!sink.ok()) {
      std::fprintf(stderr, "eastool submit: %s\n", sink.error().c_str());
      return 1;
    }
    if (jsonl_path != "-") {
      std::printf("jsonl written:     %s\n", jsonl_path.c_str());
    }
  }
  std::fprintf(stderr, "%zu records from %zu submissions\n", outcome->records,
               outcome->submissions.size());
  return 0;
}

int RunStatus(const eas::FlagParser& flags) {
  const std::string socket = RequireSocket(flags);
  if (socket.empty()) {
    return 1;
  }
  auto client = eas::ServiceClient::Connect(socket);
  if (!client.ok()) {
    std::fprintf(stderr, "eastool status: %s\n", client.error().Render().c_str());
    return 1;
  }
  auto status = client->QueryStatus();
  if (!status.ok()) {
    std::fprintf(stderr, "eastool status: %s\n", status.error().Render().c_str());
    return 1;
  }
  std::printf("%s\n", status->c_str());
  return 0;
}

int RunShutdown(const eas::FlagParser& flags) {
  const std::string socket = RequireSocket(flags);
  if (socket.empty()) {
    return 1;
  }
  auto client = eas::ServiceClient::Connect(socket);
  if (!client.ok()) {
    std::fprintf(stderr, "eastool shutdown: %s\n", client.error().Render().c_str());
    return 1;
  }
  auto ack = client->RequestShutdown();
  if (!ack.ok()) {
    std::fprintf(stderr, "eastool shutdown: %s\n", ack.error().Render().c_str());
    return 1;
  }
  std::printf("service stopping\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);

  // Typos must not be silently swallowed: every flag is validated against
  // the known set before anything runs.
  const std::vector<std::string> unknown(
      flags.UnknownFlags(std::vector<std::string>(std::begin(kKnownFlags),
                                                  std::end(kKnownFlags))));
  if (!unknown.empty()) {
    for (const std::string& flag : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    }
    PrintUsage();
    return 1;
  }

  if (flags.Has("help")) {
    PrintUsage();
    return 0;
  }

  if (!flags.positional().empty()) {
    const std::string& verb = flags.positional().front();
    if (flags.positional().size() > 1) {
      std::fprintf(stderr, "eastool: one verb only, got \"%s\" and \"%s\"\n", verb.c_str(),
                   flags.positional()[1].c_str());
      return 1;
    }
    if (verb == "serve") {
      return RunServe(flags);
    }
    if (verb == "submit") {
      return RunSubmit(flags);
    }
    if (verb == "status") {
      return RunStatus(flags);
    }
    if (verb == "shutdown") {
      return RunShutdown(flags);
    }
    std::fprintf(stderr, "unknown verb \"%s\" (known: serve, submit, status, shutdown)\n",
                 verb.c_str());
    PrintUsage();
    return 1;
  }

  if (flags.Has("list-scenarios")) {
    for (const auto& info : eas::ScenarioRegistry::Global().List()) {
      std::printf("%-20s %s\n", info.name.c_str(), info.description.c_str());
    }
    return 0;
  }

  if (flags.Has("list-governors")) {
    for (const std::string& name : eas::FrequencyGovernorRegistry::Global().Names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  if (flags.Has("list-faults")) {
    std::fputs(eas::FaultPlanGrammar().c_str(), stdout);
    return 0;
  }

  if (flags.Has("list-sinks")) {
    for (const std::string& name : eas::SinkRegistry::Global().Names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  // --- assemble the request(s) ----------------------------------------------
  const bool batch = flags.Has("batch");
  std::vector<eas::RunRequest> requests;
  if (!AssembleRequests(flags, batch, &requests)) {
    return 1;
  }

  // --- resolve ---------------------------------------------------------------
  std::vector<eas::ResolvedRequest> resolved;
  for (const eas::RunRequest& request : requests) {
    auto r = eas::ResolveRunRequest(request);
    if (!r.ok()) {
      std::fprintf(stderr, "eastool: %s\n", r.error().Render().c_str());
      return 1;
    }
    resolved.push_back(std::move(*r));
  }

  if (flags.Has("print-request")) {
    // One canonical request file for a single invocation; for --batch, the
    // canonical batch file (one single-line request per line, replayable
    // with --batch).
    for (const eas::ResolvedRequest& r : resolved) {
      if (batch) {
        std::printf("%s\n", eas::FormatRunRequestLine(r.request).c_str());
      } else {
        std::fputs(eas::FormatRunRequest(r.request).c_str(), stdout);
      }
    }
    return 0;
  }

  // --- sinks -----------------------------------------------------------------
  const std::string trace_csv = flags.GetString("trace-csv");
  const std::string summary_csv = flags.GetString("summary-csv");
  const std::string jsonl_path = flags.GetString("jsonl");
  eas::CsvSink csv(summary_csv, trace_csv);
  eas::JsonlSink jsonl(jsonl_path);
  eas::AsciiPlotSink plot(stdout);

  eas::RunSession session(
      static_cast<std::size_t>(std::max(0LL, flags.GetInt("threads", 0))));
  if (!summary_csv.empty() || !trace_csv.empty()) {
    session.AddSink(csv);
  }
  if (!jsonl_path.empty()) {
    session.AddSink(jsonl);
  }
  if (flags.Has("plot")) {
    session.AddSink(plot);
  }
  // --sink kind:path sinks come from the registry - the same resolution the
  // service uses, so a spec that works here works there.
  std::unique_ptr<eas::ResultSink> registry_sink;
  if (flags.Has("sink")) {
    auto created = eas::SinkRegistry::Global().Create(flags.GetString("sink"));
    if (!created.ok()) {
      std::fprintf(stderr, "--sink: %s\n", created.error().Render().c_str());
      return 1;
    }
    registry_sink = std::move(*created);
    session.AddSink(*registry_sink);
  }

  // --- run (always through the parallel runner) ------------------------------
  std::vector<eas::RunRecord> records;
  try {
    records = session.Run(resolved);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run failed: %s\n", e.what());
    return 1;
  }

  if (!batch) {
    const eas::ResolvedRequest& only = resolved.front();
    std::printf("policy:            %s\n", only.policy.c_str());
    if (only.governor != "none") {
      std::printf("governor:          %s\n", only.governor.c_str());
    }
    if (!only.request.scenario.empty()) {
      std::printf("scenario:          %s\n", only.request.scenario.c_str());
    }
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) {
      std::printf("\n");
    }
    PrintResult(records[i]);
  }

  csv.Finish();
  jsonl.Finish();
  if (registry_sink != nullptr) {
    registry_sink->Finish();
  }
  for (const eas::ResultSink* sink : {static_cast<const eas::ResultSink*>(&csv),
                                      static_cast<const eas::ResultSink*>(&jsonl),
                                      static_cast<const eas::ResultSink*>(registry_sink.get())}) {
    if (sink != nullptr && !sink->ok()) {
      std::fprintf(stderr, "%s\n", sink->error().c_str());
      return 1;
    }
  }
  if (!trace_csv.empty()) {
    std::printf("trace written:     %s%s\n", trace_csv.c_str(),
                records.size() > 1 ? " (+ .runK per run)" : "");
  }
  if (!summary_csv.empty()) {
    std::printf("summary written:   %s%s\n", summary_csv.c_str(),
                records.size() > 1 ? " (one row per run)" : "");
  }
  if (!jsonl_path.empty() && jsonl_path != "-") {
    std::printf("jsonl written:     %s\n", jsonl_path.c_str());
  }
  return 0;
}
