// eastool - run energy-aware scheduling experiments from the command line.
//
// Quickstart:
//   eastool --list-scenarios
//   eastool --scenario paper-mixed --duration-s 120 --trace-csv thermal.csv
//   eastool --scenario poisson-open-loop --policy load_only --runs 4
//   eastool --topology 2:4:2 --policy energy_aware --workload mixed:6
//           --duration-s 300 --temp-limit 38 --throttle
//   eastool --policy energy_aware --workload trace:arrivals.csv --summary-csv s.csv
//   eastool --scenario paper-hot-task --runs 3 --print-request > hot.req
//   eastool --request hot.req --summary-csv s.csv
//   eastool --batch sweep.req --jsonl results.jsonl
//
// Every run is described by a RunRequest (src/api/run_request.h): the flags
// below assemble one, --request reads one from a `key = value` file, and
// --print-request writes the canonical file for the current flags - so any
// flag invocation can be captured as data and replayed exactly. --batch
// runs one request per line of a file, fanned across the parallel
// ExperimentRunner together. Results stream through ResultSinks: the
// summary/trace CSVs, JSONL, and an ASCII thermal plot.

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/result_sink.h"
#include "src/api/run_session.h"
#include "src/base/flags.h"
#include "src/freq/governor_registry.h"
#include "src/sim/scenario.h"

namespace {

void PrintUsage() {
  std::printf(
      "usage: eastool [flags]\n"
      "  --list-scenarios    list registered scenarios and exit\n"
      "  --scenario NAME     run a registered scenario (flags below override it)\n"
      "  --topology SPEC     colon-separated level widths, outermost level first,\n"
      "                      last level = SMT threads per package (default 2:4:1,\n"
      "                      the classic nodes:physical-per-node:smt grid). Up to\n"
      "                      8 levels build arbitrary-depth domain trees, e.g.\n"
      "                      4:8:2:4:2; levels can be named: rack=2:board=4:\n"
      "                      node=8:package=4:smt=2\n"
      "  --policy NAME       any BalancePolicyRegistry name (default energy_aware;\n"
      "                      aliases: baseline = load_only, eas = energy_aware,\n"
      "                      temp-only = temperature_only; '-' matches '_')\n"
      "  --workload SPEC     mixed:<inst> | homog:<m>,<p>,<b> | hot:<n> | short:<n>\n"
      "                      | list:<prog>[*<count>],...  (programs by name)\n"
      "                      | trace:<file.csv>   (rows: tick,program[,nice])\n"
      "  --governor NAME     DVFS frequency governor (default none = P0 pinned;\n"
      "                      see --list-governors)\n"
      "  --list-governors    list registered frequency governors and exit\n"
      "  --duration-s SEC    simulated seconds (default 120)\n"
      "  --runs N            expand into an N-seed sweep (default 1)\n"
      "  --seed N            experiment seed (default 42)\n"
      "  --max-power W       explicit per-package power limit\n"
      "  --temp-limit C      derive per-package limits from cooling (default 38)\n"
      "  --throttle          enforce thermal throttling\n"
      "  --no-skip-ahead     step quiescent spans tick by tick instead of\n"
      "                      skipping ahead (results are bit-identical; this\n"
      "                      is the A/B timing escape hatch)\n"
      "  --intra-threads N   intra-run workers for the package-parallel tick\n"
      "                      pipeline (default 0 = the historical interleaved\n"
      "                      loop; any N >= 1 runs the sharded pipeline, whose\n"
      "                      results are bit-identical for every N >= 1)\n"
      "  --request FILE      load a RunRequest file (key = value lines; flags\n"
      "                      above override its fields)\n"
      "  --batch FILE        run every request in FILE (one per line, 'key = v;\n"
      "                      key = v' form) as one parallel sweep; run-shaping\n"
      "                      flags are rejected, sink flags below apply\n"
      "  --print-request     print the canonical request file for the current\n"
      "                      flags and exit (replay it with --request); with\n"
      "                      --batch, the canonical batch file (one per line)\n"
      "  --threads N         runner threads, 0 = hardware (default 0)\n"
      "  --trace-csv FILE    write each run's per-CPU thermal power trace: run 0\n"
      "                      to FILE, run K of a --runs/--batch sweep to FILE.runK\n"
      "  --summary-csv FILE  write the run summary: a single run keeps the\n"
      "                      key,value format; a sweep writes a table with one\n"
      "                      row per run (columns run,name,seed,<metrics>)\n"
      "  --jsonl FILE        write one JSON object per run (metrics + the\n"
      "                      request that reproduces it)\n"
      "  --plot              print an ASCII thermal-power plot per run\n");
}

constexpr const char* kKnownFlags[] = {
    "help",       "list-scenarios", "list-governors", "scenario",    "topology",
    "policy",     "workload",       "governor",       "duration-s",  "runs",
    "seed",       "request",        "batch",          "print-request", "threads",
    "trace-csv",  "summary-csv",    "jsonl",          "plot",        "max-power",
    "temp-limit", "throttle",       "no-skip-ahead",  "intra-threads"};

// The flags that shape the request itself (as opposed to execution/output);
// rejected with --batch, where the batch file is the single source of truth.
constexpr const char* kRequestFlags[] = {"scenario",   "topology",   "policy",
                                         "workload",   "governor",   "duration-s",
                                         "runs",       "seed",       "max-power",
                                         "temp-limit", "throttle",   "no-skip-ahead",
                                         "intra-threads", "request"};

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    return false;
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  *out = buffer.str();
  return true;
}

// Overlays the request-shaping flags onto `request` (flags win over a
// --request file, exactly as they win over a --scenario base). Values go
// through the same validation the request-file parser applies, so
// `--seed 4z2` is rejected exactly like `seed = 4z2` in a file instead of
// silently running with seed 0. False (with a printed diagnostic) on a bad
// value.
bool ApplyFlagOverrides(const eas::FlagParser& flags, eas::RunRequest* request) {
  for (const char* key : {"scenario", "topology", "policy", "workload", "governor",
                          "duration-s", "max-power", "temp-limit", "intra-threads",
                          "seed", "runs"}) {
    if (!flags.Has(key)) {
      continue;
    }
    std::string error;
    if (!eas::ApplyRunRequestField(key, flags.GetString(key), request, &error)) {
      std::fprintf(stderr, "--%s: %s\n", key, error.c_str());
      return false;
    }
  }
  // --throttle is a switch (bare --throttle means true), so it cannot go
  // through the key = value path verbatim.
  if (flags.Has("throttle")) {
    request->throttle = flags.GetBool("throttle", false);
  }
  // --no-skip-ahead is likewise a bare switch; it maps onto the request's
  // skip-ahead key (the file spelling of the same choice).
  if (flags.Has("no-skip-ahead")) {
    request->skip_ahead = false;
  }
  return true;
}

void PrintResult(const eas::RunRecord& record) {
  const eas::MachineConfig& config = record.spec.config;
  const eas::RunResult& result = record.result;
  std::printf("run:               %s\n", record.spec.name.c_str());
  std::printf("arrivals:          %zu scheduled\n", record.spec.workload.size());
  std::printf("cpus:              %zu logical / %zu physical\n", config.topology.num_logical(),
              config.topology.num_physical());
  std::printf("throughput:        %.1f work-ticks/s\n", result.Throughput());
  std::printf("migrations:        %lld\n", static_cast<long long>(result.migrations));
  std::printf("completions:       %lld\n", static_cast<long long>(result.completions));
  std::printf("avg throttled:     %.2f%%\n", result.AverageThrottledFraction() * 100);
  if (!result.average_frequency.empty()) {
    std::printf("avg frequency:     %.3fx\n", result.AverageFrequencyMultiplier());
  }
  std::printf("peak thermal:      %.1f W\n", result.thermal_power.MaxValue());
  std::printf("spread (steady):   %.1f W\n",
              result.MaxThermalSpreadAfter(record.spec.options.duration_ticks / 2));
}

}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);

  // Typos must not be silently swallowed: every flag is validated against
  // the known set before anything runs.
  const std::vector<std::string> unknown(
      flags.UnknownFlags(std::vector<std::string>(std::begin(kKnownFlags),
                                                  std::end(kKnownFlags))));
  if (!unknown.empty()) {
    for (const std::string& flag : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    }
    PrintUsage();
    return 1;
  }

  if (flags.Has("help")) {
    PrintUsage();
    return 0;
  }

  if (flags.Has("list-scenarios")) {
    for (const auto& info : eas::ScenarioRegistry::Global().List()) {
      std::printf("%-20s %s\n", info.name.c_str(), info.description.c_str());
    }
    return 0;
  }

  if (flags.Has("list-governors")) {
    for (const std::string& name : eas::FrequencyGovernorRegistry::Global().Names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  // --- assemble the request(s) ----------------------------------------------
  std::vector<eas::RunRequest> requests;
  const bool batch = flags.Has("batch");
  if (batch) {
    for (const char* flag : kRequestFlags) {
      if (flags.Has(flag)) {
        std::fprintf(stderr, "--%s cannot be combined with --batch (put it in the file)\n",
                     flag);
        return 1;
      }
    }
    const std::string path = flags.GetString("batch");
    std::string text;
    if (!ReadFileToString(path, &text)) {
      std::fprintf(stderr, "cannot read --batch file %s\n", path.c_str());
      return 1;
    }
    std::istringstream lines(text);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(lines, line)) {
      ++line_number;
      const std::size_t hash = line.find('#');
      const std::string body = hash == std::string::npos ? line : line.substr(0, hash);
      if (body.find_first_not_of(" \t\r") == std::string::npos) {
        continue;  // blank or comment-only line
      }
      std::string error;
      const auto request = eas::ParseRunRequest(body, &error);
      if (!request.has_value()) {
        std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), line_number, error.c_str());
        return 1;
      }
      eas::RunRequest named = *request;
      if (named.name.empty()) {
        named.name = named.scenario.empty() ? "req" + std::to_string(requests.size())
                                            : named.scenario;
      }
      requests.push_back(std::move(named));
    }
    if (requests.empty()) {
      std::fprintf(stderr, "--batch file %s holds no requests\n", path.c_str());
      return 1;
    }
  } else {
    eas::RunRequest request;
    if (flags.Has("request")) {
      const std::string path = flags.GetString("request");
      std::string text;
      if (!ReadFileToString(path, &text)) {
        std::fprintf(stderr, "cannot read --request file %s\n", path.c_str());
        return 1;
      }
      std::string error;
      const auto parsed = eas::ParseRunRequest(text, &error);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
        return 1;
      }
      request = *parsed;
    }
    if (!ApplyFlagOverrides(flags, &request)) {
      return 1;
    }
    requests.push_back(std::move(request));
  }

  // --- resolve ---------------------------------------------------------------
  std::vector<eas::ResolvedRequest> resolved;
  for (const eas::RunRequest& request : requests) {
    std::string error;
    auto r = eas::ResolveRunRequest(request, &error);
    if (!r.has_value()) {
      std::fprintf(stderr, "eastool: %s\n", error.c_str());
      return 1;
    }
    resolved.push_back(std::move(*r));
  }

  if (flags.Has("print-request")) {
    // One canonical request file for a single invocation; for --batch, the
    // canonical batch file (one single-line request per line, replayable
    // with --batch).
    for (const eas::ResolvedRequest& r : resolved) {
      if (batch) {
        std::printf("%s\n", eas::FormatRunRequestLine(r.request).c_str());
      } else {
        std::fputs(eas::FormatRunRequest(r.request).c_str(), stdout);
      }
    }
    return 0;
  }

  // --- sinks -----------------------------------------------------------------
  const std::string trace_csv = flags.GetString("trace-csv");
  const std::string summary_csv = flags.GetString("summary-csv");
  const std::string jsonl_path = flags.GetString("jsonl");
  eas::CsvSink csv(summary_csv, trace_csv);
  eas::JsonlSink jsonl(jsonl_path);
  eas::AsciiPlotSink plot(stdout);

  eas::RunSession session(
      static_cast<std::size_t>(std::max(0LL, flags.GetInt("threads", 0))));
  if (!summary_csv.empty() || !trace_csv.empty()) {
    session.AddSink(csv);
  }
  if (!jsonl_path.empty()) {
    session.AddSink(jsonl);
  }
  if (flags.Has("plot")) {
    session.AddSink(plot);
  }

  // --- run (always through the parallel runner) ------------------------------
  std::vector<eas::RunRecord> records;
  try {
    records = session.Run(resolved);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run failed: %s\n", e.what());
    return 1;
  }

  if (!batch) {
    const eas::ResolvedRequest& only = resolved.front();
    std::printf("policy:            %s\n", only.policy.c_str());
    if (only.governor != "none") {
      std::printf("governor:          %s\n", only.governor.c_str());
    }
    if (!only.request.scenario.empty()) {
      std::printf("scenario:          %s\n", only.request.scenario.c_str());
    }
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) {
      std::printf("\n");
    }
    PrintResult(records[i]);
  }

  csv.Finish();
  jsonl.Finish();
  for (const eas::ResultSink* sink : {static_cast<const eas::ResultSink*>(&csv),
                                      static_cast<const eas::ResultSink*>(&jsonl)}) {
    if (!sink->ok()) {
      std::fprintf(stderr, "%s\n", sink->error().c_str());
      return 1;
    }
  }
  if (!trace_csv.empty()) {
    std::printf("trace written:     %s%s\n", trace_csv.c_str(),
                records.size() > 1 ? " (+ .runK per run)" : "");
  }
  if (!summary_csv.empty()) {
    std::printf("summary written:   %s%s\n", summary_csv.c_str(),
                records.size() > 1 ? " (one row per run)" : "");
  }
  if (!jsonl_path.empty()) {
    std::printf("jsonl written:     %s\n", jsonl_path.c_str());
  }
  return 0;
}
