// eastool - run energy-aware scheduling experiments from the command line.
//
// Quickstart:
//   eastool --list-scenarios
//   eastool --scenario paper-mixed --duration-s 120 --trace-csv thermal.csv
//   eastool --scenario poisson-open-loop --policy load_only --runs 4
//   eastool --topology 2:4:2 --policy energy_aware --workload mixed:6
//           --duration-s 300 --temp-limit 38 --throttle
//   eastool --policy energy_aware --workload trace:arrivals.csv --summary-csv s.csv
//
// Scenarios come from the ScenarioRegistry (src/sim/scenario.h): a named,
// fully-specified experiment (topology, cooling, limits, policy, workload,
// duration, seed). Explicit flags override the scenario's settings. Policies
// resolve purely through the BalancePolicyRegistry; "baseline" and "eas" are
// accepted as aliases for load_only / energy_aware, and '-' matches '_'.
// With --runs N the spec is expanded into an N-seed sweep and fanned across
// the parallel ExperimentRunner (deterministic for any --threads).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "src/base/flags.h"
#include "src/core/policy_registry.h"
#include "src/freq/governor_registry.h"
#include "src/sim/csv_export.h"
#include "src/sim/scenario.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

void PrintUsage() {
  std::printf(
      "usage: eastool [flags]\n"
      "  --list-scenarios    list registered scenarios and exit\n"
      "  --scenario NAME     run a registered scenario (flags below override it)\n"
      "  --topology N:P:S    nodes : physical-per-node : smt (default 2:4:1)\n"
      "  --policy NAME       any BalancePolicyRegistry name (default energy_aware;\n"
      "                      aliases: baseline = load_only, eas = energy_aware,\n"
      "                      temp-only = temperature_only; '-' matches '_')\n"
      "  --workload SPEC     mixed:<inst> | homog:<m>,<p>,<b> | hot:<n> | short:<n>\n"
      "                      | trace:<file.csv>   (rows: tick,program[,nice])\n"
      "  --governor NAME     DVFS frequency governor (default none = P0 pinned;\n"
      "                      see --list-governors)\n"
      "  --list-governors    list registered frequency governors and exit\n"
      "  --duration-s SEC    simulated seconds (default 120)\n"
      "  --runs N            expand into an N-seed sweep (default 1)\n"
      "  --threads N         runner threads, 0 = hardware (default 0)\n"
      "  --max-power W       explicit per-package power limit\n"
      "  --temp-limit C      derive per-package limits from cooling (default 38)\n"
      "  --throttle          enforce thermal throttling\n"
      "  --seed N            experiment seed (default 42)\n"
      "  --trace-csv FILE    write per-CPU thermal power trace (first run)\n"
      "  --summary-csv FILE  write the run summary (first run)\n");
}

// Registry policy name for a CLI spelling: '-' matches '_', plus the legacy
// aliases the tool has always accepted.
std::string NormalizePolicyName(std::string name) {
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  if (name == "baseline") {
    return "load_only";
  }
  if (name == "eas") {
    return "energy_aware";
  }
  if (name == "temp_only") {  // the tool's historical spelling was temp-only
    return "temperature_only";
  }
  return name;
}

void PrintResult(const std::string& name, const eas::MachineConfig& config,
                 const eas::Experiment::Options& options, const eas::RunResult& result,
                 std::size_t tasks) {
  std::printf("run:               %s\n", name.c_str());
  std::printf("arrivals:          %zu scheduled\n", tasks);
  std::printf("cpus:              %zu logical / %zu physical\n", config.topology.num_logical(),
              config.topology.num_physical());
  std::printf("throughput:        %.1f work-ticks/s\n", result.Throughput());
  std::printf("migrations:        %lld\n", static_cast<long long>(result.migrations));
  std::printf("completions:       %lld\n", static_cast<long long>(result.completions));
  std::printf("avg throttled:     %.2f%%\n", result.AverageThrottledFraction() * 100);
  if (!result.average_frequency.empty()) {
    std::printf("avg frequency:     %.3fx\n", result.AverageFrequencyMultiplier());
  }
  std::printf("peak thermal:      %.1f W\n", result.thermal_power.MaxValue());
  std::printf("spread (steady):   %.1f W\n",
              result.MaxThermalSpreadAfter(options.duration_ticks / 2));
}

}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    PrintUsage();
    return 0;
  }

  if (flags.Has("list-scenarios")) {
    for (const auto& info : eas::ScenarioRegistry::Global().List()) {
      std::printf("%-20s %s\n", info.name.c_str(), info.description.c_str());
    }
    return 0;
  }

  if (flags.Has("list-governors")) {
    for (const std::string& name : eas::FrequencyGovernorRegistry::Global().Names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  eas::ExperimentSpec spec;
  const bool from_scenario = flags.Has("scenario");

  if (from_scenario) {
    // --- scenario base ------------------------------------------------------
    const std::string name = flags.GetString("scenario");
    if (!eas::ScenarioRegistry::Global().Contains(name)) {
      std::fprintf(stderr, "unknown --scenario %s (registered:", name.c_str());
      for (const std::string& known : eas::ScenarioRegistry::Global().Names()) {
        std::fprintf(stderr, " %s", known.c_str());
      }
      std::fprintf(stderr, ")\n");
      return 1;
    }
    spec = eas::ScenarioRegistry::Global().BuildOrThrow(name).ToExperimentSpec();
    if (flags.Has("workload")) {
      std::fprintf(stderr, "--workload cannot override a --scenario workload\n");
      return 1;
    }
  } else {
    spec.name = "cli";
  }

  // --- machine overrides ----------------------------------------------------
  if (!from_scenario || flags.Has("topology")) {
    std::string error;
    const auto topology =
        eas::ParseTopologySpec(flags.GetString("topology", "2:4:1"), &error);
    if (!topology.has_value()) {
      std::fprintf(stderr, "bad --topology: %s\n", error.c_str());
      return 1;
    }
    spec.config.topology = *topology;
    if (spec.config.topology.num_physical() == 8) {
      spec.config.cooling = eas::CoolingProfile::PaperXSeries445();
    } else {
      spec.config.cooling = eas::CoolingProfile::Uniform(spec.config.topology.num_physical(),
                                                         eas::ThermalParams{});
    }
  }
  if (flags.Has("max-power")) {
    spec.config.explicit_max_power_physical = flags.GetDouble("max-power", 60.0);
  }
  if (!from_scenario || flags.Has("temp-limit")) {
    spec.config.temp_limit = flags.GetDouble("temp-limit", 38.0);
  }
  if (!from_scenario || flags.Has("throttle")) {
    spec.config.throttling_enabled = flags.GetBool("throttle", false);
  }
  if (!from_scenario || flags.Has("seed")) {
    spec.config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  }

  // --- policy (resolved purely via the BalancePolicyRegistry) ---------------
  std::string policy = NormalizePolicyName(flags.GetString("policy", "energy_aware"));
  if (!from_scenario || flags.Has("policy")) {
    if (!eas::BalancePolicyRegistry::Global().Contains(policy)) {
      std::fprintf(stderr, "unknown --policy %s (registered:", policy.c_str());
      for (const std::string& name : eas::BalancePolicyRegistry::Global().Names()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, ")\n");
      return 1;
    }
    spec.config.sched = eas::SchedConfigForPolicy(policy);
  } else {
    policy = eas::EffectiveBalancerName(spec.config.sched);
  }

  // --- frequency governor (resolved via the FrequencyGovernorRegistry) ------
  if (!from_scenario || flags.Has("governor")) {
    const std::string governor = flags.GetString("governor", "none");
    if (!eas::FrequencyGovernorRegistry::Global().Contains(governor)) {
      std::fprintf(stderr, "unknown --governor %s (registered:", governor.c_str());
      for (const std::string& name : eas::FrequencyGovernorRegistry::Global().Names()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, ")\n");
      return 1;
    }
    spec.config.frequency_governor = governor;
  }

  // --- workload -------------------------------------------------------------
  if (!from_scenario) {
    auto library = std::make_shared<eas::ProgramLibrary>(spec.config.model);
    const std::string workload_spec = flags.GetString("workload", "mixed:3");
    eas::Workload workload;
    if (workload_spec.rfind("trace:", 0) == 0) {
      std::string error;
      if (!eas::LoadTraceWorkload(workload_spec.substr(6), *library, &workload, &error)) {
        std::fprintf(stderr, "bad --workload trace: %s\n", error.c_str());
        return 1;
      }
    } else {
      workload = eas::Workload(eas::ParseWorkloadSpec(workload_spec, *library));
    }
    if (workload.empty()) {
      std::fprintf(stderr, "bad --workload %s\n", workload_spec.c_str());
      return 1;
    }
    workload.Retain(library);
    spec.workload = std::move(workload);
  }

  // --- duration / sweep -----------------------------------------------------
  if (!from_scenario || flags.Has("duration-s")) {
    spec.options.duration_ticks =
        static_cast<eas::Tick>(flags.GetDouble("duration-s", 120.0) * 1000.0);
  }
  if (!from_scenario) {
    spec.options.sample_interval_ticks = 500;
  }

  const long long runs = flags.GetInt("runs", 1);
  if (runs < 1) {
    std::fprintf(stderr, "bad --runs (want >= 1)\n");
    return 1;
  }
  std::vector<eas::ExperimentSpec> specs =
      runs == 1 ? std::vector<eas::ExperimentSpec>{spec}
                : eas::ExperimentRunner::SeedSweep(spec, static_cast<std::size_t>(runs));

  // --- run (always through the parallel runner) -----------------------------
  const eas::ExperimentRunner runner(
      static_cast<std::size_t>(std::max(0LL, flags.GetInt("threads", 0))));
  std::vector<eas::RunResult> results;
  try {
    results = runner.RunAll(specs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run failed: %s\n", e.what());
    return 1;
  }

  std::printf("policy:            %s\n", policy.c_str());
  if (spec.config.frequency_governor != "none") {
    std::printf("governor:          %s\n", spec.config.frequency_governor.c_str());
  }
  if (from_scenario) {
    std::printf("scenario:          %s\n", flags.GetString("scenario").c_str());
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i > 0) {
      std::printf("\n");
    }
    PrintResult(specs[i].name, specs[i].config, specs[i].options, results[i],
                specs[i].workload.size());
  }

  const eas::RunResult& first = results.front();
  const std::string trace_csv = flags.GetString("trace-csv");
  if (!trace_csv.empty()) {
    if (!eas::WriteFile(trace_csv, eas::SeriesSetToCsv(first.thermal_power))) {
      std::fprintf(stderr, "failed to write %s\n", trace_csv.c_str());
      return 1;
    }
    std::printf("trace written:     %s\n", trace_csv.c_str());
  }
  const std::string summary_csv = flags.GetString("summary-csv");
  if (!summary_csv.empty()) {
    if (!eas::WriteFile(summary_csv, eas::RunSummaryToCsv(first))) {
      std::fprintf(stderr, "failed to write %s\n", summary_csv.c_str());
      return 1;
    }
    std::printf("summary written:   %s\n", summary_csv.c_str());
  }
  return 0;
}
