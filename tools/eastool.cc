// eastool - run energy-aware scheduling experiments from the command line.
//
// Examples:
//   eastool --topology 2:4:2 --policy eas --workload mixed:6
//           --duration-s 300 --temp-limit 38 --throttle
//   eastool --topology 2:4:1 --policy baseline --workload homog:8,2,8
//           --duration-s 120 --max-power 60
//   eastool --policy eas --workload hot:1 --max-power 40 --throttle
//           --trace-csv thermal.csv --summary-csv summary.csv
//
// Policies: baseline | eas | power-only | temp-only, or any name registered
// in the BalancePolicyRegistry (see --policy handling below).
// Workloads: mixed:<instances> | homog:<memrw>,<pushpop>,<bitcnts> | hot:<n>
//            | short:<n>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/flags.h"
#include "src/core/policy_registry.h"
#include "src/sim/csv_export.h"
#include "src/sim/experiment.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

void PrintUsage() {
  std::printf(
      "usage: eastool [flags]\n"
      "  --topology N:P:S    nodes : physical-per-node : smt (default 2:4:1)\n"
      "  --policy NAME       baseline | eas | power-only | temp-only, or any\n"
      "                      BalancePolicyRegistry name (default eas)\n"
      "  --workload SPEC     mixed:<inst> | homog:<m>,<p>,<b> | hot:<n> | short:<n>\n"
      "  --duration-s SEC    simulated seconds (default 120)\n"
      "  --max-power W       explicit per-package power limit\n"
      "  --temp-limit C      derive per-package limits from cooling (default 38)\n"
      "  --throttle          enforce thermal throttling\n"
      "  --seed N            experiment seed (default 42)\n"
      "  --trace-csv FILE    write per-CPU thermal power trace\n"
      "  --summary-csv FILE  write the run summary\n");
}

}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    PrintUsage();
    return 0;
  }

  // --- machine -----------------------------------------------------------
  eas::MachineConfig config;
  {
    const auto fields = eas::FlagParser::SplitColons(flags.GetString("topology", "2:4:1"));
    if (fields.size() != 3) {
      std::fprintf(stderr, "bad --topology (want N:P:S)\n");
      return 1;
    }
    config.topology =
        eas::CpuTopology(static_cast<std::size_t>(std::atoi(fields[0].c_str())),
                         static_cast<std::size_t>(std::atoi(fields[1].c_str())),
                         static_cast<std::size_t>(std::atoi(fields[2].c_str())));
  }
  if (config.topology.num_physical() == 8) {
    config.cooling = eas::CoolingProfile::PaperXSeries445();
  } else {
    config.cooling = eas::CoolingProfile::Uniform(config.topology.num_physical(),
                                                  eas::ThermalParams{});
  }
  if (flags.Has("max-power")) {
    config.explicit_max_power_physical = flags.GetDouble("max-power", 60.0);
  }
  config.temp_limit = flags.GetDouble("temp-limit", 38.0);
  config.throttling_enabled = flags.GetBool("throttle", false);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  const std::string policy = flags.GetString("policy", "eas");
  if (policy == "baseline") {
    config.sched = eas::EnergySchedConfig::Baseline();
  } else if (policy == "eas") {
    config.sched = eas::EnergySchedConfig::EnergyAware();
  } else if (policy == "power-only") {
    config.sched = eas::EnergySchedConfig::EnergyAware();
    config.sched.balancer_kind = eas::BalancerKind::kPowerOnly;
  } else if (policy == "temp-only") {
    config.sched = eas::EnergySchedConfig::EnergyAware();
    config.sched.balancer_kind = eas::BalancerKind::kTemperatureOnly;
  } else if (eas::BalancePolicyRegistry::Global().Contains(policy)) {
    // Any registered balancing policy is selectable by its registry name.
    config.sched = eas::EnergySchedConfig::EnergyAware();
    config.sched.balancer_name = policy;
  } else {
    std::fprintf(stderr, "unknown --policy %s (registered:", policy.c_str());
    for (const std::string& name : eas::BalancePolicyRegistry::Global().Names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 1;
  }

  // --- workload ------------------------------------------------------------
  const eas::ProgramLibrary library(config.model);
  const auto workload =
      eas::ParseWorkloadSpec(flags.GetString("workload", "mixed:3"), library);
  if (workload.empty()) {
    std::fprintf(stderr, "bad --workload\n");
    return 1;
  }

  // --- run --------------------------------------------------------------------
  eas::Experiment::Options options;
  options.duration_ticks = static_cast<eas::Tick>(flags.GetDouble("duration-s", 120.0) * 1000.0);
  options.sample_interval_ticks = 500;
  eas::Experiment experiment(config, options);
  const eas::RunResult result = experiment.Run(workload);

  std::printf("policy:            %s\n", policy.c_str());
  std::printf("tasks:             %zu\n", workload.size());
  std::printf("cpus:              %zu logical / %zu physical\n", config.topology.num_logical(),
              config.topology.num_physical());
  std::printf("throughput:        %.1f work-ticks/s\n", result.Throughput());
  std::printf("migrations:        %lld\n", static_cast<long long>(result.migrations));
  std::printf("completions:       %lld\n", static_cast<long long>(result.completions));
  std::printf("avg throttled:     %.2f%%\n", result.AverageThrottledFraction() * 100);
  std::printf("peak thermal:      %.1f W\n", result.thermal_power.MaxValue());
  std::printf("spread (steady):   %.1f W\n",
              result.MaxThermalSpreadAfter(options.duration_ticks / 2));

  const std::string trace_csv = flags.GetString("trace-csv");
  if (!trace_csv.empty()) {
    if (!eas::WriteFile(trace_csv, eas::SeriesSetToCsv(result.thermal_power))) {
      std::fprintf(stderr, "failed to write %s\n", trace_csv.c_str());
      return 1;
    }
    std::printf("trace written:     %s\n", trace_csv.c_str());
  }
  const std::string summary_csv = flags.GetString("summary-csv");
  if (!summary_csv.empty()) {
    if (!eas::WriteFile(summary_csv, eas::RunSummaryToCsv(result))) {
      std::fprintf(stderr, "failed to write %s\n", summary_csv.c_str());
      return 1;
    }
    std::printf("summary written:   %s\n", summary_csv.c_str());
  }
  return 0;
}
