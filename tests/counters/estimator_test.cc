#include "src/counters/energy_estimator.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

TEST(EnergyEstimatorTest, OracleMatchesTruthOnDynamicEnergy) {
  const EnergyModel model = EnergyModel::Default();
  const EnergyEstimator estimator = EnergyEstimator::Oracle(model, 1);
  EventVector events{};
  events[EventIndex(EventType::kUopsRetired)] = 500.0;
  events[EventIndex(EventType::kMemTransactions)] = 120.0;
  EXPECT_NEAR(estimator.EstimateDynamicEnergy(events), model.DynamicEnergy(events), 1e-12);
}

TEST(EnergyEstimatorTest, OracleSplitsStaticAcrossSiblings) {
  const EnergyModel model = EnergyModel::Default();
  const EnergyEstimator smt1 = EnergyEstimator::Oracle(model, 1);
  const EnergyEstimator smt2 = EnergyEstimator::Oracle(model, 2);
  EXPECT_NEAR(smt2.static_power_per_logical(), smt1.static_power_per_logical() / 2.0, 1e-12);
}

TEST(EnergyEstimatorTest, EstimateEnergyAddsStaticShare) {
  const EnergyModel model = EnergyModel::Default();
  const EnergyEstimator estimator = EnergyEstimator::Oracle(model, 1);
  const double dynamic = estimator.EstimateDynamicEnergy(ZeroEvents());
  EXPECT_DOUBLE_EQ(dynamic, 0.0);
  // 100 ticks at 18 W static = 1.8 J.
  EXPECT_NEAR(estimator.EstimateEnergy(ZeroEvents(), 100), 18.0 * 0.1, 1e-9);
}

TEST(EnergyEstimatorTest, EstimatePowerNormalizes) {
  const EnergyModel model = EnergyModel::Default();
  const EnergyEstimator estimator = EnergyEstimator::Oracle(model, 1);
  EventVector events{};
  events[EventIndex(EventType::kIntAluOps)] = 1000.0;
  const double power_100 = estimator.EstimatePower(events, 100);
  // Same events over half the time means double the dynamic power.
  const double power_50 = estimator.EstimatePower(events, 50);
  EXPECT_GT(power_50, power_100);
}

TEST(EnergyEstimatorTest, EstimatePowerAtZeroTicks) {
  const EnergyEstimator estimator = EnergyEstimator::Oracle(EnergyModel::Default(), 1);
  // No events, no accounted time: genuinely idle, 0 W.
  EXPECT_DOUBLE_EQ(estimator.EstimatePower(ZeroEvents(), 0), 0.0);
  // A nonzero diff at zero accounted ticks is under-resolved execution, not
  // idleness: it must surface as the one-tick power, never as 0 W.
  EventVector events{};
  events[EventIndex(EventType::kIntAluOps)] = 1000.0;
  EXPECT_DOUBLE_EQ(estimator.EstimatePower(events, 0), estimator.EstimatePower(events, 1));
  EXPECT_GT(estimator.EstimatePower(events, 0), 0.0);
}

TEST(EnergyEstimatorTest, TaskPowerReconstruction) {
  // A full pipeline check: a task emitting bitcnts-like rates for one
  // timeslice must be estimated at ~its nominal power.
  const EnergyModel model = EnergyModel::Default();
  const EnergyEstimator estimator = EnergyEstimator::Oracle(model, 1);
  EventRates signature{};
  signature[EventIndex(EventType::kUopsRetired)] = 1.0;
  signature[EventIndex(EventType::kIntAluOps)] = 1.0;
  const EventRates rates = model.RatesForTargetPower(signature, 61.0);
  EventVector total{};
  const int ticks = 100;
  for (int t = 0; t < ticks; ++t) {
    for (std::size_t i = 0; i < kNumEventTypes; ++i) {
      total[i] += rates[i];
    }
  }
  EXPECT_NEAR(estimator.EstimatePower(total, ticks), 61.0, 1e-6);
}

}  // namespace
}  // namespace eas
