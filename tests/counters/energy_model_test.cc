#include "src/counters/energy_model.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

TEST(EnergyModelTest, DynamicEnergyIsLinear) {
  const EnergyModel model = EnergyModel::Default();
  EventVector a{};
  a[EventIndex(EventType::kIntAluOps)] = 100.0;
  EventVector b = a;
  for (auto& v : b) {
    v *= 2.0;
  }
  EXPECT_NEAR(model.DynamicEnergy(b), 2.0 * model.DynamicEnergy(a), 1e-12);
}

TEST(EnergyModelTest, ZeroEventsZeroDynamicEnergy) {
  const EnergyModel model = EnergyModel::Default();
  EXPECT_DOUBLE_EQ(model.DynamicEnergy(ZeroEvents()), 0.0);
}

TEST(EnergyModelTest, HaltPowerMatchesPaper) {
  const EnergyModel model = EnergyModel::Default();
  EXPECT_DOUBLE_EQ(model.halt_power(), 13.6);
}

TEST(EnergyModelTest, NominalTotalIncludesBase) {
  const EnergyModel model = EnergyModel::Default();
  EventRates rates{};
  EXPECT_DOUBLE_EQ(model.NominalTotalPower(rates), model.active_base_power());
}

TEST(EnergyModelTest, RatesForTargetPowerHitsTarget) {
  const EnergyModel model = EnergyModel::Default();
  EventRates signature{};
  signature[EventIndex(EventType::kUopsRetired)] = 1.0;
  signature[EventIndex(EventType::kIntAluOps)] = 0.5;
  for (double target : {38.0, 47.0, 61.0}) {
    const EventRates rates = model.RatesForTargetPower(signature, target);
    EXPECT_NEAR(model.NominalTotalPower(rates), target, 1e-9);
  }
}

TEST(EnergyModelTest, RatesPreserveSignatureShape) {
  const EnergyModel model = EnergyModel::Default();
  EventRates signature{};
  signature[EventIndex(EventType::kUopsRetired)] = 2.0;
  signature[EventIndex(EventType::kIntAluOps)] = 1.0;
  const EventRates rates = model.RatesForTargetPower(signature, 50.0);
  EXPECT_NEAR(rates[EventIndex(EventType::kUopsRetired)],
              2.0 * rates[EventIndex(EventType::kIntAluOps)], 1e-9);
}

TEST(EnergyModelTest, MemoryEventsCostMoreThanAluEvents) {
  // The premise behind memrw being cool: per event more energy, but the
  // sustainable rate is what differs. Weights alone must reflect the cost.
  const EnergyModel model = EnergyModel::Default();
  EXPECT_GT(model.weights()[EventIndex(EventType::kMemTransactions)],
            model.weights()[EventIndex(EventType::kIntAluOps)]);
  EXPECT_GT(model.weights()[EventIndex(EventType::kL2CacheMisses)],
            model.weights()[EventIndex(EventType::kMemTransactions)]);
}

}  // namespace
}  // namespace eas
