#include "src/counters/counter_block.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

EventVector MakeEvents(double uops, double mem) {
  EventVector e{};
  e[EventIndex(EventType::kUopsRetired)] = uops;
  e[EventIndex(EventType::kMemTransactions)] = mem;
  return e;
}

TEST(CounterBlockTest, StartsAtZero) {
  CounterBlock block;
  for (double v : block.values()) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(CounterBlockTest, AccumulatesMonotonically) {
  CounterBlock block;
  block.Accumulate(MakeEvents(10.0, 5.0));
  block.Accumulate(MakeEvents(7.0, 1.0));
  EXPECT_DOUBLE_EQ(block.values()[EventIndex(EventType::kUopsRetired)], 17.0);
  EXPECT_DOUBLE_EQ(block.values()[EventIndex(EventType::kMemTransactions)], 6.0);
}

TEST(CounterBlockTest, DiffSinceSnapshot) {
  CounterBlock block;
  block.Accumulate(MakeEvents(10.0, 5.0));
  const EventVector snapshot = block.values();
  block.Accumulate(MakeEvents(3.0, 2.0));
  const EventVector diff = block.DiffSince(snapshot);
  EXPECT_DOUBLE_EQ(diff[EventIndex(EventType::kUopsRetired)], 3.0);
  EXPECT_DOUBLE_EQ(diff[EventIndex(EventType::kMemTransactions)], 2.0);
  EXPECT_DOUBLE_EQ(diff[EventIndex(EventType::kIntAluOps)], 0.0);
}

TEST(CounterBlockTest, ResetClears) {
  CounterBlock block;
  block.Accumulate(MakeEvents(10.0, 5.0));
  block.Reset();
  for (double v : block.values()) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(EventTypesTest, NamesAreDistinct) {
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    for (std::size_t j = i + 1; j < kNumEventTypes; ++j) {
      EXPECT_NE(EventName(static_cast<EventType>(i)), EventName(static_cast<EventType>(j)));
    }
  }
}

}  // namespace
}  // namespace eas
