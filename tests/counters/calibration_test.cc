#include "src/counters/calibration.h"

#include <gtest/gtest.h>

#include "src/counters/energy_estimator.h"

namespace eas {
namespace {

TEST(CalibrationTest, RecoversWeightsWithinTolerance) {
  const EnergyModel truth = EnergyModel::Default();
  const CalibrationResult result = Calibrator::CalibrateDefault(truth, 123, 0.02);
  EXPECT_EQ(result.runs_used, 16u);
  // With 2% meter noise the recovered weights must stay within 10% of truth
  // (the paper's overall estimation error bound).
  EXPECT_LT(result.max_relative_weight_error, 0.10);
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    EXPECT_GT(result.weights[i], 0.0) << "weight " << i << " must be positive";
  }
}

TEST(CalibrationTest, PerfectMeterRecoversAlmostExactly) {
  const EnergyModel truth = EnergyModel::Default();
  const CalibrationResult result = Calibrator::CalibrateDefault(truth, 7, 0.0);
  // Only per-tick rate jitter remains; least squares still averages it out.
  EXPECT_LT(result.max_relative_weight_error, 0.02);
}

TEST(CalibrationTest, SolveRequiresEnoughRuns) {
  const EnergyModel truth = EnergyModel::Default();
  Calibrator calibrator(truth);
  CalibrationRun run;
  run.events[0] = 100.0;
  run.measured_energy = 1.0;
  calibrator.AddRun(run);
  CalibrationResult result;
  EXPECT_FALSE(calibrator.Solve(result));
}

TEST(CalibrationTest, DegenerateRunsAreSingular) {
  const EnergyModel truth = EnergyModel::Default();
  Calibrator calibrator(truth);
  // Identical runs: rank 1 system.
  for (int i = 0; i < 10; ++i) {
    CalibrationRun run;
    for (std::size_t j = 0; j < kNumEventTypes; ++j) {
      run.events[j] = 100.0;
    }
    run.measured_energy = 1.0;
    calibrator.AddRun(run);
  }
  CalibrationResult result;
  EXPECT_FALSE(calibrator.Solve(result));
}

TEST(CalibrationTest, EndToEndEstimationErrorUnderTenPercent) {
  // The paper's headline bound: estimation error < 10% for real workloads.
  const EnergyModel truth = EnergyModel::Default();
  const CalibrationResult calibration = Calibrator::CalibrateDefault(truth, 99, 0.02);
  const EnergyEstimator estimator(calibration.weights, truth.active_base_power());

  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    // A random "application": random mix, run for 100 ticks.
    EventRates rates{};
    for (std::size_t i = 0; i < kNumEventTypes; ++i) {
      rates[i] = rng.Uniform(10.0, 1500.0);
    }
    EventVector total{};
    double true_energy = 0.0;
    for (int t = 0; t < 100; ++t) {
      EventVector events{};
      for (std::size_t i = 0; i < kNumEventTypes; ++i) {
        events[i] = rates[i] * (1.0 + rng.Gaussian(0.0, 0.03));
        total[i] += events[i];
      }
      true_energy += truth.DynamicEnergy(events);
    }
    const double estimated = estimator.EstimateDynamicEnergy(total);
    const double error = std::abs(estimated - true_energy) / true_energy;
    EXPECT_LT(error, 0.10) << "trial " << trial;
  }
}

}  // namespace
}  // namespace eas
