#include "src/sched/load_balancer.h"

#include <gtest/gtest.h>

#include "tests/testing/fake_env.h"

namespace eas {
namespace {

TEST(LoadBalancerTest, PullsFromOverloadedCpu) {
  FakeEnv env(CpuTopology(1, 2, 1));
  env.AddRunningTask(40.0, 0);
  env.AddTask(40.0, 0);
  env.AddTask(40.0, 0);
  env.AddTask(40.0, 0);  // cpu0: 4 tasks, cpu1: idle
  LoadBalancer balancer;
  const int pulled = balancer.Balance(1, env);
  EXPECT_GE(pulled, 1);
  EXPECT_LE(env.runqueue(0).nr_running() - env.runqueue(1).nr_running(), 2u);
}

TEST(LoadBalancerTest, NoPullWhenBalanced) {
  FakeEnv env(CpuTopology(1, 2, 1));
  env.AddRunningTask(40.0, 0);
  env.AddRunningTask(40.0, 1);
  LoadBalancer balancer;
  EXPECT_EQ(balancer.Balance(1, env), 0);
  EXPECT_EQ(env.migration_count(), 0);
}

TEST(LoadBalancerTest, ToleratesImbalanceOfOne) {
  FakeEnv env(CpuTopology(1, 2, 1));
  env.AddRunningTask(40.0, 0);
  env.AddTask(40.0, 0);  // 2 vs 1: tolerated
  env.AddRunningTask(40.0, 1);
  LoadBalancer balancer;
  EXPECT_EQ(balancer.Balance(1, env), 0);
}

TEST(LoadBalancerTest, CannotPullRunningTask) {
  FakeEnv env(CpuTopology(1, 2, 1));
  env.AddRunningTask(40.0, 0);  // only the running task, nothing queued
  LoadBalancer balancer;
  EXPECT_EQ(balancer.Balance(1, env), 0);
}

TEST(LoadBalancerTest, PullerIsTheUnderloadedSide) {
  // The balancer only pulls; running it on the busy CPU must do nothing.
  FakeEnv env(CpuTopology(1, 2, 1));
  env.AddRunningTask(40.0, 0);
  env.AddTask(40.0, 0);
  env.AddTask(40.0, 0);
  LoadBalancer balancer;
  EXPECT_EQ(balancer.Balance(0, env), 0);
}

TEST(LoadBalancerTest, ResolvesWithinNodeFirst) {
  // Node 0: cpu0 overloaded, cpu1 idle. Node 1: cpu2, cpu3 idle.
  FakeEnv env(CpuTopology(2, 2, 1));
  env.AddRunningTask(40.0, 0);
  for (int i = 0; i < 3; ++i) {
    env.AddTask(40.0, 0);
  }
  LoadBalancer balancer;
  // cpu1 (same node) pulls...
  EXPECT_GE(balancer.Balance(1, env), 1);
  Task* pulled_task = env.runqueue(1).queued().front();
  // ...and the migration stayed within the node.
  EXPECT_EQ(pulled_task->node_migrations(), 0);
}

TEST(LoadBalancerTest, CrossNodePullWhenNecessary) {
  FakeEnv env(CpuTopology(2, 2, 1));
  // Both CPUs of node 0 overloaded; node 1 idle.
  for (int cpu = 0; cpu < 2; ++cpu) {
    env.AddRunningTask(40.0, cpu);
    env.AddTask(40.0, cpu);
    env.AddTask(40.0, cpu);
  }
  LoadBalancer balancer;
  EXPECT_GE(balancer.Balance(2, env), 1);
}

TEST(LoadBalancerTest, GroupLoadAverages) {
  FakeEnv env(CpuTopology(1, 2, 1));
  env.AddRunningTask(40.0, 0);
  env.AddTask(40.0, 0);
  CpuGroup group;
  group.cpus = {0, 1};
  EXPECT_DOUBLE_EQ(LoadBalancer::GroupLoad(group, env), 1.0);
}

TEST(LoadBalancerTest, PickTaskPreferences) {
  FakeEnv env(CpuTopology(1, 2, 1));
  env.AddTask(50.0, 0);
  Task* hot = env.AddTask(61.0, 0);
  Task* cool = env.AddTask(38.0, 0);
  const Runqueue& rq = env.runqueue(0);
  EXPECT_EQ(LoadBalancer::PickTask(rq, PullPreference::kHot), hot);
  EXPECT_EQ(LoadBalancer::PickTask(rq, PullPreference::kCool), cool);
  EXPECT_NE(LoadBalancer::PickTask(rq, PullPreference::kAny), nullptr);
}

// --- degenerate topologies: the domain walk must survive every tree shape --

TEST(LoadBalancerDegenerateTest, SingleCpuMachineBalancesToNothing) {
  FakeEnv env(CpuTopology({{"package", 1}, {"smt", 1}}));
  env.AddRunningTask(40.0, 0);
  env.AddTask(40.0, 0);
  LoadBalancer balancer;
  EXPECT_EQ(balancer.Balance(0, env), 0);
  EXPECT_EQ(env.migration_count(), 0);
}

TEST(LoadBalancerDegenerateTest, WidthOneInteriorLevelsCollapse) {
  // Interior levels of width 1 add tree depth but no siblings; the walk
  // must skip through them and still find the one real peer.
  FakeEnv env(CpuTopology({{"rack", 1}, {"board", 1}, {"package", 2}, {"smt", 1}}));
  env.AddRunningTask(40.0, 0);
  env.AddTask(40.0, 0);
  env.AddTask(40.0, 0);
  env.AddTask(40.0, 0);
  LoadBalancer balancer;
  EXPECT_GE(balancer.Balance(1, env), 1);
}

TEST(LoadBalancerDegenerateTest, DeepNarrowTreePullsAcrossTheTopLevel) {
  // 2x2x2 single-thread tree: cpu0 and cpu7 share only the root. The
  // pull must descend the remote top-level group down to the busy leaf.
  FakeEnv env(CpuTopology({{"rack", 2}, {"node", 2}, {"package", 2}, {"smt", 1}}));
  env.AddRunningTask(40.0, 0);
  for (int i = 0; i < 7; ++i) {
    env.AddTask(40.0, 0);
  }
  LoadBalancer balancer;
  EXPECT_GE(balancer.Balance(7, env), 1);
  EXPECT_GE(env.migration_count(), 1);
}

TEST(LoadBalancerDegenerateTest, SmtOnlyMachineBalancesSiblings) {
  // One package, two hyperthreads: the only domain is the SMT pair.
  FakeEnv env(CpuTopology({{"package", 1}, {"smt", 2}}));
  env.AddRunningTask(40.0, 0);
  env.AddTask(40.0, 0);
  env.AddTask(40.0, 0);
  LoadBalancer balancer;
  EXPECT_GE(balancer.Balance(1, env), 1);
}

TEST(LoadBalancerDegenerateTest, ManyTasksConvergeOnADeepTree) {
  // The convergence property on a five-level tree: 32 tasks piled on one
  // leaf spread to ~2 per CPU after a few whole-machine rounds.
  FakeEnv env(CpuTopology({{"rack", 2}, {"board", 2}, {"node", 2}, {"package", 2}, {"smt", 1}}));
  for (int i = 0; i < 32; ++i) {
    env.AddTask(40.0, 0);
  }
  LoadBalancer balancer;
  for (int round = 0; round < 12; ++round) {
    for (int cpu = 0; cpu < 16; ++cpu) {
      balancer.Balance(cpu, env);
    }
  }
  for (int cpu = 0; cpu < 16; ++cpu) {
    EXPECT_NEAR(static_cast<double>(env.runqueue(cpu).nr_running()), 2.0, 1.0) << "cpu" << cpu;
  }
}

TEST(LoadBalancerTest, ManyTasksConvergeToEvenQueues) {
  FakeEnv env(CpuTopology(2, 4, 1));
  for (int i = 0; i < 24; ++i) {
    env.AddTask(40.0, 0);  // all 24 tasks start on cpu0
  }
  LoadBalancer balancer;
  for (int round = 0; round < 10; ++round) {
    for (int cpu = 0; cpu < 8; ++cpu) {
      balancer.Balance(cpu, env);
    }
  }
  for (int cpu = 0; cpu < 8; ++cpu) {
    EXPECT_NEAR(static_cast<double>(env.runqueue(cpu).nr_running()), 3.0, 1.0);
  }
}

}  // namespace
}  // namespace eas
