// BalanceAggregateCache: group aggregates are memoized within a pass,
// recomputed after Invalidate()/BeginPass(), and always equal to the scans
// they replace.

#include "src/sched/balance_cache.h"

#include <gtest/gtest.h>

#include "src/sched/load_balancer.h"
#include "tests/testing/fake_env.h"

namespace eas {
namespace {

const CpuGroup& FirstRemoteGroup(const BalanceEnv& env, int cpu) {
  const SchedDomain* domain = env.domains().DomainsFor(cpu).back();
  for (const CpuGroup& group : domain->groups) {
    if (domain->GroupOf(cpu) != &group) {
      return group;
    }
  }
  return domain->groups.front();
}

TEST(BalanceCacheTest, MatchesDirectScans) {
  FakeEnv env(CpuTopology::PaperXSeries445(false), 40.0);
  env.AddTask(50.0, 0);
  env.AddTask(30.0, 4);
  env.AddTask(44.0, 4);
  env.SetThermalPower(4, 35.0);

  BalanceAggregateCache& cache = env.aggregate_cache();
  cache.BeginPass();
  for (const SchedDomain* domain : env.domains().DomainsFor(0)) {
    for (const CpuGroup& group : domain->groups) {
      EXPECT_DOUBLE_EQ(cache.Load(group, env), LoadBalancer::GroupLoad(group, env));
      double rq_sum = 0.0;
      double thermal_sum = 0.0;
      for (int cpu : group.cpus) {
        rq_sum += env.RunqueuePowerRatio(cpu);
        thermal_sum += env.ThermalPowerRatio(cpu);
      }
      const double n = static_cast<double>(group.cpus.size());
      EXPECT_DOUBLE_EQ(cache.RunqueuePowerRatio(group, env), rq_sum / n);
      EXPECT_DOUBLE_EQ(cache.ThermalPowerRatio(group, env), thermal_sum / n);
    }
  }
}

TEST(BalanceCacheTest, MemoizesUntilInvalidated) {
  FakeEnv env(CpuTopology::PaperXSeries445(false), 40.0);
  const CpuGroup& group = FirstRemoteGroup(env, 0);
  const int remote_cpu = group.cpus.front();

  BalanceAggregateCache& cache = env.aggregate_cache();
  cache.BeginPass();
  const double before = cache.Load(group, env);

  env.AddTask(50.0, remote_cpu);
  // Within the pass the cached value holds (the mutation did not go through
  // a migration, so nothing invalidated it)...
  EXPECT_DOUBLE_EQ(cache.Load(group, env), before);
  // ...and an invalidation recomputes from the live runqueues.
  cache.Invalidate();
  EXPECT_DOUBLE_EQ(cache.Load(group, env), LoadBalancer::GroupLoad(group, env));
  EXPECT_GT(cache.Load(group, env), before);
}

TEST(BalanceCacheTest, BeginPassStartsFresh) {
  FakeEnv env(CpuTopology::PaperXSeries445(false), 40.0);
  const CpuGroup& group = FirstRemoteGroup(env, 0);

  BalanceAggregateCache& cache = env.aggregate_cache();
  cache.BeginPass();
  const double idle_ratio = cache.ThermalPowerRatio(group, env);

  env.SetThermalPower(group.cpus.front(), 39.0);
  cache.BeginPass();
  EXPECT_GT(cache.ThermalPowerRatio(group, env), idle_ratio);
}

}  // namespace
}  // namespace eas
