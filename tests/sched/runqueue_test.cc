#include "src/sched/runqueue.h"

#include <gtest/gtest.h>

#include "tests/testing/fake_env.h"

namespace eas {
namespace {

class RunqueueTest : public ::testing::Test {
 protected:
  RunqueueTest() : env_(CpuTopology(1, 2, 1)) {}
  FakeEnv env_;
};

TEST_F(RunqueueTest, StartsIdle) {
  Runqueue& rq = env_.runqueue(0);
  EXPECT_TRUE(rq.Idle());
  EXPECT_EQ(rq.nr_running(), 0u);
  EXPECT_EQ(rq.PickNext(), nullptr);
}

TEST_F(RunqueueTest, EnqueueSetsCpuAndState) {
  Task* task = env_.AddTask(40.0, 0);
  EXPECT_EQ(task->cpu(), 0);
  EXPECT_EQ(task->state(), TaskState::kRunnable);
  EXPECT_EQ(env_.runqueue(0).nr_running(), 1u);
}

TEST_F(RunqueueTest, PickNextIsFifo) {
  Task* a = env_.AddTask(40.0, 0);
  Task* b = env_.AddTask(50.0, 0);
  Runqueue& rq = env_.runqueue(0);
  EXPECT_EQ(rq.PickNext(), a);
  EXPECT_EQ(a->state(), TaskState::kRunning);
  EXPECT_EQ(rq.current(), a);
  EXPECT_EQ(rq.nr_running(), 2u);  // current + queued
  EXPECT_EQ(rq.nr_queued(), 1u);
  rq.TakeCurrent();
  EXPECT_EQ(rq.PickNext(), b);
}

TEST_F(RunqueueTest, EnqueueFrontRunsNext) {
  env_.AddTask(40.0, 0);
  Task* woken = env_.AddTask(30.0, 1);
  Runqueue& rq = env_.runqueue(0);
  rq.Remove(woken);  // not on 0; returns false but harmless
  env_.runqueue(1).Remove(woken);
  rq.EnqueueFront(woken);
  EXPECT_EQ(rq.PickNext(), woken);
}

TEST_F(RunqueueTest, RemoveFindsQueuedOnly) {
  Task* a = env_.AddTask(40.0, 0);
  Runqueue& rq = env_.runqueue(0);
  rq.PickNext();
  EXPECT_FALSE(rq.Remove(a));  // a is current, not queued
  Task* b = env_.AddTask(50.0, 0);
  EXPECT_TRUE(rq.Remove(b));
  EXPECT_FALSE(rq.Remove(b));
}

TEST_F(RunqueueTest, AveragePowerOfEmptyQueueIsIdlePower) {
  EXPECT_DOUBLE_EQ(env_.runqueue(0).AveragePower(13.6), 13.6);
}

TEST_F(RunqueueTest, AveragePowerIncludesCurrentAndQueued) {
  env_.AddRunningTask(60.0, 0);
  env_.AddTask(40.0, 0);
  env_.AddTask(50.0, 0);
  EXPECT_NEAR(env_.runqueue(0).AveragePower(13.6), 50.0, 1e-9);
}

TEST_F(RunqueueTest, HottestAndCoolestQueued) {
  env_.AddRunningTask(99.0, 0);  // current must be ignored
  Task* cool = env_.AddTask(38.0, 0);
  Task* hot = env_.AddTask(61.0, 0);
  env_.AddTask(47.0, 0);
  Runqueue& rq = env_.runqueue(0);
  EXPECT_EQ(rq.HottestQueued(), hot);
  EXPECT_EQ(rq.CoolestQueued(), cool);
}

TEST_F(RunqueueTest, HottestOfEmptyQueueIsNull) {
  env_.AddRunningTask(60.0, 0);
  EXPECT_EQ(env_.runqueue(0).HottestQueued(), nullptr);
  EXPECT_EQ(env_.runqueue(0).CoolestQueued(), nullptr);
}

TEST_F(RunqueueTest, QueuedPowerSumReanchorsOnEmptyAfterDrift) {
  // Force floating-point rounding in the incremental queued-power sum with a
  // huge/tiny power pair: ((1e16 + 3.3) - 1e16) - 3.3 != 0 in doubles. Once
  // the queue empties the sum must re-anchor at exactly zero, so the next
  // enqueue reads back bit-exact.
  Task* huge = env_.AddTask(1e16, 0);
  Task* tiny = env_.AddTask(3.3, 0);
  Runqueue& rq = env_.runqueue(0);
  ASSERT_TRUE(rq.Remove(huge));
  ASSERT_TRUE(rq.Remove(tiny));
  EXPECT_DOUBLE_EQ(rq.AveragePower(13.6), 13.6);
  Task* task = env_.AddTask(47.0, 0);
  EXPECT_DOUBLE_EQ(rq.AveragePower(13.6), 47.0);
  ASSERT_TRUE(rq.Remove(task));
}

TEST_F(RunqueueTest, QueuedPowerSumReanchorsViaPickNextDrain) {
  // Same drift scenario, drained through PickNext (the scheduler's path)
  // instead of Remove: popping the last queued task must also re-anchor.
  env_.AddTask(1e16, 0);
  env_.AddTask(3.3, 0);
  Runqueue& rq = env_.runqueue(0);
  rq.PickNext();
  rq.PickNext();  // queue now empty, drift re-anchored; 3.3-task is current
  rq.TakeCurrent();
  Task* task = env_.AddTask(52.5, 0);
  EXPECT_DOUBLE_EQ(rq.AveragePower(13.6), 52.5);
  ASSERT_TRUE(rq.Remove(task));
}

TEST_F(RunqueueTest, TakeCurrentDetaches) {
  Task* a = env_.AddRunningTask(40.0, 0);
  Runqueue& rq = env_.runqueue(0);
  EXPECT_EQ(rq.TakeCurrent(), a);
  EXPECT_EQ(rq.current(), nullptr);
  EXPECT_TRUE(rq.Idle());
}

}  // namespace
}  // namespace eas
