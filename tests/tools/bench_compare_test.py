#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py - the benchmark regression gate.

Covers every comparator (tick_hot_path, sweep_scaling, governor_sweep,
cluster_scale, serve_throughput, chaos_overhead) on passing and regressing
inputs, the asymmetric row-set
rule (baseline row missing fails, new current row is warned and skipped),
the config-mismatch refusal, the JSONL loader, and main()'s bench-name
pairing check plus the "gate gated nothing" guard.

Stdlib only; run directly (`python3 tests/tools/bench_compare_test.py`)
or through ctest as `bench_compare_test`.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_SPEC = importlib.util.spec_from_file_location(
    "bench_compare", os.path.join(_REPO, "tools", "bench_compare.py"))
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def tick_hot_path_doc(rate=1000.0, identical=True, ticks=5000):
    return {
        "bench": "tick_hot_path",
        "ticks": ticks,
        "sparse_ticks": 20000,
        "threads": 8,
        "build_type": "Release",
        "populations": [
            {"name": "light_64", "engine_ticks_per_second": rate, "identical": identical},
            {"name": "sparse_idle", "engine_ticks_per_second": rate * 4, "identical": identical},
        ],
    }


def sweep_scaling_doc(rate=500.0, deterministic=True):
    return {
        "bench": "sweep_scaling",
        "runs": 8,
        "duration_ticks": 20000,
        "threads": 8,
        "build_type": "Release",
        "single_thread_ticks_per_second": rate,
        "deterministic_across_threads": deterministic,
    }


def governor_sweep_doc(throughput=2000.0):
    return {
        "bench": "governor_sweep",
        "scenario": "two-phase",
        "duration_ticks": 20000,
        "runs": [
            {"name": "none/load_only", "throughput": throughput},
            {"name": "ondemand/load_only", "throughput": throughput * 0.9,
             "avg_frequency_cpu0": 2.2},
        ],
    }


def cluster_scale_doc(rate=100.0):
    return {
        "bench": "cluster_scale",
        "ticks": 200,
        "intra_threads": 4,
        "balance_sweeps": 3,
        "threads": 8,
        "build_type": "Release",
        "rows": [
            {"name": "tick_512", "ticks_per_second": rate, "identical": True},
            {"name": "balance_1024", "passes_per_second": rate * 10},
            {"name": "balance_scaling", "sublinear": True},
        ],
    }


def serve_throughput_doc(rate=50.0, identical=True):
    return {
        "bench": "serve_throughput",
        "requests": 24,
        "duration_ms": 2000,
        "threads": 4,
        "build_type": "release",
        "rows": [
            {"name": "warm_service", "seconds": 0.5, "requests_per_second": rate,
             "identical": True},
            {"name": "warm_socket", "seconds": 0.5, "requests_per_second": rate * 0.95,
             "identical": identical},
            {"name": "fork_per_run", "seconds": 2.0, "requests_per_second": rate / 4,
             "identical": identical},
        ],
    }


def chaos_overhead_doc(throughput=1500.0, wall_rate=100000.0, identical=True,
                       chaos_fired=26):
    return {
        "bench": "chaos_overhead",
        "scenario": "chaos-soak",
        "duration_ticks": 20000,
        "threads": 8,
        "build_type": "release",
        "runs": [
            {"name": "fault-free", "throughput": throughput,
             "wall_ticks_per_second": wall_rate},
            {"name": "armed-idle", "throughput": throughput,
             "wall_ticks_per_second": wall_rate * 0.97, "faults_fired": 0,
             "offline_cpu_ticks": 0, "identical_physics": identical},
            {"name": "chaos", "throughput": throughput * 0.8,
             "wall_ticks_per_second": wall_rate * 0.9,
             "faults_fired": chaos_fired, "offline_cpu_ticks": 4000},
        ],
    }


def run_gate(comparator, baseline, current, threshold=0.25):
    gate = bench_compare.Gate(threshold)
    comparator(baseline, current, gate)
    return gate


class TickHotPathTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        gate = run_gate(bench_compare.compare_tick_hot_path,
                        tick_hot_path_doc(), tick_hot_path_doc())
        self.assertEqual(gate.failures, [])
        self.assertEqual(gate.rates_compared, 2)

    def test_improvement_passes(self):
        gate = run_gate(bench_compare.compare_tick_hot_path,
                        tick_hot_path_doc(rate=1000.0), tick_hot_path_doc(rate=2000.0))
        self.assertEqual(gate.failures, [])

    def test_regression_beyond_threshold_fails(self):
        gate = run_gate(bench_compare.compare_tick_hot_path,
                        tick_hot_path_doc(rate=1000.0), tick_hot_path_doc(rate=600.0))
        self.assertTrue(any("engine_ticks_per_second" in f for f in gate.failures))

    def test_regression_within_threshold_passes(self):
        gate = run_gate(bench_compare.compare_tick_hot_path,
                        tick_hot_path_doc(rate=1000.0), tick_hot_path_doc(rate=900.0))
        self.assertEqual(gate.failures, [])

    def test_config_mismatch_fails(self):
        gate = run_gate(bench_compare.compare_tick_hot_path,
                        tick_hot_path_doc(ticks=5000), tick_hot_path_doc(ticks=100))
        self.assertTrue(any("config mismatch on 'ticks'" in f for f in gate.failures))

    def test_lost_bit_identity_fails(self):
        gate = run_gate(bench_compare.compare_tick_hot_path,
                        tick_hot_path_doc(identical=True), tick_hot_path_doc(identical=False))
        self.assertTrue(any("bit-identical" in f for f in gate.failures))

    def test_missing_baseline_row_fails(self):
        current = tick_hot_path_doc()
        current["populations"] = current["populations"][:1]  # sparse_idle gone
        gate = run_gate(bench_compare.compare_tick_hot_path, tick_hot_path_doc(), current)
        self.assertTrue(any("sparse_idle" in f for f in gate.failures))

    def test_new_current_row_is_skipped_not_failed(self):
        current = tick_hot_path_doc()
        current["populations"].append(
            {"name": "heavy_4096", "engine_ticks_per_second": 50.0, "identical": True})
        gate = run_gate(bench_compare.compare_tick_hot_path, tick_hot_path_doc(), current)
        self.assertEqual(gate.failures, [])
        self.assertTrue(any("heavy_4096" in line and "skipped" in line for line in gate.lines))


class SweepScalingTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        gate = run_gate(bench_compare.compare_sweep_scaling,
                        sweep_scaling_doc(), sweep_scaling_doc())
        self.assertEqual(gate.failures, [])
        self.assertEqual(gate.rates_compared, 1)

    def test_regression_fails(self):
        gate = run_gate(bench_compare.compare_sweep_scaling,
                        sweep_scaling_doc(rate=500.0), sweep_scaling_doc(rate=300.0))
        self.assertTrue(any("single_thread_ticks_per_second" in f for f in gate.failures))

    def test_lost_determinism_fails(self):
        gate = run_gate(bench_compare.compare_sweep_scaling,
                        sweep_scaling_doc(), sweep_scaling_doc(deterministic=False))
        self.assertTrue(any("deterministic_across_threads" in f for f in gate.failures))

    def test_build_type_mismatch_fails(self):
        current = sweep_scaling_doc()
        current["build_type"] = "Debug"
        gate = run_gate(bench_compare.compare_sweep_scaling, sweep_scaling_doc(), current)
        self.assertTrue(any("config mismatch on 'build_type'" in f for f in gate.failures))


class GovernorSweepTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        gate = run_gate(bench_compare.compare_governor_sweep,
                        governor_sweep_doc(), governor_sweep_doc())
        self.assertEqual(gate.failures, [])
        self.assertEqual(gate.rates_compared, 2)

    def test_gates_at_one_percent_not_global_threshold(self):
        # Simulated throughput is deterministic: a 5% drop is far inside the
        # 25% wall-clock threshold but must still fail the 1% gate.
        gate = run_gate(bench_compare.compare_governor_sweep,
                        governor_sweep_doc(throughput=2000.0),
                        governor_sweep_doc(throughput=1900.0))
        self.assertTrue(any("throughput" in f for f in gate.failures))

    def test_dvfs_column_on_none_row_fails(self):
        current = governor_sweep_doc()
        current["runs"][0]["avg_frequency_cpu0"] = 2.8  # "none/" must not carry it
        gate = run_gate(bench_compare.compare_governor_sweep, governor_sweep_doc(), current)
        self.assertTrue(any("dvfs columns absent[none/load_only]" in f for f in gate.failures))

    def test_missing_dvfs_column_on_governed_row_fails(self):
        current = governor_sweep_doc()
        del current["runs"][1]["avg_frequency_cpu0"]
        gate = run_gate(bench_compare.compare_governor_sweep, governor_sweep_doc(), current)
        self.assertTrue(
            any("dvfs columns present[ondemand/load_only]" in f for f in gate.failures))

    def test_missing_baseline_row_fails(self):
        current = governor_sweep_doc()
        current["runs"] = current["runs"][1:]
        gate = run_gate(bench_compare.compare_governor_sweep, governor_sweep_doc(), current)
        self.assertTrue(any("none/load_only" in f for f in gate.failures))


class ClusterScaleTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        gate = run_gate(bench_compare.compare_cluster_scale,
                        cluster_scale_doc(), cluster_scale_doc())
        self.assertEqual(gate.failures, [])
        self.assertEqual(gate.rates_compared, 2)  # one ticks/s row, one passes/s row

    def test_tick_row_regression_fails(self):
        gate = run_gate(bench_compare.compare_cluster_scale,
                        cluster_scale_doc(rate=100.0), cluster_scale_doc(rate=50.0))
        self.assertTrue(any("ticks_per_second[tick_512]" in f for f in gate.failures))
        self.assertTrue(any("passes_per_second[balance_1024]" in f for f in gate.failures))

    def test_lost_sublinear_scaling_fails(self):
        current = cluster_scale_doc()
        current["rows"][2]["sublinear"] = False
        gate = run_gate(bench_compare.compare_cluster_scale, cluster_scale_doc(), current)
        self.assertTrue(any("sublinear" in f for f in gate.failures))

    def test_intra_threads_mismatch_fails(self):
        current = cluster_scale_doc()
        current["intra_threads"] = 2
        gate = run_gate(bench_compare.compare_cluster_scale, cluster_scale_doc(), current)
        self.assertTrue(any("config mismatch on 'intra_threads'" in f for f in gate.failures))


class ServeThroughputTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        gate = run_gate(bench_compare.compare_serve_throughput,
                        serve_throughput_doc(), serve_throughput_doc())
        self.assertEqual(gate.failures, [])
        self.assertEqual(gate.rates_compared, 3)

    def test_regression_fails(self):
        gate = run_gate(bench_compare.compare_serve_throughput,
                        serve_throughput_doc(rate=50.0), serve_throughput_doc(rate=20.0))
        self.assertTrue(
            any("requests_per_second[warm_service]" in f for f in gate.failures))

    def test_lost_byte_identity_fails(self):
        gate = run_gate(bench_compare.compare_serve_throughput,
                        serve_throughput_doc(identical=True),
                        serve_throughput_doc(identical=False))
        self.assertTrue(any("byte-identical" in f for f in gate.failures))

    def test_missing_fork_row_fails(self):
        current = serve_throughput_doc()
        current["rows"] = current["rows"][:2]  # fork_per_run gone
        gate = run_gate(bench_compare.compare_serve_throughput,
                        serve_throughput_doc(), current)
        self.assertTrue(any("fork_per_run" in f for f in gate.failures))

    def test_config_mismatch_fails(self):
        current = serve_throughput_doc()
        current["requests"] = 8
        gate = run_gate(bench_compare.compare_serve_throughput,
                        serve_throughput_doc(), current)
        self.assertTrue(any("config mismatch on 'requests'" in f for f in gate.failures))


class ChaosOverheadTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        gate = run_gate(bench_compare.compare_chaos_overhead,
                        chaos_overhead_doc(), chaos_overhead_doc())
        self.assertEqual(gate.failures, [])
        self.assertEqual(gate.rates_compared, 6)  # throughput + wall rate x 3 rows

    def test_simulated_throughput_gates_at_one_percent(self):
        # 5% lower simulated throughput is well inside the 25% wall-clock
        # tolerance but the rows are deterministic - it must fail.
        gate = run_gate(bench_compare.compare_chaos_overhead,
                        chaos_overhead_doc(throughput=1500.0),
                        chaos_overhead_doc(throughput=1425.0))
        self.assertTrue(any("throughput[" in f for f in gate.failures))

    def test_idle_overhead_regression_fails(self):
        # The armed-idle wall rate collapsing means the fault layer started
        # costing real time while firing nothing.
        current = chaos_overhead_doc()
        current["runs"][1]["wall_ticks_per_second"] = 1000.0
        gate = run_gate(bench_compare.compare_chaos_overhead,
                        chaos_overhead_doc(), current)
        self.assertTrue(
            any("wall_ticks_per_second[armed-idle]" in f for f in gate.failures))

    def test_diverged_idle_physics_fails(self):
        gate = run_gate(bench_compare.compare_chaos_overhead,
                        chaos_overhead_doc(identical=True),
                        chaos_overhead_doc(identical=False))
        self.assertTrue(any("physics identical" in f for f in gate.failures))

    def test_chaos_plan_that_stops_firing_fails(self):
        gate = run_gate(bench_compare.compare_chaos_overhead,
                        chaos_overhead_doc(chaos_fired=26),
                        chaos_overhead_doc(chaos_fired=0))
        self.assertTrue(any("fires faults" in f for f in gate.failures))

    def test_fault_columns_on_fault_free_row_fail(self):
        current = chaos_overhead_doc()
        current["runs"][0]["faults_fired"] = 0  # fault-free must not carry it
        gate = run_gate(bench_compare.compare_chaos_overhead,
                        chaos_overhead_doc(), current)
        self.assertTrue(
            any("fault columns absent[fault-free]" in f for f in gate.failures))

    def test_missing_armed_idle_row_fails(self):
        current = chaos_overhead_doc()
        current["runs"] = [current["runs"][0], current["runs"][2]]
        gate = run_gate(bench_compare.compare_chaos_overhead,
                        chaos_overhead_doc(), current)
        self.assertTrue(any("armed-idle" in f for f in gate.failures))


class GateTest(unittest.TestCase):
    def test_non_positive_baseline_is_skipped(self):
        gate = bench_compare.Gate(0.25)
        gate.rate("m", 0.0, 100.0)
        self.assertEqual(gate.failures, [])
        self.assertEqual(gate.rates_compared, 0)

    def test_per_metric_threshold_overrides_global(self):
        gate = bench_compare.Gate(0.25)
        gate.rate("m", 100.0, 95.0, threshold=0.01)
        self.assertTrue(gate.failures)


class LoadTest(unittest.TestCase):
    def _write(self, directory, name, text):
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return path

    def test_loads_single_document(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = self._write(tmp, "doc.json", json.dumps(tick_hot_path_doc()))
            self.assertEqual(bench_compare.load(path)["bench"], "tick_hot_path")

    def test_loads_jsonl_with_header_runs_and_trailer(self):
        with tempfile.TemporaryDirectory() as tmp:
            lines = [
                json.dumps({"bench": "governor_sweep", "scenario": "two-phase"}),
                json.dumps({"name": "none/load_only", "throughput": 2000.0}),
                json.dumps({"name": "ondemand/load_only", "throughput": 1800.0,
                            "avg_frequency_cpu0": 2.2}),
                json.dumps({"duration_ticks": 20000}),  # trailer merges into header
            ]
            path = self._write(tmp, "doc.jsonl", "\n".join(lines) + "\n")
            doc = bench_compare.load(path)
            self.assertEqual(doc["bench"], "governor_sweep")
            self.assertEqual(doc["duration_ticks"], 20000)
            self.assertEqual([run["name"] for run in doc["runs"]],
                             ["none/load_only", "ondemand/load_only"])

    def test_jsonl_without_bench_key_exits(self):
        with tempfile.TemporaryDirectory() as tmp:
            # Two lines so the single-document parse fails and the JSONL
            # branch runs; no line carries "bench", which must refuse.
            text = json.dumps({"name": "a"}) + "\n" + json.dumps({"name": "b"}) + "\n"
            path = self._write(tmp, "doc.jsonl", text)
            with self.assertRaises(SystemExit):
                bench_compare.load(path)

    def test_unreadable_path_exits(self):
        with self.assertRaises(SystemExit):
            bench_compare.load(os.path.join(tempfile.gettempdir(), "no-such-file.json"))


class MainTest(unittest.TestCase):
    def _run_main(self, baseline_doc, current_doc, argv_extra=()):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            current = os.path.join(tmp, "current.json")
            with open(baseline, "w", encoding="utf-8") as handle:
                json.dump(baseline_doc, handle)
            with open(current, "w", encoding="utf-8") as handle:
                json.dump(current_doc, handle)
            argv = ["bench_compare.py", "--baseline", baseline, "--current", current]
            argv.extend(argv_extra)
            old_argv, old_stdout = sys.argv, sys.stdout
            sys.argv = argv
            sys.stdout = open(os.devnull, "w", encoding="utf-8")
            try:
                return bench_compare.main()
            finally:
                sys.stdout.close()
                sys.argv, sys.stdout = old_argv, old_stdout

    def test_pass_exit_zero(self):
        self.assertEqual(self._run_main(tick_hot_path_doc(), tick_hot_path_doc()), 0)

    def test_regression_exit_nonzero(self):
        self.assertEqual(
            self._run_main(tick_hot_path_doc(rate=1000.0), tick_hot_path_doc(rate=100.0)), 1)

    def test_mismatched_bench_names_refuse(self):
        with self.assertRaises(SystemExit):
            self._run_main(tick_hot_path_doc(), sweep_scaling_doc())

    def test_unknown_bench_refuses(self):
        doc = {"bench": "no_such_bench"}
        with self.assertRaises(SystemExit):
            self._run_main(doc, dict(doc))

    def test_gate_that_gated_nothing_fails(self):
        # Every population row vanishes from both files: zero rates compared
        # must fail, not silently pass.
        baseline = tick_hot_path_doc()
        baseline["populations"] = []
        current = tick_hot_path_doc()
        current["populations"] = []
        self.assertEqual(self._run_main(baseline, current), 1)

    def test_threshold_flag_is_honored(self):
        self.assertEqual(
            self._run_main(tick_hot_path_doc(rate=1000.0), tick_hot_path_doc(rate=900.0),
                           argv_extra=["--threshold", "0.05"]), 1)


if __name__ == "__main__":
    unittest.main()
