// BoundedWorkQueue: admission is all-or-nothing and shutdown drains rather
// than drops - including when the two race. A batch admitted concurrently
// with Shutdown() must come out whole or not at all; a partially dropped
// batch would stream half a submission's records and leave the client
// unable to tell backpressure from loss.

#include "src/service/work_queue.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace eas {
namespace {

TEST(BoundedWorkQueueTest, BatchLargerThanCapacityIsRejectedWhole) {
  BoundedWorkQueue<int> queue(4);
  EXPECT_FALSE(queue.TryPushBatch({1, 2, 3, 4, 5}));
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.TryPushBatch({1, 2, 3, 4}));
  EXPECT_FALSE(queue.TryPushBatch({5}));  // full: no partial admission
  EXPECT_EQ(queue.size(), 4u);
}

TEST(BoundedWorkQueueTest, ShutdownDrainsTheBacklogBeforeReturningEmpty) {
  BoundedWorkQueue<int> queue(8);
  ASSERT_TRUE(queue.TryPushBatch({1, 2, 3}));
  queue.Shutdown();
  EXPECT_FALSE(queue.TryPushBatch({4}));  // admission stops immediately
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // drained, then - and only then - empty
}

TEST(BoundedWorkQueueTest, BatchRacingShutdownIsFullyDrainedOrFullyRejected) {
  // Regression for the shutdown race: a batch whose TryPushBatch overlaps
  // Stop() must never be partially dropped. Repeat the race enough times to
  // land the interleaving both ways.
  constexpr int kRounds = 400;
  constexpr std::size_t kBatch = 8;
  int admitted_rounds = 0;
  int rejected_rounds = 0;
  for (int round = 0; round < kRounds; ++round) {
    BoundedWorkQueue<int> queue(16);
    bool admitted = false;
    std::thread producer([&] {
      std::vector<int> batch;
      for (std::size_t i = 0; i < kBatch; ++i) {
        batch.push_back(static_cast<int>(i));
      }
      admitted = queue.TryPushBatch(std::move(batch));
    });
    queue.Shutdown();
    producer.join();

    std::size_t popped = 0;
    while (queue.Pop().has_value()) {
      ++popped;
    }
    // The whole batch or none of it - and the push's return value must
    // agree with what a consumer actually saw.
    EXPECT_EQ(popped, admitted ? kBatch : 0u) << "round " << round;
    (admitted ? admitted_rounds : rejected_rounds) += 1;
  }
  // Sanity on the harness, not the queue: the loop exercised at least one
  // interleaving. (With Shutdown racing an already-started push both
  // outcomes are valid; in practice hundreds of rounds hit both.)
  EXPECT_EQ(admitted_rounds + rejected_rounds, kRounds);
}

TEST(BoundedWorkQueueTest, ConcurrentConsumersSeeEveryAdmittedJobExactlyOnce) {
  BoundedWorkQueue<int> queue(64);
  std::vector<int> seen(64, 0);
  std::vector<std::thread> consumers;
  std::mutex seen_mutex;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (auto job = queue.Pop()) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        seen[static_cast<std::size_t>(*job)] += 1;
      }
    });
  }
  for (int base = 0; base < 64; base += 8) {
    std::vector<int> batch;
    for (int i = base; i < base + 8; ++i) {
      batch.push_back(i);
    }
    ASSERT_TRUE(queue.TryPushBatch(std::move(batch)));
  }
  queue.Shutdown();
  for (std::thread& consumer : consumers) {
    consumer.join();
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1) << "job " << i;
  }
}

}  // namespace
}  // namespace eas
