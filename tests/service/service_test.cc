// ExperimentService: the transport-free core of eastool serve. The load-
// bearing property is byte-identity - every record a warm service streams
// must be exactly the line an offline `eastool --request` replay of the
// same request would have written - plus the admission contract: bounded
// queue, all-or-nothing batches, explicit queue-full rejection, and a
// shutdown that drains what it admitted.

#include "src/service/experiment_service.h"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/result_sink.h"
#include "src/api/run_session.h"

namespace eas {
namespace {

// What the offline path would have produced: resolve the same text, run it
// on a RunSession, render each record through the same JsonlRecordLine.
std::vector<std::string> OfflineLines(const std::string& text) {
  const auto request = ParseRunRequest(text);
  EXPECT_TRUE(request.ok()) << (request.ok() ? "" : request.error().Render());
  const auto resolved = ResolveRunRequest(*request);
  EXPECT_TRUE(resolved.ok()) << (resolved.ok() ? "" : resolved.error().Render());
  const RunSession session(1);
  std::vector<std::string> lines;
  for (const RunRecord& record : session.Run(*resolved)) {
    lines.push_back(JsonlRecordLine(record));
  }
  return lines;
}

// Collects streamed records, reordered per submission by record index -
// the same reconstruction eastool submit --jsonl performs.
struct Collector {
  std::mutex mutex;
  std::map<std::uint64_t, std::map<std::size_t, StreamedRecord>> by_submission;

  ExperimentService::RecordFn fn() {
    return [this](const StreamedRecord& record) {
      std::lock_guard<std::mutex> lock(mutex);
      by_submission[record.submission][record.index] = record;
    };
  }

  std::vector<std::string> Lines(std::uint64_t submission) {
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::string> lines;
    for (const auto& [index, record] : by_submission[submission]) {
      lines.push_back(record.jsonl);
    }
    return lines;
  }
};

constexpr const char kQuickRequest[] =
    "name = svc; topology = 1:2:1; workload = hot:2; duration-s = 2; seed = 5; runs = 3";

TEST(ExperimentServiceTest, StreamsBytesIdenticalToOfflineReplay) {
  ExperimentService service({/*queue_depth=*/8, /*workers=*/2, /*start_workers=*/true});
  Collector collector;
  const auto submitted = service.Submit(kQuickRequest, collector.fn());
  ASSERT_TRUE(submitted.ok()) << submitted.error().Render();
  EXPECT_EQ(submitted->records, 3u);
  service.Drain();

  const std::vector<std::string> warm = collector.Lines(submitted->submission);
  ASSERT_EQ(warm.size(), 3u);
  EXPECT_EQ(warm, OfflineLines(kQuickRequest));
}

TEST(ExperimentServiceTest, ScenarioCacheDoesNotChangeTheBytes) {
  // The whole point of the warm service: the second scenario submission is
  // served from the cache - and the bytes cannot tell.
  const std::string text = "scenario = paper-hot-task; duration-s = 2; seed = 3";
  ExperimentService service({/*queue_depth=*/8, /*workers=*/2, /*start_workers=*/true});
  Collector collector;
  const auto first = service.Submit(text, collector.fn());
  const auto second = service.Submit(text, collector.fn());
  ASSERT_TRUE(first.ok() && second.ok());
  service.Drain();

  const std::vector<std::string> offline = OfflineLines(text);
  EXPECT_EQ(collector.Lines(first->submission), offline);
  EXPECT_EQ(collector.Lines(second->submission), offline);
  const ServiceStatusSnapshot status = service.Status();
  EXPECT_GT(status.scenario_cache_hits, 0u);
  EXPECT_GT(status.scenario_cache_misses, 0u);
}

TEST(ExperimentServiceTest, StatusSplitsTheCacheCountersPerQueue) {
  // The combined hit/miss counters stay (the smoke test pins them), but the
  // status must also expose the per-queue split: scenario-spec builds and
  // program-library builds cache on independent keys.
  const std::string scenario_text = "scenario = paper-hot-task; duration-s = 2; seed = 3";
  const std::string cli_text = "topology = 1:2:1; workload = hot:2; duration-s = 2";
  ExperimentService service({/*queue_depth=*/8, /*workers=*/2, /*start_workers=*/true});
  Collector collector;
  ASSERT_TRUE(service.Submit(scenario_text, collector.fn()).ok());
  ASSERT_TRUE(service.Submit(scenario_text, collector.fn()).ok());  // scenario-cache hit
  ASSERT_TRUE(service.Submit(cli_text, collector.fn()).ok());
  ASSERT_TRUE(service.Submit(cli_text, collector.fn()).ok());       // library-cache hit
  service.Drain();

  const ServiceStatusSnapshot status = service.Status();
  EXPECT_GT(status.cache_scenario_hits, 0u);
  EXPECT_GT(status.cache_scenario_misses, 0u);
  EXPECT_GT(status.cache_library_hits, 0u);
  EXPECT_GT(status.cache_library_misses, 0u);
  EXPECT_EQ(status.scenario_cache_hits,
            status.cache_scenario_hits + status.cache_library_hits);
  EXPECT_EQ(status.scenario_cache_misses,
            status.cache_scenario_misses + status.cache_library_misses);

  // The split fields travel over the wire.
  const std::string json = ServiceStatusToJson(status);
  EXPECT_EQ(StatusField(json, "cache_scenario_hits", -1),
            static_cast<double>(status.cache_scenario_hits));
  EXPECT_EQ(StatusField(json, "cache_scenario_misses", -1),
            static_cast<double>(status.cache_scenario_misses));
  EXPECT_EQ(StatusField(json, "cache_library_hits", -1),
            static_cast<double>(status.cache_library_hits));
  EXPECT_EQ(StatusField(json, "cache_library_misses", -1),
            static_cast<double>(status.cache_library_misses));
}

TEST(ExperimentServiceTest, ConcurrentClientsEachGetTheirOwnBytes) {
  // N client threads x M submissions each, distinct seeds, one shared
  // service. Every submission must come back byte-identical to its own
  // offline replay no matter how completions interleave.
  constexpr int kClients = 3;
  constexpr int kPerClient = 2;
  ExperimentService service({/*queue_depth=*/64, /*workers=*/4, /*start_workers=*/true});
  Collector collector;

  std::mutex texts_mutex;
  std::map<std::uint64_t, std::string> text_of;  // submission id -> request text
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int m = 0; m < kPerClient; ++m) {
        const std::string text = "topology = 1:2:1; workload = hot:2; duration-s = 2; seed = " +
                                 std::to_string(100 + c * 10 + m) + "; runs = 2";
        const auto submitted = service.Submit(text, collector.fn());
        ASSERT_TRUE(submitted.ok()) << submitted.error().Render();
        std::lock_guard<std::mutex> lock(texts_mutex);
        text_of[submitted->submission] = text;
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  service.Drain();

  ASSERT_EQ(text_of.size(), static_cast<std::size_t>(kClients * kPerClient));
  for (const auto& [submission, text] : text_of) {
    EXPECT_EQ(collector.Lines(submission), OfflineLines(text)) << text;
  }
  const ServiceStatusSnapshot status = service.Status();
  EXPECT_EQ(status.completed_submissions, static_cast<std::size_t>(kClients * kPerClient));
  EXPECT_EQ(status.completed_runs, static_cast<std::size_t>(kClients * kPerClient * 2));
}

TEST(ExperimentServiceTest, TagTravelsFromRequestToRecord) {
  const std::string tagged = "tag = lane-7; topology = 1:2:1; workload = hot:2; duration-s = 2";
  ExperimentService service({/*queue_depth=*/8, /*workers=*/1, /*start_workers=*/true});

  std::mutex mutex;
  std::vector<StreamedRecord> records;
  const auto submitted = service.Submit(tagged, [&](const StreamedRecord& record) {
    std::lock_guard<std::mutex> lock(mutex);
    records.push_back(record);
  });
  ASSERT_TRUE(submitted.ok()) << submitted.error().Render();
  service.Drain();

  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].tag, "lane-7");
  EXPECT_NE(records[0].jsonl.find("\"tag\": \"lane-7\""), std::string::npos) << records[0].jsonl;
  // ...and the streamed line still matches the offline replay of the same
  // tagged request, i.e. the tag flows through both paths identically.
  EXPECT_EQ(std::vector<std::string>{records[0].jsonl}, OfflineLines(tagged));
}

TEST(ExperimentServiceTest, QueueFullRejectsWholeSubmissions) {
  // No workers: the queue never drains, so admission arithmetic is exact.
  ExperimentService service({/*queue_depth=*/1, /*workers=*/1, /*start_workers=*/false});
  Collector collector;

  // Needs 2 slots, capacity 1: rejected before anything queues.
  const auto too_big = service.Submit("duration-s = 1; runs = 2", collector.fn());
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.error().code, RequestErrorCode::kQueueFull);
  EXPECT_NE(too_big.error().message.find("queue full"), std::string::npos);
  EXPECT_EQ(service.Status().queued, 0u);

  const auto fits = service.Submit("duration-s = 1", collector.fn());
  ASSERT_TRUE(fits.ok()) << fits.error().Render();
  EXPECT_EQ(service.Status().queued, 1u);

  const auto rejected = service.Submit("duration-s = 1", collector.fn());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, RequestErrorCode::kQueueFull);

  // A batch that does not fit whole is rejected whole - including its
  // requests that would have fit alone.
  const auto batch = service.SubmitBatch({"duration-s = 1", "duration-s = 1"}, collector.fn());
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.error().code, RequestErrorCode::kQueueFull);

  const ServiceStatusSnapshot status = service.Status();
  EXPECT_EQ(status.queued, 1u);
  EXPECT_EQ(status.rejected_submissions, 3u);
  EXPECT_EQ(status.workers, 0u);
}

TEST(ExperimentServiceTest, MalformedRequestsRejectBeforeAdmission) {
  ExperimentService service({/*queue_depth=*/8, /*workers=*/1, /*start_workers=*/false});
  Collector collector;

  const auto unknown = service.Submit("polcy = energy_aware", collector.fn());
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, RequestErrorCode::kUnknownKey);
  EXPECT_EQ(unknown.error().key, "polcy");

  const auto unresolvable = service.Submit("scenario = no-such-scenario", collector.fn());
  ASSERT_FALSE(unresolvable.ok());
  EXPECT_EQ(unresolvable.error().code, RequestErrorCode::kUnknownName);

  // One bad request poisons its whole batch; the good one is not admitted.
  const auto batch =
      service.SubmitBatch({"duration-s = 1", "seed = nope"}, collector.fn());
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.error().code, RequestErrorCode::kBadValue);
  EXPECT_EQ(batch.error().key, "seed");

  const ServiceStatusSnapshot status = service.Status();
  EXPECT_EQ(status.queued, 0u);
  EXPECT_EQ(status.rejected_submissions, 3u);
  EXPECT_TRUE(collector.by_submission.empty());
}

TEST(ExperimentServiceTest, StatusCountsAndUptimeAreSane) {
  ExperimentService service({/*queue_depth=*/16, /*workers=*/2, /*start_workers=*/true});
  Collector collector;
  const auto submitted =
      service.Submit("topology = 1:2:1; workload = hot:2; duration-s = 2; runs = 2",
                     collector.fn());
  ASSERT_TRUE(submitted.ok()) << submitted.error().Render();
  service.Drain();

  const ServiceStatusSnapshot status = service.Status();
  EXPECT_EQ(status.queue_capacity, 16u);
  EXPECT_EQ(status.queued, 0u);
  EXPECT_EQ(status.in_flight, 0u);
  EXPECT_EQ(status.completed_runs, 2u);
  EXPECT_EQ(status.completed_submissions, 1u);
  EXPECT_EQ(status.rejected_submissions, 0u);
  EXPECT_EQ(status.workers, 2u);
  EXPECT_GE(status.uptime_s, 0.0);
  EXPECT_GE(status.runs_per_s, 0.0);

  // The snapshot round-trips through its wire JSON.
  const std::string json = ServiceStatusToJson(status);
  EXPECT_EQ(StatusField(json, "queue_capacity", -1), 16.0);
  EXPECT_EQ(StatusField(json, "completed_runs", -1), 2.0);
  EXPECT_EQ(StatusField(json, "workers", -1), 2.0);
  EXPECT_EQ(StatusField(json, "missing_field", -7.0), -7.0);
}

TEST(ExperimentServiceTest, DoneFiresOncePerSubmissionWithItsRecordCount) {
  ExperimentService service({/*queue_depth=*/8, /*workers=*/2, /*start_workers=*/true});
  Collector collector;
  std::mutex mutex;
  std::vector<std::pair<std::uint64_t, std::size_t>> done;
  const auto submitted = service.Submit(
      kQuickRequest, collector.fn(),
      [&](std::uint64_t submission, std::size_t records, const std::string& error) {
        EXPECT_TRUE(error.empty()) << error;
        std::lock_guard<std::mutex> lock(mutex);
        done.emplace_back(submission, records);
      });
  ASSERT_TRUE(submitted.ok()) << submitted.error().Render();
  service.Drain();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].first, submitted->submission);
  EXPECT_EQ(done[0].second, 3u);
}

TEST(ExperimentServiceTest, ShutdownDrainsAdmittedWorkAndRefusesNew) {
  Collector collector;
  std::uint64_t admitted = 0;
  {
    ExperimentService service({/*queue_depth=*/16, /*workers=*/2, /*start_workers=*/true});
    const auto submitted = service.Submit(kQuickRequest, collector.fn());
    ASSERT_TRUE(submitted.ok()) << submitted.error().Render();
    admitted = submitted->submission;

    service.Shutdown();
    const auto refused = service.Submit(kQuickRequest, collector.fn());
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.error().code, RequestErrorCode::kShuttingDown);
  }
  // Every admitted record streamed before Shutdown returned.
  EXPECT_EQ(collector.Lines(admitted).size(), 3u);
}

}  // namespace
}  // namespace eas
