// The socket layer end to end: ExperimentServer accepting Unix-domain
// connections, ServiceClient speaking the wire protocol, and the same
// byte-identity contract as the in-process service tests - now across a
// real socket, with concurrent clients demuxed by submission id.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/result_sink.h"
#include "src/api/run_session.h"
#include "src/service/experiment_server.h"
#include "src/service/service_client.h"

namespace eas {
namespace {

std::string SocketPath(const std::string& name) {
  return "/tmp/eas_" + name + "_" + std::to_string(::getpid()) + ".sock";
}

std::vector<std::string> OfflineLines(const std::string& text) {
  const auto request = ParseRunRequest(text);
  EXPECT_TRUE(request.ok()) << (request.ok() ? "" : request.error().Render());
  const auto resolved = ResolveRunRequest(*request);
  EXPECT_TRUE(resolved.ok()) << (resolved.ok() ? "" : resolved.error().Render());
  const RunSession session(1);
  std::vector<std::string> lines;
  for (const RunRecord& record : session.Run(*resolved)) {
    lines.push_back(JsonlRecordLine(record));
  }
  return lines;
}

ServerOptions QuickServer(const std::string& socket_path) {
  ServerOptions options;
  options.socket_path = socket_path;
  options.service.queue_depth = 32;
  options.service.workers = 2;
  return options;
}

// Streams one submission group through a fresh client and reorders by
// (submission, index) - the reconstruction eastool submit --jsonl does.
std::map<std::uint64_t, std::vector<std::string>> SubmitAndReorder(
    const std::string& socket_path, const std::vector<std::string>& texts) {
  std::map<std::uint64_t, std::vector<std::string>> lines;
  auto client = ServiceClient::Connect(socket_path);
  EXPECT_TRUE(client.ok()) << (client.ok() ? "" : client.error().Render());
  if (!client.ok()) {
    return lines;
  }
  std::map<std::uint64_t, std::map<std::size_t, std::string>> collected;
  const auto outcome = client->SubmitAndStream(texts, [&](const ClientRecord& record) {
    collected[record.submission][record.index] = record.jsonl;
  });
  EXPECT_TRUE(outcome.ok()) << (outcome.ok() ? "" : outcome.error().Render());
  if (outcome.ok()) {
    EXPECT_EQ(outcome->submissions.size(), texts.size());
  }
  for (const auto& [submission, by_index] : collected) {
    for (const auto& [index, jsonl] : by_index) {
      lines[submission].push_back(jsonl);
    }
  }
  return lines;
}

TEST(ExperimentServerTest, StreamsOfflineIdenticalBytesOverTheSocket) {
  const std::string socket_path = SocketPath("e2e");
  auto server = ExperimentServer::Start(QuickServer(socket_path));
  ASSERT_TRUE(server.ok()) << server.error().Render();

  const std::vector<std::string> texts = {
      "name = a; topology = 1:2:1; workload = hot:2; duration-s = 2; seed = 5; runs = 2",
      "name = b; topology = 1:2:1; workload = hot:2; duration-s = 2; seed = 9",
  };
  const auto by_submission = SubmitAndReorder(socket_path, texts);
  ASSERT_EQ(by_submission.size(), 2u);
  // Submission ids are assigned in request order, so the id-ordered map
  // walks the texts in order.
  auto it = by_submission.begin();
  EXPECT_EQ(it->second, OfflineLines(texts[0]));
  ++it;
  EXPECT_EQ(it->second, OfflineLines(texts[1]));
}

TEST(ExperimentServerTest, ConcurrentClientsAreDemuxedBySubmission) {
  const std::string socket_path = SocketPath("demux");
  auto server = ExperimentServer::Start(QuickServer(socket_path));
  ASSERT_TRUE(server.ok()) << server.error().Render();

  constexpr int kClients = 2;
  constexpr int kPerClient = 2;
  std::mutex mutex;
  std::map<std::string, std::vector<std::string>> got;  // text -> reordered lines
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int m = 0; m < kPerClient; ++m) {
        const std::string text = "topology = 1:2:1; workload = hot:2; duration-s = 2; seed = " +
                                 std::to_string(40 + c * 10 + m) + "; runs = 2";
        auto lines = SubmitAndReorder(socket_path, {text});
        ASSERT_EQ(lines.size(), 1u);
        std::lock_guard<std::mutex> lock(mutex);
        got[text] = lines.begin()->second;
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kClients * kPerClient));
  for (const auto& [text, lines] : got) {
    EXPECT_EQ(lines, OfflineLines(text)) << text;
  }
}

TEST(ExperimentServerTest, RejectionsTravelAsStructuredErrors) {
  const std::string socket_path = SocketPath("reject");
  auto server = ExperimentServer::Start(QuickServer(socket_path));
  ASSERT_TRUE(server.ok()) << server.error().Render();

  auto client = ServiceClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.error().Render();
  const auto outcome = client->SubmitAndStream({"polcy = energy_aware"}, nullptr);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, RequestErrorCode::kUnknownKey);
  EXPECT_EQ(outcome.error().key, "polcy");
  EXPECT_EQ(outcome.error().line, 1u);
  EXPECT_NE(outcome.error().Render().find("unknown key \"polcy\""), std::string::npos);

  // The connection survives a rejection; a good submission still works.
  const auto retry = client->SubmitAndStream(
      {"topology = 1:2:1; workload = hot:2; duration-s = 2"}, nullptr);
  ASSERT_TRUE(retry.ok()) << retry.error().Render();
  EXPECT_EQ(retry->records, 1u);
}

TEST(ExperimentServerTest, StatusVerbReportsCounters) {
  const std::string socket_path = SocketPath("status");
  auto server = ExperimentServer::Start(QuickServer(socket_path));
  ASSERT_TRUE(server.ok()) << server.error().Render();

  auto client = ServiceClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.error().Render();
  const auto done = client->SubmitAndStream(
      {"topology = 1:2:1; workload = hot:2; duration-s = 2; runs = 2"}, nullptr);
  ASSERT_TRUE(done.ok()) << done.error().Render();

  const auto status = client->QueryStatus();
  ASSERT_TRUE(status.ok()) << status.error().Render();
  EXPECT_EQ(StatusField(*status, "queue_capacity", -1), 32.0);
  EXPECT_EQ(StatusField(*status, "completed_runs", -1), 2.0);
  EXPECT_EQ(StatusField(*status, "completed_submissions", -1), 1.0);
  // `ok` is written from inside the worker's run loop, so the worker may
  // not have decremented in_flight yet when the client queries; the counter
  // is bounded by the pool size, not exactly zero.
  EXPECT_GE(StatusField(*status, "in_flight", -1), 0.0);
  EXPECT_LE(StatusField(*status, "in_flight", -1), 2.0);
  EXPECT_EQ(StatusField(*status, "queued", -1), 0.0);
  EXPECT_GE(StatusField(*status, "uptime_s", -1), 0.0);
}

TEST(ExperimentServerTest, UnknownVerbsGetProtocolErrorsNotDisconnects) {
  const std::string socket_path = SocketPath("verbs");
  auto server = ExperimentServer::Start(QuickServer(socket_path));
  ASSERT_TRUE(server.ok()) << server.error().Render();

  auto fd = ConnectUnix(socket_path);
  ASSERT_TRUE(fd.ok()) << fd.error().Render();
  LineChannel channel(*fd);
  ASSERT_TRUE(channel.WriteLine("frobnicate"));
  std::string line;
  ASSERT_TRUE(channel.ReadLine(&line));
  ASSERT_EQ(line.rfind("err ", 0), 0u) << line;
  const RequestError error = RequestErrorFromJson(line.substr(4));
  EXPECT_EQ(error.code, RequestErrorCode::kProtocol);
  EXPECT_NE(error.message.find("frobnicate"), std::string::npos);

  ASSERT_TRUE(channel.WriteLine("done"));
  ASSERT_TRUE(channel.ReadLine(&line));
  EXPECT_EQ(line, "end");
}

TEST(ExperimentServerTest, ShutdownVerbDrainsAndStopsTheServer) {
  const std::string socket_path = SocketPath("shutdown");
  auto server = ExperimentServer::Start(QuickServer(socket_path));
  ASSERT_TRUE(server.ok()) << server.error().Render();

  std::size_t streamed = 0;
  {
    auto client = ServiceClient::Connect(socket_path);
    ASSERT_TRUE(client.ok()) << client.error().Render();
    const auto outcome = client->SubmitAndStream(
        {"topology = 1:2:1; workload = hot:2; duration-s = 2; runs = 3"},
        [&](const ClientRecord&) { ++streamed; });
    ASSERT_TRUE(outcome.ok()) << outcome.error().Render();
    const auto ack = client->RequestShutdown();
    ASSERT_TRUE(ack.ok()) << ack.error().Render();
  }
  EXPECT_EQ(streamed, 3u);
  (*server)->Wait();  // returns: the shutdown verb stopped the accept loop
  server->reset();    // tears down the listening socket and unlinks the path

  // The daemon is gone: connecting again fails.
  auto late = ServiceClient::Connect(socket_path);
  EXPECT_FALSE(late.ok());
}

TEST(ExperimentServerTest, ConnectToMissingSocketDiagnoses) {
  const auto client = ServiceClient::Connect(SocketPath("nobody-home"));
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.error().code, RequestErrorCode::kIo);
  EXPECT_NE(client.error().message.find("is the service running?"), std::string::npos);
}

}  // namespace
}  // namespace eas
