// The frequency layer end to end: the "none" governor must be bit-identical
// to the pre-DVFS engine (golden trace against the scan reference, which has
// no frequency phase), governed runs must actually scale progress and
// energy, the two DVFS scenarios must be deterministic for any runner
// thread count, and unknown governor names must fail fast.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/experiment_runner.h"
#include "src/sim/machine.h"
#include "src/sim/scan_reference.h"
#include "src/sim/scenario.h"
#include "src/sim/simulation_engine.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

void ExpectStatesBitIdentical(SimulationState& a, SimulationState& b) {
  ASSERT_EQ(a.now(), b.now());
  EXPECT_EQ(a.migration_count(), b.migration_count());
  EXPECT_EQ(a.TotalWorkDone(), b.TotalWorkDone());
  EXPECT_EQ(a.TotalTaskEnergy(), b.TotalTaskEnergy());
  EXPECT_EQ(a.TotalCompletions(), b.TotalCompletions());
  for (std::size_t cpu = 0; cpu < a.num_cpus(); ++cpu) {
    const int c = static_cast<int>(cpu);
    EXPECT_EQ(a.ThermalPower(c), b.ThermalPower(c)) << "cpu " << cpu;
    EXPECT_EQ(a.throttle(c).ThrottledFraction(), b.throttle(c).ThrottledFraction())
        << "cpu " << cpu;
  }
  for (std::size_t phys = 0; phys < a.num_physical(); ++phys) {
    EXPECT_EQ(a.Temperature(phys), b.Temperature(phys)) << "phys " << phys;
    EXPECT_EQ(a.TruePower(phys), b.TruePower(phys)) << "phys " << phys;
  }
}

TEST(FreqPipelineTest, NoneGovernorGoldenTraceMatchesScanReference) {
  // paper-hot-task runs with hlt throttling enforced, so this pins the
  // ThrottleGate -> FrequencyPhase -> SchedTick ordering: with the "none"
  // governor the frequency phase must not perturb a single bit of the
  // throttled pipeline the scan reference (which predates the phase) drives.
  ScenarioSpec spec = ScenarioRegistry::Global().BuildOrThrow("paper-hot-task");
  ASSERT_EQ(spec.config.frequency_governor, "none");
  spec.config.estimator_weights = EnergyModel::Default().weights();

  SimulationState engine_state(spec.config);
  SimulationState scan_state(spec.config);
  SimulationEngine engine(spec.config.sched);
  ScanReferenceStepper scan(spec.config.sched);
  for (const TaskArrival& arrival : spec.workload.arrivals()) {
    engine_state.Spawn(*arrival.program, arrival.nice);
    scan_state.Spawn(*arrival.program, arrival.nice);
  }
  for (Tick t = 0; t < 10'000; ++t) {
    engine.Tick(engine_state);
    scan.Step(scan_state);
  }
  ExpectStatesBitIdentical(engine_state, scan_state);
  // And the none governor left no residency statistics behind.
  for (std::size_t phys = 0; phys < engine_state.num_physical(); ++phys) {
    EXPECT_EQ(engine_state.freq_domain(phys).total_ticks(), 0) << phys;
    EXPECT_EQ(engine_state.freq_domain(phys).current(), 0u) << phys;
  }
}

TEST(FreqPipelineTest, ThermalStepdownScalesProgressAndEnergy) {
  // Twin states, same seed, one governed: under a budget the workload
  // breaches, the governed machine must run strictly less work on strictly
  // less energy - frequency flowed through execution speed and the
  // estimator alike.
  MachineConfig config;
  config.topology = CpuTopology(1, 2, 1);
  config.cooling = CoolingProfile::Uniform(2, ThermalParams{});
  config.explicit_max_power_physical = 30.0;  // bitcnts runs ~61 W: breached
  config.estimator_weights = EnergyModel::Default().weights();
  config.seed = 11;
  MachineConfig governed = config;
  governed.frequency_governor = "thermal-stepdown";

  const ProgramLibrary library(EnergyModel::Default());
  Machine baseline(config);
  Machine dvfs(governed);
  baseline.Spawn(library.bitcnts());
  baseline.Spawn(library.bitcnts());
  dvfs.Spawn(library.bitcnts());
  dvfs.Spawn(library.bitcnts());
  baseline.Run(20'000);
  dvfs.Run(20'000);

  EXPECT_LT(dvfs.TotalWorkDone(), baseline.TotalWorkDone());
  EXPECT_LT(dvfs.TotalTaskEnergy(), baseline.TotalTaskEnergy());
  for (std::size_t phys = 0; phys < dvfs.num_physical(); ++phys) {
    const FrequencyDomain& domain = dvfs.state().freq_domain(phys);
    EXPECT_EQ(domain.total_ticks(), 20'000) << phys;
    EXPECT_LT(domain.AverageFrequency(), 1.0) << phys;
  }
}

TEST(FreqPipelineTest, DvfsVsThrottleScenarioCapsWithoutHalting) {
  ScenarioSpec spec = ScenarioRegistry::Global().BuildOrThrow("dvfs-vs-throttle");
  spec.options.duration_ticks = 60'000;
  spec.config.estimator_weights = EnergyModel::Default().weights();
  Experiment experiment(spec.config, spec.options);
  const RunResult result = experiment.Run(spec.workload);

  // The cap is enforced by frequency, not hlt: some package left P0, nobody
  // was halted, and the DVFS columns are populated and well-formed.
  EXPECT_DOUBLE_EQ(result.AverageThrottledFraction(), 0.0);
  ASSERT_EQ(result.average_frequency.size(), spec.config.topology.num_logical());
  ASSERT_EQ(result.pstate_residency.size(), spec.config.topology.num_logical());
  bool any_scaled = false;
  for (std::size_t cpu = 0; cpu < result.average_frequency.size(); ++cpu) {
    EXPECT_GT(result.average_frequency[cpu], 0.0) << cpu;
    EXPECT_LE(result.average_frequency[cpu], 1.0) << cpu;
    any_scaled = any_scaled || result.average_frequency[cpu] < 1.0;
    double sum = 0.0;
    for (double fraction : result.pstate_residency[cpu]) {
      sum += fraction;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << cpu;
  }
  EXPECT_TRUE(any_scaled);
  // The per-package frequency trace rode along on the sampling grid.
  ASSERT_EQ(result.frequency.size(), spec.config.topology.num_physical());
  EXPECT_GT(result.frequency.at(0).size(), 0u);
}

TEST(FreqPipelineTest, GovernedScenariosDeterministicAcrossThreads) {
  for (const char* name : {"dvfs-vs-throttle", "governor-comparison"}) {
    ExperimentSpec base = ScenarioRegistry::Global().BuildOrThrow(name).ToExperimentSpec();
    base.options.duration_ticks = 4'000;
    base.config.estimator_weights = EnergyModel::Default().weights();
    const std::vector<ExperimentSpec> specs(3, base);

    const std::vector<RunResult> baseline = ExperimentRunner(1).RunAll(specs);
    ASSERT_EQ(baseline.size(), specs.size());
    for (std::size_t threads : {2u, 8u}) {
      const std::vector<RunResult> results = ExperimentRunner(threads).RunAll(specs);
      for (std::size_t i = 0; i < results.size(); ++i) {
        const std::string label =
            std::string(name) + " @" + std::to_string(threads) + " threads, spec";
        EXPECT_EQ(results[i].work_done_ticks, baseline[i].work_done_ticks) << label << i;
        EXPECT_EQ(results[i].migrations, baseline[i].migrations) << label << i;
        EXPECT_EQ(results[i].completions, baseline[i].completions) << label << i;
        ASSERT_EQ(results[i].average_frequency.size(), baseline[i].average_frequency.size())
            << label << i;
        for (std::size_t cpu = 0; cpu < results[i].average_frequency.size(); ++cpu) {
          EXPECT_EQ(results[i].average_frequency[cpu], baseline[i].average_frequency[cpu])
              << label << i << " cpu " << cpu;
          ASSERT_EQ(results[i].pstate_residency[cpu], baseline[i].pstate_residency[cpu])
              << label << i << " cpu " << cpu;
        }
      }
    }
  }
}

TEST(FreqPipelineTest, UnknownGovernorFailsFastFromMachine) {
  MachineConfig config;
  config.topology = CpuTopology(1, 1, 1);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  config.estimator_weights = EnergyModel::Default().weights();
  config.frequency_governor = "warp-speed";
  EXPECT_THROW(Machine machine(config), std::invalid_argument);
}

TEST(FreqPipelineTest, UnknownGovernorThrowsOnEveryEngineTick) {
  // Driving the engine directly bypasses Machine's fail-fast validation;
  // the lazy phase must throw on the first tick and, if the caller catches
  // and ticks again, throw again rather than run over half-built state.
  MachineConfig config;
  config.topology = CpuTopology(1, 1, 1);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  config.estimator_weights = EnergyModel::Default().weights();
  config.frequency_governor = "warp-speed";
  SimulationState state(config);
  SimulationEngine engine(config.sched);
  EXPECT_THROW(engine.Tick(state), std::invalid_argument);
  EXPECT_THROW(engine.Tick(state), std::invalid_argument);
}

}  // namespace
}  // namespace eas
