// Governor unit suite: the thermal-stepdown budget loop (step down on
// breach, step up only with hysteresis headroom, no flapping inside the
// band), the ondemand utilization rules, and the registry contract.

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/freq/governor_registry.h"
#include "src/freq/governors.h"

namespace eas {
namespace {

GovernorInputs Inputs(Tick now, std::size_t current, double thermal, double budget) {
  GovernorInputs inputs;
  inputs.now = now;
  inputs.current_pstate = current;
  inputs.num_pstates = 5;
  inputs.thermal_power_watts = thermal;
  inputs.budget_watts = budget;
  inputs.hysteresis_watts = 2.0;
  return inputs;
}

TEST(ThermalStepdownGovernorTest, StepsDownOnBudgetBreach) {
  ThermalStepdownGovernor governor(/*update_interval_ticks=*/10);
  EXPECT_EQ(governor.DecidePState(Inputs(0, 0, 45.0, 40.0)), 1u);
}

TEST(ThermalStepdownGovernorTest, StepsUpOnlyWithHysteresisHeadroom) {
  ThermalStepdownGovernor governor(/*update_interval_ticks=*/10);
  // 39 W against a 40 W budget: inside the 2 W hysteresis band, hold.
  EXPECT_EQ(governor.DecidePState(Inputs(0, 2, 39.0, 40.0)), 2u);
  // 37 W: below budget - hysteresis, step up.
  EXPECT_EQ(governor.DecidePState(Inputs(1, 2, 37.0, 40.0)), 1u);
}

TEST(ThermalStepdownGovernorTest, HysteresisBandDoesNotFlap) {
  // Power oscillating inside [budget - hysteresis, budget] must never change
  // the P-state, no matter how long it goes on.
  ThermalStepdownGovernor governor(/*update_interval_ticks=*/1);
  for (Tick t = 0; t < 100; ++t) {
    const double thermal = t % 2 == 0 ? 39.9 : 38.1;
    EXPECT_EQ(governor.DecidePState(Inputs(t, 2, thermal, 40.0)), 2u) << t;
  }
}

TEST(ThermalStepdownGovernorTest, PacesTransitionsByInterval) {
  ThermalStepdownGovernor governor(/*update_interval_ticks=*/10);
  EXPECT_EQ(governor.DecidePState(Inputs(0, 0, 45.0, 40.0)), 1u);
  // Still over budget, but inside the relock interval: hold.
  for (Tick t = 1; t < 10; ++t) {
    EXPECT_EQ(governor.DecidePState(Inputs(t, 1, 45.0, 40.0)), 1u) << t;
  }
  EXPECT_EQ(governor.DecidePState(Inputs(10, 1, 45.0, 40.0)), 2u);
}

TEST(ThermalStepdownGovernorTest, ClampsAtLadderEnds) {
  ThermalStepdownGovernor governor(/*update_interval_ticks=*/1);
  // Deepest state, still over budget: nowhere to go.
  EXPECT_EQ(governor.DecidePState(Inputs(0, 4, 45.0, 40.0)), 4u);
  // P0 with headroom: nowhere to go either.
  EXPECT_EQ(governor.DecidePState(Inputs(1, 0, 10.0, 40.0)), 0u);
}

GovernorInputs UtilInputs(Tick now, std::size_t current, double utilization) {
  GovernorInputs inputs;
  inputs.now = now;
  inputs.current_pstate = current;
  inputs.num_pstates = 5;
  inputs.utilization = utilization;
  return inputs;
}

TEST(OndemandGovernorTest, JumpsToFullSpeedOnHighUtilization) {
  OndemandGovernor governor(/*update_interval_ticks=*/1);
  EXPECT_EQ(governor.DecidePState(UtilInputs(0, 3, 1.0)), 0u);
}

TEST(OndemandGovernorTest, CreepsDownAfterSustainedLowUtilization) {
  OndemandGovernor governor(/*update_interval_ticks=*/1);
  // One low-utilization decision is not enough (kDownHold = 2)...
  EXPECT_EQ(governor.DecidePState(UtilInputs(0, 0, 0.0)), 0u);
  // ...the second steps one state deeper.
  EXPECT_EQ(governor.DecidePState(UtilInputs(1, 0, 0.0)), 1u);
}

TEST(OndemandGovernorTest, MidUtilizationHoldsAndResetsTheDownHold) {
  OndemandGovernor governor(/*update_interval_ticks=*/1);
  EXPECT_EQ(governor.DecidePState(UtilInputs(0, 1, 0.0)), 1u);  // hold 1 of 2
  EXPECT_EQ(governor.DecidePState(UtilInputs(1, 1, 0.5)), 1u);  // resets the hold
  EXPECT_EQ(governor.DecidePState(UtilInputs(2, 1, 0.0)), 1u);  // hold 1 of 2 again
  EXPECT_EQ(governor.DecidePState(UtilInputs(3, 1, 0.0)), 2u);
}

TEST(NoneGovernorTest, AlwaysPinsP0) {
  NoneGovernor governor;
  EXPECT_EQ(governor.DecidePState(Inputs(0, 3, 100.0, 40.0)), 0u);
}

TEST(GovernorRegistryTest, GlobalHasBuiltins) {
  for (const char* name : {"none", "thermal-stepdown", "ondemand"}) {
    EXPECT_TRUE(FrequencyGovernorRegistry::Global().Contains(name)) << name;
    EXPECT_NE(FrequencyGovernorRegistry::Global().Create(name), nullptr) << name;
  }
}

TEST(GovernorRegistryTest, UnknownNameThrowsListingKnown) {
  try {
    FrequencyGovernorRegistry::Global().CreateOrThrow("no-such-governor");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-governor"), std::string::npos);
    EXPECT_NE(what.find("thermal-stepdown"), std::string::npos);
  }
}

TEST(GovernorRegistryTest, RegisterRejectsDuplicates) {
  FrequencyGovernorRegistry registry;
  RegisterBuiltinGovernors(registry);
  EXPECT_FALSE(
      registry.Register("none", [] { return std::make_unique<NoneGovernor>(); }));
  EXPECT_TRUE(registry.Register("custom",
                                [] { return std::make_unique<ThermalStepdownGovernor>(); }));
  EXPECT_TRUE(registry.Contains("custom"));
}

}  // namespace
}  // namespace eas
