#include "src/task/program.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

Phase SimplePhase(double uops_rate, Tick duration) {
  Phase phase;
  phase.rates[EventIndex(EventType::kUopsRetired)] = uops_rate;
  phase.mean_duration = duration;
  return phase;
}

TEST(ProgramTest, StoresMetadata) {
  Program program("test", 42, {SimplePhase(100.0, 1000)}, 5000);
  EXPECT_EQ(program.name(), "test");
  EXPECT_EQ(program.binary_id(), 42u);
  EXPECT_EQ(program.num_phases(), 1u);
  EXPECT_EQ(program.total_work_ticks(), 5000);
}

TEST(ProgramTest, MultiplePhasesAccessible) {
  Program program("multi", 1, {SimplePhase(100.0, 10), SimplePhase(200.0, 20)}, 0);
  EXPECT_EQ(program.num_phases(), 2u);
  EXPECT_DOUBLE_EQ(program.phase(1).rates[EventIndex(EventType::kUopsRetired)], 200.0);
  EXPECT_EQ(program.phase(1).mean_duration, 20);
}

TEST(ProgramTest, ZeroWorkMeansInfinite) {
  Program program("daemon", 1, {SimplePhase(1.0, 10)}, 0);
  EXPECT_EQ(program.total_work_ticks(), 0);
}

}  // namespace
}  // namespace eas
