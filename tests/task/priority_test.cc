// Priorities and variable timeslices (paper Section 3.3: "Some operating
// systems, like Linux, give longer timeslices to tasks with higher
// priorities" - the motivation for the variable-period exponential average).

#include <gtest/gtest.h>

#include "src/sim/machine.h"
#include "src/workloads/programs.h"

namespace eas {
namespace {

TEST(PriorityTest, TimesliceScale) {
  EXPECT_EQ(Task::TimesliceForNice(0, 100), 100);
  EXPECT_EQ(Task::TimesliceForNice(-20, 100), 200);
  EXPECT_EQ(Task::TimesliceForNice(10, 100), 50);
  EXPECT_EQ(Task::TimesliceForNice(19, 100), 5);
}

TEST(PriorityTest, TimesliceNeverBelowFloor) {
  for (int nice = -20; nice <= 19; ++nice) {
    EXPECT_GE(Task::TimesliceForNice(nice, 100), 5) << "nice " << nice;
  }
}

TEST(PriorityTest, TimesliceMonotoneInPriority) {
  for (int nice = -19; nice <= 19; ++nice) {
    EXPECT_LE(Task::TimesliceForNice(nice, 100), Task::TimesliceForNice(nice - 1, 100));
  }
}

MachineConfig OneCpuConfig() {
  MachineConfig config;
  config.topology = CpuTopology(1, 1, 1);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  config.explicit_max_power_physical = 120.0;
  config.estimator_weights = EnergyModel::Default().weights();
  return config;
}

TEST(PriorityTest, HigherPriorityGetsLargerShare) {
  Machine machine(OneCpuConfig());
  const ProgramLibrary library(EnergyModel::Default());
  Task* important = machine.Spawn(library.aluadd(), /*nice=*/-10);  // 150-tick slices
  Task* nice_task = machine.Spawn(library.aluadd(), /*nice=*/10);   // 50-tick slices
  machine.Run(40'000);
  // Round-robin with 150 vs 50 tick slices -> ~3:1 CPU share.
  const double ratio = important->work_done_ticks() / nice_task->work_done_ticks();
  EXPECT_NEAR(ratio, 3.0, 0.4);
}

TEST(PriorityTest, ProfilesComparableAcrossPriorities) {
  // The whole point of the variable-period average: a 50-tick-slice task and
  // a 150-tick-slice task running the same program must end up with the same
  // *power* profile, or cross-priority balancing decisions would be biased.
  Machine machine(OneCpuConfig());
  const ProgramLibrary library(EnergyModel::Default());
  Task* important = machine.Spawn(library.bitcnts(), /*nice=*/-10);
  Task* nice_task = machine.Spawn(library.bitcnts(), /*nice=*/10);
  machine.Run(60'000);
  EXPECT_NEAR(important->profile().power(), nice_task->profile().power(), 2.0);
  EXPECT_NEAR(important->profile().power(), 61.0, 2.5);
}

TEST(PriorityTest, DefaultSpawnIsNiceZero) {
  Machine machine(OneCpuConfig());
  const ProgramLibrary library(EnergyModel::Default());
  Task* task = machine.Spawn(library.memrw());
  EXPECT_EQ(task->nice(), 0);
  EXPECT_EQ(task->timeslice_left(), 100);
}

}  // namespace
}  // namespace eas
