#include "src/task/binary_registry.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

TEST(BinaryRegistryTest, UnknownBinaryGetsDefault) {
  BinaryRegistry registry(40.0);
  EXPECT_FALSE(registry.Knows(123));
  EXPECT_DOUBLE_EQ(registry.InitialPowerFor(123), 40.0);
}

TEST(BinaryRegistryTest, RecordedBinaryReturnsRecordedPower) {
  BinaryRegistry registry(40.0);
  registry.RecordFirstTimeslice(123, 61.0);
  EXPECT_TRUE(registry.Knows(123));
  EXPECT_DOUBLE_EQ(registry.InitialPowerFor(123), 61.0);
}

TEST(BinaryRegistryTest, LaterRecordingRefreshes) {
  BinaryRegistry registry;
  registry.RecordFirstTimeslice(7, 50.0);
  registry.RecordFirstTimeslice(7, 55.0);
  EXPECT_DOUBLE_EQ(registry.InitialPowerFor(7), 55.0);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(BinaryRegistryTest, DistinctBinariesIndependent) {
  BinaryRegistry registry;
  registry.RecordFirstTimeslice(1, 61.0);
  registry.RecordFirstTimeslice(2, 38.0);
  EXPECT_DOUBLE_EQ(registry.InitialPowerFor(1), 61.0);
  EXPECT_DOUBLE_EQ(registry.InitialPowerFor(2), 38.0);
  EXPECT_EQ(registry.size(), 2u);
}

}  // namespace
}  // namespace eas
