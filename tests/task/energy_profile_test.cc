#include "src/task/energy_profile.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

TEST(EnergyProfileTest, SeedSetsPower) {
  EnergyProfile profile;
  profile.Seed(47.0);
  EXPECT_DOUBLE_EQ(profile.power(), 47.0);
  EXPECT_TRUE(profile.has_samples());
}

TEST(EnergyProfileTest, FullTimeslicePowerSample) {
  EnergyProfile profile(0.3, 100);
  // 6.1 J over 100 ms = 61 W; first sample initializes.
  profile.AddPeriod(6.1, 100);
  EXPECT_NEAR(profile.power(), 61.0, 1e-9);
}

TEST(EnergyProfileTest, ConvergesToSteadyPower) {
  EnergyProfile profile(0.3, 100);
  for (int i = 0; i < 50; ++i) {
    profile.AddPeriod(4.7, 100);  // 47 W
  }
  EXPECT_NEAR(profile.power(), 47.0, 0.01);
}

TEST(EnergyProfileTest, SpikeDoesNotDominate) {
  EnergyProfile profile(0.3, 100);
  profile.Seed(40.0);
  profile.AddPeriod(8.0, 100);  // one 80 W timeslice
  EXPECT_LT(profile.power(), 55.0);
  EXPECT_GT(profile.power(), 40.0);
}

TEST(EnergyProfileTest, PersistentChangeShowsUp) {
  EnergyProfile profile(0.3, 100);
  profile.Seed(40.0);
  for (int i = 0; i < 15; ++i) {
    profile.AddPeriod(8.0, 100);
  }
  EXPECT_GT(profile.power(), 75.0);
}

TEST(EnergyProfileTest, PartialPeriodWeightsLess) {
  // A 10 ms partial slice must move the profile less than a 100 ms slice of
  // the same power - the variable-period weight at work.
  EnergyProfile partial(0.3, 100);
  partial.Seed(40.0);
  partial.AddPeriod(0.8, 10);  // 80 W over 10 ms

  EnergyProfile full(0.3, 100);
  full.Seed(40.0);
  full.AddPeriod(8.0, 100);  // 80 W over 100 ms

  EXPECT_LT(partial.power(), full.power());
  EXPECT_GT(partial.power(), 40.0);
}

TEST(EnergyProfileTest, SplitPeriodEqualsWholePeriod) {
  // Ten 10 ms samples at constant power must equal one 100 ms sample: the
  // defining consistency property of the paper's extension (Section 3.3).
  EnergyProfile split(0.3, 100);
  split.Seed(40.0);
  for (int i = 0; i < 10; ++i) {
    split.AddPeriod(0.8, 10);
  }
  EnergyProfile whole(0.3, 100);
  whole.Seed(40.0);
  whole.AddPeriod(8.0, 100);
  EXPECT_NEAR(split.power(), whole.power(), 1e-9);
}

TEST(EnergyProfileTest, ZeroTickPeriodIgnored) {
  EnergyProfile profile;
  profile.Seed(40.0);
  profile.AddPeriod(1.0, 0);
  EXPECT_DOUBLE_EQ(profile.power(), 40.0);
}

}  // namespace
}  // namespace eas
