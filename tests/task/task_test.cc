#include "src/task/task.h"

#include <gtest/gtest.h>

#include <memory>

namespace eas {
namespace {

std::unique_ptr<Program> CpuBoundProgram(Tick work = 0) {
  Phase phase;
  phase.rates[EventIndex(EventType::kUopsRetired)] = 100.0;
  phase.mean_duration = 50;
  phase.duration_jitter = 0.0;
  phase.rate_noise = 0.0;
  return std::make_unique<Program>("cpu", 1, std::vector<Phase>{phase}, work);
}

std::unique_ptr<Program> BlockingProgram() {
  Phase phase;
  phase.rates[EventIndex(EventType::kUopsRetired)] = 100.0;
  phase.mean_duration = 10;
  phase.duration_jitter = 0.0;
  phase.mean_sleep_after = 20;
  return std::make_unique<Program>("blocking", 2, std::vector<Phase>{phase}, 0);
}

std::unique_ptr<Program> TwoPhaseProgram() {
  Phase hot;
  hot.rates[EventIndex(EventType::kIntAluOps)] = 500.0;
  hot.mean_duration = 5;
  hot.duration_jitter = 0.0;
  Phase cool;
  cool.rates[EventIndex(EventType::kIntAluOps)] = 50.0;
  cool.mean_duration = 5;
  cool.duration_jitter = 0.0;
  return std::make_unique<Program>("phased", 3, std::vector<Phase>{hot, cool}, 0);
}

TEST(TaskTest, ExecuteTickEmitsPhaseRates) {
  auto program = CpuBoundProgram();
  Task task(1, program.get(), 42);
  const EventVector events = task.ExecuteTick(1.0);
  EXPECT_DOUBLE_EQ(events[EventIndex(EventType::kUopsRetired)], 100.0);
  EXPECT_DOUBLE_EQ(events[EventIndex(EventType::kFpuOps)], 0.0);
}

TEST(TaskTest, SpeedFactorScalesEventsAndWork) {
  auto program = CpuBoundProgram();
  Task task(1, program.get(), 42);
  const EventVector events = task.ExecuteTick(0.5);
  EXPECT_DOUBLE_EQ(events[EventIndex(EventType::kUopsRetired)], 50.0);
  EXPECT_DOUBLE_EQ(task.work_done_ticks(), 0.5);
}

TEST(TaskTest, PhaseRotation) {
  auto program = TwoPhaseProgram();
  Task task(1, program.get(), 42);
  EXPECT_EQ(task.phase_index(), 0u);
  for (int i = 0; i < 5; ++i) {
    task.ExecuteTick(1.0);
  }
  EXPECT_EQ(task.phase_index(), 1u);
  for (int i = 0; i < 5; ++i) {
    task.ExecuteTick(1.0);
  }
  EXPECT_EQ(task.phase_index(), 0u);  // loops
}

TEST(TaskTest, BlockingPhaseRequestsSleep) {
  auto program = BlockingProgram();
  Task task(1, program.get(), 42);
  Tick sleep = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(task.TakePendingSleep(), 0);
    task.ExecuteTick(1.0);
  }
  sleep = task.TakePendingSleep();
  EXPECT_GT(sleep, 0);
  // Taking it again returns 0 (consumed).
  EXPECT_EQ(task.TakePendingSleep(), 0);
}

TEST(TaskTest, WorkCompletion) {
  auto program = CpuBoundProgram(10);
  Task task(1, program.get(), 42);
  for (int i = 0; i < 9; ++i) {
    task.ExecuteTick(1.0);
    EXPECT_FALSE(task.WorkComplete());
  }
  task.ExecuteTick(1.0);
  EXPECT_TRUE(task.WorkComplete());
}

TEST(TaskTest, InfiniteProgramNeverCompletes) {
  auto program = CpuBoundProgram(0);
  Task task(1, program.get(), 42);
  for (int i = 0; i < 1000; ++i) {
    task.ExecuteTick(1.0);
  }
  EXPECT_FALSE(task.WorkComplete());
}

TEST(TaskTest, RestartCountsCompletion) {
  auto program = CpuBoundProgram(5);
  Task task(1, program.get(), 42);
  for (int i = 0; i < 5; ++i) {
    task.ExecuteTick(1.0);
  }
  EXPECT_TRUE(task.WorkComplete());
  task.RestartProgram();
  EXPECT_EQ(task.completions(), 1);
  EXPECT_FALSE(task.WorkComplete());
  EXPECT_DOUBLE_EQ(task.work_done_ticks(), 0.0);
}

TEST(TaskTest, AccountingPeriodLifecycle) {
  auto program = CpuBoundProgram();
  Task task(1, program.get(), 42);
  task.BeginAccountingPeriod();
  task.AccumulateEnergy(3.0);
  task.AccountActiveTick();
  task.AccountActiveTick();
  EXPECT_DOUBLE_EQ(task.period_energy(), 3.0);
  EXPECT_EQ(task.period_ticks(), 2);
  EXPECT_TRUE(task.first_period_pending());
  const double committed = task.CommitAccountingPeriod();
  EXPECT_DOUBLE_EQ(committed, 3.0);
  EXPECT_FALSE(task.first_period_pending());
  EXPECT_EQ(task.period_ticks(), 0);
  // 3 J over 2 ms = 1500 W fed to the profile (first sample initializes).
  EXPECT_NEAR(task.profile().power(), 1500.0, 1e-6);
}

TEST(TaskTest, EmptyPeriodCommitIsNoop) {
  auto program = CpuBoundProgram();
  Task task(1, program.get(), 42);
  task.profile().Seed(40.0);
  EXPECT_DOUBLE_EQ(task.CommitAccountingPeriod(), 0.0);
  EXPECT_DOUBLE_EQ(task.profile().power(), 40.0);
  EXPECT_TRUE(task.first_period_pending());
}

TEST(TaskTest, MigrationBookkeeping) {
  auto program = CpuBoundProgram();
  Task task(1, program.get(), 42);
  task.NoteMigration(/*crossed_node=*/false, /*warmup_ticks=*/3);
  EXPECT_EQ(task.migrations(), 1);
  EXPECT_EQ(task.node_migrations(), 0);
  EXPECT_EQ(task.warmup_ticks_left(), 3);
  task.NoteMigration(/*crossed_node=*/true, /*warmup_ticks=*/12);
  EXPECT_EQ(task.migrations(), 2);
  EXPECT_EQ(task.node_migrations(), 1);
  // Warmup decays with execution.
  task.ExecuteTick(1.0);
  EXPECT_EQ(task.warmup_ticks_left(), 11);
}

TEST(TaskTest, TotalEnergyAccumulates) {
  auto program = CpuBoundProgram();
  Task task(1, program.get(), 42);
  task.BeginAccountingPeriod();
  task.AccumulateEnergy(1.0);
  task.AccountActiveTick();
  task.CommitAccountingPeriod();
  task.AccumulateEnergy(2.0);
  task.AccountActiveTick();
  EXPECT_DOUBLE_EQ(task.total_energy(), 3.0);
}

}  // namespace
}  // namespace eas
