#include "src/topo/sched_domain.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

TEST(SchedDomainTest, PaperMachineSmtOnHasThreeLevels) {
  // Figure 1: physical level, node level, top level.
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  EXPECT_EQ(hierarchy.num_levels(), 3u);
  const auto domains = hierarchy.DomainsFor(0);
  ASSERT_EQ(domains.size(), 3u);
  EXPECT_EQ(domains[0]->level, 0);
  EXPECT_EQ(domains[1]->level, 1);
  EXPECT_EQ(domains[2]->level, 2);
}

TEST(SchedDomainTest, SmtOffHasTwoLevels) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(false);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  EXPECT_EQ(hierarchy.num_levels(), 2u);
}

TEST(SchedDomainTest, SmtDomainFlaggedNoEnergyBalance) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const auto domains = hierarchy.DomainsFor(0);
  EXPECT_NE(domains[0]->flags & kDomainNoEnergyBalance, 0u);
  EXPECT_EQ(domains[1]->flags & kDomainNoEnergyBalance, 0u);
}

TEST(SchedDomainTest, SmtDomainGroupsAreSiblings) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const SchedDomain* smt = hierarchy.DomainsFor(3)[0];
  ASSERT_EQ(smt->groups.size(), 2u);
  EXPECT_TRUE(smt->Contains(3));
  EXPECT_TRUE(smt->Contains(11));
  EXPECT_EQ(smt->cpus.size(), 2u);
}

TEST(SchedDomainTest, NodeDomainGroupsArePhysicalPackages) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const SchedDomain* node = hierarchy.DomainsFor(0)[1];
  EXPECT_EQ(node->groups.size(), 4u);  // four packages per node
  EXPECT_EQ(node->cpus.size(), 8u);    // eight logical CPUs per node
  // Group of CPU 0 must contain its sibling 8 and nothing else.
  const CpuGroup* group = node->GroupOf(0);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->cpus.size(), 2u);
  EXPECT_TRUE(group->Contains(8));
}

TEST(SchedDomainTest, TopDomainGroupsAreNodes) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const SchedDomain* top = hierarchy.DomainsFor(0)[2];
  EXPECT_EQ(top->groups.size(), 2u);
  EXPECT_EQ(top->cpus.size(), 16u);
  EXPECT_NE(top->flags & kDomainCrossesNode, 0u);
  const CpuGroup* node0 = top->GroupOf(0);
  ASSERT_NE(node0, nullptr);
  EXPECT_EQ(node0->cpus.size(), 8u);
  EXPECT_FALSE(node0->Contains(4));
  EXPECT_TRUE(node0->Contains(11));
}

TEST(SchedDomainTest, DomainsForDistinctCpusDiffer) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const auto for0 = hierarchy.DomainsFor(0);
  const auto for4 = hierarchy.DomainsFor(4);
  EXPECT_NE(for0[0], for4[0]);  // different packages
  EXPECT_NE(for0[1], for4[1]);  // different nodes
  EXPECT_EQ(for0[2], for4[2]);  // same top level
}

TEST(SchedDomainTest, GroupOfMissingCpuIsNull) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const SchedDomain* smt0 = hierarchy.DomainsFor(0)[0];
  EXPECT_EQ(smt0->GroupOf(5), nullptr);
}

TEST(SchedDomainTest, SingleNodeMachineHasOneLevel) {
  const CpuTopology topo(1, 4, 1);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  EXPECT_EQ(hierarchy.num_levels(), 1u);
  const auto domains = hierarchy.DomainsFor(2);
  ASSERT_EQ(domains.size(), 1u);
  EXPECT_EQ(domains[0]->groups.size(), 4u);
}

}  // namespace
}  // namespace eas
