#include "src/topo/sched_domain.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

TEST(SchedDomainTest, PaperMachineSmtOnHasThreeLevels) {
  // Figure 1: physical level, node level, top level.
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  EXPECT_EQ(hierarchy.num_levels(), 3u);
  const auto domains = hierarchy.DomainsFor(0);
  ASSERT_EQ(domains.size(), 3u);
  EXPECT_EQ(domains[0]->level, 0);
  EXPECT_EQ(domains[1]->level, 1);
  EXPECT_EQ(domains[2]->level, 2);
}

TEST(SchedDomainTest, SmtOffHasTwoLevels) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(false);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  EXPECT_EQ(hierarchy.num_levels(), 2u);
}

TEST(SchedDomainTest, SmtDomainFlaggedNoEnergyBalance) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const auto domains = hierarchy.DomainsFor(0);
  EXPECT_NE(domains[0]->flags & kDomainNoEnergyBalance, 0u);
  EXPECT_EQ(domains[1]->flags & kDomainNoEnergyBalance, 0u);
}

TEST(SchedDomainTest, SmtDomainGroupsAreSiblings) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const SchedDomain* smt = hierarchy.DomainsFor(3)[0];
  ASSERT_EQ(smt->groups.size(), 2u);
  EXPECT_TRUE(smt->Contains(3));
  EXPECT_TRUE(smt->Contains(11));
  EXPECT_EQ(smt->cpus.size(), 2u);
}

TEST(SchedDomainTest, NodeDomainGroupsArePhysicalPackages) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const SchedDomain* node = hierarchy.DomainsFor(0)[1];
  EXPECT_EQ(node->groups.size(), 4u);  // four packages per node
  EXPECT_EQ(node->cpus.size(), 8u);    // eight logical CPUs per node
  // Group of CPU 0 must contain its sibling 8 and nothing else.
  const CpuGroup* group = node->GroupOf(0);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->cpus.size(), 2u);
  EXPECT_TRUE(group->Contains(8));
}

TEST(SchedDomainTest, TopDomainGroupsAreNodes) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const SchedDomain* top = hierarchy.DomainsFor(0)[2];
  EXPECT_EQ(top->groups.size(), 2u);
  EXPECT_EQ(top->cpus.size(), 16u);
  EXPECT_NE(top->flags & kDomainCrossesNode, 0u);
  const CpuGroup* node0 = top->GroupOf(0);
  ASSERT_NE(node0, nullptr);
  EXPECT_EQ(node0->cpus.size(), 8u);
  EXPECT_FALSE(node0->Contains(4));
  EXPECT_TRUE(node0->Contains(11));
}

TEST(SchedDomainTest, DomainsForDistinctCpusDiffer) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const auto for0 = hierarchy.DomainsFor(0);
  const auto for4 = hierarchy.DomainsFor(4);
  EXPECT_NE(for0[0], for4[0]);  // different packages
  EXPECT_NE(for0[1], for4[1]);  // different nodes
  EXPECT_EQ(for0[2], for4[2]);  // same top level
}

TEST(SchedDomainTest, GroupOfMissingCpuIsNull) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const SchedDomain* smt0 = hierarchy.DomainsFor(0)[0];
  EXPECT_EQ(smt0->GroupOf(5), nullptr);
}

TEST(SchedDomainTest, SingleNodeMachineHasOneLevel) {
  const CpuTopology topo(1, 4, 1);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  EXPECT_EQ(hierarchy.num_levels(), 1u);
  const auto domains = hierarchy.DomainsFor(2);
  ASSERT_EQ(domains.size(), 1u);
  EXPECT_EQ(domains[0]->groups.size(), 4u);
}

TEST(SchedDomainTest, StackForMatchesDomainsFor) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  for (int cpu = 0; cpu < static_cast<int>(topo.num_logical()); ++cpu) {
    const auto domains = hierarchy.DomainsFor(cpu);
    const auto& stack = hierarchy.StackFor(cpu);
    ASSERT_EQ(stack.size(), domains.size());
    for (std::size_t i = 0; i < stack.size(); ++i) {
      EXPECT_EQ(stack[i].domain, domains[i]);
      EXPECT_EQ(stack[i].group, domains[i]->GroupOf(cpu));
    }
  }
}

TEST(SchedDomainTest, ChildDomainLinksDescendTheTree) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  const auto& stack = hierarchy.StackFor(0);
  ASSERT_EQ(stack.size(), 3u);
  // SMT groups are leaves.
  EXPECT_EQ(stack[0].group->child_domain, -1);
  // The node-level group of CPU 0 descends into smt0.
  const SchedDomain& smt0 = hierarchy.domains()[static_cast<std::size_t>(
      stack[1].group->child_domain)];
  EXPECT_EQ(smt0.name, "smt0");
  // The top-level group of CPU 0 descends into node0.
  const SchedDomain& node0 = hierarchy.domains()[static_cast<std::size_t>(
      stack[2].group->child_domain)];
  EXPECT_EQ(node0.name, "node0");
  // A child domain spans exactly its parent group's CPUs.
  EXPECT_EQ(node0.cpus, stack[2].group->cpus);
}

TEST(SchedDomainTest, DeepTreeOneDomainLevelPerTopologyLevel) {
  std::string error;
  const auto topo = ParseTopologySpec("2:2:2:2:2", &error);
  ASSERT_TRUE(topo.has_value()) << error;
  const DomainHierarchy hierarchy = DomainHierarchy::Build(*topo);
  // smt + package + node + board + rack(top) levels.
  EXPECT_EQ(hierarchy.num_levels(), 5u);
  const auto& stack = hierarchy.StackFor(0);
  ASSERT_EQ(stack.size(), 5u);
  EXPECT_EQ(stack[0].domain->name, "smt0");
  EXPECT_EQ(stack[1].domain->name, "node0");
  EXPECT_EQ(stack[2].domain->name, "board0");
  EXPECT_EQ(stack[3].domain->name, "rack0");
  EXPECT_EQ(stack[4].domain->name, "top");
  // Node crossings start at the level grouping nodes, not the package level.
  EXPECT_EQ(stack[1].domain->flags & kDomainCrossesNode, 0u);
  EXPECT_NE(stack[2].domain->flags & kDomainCrossesNode, 0u);
  EXPECT_NE(stack[4].domain->flags & kDomainCrossesNode, 0u);
  // Every level is a binary fanout over the one below.
  for (const DomainCursor& cursor : stack) {
    EXPECT_EQ(cursor.domain->groups.size(), 2u);
  }
}

TEST(SchedDomainTest, WidthOneLevelsCollapse) {
  // 2 racks of 1 board of 4 packages: the board level balances nothing, so
  // its group links skip straight from rack groups to package-level domains.
  std::string error;
  const auto topo = ParseTopologySpec("2:1:4:1", &error);
  ASSERT_TRUE(topo.has_value()) << error;
  const DomainHierarchy hierarchy = DomainHierarchy::Build(*topo);
  EXPECT_EQ(hierarchy.num_levels(), 2u);
  const auto& stack = hierarchy.StackFor(0);
  ASSERT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack[0].domain->groups.size(), 4u);  // packages within the board
  EXPECT_EQ(stack[1].domain->name, "top");
  ASSERT_EQ(stack[1].domain->groups.size(), 2u);
  const SchedDomain& below = hierarchy.domains()[static_cast<std::size_t>(
      stack[1].group->child_domain)];
  EXPECT_EQ(&below, stack[0].domain);
}

TEST(SchedDomainTest, DeepButNarrowTreeDegenerates) {
  std::string error;
  const auto topo = ParseTopologySpec("1:1:1:1:8", &error);
  ASSERT_TRUE(topo.has_value()) << error;
  const DomainHierarchy hierarchy = DomainHierarchy::Build(*topo);
  // One SMT domain plus the fallback package-scope domain above it.
  EXPECT_EQ(hierarchy.num_levels(), 2u);
  const auto& stack = hierarchy.StackFor(0);
  ASSERT_EQ(stack.size(), 2u);
  EXPECT_NE(stack[0].domain->flags & kDomainNoEnergyBalance, 0u);
  EXPECT_EQ(stack[0].domain->groups.size(), 8u);
  EXPECT_EQ(stack[1].domain->groups.size(), 1u);
  EXPECT_EQ(stack[1].group->child_domain, 0);
}

TEST(SchedDomainTest, SingleCpuMachine) {
  const CpuTopology topo(1, 1, 1);
  const DomainHierarchy hierarchy = DomainHierarchy::Build(topo);
  EXPECT_EQ(hierarchy.num_levels(), 1u);
  const auto& stack = hierarchy.StackFor(0);
  ASSERT_EQ(stack.size(), 1u);
  EXPECT_EQ(stack[0].domain->name, "node0");
  EXPECT_EQ(stack[0].group->cpus.size(), 1u);
  EXPECT_EQ(stack[0].group->child_domain, -1);
}

}  // namespace
}  // namespace eas
