#include "src/topo/cpu_topology.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

TEST(CpuTopologyTest, PaperMachineSmtOff) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(false);
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.num_physical(), 8u);
  EXPECT_EQ(topo.num_logical(), 8u);
}

TEST(CpuTopologyTest, PaperMachineSmtOn) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  EXPECT_EQ(topo.num_logical(), 16u);
  EXPECT_EQ(topo.smt_per_physical(), 2u);
}

TEST(CpuTopologyTest, SiblingIdsDifferInMsb) {
  // Paper Section 6.4: "CPU 0 is the sibling of CPU 8, CPU 1 of CPU 9, ..."
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  for (int cpu = 0; cpu < 8; ++cpu) {
    const auto siblings = topo.SiblingsOf(cpu);
    ASSERT_EQ(siblings.size(), 2u);
    EXPECT_EQ(siblings[0], cpu);
    EXPECT_EQ(siblings[1], cpu + 8);
    EXPECT_TRUE(topo.AreSiblings(cpu, cpu + 8));
  }
}

TEST(CpuTopologyTest, NodeAssignment) {
  // CPUs 0-3 (+ siblings 8-11) on node 0; 4-7 (+ 12-15) on node 1.
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  for (int cpu : {0, 1, 2, 3, 8, 9, 10, 11}) {
    EXPECT_EQ(topo.NodeOf(cpu), 0u) << "cpu " << cpu;
  }
  for (int cpu : {4, 5, 6, 7, 12, 13, 14, 15}) {
    EXPECT_EQ(topo.NodeOf(cpu), 1u) << "cpu " << cpu;
  }
}

TEST(CpuTopologyTest, LogicalIdRoundTrip) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  for (std::size_t phys = 0; phys < topo.num_physical(); ++phys) {
    for (std::size_t t = 0; t < topo.smt_per_physical(); ++t) {
      const int logical = topo.LogicalId(phys, t);
      EXPECT_EQ(topo.PhysicalOf(logical), phys);
      EXPECT_EQ(topo.ThreadOf(logical), t);
    }
  }
}

TEST(CpuTopologyTest, SameNodeSymmetric) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(false);
  EXPECT_TRUE(topo.SameNode(0, 3));
  EXPECT_TRUE(topo.SameNode(4, 7));
  EXPECT_FALSE(topo.SameNode(3, 4));
  EXPECT_FALSE(topo.SameNode(4, 3));
}

TEST(CpuTopologyTest, SingleCpuDegenerate) {
  const CpuTopology topo(1, 1, 1);
  EXPECT_EQ(topo.num_logical(), 1u);
  EXPECT_EQ(topo.SiblingsOf(0).size(), 1u);
  EXPECT_TRUE(topo.AreSiblings(0, 0));
}

TEST(CpuTopologyTest, SmtOffEveryCpuOwnSibling) {
  const CpuTopology topo = CpuTopology::PaperXSeries445(false);
  for (int cpu = 0; cpu < 8; ++cpu) {
    EXPECT_EQ(topo.SiblingsOf(cpu).size(), 1u);
    for (int other = 0; other < 8; ++other) {
      EXPECT_EQ(topo.AreSiblings(cpu, other), cpu == other);
    }
  }
}


TEST(ParseTopologySpecTest, AcceptsValidSpecs) {
  std::string error;
  const auto paper = ParseTopologySpec("2:4:2", &error);
  ASSERT_TRUE(paper.has_value()) << error;
  EXPECT_EQ(paper->num_nodes(), 2u);
  EXPECT_EQ(paper->physical_per_node(), 4u);
  EXPECT_EQ(paper->smt_per_physical(), 2u);
  EXPECT_EQ(paper->num_logical(), 16u);
  const auto tiny = ParseTopologySpec("1:1:1", nullptr);
  ASSERT_TRUE(tiny.has_value());
  EXPECT_EQ(tiny->num_logical(), 1u);
}

TEST(ParseTopologySpecTest, RejectsMalformedSpecs) {
  // The historical bug: "junk:0:x" went through atoi and produced a 0-CPU
  // machine. Every width must be a strictly positive integer.
  for (const char* bad :
       {"junk:0:x", "", "8", "0:4:1", "2:0:1", "2:4:0", "-2:4:1", "2:4:x",
        "2: 4:1", "2:4:1x", "+2:4:1", "9999999999:1:1", "4:0:2:4:2", "=4:2",
        "1:1:1:1:1:1:1:1:1", "1024:1024:2"}) {
    std::string error;
    EXPECT_FALSE(ParseTopologySpec(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ParseTopologySpecTest, ErrorNamesTheBadTokenAndPosition) {
  std::string error;
  EXPECT_FALSE(ParseTopologySpec("2:0:1", &error).has_value());
  EXPECT_NE(error.find("physical-per-node"), std::string::npos) << error;
  EXPECT_NE(error.find("\"0\""), std::string::npos) << error;
  EXPECT_NE(error.find("level 2"), std::string::npos) << error;
  EXPECT_FALSE(ParseTopologySpec("2:4:x", &error).has_value());
  EXPECT_NE(error.find("smt"), std::string::npos) << error;
  EXPECT_NE(error.find("level 3"), std::string::npos) << error;
  EXPECT_FALSE(ParseTopologySpec("8", &error).has_value());
  EXPECT_NE(error.find("nodes:physical-per-node:smt"), std::string::npos) << error;
  EXPECT_FALSE(ParseTopologySpec("4:8:0:4:2", &error).has_value());
  EXPECT_NE(error.find("level 3"), std::string::npos) << error;
  EXPECT_NE(error.find("\"0\""), std::string::npos) << error;
}

TEST(ParseTopologySpecTest, AcceptsDeepLevelLists) {
  std::string error;
  const auto deep = ParseTopologySpec("4:8:2:4:2", &error);
  ASSERT_TRUE(deep.has_value()) << error;
  EXPECT_EQ(deep->num_levels(), 5u);
  EXPECT_EQ(deep->num_physical(), 4u * 8u * 2u * 4u);
  EXPECT_EQ(deep->num_logical(), 4u * 8u * 2u * 4u * 2u);
  EXPECT_EQ(deep->smt_per_physical(), 2u);
  // "node" stays the level just above the package level.
  EXPECT_EQ(deep->physical_per_node(), 4u);
  EXPECT_EQ(deep->num_nodes(), 4u * 8u * 2u);

  // Two-level specs are the minimal form: packages x smt.
  const auto flat = ParseTopologySpec("2:4", &error);
  ASSERT_TRUE(flat.has_value()) << error;
  EXPECT_EQ(flat->num_levels(), 2u);
  EXPECT_EQ(flat->num_physical(), 2u);
  EXPECT_EQ(flat->num_logical(), 8u);

  // A trailing :1 SMT level keeps the same machine as the 3-level form.
  const auto padded = ParseTopologySpec("2:4:1:1", &error);
  ASSERT_TRUE(padded.has_value()) << error;
  EXPECT_EQ(padded->num_physical(), 8u);
  EXPECT_EQ(padded->num_logical(), 8u);
}

TEST(ParseTopologySpecTest, AcceptsNamedLevels) {
  std::string error;
  const auto named = ParseTopologySpec("rack=2:board=4:socket=2:package=4:smt=2", &error);
  ASSERT_TRUE(named.has_value()) << error;
  ASSERT_EQ(named->num_levels(), 5u);
  EXPECT_EQ(named->levels()[0].name, "rack");
  EXPECT_EQ(named->levels()[3].name, "package");
  EXPECT_EQ(named->num_logical(), 2u * 4u * 2u * 4u * 2u);
}

TEST(ParseTopologySpecTest, DefaultLevelNamesByDepth) {
  std::string error;
  const auto deep = ParseTopologySpec("4:8:2:4:2", &error);
  ASSERT_TRUE(deep.has_value()) << error;
  EXPECT_EQ(deep->levels()[0].name, "rack");
  EXPECT_EQ(deep->levels()[1].name, "board");
  EXPECT_EQ(deep->levels()[2].name, "node");
  EXPECT_EQ(deep->levels()[3].name, "package");
  EXPECT_EQ(deep->levels()[4].name, "smt");
  const auto grid = ParseTopologySpec("2:4:2", &error);
  ASSERT_TRUE(grid.has_value()) << error;
  EXPECT_EQ(grid->levels()[0].name, "node");
}

TEST(CpuTopologyTest, DeepTreeUnitIndexing) {
  // 2 racks x 2 boards x 2 packages x 2 smt = 8 packages, 16 logical.
  std::string error;
  const auto topo = ParseTopologySpec("2:2:2:2", &error);
  ASSERT_TRUE(topo.has_value()) << error;
  EXPECT_EQ(topo->PackagesPerUnit(0), 4u);  // packages per rack
  EXPECT_EQ(topo->PackagesPerUnit(1), 2u);  // packages per board
  EXPECT_EQ(topo->PackagesPerUnit(2), 1u);
  EXPECT_EQ(topo->UnitsAtLevel(0), 2u);
  EXPECT_EQ(topo->UnitsAtLevel(1), 4u);
  EXPECT_EQ(topo->UnitsAtLevel(2), 8u);
  // CPU 5 = thread 0 of package 5 -> board 2, rack 1.
  EXPECT_EQ(topo->UnitOf(5, 2), 5u);
  EXPECT_EQ(topo->UnitOf(5, 1), 2u);
  EXPECT_EQ(topo->UnitOf(5, 0), 1u);
  // Sibling numbering is unchanged by depth: logical = t * num_physical + p.
  EXPECT_EQ(topo->LogicalId(5, 1), 13);
  EXPECT_TRUE(topo->AreSiblings(5, 13));
}

TEST(CpuTopologyTest, DeepButNarrowTree) {
  std::string error;
  const auto topo = ParseTopologySpec("1:1:1:1:8", &error);
  ASSERT_TRUE(topo.has_value()) << error;
  EXPECT_EQ(topo->num_physical(), 1u);
  EXPECT_EQ(topo->num_logical(), 8u);
  EXPECT_EQ(topo->smt_per_physical(), 8u);
  EXPECT_EQ(topo->SiblingsOf(0).size(), 8u);
  EXPECT_TRUE(topo->SameNode(0, 7));
}

}  // namespace
}  // namespace eas
