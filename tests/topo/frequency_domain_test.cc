// P-state table and FrequencyDomain: transition clamping, residency
// statistics and the derived quantities RunResult exports.

#include "src/topo/frequency_domain.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eas {
namespace {

TEST(PStateTableTest, RejectsMalformedTables) {
  EXPECT_THROW(PStateTable(std::vector<PState>{}), std::invalid_argument);
  EXPECT_THROW(PStateTable({PState{0.9, 1.0}}), std::invalid_argument);
  EXPECT_THROW(PStateTable({PState{1.0, 0.9}}), std::invalid_argument);
  EXPECT_NO_THROW(PStateTable({PState{1.0, 1.0}, PState{0.5, 0.8}}));
}

TEST(PStateTableTest, DefaultLadderIsMonotonic) {
  const PStateTable table = PStateTable::Default();
  ASSERT_GE(table.size(), 2u);
  EXPECT_DOUBLE_EQ(table.at(0).frequency_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(table.at(0).voltage, 1.0);
  EXPECT_DOUBLE_EQ(table.at(0).EnergyScale(), 1.0);
  EXPECT_DOUBLE_EQ(table.at(0).PowerScale(), 1.0);
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(table.at(i).frequency_multiplier, table.at(i - 1).frequency_multiplier) << i;
    EXPECT_LE(table.at(i).voltage, table.at(i - 1).voltage) << i;
    // Deeper states must save more power than they cost frequency - the
    // whole point of voltage scaling (power ~ f * V^2 falls faster than f).
    EXPECT_LT(table.at(i).PowerScale(), table.at(i).frequency_multiplier) << i;
  }
}

TEST(FrequencyDomainTest, TransitionsClampAtLadderEnds) {
  FrequencyDomain domain{PStateTable::Default()};
  EXPECT_EQ(domain.current(), 0u);
  domain.StepUp();
  EXPECT_EQ(domain.current(), 0u);  // already at P0
  for (std::size_t i = 0; i < domain.table().size() + 3; ++i) {
    domain.StepDown();
  }
  EXPECT_EQ(domain.current(), domain.table().deepest());
  domain.SetPState(99);  // past the end: clamped
  EXPECT_EQ(domain.current(), domain.table().deepest());
  domain.SetPState(0);
  EXPECT_EQ(domain.current(), 0u);
}

TEST(FrequencyDomainTest, ResidencyAndAverageFrequency) {
  FrequencyDomain domain{PStateTable::Default()};
  domain.AccountTick();  // P0
  domain.AccountTick();  // P0
  domain.SetPState(2);
  domain.AccountTick();  // P2
  domain.AccountTick();  // P2

  EXPECT_EQ(domain.total_ticks(), 4);
  EXPECT_EQ(domain.residency_ticks(0), 2);
  EXPECT_EQ(domain.residency_ticks(2), 2);
  EXPECT_DOUBLE_EQ(domain.ResidencyFraction(0), 0.5);
  EXPECT_DOUBLE_EQ(domain.ResidencyFraction(2), 0.5);
  EXPECT_DOUBLE_EQ(domain.ResidencyFraction(1), 0.0);
  const double p2 = domain.table().at(2).frequency_multiplier;
  EXPECT_DOUBLE_EQ(domain.AverageFrequency(), (2.0 * 1.0 + 2.0 * p2) / 4.0);

  domain.ResetAccounting();
  EXPECT_EQ(domain.total_ticks(), 0);
  EXPECT_DOUBLE_EQ(domain.ResidencyFraction(2), 0.0);
  // Never-governed domains read as full speed, not 0.
  EXPECT_DOUBLE_EQ(domain.AverageFrequency(), 1.0);
  // The P-state itself survives a statistics reset.
  EXPECT_EQ(domain.current(), 2u);
}

}  // namespace
}  // namespace eas
