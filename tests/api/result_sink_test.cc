// ResultSinks and RunSession: the CsvSink goldens pinning the summary
// format byte-identical to the pre-redesign CSVs (ungoverned and governed),
// per-run trace/summary fan-out, JSONL round trips, and sink-output
// determinism across session thread counts.

#include "src/api/result_sink.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/run_session.h"
#include "src/sim/csv_export.h"

namespace eas {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + name; }

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(stream)) << path;
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

// A RunResult with hand-picked scalars; `governed` adds the DVFS columns.
RunResult HandBuiltResult(bool governed) {
  RunResult result;
  result.migrations = 8;
  result.completions = 2;
  result.work_done_ticks = 79988.0;
  result.duration_seconds = 10.0;
  result.throttled_fraction = {0.25, 0.0};
  if (governed) {
    result.average_frequency = {0.95, 1.0};
    result.pstate_residency = {{0.5, 0.5}, {1.0, 0.0}};
  }
  return result;
}

RunRecord MakeRecord(RunResult result, std::size_t index = 0, std::size_t total = 1) {
  RunRecord record;
  record.spec.name = "probe";
  record.index = index;
  record.total = total;
  record.result = std::move(result);
  return record;
}

// The exact pre-redesign summary bytes for HandBuiltResult(false): the
// format RunSummaryToCsv wrote before the MetricRegistry/sink redesign.
// Changing these strings means breaking every downstream CSV consumer.
constexpr char kUngovernedGolden[] =
    "migrations,8\n"
    "completions,2\n"
    "work_done_ticks,79988.0\n"
    "duration_seconds,10.000\n"
    "throughput,7998.80\n"
    "avg_throttled_fraction,0.1250\n"
    "throttled_fraction_cpu0,0.2500\n"
    "throttled_fraction_cpu1,0.0000\n";

constexpr char kGovernedExtraGolden[] =
    "avg_frequency_cpu0,0.9500\n"
    "avg_frequency_cpu1,1.0000\n"
    "pstate_residency_cpu0_p0,0.5000\n"
    "pstate_residency_cpu0_p1,0.5000\n"
    "pstate_residency_cpu1_p0,1.0000\n"
    "pstate_residency_cpu1_p1,0.0000\n";

TEST(CsvSinkTest, SingleRunSummaryMatchesPreRedesignGoldenUngoverned) {
  const std::string path = TempPath("golden_ungoverned.csv");
  CsvSink sink(path, "");
  sink.Begin(1);
  sink.Consume(MakeRecord(HandBuiltResult(false)));
  sink.Finish();
  ASSERT_TRUE(sink.ok()) << sink.error();
  EXPECT_EQ(ReadFileOrDie(path), kUngovernedGolden);
}

TEST(CsvSinkTest, SingleRunSummaryMatchesPreRedesignGoldenGoverned) {
  const std::string path = TempPath("golden_governed.csv");
  CsvSink sink(path, "");
  sink.Begin(1);
  sink.Consume(MakeRecord(HandBuiltResult(true)));
  sink.Finish();
  ASSERT_TRUE(sink.ok()) << sink.error();
  EXPECT_EQ(ReadFileOrDie(path), std::string(kUngovernedGolden) + kGovernedExtraGolden);
}

TEST(CsvSinkTest, SingleRunSummaryMatchesLegacyExporter) {
  // The sink and the deprecated RunSummaryToCsv shim must agree bit for bit
  // (both render the same MetricRegistry schema).
  const std::string path = TempPath("legacy_agreement.csv");
  const RunResult result = HandBuiltResult(true);
  CsvSink sink(path, "");
  sink.Begin(1);
  sink.Consume(MakeRecord(result));
  sink.Finish();
  EXPECT_EQ(ReadFileOrDie(path), RunSummaryToCsv(result));
}

TEST(CsvSinkTest, MultiRunSummaryWritesOneRowPerRun) {
  const std::string path = TempPath("multi_summary.csv");
  CsvSink sink(path, "");
  sink.Begin(2);
  RunRecord first = MakeRecord(HandBuiltResult(false), 0, 2);
  first.spec.name = "probe/seed42";
  first.spec.config.seed = 42;
  RunRecord second = MakeRecord(HandBuiltResult(false), 1, 2);
  second.spec.name = "probe/seed43";
  second.spec.config.seed = 43;
  second.result.migrations = 9;
  sink.Consume(first);
  sink.Consume(second);
  sink.Finish();
  ASSERT_TRUE(sink.ok()) << sink.error();

  std::istringstream lines(ReadFileOrDie(path));
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header.rfind("run,name,seed,migrations,completions,", 0), 0u) << header;
  std::string row;
  std::getline(lines, row);
  EXPECT_EQ(row.rfind("0,probe/seed42,42,8,2,", 0), 0u) << row;
  std::getline(lines, row);
  EXPECT_EQ(row.rfind("1,probe/seed43,43,9,2,", 0), 0u) << row;
  std::getline(lines, row);
  EXPECT_TRUE(row.empty());
}

TEST(CsvSinkTest, MultiRunSummaryKeepsTheColumnUnionAcrossMixedSchemas) {
  // A batch can mix ungoverned and governed runs; the table's columns are
  // the union in first-seen order, and a run without a metric renders an
  // empty cell - no run's columns are dropped by whichever came first.
  const std::string path = TempPath("mixed_summary.csv");
  CsvSink sink(path, "");
  sink.Begin(2);
  sink.Consume(MakeRecord(HandBuiltResult(false), 0, 2));  // ungoverned first
  sink.Consume(MakeRecord(HandBuiltResult(true), 1, 2));   // governed second
  sink.Finish();
  ASSERT_TRUE(sink.ok()) << sink.error();

  std::istringstream lines(ReadFileOrDie(path));
  std::string header;
  std::getline(lines, header);
  EXPECT_NE(header.find(",avg_frequency_cpu0,"), std::string::npos) << header;
  EXPECT_NE(header.find(",pstate_residency_cpu1_p1"), std::string::npos) << header;
  std::string ungoverned_row;
  std::getline(lines, ungoverned_row);
  // The ungoverned run renders empty cells for the 6 DVFS columns.
  EXPECT_NE(ungoverned_row.find("0.0000,,,,,,"), std::string::npos) << ungoverned_row;
  std::string governed_row;
  std::getline(lines, governed_row);
  EXPECT_NE(governed_row.find("0.9500"), std::string::npos) << governed_row;
}

TEST(CsvSinkTest, TraceFilesGetPerRunSuffixes) {
  const std::string trace = TempPath("trace.csv");
  CsvSink sink("", trace);
  sink.Begin(2);

  RunResult with_trace = HandBuiltResult(false);
  Series& series = with_trace.thermal_power.Create("cpu0");
  series.Add(0, 1.0);
  series.Add(500, 2.0);
  sink.Consume(MakeRecord(with_trace, 0, 2));
  sink.Consume(MakeRecord(with_trace, 1, 2));
  sink.Finish();
  ASSERT_TRUE(sink.ok()) << sink.error();

  EXPECT_EQ(sink.TracePathFor(0), trace);
  EXPECT_EQ(sink.TracePathFor(1), trace + ".run1");
  // Run 0 keeps the historical file name and the historical bytes.
  EXPECT_EQ(ReadFileOrDie(trace), SeriesSetToCsv(with_trace.thermal_power));
  EXPECT_EQ(ReadFileOrDie(trace + ".run1"), SeriesSetToCsv(with_trace.thermal_power));
}

TEST(JsonlSinkTest, RecordsCarryMetricsAndAReplayableRequest) {
  const std::string path = TempPath("records.jsonl");
  JsonlSink sink(path);
  sink.AppendLine("{\"bench\": \"probe\"}");
  sink.Begin(1);
  RunRecord record = MakeRecord(HandBuiltResult(true));
  record.request.scenario = "paper-mixed";
  record.request.runs = 2;
  sink.Consume(record);
  sink.Finish();
  ASSERT_TRUE(sink.ok()) << sink.error();

  std::istringstream lines(ReadFileOrDie(path));
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header, "{\"bench\": \"probe\"}");
  std::string line;
  std::getline(lines, line);
  EXPECT_NE(line.find("\"name\": \"probe\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"throughput\": 7998.80"), std::string::npos) << line;
  EXPECT_NE(line.find("\"avg_frequency_cpu0\": 0.9500"), std::string::npos) << line;
  EXPECT_NE(line.find("\"peak_thermal_w\": "), std::string::npos) << line;
  EXPECT_NE(line.find("\"steady_spread_w\": "), std::string::npos) << line;
  EXPECT_NE(line.find("\"request\": \"scenario = paper-mixed; runs = 2\""), std::string::npos)
      << line;

  // The embedded request string parses back into the originating request.
  const std::string needle = "\"request\": \"";
  const std::size_t start = line.find(needle) + needle.size();
  const std::string request_text = line.substr(start, line.find('"', start) - start);
  const auto parsed = ParseRunRequest(request_text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().Render();
  EXPECT_EQ(*parsed, record.request);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(AsciiPlotSinkTest, RendersAPlotPerRecord) {
  const std::string path = TempPath("plot.txt");
  std::FILE* out = std::fopen(path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  {
    AsciiPlotSink sink(out);
    RunResult result = HandBuiltResult(false);
    Series& series = result.thermal_power.Create("cpu0");
    for (Tick t = 0; t < 10; ++t) {
      series.Add(t * 500, 30.0 + t);
    }
    RunRecord record = MakeRecord(result);
    record.spec.config.explicit_max_power_physical = 35.0;  // marker line
    sink.Consume(record);
  }
  std::fclose(out);
  const std::string text = ReadFileOrDie(path);
  EXPECT_NE(text.find("probe"), std::string::npos);
  EXPECT_NE(text.find('0'), std::string::npos);  // the series' symbol
}

// --- RunSession --------------------------------------------------------------

// Collects the record order the session streams.
class OrderSink : public ResultSink {
 public:
  void Begin(std::size_t total_records) override { total_ = total_records; }
  void Consume(const RunRecord& record) override { names_.push_back(record.spec.name); }

  std::size_t total_ = 0;
  std::vector<std::string> names_;
};

ResolvedRequest QuickRequest(const std::string& name, std::uint64_t runs) {
  RunRequest request;
  request.name = name;
  request.topology = "1:2:1";
  request.workload = "hot:2";
  request.duration_s = 2.0;
  request.runs = runs;
  auto resolved = ResolveRunRequest(request);
  EXPECT_TRUE(resolved.ok()) << resolved.error().Render();
  return *resolved;
}

TEST(RunSessionTest, StreamsRecordsInRequestOrderForAnyThreadCount) {
  const std::vector<ResolvedRequest> requests = {QuickRequest("a", 2), QuickRequest("b", 1)};
  for (std::size_t threads : {1u, 4u}) {
    OrderSink order;
    RunSession session(threads);
    session.AddSink(order);
    const std::vector<RunRecord> records = session.Run(requests);
    EXPECT_EQ(order.total_, 3u);
    const std::vector<std::string> expected = {"a/seed42", "a/seed43", "b"};
    EXPECT_EQ(order.names_, expected) << threads << " threads";
    ASSERT_EQ(records.size(), 3u);
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].index, i);
      EXPECT_EQ(records[i].total, 3u);
      EXPECT_EQ(records[i].spec.name, expected[i]);
    }
    EXPECT_EQ(records[1].request.name, "a");  // record points back at its request
  }
}

TEST(RunSessionTest, SinkOutputIsBitIdenticalAcrossThreadCounts) {
  const std::vector<ResolvedRequest> requests = {QuickRequest("sweep", 3)};
  std::vector<std::string> outputs;
  for (std::size_t threads : {1u, 4u}) {
    const std::string path =
        TempPath("threads" + std::to_string(threads) + "_summary.csv");
    CsvSink csv(path, "");
    RunSession session(threads);
    session.AddSink(csv);
    session.Run(requests);
    csv.Finish();
    ASSERT_TRUE(csv.ok()) << csv.error();
    outputs.push_back(ReadFileOrDie(path));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_NE(outputs[0].find("run,name,seed,"), std::string::npos);
}

}  // namespace
}  // namespace eas
