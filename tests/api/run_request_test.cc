// RunRequest: the parse/format round trip (including rejection diagnostics
// for bad keys and values) and the resolve semantics that make a request
// file reproduce the equivalent flag-driven run exactly.

#include "src/api/run_request.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/sim/scenario.h"

namespace eas {
namespace {

RunRequest ParseOk(const std::string& text) {
  std::string error;
  const auto request = ParseRunRequest(text, &error);
  EXPECT_TRUE(request.has_value()) << error;
  return request.value_or(RunRequest{});
}

std::string ParseError(const std::string& text) {
  std::string error;
  const auto request = ParseRunRequest(text, &error);
  EXPECT_FALSE(request.has_value()) << "parsed: " << FormatRunRequest(*request);
  return error;
}

TEST(RunRequestParseTest, ParsesEveryKey) {
  const RunRequest request = ParseOk(
      "# a comment\n"
      "name = my-run\n"
      "scenario = paper-mixed\n"
      "topology = 2:4:2\n"
      "policy = energy_aware\n"
      "governor = ondemand\n"
      "duration-s = 60.5\n"
      "max-power = 40\n"
      "temp-limit = 38\n"
      "throttle = true\n"
      "skip-ahead = off\n"
      "intra-threads = 4\n"
      "seed = 7\n"
      "runs = 3\n");
  EXPECT_EQ(request.name, "my-run");
  EXPECT_EQ(request.scenario, "paper-mixed");
  EXPECT_EQ(request.topology, "2:4:2");
  EXPECT_EQ(request.policy, "energy_aware");
  EXPECT_EQ(request.governor, "ondemand");
  EXPECT_EQ(request.duration_s, 60.5);
  EXPECT_EQ(request.max_power, 40.0);
  EXPECT_EQ(request.temp_limit, 38.0);
  EXPECT_EQ(request.throttle, true);
  EXPECT_EQ(request.skip_ahead, false);
  EXPECT_EQ(request.intra_threads, 4u);
  EXPECT_EQ(request.seed, 7u);
  EXPECT_EQ(request.runs, 3u);
  EXPECT_FALSE(request.workload.has_value());
}

TEST(RunRequestParseTest, SemicolonsSeparatePairsOnOneLine) {
  const RunRequest request = ParseOk("scenario = paper-hot-task; runs = 2; seed = 9");
  EXPECT_EQ(request.scenario, "paper-hot-task");
  EXPECT_EQ(request.runs, 2u);
  EXPECT_EQ(request.seed, 9u);
}

TEST(RunRequestParseTest, BlankLinesAndCommentsIgnored) {
  const RunRequest request = ParseOk("\n  \n# only a comment\npolicy = load_only # trailing\n");
  EXPECT_EQ(request.policy, "load_only");
}

TEST(RunRequestParseTest, RejectsUnknownKeyNamingIt) {
  const std::string error = ParseError("polcy = energy_aware\n");
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown key \"polcy\""), std::string::npos) << error;
  EXPECT_NE(error.find("policy"), std::string::npos) << error;  // lists the known keys
}

TEST(RunRequestParseTest, RejectsBadValuesNamingLineAndKey) {
  EXPECT_NE(ParseError("duration-s = fast\n").find("bad value for duration-s"),
            std::string::npos);
  EXPECT_NE(ParseError("seed = -3\n").find("bad value for seed"), std::string::npos);
  EXPECT_NE(ParseError("runs = 2.5\n").find("bad value for runs"), std::string::npos);
  EXPECT_NE(ParseError("throttle = maybe\n").find("bad value for throttle"),
            std::string::npos);
  EXPECT_NE(ParseError("skip-ahead = bananas\n").find("bad value for skip-ahead"),
            std::string::npos);
  EXPECT_NE(ParseError("intra-threads = -1\n").find("bad value for intra-threads"),
            std::string::npos);
  EXPECT_NE(ParseError("intra-threads = 2.5\n").find("bad value for intra-threads"),
            std::string::npos);
  EXPECT_NE(ParseError("scenario = a\nmax-power = x\n").find("line 2"), std::string::npos);
}

TEST(RunRequestParseTest, RejectsNonFiniteNumbers) {
  // strtod accepts nan/inf spellings and overflows to inf; no numeric
  // request field can mean anything non-finite.
  EXPECT_NE(ParseError("duration-s = nan\n").find("bad value for duration-s"),
            std::string::npos);
  EXPECT_NE(ParseError("max-power = inf\n").find("bad value for max-power"),
            std::string::npos);
  EXPECT_NE(ParseError("temp-limit = 1e999\n").find("bad value for temp-limit"),
            std::string::npos);
}

TEST(RunRequestParseTest, RejectsMalformedPairs) {
  EXPECT_NE(ParseError("just words\n").find("expected key = value"), std::string::npos);
  EXPECT_NE(ParseError("= value\n").find("missing key"), std::string::npos);
  EXPECT_NE(ParseError("policy =\n").find("empty value"), std::string::npos);
  EXPECT_NE(ParseError("seed = 1\nseed = 2\n").find("duplicate key \"seed\""),
            std::string::npos);
}

TEST(RunRequestApplyFieldTest, SharesTheParserValidation) {
  // The one-pair entry point eastool's flags use: same keys, same value
  // strictness as the file parser.
  RunRequest request;
  std::string error;
  EXPECT_TRUE(ApplyRunRequestField("seed", "7", &request, &error)) << error;
  EXPECT_EQ(request.seed, 7u);
  EXPECT_TRUE(ApplyRunRequestField("policy", "load_only", &request, &error)) << error;

  EXPECT_FALSE(ApplyRunRequestField("seed", "4z2", &request, &error));
  EXPECT_NE(error.find("bad value for seed"), std::string::npos) << error;
  EXPECT_FALSE(ApplyRunRequestField("duration-s", "fast", &request, &error));
  EXPECT_NE(error.find("bad value for duration-s"), std::string::npos) << error;
  EXPECT_FALSE(ApplyRunRequestField("polcy", "eas", &request, &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos) << error;
  EXPECT_FALSE(ApplyRunRequestField("scenario", "", &request, &error));
  EXPECT_NE(error.find("empty value"), std::string::npos) << error;
  EXPECT_EQ(request.seed, 7u);  // failed applies leave the request alone
}

TEST(RunRequestResolveTest, RejectsValuesTheTextFormatCannotCarry) {
  // A resolved request must round-trip through Format/Parse unchanged -
  // that is what makes --print-request files and JSONL-embedded requests
  // exact reproduction recipes - so values with comment/separator
  // characters or edge whitespace are rejected up front.
  std::string error;
  RunRequest request;
  request.name = "warm-up #3";
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("bad name"), std::string::npos) << error;

  request = RunRequest{};
  request.workload = "trace:/data/run #1.csv";
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("bad workload"), std::string::npos) << error;

  request = RunRequest{};
  request.name = "a;b";
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());

  request = RunRequest{};
  request.name = " padded ";
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
}

TEST(RunRequestFormatTest, FormatParseIsIdentity) {
  RunRequest request;
  request.name = "probe";
  request.topology = "1:2:1";
  request.workload = "hot:4";
  request.policy = "load_only";
  request.duration_s = 12.5;
  request.throttle = false;
  request.skip_ahead = false;
  request.intra_threads = 2;
  request.seed = 11;
  request.runs = 4;
  const std::string text = FormatRunRequest(request);
  EXPECT_EQ(ParseOk(text), request);
  EXPECT_EQ(ParseOk(FormatRunRequestLine(request)), request);
}

TEST(RunRequestFormatTest, FormatOfParseIsAFixedPoint) {
  // Whatever spelling the user wrote, one Parse/Format pass canonicalizes
  // it and further passes change nothing.
  const std::string messy =
      "  runs=2 ;seed = 5\n# comment\npolicy   =  energy_aware\nduration-s = 60.0\n";
  const std::string canonical = FormatRunRequest(ParseOk(messy));
  EXPECT_EQ(FormatRunRequest(ParseOk(canonical)), canonical);
  EXPECT_EQ(canonical, "policy = energy_aware\nduration-s = 60\nseed = 5\nruns = 2\n");
}

TEST(RunRequestFormatTest, DefaultRequestFormatsEmpty) {
  EXPECT_EQ(FormatRunRequest(RunRequest{}), "");
  EXPECT_EQ(ParseOk(""), RunRequest{});
}

TEST(RunRequestResolveTest, DefaultsMatchTheHistoricalCli) {
  std::string error;
  const auto resolved = ResolveRunRequest(RunRequest{}, &error);
  ASSERT_TRUE(resolved.has_value()) << error;
  ASSERT_EQ(resolved->specs.size(), 1u);
  const ExperimentSpec& spec = resolved->specs[0];
  EXPECT_EQ(spec.name, "cli");
  EXPECT_EQ(spec.config.topology.num_nodes(), 2u);
  EXPECT_EQ(spec.config.topology.num_logical(), 8u);
  EXPECT_EQ(spec.config.seed, 42u);
  EXPECT_EQ(spec.config.temp_limit, 38.0);
  EXPECT_FALSE(spec.config.throttling_enabled);
  EXPECT_FALSE(spec.config.explicit_max_power_physical.has_value());
  EXPECT_EQ(spec.config.frequency_governor, "none");
  EXPECT_EQ(spec.options.duration_ticks, 120'000);
  EXPECT_EQ(spec.options.sample_interval_ticks, 500);
  EXPECT_EQ(spec.workload.size(), 18u);  // mixed:3
  EXPECT_EQ(resolved->policy, "energy_aware");
  EXPECT_EQ(resolved->governor, "none");
}

TEST(RunRequestResolveTest, ScenarioFieldsInheritUnlessOverridden) {
  // paper-hot-task: 40 W cap, throttling on, 4 bitcnts, task tracing.
  std::string error;
  const auto inherited = ResolveRunRequest(RunRequestForScenario("paper-hot-task"), &error);
  ASSERT_TRUE(inherited.has_value()) << error;
  EXPECT_TRUE(inherited->specs[0].config.throttling_enabled);
  EXPECT_EQ(inherited->specs[0].config.explicit_max_power_physical, 40.0);
  EXPECT_EQ(inherited->specs[0].workload.size(), 4u);
  EXPECT_EQ(inherited->specs[0].name, "paper-hot-task");

  RunRequest with_overrides = RunRequestForScenario("paper-hot-task");
  with_overrides.throttle = false;
  with_overrides.seed = 99;
  with_overrides.duration_s = 10.0;
  const auto overridden = ResolveRunRequest(with_overrides, &error);
  ASSERT_TRUE(overridden.has_value()) << error;
  EXPECT_FALSE(overridden->specs[0].config.throttling_enabled);
  EXPECT_EQ(overridden->specs[0].config.seed, 99u);
  EXPECT_EQ(overridden->specs[0].options.duration_ticks, 10'000);
  // Untouched scenario fields survive the overrides.
  EXPECT_EQ(overridden->specs[0].config.explicit_max_power_physical, 40.0);
  EXPECT_EQ(overridden->specs[0].workload.size(), 4u);
}

TEST(RunRequestResolveTest, SkipAheadFlowsIntoTheMachineConfig) {
  std::string error;
  const auto defaulted = ResolveRunRequest(RunRequest{}, &error);
  ASSERT_TRUE(defaulted.has_value()) << error;
  EXPECT_TRUE(defaulted->specs[0].config.skip_ahead);

  RunRequest request;
  request.skip_ahead = false;
  const auto disabled = ResolveRunRequest(request, &error);
  ASSERT_TRUE(disabled.has_value()) << error;
  EXPECT_FALSE(disabled->specs[0].config.skip_ahead);
}

TEST(RunRequestResolveTest, IntraThreadsFlowsIntoTheMachineConfig) {
  // Unset: the historical interleaved loop (0). Explicit: the sharded
  // pipeline with that worker count, including over a scenario.
  std::string error;
  const auto defaulted = ResolveRunRequest(RunRequest{}, &error);
  ASSERT_TRUE(defaulted.has_value()) << error;
  EXPECT_EQ(defaulted->specs[0].config.intra_run_threads, 0u);

  RunRequest request;
  request.intra_threads = 3;
  const auto sharded = ResolveRunRequest(request, &error);
  ASSERT_TRUE(sharded.has_value()) << error;
  EXPECT_EQ(sharded->specs[0].config.intra_run_threads, 3u);

  RunRequest scenario = RunRequestForScenario("datacenter-consolidation");
  scenario.intra_threads = 2;
  const auto over_scenario = ResolveRunRequest(scenario, &error);
  ASSERT_TRUE(over_scenario.has_value()) << error;
  EXPECT_EQ(over_scenario->specs[0].config.intra_run_threads, 2u);
}

TEST(RunRequestResolveTest, DeepTopologyRoundTripsAndResolves) {
  // A five-level spec through the full surface: parse, canonical format
  // fixed point, resolve into the level-list topology.
  const std::string text = "topology = 2:4:2:4:2; duration-s = 1";
  const RunRequest request = ParseOk(text);
  EXPECT_EQ(FormatRunRequest(ParseOk(FormatRunRequest(request))), FormatRunRequest(request));

  std::string error;
  const auto resolved = ResolveRunRequest(request, &error);
  ASSERT_TRUE(resolved.has_value()) << error;
  EXPECT_EQ(resolved->specs[0].config.topology.num_physical(), 64u);
  EXPECT_EQ(resolved->specs[0].config.topology.num_logical(), 128u);

  // Named levels round-trip too.
  RunRequest named;
  named.topology = "rack=2:node=2:package=2:smt=2";
  const auto named_resolved = ResolveRunRequest(named, &error);
  ASSERT_TRUE(named_resolved.has_value()) << error;
  EXPECT_EQ(named_resolved->specs[0].config.topology.num_logical(), 16u);
  EXPECT_EQ(ParseOk(FormatRunRequest(named)), named);
}

TEST(RunRequestResolveTest, PolicyAliasesNormalize) {
  RunRequest request;
  request.policy = "temp-only";
  std::string error;
  const auto resolved = ResolveRunRequest(request, &error);
  ASSERT_TRUE(resolved.has_value()) << error;
  EXPECT_EQ(resolved->policy, "temperature_only");
}

TEST(RunRequestResolveTest, RunsExpandIntoASeedSweep) {
  RunRequest request;
  request.seed = 10;
  request.runs = 3;
  std::string error;
  const auto resolved = ResolveRunRequest(request, &error);
  ASSERT_TRUE(resolved.has_value()) << error;
  ASSERT_EQ(resolved->specs.size(), 3u);
  EXPECT_EQ(resolved->specs[0].config.seed, 10u);
  EXPECT_EQ(resolved->specs[2].config.seed, 12u);
  EXPECT_EQ(resolved->specs[2].name, "cli/seed12");
}

TEST(RunRequestResolveTest, RejectionsDiagnose) {
  std::string error;
  RunRequest request;

  request.scenario = "no-such-scenario";
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("unknown scenario"), std::string::npos) << error;
  EXPECT_NE(error.find("paper-mixed"), std::string::npos) << error;  // lists known

  request = RunRequest{};
  request.scenario = "paper-mixed";
  request.workload = "hot:2";
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("cannot override"), std::string::npos) << error;

  request = RunRequest{};
  request.topology = "junk:0:x";
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("bad topology"), std::string::npos) << error;

  request = RunRequest{};
  request.policy = "no_such_policy";
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("unknown policy"), std::string::npos) << error;

  request = RunRequest{};
  request.governor = "no-such-governor";
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("unknown governor"), std::string::npos) << error;

  request = RunRequest{};
  request.workload = "bogus:3";
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("bad workload"), std::string::npos) << error;

  request = RunRequest{};
  request.duration_s = 0.0;
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("bad duration-s"), std::string::npos) << error;

  // Programmatically built requests bypass the parser's finiteness guard;
  // resolve must repeat it.
  request = RunRequest{};
  request.duration_s = std::nan("");
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("bad duration-s"), std::string::npos) << error;

  request = RunRequest{};
  request.max_power = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("bad max-power"), std::string::npos) << error;

  request = RunRequest{};
  request.temp_limit = std::nan("");
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("bad temp-limit"), std::string::npos) << error;

  request = RunRequest{};
  request.runs = 0;
  EXPECT_FALSE(ResolveRunRequest(request, &error).has_value());
  EXPECT_NE(error.find("bad runs"), std::string::npos) << error;
}

TEST(RunRequestResolveTest, CannedRequestsCoverTheCatalogue) {
  const std::vector<RunRequest> canned = CannedScenarioRequests();
  EXPECT_EQ(canned.size(), ScenarioRegistry::Global().Names().size());
  for (const RunRequest& request : canned) {
    std::string error;
    EXPECT_TRUE(ResolveRunRequest(request, &error).has_value())
        << request.scenario << ": " << error;
  }
}

}  // namespace
}  // namespace eas
