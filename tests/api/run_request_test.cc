// RunRequest: the parse/format round trip (including rejection diagnostics
// for bad keys and values) and the resolve semantics that make a request
// file reproduce the equivalent flag-driven run exactly. Errors come back
// as structured RequestErrors; Render() must stay byte-identical to the
// historical bool-plus-string diagnostics.

#include "src/api/run_request.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/sim/scenario.h"
#include "src/sim/scenario_cache.h"

namespace eas {
namespace {

RunRequest ParseOk(const std::string& text) {
  const auto request = ParseRunRequest(text);
  EXPECT_TRUE(request.ok()) << (request.ok() ? "" : request.error().Render());
  return request.ok() ? *request : RunRequest{};
}

RequestError ParseErr(const std::string& text) {
  const auto request = ParseRunRequest(text);
  EXPECT_FALSE(request.ok()) << "parsed: " << FormatRunRequest(*request);
  return request.ok() ? RequestError{} : request.error();
}

std::string ParseError(const std::string& text) { return ParseErr(text).Render(); }

RequestError ResolveErr(const RunRequest& request) {
  const auto resolved = ResolveRunRequest(request);
  EXPECT_FALSE(resolved.ok());
  return resolved.ok() ? RequestError{} : resolved.error();
}

TEST(RunRequestParseTest, ParsesEveryKey) {
  const RunRequest request = ParseOk(
      "# a comment\n"
      "name = my-run\n"
      "tag = client-7\n"
      "scenario = paper-mixed\n"
      "topology = 2:4:2\n"
      "policy = energy_aware\n"
      "governor = ondemand\n"
      "duration-s = 60.5\n"
      "max-power = 40\n"
      "temp-limit = 38\n"
      "throttle = true\n"
      "faults = off:1@5,on:1@9\n"
      "skip-ahead = off\n"
      "intra-threads = 4\n"
      "seed = 7\n"
      "runs = 3\n");
  EXPECT_EQ(request.name, "my-run");
  EXPECT_EQ(request.tag, "client-7");
  EXPECT_EQ(request.scenario, "paper-mixed");
  EXPECT_EQ(request.topology, "2:4:2");
  EXPECT_EQ(request.policy, "energy_aware");
  EXPECT_EQ(request.governor, "ondemand");
  EXPECT_EQ(request.duration_s, 60.5);
  EXPECT_EQ(request.max_power, 40.0);
  EXPECT_EQ(request.temp_limit, 38.0);
  EXPECT_EQ(request.throttle, true);
  EXPECT_EQ(request.faults, "off:1@5,on:1@9");
  EXPECT_EQ(request.skip_ahead, false);
  EXPECT_EQ(request.intra_threads, 4u);
  EXPECT_EQ(request.seed, 7u);
  EXPECT_EQ(request.runs, 3u);
  EXPECT_FALSE(request.workload.has_value());
}

TEST(RunRequestParseTest, SemicolonsSeparatePairsOnOneLine) {
  const RunRequest request = ParseOk("scenario = paper-hot-task; runs = 2; seed = 9");
  EXPECT_EQ(request.scenario, "paper-hot-task");
  EXPECT_EQ(request.runs, 2u);
  EXPECT_EQ(request.seed, 9u);
}

TEST(RunRequestParseTest, BlankLinesAndCommentsIgnored) {
  const RunRequest request = ParseOk("\n  \n# only a comment\npolicy = load_only # trailing\n");
  EXPECT_EQ(request.policy, "load_only");
}

TEST(RunRequestParseTest, RejectsUnknownKeyNamingIt) {
  const std::string error = ParseError("polcy = energy_aware\n");
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown key \"polcy\""), std::string::npos) << error;
  EXPECT_NE(error.find("policy"), std::string::npos) << error;  // lists the known keys
}

TEST(RunRequestParseTest, ErrorsCarryCodeKeyAndLine) {
  // The structured triple the daemon serializes: what kind of rejection,
  // which key, which line - alongside the unchanged legacy rendering.
  const RequestError unknown = ParseErr("polcy = energy_aware\n");
  EXPECT_EQ(unknown.code, RequestErrorCode::kUnknownKey);
  EXPECT_EQ(unknown.key, "polcy");
  EXPECT_EQ(unknown.line, 1u);
  EXPECT_EQ(unknown.Render(), "line 1: " + unknown.message);

  const RequestError bad = ParseErr("scenario = a\nmax-power = x\n");
  EXPECT_EQ(bad.code, RequestErrorCode::kBadValue);
  EXPECT_EQ(bad.key, "max-power");
  EXPECT_EQ(bad.line, 2u);

  const RequestError duplicate = ParseErr("seed = 1\nseed = 2\n");
  EXPECT_EQ(duplicate.code, RequestErrorCode::kDuplicateKey);
  EXPECT_EQ(duplicate.key, "seed");
  EXPECT_EQ(duplicate.line, 2u);

  const RequestError syntax = ParseErr("just words\n");
  EXPECT_EQ(syntax.code, RequestErrorCode::kSyntax);
  EXPECT_TRUE(syntax.key.empty());

  EXPECT_EQ(ParseErr("policy =\n").code, RequestErrorCode::kEmptyValue);

  // Resolve-time errors carry the key but no line (nothing was parsed).
  RunRequest request;
  request.scenario = "no-such-scenario";
  const RequestError resolve = ResolveErr(request);
  EXPECT_EQ(resolve.code, RequestErrorCode::kUnknownName);
  EXPECT_EQ(resolve.key, "scenario");
  EXPECT_EQ(resolve.line, 0u);
  EXPECT_EQ(resolve.Render(), resolve.message);
}

TEST(RunRequestParseTest, RejectsBadValuesNamingLineAndKey) {
  EXPECT_NE(ParseError("duration-s = fast\n").find("bad value for duration-s"),
            std::string::npos);
  EXPECT_NE(ParseError("seed = -3\n").find("bad value for seed"), std::string::npos);
  EXPECT_NE(ParseError("runs = 2.5\n").find("bad value for runs"), std::string::npos);
  EXPECT_NE(ParseError("throttle = maybe\n").find("bad value for throttle"),
            std::string::npos);
  EXPECT_NE(ParseError("skip-ahead = bananas\n").find("bad value for skip-ahead"),
            std::string::npos);
  EXPECT_NE(ParseError("intra-threads = -1\n").find("bad value for intra-threads"),
            std::string::npos);
  EXPECT_NE(ParseError("intra-threads = 2.5\n").find("bad value for intra-threads"),
            std::string::npos);
  EXPECT_NE(ParseError("scenario = a\nmax-power = x\n").find("line 2"), std::string::npos);
}

TEST(RunRequestParseTest, RejectsNonFiniteNumbers) {
  // strtod accepts nan/inf spellings and overflows to inf; no numeric
  // request field can mean anything non-finite.
  EXPECT_NE(ParseError("duration-s = nan\n").find("bad value for duration-s"),
            std::string::npos);
  EXPECT_NE(ParseError("max-power = inf\n").find("bad value for max-power"),
            std::string::npos);
  EXPECT_NE(ParseError("temp-limit = 1e999\n").find("bad value for temp-limit"),
            std::string::npos);
}

TEST(RunRequestParseTest, RejectsMalformedPairs) {
  EXPECT_NE(ParseError("just words\n").find("expected key = value"), std::string::npos);
  EXPECT_NE(ParseError("= value\n").find("missing key"), std::string::npos);
  EXPECT_NE(ParseError("policy =\n").find("empty value"), std::string::npos);
  EXPECT_NE(ParseError("seed = 1\nseed = 2\n").find("duplicate key \"seed\""),
            std::string::npos);
}

TEST(RunRequestApplyFieldTest, SharesTheParserValidation) {
  // The one-pair entry point eastool's flags use: same keys, same value
  // strictness as the file parser.
  RunRequest request;
  auto apply = [&request](const char* key, const char* value) {
    return ApplyRunRequestField(key, value, &request);
  };
  EXPECT_FALSE(apply("seed", "7").has_value());
  EXPECT_EQ(request.seed, 7u);
  EXPECT_FALSE(apply("policy", "load_only").has_value());
  EXPECT_FALSE(apply("tag", "sweep-a").has_value());
  EXPECT_EQ(request.tag, "sweep-a");

  auto error = apply("seed", "4z2");
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->message.find("bad value for seed"), std::string::npos) << error->message;
  EXPECT_EQ(error->code, RequestErrorCode::kBadValue);
  error = apply("duration-s", "fast");
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->message.find("bad value for duration-s"), std::string::npos);
  error = apply("polcy", "eas");
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->message.find("unknown key"), std::string::npos);
  error = apply("scenario", "");
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->message.find("empty value"), std::string::npos);
  EXPECT_EQ(error->code, RequestErrorCode::kEmptyValue);
  EXPECT_EQ(request.seed, 7u);  // failed applies leave the request alone
}

TEST(RunRequestResolveTest, RejectsValuesTheTextFormatCannotCarry) {
  // A resolved request must round-trip through Format/Parse unchanged -
  // that is what makes --print-request files and JSONL-embedded requests
  // exact reproduction recipes - so values with comment/separator
  // characters or edge whitespace are rejected up front.
  RunRequest request;
  request.name = "warm-up #3";
  EXPECT_NE(ResolveErr(request).Render().find("bad name"), std::string::npos);

  request = RunRequest{};
  request.workload = "trace:/data/run #1.csv";
  EXPECT_NE(ResolveErr(request).Render().find("bad workload"), std::string::npos);

  request = RunRequest{};
  request.name = "a;b";
  EXPECT_FALSE(ResolveRunRequest(request).ok());

  request = RunRequest{};
  request.name = " padded ";
  EXPECT_FALSE(ResolveRunRequest(request).ok());

  // The tag is carried by the same text format, so the same rules apply.
  request = RunRequest{};
  request.tag = "demo;run";
  EXPECT_NE(ResolveErr(request).Render().find("bad tag"), std::string::npos);
}

TEST(RunRequestFormatTest, FormatParseIsIdentity) {
  RunRequest request;
  request.name = "probe";
  request.tag = "lane-2";
  request.topology = "1:2:1";
  request.workload = "hot:4";
  request.policy = "load_only";
  request.duration_s = 12.5;
  request.throttle = false;
  request.skip_ahead = false;
  request.intra_threads = 2;
  request.seed = 11;
  request.runs = 4;
  const std::string text = FormatRunRequest(request);
  EXPECT_EQ(ParseOk(text), request);
  EXPECT_EQ(ParseOk(FormatRunRequestLine(request)), request);
}

TEST(RunRequestFormatTest, FormatOfParseIsAFixedPoint) {
  // Whatever spelling the user wrote, one Parse/Format pass canonicalizes
  // it and further passes change nothing.
  const std::string messy =
      "  runs=2 ;seed = 5\n# comment\npolicy   =  energy_aware\nduration-s = 60.0\n";
  const std::string canonical = FormatRunRequest(ParseOk(messy));
  EXPECT_EQ(FormatRunRequest(ParseOk(canonical)), canonical);
  EXPECT_EQ(canonical, "policy = energy_aware\nduration-s = 60\nseed = 5\nruns = 2\n");
}

TEST(RunRequestFormatTest, UntaggedRequestsFormatWithoutTheTagKey) {
  // The tag key is strictly additive: requests that do not use it must
  // produce the exact pre-tag bytes (and an empty tag is "not using it").
  RunRequest request;
  request.name = "probe";
  request.seed = 11;
  EXPECT_EQ(FormatRunRequest(request), "name = probe\nseed = 11\n");
  EXPECT_EQ(FormatRunRequestLine(request), "name = probe; seed = 11");

  request.tag = "lane-1";
  EXPECT_EQ(FormatRunRequest(request), "name = probe\ntag = lane-1\nseed = 11\n");
  EXPECT_EQ(ParseOk(FormatRunRequest(request)), request);
}

TEST(RunRequestFormatTest, DefaultRequestFormatsEmpty) {
  EXPECT_EQ(FormatRunRequest(RunRequest{}), "");
  EXPECT_EQ(ParseOk(""), RunRequest{});
}

TEST(RunRequestResolveTest, DefaultsMatchTheHistoricalCli) {
  const auto resolved = ResolveRunRequest(RunRequest{});
  ASSERT_TRUE(resolved.ok()) << resolved.error().Render();
  ASSERT_EQ(resolved->specs.size(), 1u);
  const ExperimentSpec& spec = resolved->specs[0];
  EXPECT_EQ(spec.name, "cli");
  EXPECT_EQ(spec.config.topology.num_nodes(), 2u);
  EXPECT_EQ(spec.config.topology.num_logical(), 8u);
  EXPECT_EQ(spec.config.seed, 42u);
  EXPECT_EQ(spec.config.temp_limit, 38.0);
  EXPECT_FALSE(spec.config.throttling_enabled);
  EXPECT_FALSE(spec.config.explicit_max_power_physical.has_value());
  EXPECT_EQ(spec.config.frequency_governor, "none");
  EXPECT_EQ(spec.options.duration_ticks, 120'000);
  EXPECT_EQ(spec.options.sample_interval_ticks, 500);
  EXPECT_EQ(spec.workload.size(), 18u);  // mixed:3
  EXPECT_EQ(resolved->policy, "energy_aware");
  EXPECT_EQ(resolved->governor, "none");
}

TEST(RunRequestResolveTest, ScenarioFieldsInheritUnlessOverridden) {
  // paper-hot-task: 40 W cap, throttling on, 4 bitcnts, task tracing.
  const auto inherited = ResolveRunRequest(RunRequestForScenario("paper-hot-task"));
  ASSERT_TRUE(inherited.ok()) << inherited.error().Render();
  EXPECT_TRUE(inherited->specs[0].config.throttling_enabled);
  EXPECT_EQ(inherited->specs[0].config.explicit_max_power_physical, 40.0);
  EXPECT_EQ(inherited->specs[0].workload.size(), 4u);
  EXPECT_EQ(inherited->specs[0].name, "paper-hot-task");

  RunRequest with_overrides = RunRequestForScenario("paper-hot-task");
  with_overrides.throttle = false;
  with_overrides.seed = 99;
  with_overrides.duration_s = 10.0;
  const auto overridden = ResolveRunRequest(with_overrides);
  ASSERT_TRUE(overridden.ok()) << overridden.error().Render();
  EXPECT_FALSE(overridden->specs[0].config.throttling_enabled);
  EXPECT_EQ(overridden->specs[0].config.seed, 99u);
  EXPECT_EQ(overridden->specs[0].options.duration_ticks, 10'000);
  // Untouched scenario fields survive the overrides.
  EXPECT_EQ(overridden->specs[0].config.explicit_max_power_physical, 40.0);
  EXPECT_EQ(overridden->specs[0].workload.size(), 4u);
}

TEST(RunRequestResolveTest, SkipAheadFlowsIntoTheMachineConfig) {
  const auto defaulted = ResolveRunRequest(RunRequest{});
  ASSERT_TRUE(defaulted.ok()) << defaulted.error().Render();
  EXPECT_TRUE(defaulted->specs[0].config.skip_ahead);

  RunRequest request;
  request.skip_ahead = false;
  const auto disabled = ResolveRunRequest(request);
  ASSERT_TRUE(disabled.ok()) << disabled.error().Render();
  EXPECT_FALSE(disabled->specs[0].config.skip_ahead);
}

TEST(RunRequestResolveTest, IntraThreadsFlowsIntoTheMachineConfig) {
  // Unset: the historical interleaved loop (0). Explicit: the sharded
  // pipeline with that worker count, including over a scenario.
  const auto defaulted = ResolveRunRequest(RunRequest{});
  ASSERT_TRUE(defaulted.ok()) << defaulted.error().Render();
  EXPECT_EQ(defaulted->specs[0].config.intra_run_threads, 0u);

  RunRequest request;
  request.intra_threads = 3;
  const auto sharded = ResolveRunRequest(request);
  ASSERT_TRUE(sharded.ok()) << sharded.error().Render();
  EXPECT_EQ(sharded->specs[0].config.intra_run_threads, 3u);

  RunRequest scenario = RunRequestForScenario("datacenter-consolidation");
  scenario.intra_threads = 2;
  const auto over_scenario = ResolveRunRequest(scenario);
  ASSERT_TRUE(over_scenario.ok()) << over_scenario.error().Render();
  EXPECT_EQ(over_scenario->specs[0].config.intra_run_threads, 2u);
}

TEST(RunRequestResolveTest, FaultsFlowIntoTheMachineConfig) {
  // Unset: no fault plan. Explicit: the spec lands in the config verbatim,
  // validated against the resolved topology. The literal "none" cancels a
  // scenario's baked-in plan; unset inherits it.
  const auto defaulted = ResolveRunRequest(RunRequest{});
  ASSERT_TRUE(defaulted.ok()) << defaulted.error().Render();
  EXPECT_FALSE(defaulted->specs[0].config.faulted());

  RunRequest request;
  request.faults = "off:1@100,on:1@200";
  const auto faulted = ResolveRunRequest(request);
  ASSERT_TRUE(faulted.ok()) << faulted.error().Render();
  EXPECT_EQ(faulted->specs[0].config.fault_spec, "off:1@100,on:1@200");

  const auto inherited = ResolveRunRequest(RunRequestForScenario("chaos-soak"));
  ASSERT_TRUE(inherited.ok()) << inherited.error().Render();
  EXPECT_TRUE(inherited->specs[0].config.faulted());

  RunRequest cancelled = RunRequestForScenario("chaos-soak");
  cancelled.faults = "none";
  const auto clean = ResolveRunRequest(cancelled);
  ASSERT_TRUE(clean.ok()) << clean.error().Render();
  EXPECT_FALSE(clean->specs[0].config.faulted());
}

TEST(RunRequestResolveTest, FaultsValidateAgainstTheResolvedTopology) {
  // The same spec is fine on a wide box and rejected on a narrow one: the
  // plan validates after the topology is final, naming the faults key.
  RunRequest request;
  request.topology = "2:4:1";
  request.faults = "off:7@100";
  ASSERT_TRUE(ResolveRunRequest(request).ok());

  request.topology = "1:2:1";
  const auto narrow = ResolveRunRequest(request);
  ASSERT_FALSE(narrow.ok());
  EXPECT_EQ(narrow.error().code, RequestErrorCode::kBadValue);
  EXPECT_EQ(narrow.error().key, "faults");

  request.faults = "frobnicate:1@2";
  request.topology = "2:4:1";
  const auto unknown = ResolveRunRequest(request);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().key, "faults");
}

TEST(RunRequestFormatTest, FaultsRoundTripThroughTheTextFormat) {
  RunRequest request;
  request.faults = "churn:10@50000:1337,spike:0@6000:12:2500";
  request.seed = 3;
  const std::string text = FormatRunRequest(request);
  EXPECT_NE(text.find("faults = churn:10@50000:1337,spike:0@6000:12:2500\n"),
            std::string::npos);
  const auto reparsed = ParseRunRequest(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().Render();
  EXPECT_EQ(*reparsed, request);
}

TEST(RunRequestResolveTest, DeepTopologyRoundTripsAndResolves) {
  // A five-level spec through the full surface: parse, canonical format
  // fixed point, resolve into the level-list topology.
  const std::string text = "topology = 2:4:2:4:2; duration-s = 1";
  const RunRequest request = ParseOk(text);
  EXPECT_EQ(FormatRunRequest(ParseOk(FormatRunRequest(request))), FormatRunRequest(request));

  const auto resolved = ResolveRunRequest(request);
  ASSERT_TRUE(resolved.ok()) << resolved.error().Render();
  EXPECT_EQ(resolved->specs[0].config.topology.num_physical(), 64u);
  EXPECT_EQ(resolved->specs[0].config.topology.num_logical(), 128u);

  // Named levels round-trip too.
  RunRequest named;
  named.topology = "rack=2:node=2:package=2:smt=2";
  const auto named_resolved = ResolveRunRequest(named);
  ASSERT_TRUE(named_resolved.ok()) << named_resolved.error().Render();
  EXPECT_EQ(named_resolved->specs[0].config.topology.num_logical(), 16u);
  EXPECT_EQ(ParseOk(FormatRunRequest(named)), named);
}

TEST(RunRequestResolveTest, PolicyAliasesNormalize) {
  RunRequest request;
  request.policy = "temp-only";
  const auto resolved = ResolveRunRequest(request);
  ASSERT_TRUE(resolved.ok()) << resolved.error().Render();
  EXPECT_EQ(resolved->policy, "temperature_only");
}

TEST(RunRequestResolveTest, RunsExpandIntoASeedSweep) {
  RunRequest request;
  request.seed = 10;
  request.runs = 3;
  const auto resolved = ResolveRunRequest(request);
  ASSERT_TRUE(resolved.ok()) << resolved.error().Render();
  ASSERT_EQ(resolved->specs.size(), 3u);
  EXPECT_EQ(resolved->specs[0].config.seed, 10u);
  EXPECT_EQ(resolved->specs[2].config.seed, 12u);
  EXPECT_EQ(resolved->specs[2].name, "cli/seed12");
}

TEST(RunRequestResolveTest, RejectionsDiagnose) {
  RunRequest request;

  request.scenario = "no-such-scenario";
  std::string error = ResolveErr(request).Render();
  EXPECT_NE(error.find("unknown scenario"), std::string::npos) << error;
  EXPECT_NE(error.find("paper-mixed"), std::string::npos) << error;  // lists known

  request = RunRequest{};
  request.scenario = "paper-mixed";
  request.workload = "hot:2";
  EXPECT_NE(ResolveErr(request).Render().find("cannot override"), std::string::npos);

  request = RunRequest{};
  request.topology = "junk:0:x";
  EXPECT_NE(ResolveErr(request).Render().find("bad topology"), std::string::npos);

  request = RunRequest{};
  request.policy = "no_such_policy";
  EXPECT_NE(ResolveErr(request).Render().find("unknown policy"), std::string::npos);

  request = RunRequest{};
  request.governor = "no-such-governor";
  EXPECT_NE(ResolveErr(request).Render().find("unknown governor"), std::string::npos);

  request = RunRequest{};
  request.workload = "bogus:3";
  EXPECT_NE(ResolveErr(request).Render().find("bad workload"), std::string::npos);

  request = RunRequest{};
  request.duration_s = 0.0;
  EXPECT_NE(ResolveErr(request).Render().find("bad duration-s"), std::string::npos);

  // Programmatically built requests bypass the parser's finiteness guard;
  // resolve must repeat it.
  request = RunRequest{};
  request.duration_s = std::nan("");
  EXPECT_NE(ResolveErr(request).Render().find("bad duration-s"), std::string::npos);

  request = RunRequest{};
  request.max_power = std::numeric_limits<double>::infinity();
  EXPECT_NE(ResolveErr(request).Render().find("bad max-power"), std::string::npos);

  request = RunRequest{};
  request.temp_limit = std::nan("");
  EXPECT_NE(ResolveErr(request).Render().find("bad temp-limit"), std::string::npos);

  request = RunRequest{};
  request.runs = 0;
  EXPECT_NE(ResolveErr(request).Render().find("bad runs"), std::string::npos);
}

TEST(RunRequestResolveTest, CannedRequestsCoverTheCatalogue) {
  const std::vector<RunRequest> canned = CannedScenarioRequests();
  EXPECT_EQ(canned.size(), ScenarioRegistry::Global().Names().size());
  for (const RunRequest& request : canned) {
    const auto resolved = ResolveRunRequest(request);
    EXPECT_TRUE(resolved.ok())
        << request.scenario << ": " << (resolved.ok() ? "" : resolved.error().Render());
  }
}

TEST(RunRequestResolveTest, CachedResolveMatchesUncached) {
  // The warm-service path: scenario specs and the default library come from
  // a ScenarioCache. The resolved output must be indistinguishable.
  ScenarioCache cache;
  RunRequest scenario = RunRequestForScenario("paper-hot-task");
  const auto cold = ResolveRunRequest(scenario);
  const auto warm1 = ResolveRunRequest(scenario, &cache);
  const auto warm2 = ResolveRunRequest(scenario, &cache);
  ASSERT_TRUE(cold.ok() && warm1.ok() && warm2.ok());
  EXPECT_EQ(cold->specs[0].name, warm2->specs[0].name);
  EXPECT_EQ(cold->specs[0].workload.size(), warm2->specs[0].workload.size());
  EXPECT_EQ(cold->specs[0].config.explicit_max_power_physical,
            warm2->specs[0].config.explicit_max_power_physical);
  const ScenarioCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.scenario_misses, 1u);  // built once...
  EXPECT_EQ(stats.scenario_hits, 1u);    // ...served from cache after

  RunRequest plain;
  plain.workload = "mixed:3";
  const auto cold_plain = ResolveRunRequest(plain);
  const auto warm_plain = ResolveRunRequest(plain, &cache);
  ASSERT_TRUE(cold_plain.ok() && warm_plain.ok());
  EXPECT_EQ(cold_plain->specs[0].workload.size(), warm_plain->specs[0].workload.size());
  EXPECT_EQ(cache.stats().library_misses, 1u);
}

}  // namespace
}  // namespace eas
