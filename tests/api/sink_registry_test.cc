// SinkRegistry: output destinations as one `kind:rest` string, resolved
// through the same registry pattern policies and governors use. The tests
// pin the built-in catalogue, the split rule (first ':' only - paths keep
// their own colons), and the structured diagnostics for bad specs.

#include "src/api/sink_registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace eas {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "sink_registry_" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

RunRecord ProbeRecord() {
  RunRecord record;
  record.spec.name = "probe";
  record.spec.config.seed = 7;
  Series& series = record.result.thermal_power.Create("cpu0");
  for (Tick t = 0; t < 4; ++t) {
    series.Add(t * 500, 30.0 + static_cast<double>(t));
  }
  return record;
}

TEST(SinkRegistryTest, GlobalCarriesTheBuiltinKinds) {
  SinkRegistry& global = SinkRegistry::Global();
  for (const char* kind : {"csv", "trace", "jsonl", "plot"}) {
    EXPECT_TRUE(global.Contains(kind)) << kind;
  }
  EXPECT_FALSE(global.Contains("bogus"));
  const std::vector<std::string> names = global.Names();
  EXPECT_EQ(names, (std::vector<std::string>{"csv", "jsonl", "plot", "trace"}));
}

TEST(SinkRegistryTest, CreatedJsonlSinkWritesTheRecordLine) {
  const std::string path = TempPath("records.jsonl");
  auto sink = SinkRegistry::Global().Create("jsonl:" + path);
  ASSERT_TRUE(sink.ok()) << sink.error().Render();
  (*sink)->Begin(1);
  const RunRecord record = ProbeRecord();
  (*sink)->Consume(record);
  (*sink)->Finish();
  EXPECT_TRUE((*sink)->ok()) << (*sink)->error();
  EXPECT_EQ(ReadAll(path), JsonlRecordLine(record) + "\n");
  std::remove(path.c_str());
}

TEST(SinkRegistryTest, CreatedCsvAndPlotSinksWriteTheirFiles) {
  const std::string csv_path = TempPath("summary.csv");
  auto csv = SinkRegistry::Global().Create("csv:" + csv_path);
  ASSERT_TRUE(csv.ok()) << csv.error().Render();
  (*csv)->Begin(1);
  (*csv)->Consume(ProbeRecord());
  (*csv)->Finish();
  EXPECT_TRUE((*csv)->ok()) << (*csv)->error();
  EXPECT_FALSE(ReadAll(csv_path).empty());
  std::remove(csv_path.c_str());

  const std::string plot_path = TempPath("plot.txt");
  auto plot = SinkRegistry::Global().Create("plot:" + plot_path);
  ASSERT_TRUE(plot.ok()) << plot.error().Render();
  (*plot)->Begin(1);
  (*plot)->Consume(ProbeRecord());
  (*plot)->Finish();
  EXPECT_TRUE((*plot)->ok()) << (*plot)->error();
  EXPECT_NE(ReadAll(plot_path).find("probe"), std::string::npos);
  std::remove(plot_path.c_str());
}

TEST(SinkRegistryTest, RestKeepsItsOwnColons) {
  // Only the first ':' splits kind from rest; a path with colons (timestamped
  // directories, Windows-ish names) passes through verbatim.
  const std::string path = TempPath("12:30:05.jsonl");
  auto sink = SinkRegistry::Global().Create("jsonl:" + path);
  ASSERT_TRUE(sink.ok()) << sink.error().Render();
  (*sink)->Begin(1);
  (*sink)->Consume(ProbeRecord());
  (*sink)->Finish();
  EXPECT_TRUE((*sink)->ok()) << (*sink)->error();
  EXPECT_FALSE(ReadAll(path).empty());
  std::remove(path.c_str());
}

TEST(SinkRegistryTest, BadSpecsDiagnoseStructurally) {
  const SinkRegistry& global = SinkRegistry::Global();

  auto unknown = global.Create("bogus:/tmp/x");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, RequestErrorCode::kUnknownName);
  EXPECT_NE(unknown.error().message.find("bogus"), std::string::npos);
  EXPECT_NE(unknown.error().message.find("jsonl"), std::string::npos);  // lists known kinds

  auto no_colon = global.Create("justapath");
  ASSERT_FALSE(no_colon.ok());
  EXPECT_EQ(no_colon.error().code, RequestErrorCode::kBadValue);
  EXPECT_NE(no_colon.error().message.find("kind:path"), std::string::npos);

  auto empty_kind = global.Create(":/tmp/x");
  ASSERT_FALSE(empty_kind.ok());
  EXPECT_EQ(empty_kind.error().code, RequestErrorCode::kBadValue);

  auto empty_rest = global.Create("csv:");
  ASSERT_FALSE(empty_rest.ok());
  EXPECT_EQ(empty_rest.error().code, RequestErrorCode::kBadValue);
  EXPECT_NE(empty_rest.error().message.find("empty path"), std::string::npos);
}

TEST(SinkRegistryTest, PrivateRegistriesRegisterAndRefuseDuplicates) {
  SinkRegistry registry;
  EXPECT_FALSE(registry.Contains("null"));
  ASSERT_TRUE(registry.Register("null", [](const std::string&) {
    class NullSink : public ResultSink {
      void Consume(const RunRecord&) override {}
    };
    return std::make_unique<NullSink>();
  }));
  EXPECT_TRUE(registry.Contains("null"));
  // Second registration loses; the registry keeps the first factory.
  EXPECT_FALSE(registry.Register("null", [](const std::string&) {
    return std::unique_ptr<ResultSink>();
  }));
  auto sink = registry.Create("null:anything");
  ASSERT_TRUE(sink.ok()) << sink.error().Render();
  EXPECT_NE(*sink, nullptr);

  // The builtin set is injectable into a private registry too.
  RegisterBuiltinSinks(registry);
  EXPECT_TRUE(registry.Contains("jsonl"));
}

}  // namespace
}  // namespace eas
