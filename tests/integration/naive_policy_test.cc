// Integration: the single-metric strawmen on the full machine. Section 4.3
// predicts power-only balancing ping-pongs and temperature-only balancing
// over-balances; both should migrate more than the dual-metric design for
// the same workload without balancing any better.

#include <gtest/gtest.h>

#include "src/sim/experiment.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

RunResult RunWithKind(BalancerKind kind, Tick duration) {
  MachineConfig config;
  config.topology = CpuTopology::PaperXSeries445(false);
  config.cooling = CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = 60.0;
  config.sched = EnergySchedConfig::EnergyAware();
  config.sched.balancer_kind = kind;
  config.sched.hot_task_migration = false;  // isolate the balancer

  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = duration;
  options.sample_interval_ticks = 1'000;
  Experiment experiment(config, options);
  return experiment.Run(MixedWorkload(library, 3));
}

TEST(NaivePolicyIntegration, PowerOnlyMigratesMoreThanDualMetric) {
  const Tick duration = 120'000;
  const RunResult dual = RunWithKind(BalancerKind::kEnergyAware, duration);
  const RunResult power_only = RunWithKind(BalancerKind::kPowerOnly, duration);
  EXPECT_GT(power_only.migrations, dual.migrations * 2)
      << "power-only should ping-pong (dual: " << dual.migrations
      << ", power-only: " << power_only.migrations << ")";
}

TEST(NaivePolicyIntegration, TemperatureOnlyMigratesMoreThanDualMetric) {
  const Tick duration = 120'000;
  const RunResult dual = RunWithKind(BalancerKind::kEnergyAware, duration);
  const RunResult temp_only = RunWithKind(BalancerKind::kTemperatureOnly, duration);
  EXPECT_GT(temp_only.migrations, dual.migrations)
      << "temperature-only should over-balance (dual: " << dual.migrations
      << ", temp-only: " << temp_only.migrations << ")";
}

TEST(NaivePolicyIntegration, DualMetricBalancesAtLeastAsWell) {
  const Tick duration = 120'000;
  const Tick settle = 60'000;
  const RunResult dual = RunWithKind(BalancerKind::kEnergyAware, duration);
  const RunResult power_only = RunWithKind(BalancerKind::kPowerOnly, duration);
  // The extra churn buys nothing: the dual-metric spread is as tight.
  EXPECT_LE(dual.MaxThermalSpreadAfter(settle),
            power_only.MaxThermalSpreadAfter(settle) + 2.0);
}

}  // namespace
}  // namespace eas
