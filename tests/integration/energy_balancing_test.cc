// Integration: energy balancing on the full simulated paper machine
// (Section 6.1 scaled down to keep test runtime reasonable).

#include <gtest/gtest.h>

#include "src/sim/experiment.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

MachineConfig PaperConfig(bool smt, bool energy_aware) {
  MachineConfig config;
  config.topology = CpuTopology::PaperXSeries445(smt);
  config.cooling = CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = 60.0;  // Section 6.1 setting
  config.throttling_enabled = false;
  config.sched = energy_aware ? EnergySchedConfig::EnergyAware() : EnergySchedConfig::Baseline();
  return config;
}

RunResult RunMixed(bool smt, bool energy_aware, Tick duration) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = duration;
  options.sample_interval_ticks = 1'000;
  Experiment experiment(PaperConfig(smt, energy_aware), options);
  return experiment.Run(MixedWorkload(library, smt ? 6 : 3));
}

TEST(EnergyBalancingIntegration, ReducesThermalPowerSpread) {
  const Tick duration = 120'000;  // 2 simulated minutes
  const RunResult baseline = RunMixed(false, false, duration);
  const RunResult balanced = RunMixed(false, true, duration);

  // Skip the exponential warm-up (~4 tau) before measuring the spread.
  const Tick measure_from = 50'000;
  const double spread_baseline = baseline.MaxThermalSpreadAfter(measure_from);
  const double spread_balanced = balanced.MaxThermalSpreadAfter(measure_from);

  // Figure 6 vs Figure 7: the baseline's curves diverge with the tasks'
  // energy characteristics; balancing keeps the band narrow.
  EXPECT_LT(spread_balanced, spread_baseline * 0.75)
      << "baseline spread " << spread_baseline << " W, balanced " << spread_balanced << " W";
  EXPECT_GT(spread_baseline, 8.0);
}

TEST(EnergyBalancingIntegration, MigrationCountsInPaperRegime) {
  const Tick duration = 120'000;
  const RunResult baseline = RunMixed(false, false, duration);
  const RunResult balanced = RunMixed(false, true, duration);

  // Paper (15 min): 3.3 migrations without, 32 with energy balancing. Our
  // 2-minute runs should show the same order: few baseline migrations, an
  // order of magnitude more with balancing - but not a migration storm.
  EXPECT_LT(baseline.migrations, 20);
  EXPECT_GT(balanced.migrations, baseline.migrations);
  EXPECT_LT(balanced.migrations, 200) << "ping-pong suspected";
}

TEST(EnergyBalancingIntegration, SmtVariantAlsoBalances) {
  const Tick duration = 90'000;
  const RunResult baseline = RunMixed(true, false, duration);
  const RunResult balanced = RunMixed(true, true, duration);
  const Tick measure_from = 50'000;
  // With 36 tasks over 16 logical CPUs a random placement can mix queues
  // fairly well by luck, so require the balanced band to be tight in
  // absolute terms and no worse than the baseline beyond noise.
  EXPECT_LT(balanced.MaxThermalSpreadAfter(measure_from), 12.0);
  EXPECT_LT(balanced.MaxThermalSpreadAfter(measure_from),
            baseline.MaxThermalSpreadAfter(measure_from) + 2.0);
}

TEST(EnergyBalancingIntegration, AllTasksMakeProgress) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 60'000;
  Experiment experiment(PaperConfig(false, true), options);
  experiment.Run(MixedWorkload(library, 3));
  for (const auto& task : experiment.machine().tasks()) {
    const double total_work =
        task->work_done_ticks() + static_cast<double>(task->completions()) *
                                      static_cast<double>(task->program().total_work_ticks());
    EXPECT_GT(total_work, 1'000.0) << task->name() << "#" << task->id() << " starved";
  }
}

TEST(EnergyBalancingIntegration, LoadStaysBalanced) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 60'000;
  Experiment experiment(PaperConfig(false, true), options);
  experiment.Run(MixedWorkload(library, 3));
  // 18 CPU-bound tasks on 8 CPUs: queues must stay within 2..3 tasks.
  Machine& machine = experiment.machine();
  for (std::size_t cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    const std::size_t nr = machine.runqueue(static_cast<int>(cpu)).nr_running();
    EXPECT_GE(nr, 1u) << "cpu " << cpu;
    EXPECT_LE(nr, 4u) << "cpu " << cpu;
  }
}

}  // namespace
}  // namespace eas
