// Integration: hot task migration on the simulated paper machine
// (Section 6.4, Figures 9 and 10, scaled down).

#include <gtest/gtest.h>

#include <set>

#include "src/sim/experiment.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

MachineConfig HotTaskConfig(bool energy_aware, double max_power_physical) {
  MachineConfig config;
  config.topology = CpuTopology::PaperXSeries445(true);  // SMT on, 16 logical
  config.cooling = CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = max_power_physical;
  config.throttling_enabled = true;
  config.sched = energy_aware ? EnergySchedConfig::EnergyAware() : EnergySchedConfig::Baseline();
  return config;
}

TEST(HotMigrationIntegration, SingleTaskHopsBetweenPackages) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 120'000;  // 2 minutes
  options.sample_interval_ticks = 200;
  options.record_task_cpu = true;
  Experiment experiment(HotTaskConfig(true, 40.0), options);
  const RunResult result = experiment.Run(HotTaskWorkload(library, 1));

  // The task must visit several physical packages (Figure 9's round-robin).
  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const Series& trace = result.task_cpu.at(0);
  std::set<std::size_t> packages;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const int cpu = static_cast<int>(trace.value_at(i));
    if (cpu >= 0) {
      packages.insert(topo.PhysicalOf(cpu));
    }
  }
  EXPECT_GE(packages.size(), 3u) << "expected round-robin over packages";
  EXPECT_GE(result.migrations, 3);
}

TEST(HotMigrationIntegration, NeverMigratesToSibling) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 120'000;
  options.sample_interval_ticks = 100;
  options.record_task_cpu = true;
  Experiment experiment(HotTaskConfig(true, 40.0), options);
  const RunResult result = experiment.Run(HotTaskWorkload(library, 1));

  const CpuTopology topo = CpuTopology::PaperXSeries445(true);
  const Series& trace = result.task_cpu.at(0);
  int last_cpu = -1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const int cpu = static_cast<int>(trace.value_at(i));
    if (cpu >= 0 && last_cpu >= 0 && cpu != last_cpu) {
      EXPECT_FALSE(topo.AreSiblings(cpu, last_cpu))
          << "migrated " << last_cpu << " -> " << cpu << " (siblings share the die)";
    }
    if (cpu >= 0) {
      last_cpu = cpu;
    }
  }
}

TEST(HotMigrationIntegration, AvoidsThrottlingEntirely) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 120'000;
  Experiment experiment(HotTaskConfig(true, 40.0), options);
  const RunResult result = experiment.Run(HotTaskWorkload(library, 1));
  // With idle CPUs always available the hot task never throttles
  // ("we can completely get rid of throttling").
  EXPECT_LT(result.AverageThrottledFraction(), 0.01);
}

TEST(HotMigrationIntegration, ThroughputGainAt40WLimit) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 150'000;
  Experiment base_experiment(HotTaskConfig(false, 40.0), options);
  const RunResult baseline = base_experiment.Run(HotTaskWorkload(library, 1));
  Experiment eas_experiment(HotTaskConfig(true, 40.0), options);
  const RunResult eas = eas_experiment.Run(HotTaskWorkload(library, 1));

  // Paper: +76% at the 40 W limit. Accept a broad band around it.
  const double increase = ThroughputIncrease(baseline, eas);
  EXPECT_GT(increase, 0.35);
  EXPECT_LT(increase, 1.3);
}

TEST(HotMigrationIntegration, GainShrinksWithMoreTasks) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 120'000;

  auto run = [&](bool energy_aware, int n_tasks) {
    Experiment experiment(HotTaskConfig(energy_aware, 40.0), options);
    return experiment.Run(HotTaskWorkload(library, n_tasks));
  };

  const double increase_2 = ThroughputIncrease(run(false, 2), run(true, 2));
  const double increase_8 = ThroughputIncrease(run(false, 8), run(true, 8));
  // Figure 10: the benefit decays as CPUs stop cooling down; with 8 tasks all
  // packages stay hot and the gain (mostly) disappears.
  EXPECT_GT(increase_2, increase_8);
  EXPECT_LT(increase_8, 0.15);
}

}  // namespace
}  // namespace eas
