// Integration: temperature control via throttling (Section 6.2, Table 3,
// scaled down). Per-CPU thermal limits come from each package's cooling
// parameters at the artificial 38 C limit.

#include <gtest/gtest.h>

#include "src/sim/experiment.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

MachineConfig ThrottleConfig(bool energy_aware) {
  MachineConfig config;
  config.topology = CpuTopology::PaperXSeries445(true);
  config.cooling = CoolingProfile::PaperXSeries445();
  config.temp_limit = 38.0;  // per-CPU max power from cooling calibration
  config.throttling_enabled = true;
  config.sched = energy_aware ? EnergySchedConfig::EnergyAware() : EnergySchedConfig::Baseline();
  return config;
}

RunResult RunThrottled(bool energy_aware, Tick duration) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = duration;
  Experiment experiment(ThrottleConfig(energy_aware), options);
  return experiment.Run(MixedWorkload(library, 6));  // 36 tasks on 16 logical
}

TEST(ThrottlingIntegration, BaselineThrottlesPoorlycooledCpus) {
  const RunResult baseline = RunThrottled(false, 120'000);
  // Logical 0/8 and 3/11 sit on the poorly cooled packages: they must
  // accumulate significant throttle time under a mixed load.
  const double poor = baseline.throttled_fraction[0] + baseline.throttled_fraction[8] +
                      baseline.throttled_fraction[3] + baseline.throttled_fraction[11];
  EXPECT_GT(poor / 4.0, 0.05);
  // The well-cooled packages must (almost) never throttle.
  EXPECT_LT(baseline.throttled_fraction[1], 0.02);
  EXPECT_LT(baseline.throttled_fraction[2], 0.02);
}

TEST(ThrottlingIntegration, EnergyAwareSchedulingReducesThrottling) {
  const RunResult baseline = RunThrottled(false, 120'000);
  const RunResult eas = RunThrottled(true, 120'000);
  EXPECT_LT(eas.AverageThrottledFraction(), baseline.AverageThrottledFraction())
      << "baseline " << baseline.AverageThrottledFraction() << ", eas "
      << eas.AverageThrottledFraction();
}

TEST(ThrottlingIntegration, EnergyAwareSchedulingImprovesThroughput) {
  const RunResult baseline = RunThrottled(false, 150'000);
  const RunResult eas = RunThrottled(true, 150'000);
  const double increase = ThroughputIncrease(baseline, eas);
  // Paper: +4.7%. Accept anything clearly positive but sane.
  EXPECT_GT(increase, 0.0);
  EXPECT_LT(increase, 0.5);
}

TEST(ThrottlingIntegration, ShortTaskWorkloadAlsoGains) {
  // Section 6.2's second experiment: tasks of <1 s, where initial placement
  // dominates.
  const ProgramLibrary library(EnergyModel::Default());
  std::vector<const Program*> spawn;
  for (int i = 0; i < 18; ++i) {
    spawn.push_back(i % 2 == 0 ? &library.short_hot() : &library.short_cool());
  }
  Experiment::Options options;
  options.duration_ticks = 120'000;

  Experiment base_experiment(ThrottleConfig(false), options);
  const RunResult baseline = base_experiment.Run(spawn);
  Experiment eas_experiment(ThrottleConfig(true), options);
  const RunResult eas = eas_experiment.Run(spawn);

  EXPECT_GT(ThroughputIncrease(baseline, eas), 0.0);
}

}  // namespace
}  // namespace eas
