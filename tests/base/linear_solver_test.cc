#include "src/base/linear_solver.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"

namespace eas {
namespace {

TEST(LinearSolverTest, SolvesIdentity) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = 1.0;
  auto x = SolveLinearSystem(a, {3.0, 4.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 4.0, 1e-12);
}

TEST(LinearSolverTest, SolvesKnownSystem) {
  // 2x + y = 5; x - y = 1  ->  x = 2, y = 1
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = -1.0;
  auto x = SolveLinearSystem(a, {5.0, 1.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 1.0, 1e-12);
}

TEST(LinearSolverTest, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  auto x = SolveLinearSystem(a, {2.0, 3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LinearSolverTest, DetectsSingularMatrix) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;  // rank 1
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}).has_value());
}

TEST(LinearSolverTest, RandomSystemsRoundTrip) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5;
    Matrix a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.Uniform(-10.0, 10.0);
      for (std::size_t j = 0; j < n; ++j) {
        a.at(i, j) = rng.Uniform(-1.0, 1.0);
      }
      a.at(i, i) += 5.0;  // diagonally dominant => nonsingular
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        b[i] += a.at(i, j) * x_true[j];
      }
    }
    auto x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.has_value());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
    }
  }
}

TEST(LeastSquaresTest, ExactSystemRecovered) {
  Matrix a(3, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 0.0;
  a.at(1, 0) = 0.0;
  a.at(1, 1) = 1.0;
  a.at(2, 0) = 1.0;
  a.at(2, 1) = 1.0;
  // b from x = (2, 3): {2, 3, 5}
  auto x = LeastSquares(a, {2.0, 3.0, 5.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(LeastSquaresTest, OverdeterminedNoisyRecovery) {
  Rng rng(77);
  const std::size_t rows = 50;
  const std::size_t cols = 4;
  std::vector<double> truth{1.5, -2.0, 0.5, 3.0};
  Matrix a(rows, cols);
  std::vector<double> b(rows, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      a.at(r, c) = rng.Uniform(0.0, 10.0);
      b[r] += a.at(r, c) * truth[c];
    }
    b[r] *= 1.0 + rng.Gaussian(0.0, 0.01);
  }
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.has_value());
  for (std::size_t c = 0; c < cols; ++c) {
    EXPECT_NEAR((*x)[c], truth[c], 0.25);
  }
}

}  // namespace
}  // namespace eas
