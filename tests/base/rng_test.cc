#include "src/base/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace eas {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianScaling) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Gaussian(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(19);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream should not be identical to the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace eas
