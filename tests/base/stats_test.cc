#include "src/base/stats.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, ClearResets) {
  RunningStats s;
  s.Add(1.0);
  s.Clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(VectorStatsTest, MeanAndStddev) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(Stddev(xs), 1.1180, 1e-3);
  EXPECT_DOUBLE_EQ(Max(xs), 4.0);
  EXPECT_DOUBLE_EQ(Min(xs), 1.0);
}

TEST(VectorStatsTest, EmptyVectors) {
  std::vector<double> xs;
  EXPECT_DOUBLE_EQ(Mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(Stddev(xs), 0.0);
  EXPECT_DOUBLE_EQ(Max(xs), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 0.0);
}

TEST(VectorStatsTest, PercentileInterpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25.0);
}

TEST(VectorStatsTest, PercentileUnsortedInput) {
  std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10.0);
}

}  // namespace
}  // namespace eas
