#include "src/base/series.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

TEST(SeriesTest, AddAndAccess) {
  Series s("test");
  s.Add(0, 1.0);
  s.Add(10, 2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.tick_at(1), 10);
  EXPECT_DOUBLE_EQ(s.value_at(1), 2.0);
}

TEST(SeriesTest, MaxMinValue) {
  Series s("test");
  s.Add(0, 3.0);
  s.Add(1, -1.0);
  s.Add(2, 7.0);
  EXPECT_DOUBLE_EQ(s.MaxValue(), 7.0);
  EXPECT_DOUBLE_EQ(s.MinValue(), -1.0);
}

TEST(SeriesTest, EmptySeriesSafe) {
  Series s("empty");
  EXPECT_DOUBLE_EQ(s.MaxValue(), 0.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(5, 42.0), 42.0);
}

TEST(SeriesTest, ValueAtFindsLastSampleBefore) {
  Series s("test");
  s.Add(0, 1.0);
  s.Add(100, 2.0);
  s.Add(200, 3.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(150, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(200, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(-1, 9.0), 9.0);
}

TEST(SeriesTest, DownsampleReducesPoints) {
  Series s("test");
  for (int i = 0; i < 1000; ++i) {
    s.Add(i, static_cast<double>(i));
  }
  Series d = s.Downsample(100);
  EXPECT_LE(d.size(), 101u);
  EXPECT_GE(d.size(), 90u);
  EXPECT_DOUBLE_EQ(d.value_at(0), 0.0);
}

TEST(SeriesSetTest, CreateAndFind) {
  SeriesSet set;
  set.Create("a");
  set.Create("b");
  EXPECT_EQ(set.size(), 2u);
  EXPECT_NE(set.Find("a"), nullptr);
  EXPECT_EQ(set.Find("c"), nullptr);
}

TEST(SeriesSetTest, SpreadAt) {
  SeriesSet set;
  Series& a = set.Create("a");
  Series& b = set.Create("b");
  a.Add(0, 10.0);
  a.Add(100, 20.0);
  b.Add(0, 13.0);
  b.Add(100, 50.0);
  EXPECT_DOUBLE_EQ(set.SpreadAt(0), 3.0);
  EXPECT_DOUBLE_EQ(set.SpreadAt(100), 30.0);
}

TEST(SeriesSetTest, MaxValueAcrossSeries) {
  SeriesSet set;
  set.Create("a").Add(0, 5.0);
  set.Create("b").Add(0, 8.0);
  EXPECT_DOUBLE_EQ(set.MaxValue(), 8.0);
}

}  // namespace
}  // namespace eas
