#include "src/base/flags.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

FlagParser Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  for (const char* arg : args) {
    argv.push_back(arg);
  }
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  const FlagParser flags = Parse({"--policy=eas", "--duration-s=120"});
  EXPECT_EQ(flags.GetString("policy"), "eas");
  EXPECT_DOUBLE_EQ(flags.GetDouble("duration-s", 0.0), 120.0);
}

TEST(FlagsTest, SpaceForm) {
  const FlagParser flags = Parse({"--policy", "baseline", "--seed", "7"});
  EXPECT_EQ(flags.GetString("policy"), "baseline");
  EXPECT_EQ(flags.GetInt("seed", 0), 7);
}

TEST(FlagsTest, BareSwitch) {
  const FlagParser flags = Parse({"--throttle", "--policy=eas"});
  EXPECT_TRUE(flags.Has("throttle"));
  EXPECT_TRUE(flags.GetBool("throttle"));
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagsTest, SwitchBeforeAnotherFlag) {
  // "--throttle --policy eas": throttle must not eat "--policy".
  const FlagParser flags = Parse({"--throttle", "--policy", "eas"});
  EXPECT_TRUE(flags.GetBool("throttle"));
  EXPECT_EQ(flags.GetString("policy"), "eas");
}

TEST(FlagsTest, BoolValueForms) {
  EXPECT_TRUE(Parse({"--x=true"}).GetBool("x"));
  EXPECT_TRUE(Parse({"--x=1"}).GetBool("x"));
  EXPECT_TRUE(Parse({"--x=on"}).GetBool("x"));
  EXPECT_FALSE(Parse({"--x=false"}).GetBool("x"));
  EXPECT_FALSE(Parse({"--x=0"}).GetBool("x"));
}

TEST(FlagsTest, Fallbacks) {
  const FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 3.5), 3.5);
  EXPECT_EQ(flags.GetInt("missing", -2), -2);
}

TEST(FlagsTest, Positional) {
  const FlagParser flags = Parse({"run", "--policy=eas", "fast"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "fast");
}

TEST(FlagsTest, UnknownFlagsNamesStrays) {
  const FlagParser flags = Parse({"--policy=eas", "--polcy=oops", "--zeed", "7"});
  const auto unknown = flags.UnknownFlags({"policy", "seed"});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "polcy");  // sorted (map order)
  EXPECT_EQ(unknown[1], "zeed");
  EXPECT_TRUE(Parse({"--policy=eas"}).UnknownFlags({"policy"}).empty());
  EXPECT_TRUE(Parse({}).UnknownFlags({}).empty());
}

TEST(FlagsTest, SplitColons) {
  const auto fields = FlagParser::SplitColons("2:4:1");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "2");
  EXPECT_EQ(fields[2], "1");
  EXPECT_EQ(FlagParser::SplitColons("abc").size(), 1u);
  EXPECT_EQ(FlagParser::SplitColons("a::b").size(), 3u);
}

}  // namespace
}  // namespace eas
