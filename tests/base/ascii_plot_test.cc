#include "src/base/ascii_plot.h"

#include <gtest/gtest.h>

#include <sstream>

namespace eas {
namespace {

int CountLines(const std::string& s) {
  int lines = 0;
  for (char c : s) {
    if (c == '\n') {
      ++lines;
    }
  }
  return lines;
}

TEST(AsciiPlotTest, RendersRequestedDimensions) {
  SeriesSet set;
  Series& a = set.Create("a");
  a.Add(0, 1.0);
  a.Add(100, 5.0);
  PlotOptions options;
  options.width = 40;
  options.height = 8;
  options.y_max = 10.0;
  const std::string plot = RenderPlot(set, options);
  EXPECT_EQ(CountLines(plot), 9);  // height rows + axis
  std::istringstream lines(plot);
  std::string line;
  std::getline(lines, line);
  // "%7.1f |" prefix (8 chars of label + separator) plus the grid width.
  EXPECT_EQ(line.size(), 9u + 40u);
}

TEST(AsciiPlotTest, SeriesGetDistinctSymbols) {
  SeriesSet set;
  set.Create("a").Add(0, 2.0);
  set.Create("b").Add(50, 5.0);
  PlotOptions options;
  options.y_max = 10.0;
  const std::string plot = RenderPlot(set, options);
  EXPECT_NE(plot.find('0'), std::string::npos);
  EXPECT_NE(plot.find('1'), std::string::npos);
}

TEST(AsciiPlotTest, MarkerLineDrawn) {
  SeriesSet set;
  set.Create("a").Add(0, 2.0);
  PlotOptions options;
  options.y_max = 10.0;
  options.marker = 5.0;
  options.use_marker = true;
  const std::string plot = RenderPlot(set, options);
  EXPECT_NE(plot.find('-'), std::string::npos);
}

TEST(AsciiPlotTest, AutoScalesFromData) {
  SeriesSet set;
  Series& a = set.Create("a");
  a.Add(0, 95.0);
  PlotOptions options;  // y_max unset -> auto
  const std::string plot = RenderPlot(set, options);
  // The top label must be >= the max sample.
  std::istringstream lines(plot);
  std::string first;
  std::getline(lines, first);
  EXPECT_GE(std::stod(first), 95.0);
}

TEST(AsciiPlotTest, ValuesClampedIntoGrid) {
  SeriesSet set;
  Series& a = set.Create("a");
  a.Add(0, 1000.0);  // above y_max
  a.Add(10, -50.0);  // below y_min
  PlotOptions options;
  options.y_max = 10.0;
  const std::string plot = RenderPlot(set, options);
  EXPECT_NE(plot.find('0'), std::string::npos);  // both samples rendered
}

TEST(AsciiPlotTest, LabelAppended) {
  SeriesSet set;
  set.Create("a").Add(0, 1.0);
  PlotOptions options;
  options.y_max = 2.0;
  options.y_label = "watts over time";
  const std::string plot = RenderPlot(set, options);
  EXPECT_NE(plot.find("watts over time"), std::string::npos);
}

TEST(AsciiPlotTest, EmptySetStillRenders) {
  SeriesSet set;
  PlotOptions options;
  options.y_max = 1.0;
  const std::string plot = RenderPlot(set, options);
  EXPECT_GT(CountLines(plot), 3);
}

}  // namespace
}  // namespace eas
