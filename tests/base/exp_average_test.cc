#include "src/base/exp_average.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eas {
namespace {

TEST(ExpAverageTest, FirstSampleInitializes) {
  ExpAverage avg(0.3, 1.0);
  EXPECT_FALSE(avg.has_samples());
  avg.AddRateSample(10.0, 1.0);
  EXPECT_TRUE(avg.has_samples());
  EXPECT_DOUBLE_EQ(avg.value(), 10.0);
}

TEST(ExpAverageTest, StandardPeriodMatchesClassicFormula) {
  // For period == standard_period the update must be exactly
  // p*x + (1-p)*old (paper Equation 2).
  ExpAverage avg(0.25, 1.0);
  avg.Reset(8.0);
  avg.AddRateSample(16.0, 1.0);
  EXPECT_NEAR(avg.value(), 0.25 * 16.0 + 0.75 * 8.0, 1e-12);
}

TEST(ExpAverageTest, ConvergesToConstantInput) {
  ExpAverage avg(0.3, 1.0);
  avg.Reset(0.0);
  for (int i = 0; i < 100; ++i) {
    avg.AddRateSample(42.0, 1.0);
  }
  EXPECT_NEAR(avg.value(), 42.0, 1e-6);
}

TEST(ExpAverageTest, ShortPeriodsWeightPastMore) {
  // Two short samples covering one standard period must equal one
  // standard-period sample of the same rate: the variable-period extension's
  // defining property.
  ExpAverage two_halves(0.5, 1.0);
  two_halves.Reset(100.0);
  two_halves.AddRateSample(0.0, 0.5);
  two_halves.AddRateSample(0.0, 0.5);

  ExpAverage one_full(0.5, 1.0);
  one_full.Reset(100.0);
  one_full.AddRateSample(0.0, 1.0);

  EXPECT_NEAR(two_halves.value(), one_full.value(), 1e-9);
}

TEST(ExpAverageTest, LongPeriodWeightsPastLess) {
  ExpAverage avg_long(0.5, 1.0);
  avg_long.Reset(100.0);
  avg_long.AddRateSample(0.0, 3.0);

  ExpAverage avg_short(0.5, 1.0);
  avg_short.Reset(100.0);
  avg_short.AddRateSample(0.0, 1.0);

  // A 3-standard-period sample decays the past as much as three samples.
  EXPECT_LT(avg_long.value(), avg_short.value());
  EXPECT_NEAR(avg_long.value(), 100.0 * std::pow(0.5, 3.0), 1e-9);
}

TEST(ExpAverageTest, AddSampleNormalizesByPeriod) {
  // AddSample(value, period) should treat value/period as the rate.
  ExpAverage a(0.4, 2.0);
  a.Reset(10.0);
  a.AddSample(12.0, 2.0);  // rate = 12/2*2 = 12 per standard period

  ExpAverage b(0.4, 2.0);
  b.Reset(10.0);
  b.AddRateSample(12.0, 2.0);

  EXPECT_NEAR(a.value(), b.value(), 1e-12);
}

TEST(ExpAverageTest, TimeConstantStepResponse) {
  // Feeding a step for exactly tau must cover ~63.2% of the step.
  const double tau = 10.0;
  const double dt = 0.01;
  ExpAverage avg = ExpAverage::WithTimeConstant(tau, dt);
  avg.Reset(0.0);
  const int steps = static_cast<int>(tau / dt);
  for (int i = 0; i < steps; ++i) {
    avg.AddRateSample(1.0, dt);
  }
  EXPECT_NEAR(avg.value(), 1.0 - std::exp(-1.0), 0.01);
}

TEST(ExpAverageTest, TimeConstantIndependentOfStepSize) {
  const double tau = 5.0;
  ExpAverage fine = ExpAverage::WithTimeConstant(tau, 0.001);
  ExpAverage coarse = ExpAverage::WithTimeConstant(tau, 0.1);
  fine.Reset(0.0);
  coarse.Reset(0.0);
  for (int i = 0; i < 5000; ++i) {
    fine.AddRateSample(1.0, 0.001);
  }
  for (int i = 0; i < 50; ++i) {
    coarse.AddRateSample(1.0, 0.1);
  }
  EXPECT_NEAR(fine.value(), coarse.value(), 0.01);
}

TEST(ExpAverageTest, ResetForcesValue) {
  ExpAverage avg(0.3, 1.0);
  avg.AddRateSample(5.0, 1.0);
  avg.Reset(99.0);
  EXPECT_DOUBLE_EQ(avg.value(), 99.0);
}

TEST(ExpAverageTest, SpikeBarelyMovesAverage) {
  // The paper's motivation: a momentary spike must not change the profile
  // much, while a persistent change shows up after a few samples.
  ExpAverage avg(0.3, 1.0);
  avg.Reset(40.0);
  avg.AddRateSample(80.0, 1.0);  // one-sample spike
  EXPECT_LT(avg.value(), 55.0);
  for (int i = 0; i < 10; ++i) {
    avg.AddRateSample(80.0, 1.0);  // persistent change
  }
  EXPECT_GT(avg.value(), 75.0);
}

}  // namespace
}  // namespace eas
