// The event-driven tick hot path: the wake queue and arrival queue must be
// tick-for-tick identical to the per-tick scans they replaced, and their
// edge cases (wake on the exact completion tick, stale entries after a
// re-sleep, arrival/wakeup ties) must be deterministic.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/experiment_runner.h"
#include "src/sim/machine.h"
#include "src/sim/scan_reference.h"
#include "src/sim/scenario.h"
#include "src/sim/simulation_engine.h"

namespace eas {
namespace {

// One-CPU machine with oracle estimator weights: every tick is deterministic
// and cheap, so wake/arrival interleavings can be pinned exactly.
MachineConfig OneCpuConfig() {
  MachineConfig config;
  config.topology = CpuTopology(1, 1, 1);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  config.explicit_max_power_physical = 200.0;
  config.estimator_weights = EnergyModel::Default().weights();
  config.respawn_completed = false;
  config.seed = 3;
  return config;
}

// A phase that never ends on its own: the task runs until its total work is
// done (or forever, for total_work_ticks = 0).
Program MakeBusyProgram(const std::string& name, BinaryId id, Tick total_work_ticks) {
  Phase phase;
  phase.rates = EventRates{};
  phase.mean_duration = 1'000'000;
  return Program(name, id, std::vector<Phase>{phase}, total_work_ticks);
}

// --- wake queue edge cases ---------------------------------------------------

TEST(WakeQueueTest, SleeperWakesOnExactTickCurrentTaskCompletes) {
  const MachineConfig config = OneCpuConfig();
  const Program worker = MakeBusyProgram("worker", 1, /*total_work_ticks=*/50);
  const Program daemon = MakeBusyProgram("daemon", 2, /*total_work_ticks=*/0);

  Machine machine(config);
  Task* a = machine.Spawn(worker);
  Task* b = machine.Spawn(daemon);

  // Put the daemon to sleep so that it wakes at tick 49 - the exact tick the
  // worker executes its 50th work tick and completes.
  ASSERT_TRUE(machine.state().runqueue(0).Remove(b));
  machine.state().StartSleep(*b, 49);
  EXPECT_EQ(b->wake_tick(), 49);

  machine.Run(49);  // ticks 0..48: the worker runs, one tick of work short
  EXPECT_EQ(b->state(), TaskState::kSleeping);
  EXPECT_EQ(machine.runqueue(0).current(), a);

  machine.Run(1);  // tick 49: b wakes at the start, a completes at the end
  EXPECT_EQ(a->state(), TaskState::kFinished);
  EXPECT_EQ(b->state(), TaskState::kRunnable);
  EXPECT_EQ(machine.runqueue(0).current(), nullptr);
  EXPECT_EQ(machine.runqueue(0).nr_queued(), 1u);

  machine.Run(1);  // tick 50: the woken daemon switches in
  EXPECT_EQ(machine.runqueue(0).current(), b);
  EXPECT_EQ(b->state(), TaskState::kRunning);
}

TEST(WakeQueueTest, StaleEntryDroppedAfterResleep) {
  const MachineConfig config = OneCpuConfig();
  const Program daemon = MakeBusyProgram("daemon", 2, 0);

  SimulationState state(config);
  SchedTick sched_tick;
  Task* task = state.Spawn(daemon, 0);
  Runqueue& rq = state.runqueue(0);

  // First sleep: wake scheduled for tick 5.
  ASSERT_EQ(rq.PickNext(), task);
  rq.TakeCurrent();
  state.StartSleep(*task, 5);
  EXPECT_EQ(state.wake_queue().size(), 1u);

  // Woken early by other means, runs, and re-sleeps until tick 10. The
  // tick-5 heap entry is now stale.
  rq.EnqueueFront(task);
  ASSERT_EQ(rq.PickNext(), task);
  rq.TakeCurrent();
  state.StartSleep(*task, 10);
  EXPECT_EQ(state.wake_queue().size(), 2u);

  while (state.now() < 5) {
    state.AdvanceTick();
  }
  sched_tick.WakeSleepers(state);  // the stale tick-5 entry must not fire
  EXPECT_EQ(task->state(), TaskState::kSleeping);
  EXPECT_EQ(rq.nr_running(), 0u);
  EXPECT_EQ(state.wake_queue().size(), 1u);

  while (state.now() < 10) {
    state.AdvanceTick();
  }
  sched_tick.WakeSleepers(state);  // the live tick-10 entry fires exactly once
  EXPECT_EQ(task->state(), TaskState::kRunnable);
  EXPECT_EQ(rq.nr_queued(), 1u);
  EXPECT_TRUE(state.wake_queue().empty());
}

// --- arrival/wakeup ordering -------------------------------------------------

TEST(ArrivalQueueTest, ArrivalSpawnsBeforeWakeupOnSameTick) {
  const MachineConfig config = OneCpuConfig();
  const Program busy = MakeBusyProgram("busy", 1, 0);
  const Program daemon = MakeBusyProgram("daemon", 2, 0);
  const Program newcomer = MakeBusyProgram("newcomer", 3, 0);

  Machine machine(config);
  machine.Spawn(busy);  // becomes and stays current
  Task* sleeper = machine.Spawn(daemon);
  ASSERT_TRUE(machine.state().runqueue(0).Remove(sleeper));
  machine.state().StartSleep(*sleeper, 10);
  machine.state().ScheduleArrival(newcomer, /*nice=*/0, /*tick=*/10);

  machine.Run(11);  // through tick 10, where the arrival and the wake collide

  // The arrival spawned first (placement saw the pre-wake queue), then the
  // wakeup enqueued at the front: the woken task runs before the newcomer.
  ASSERT_EQ(machine.runqueue(0).nr_queued(), 2u);
  EXPECT_EQ(machine.runqueue(0).queued()[0], sleeper);
  EXPECT_EQ(machine.runqueue(0).queued()[1]->name(), "newcomer");
  EXPECT_EQ(machine.tasks().size(), 3u);
}

// --- golden traces: event-driven engine vs the scan-based loop ---------------
//
// The reference (src/sim/scan_reference.h) is the pre-event-queue tick loop:
// the same phase components, but sleepers wake via a scan over the whole
// task table and arrivals are injected by an index catch-up loop at the
// start of each tick, as Experiment::Run used to.

void ExpectStatesBitIdentical(SimulationState& a, SimulationState& b, const std::string& label) {
  ASSERT_EQ(a.now(), b.now()) << label;
  EXPECT_EQ(a.migration_count(), b.migration_count()) << label;
  EXPECT_EQ(a.TotalWorkDone(), b.TotalWorkDone()) << label;
  EXPECT_EQ(a.TotalTaskEnergy(), b.TotalTaskEnergy()) << label;
  EXPECT_EQ(a.TotalCompletions(), b.TotalCompletions()) << label;
  for (std::size_t cpu = 0; cpu < a.num_cpus(); ++cpu) {
    const int c = static_cast<int>(cpu);
    EXPECT_EQ(a.ThermalPower(c), b.ThermalPower(c)) << label << " cpu " << cpu;
    EXPECT_EQ(a.RunqueuePower(c), b.RunqueuePower(c)) << label << " cpu " << cpu;
    EXPECT_EQ(a.runqueue(c).nr_running(), b.runqueue(c).nr_running()) << label << " cpu " << cpu;
  }
  for (std::size_t phys = 0; phys < a.num_physical(); ++phys) {
    EXPECT_EQ(a.Temperature(phys), b.Temperature(phys)) << label << " phys " << phys;
    EXPECT_EQ(a.TruePower(phys), b.TruePower(phys)) << label << " phys " << phys;
  }
  ASSERT_EQ(a.tasks().size(), b.tasks().size()) << label;
  for (std::size_t i = 0; i < a.tasks().size(); ++i) {
    const Task& ta = *a.tasks()[i];
    const Task& tb = *b.tasks()[i];
    EXPECT_EQ(ta.state(), tb.state()) << label << " task " << i;
    EXPECT_EQ(SimulationState::TaskCpu(ta), SimulationState::TaskCpu(tb))
        << label << " task " << i;
    EXPECT_EQ(ta.work_done_ticks(), tb.work_done_ticks()) << label << " task " << i;
    EXPECT_EQ(ta.total_energy(), tb.total_energy()) << label << " task " << i;
    EXPECT_EQ(ta.profile().power(), tb.profile().power()) << label << " task " << i;
  }
}

void RunScenarioEquivalence(const std::string& name, Tick ticks) {
  ScenarioSpec spec = ScenarioRegistry::Global().BuildOrThrow(name);
  spec.config.estimator_weights = EnergyModel::Default().weights();

  SimulationState engine_state(spec.config);
  SimulationState scan_state(spec.config);
  SimulationEngine engine(spec.config.sched);
  ScanReferenceStepper scan(spec.config.sched);

  const std::vector<TaskArrival>& arrivals = spec.workload.arrivals();
  // Engine side: the Experiment::Run protocol - spawn the initial set, feed
  // the rest through the arrival queue. Scan side: the old catch-up loop.
  std::size_t engine_next = 0;
  while (engine_next < arrivals.size() && arrivals[engine_next].tick <= 0) {
    engine_state.Spawn(*arrivals[engine_next].program, arrivals[engine_next].nice);
    ++engine_next;
  }
  for (; engine_next < arrivals.size(); ++engine_next) {
    engine_state.ScheduleArrival(*arrivals[engine_next].program, arrivals[engine_next].nice,
                                 arrivals[engine_next].tick);
  }
  std::size_t scan_next = 0;

  for (Tick t = 0; t < ticks; ++t) {
    engine.Tick(engine_state);
    scan.Step(scan_state, arrivals, scan_next);
  }
  ExpectStatesBitIdentical(engine_state, scan_state, name);
}

TEST(TickHotPathTest, GoldenTraceMatchesScanEngineOnPaperMixed) {
  RunScenarioEquivalence("paper-mixed", 6'000);
}

TEST(TickHotPathTest, GoldenTraceMatchesScanEngineOnServerConsolidation) {
  // Covers the full arrival ramp (the last daemon arrives before tick
  // 19'000), so wake and arrival queues are both exercised at scale.
  RunScenarioEquivalence("server-consolidation", 20'000);
}

// --- determinism across runner thread counts ---------------------------------

TEST(TickHotPathTest, ArrivalsAndWakeupsDeterministicAcrossThreads) {
  ExperimentSpec base =
      ScenarioRegistry::Global().BuildOrThrow("server-consolidation").ToExperimentSpec();
  base.options.duration_ticks = 6'000;
  base.config.estimator_weights = EnergyModel::Default().weights();
  const std::vector<ExperimentSpec> specs(4, base);

  const std::vector<RunResult> baseline = ExperimentRunner(1).RunAll(specs);
  ASSERT_EQ(baseline.size(), specs.size());
  for (std::size_t threads : {2u, 8u}) {
    const std::vector<RunResult> results = ExperimentRunner(threads).RunAll(specs);
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].work_done_ticks, baseline[i].work_done_ticks)
          << threads << " threads, spec " << i;
      EXPECT_EQ(results[i].migrations, baseline[i].migrations)
          << threads << " threads, spec " << i;
      EXPECT_EQ(results[i].completions, baseline[i].completions)
          << threads << " threads, spec " << i;
    }
  }
}

}  // namespace
}  // namespace eas
