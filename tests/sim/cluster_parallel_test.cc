// The package-parallel tick pipeline's determinism contracts, at cluster
// scale and on degenerate machines:
//
//  - worker-count independence: any intra_run_threads >= 1 produces the
//    same bits, because package phases touch only their own shard and the
//    cross-package phases (lifecycle, balance) run sequentially in a fixed
//    order regardless of which worker ran which package;
//  - skip-ahead composes: quiescent spans are mode-independent (the
//    reduced kernels are sequential), so turning skip-ahead off under the
//    sharded pipeline changes nothing;
//  - interleaved/sharded agreement on respawn-free workloads: when no task
//    ever completes, lifecycle cannot feed back across packages within a
//    tick and the historical interleaved loop coincides bit-for-bit.
//
// Byte equality of the exported summary CSV is the assertion throughout -
// the same artifact eastool consumers diff.

#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "src/api/run_request.h"
#include "src/counters/energy_model.h"
#include "src/sim/csv_export.h"
#include "src/sim/experiment.h"
#include "src/sim/scenario.h"

namespace eas {
namespace {

// The 512-CPU five-level scenario, shortened: the tick pipeline at real
// cluster width without the full 20k-tick duration.
ExperimentSpec ClusterSpec(std::size_t intra_threads, bool skip_ahead) {
  ExperimentSpec spec =
      ScenarioRegistry::Global().BuildOrThrow("datacenter-consolidation").ToExperimentSpec();
  spec.options.duration_ticks = 1'500;
  spec.options.sample_interval_ticks = 500;
  spec.config.estimator_weights = EnergyModel::Default().weights();
  spec.config.intra_run_threads = intra_threads;
  spec.config.skip_ahead = skip_ahead;
  return spec;
}

std::string SummaryCsv(const ExperimentSpec& spec) {
  Experiment experiment(spec.config, spec.options);
  return RunSummaryToCsv(experiment.Run(spec.workload));
}

TEST(ClusterParallelTest, ShardedWorkerCountIndependence) {
  const std::string one = SummaryCsv(ClusterSpec(1, /*skip_ahead=*/true));
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(one, SummaryCsv(ClusterSpec(workers, /*skip_ahead=*/true)))
        << "intra_run_threads=" << workers;
  }
}

TEST(ClusterParallelTest, ShardedSkipAheadBitIdentical) {
  EXPECT_EQ(SummaryCsv(ClusterSpec(2, /*skip_ahead=*/true)),
            SummaryCsv(ClusterSpec(2, /*skip_ahead=*/false)));
}

TEST(ClusterParallelTest, ShardedMatchesInterleavedWhenNoTaskCompletes) {
  // The consolidation population never finishes a task, so per-package
  // lifecycle cannot influence another package mid-tick - the precondition
  // for the two modes to coincide. Assert it rather than assume it.
  const ExperimentSpec spec = ClusterSpec(0, /*skip_ahead=*/true);
  Experiment interleaved(spec.config, spec.options);
  const RunResult result = interleaved.Run(spec.workload);
  ASSERT_EQ(result.completions, 0);
  EXPECT_EQ(RunSummaryToCsv(result), SummaryCsv(ClusterSpec(1, /*skip_ahead=*/true)));
}

// A lifecycle-heavy run (completions, respawns, sleeps) on a deep but
// narrow tree, built through the request surface end to end: the sharded
// pipeline must stay worker-count independent even when every tick runs
// the sequential lifecycle phase.
ExperimentSpec DeepNarrowSpec(std::size_t intra_threads) {
  auto resolved = ResolveRunRequest(
      *ParseRunRequest("topology = 2:2:2:2:2; workload = short:24; duration-s = 6; seed = 11; "
                       "intra-threads = " + std::to_string(intra_threads)));
  EXPECT_TRUE(resolved.ok()) << resolved.error().Render();
  ExperimentSpec spec = resolved->specs.front();
  spec.config.estimator_weights = EnergyModel::Default().weights();
  return spec;
}

TEST(ClusterParallelTest, ShardedDeterministicUnderTaskLifecycle) {
  const ExperimentSpec spec = DeepNarrowSpec(1);
  Experiment experiment(spec.config, spec.options);
  const RunResult result = experiment.Run(spec.workload);
  ASSERT_GT(result.completions, 0) << "workload must exercise the lifecycle phase";
  const std::string one = RunSummaryToCsv(result);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const ExperimentSpec more = DeepNarrowSpec(workers);
    Experiment other(more.config, more.options);
    EXPECT_EQ(one, RunSummaryToCsv(other.Run(more.workload)))
        << "intra_run_threads=" << workers;
  }
}

TEST(ClusterParallelTest, ShardedRunsOnSinglePackageMachine) {
  // Degenerate width: one package, SMT only. The pool clamps to one worker
  // and the pipeline must still run (and agree with itself at any count).
  auto make = [](std::size_t workers) {
    auto resolved = ResolveRunRequest(
        *ParseRunRequest("topology = 1:1:2; workload = mixed:3; duration-s = 4; seed = 3; "
                         "intra-threads = " + std::to_string(workers)));
    EXPECT_TRUE(resolved.ok()) << resolved.error().Render();
    ExperimentSpec spec = resolved->specs.front();
    spec.config.estimator_weights = EnergyModel::Default().weights();
    Experiment experiment(spec.config, spec.options);
    return RunSummaryToCsv(experiment.Run(spec.workload));
  };
  EXPECT_EQ(make(1), make(8));
}

}  // namespace
}  // namespace eas
