// Quiescent-span skip-ahead: the engine's Advance must be bit-identical to
// naive per-tick stepping - same end state, same traces, same CSVs - for
// every builtin scenario (governed and ungoverned), and the fast path must
// actually engage on sparse workloads (fewer observer invocations than
// ticks, not just equal results).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/counters/energy_model.h"
#include "src/sim/csv_export.h"
#include "src/sim/experiment.h"
#include "src/sim/experiment_runner.h"
#include "src/sim/machine.h"
#include "src/sim/scenario.h"

namespace eas {
namespace {

// Bitwise equality throughout: skip-ahead promises the identical floating
// point values, not merely close ones, so plain == (not near-comparisons)
// is the assertion everywhere below.
void ExpectBitIdentical(const RunResult& a, const RunResult& b, const std::string& label) {
  EXPECT_EQ(a.work_done_ticks, b.work_done_ticks) << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.completions, b.completions) << label;
  ASSERT_EQ(a.throttled_fraction.size(), b.throttled_fraction.size()) << label;
  for (std::size_t i = 0; i < a.throttled_fraction.size(); ++i) {
    EXPECT_EQ(a.throttled_fraction[i], b.throttled_fraction[i]) << label << " cpu" << i;
  }
  ASSERT_EQ(a.average_frequency.size(), b.average_frequency.size()) << label;
  for (std::size_t i = 0; i < a.average_frequency.size(); ++i) {
    EXPECT_EQ(a.average_frequency[i], b.average_frequency[i]) << label << " cpu" << i;
  }
  EXPECT_EQ(a.pstate_residency, b.pstate_residency) << label;
  for (const auto* pair : {&a.thermal_power, &b.thermal_power}) {
    ASSERT_GT(pair->size(), 0u) << label;
  }
  ASSERT_EQ(a.thermal_power.size(), b.thermal_power.size()) << label;
  for (std::size_t s = 0; s < a.thermal_power.size(); ++s) {
    const Series& sa = a.thermal_power.at(s);
    const Series& sb = b.thermal_power.at(s);
    ASSERT_EQ(sa.size(), sb.size()) << label;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa.tick_at(i), sb.tick_at(i)) << label;
      EXPECT_EQ(sa.value_at(i), sb.value_at(i)) << label;
    }
  }
  ASSERT_EQ(a.temperature.size(), b.temperature.size()) << label;
  for (std::size_t s = 0; s < a.temperature.size(); ++s) {
    const Series& sa = a.temperature.at(s);
    const Series& sb = b.temperature.at(s);
    ASSERT_EQ(sa.size(), sb.size()) << label;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa.value_at(i), sb.value_at(i)) << label;
    }
  }
  // The exported summary is the user-facing artifact: byte equality is the
  // contract eastool's CSV consumers rely on.
  EXPECT_EQ(RunSummaryToCsv(a), RunSummaryToCsv(b)) << label;
}

ExperimentSpec ShortenedSpec(const std::string& scenario, bool skip_ahead) {
  ExperimentSpec spec = ScenarioRegistry::Global().BuildOrThrow(scenario).ToExperimentSpec();
  spec.options.duration_ticks = 4'000;
  spec.options.sample_interval_ticks = 500;
  // Oracle weights skip the calibration phase to keep the sweep fast.
  spec.config.estimator_weights = EnergyModel::Default().weights();
  spec.config.skip_ahead = skip_ahead;
  return spec;
}

TEST(SkipAheadTest, EveryBuiltinScenarioBitIdentical) {
  // Governed scenarios exercise the per-tick reduced kernel, ungoverned
  // ones the closed-form fast path; both must be invisible in the results.
  for (const std::string& name : ScenarioRegistry::Global().Names()) {
    const ExperimentSpec on = ShortenedSpec(name, /*skip_ahead=*/true);
    const ExperimentSpec off = ShortenedSpec(name, /*skip_ahead=*/false);
    Experiment with_skip(on.config, on.options);
    Experiment without_skip(off.config, off.options);
    const RunResult a = with_skip.Run(on.workload);
    const RunResult b = without_skip.Run(off.workload);
    ExpectBitIdentical(a, b, name);
  }
}

TEST(SkipAheadTest, RunnerSweepCsvIdenticalAcrossThreadsAndModes) {
  // The whole catalogue through the runner at 1/2/8 threads, skip-ahead on
  // and off: all six sweeps must export byte-identical summary CSVs per
  // spec.
  const std::vector<std::string> names = ScenarioRegistry::Global().Names();
  auto sweep = [&names](bool skip_ahead, std::size_t threads) {
    std::vector<ExperimentSpec> specs;
    for (const std::string& name : names) {
      specs.push_back(ShortenedSpec(name, skip_ahead));
    }
    const std::vector<RunResult> results = ExperimentRunner(threads).RunAll(specs);
    std::vector<std::string> csvs;
    for (const RunResult& result : results) {
      csvs.push_back(RunSummaryToCsv(result));
    }
    return csvs;
  };

  const std::vector<std::string> reference = sweep(/*skip_ahead=*/true, 1);
  ASSERT_EQ(reference.size(), names.size());
  for (const bool skip_ahead : {true, false}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      const std::vector<std::string> csvs = sweep(skip_ahead, threads);
      ASSERT_EQ(csvs.size(), reference.size());
      for (std::size_t i = 0; i < csvs.size(); ++i) {
        EXPECT_EQ(csvs[i], reference[i])
            << names[i] << " skip_ahead=" << skip_ahead << " threads=" << threads;
      }
    }
  }
}

// Counts OnTick calls and never forces per-tick stepping: inside a fast
// span the engine only invokes observers at the span boundary, so the call
// count dropping below the tick count is direct evidence the bulk path ran.
class CountingObserver : public TickObserver {
 public:
  void OnTick(const SimulationState&) override { ++calls_; }
  Tick NextObservableTick(Tick) const override {
    return std::numeric_limits<Tick>::max();
  }
  std::int64_t calls() const { return calls_; }

 private:
  std::int64_t calls_ = 0;
};

Program MakeCronProgram(const EnergyModel& model) {
  EventRates signature{};
  signature.fill(1.0);
  Phase burst;
  burst.rates = model.RatesForTargetPower(signature, 35.0);
  burst.mean_duration = 12;
  burst.mean_sleep_after = 4'000;
  return Program("cron", 0xc407, {burst}, /*total_work_ticks=*/0);
}

TEST(SkipAheadTest, FastPathEngagesOnSparseWorkloadAndMatchesNaive) {
  const EnergyModel model = EnergyModel::Default();
  const Program cron = MakeCronProgram(model);
  constexpr Tick kTicks = 50'000;

  MachineConfig skip_config;  // default machine: ungoverned, throttle off
  skip_config.estimator_weights = model.weights();
  skip_config.skip_ahead = true;
  MachineConfig naive_config = skip_config;
  naive_config.skip_ahead = false;

  Machine skip_machine(skip_config);
  Machine naive_machine(naive_config);
  CountingObserver skip_observer;
  CountingObserver naive_observer;
  skip_machine.engine().AddObserver(&skip_observer);
  naive_machine.engine().AddObserver(&naive_observer);
  for (int i = 0; i < 3; ++i) {
    skip_machine.Spawn(cron);
    naive_machine.Spawn(cron);
  }
  skip_machine.Run(kTicks);
  naive_machine.Run(kTicks);

  // Engagement: the naive loop observes every tick, the skip loop only
  // span boundaries plus the busy ticks - a mostly-sleeping workload must
  // collapse most of the run into spans.
  EXPECT_EQ(naive_observer.calls(), kTicks);
  EXPECT_LT(skip_observer.calls(), kTicks / 2);

  // And the end states still match bitwise, analog state included.
  SimulationState& a = skip_machine.state();
  SimulationState& b = naive_machine.state();
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.TotalWorkDone(), b.TotalWorkDone());
  EXPECT_EQ(a.TotalTaskEnergy(), b.TotalTaskEnergy());
  EXPECT_EQ(a.migration_count(), b.migration_count());
  for (std::size_t phys = 0; phys < a.num_physical(); ++phys) {
    EXPECT_EQ(a.Temperature(phys), b.Temperature(phys)) << phys;
    EXPECT_EQ(a.TruePower(phys), b.TruePower(phys)) << phys;
  }
  for (std::size_t cpu = 0; cpu < a.num_cpus(); ++cpu) {
    EXPECT_EQ(a.ThermalPower(static_cast<int>(cpu)), b.ThermalPower(static_cast<int>(cpu)))
        << cpu;
  }
}

}  // namespace
}  // namespace eas
