#include "src/sim/csv_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace eas {
namespace {

TEST(CsvExportTest, HeaderAndRows) {
  SeriesSet set;
  Series& a = set.Create("cpu0");
  Series& b = set.Create("cpu1");
  a.Add(0, 1.5);
  a.Add(100, 2.5);
  b.Add(0, 3.0);
  b.Add(100, 4.0);
  const std::string csv = SeriesSetToCsv(set);
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);
  EXPECT_EQ(line, "tick,cpu0,cpu1");
  std::getline(lines, line);
  EXPECT_EQ(line, "0,1.5000,3.0000");
  std::getline(lines, line);
  EXPECT_EQ(line, "100,2.5000,4.0000");
}

TEST(CsvExportTest, EmptySetHasHeaderOnly) {
  SeriesSet set;
  EXPECT_EQ(SeriesSetToCsv(set), "tick\n");
}

TEST(CsvExportTest, RaggedSeriesPadded) {
  SeriesSet set;
  Series& a = set.Create("a");
  Series& b = set.Create("b");
  a.Add(0, 1.0);
  a.Add(1, 2.0);
  b.Add(0, 9.0);
  const std::string csv = SeriesSetToCsv(set);
  EXPECT_NE(csv.find("1,2.0000,\n"), std::string::npos);
}

TEST(CsvExportTest, FirstSeriesShorterKeepsAllRows) {
  // Rows must run to the longest series, not the first: a short first
  // series used to silently truncate every other series' tail.
  SeriesSet set;
  Series& a = set.Create("a");
  Series& b = set.Create("b");
  a.Add(0, 1.0);
  b.Add(0, 9.0);
  b.Add(100, 8.0);
  b.Add(200, 7.0);
  const std::string csv = SeriesSetToCsv(set);
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);
  EXPECT_EQ(line, "tick,a,b");
  std::getline(lines, line);
  EXPECT_EQ(line, "0,1.0000,9.0000");
  // Rows past the first series' end: tick comes from the longer series,
  // the exhausted series pads with an empty cell.
  std::getline(lines, line);
  EXPECT_EQ(line, "100,,8.0000");
  std::getline(lines, line);
  EXPECT_EQ(line, "200,,7.0000");
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(CsvExportTest, MixedLengthRoundTripPreservesEverySample) {
  // Round-trip check: every sample of every series appears in the CSV,
  // whichever series happens to be first.
  SeriesSet set;
  Series& task = set.Create("task");  // finishes early
  Series& cpu = set.Create("cpu");
  for (int i = 0; i < 3; ++i) {
    task.Add(i * 500, 1.0 + i);
  }
  for (int i = 0; i < 7; ++i) {
    cpu.Add(i * 500, 40.0 + i);
  }
  const std::string csv = SeriesSetToCsv(set);
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);  // header
  std::size_t rows = 0;
  long long last_tick = -1;
  while (std::getline(lines, line)) {
    ++rows;
    last_tick = std::stoll(line.substr(0, line.find(',')));
  }
  EXPECT_EQ(rows, 7u);
  EXPECT_EQ(last_tick, 3000);
  EXPECT_NE(csv.find("46.0000"), std::string::npos);  // cpu's tail survived
}

TEST(CsvExportTest, RunSummaryFields) {
  RunResult result;
  result.migrations = 12;
  result.completions = 34;
  result.work_done_ticks = 5000.0;
  result.duration_seconds = 10.0;
  result.throttled_fraction = {0.25, 0.0};
  const std::string csv = RunSummaryToCsv(result);
  EXPECT_NE(csv.find("migrations,12"), std::string::npos);
  EXPECT_NE(csv.find("throughput,500.00"), std::string::npos);
  EXPECT_NE(csv.find("throttled_fraction_cpu0,0.2500"), std::string::npos);
  EXPECT_NE(csv.find("avg_throttled_fraction,0.1250"), std::string::npos);
}

TEST(CsvExportTest, WriteFileRoundTrip) {
  const std::string path = "/tmp/eas_csv_export_test.csv";
  ASSERT_TRUE(WriteFile(path, "hello,world\n"));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "hello,world");
  std::remove(path.c_str());
}

TEST(CsvExportTest, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(WriteFile("/nonexistent-dir/x/y.csv", "data"));
}

}  // namespace
}  // namespace eas
