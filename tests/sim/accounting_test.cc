// Energy/thermal accounting invariants of the machine: SMT attribution sums
// to package power, wake affinity, and throttle accounting semantics.

#include <gtest/gtest.h>

#include "src/sim/machine.h"
#include "src/workloads/programs.h"

namespace eas {
namespace {

TEST(AccountingTest, SmtSiblingAttributionSumsToPackagePower) {
  // The per-logical thermal powers of a package must converge to the
  // package's true electrical power - Section 4.7 relies on this sum for
  // the hot-task trigger.
  MachineConfig config;
  config.topology = CpuTopology(1, 1, 2);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  config.explicit_max_power_physical = 200.0;
  config.estimator_weights = EnergyModel::Default().weights();
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  machine.Spawn(library.bitcnts());
  machine.Spawn(library.memrw());
  machine.Run(90'000);  // >> tau

  const double sum = machine.ThermalPower(0) + machine.ThermalPower(1);
  EXPECT_NEAR(sum, machine.TruePower(0), machine.TruePower(0) * 0.05);
}

TEST(AccountingTest, IdleSiblingGetsHaltShare) {
  MachineConfig config;
  config.topology = CpuTopology(1, 1, 2);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  config.explicit_max_power_physical = 200.0;
  config.estimator_weights = EnergyModel::Default().weights();
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* task = machine.Spawn(library.bitcnts());
  machine.Run(90'000);
  const int busy = task->cpu();
  const int idle = busy == 0 ? 1 : 0;
  EXPECT_NEAR(machine.ThermalPower(idle), 6.8, 0.5);
  EXPECT_GT(machine.ThermalPower(busy), 45.0);
}

TEST(AccountingTest, SleepingTaskWakesOnSameCpu) {
  // Affinity scheduling (Section 4.1): wakeups go to the CPU the task last
  // ran on, keeping its cache warm.
  MachineConfig config;
  config.topology = CpuTopology(1, 2, 1);
  config.cooling = CoolingProfile::Uniform(2, ThermalParams{});
  config.explicit_max_power_physical = 200.0;
  config.estimator_weights = EnergyModel::Default().weights();
  config.sched = EnergySchedConfig::Baseline();
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* daemon = machine.Spawn(library.bash());

  int wake_cpu_mismatches = 0;
  int sleeps = 0;
  int last_run_cpu = daemon->cpu();
  bool was_sleeping = false;
  for (int i = 0; i < 20'000; ++i) {
    machine.Step();
    const bool sleeping = daemon->state() == TaskState::kSleeping;
    if (sleeping && !was_sleeping) {
      ++sleeps;
    }
    if (!sleeping && was_sleeping) {
      if (daemon->cpu() != last_run_cpu) {
        ++wake_cpu_mismatches;
      }
    }
    if (daemon->state() == TaskState::kRunning) {
      last_run_cpu = daemon->cpu();
    }
    was_sleeping = sleeping;
  }
  ASSERT_GT(sleeps, 5);
  EXPECT_EQ(wake_cpu_mismatches, 0);
}

TEST(AccountingTest, ThrottleStatsOnlyCountBlockedWork) {
  // A logical CPU with nothing to run accumulates no throttle time even if
  // its package is halted (Table 3 semantics).
  MachineConfig config;
  config.topology = CpuTopology(1, 1, 2);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  config.explicit_max_power_physical = 30.0;  // force throttling
  config.throttling_enabled = true;
  config.sched = EnergySchedConfig::Baseline();
  config.estimator_weights = EnergyModel::Default().weights();
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* task = machine.Spawn(library.bitcnts());
  machine.Run(120'000);
  const int busy = task->cpu();
  const int idle = busy == 0 ? 1 : 0;
  EXPECT_GT(machine.throttle(busy).ThrottledFraction(), 0.3);
  EXPECT_DOUBLE_EQ(machine.throttle(idle).ThrottledFraction(), 0.0);
}

TEST(AccountingTest, TrueEnergyConservedAcrossIdleAndBusy) {
  // Integrated true power of an idle package equals halt power exactly.
  MachineConfig config;
  config.topology = CpuTopology(1, 2, 1);
  config.cooling = CoolingProfile::Uniform(2, ThermalParams{});
  config.explicit_max_power_physical = 200.0;
  config.estimator_weights = EnergyModel::Default().weights();
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* task = machine.Spawn(library.aluadd());
  double idle_energy = 0.0;
  const int busy_phys = static_cast<int>(machine.config().topology.PhysicalOf(task->cpu()));
  const std::size_t idle_phys = busy_phys == 0 ? 1 : 0;
  for (int i = 0; i < 1'000; ++i) {
    machine.Step();
    idle_energy += machine.TruePower(idle_phys) * kTickSeconds;
  }
  EXPECT_NEAR(idle_energy, 13.6 * 1.0, 1e-6);
}

}  // namespace
}  // namespace eas
