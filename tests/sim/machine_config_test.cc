// Machine behaviour under configuration variants: derived power limits,
// migration warmup costs, SMT co-run speed, the self-calibration path,
// throttle hysteresis, and custom timeslices.

#include <gtest/gtest.h>

#include "src/sim/machine.h"
#include "src/workloads/programs.h"

namespace eas {
namespace {

MachineConfig BaseConfig() {
  MachineConfig config;
  config.topology = CpuTopology(1, 2, 1);
  ThermalParams params;
  params.resistance = 0.3;
  params.capacitance = 40.0;
  config.cooling = CoolingProfile::Uniform(2, params);
  config.explicit_max_power_physical = 120.0;
  config.estimator_weights = EnergyModel::Default().weights();
  return config;
}

TEST(MachineConfigTest, TempLimitDerivesMaxPower) {
  MachineConfig config = BaseConfig();
  config.explicit_max_power_physical.reset();
  config.temp_limit = 38.0;
  Machine machine(config);
  // (38 - 22) / 0.3 = 53.33 W per package, one logical per package.
  EXPECT_NEAR(machine.MaxPower(0), 16.0 / 0.3, 1e-9);
  EXPECT_NEAR(machine.MaxPowerPhysical(0), 16.0 / 0.3, 1e-9);
}

TEST(MachineConfigTest, SmtSplitsMaxPowerAcrossSiblings) {
  MachineConfig config = BaseConfig();
  config.topology = CpuTopology(1, 1, 2);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  config.explicit_max_power_physical = 40.0;
  Machine machine(config);
  EXPECT_NEAR(machine.MaxPower(0), 20.0, 1e-9);
  EXPECT_NEAR(machine.MaxPower(1), 20.0, 1e-9);
  EXPECT_NEAR(machine.MaxPowerPhysical(0), 40.0, 1e-9);
  // Idle power also splits.
  EXPECT_NEAR(machine.IdlePowerPerLogical(), 6.8, 1e-9);
}

TEST(MachineConfigTest, SelfCalibrationPathWorks) {
  // No injected weights: the machine calibrates against its power meter.
  MachineConfig config = BaseConfig();
  config.estimator_weights.reset();
  config.meter_error_stddev = 0.02;
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* task = machine.Spawn(library.bitcnts());
  machine.Run(5'000);
  // Calibrated weights keep the profile within the paper's 10% bound.
  EXPECT_NEAR(task->profile().power(), 61.0, 6.1);
}

TEST(MachineConfigTest, WarmupPenaltySlowsMigratedTask) {
  MachineConfig config = BaseConfig();
  config.warmup_ticks_same_node = 50;
  config.warmup_speed = 0.5;
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* task = machine.Spawn(library.bitcnts());
  machine.Run(10);
  const double before = task->work_done_ticks();
  machine.MigrateTask(task, task->cpu(), 1 - task->cpu());
  machine.Run(50);
  // ~50 ticks at half speed (plus a switch-in tick).
  EXPECT_LT(task->work_done_ticks() - before, 32.0);
  machine.Run(50);
  EXPECT_GT(task->work_done_ticks() - before, 60.0);  // back to full speed
}

TEST(MachineConfigTest, CrossNodeWarmupIsLonger) {
  MachineConfig config = BaseConfig();
  config.topology = CpuTopology(2, 1, 1);
  config.cooling = CoolingProfile::Uniform(2, ThermalParams{});
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* task = machine.Spawn(library.bitcnts());
  machine.Run(10);
  machine.MigrateTask(task, task->cpu(), 1 - task->cpu());
  EXPECT_EQ(task->warmup_ticks_left(), config.warmup_ticks_cross_node);
  EXPECT_EQ(task->node_migrations(), 1);
}

TEST(MachineConfigTest, CorunSpeedConfigurable) {
  MachineConfig config = BaseConfig();
  config.topology = CpuTopology(1, 1, 2);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  config.smt_corun_speed = 0.5;
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* a = machine.Spawn(library.bitcnts());
  Task* b = machine.Spawn(library.aluadd());
  machine.Run(1'000);
  EXPECT_NEAR(a->work_done_ticks(), 500.0, 60.0);
  EXPECT_NEAR(b->work_done_ticks(), 500.0, 60.0);
}

TEST(MachineConfigTest, SingleSiblingRunsFullSpeedOnSmt) {
  MachineConfig config = BaseConfig();
  config.topology = CpuTopology(1, 1, 2);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* a = machine.Spawn(library.bitcnts());
  machine.Run(1'000);
  EXPECT_NEAR(a->work_done_ticks(), 1'000.0, 10.0);
}

TEST(MachineConfigTest, CustomTimesliceRespected) {
  MachineConfig config = BaseConfig();
  config.topology = CpuTopology(1, 1, 1);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  config.timeslice_ticks = 20;
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* a = machine.Spawn(library.bitcnts());
  Task* b = machine.Spawn(library.memrw());
  machine.Run(200);
  // With 20-tick slices, both ran several rounds already.
  EXPECT_GT(a->work_done_ticks(), 50.0);
  EXPECT_GT(b->work_done_ticks(), 50.0);
}

TEST(MachineConfigTest, ThrottleHysteresisWidensDutyCycle) {
  auto throttle_flips = [](double hysteresis) {
    MachineConfig config = BaseConfig();
    config.topology = CpuTopology(1, 1, 1);
    config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
    config.explicit_max_power_physical = 40.0;
    config.throttle_hysteresis_watts = hysteresis;
    config.throttling_enabled = true;
    config.sched = EnergySchedConfig::Baseline();
    Machine machine(config);
    const ProgramLibrary library(EnergyModel::Default());
    machine.Spawn(library.bitcnts());
    int flips = 0;
    bool last = false;
    for (int i = 0; i < 120'000; ++i) {
      machine.Step();
      const bool now = machine.PackageThrottled(0);
      if (now != last) {
        ++flips;
      }
      last = now;
    }
    return flips;
  };
  // A wider hysteresis band flips less often.
  EXPECT_GT(throttle_flips(0.2), throttle_flips(3.0));
}

TEST(MachineConfigTest, NoRespawnRetiresTask) {
  MachineConfig config = BaseConfig();
  config.respawn_completed = false;
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* task = machine.Spawn(library.short_hot());  // 500 ticks of work
  machine.Run(1'000);
  EXPECT_EQ(task->state(), TaskState::kFinished);
  EXPECT_EQ(task->completions(), 0);
  EXPECT_EQ(Machine::TaskCpu(*task), kInvalidCpu);
  // The CPU is free again.
  EXPECT_TRUE(machine.runqueue(task->cpu()).Idle());
}

TEST(MachineConfigTest, DeterministicAcrossRuns) {
  auto run = []() {
    MachineConfig config = BaseConfig();
    Machine machine(config);
    const ProgramLibrary library(EnergyModel::Default());
    machine.Spawn(library.bitcnts());
    machine.Spawn(library.openssl());
    machine.Run(20'000);
    return std::make_pair(machine.TotalWorkDone(), machine.TotalTaskEnergy());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(MachineConfigTest, SeedChangesStochasticPath) {
  auto run = [](std::uint64_t seed) {
    MachineConfig config = BaseConfig();
    config.seed = seed;
    Machine machine(config);
    const ProgramLibrary library(EnergyModel::Default());
    machine.Spawn(library.openssl());
    machine.Run(20'000);
    return machine.TotalTaskEnergy();
  };
  EXPECT_NE(run(1), run(2));
}

}  // namespace
}  // namespace eas
