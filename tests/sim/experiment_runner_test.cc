// ExperimentRunner: deterministic parallel sweeps - same seeds give
// bit-identical RunResults for any thread count - plus spec ordering and the
// seed-sweep helper.

#include "src/sim/experiment_runner.h"

#include <gtest/gtest.h>

#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

MachineConfig QuickConfig(std::uint64_t seed) {
  MachineConfig config;
  config.topology = CpuTopology(1, 2, 1);
  config.cooling = CoolingProfile::Uniform(2, ThermalParams{});
  config.explicit_max_power_physical = 60.0;
  config.estimator_weights = EnergyModel::Default().weights();
  config.seed = seed;
  return config;
}

std::vector<ExperimentSpec> MakeSpecs(const ProgramLibrary& library) {
  std::vector<ExperimentSpec> specs;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    ExperimentSpec spec;
    spec.name = "s" + std::to_string(seed);
    spec.config = QuickConfig(seed);
    // Alternate policy between specs so results differ visibly per slot.
    spec.config.sched =
        seed % 2 == 0 ? EnergySchedConfig::Baseline() : EnergySchedConfig::EnergyAware();
    spec.options.duration_ticks = 4'000;
    spec.options.sample_interval_ticks = 500;
    spec.workload = MixedWorkload(library, 1);
    specs.push_back(std::move(spec));
  }
  return specs;
}

void ExpectIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_DOUBLE_EQ(a.work_done_ticks, b.work_done_ticks);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.completions, b.completions);
  ASSERT_EQ(a.thermal_power.size(), b.thermal_power.size());
  for (std::size_t s = 0; s < a.thermal_power.size(); ++s) {
    const Series& sa = a.thermal_power.at(s);
    const Series& sb = b.thermal_power.at(s);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa.tick_at(i), sb.tick_at(i));
      EXPECT_DOUBLE_EQ(sa.value_at(i), sb.value_at(i));
    }
  }
}

TEST(ExperimentRunnerTest, ParallelSweepBitIdenticalToSerial) {
  const ProgramLibrary library(EnergyModel::Default());
  const std::vector<ExperimentSpec> specs = MakeSpecs(library);

  const std::vector<RunResult> serial = ExperimentRunner(1).RunAll(specs);
  const std::vector<RunResult> parallel = ExperimentRunner(4).RunAll(specs);

  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ExpectIdentical(serial[i], parallel[i]);
  }
}

TEST(ExperimentRunnerTest, RepeatedParallelRunsIdentical) {
  const ProgramLibrary library(EnergyModel::Default());
  const std::vector<ExperimentSpec> specs = MakeSpecs(library);
  const std::vector<RunResult> first = ExperimentRunner(3).RunAll(specs);
  const std::vector<RunResult> second = ExperimentRunner(3).RunAll(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ExpectIdentical(first[i], second[i]);
  }
}

TEST(ExperimentRunnerTest, ResultsKeepSpecOrder) {
  const ProgramLibrary library(EnergyModel::Default());
  // Distinguishable specs: different durations give different sample counts.
  std::vector<ExperimentSpec> specs;
  for (int i = 1; i <= 4; ++i) {
    ExperimentSpec spec;
    spec.name = "d" + std::to_string(i);
    spec.config = QuickConfig(7);
    spec.options.duration_ticks = static_cast<Tick>(i) * 1'000;
    spec.options.sample_interval_ticks = 100;
    spec.workload = std::vector<const Program*>{&library.bitcnts()};
    specs.push_back(std::move(spec));
  }
  const std::vector<RunResult> results = ExperimentRunner(4).RunAll(specs);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(i - 1)].duration_seconds,
                     static_cast<double>(i));
  }
}

TEST(ExperimentRunnerTest, EmptySweep) {
  EXPECT_TRUE(ExperimentRunner(4).RunAll({}).empty());
}

TEST(ExperimentRunnerTest, RunEachStreamsEverySpecExactlyOnce) {
  const ProgramLibrary library(EnergyModel::Default());
  const std::vector<ExperimentSpec> specs = MakeSpecs(library);
  const std::vector<RunResult> expected = ExperimentRunner(1).RunAll(specs);

  // Callback delivery is serialized by the runner, so plain containers are
  // safe to touch from it even with 4 workers.
  std::vector<bool> seen(specs.size(), false);
  std::vector<RunResult> streamed(specs.size());
  ExperimentRunner(4).RunEach(specs, [&](std::size_t i, RunResult&& result) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
    streamed[i] = std::move(result);
  });
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "spec " << i << " never streamed";
    ExpectIdentical(expected[i], streamed[i]);
  }
}

TEST(ExperimentRunnerTest, RunEachSkipsFailedSpecsAndRethrows) {
  const ProgramLibrary library(EnergyModel::Default());
  std::vector<ExperimentSpec> specs = MakeSpecs(library);
  specs[0].config.sched.balancer_name = "no_such_policy";  // spec 0 is energy-aware
  std::vector<std::size_t> delivered;
  EXPECT_THROW(ExperimentRunner(2).RunEach(
                   specs, [&](std::size_t i, RunResult&&) { delivered.push_back(i); }),
               std::invalid_argument);
  EXPECT_EQ(delivered.size(), specs.size() - 1);  // every healthy spec still ran
  for (std::size_t i : delivered) {
    EXPECT_NE(i, 0u);
  }
}

TEST(ExperimentRunnerTest, FailingSpecRethrownForAnyThreadCount) {
  const ProgramLibrary library(EnergyModel::Default());
  std::vector<ExperimentSpec> specs = MakeSpecs(library);
  specs[0].config.sched.balancer_name = "no_such_policy";  // spec 0 is energy-aware
  EXPECT_THROW(ExperimentRunner(1).RunAll(specs), std::invalid_argument);
  EXPECT_THROW(ExperimentRunner(4).RunAll(specs), std::invalid_argument);
}

TEST(ExperimentRunnerTest, ZeroThreadsPicksHardwareConcurrency) {
  EXPECT_GE(ExperimentRunner(0).num_threads(), 1u);
}

TEST(ExperimentRunnerTest, SeedSweepExpandsSeeds) {
  ExperimentSpec base;
  base.name = "base";
  base.config = QuickConfig(100);
  const std::vector<ExperimentSpec> specs = ExperimentRunner::SeedSweep(base, 3);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].config.seed, 100u);
  EXPECT_EQ(specs[1].config.seed, 101u);
  EXPECT_EQ(specs[2].config.seed, 102u);
  EXPECT_EQ(specs[0].name, "base/seed100");
  EXPECT_EQ(specs[2].name, "base/seed102");
}

}  // namespace
}  // namespace eas
