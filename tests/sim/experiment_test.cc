#include "src/sim/experiment.h"

#include <gtest/gtest.h>

#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

MachineConfig QuickConfig() {
  MachineConfig config;
  config.topology = CpuTopology(1, 2, 1);
  config.cooling = CoolingProfile::Uniform(2, ThermalParams{});
  config.explicit_max_power_physical = 60.0;
  config.estimator_weights = EnergyModel::Default().weights();
  return config;
}

TEST(ExperimentTest, CollectsThermalSeriesPerCpu) {
  ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 2'000;
  options.sample_interval_ticks = 100;
  Experiment experiment(QuickConfig(), options);
  const RunResult result = experiment.Run({&library.bitcnts()});
  EXPECT_EQ(result.thermal_power.size(), 2u);
  EXPECT_EQ(result.temperature.size(), 2u);
  EXPECT_EQ(result.thermal_power.at(0).size(), 20u);
  EXPECT_DOUBLE_EQ(result.duration_seconds, 2.0);
}

TEST(ExperimentTest, SecondRunArrivalsAreRelativeToRunStart) {
  // The machine keeps its tick counter across Run calls; a second run's
  // mid-run arrivals must still fire relative to that run's start, and
  // arrivals at or past the duration must not leak into later runs.
  ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 1'000;
  Experiment experiment(QuickConfig(), options);

  Workload first;
  first.Add(library.bitcnts());
  first.Add(library.memrw(), /*tick=*/5'000);  // past the duration: never spawns
  experiment.Run(first);
  EXPECT_EQ(experiment.machine().tasks().size(), 1u);

  Workload second;
  second.Add(library.memrw(), /*tick=*/100);  // run-relative, not absolute
  experiment.Run(second);
  EXPECT_EQ(experiment.machine().now(), 2'000);
  ASSERT_EQ(experiment.machine().tasks().size(), 2u);
  // Spawned 100 ticks into the second run: it missed 1'100 of the 2'000
  // ticks the machine has seen, so its work is well short of a full-run
  // task's but clearly nonzero.
  EXPECT_GT(experiment.machine().tasks()[1]->work_done_ticks(), 0.0);
  EXPECT_LT(experiment.machine().tasks()[1]->work_done_ticks(), 901.0);
}

TEST(ExperimentTest, RecordsTaskCpuTraceWhenAsked) {
  ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 1'000;
  options.sample_interval_ticks = 100;
  options.record_task_cpu = true;
  Experiment experiment(QuickConfig(), options);
  const RunResult result = experiment.Run({&library.bitcnts(), &library.memrw()});
  EXPECT_EQ(result.task_cpu.size(), 2u);
  EXPECT_GT(result.task_cpu.at(0).size(), 0u);
}

TEST(ExperimentTest, ThroughputPositiveForBusyRun) {
  ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 5'000;
  Experiment experiment(QuickConfig(), options);
  const RunResult result = experiment.Run(MixedWorkload(library, 1));
  EXPECT_GT(result.Throughput(), 0.0);
  EXPECT_GT(result.work_done_ticks, 0.0);
}

TEST(ExperimentTest, ThroughputIncreaseComputation) {
  RunResult base;
  base.work_done_ticks = 100.0;
  base.duration_seconds = 1.0;
  RunResult test;
  test.work_done_ticks = 105.0;
  test.duration_seconds = 1.0;
  EXPECT_NEAR(ThroughputIncrease(base, test), 0.05, 1e-12);
}

TEST(ExperimentTest, ThroughputIncreaseZeroBaseline) {
  RunResult base;
  RunResult test;
  test.work_done_ticks = 10.0;
  test.duration_seconds = 1.0;
  EXPECT_DOUBLE_EQ(ThroughputIncrease(base, test), 0.0);
}

TEST(ExperimentTest, ThroughputIncreaseZeroWorkBaseline) {
  // A baseline that ran (positive duration) but did no work also divides by
  // zero throughput; the defined result is 0.0, not inf/NaN.
  RunResult base;
  base.work_done_ticks = 0.0;
  base.duration_seconds = 5.0;
  RunResult test;
  test.work_done_ticks = 10.0;
  test.duration_seconds = 5.0;
  EXPECT_DOUBLE_EQ(ThroughputIncrease(base, test), 0.0);
  EXPECT_DOUBLE_EQ(ThroughputIncrease(base, base), 0.0);
}

TEST(ExperimentTest, ThrottledFractionsCollected) {
  ProgramLibrary library(EnergyModel::Default());
  MachineConfig config = QuickConfig();
  config.throttling_enabled = true;
  config.explicit_max_power_physical = 40.0;
  config.sched = EnergySchedConfig::Baseline();
  Experiment::Options options;
  options.duration_ticks = 60'000;
  Experiment experiment(config, options);
  const RunResult result = experiment.Run({&library.bitcnts(), &library.bitcnts()});
  ASSERT_EQ(result.throttled_fraction.size(), 2u);
  EXPECT_GT(result.AverageThrottledFraction(), 0.05);
}

TEST(ExperimentTest, ZeroDemandCpuReportsPackageHaltFraction) {
  // Regression: a CPU whose runqueue never held a runnable task used to
  // report 0.0 throttled even while the hlt gate halted its package every
  // tick (the per-logical counter only counts "halt blocked my task"
  // ticks). Such a CPU now reports its package's halt fraction, so
  // per-package halting stays visible on all-sleeper packages.
  ProgramLibrary library(EnergyModel::Default());
  MachineConfig config = QuickConfig();  // two single-thread packages
  config.throttling_enabled = true;
  // Below the 13.6 W idle power: every package halts from the first tick
  // and, with nothing ever executing, never cools below the release margin.
  config.explicit_max_power_physical = 10.0;
  config.sched = EnergySchedConfig::Baseline();
  Experiment::Options options;
  options.duration_ticks = 2'000;
  Experiment experiment(config, options);
  // One task: it occupies one package; the other has zero demand all run.
  const RunResult result = experiment.Run({&library.bitcnts()});

  ASSERT_EQ(result.throttled_fraction.size(), 2u);
  const int busy_cpu = SimulationState::TaskCpu(*experiment.machine().tasks()[0]);
  ASSERT_GE(busy_cpu, 0);
  const int idle_cpu = 1 - busy_cpu;
  // The busy CPU's task was blocked every tick; the idle CPU reports the
  // package duty cycle (also 1.0 here), not the old misleading 0.0.
  EXPECT_DOUBLE_EQ(result.throttled_fraction[static_cast<std::size_t>(busy_cpu)], 1.0);
  EXPECT_DOUBLE_EQ(result.throttled_fraction[static_cast<std::size_t>(idle_cpu)], 1.0);
  EXPECT_DOUBLE_EQ(result.AverageThrottledFraction(), 1.0);
}

TEST(ExperimentTest, ThrottlingDisabledReportsZeroFractions) {
  // With the gate disarmed neither the demand path nor the package fallback
  // may invent throttling.
  ProgramLibrary library(EnergyModel::Default());
  MachineConfig config = QuickConfig();
  config.throttling_enabled = false;
  Experiment::Options options;
  options.duration_ticks = 1'000;
  Experiment experiment(config, options);
  const RunResult result = experiment.Run({&library.bitcnts()});
  for (double fraction : result.throttled_fraction) {
    EXPECT_DOUBLE_EQ(fraction, 0.0);
  }
}

TEST(ExperimentTest, SpreadAfterSkipsTransient) {
  RunResult result;
  Series& a = result.thermal_power.Create("a");
  Series& b = result.thermal_power.Create("b");
  // Huge spread early, small late.
  a.Add(0, 10.0);
  b.Add(0, 60.0);
  a.Add(1'000, 40.0);
  b.Add(1'000, 42.0);
  EXPECT_NEAR(result.MaxThermalSpreadAfter(500), 2.0, 1e-9);
  EXPECT_NEAR(result.MaxThermalSpreadAfter(0), 50.0, 1e-9);
}

}  // namespace
}  // namespace eas
