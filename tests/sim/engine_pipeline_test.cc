// SimulationEngine pipeline ordering: the phase decomposition must preserve
// the semantics of the original monolithic Machine::Step. ManualStep below
// is a line-for-line port of that pre-refactor tick (wakeups -> per-package
// throttle decision, switch-in, execution with fused energy accounting,
// idle-share accounting, true power + RC step, lifecycle -> balancers ->
// tick advance); driving a twin state through it must stay bit-identical to
// the engine for every tick.

#include "src/sim/simulation_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/policy_registry.h"
#include "src/sim/machine.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

// The pre-refactor Machine::Step, expressed over SimulationState.
class ManualStepper {
 public:
  explicit ManualStepper(const EnergySchedConfig& sched)
      : policy_(BalancePolicyRegistry::Global().CreateOrThrow(EffectiveBalancerName(sched),
                                                              sched)),
        hot_migrator_(sched.hot_migration) {}

  void Step(SimulationState& s) {
    const MachineConfig& config = s.config();
    // Wake sleepers.
    for (const auto& task : s.tasks()) {
      if (task->state() == TaskState::kSleeping && task->wake_tick() <= s.now()) {
        s.runqueue(task->cpu()).EnqueueFront(task);
      }
    }

    // Execute CPUs, package by package.
    const std::size_t physical = config.topology.num_physical();
    const std::size_t siblings = config.topology.smt_per_physical();
    const double static_share = s.estimator().static_power_per_logical();
    const double idle_share = s.IdlePowerPerLogical();

    for (std::size_t phys = 0; phys < physical; ++phys) {
      bool throttled = false;
      if (config.throttling_enabled) {
        double thermal_sum = 0.0;
        for (std::size_t t = 0; t < siblings; ++t) {
          thermal_sum += s.ThermalPower(config.topology.LogicalId(phys, t));
        }
        throttled =
            s.package_throttle(phys).ShouldThrottle(thermal_sum, s.MaxPowerPhysical(phys));
        s.package_throttle(phys).AccountTick(throttled);
      }

      std::vector<int> active;
      for (std::size_t t = 0; t < siblings; ++t) {
        const int cpu = config.topology.LogicalId(phys, t);
        s.SwitchInIfIdle(cpu);
        const bool wants_to_run = s.runqueue(cpu).current() != nullptr;
        if (config.throttling_enabled) {
          s.throttle(cpu).AccountTick(throttled && wants_to_run);
        }
        if (wants_to_run && !throttled) {
          active.push_back(cpu);
        }
      }

      const double corun_speed = active.size() >= 2 ? config.smt_corun_speed : 1.0;
      double true_dynamic = 0.0;
      for (int cpu : active) {
        Task* task = s.runqueue(cpu).current();
        double speed = corun_speed;
        if (task->warmup_ticks_left() > 0) {
          speed *= config.warmup_speed;
        }
        const EventVector events = task->ExecuteTick(speed);
        s.counters(cpu).Accumulate(events);
        true_dynamic += config.model.DynamicEnergy(events);
        const double estimated =
            s.estimator().EstimateDynamicEnergy(events) + static_share * kTickSeconds;
        task->AccumulateEnergy(estimated);
        task->AccountActiveTick();
        task->TickTimeslice();
        s.power_state(cpu).AccountEnergy(estimated, kTickSeconds);
      }

      for (std::size_t t = 0; t < siblings; ++t) {
        const int cpu = config.topology.LogicalId(phys, t);
        bool is_active = false;
        for (int a : active) {
          if (a == cpu) {
            is_active = true;
          }
        }
        if (!is_active) {
          s.power_state(cpu).AccountEnergy(idle_share * kTickSeconds, kTickSeconds);
        }
      }

      const double n_active = static_cast<double>(active.size());
      const double n_total = static_cast<double>(siblings);
      const double static_true =
          active.empty()
              ? config.model.halt_power()
              : config.model.active_base_power() * (n_active / n_total) +
                    config.model.halt_power() * ((n_total - n_active) / n_total);
      const double true_power = static_true + true_dynamic / kTickSeconds;
      s.set_true_power(phys, true_power);
      s.thermal(phys).Step(true_power, kTickSeconds);

      for (int cpu : active) {
        Lifecycle(s, cpu);
      }
    }

    // Balancers.
    const std::size_t logical = config.topology.num_logical();
    for (std::size_t i = 0; i < logical; ++i) {
      const int cpu = static_cast<int>(i);
      const Tick stagger = static_cast<Tick>(i) * 17;
      const bool idle = s.runqueue(cpu).Idle();
      const Tick interval = idle ? config.sched.idle_balance_interval_ticks
                                 : config.sched.balance_interval_ticks;
      if ((s.now() + stagger) % interval == 0) {
        policy_->Balance(cpu, s);
      }
      if (config.sched.hot_task_migration &&
          (s.now() + stagger) % config.sched.hot_check_interval_ticks == 0) {
        hot_migrator_.Check(cpu, s);
      }
    }

    s.AdvanceTick();
  }

 private:
  void Lifecycle(SimulationState& s, int cpu) {
    const MachineConfig& config = s.config();
    Runqueue& rq = s.runqueue(cpu);
    Task* task = rq.current();
    if (task == nullptr) {
      return;
    }
    const Tick sleep = task->TakePendingSleep();
    if (sleep > 0) {
      s.CommitPeriod(*task);
      rq.TakeCurrent();
      task->set_state(TaskState::kSleeping);
      task->set_wake_tick(s.now() + sleep);
      return;
    }
    if (task->WorkComplete()) {
      s.CommitPeriod(*task);
      if (config.respawn_completed) {
        task->RestartProgram();
        rq.TakeCurrent();
        const int cpu_new = s.PlaceTask(*task);
        task->set_timeslice_left(Task::TimesliceForNice(task->nice(), config.timeslice_ticks));
        s.runqueue(cpu_new).Enqueue(task);
      } else {
        rq.TakeCurrent();
        task->set_state(TaskState::kFinished);
      }
      return;
    }
    if (task->timeslice_left() <= 0) {
      s.CommitPeriod(*task);
      task->set_timeslice_left(Task::TimesliceForNice(task->nice(), config.timeslice_ticks));
      if (rq.nr_queued() > 0) {
        rq.TakeCurrent();
        rq.Enqueue(task);
      }
    }
  }

  std::unique_ptr<BalancePolicy> policy_;
  HotTaskMigrator hot_migrator_;
};

void ExpectStatesBitIdentical(SimulationState& a, SimulationState& b) {
  ASSERT_EQ(a.now(), b.now());
  EXPECT_EQ(a.migration_count(), b.migration_count());
  EXPECT_EQ(a.TotalWorkDone(), b.TotalWorkDone());
  EXPECT_EQ(a.TotalTaskEnergy(), b.TotalTaskEnergy());
  EXPECT_EQ(a.TotalCompletions(), b.TotalCompletions());
  for (std::size_t cpu = 0; cpu < a.num_cpus(); ++cpu) {
    const int c = static_cast<int>(cpu);
    EXPECT_EQ(a.ThermalPower(c), b.ThermalPower(c)) << "cpu " << cpu;
    EXPECT_EQ(a.RunqueuePower(c), b.RunqueuePower(c)) << "cpu " << cpu;
    EXPECT_EQ(a.throttle(c).ThrottledFraction(), b.throttle(c).ThrottledFraction());
    EXPECT_EQ(a.runqueue(c).nr_running(), b.runqueue(c).nr_running());
  }
  for (std::size_t phys = 0; phys < a.num_physical(); ++phys) {
    EXPECT_EQ(a.Temperature(phys), b.Temperature(phys)) << "phys " << phys;
    EXPECT_EQ(a.TruePower(phys), b.TruePower(phys)) << "phys " << phys;
  }
  ASSERT_EQ(a.tasks().size(), b.tasks().size());
  for (std::size_t i = 0; i < a.tasks().size(); ++i) {
    const Task& ta = *a.tasks()[i];
    const Task& tb = *b.tasks()[i];
    EXPECT_EQ(ta.state(), tb.state());
    EXPECT_EQ(SimulationState::TaskCpu(ta), SimulationState::TaskCpu(tb));
    EXPECT_EQ(ta.work_done_ticks(), tb.work_done_ticks());
    EXPECT_EQ(ta.total_energy(), tb.total_energy());
    EXPECT_EQ(ta.profile().power(), tb.profile().power());
    EXPECT_EQ(ta.migrations(), tb.migrations());
  }
}

MachineConfig PipelineConfig(bool smt, bool throttling, EnergySchedConfig sched) {
  MachineConfig config;
  config.topology = smt ? CpuTopology(1, 2, 2) : CpuTopology(2, 2, 1);
  config.cooling = CoolingProfile::Uniform(config.topology.num_physical(), ThermalParams{});
  config.explicit_max_power_physical = throttling ? 40.0 : 200.0;
  config.throttling_enabled = throttling;
  config.estimator_weights = EnergyModel::Default().weights();
  config.sched = sched;
  config.seed = 7;
  return config;
}

void RunEquivalence(const MachineConfig& config, Tick ticks) {
  SimulationState engine_state(config);
  SimulationState manual_state(config);
  SimulationEngine engine(config.sched);
  ManualStepper manual(config.sched);

  const ProgramLibrary library(EnergyModel::Default());
  for (const Program* program : MixedWorkload(library, 1)) {
    engine_state.Spawn(*program, 0);
    manual_state.Spawn(*program, 0);
  }

  for (Tick t = 0; t < ticks; ++t) {
    engine.Tick(engine_state);
    manual.Step(manual_state);
  }
  ExpectStatesBitIdentical(engine_state, manual_state);
}

TEST(EnginePipelineTest, MatchesMonolithicStepEnergyAware) {
  RunEquivalence(PipelineConfig(false, false, EnergySchedConfig::EnergyAware()), 10'000);
}

TEST(EnginePipelineTest, MatchesMonolithicStepSmtThrottled) {
  RunEquivalence(PipelineConfig(true, true, EnergySchedConfig::EnergyAware()), 10'000);
}

TEST(EnginePipelineTest, MatchesMonolithicStepBaseline) {
  RunEquivalence(PipelineConfig(false, true, EnergySchedConfig::Baseline()), 10'000);
}

TEST(EnginePipelineTest, MatchesMonolithicStepNaivePolicies) {
  EnergySchedConfig sched;
  sched.balancer_kind = BalancerKind::kPowerOnly;
  RunEquivalence(PipelineConfig(false, false, sched), 5'000);
  sched.balancer_kind = BalancerKind::kTemperatureOnly;
  RunEquivalence(PipelineConfig(true, false, sched), 5'000);
}

// Observers fire after the tick counter advances, once per tick, in
// registration order.
class RecordingObserver : public TickObserver {
 public:
  void OnTick(const SimulationState& state) override { seen.push_back(state.now()); }
  std::vector<Tick> seen;
};

TEST(EnginePipelineTest, ObserversSeeAdvancedTick) {
  MachineConfig config = PipelineConfig(false, false, EnergySchedConfig::EnergyAware());
  Machine machine(config);
  RecordingObserver observer;
  machine.engine().AddObserver(&observer);
  machine.Run(3);
  machine.engine().RemoveObserver(&observer);
  machine.Run(2);
  ASSERT_EQ(observer.seen.size(), 3u);
  EXPECT_EQ(observer.seen[0], 1);
  EXPECT_EQ(observer.seen[1], 2);
  EXPECT_EQ(observer.seen[2], 3);
  EXPECT_EQ(machine.now(), 5);
}

}  // namespace
}  // namespace eas
