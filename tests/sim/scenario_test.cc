// ScenarioRegistry: built-in catalogue, lookup/unknown-name behaviour, and
// end-to-end determinism of scenarios through the parallel runner.

#include "src/sim/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eas {
namespace {

TEST(ScenarioRegistryTest, GlobalHasAtLeastSixBuiltins) {
  const std::vector<std::string> names = ScenarioRegistry::Global().Names();
  EXPECT_GE(names.size(), 6u);
  for (const char* required :
       {"paper-mixed", "paper-homogeneous", "paper-hot-task", "short-tasks", "phase-shift",
        "poisson-open-loop", "server-consolidation", "trace-replay"}) {
    EXPECT_TRUE(ScenarioRegistry::Global().Contains(required)) << required;
  }
}

TEST(ScenarioRegistryTest, ListIsSortedWithDescriptions) {
  const auto infos = ScenarioRegistry::Global().List();
  ASSERT_GE(infos.size(), 6u);
  for (std::size_t i = 0; i < infos.size(); ++i) {
    EXPECT_FALSE(infos[i].description.empty()) << infos[i].name;
    if (i > 0) {
      EXPECT_LT(infos[i - 1].name, infos[i].name);
    }
  }
}

TEST(ScenarioRegistryTest, UnknownNameThrowsListingKnown) {
  try {
    ScenarioRegistry::Global().BuildOrThrow("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos);
    EXPECT_NE(what.find("paper-mixed"), std::string::npos);
  }
}

TEST(ScenarioRegistryTest, RegisterRejectsDuplicates) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Register("x", "first", [] { return ScenarioSpec{}; }));
  EXPECT_FALSE(registry.Register("x", "second", [] { return ScenarioSpec{}; }));
  ASSERT_EQ(registry.List().size(), 1u);
  EXPECT_EQ(registry.List()[0].description, "first");
}

TEST(ScenarioRegistryTest, BuildStampsTheRegisteredName) {
  const ScenarioSpec spec = ScenarioRegistry::Global().BuildOrThrow("paper-mixed");
  EXPECT_EQ(spec.name, "paper-mixed");
  EXPECT_FALSE(spec.description.empty());
}

TEST(ScenarioRegistryTest, EveryBuiltinBuildsANonEmptyWorkload) {
  for (const std::string& name : ScenarioRegistry::Global().Names()) {
    const ScenarioSpec spec = ScenarioRegistry::Global().BuildOrThrow(name);
    EXPECT_FALSE(spec.workload.empty()) << name;
    EXPECT_GE(spec.config.topology.num_logical(), 1u) << name;
    for (const TaskArrival& arrival : spec.workload.arrivals()) {
      ASSERT_NE(arrival.program, nullptr) << name;
    }
  }
}

TEST(ScenarioRegistryTest, FactoriesAreDeterministic) {
  // Two builds of the same scenario must produce identical arrival
  // schedules (same ticks, same program names) - scenario workloads carry
  // their randomness in explicit seeds.
  for (const std::string& name : ScenarioRegistry::Global().Names()) {
    const ScenarioSpec a = ScenarioRegistry::Global().BuildOrThrow(name);
    const ScenarioSpec b = ScenarioRegistry::Global().BuildOrThrow(name);
    ASSERT_EQ(a.workload.size(), b.workload.size()) << name;
    for (std::size_t i = 0; i < a.workload.arrivals().size(); ++i) {
      const TaskArrival& ta = a.workload.arrivals()[i];
      const TaskArrival& tb = b.workload.arrivals()[i];
      EXPECT_EQ(ta.tick, tb.tick) << name;
      EXPECT_EQ(ta.program->name(), tb.program->name()) << name;
      EXPECT_EQ(ta.nice, tb.nice) << name;
    }
  }
}

void ExpectIdentical(const RunResult& a, const RunResult& b, const std::string& label) {
  EXPECT_DOUBLE_EQ(a.work_done_ticks, b.work_done_ticks) << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.completions, b.completions) << label;
  ASSERT_EQ(a.thermal_power.size(), b.thermal_power.size()) << label;
  for (std::size_t s = 0; s < a.thermal_power.size(); ++s) {
    const Series& sa = a.thermal_power.at(s);
    const Series& sb = b.thermal_power.at(s);
    ASSERT_EQ(sa.size(), sb.size()) << label;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_DOUBLE_EQ(sa.value_at(i), sb.value_at(i)) << label;
    }
  }
}

TEST(ScenarioRunTest, AllScenariosDeterministicAcrossThreadCounts) {
  // Every built-in scenario, shortened, through the runner at 1 vs 4
  // threads: results must be bit-identical per spec.
  std::vector<ExperimentSpec> specs;
  for (const std::string& name : ScenarioRegistry::Global().Names()) {
    ExperimentSpec spec = ScenarioRegistry::Global().BuildOrThrow(name).ToExperimentSpec();
    spec.options.duration_ticks = 3'000;
    spec.options.sample_interval_ticks = 500;
    // Oracle weights skip the calibration phase to keep the test fast.
    spec.config.estimator_weights = EnergyModel::Default().weights();
    specs.push_back(std::move(spec));
  }
  const std::vector<RunResult> serial = ExperimentRunner(1).RunAll(specs);
  const std::vector<RunResult> parallel = ExperimentRunner(4).RunAll(specs);
  ASSERT_EQ(serial.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ExpectIdentical(serial[i], parallel[i], specs[i].name);
  }
}

TEST(ScenarioRunTest, MidRunArrivalsSpawnTasks) {
  // The trace-replay scenario injects tasks after tick 0; shortening the run
  // below the first mid-run arrival must reduce the spawned task count.
  ScenarioSpec scenario = ScenarioRegistry::Global().BuildOrThrow("trace-replay");
  scenario.config.estimator_weights = EnergyModel::Default().weights();
  const std::size_t initial = scenario.workload.InitialTasks();
  ASSERT_LT(initial, scenario.workload.size());

  scenario.options.duration_ticks = 61'000;  // past the first bitcnts wave
  Experiment experiment(scenario.config, scenario.options);
  experiment.Run(scenario.workload);
  EXPECT_GT(experiment.machine().tasks().size(), initial);
  EXPECT_LT(experiment.machine().tasks().size(), scenario.workload.size());

  // Boundary: an arrival at exactly the end tick never spawns.
  scenario.options.duration_ticks = 60'000;  // == the first wave's tick
  Experiment boundary(scenario.config, scenario.options);
  boundary.Run(scenario.workload);
  EXPECT_EQ(boundary.machine().tasks().size(), initial);
}

}  // namespace
}  // namespace eas
