// MetricRegistry: the scalar schema's naming, ordering and formatting, the
// governed-columns presence rule, and extensibility through a private
// registry.

#include "src/sim/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace eas {
namespace {

RunResult SampleResult(bool governed) {
  RunResult result;
  result.migrations = 3;
  result.completions = 1;
  result.work_done_ticks = 1234.5;
  result.duration_seconds = 2.0;
  result.throttled_fraction = {0.5};
  if (governed) {
    result.average_frequency = {0.9};
    result.pstate_residency = {{0.25, 0.75}};
  }
  return result;
}

std::vector<std::string> Names(const std::vector<MetricValue>& metrics) {
  std::vector<std::string> names;
  for (const MetricValue& metric : metrics) {
    names.push_back(metric.name);
  }
  return names;
}

TEST(MetricRegistryTest, ScalarsKeepTheHistoricalSummaryOrder) {
  const std::vector<std::string> names =
      Names(MetricRegistry::Global().Scalars(SampleResult(false)));
  const std::vector<std::string> expected = {
      "migrations",       "completions", "work_done_ticks", "duration_seconds",
      "throughput",       "avg_throttled_fraction", "throttled_fraction_cpu0"};
  EXPECT_EQ(names, expected);
}

TEST(MetricRegistryTest, GovernedRunsGrowTheDvfsColumns) {
  const std::vector<std::string> names =
      Names(MetricRegistry::Global().Scalars(SampleResult(true)));
  const std::vector<std::string> expected = {
      "migrations",          "completions",   "work_done_ticks",
      "duration_seconds",    "throughput",    "avg_throttled_fraction",
      "throttled_fraction_cpu0", "avg_frequency_cpu0", "pstate_residency_cpu0_p0",
      "pstate_residency_cpu0_p1"};
  EXPECT_EQ(names, expected);
}

TEST(MetricRegistryTest, FormatMatchesTheHistoricalCsvRendering) {
  const std::vector<MetricValue> metrics =
      MetricRegistry::Global().Scalars(SampleResult(false));
  // migrations: integral, no decimals; work_done_ticks %.1f;
  // duration_seconds %.3f; throughput %.2f; fractions %.4f.
  EXPECT_EQ(FormatMetricValue(metrics[0]), "3");
  EXPECT_EQ(FormatMetricValue(metrics[2]), "1234.5");
  EXPECT_EQ(FormatMetricValue(metrics[3]), "2.000");
  EXPECT_EQ(FormatMetricValue(metrics[4]), "617.25");
  EXPECT_EQ(FormatMetricValue(metrics[6]), "0.5000");
}

TEST(MetricRegistryTest, SeriesColumnsExposeEveryTraceFamily) {
  const auto series = MetricRegistry::Global().Series();
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0].name, "thermal_power");
  EXPECT_EQ(series[3].name, "frequency");

  RunResult result = SampleResult(false);
  result.thermal_power.Create("cpu0").Add(0, 1.0);
  EXPECT_EQ(series[0].series(result).size(), 1u);
  EXPECT_EQ(series[3].series(result).size(), 0u);  // ungoverned: no frequency trace
}

TEST(MetricRegistryTest, PrivateRegistriesExtendTheSchema) {
  MetricRegistry registry;
  RegisterBuiltinMetrics(registry);
  registry.RegisterScalar("peak_thermal_w",
                          [](const RunResult& r, std::vector<MetricValue>& out) {
                            MetricValue metric;
                            metric.name = "peak_thermal_w";
                            metric.value = r.thermal_power.MaxValue();
                            metric.precision = 2;
                            out.push_back(metric);
                          });
  RunResult result = SampleResult(false);
  result.thermal_power.Create("cpu0").Add(0, 61.25);
  const std::vector<MetricValue> metrics = registry.Scalars(result);
  ASSERT_FALSE(metrics.empty());
  EXPECT_EQ(metrics.back().name, "peak_thermal_w");
  EXPECT_EQ(FormatMetricValue(metrics.back()), "61.25");
  // The global schema is untouched by the private registration.
  const auto global = Names(MetricRegistry::Global().Scalars(result));
  EXPECT_EQ(global.back(), "throttled_fraction_cpu0");
}

}  // namespace
}  // namespace eas
