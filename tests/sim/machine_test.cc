#include "src/sim/machine.h"

#include <gtest/gtest.h>

#include "src/workloads/programs.h"

namespace eas {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.topology = CpuTopology(1, 2, 1);
  ThermalParams params;
  params.resistance = 0.3;
  params.capacitance = 40.0;
  config.cooling = CoolingProfile::Uniform(2, params);
  // Generous power budget: these tests exercise mechanics, not policies
  // (bitcnts at 61 W must not trip hot task migration or throttling).
  config.explicit_max_power_physical = 120.0;
  config.sched = EnergySchedConfig::EnergyAware();
  config.estimator_weights = EnergyModel::Default().weights();  // oracle
  return config;
}

class MachineTest : public ::testing::Test {
 protected:
  MachineTest() : library_(EnergyModel::Default()) {}
  ProgramLibrary library_;
};

TEST_F(MachineTest, StartsIdle) {
  Machine machine(SmallConfig());
  EXPECT_EQ(machine.now(), 0);
  EXPECT_EQ(machine.num_cpus(), 2u);
  for (std::size_t phys = 0; phys < machine.num_physical(); ++phys) {
    EXPECT_DOUBLE_EQ(machine.Temperature(phys), 22.0);
  }
}

TEST_F(MachineTest, IdleMachineBurnsHaltPower) {
  Machine machine(SmallConfig());
  machine.Run(100);
  for (std::size_t phys = 0; phys < machine.num_physical(); ++phys) {
    EXPECT_NEAR(machine.TruePower(phys), 13.6, 1e-9);
  }
}

TEST_F(MachineTest, SpawnedTaskRuns) {
  Machine machine(SmallConfig());
  Task* task = machine.Spawn(library_.bitcnts());
  machine.Run(1000);
  EXPECT_GT(task->work_done_ticks(), 900.0);
  EXPECT_EQ(task->state(), TaskState::kRunning);
}

TEST_F(MachineTest, RunningBitcntsReachesNominalPower) {
  Machine machine(SmallConfig());
  Task* task = machine.Spawn(library_.bitcnts());
  machine.Run(5'000);
  const std::size_t phys = machine.config().topology.PhysicalOf(task->cpu());
  EXPECT_NEAR(machine.TruePower(phys), 61.0, 2.0);
  // Profile converges to ~61 W too (estimated via counters).
  EXPECT_NEAR(task->profile().power(), 61.0, 2.0);
}

TEST_F(MachineTest, TemperatureRisesUnderLoad) {
  Machine machine(SmallConfig());
  Task* task = machine.Spawn(library_.bitcnts());
  machine.Run(60'000);  // 60 s >> tau = 12 s
  const std::size_t phys = machine.config().topology.PhysicalOf(task->cpu());
  // Steady state: 22 + 0.3 * 61 = 40.3 C.
  EXPECT_NEAR(machine.Temperature(phys), 40.3, 1.0);
}

TEST_F(MachineTest, ThermalPowerTracksConsumption) {
  Machine machine(SmallConfig());
  Task* task = machine.Spawn(library_.bitcnts());
  machine.Run(60'000);
  EXPECT_NEAR(machine.ThermalPower(task->cpu()), 61.0, 2.5);
}

TEST_F(MachineTest, TwoTasksShareOneCpuViaTimeslices) {
  MachineConfig config = SmallConfig();
  config.topology = CpuTopology(1, 1, 1);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  Machine machine(config);
  Task* a = machine.Spawn(library_.bitcnts());
  Task* b = machine.Spawn(library_.memrw());
  machine.Run(10'000);
  // Both made roughly equal progress (fair round robin).
  EXPECT_NEAR(a->work_done_ticks(), b->work_done_ticks(), 600.0);
  EXPECT_NEAR(a->work_done_ticks() + b->work_done_ticks(), 10'000.0, 50.0);
}

TEST_F(MachineTest, PlacementSpreadsTasks) {
  Machine machine(SmallConfig());
  machine.Spawn(library_.bitcnts());
  machine.Spawn(library_.memrw());
  EXPECT_EQ(machine.runqueue(0).nr_running(), 1u);
  EXPECT_EQ(machine.runqueue(1).nr_running(), 1u);
}

TEST_F(MachineTest, BlockingTaskSleepsAndWakes) {
  MachineConfig config = SmallConfig();
  Machine machine(config);
  Task* task = machine.Spawn(library_.bash());
  bool slept = false;
  for (int i = 0; i < 2'000; ++i) {
    machine.Step();
    if (task->state() == TaskState::kSleeping) {
      slept = true;
    }
  }
  EXPECT_TRUE(slept);
  EXPECT_GT(task->work_done_ticks(), 0.0);
  // It must have woken again at some point (still making progress).
  const double before = task->work_done_ticks();
  machine.Run(2'000);
  EXPECT_GT(task->work_done_ticks(), before);
}

TEST_F(MachineTest, CompletionRespawnsAndCounts) {
  MachineConfig config = SmallConfig();
  Machine machine(config);
  ProgramLibrary short_library(EnergyModel::Default());
  Task* task = machine.Spawn(short_library.short_hot());  // 500 ticks of work
  machine.Run(2'000);
  EXPECT_GE(task->completions(), 1);
  EXPECT_GE(machine.TotalCompletions(), 1);
}

TEST_F(MachineTest, MigrateTaskMovesQueuedTask) {
  Machine machine(SmallConfig());
  machine.Spawn(library_.bitcnts());
  machine.Spawn(library_.memrw());
  machine.Run(5);
  // Move cpu1's current? No: enqueue an extra task on 0 and move it.
  Task* extra = machine.Spawn(library_.aluadd());
  const int from = extra->cpu();
  const int to = 1 - from;
  EXPECT_TRUE(machine.MigrateTask(extra, from, to));
  EXPECT_EQ(extra->cpu(), to);
  EXPECT_EQ(machine.migration_count(), 1);
  EXPECT_GT(extra->warmup_ticks_left(), 0);
}

TEST_F(MachineTest, MigrateCurrentTaskCommitsPeriod) {
  Machine machine(SmallConfig());
  Task* task = machine.Spawn(library_.bitcnts());
  machine.Run(50);  // mid-timeslice
  ASSERT_EQ(machine.runqueue(task->cpu()).current(), task);
  const int from = task->cpu();
  const int to = 1 - from;
  EXPECT_TRUE(machine.MigrateTask(task, from, to));
  EXPECT_EQ(task->period_ticks(), 0);  // period was committed
  EXPECT_TRUE(machine.runqueue(from).Idle());
  EXPECT_EQ(machine.runqueue(to).nr_running(), 1u);
}

TEST_F(MachineTest, BinaryRegistryLearnsFirstTimeslice) {
  Machine machine(SmallConfig());
  machine.Spawn(library_.bitcnts());
  machine.Run(500);
  EXPECT_TRUE(machine.binary_registry().Knows(kBinBitcnts));
  EXPECT_NEAR(machine.binary_registry().InitialPowerFor(kBinBitcnts), 61.0, 3.0);
}

TEST_F(MachineTest, SmtCoRunSlowsProgress) {
  MachineConfig config = SmallConfig();
  config.topology = CpuTopology(1, 1, 2);  // one package, two threads
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  Machine machine(config);
  Task* a = machine.Spawn(library_.bitcnts());
  Task* b = machine.Spawn(library_.aluadd());
  machine.Run(1'000);
  // Both run concurrently but at the co-run speed.
  EXPECT_NEAR(a->work_done_ticks(), 650.0, 60.0);
  EXPECT_NEAR(b->work_done_ticks(), 650.0, 60.0);
}

TEST_F(MachineTest, ThrottlingCapsThermalPower) {
  MachineConfig config = SmallConfig();
  config.throttling_enabled = true;
  config.explicit_max_power_physical = 40.0;
  config.sched = EnergySchedConfig::Baseline();  // no escape by migration
  config.topology = CpuTopology(1, 1, 1);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  Machine machine(config);
  Task* task = machine.Spawn(library_.bitcnts());
  machine.Run(120'000);
  EXPECT_LT(machine.ThermalPower(task->cpu()), 41.5);
  EXPECT_GT(machine.throttle(task->cpu()).ThrottledFraction(), 0.2);
}

TEST_F(MachineTest, EnergyAttributionConsistent) {
  // Total estimated task energy over a busy run should roughly match
  // integrated true power minus idle overheads (within estimation error).
  Machine machine(SmallConfig());
  machine.Spawn(library_.bitcnts());
  machine.Spawn(library_.memrw());
  const Tick ticks = 20'000;
  double true_energy = 0.0;
  for (Tick t = 0; t < ticks; ++t) {
    machine.Step();
    for (std::size_t phys = 0; phys < machine.num_physical(); ++phys) {
      true_energy += machine.TruePower(phys) * kTickSeconds;
    }
  }
  const double estimated = machine.TotalTaskEnergy();
  EXPECT_NEAR(estimated / true_energy, 1.0, 0.1);
}

TEST_F(MachineTest, TaskCpuReportsInvalidWhileSleeping) {
  Machine machine(SmallConfig());
  Task* task = machine.Spawn(library_.bash());
  while (task->state() != TaskState::kSleeping) {
    machine.Step();
    ASSERT_LT(machine.now(), 5'000);
  }
  EXPECT_EQ(Machine::TaskCpu(*task), kInvalidCpu);
}

}  // namespace
}  // namespace eas
