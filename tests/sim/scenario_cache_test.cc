// ScenarioCache: the warm-service memoization of scenario builds and the
// default program library. The safety argument it rests on - factories are
// deterministic and spec copies share immutable programs - is what these
// tests pin: cached and fresh builds are interchangeable, sharing is real
// (one underlying build), and the hit/miss counters feeding the status
// endpoint count what actually happened.

#include "src/sim/scenario_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace eas {
namespace {

TEST(ScenarioCacheTest, BuildsOncePerNameAndShares) {
  ScenarioCache cache;
  const auto first = cache.Scenario("paper-mixed");
  const auto again = cache.Scenario("paper-mixed");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), again.get());  // the same build, not an equal one

  const auto other = cache.Scenario("paper-hot-task");
  EXPECT_NE(other.get(), first.get());

  const ScenarioCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.scenario_misses, 2u);
  EXPECT_EQ(stats.scenario_hits, 1u);
}

TEST(ScenarioCacheTest, CachedSpecMatchesAFreshRegistryBuild) {
  ScenarioCache cache;
  const auto cached = cache.Scenario("paper-hot-task");
  const ScenarioSpec fresh = ScenarioRegistry::Global().BuildOrThrow("paper-hot-task");
  // Deterministic factory: same spec every build.
  const ExperimentSpec cached_spec = cached->ToExperimentSpec();
  const ExperimentSpec fresh_spec = fresh.ToExperimentSpec();
  EXPECT_EQ(cached_spec.name, fresh_spec.name);
  EXPECT_EQ(cached_spec.workload.size(), fresh_spec.workload.size());
  EXPECT_EQ(cached_spec.config.explicit_max_power_physical,
            fresh_spec.config.explicit_max_power_physical);
  EXPECT_EQ(cached_spec.config.throttling_enabled, fresh_spec.config.throttling_enabled);
  EXPECT_EQ(cached_spec.options.duration_ticks, fresh_spec.options.duration_ticks);
}

TEST(ScenarioCacheTest, UnknownScenarioThrowsTheRegistryDiagnostic) {
  ScenarioCache cache;
  EXPECT_THROW(cache.Scenario("no-such-scenario"), std::invalid_argument);
}

TEST(ScenarioCacheTest, DefaultLibraryIsBuiltOnceAndShared) {
  ScenarioCache cache;
  const EnergyModel model = EnergyModel::Default();
  const auto first = cache.DefaultLibrary(model);
  const auto again = cache.DefaultLibrary(model);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), again.get());

  const ScenarioCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.library_misses, 1u);
  EXPECT_EQ(stats.library_hits, 1u);
}

TEST(ScenarioCacheTest, ConcurrentLookupsAgreeOnOneBuild) {
  // The service resolves requests from multiple connection threads against
  // one cache; every thread must end up with the same shared build.
  ScenarioCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const ScenarioSpec>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cache, &seen, i] { seen[i] = cache.Scenario("paper-mixed"); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[i].get(), seen[0].get());
  }
  const ScenarioCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.scenario_misses, 1u);
  EXPECT_EQ(stats.scenario_hits + stats.scenario_misses, static_cast<std::size_t>(kThreads));
}

}  // namespace
}  // namespace eas
