#include "src/thermal/throttle_controller.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

TEST(ThrottleTest, StartsUnthrottled) {
  ThrottleController t;
  EXPECT_FALSE(t.throttled());
}

TEST(ThrottleTest, EngagesAboveLimit) {
  ThrottleController t(0.5);
  EXPECT_FALSE(t.ShouldThrottle(39.9, 40.0));
  EXPECT_TRUE(t.ShouldThrottle(40.1, 40.0));
  EXPECT_TRUE(t.throttled());
}

TEST(ThrottleTest, HysteresisHoldsUntilBelowMargin) {
  ThrottleController t(1.0);
  EXPECT_TRUE(t.ShouldThrottle(41.0, 40.0));
  // Still above limit - hysteresis.
  EXPECT_TRUE(t.ShouldThrottle(39.5, 40.0));
  // Now below limit - hysteresis.
  EXPECT_FALSE(t.ShouldThrottle(38.9, 40.0));
}

TEST(ThrottleTest, ReengagesAfterRecovery) {
  ThrottleController t(0.5);
  EXPECT_TRUE(t.ShouldThrottle(41.0, 40.0));
  EXPECT_FALSE(t.ShouldThrottle(39.0, 40.0));
  EXPECT_TRUE(t.ShouldThrottle(40.5, 40.0));
}

TEST(ThrottleTest, AccountsThrottledFraction) {
  ThrottleController t;
  for (int i = 0; i < 30; ++i) {
    t.AccountTick(true);
  }
  for (int i = 0; i < 70; ++i) {
    t.AccountTick(false);
  }
  EXPECT_DOUBLE_EQ(t.ThrottledFraction(), 0.3);
  EXPECT_EQ(t.throttled_ticks(), 30);
  EXPECT_EQ(t.total_ticks(), 100);
}

TEST(ThrottleTest, FractionZeroWithoutTicks) {
  ThrottleController t;
  EXPECT_DOUBLE_EQ(t.ThrottledFraction(), 0.0);
}

TEST(ThrottleTest, ResetAccountingKeepsState) {
  ThrottleController t(0.5);
  EXPECT_TRUE(t.ShouldThrottle(50.0, 40.0));
  t.AccountTick(true);
  t.ResetAccounting();
  EXPECT_EQ(t.total_ticks(), 0);
  EXPECT_TRUE(t.throttled());  // hysteresis state survives accounting reset
}

TEST(ThrottleTest, DutyCycleEnforcesAverage) {
  // A synthetic loop: power is 61 W when running, 13.6 W when halted, and the
  // "thermal power" is a slow average of what we ran. The duty cycle chosen
  // by the controller must keep the average near the 40 W limit.
  ThrottleController t(0.5);
  double thermal = 13.6;
  double consumed = 0.0;
  const int ticks = 200'000;
  const double alpha = 0.0005;  // slow metric
  for (int i = 0; i < ticks; ++i) {
    const bool halt = t.ShouldThrottle(thermal, 40.0);
    const double power = halt ? 13.6 : 61.0;
    thermal = alpha * power + (1.0 - alpha) * thermal;
    consumed += power;
    t.AccountTick(halt);
  }
  EXPECT_NEAR(consumed / ticks, 40.0, 1.0);
  // Duty cycle ~ (61-40)/(61-13.6) = 44%.
  EXPECT_NEAR(t.ThrottledFraction(), 0.44, 0.05);
}

}  // namespace
}  // namespace eas
