#include "src/thermal/rc_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eas {
namespace {

ThermalParams DefaultParams() {
  ThermalParams p;
  p.resistance = 0.3;
  p.capacitance = 40.0;
  p.ambient = 22.0;
  return p;
}

TEST(RcModelTest, StartsAtAmbient) {
  RcThermalModel model(DefaultParams());
  EXPECT_DOUBLE_EQ(model.temperature(), 22.0);
}

TEST(RcModelTest, SteadyStateTemperature) {
  const ThermalParams p = DefaultParams();
  RcThermalModel model(p);
  // Run for many time constants at constant power.
  for (int i = 0; i < 200'000; ++i) {
    model.Step(60.0, 0.001);
  }
  EXPECT_NEAR(model.temperature(), p.SteadyStateTemp(60.0), 0.01);
  EXPECT_NEAR(model.temperature(), 22.0 + 0.3 * 60.0, 0.01);
}

TEST(RcModelTest, TimeConstantStepResponse) {
  const ThermalParams p = DefaultParams();
  RcThermalModel model(p);
  const double tau = p.TimeConstant();
  const double dt = 0.001;
  const int steps = static_cast<int>(tau / dt);
  for (int i = 0; i < steps; ++i) {
    model.Step(50.0, dt);
  }
  const double target = p.SteadyStateTemp(50.0);
  const double expected = p.ambient + (target - p.ambient) * (1.0 - std::exp(-1.0));
  EXPECT_NEAR(model.temperature(), expected, 0.05);
}

TEST(RcModelTest, CoolsBackToAmbient) {
  RcThermalModel model(DefaultParams());
  model.SetTemperature(60.0);
  for (int i = 0; i < 500'000; ++i) {
    model.Step(0.0, 0.001);
  }
  EXPECT_NEAR(model.temperature(), 22.0, 0.05);
}

TEST(RcModelTest, StepSizeIndependence) {
  // The exact-exponential update must give the same trajectory for coarse
  // and fine steps.
  RcThermalModel fine(DefaultParams());
  RcThermalModel coarse(DefaultParams());
  for (int i = 0; i < 10'000; ++i) {
    fine.Step(45.0, 0.001);
  }
  for (int i = 0; i < 10; ++i) {
    coarse.Step(45.0, 1.0);
  }
  EXPECT_NEAR(fine.temperature(), coarse.temperature(), 1e-6);
}

TEST(ThermalParamsTest, MaxPowerForTempInvertsSteadyState) {
  const ThermalParams p = DefaultParams();
  const double max_power = p.MaxPowerForTemp(38.0);
  EXPECT_NEAR(p.SteadyStateTemp(max_power), 38.0, 1e-12);
  // With 16 K headroom and R = 0.3: ~53 W.
  EXPECT_NEAR(max_power, 16.0 / 0.3, 1e-9);
}

TEST(ThermalParamsTest, PowerForTempIsInverse) {
  const ThermalParams p = DefaultParams();
  for (double power : {13.6, 40.0, 61.0}) {
    EXPECT_NEAR(p.PowerForTemp(p.SteadyStateTemp(power)), power, 1e-9);
  }
}

TEST(RcModelTest, HigherResistanceRunsHotter) {
  ThermalParams good = DefaultParams();
  ThermalParams poor = DefaultParams();
  poor.resistance = 0.4;
  RcThermalModel a(good);
  RcThermalModel b(poor);
  for (int i = 0; i < 100'000; ++i) {
    a.Step(50.0, 0.001);
    b.Step(50.0, 0.001);
  }
  EXPECT_GT(b.temperature(), a.temperature());
}

}  // namespace
}  // namespace eas
