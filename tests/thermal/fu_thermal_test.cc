#include "src/thermal/fu_thermal.h"

#include <gtest/gtest.h>

#include "src/core/fu_pairing.h"

namespace eas {
namespace {

FuPowerVector IntegerHeavy(double watts) {
  FuPowerVector p{};
  p[static_cast<std::size_t>(FunctionalUnit::kIntegerCluster)] = watts;
  return p;
}

FuPowerVector FpHeavy(double watts) {
  FuPowerVector p{};
  p[static_cast<std::size_t>(FunctionalUnit::kFpCluster)] = watts;
  return p;
}

TEST(FuThermalTest, SplitAssignsEventsToClusters) {
  const EnergyModel model = EnergyModel::Default();
  EventVector events{};
  events[EventIndex(EventType::kIntAluOps)] = 1000.0;
  events[EventIndex(EventType::kFpuOps)] = 200.0;
  events[EventIndex(EventType::kMemTransactions)] = 50.0;
  const FuPowerVector power = SplitDynamicPower(events, model.weights(), 1e-3);
  EXPECT_GT(power[static_cast<std::size_t>(FunctionalUnit::kIntegerCluster)], 0.0);
  EXPECT_GT(power[static_cast<std::size_t>(FunctionalUnit::kFpCluster)], 0.0);
  EXPECT_GT(power[static_cast<std::size_t>(FunctionalUnit::kMemCluster)], 0.0);
  // Total FU power equals total dynamic power.
  double total = 0.0;
  for (double p : power) {
    total += p;
  }
  EXPECT_NEAR(total, model.DynamicEnergy(events) / 1e-3, 1e-9);
}

TEST(FuThermalTest, HotspotFormsAtLoadedCluster) {
  FuThermalParams params;
  FuThermalModel model(params);
  for (int i = 0; i < 20'000; ++i) {
    model.Step(IntegerHeavy(30.0), 18.0, 1e-3);
  }
  EXPECT_GT(model.FuTemperature(FunctionalUnit::kIntegerCluster),
            model.FuTemperature(FunctionalUnit::kFpCluster) + 10.0);
  EXPECT_DOUBLE_EQ(model.MaxFuTemperature(),
                   model.FuTemperature(FunctionalUnit::kIntegerCluster));
}

TEST(FuThermalTest, FuHotspotsAreFasterThanPackage) {
  FuThermalParams params;
  FuThermalModel model(params);
  // One second of integer load: the cluster has essentially settled above
  // the spreader while the package barely warmed.
  for (int i = 0; i < 1'000; ++i) {
    model.Step(IntegerHeavy(30.0), 18.0, 1e-3);
  }
  const double cluster_rise = model.FuTemperature(FunctionalUnit::kIntegerCluster) -
                              model.SpreaderTemperature();
  const double package_rise = model.SpreaderTemperature() - params.package.ambient;
  EXPECT_GT(cluster_rise, 20.0);  // ~R_fu * (30 + base share)
  EXPECT_LT(package_rise, 5.0);   // tau_package = 12 s barely started
}

TEST(FuThermalTest, EqualTotalPowerDifferentHotspots) {
  // The paper's Section 7 point: same wattage, different stress.
  FuThermalParams params;
  FuThermalModel int_model(params);
  FuThermalModel mixed_model(params);
  FuPowerVector mixed{};
  for (auto& p : mixed) {
    p = 10.0;  // 30 W spread over three clusters
  }
  for (int i = 0; i < 20'000; ++i) {
    int_model.Step(IntegerHeavy(30.0), 18.0, 1e-3);
    mixed_model.Step(mixed, 18.0, 1e-3);
  }
  EXPECT_NEAR(int_model.SpreaderTemperature(), mixed_model.SpreaderTemperature(), 0.5);
  EXPECT_GT(int_model.MaxFuTemperature(), mixed_model.MaxFuTemperature() + 8.0);
}

TEST(FuPairingTest, HotspotScorePeaksAtSharedCluster) {
  const double same = HotspotScore(IntegerHeavy(20.0), IntegerHeavy(20.0), 0.65);
  const double mixed = HotspotScore(IntegerHeavy(20.0), FpHeavy(20.0), 0.65);
  EXPECT_NEAR(same, 40.0 * 0.65, 1e-9);
  EXPECT_NEAR(mixed, 20.0 * 0.65, 1e-9);
}

TEST(FuPairingTest, PairsIntegerWithFp) {
  std::vector<FuPowerVector> profiles = {IntegerHeavy(20.0), IntegerHeavy(20.0), FpHeavy(20.0),
                                         FpHeavy(20.0)};
  const auto pairs = PairForMinimumHotspot(profiles, 0.65);
  ASSERT_EQ(pairs.size(), 2u);
  for (const auto& [a, b] : pairs) {
    const bool a_int = profiles[a][0] > 0.0;
    const bool b_int = profiles[b][0] > 0.0;
    EXPECT_NE(a_int, b_int) << "integer tasks must pair with FP tasks";
  }
}

TEST(FuPairingTest, BeatsInOrderPairing) {
  std::vector<FuPowerVector> profiles = {IntegerHeavy(25.0), IntegerHeavy(25.0), FpHeavy(25.0),
                                         FpHeavy(25.0)};
  const double naive = PeakClusterPower(profiles, PairInOrder(profiles.size()), 0.65);
  const double aware = PeakClusterPower(profiles, PairForMinimumHotspot(profiles, 0.65), 0.65);
  EXPECT_LT(aware, naive * 0.6);
}

TEST(FuPairingTest, HandlesHomogeneousSet) {
  std::vector<FuPowerVector> profiles(4, IntegerHeavy(20.0));
  const auto pairs = PairForMinimumHotspot(profiles, 0.65);
  EXPECT_EQ(pairs.size(), 2u);
  EXPECT_NEAR(PeakClusterPower(profiles, pairs, 0.65),
              PeakClusterPower(profiles, PairInOrder(4), 0.65), 1e-9);
}

}  // namespace
}  // namespace eas
