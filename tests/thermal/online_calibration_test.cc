#include "src/thermal/online_calibration.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/thermal/thermal_sensor.h"

namespace eas {
namespace {

// Simulates a CPU whose power alternates between levels while the calibrator
// watches the quantized diode.
ThermalParams RunCalibration(const ThermalParams& truth, double sensor_resolution,
                             double window_seconds, int seconds) {
  RcThermalModel model(truth);
  const ThermalSensor sensor(sensor_resolution, 5);
  OnlineThermalCalibrator calibrator(truth.ambient, window_seconds);
  Rng rng(99);

  const double dt = 0.1;  // sensor polled every 100 ms
  double power = 20.0;
  calibrator.AddSample(power, sensor.Read(model.temperature()), dt);
  for (int step = 0; step < seconds * 10; ++step) {
    // Excite the model: switch power level every ~20 s.
    if (step % 200 == 0) {
      power = (step / 200) % 2 == 0 ? 58.0 : 20.0;
    }
    model.Step(power, dt);
    calibrator.AddSample(power, sensor.Read(model.temperature()), dt);
  }
  auto fit = calibrator.Fit();
  EXPECT_TRUE(fit.has_value());
  return fit.value_or(ThermalParams{});
}

TEST(OnlineCalibrationTest, RecoversParamsWithPerfectSensor) {
  ThermalParams truth;
  truth.resistance = 0.3;
  truth.capacitance = 40.0;
  const ThermalParams fit = RunCalibration(truth, 1e-6, 5.0, 300);
  EXPECT_NEAR(fit.resistance, truth.resistance, 0.02);
  EXPECT_NEAR(fit.capacitance, truth.capacitance, 4.0);
}

TEST(OnlineCalibrationTest, ToleratesDiodeQuantization) {
  // 1 K resolution, as in real diodes: long windows average it out.
  ThermalParams truth;
  truth.resistance = 0.3;
  truth.capacitance = 40.0;
  const ThermalParams fit = RunCalibration(truth, 1.0, 10.0, 600);
  EXPECT_NEAR(fit.resistance, truth.resistance, 0.06);
  EXPECT_NEAR(fit.capacitance, truth.capacitance, 12.0);
}

TEST(OnlineCalibrationTest, TracksCoolingChanges) {
  // The paper's motivation: a fan turns on -> R halves. Recalibrating on
  // fresh data must follow.
  ThermalParams before;
  before.resistance = 0.4;
  before.capacitance = 30.0;
  ThermalParams after = before;
  after.resistance = 0.2;
  const ThermalParams fit_before = RunCalibration(before, 1e-6, 5.0, 300);
  const ThermalParams fit_after = RunCalibration(after, 1e-6, 5.0, 300);
  EXPECT_GT(fit_before.resistance, fit_after.resistance * 1.5);
}

TEST(OnlineCalibrationTest, RefusesWithTooFewWindows) {
  OnlineThermalCalibrator calibrator(22.0, 5.0);
  calibrator.AddSample(40.0, 25.0, 0.1);
  calibrator.AddSample(40.0, 25.5, 0.1);
  EXPECT_FALSE(calibrator.Fit().has_value());
}

TEST(OnlineCalibrationTest, RefusesUnexcitedData) {
  // Constant power & steady temperature: the regression cannot separate
  // R from C (and the deltas are ~0). Must not return garbage.
  ThermalParams truth;
  RcThermalModel model(truth);
  model.SetTemperature(truth.SteadyStateTemp(40.0));
  OnlineThermalCalibrator calibrator(truth.ambient, 2.0);
  calibrator.AddSample(40.0, model.temperature(), 0.1);
  for (int i = 0; i < 1000; ++i) {
    model.Step(40.0, 0.1);
    calibrator.AddSample(40.0, model.temperature(), 0.1);
  }
  const auto fit = calibrator.Fit();
  if (fit.has_value()) {
    // If it fits at all, the steady-state ratio R must still be sane.
    EXPECT_NEAR(fit->resistance, truth.resistance, 0.1);
  }
}

TEST(OnlineCalibrationTest, WindowAggregation) {
  OnlineThermalCalibrator calibrator(22.0, 1.0);
  calibrator.AddSample(40.0, 25.0, 0.1);  // first sample only anchors
  for (int i = 0; i < 25; ++i) {
    calibrator.AddSample(40.0, 25.0, 0.1);
  }
  EXPECT_EQ(calibrator.windows(), 2u);  // 2.5 s of data, 1 s windows
}

}  // namespace
}  // namespace eas
