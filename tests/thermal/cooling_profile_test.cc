#include "src/thermal/cooling_profile.h"

#include <gtest/gtest.h>

#include "src/thermal/thermal_sensor.h"

namespace eas {
namespace {

TEST(CoolingProfileTest, UniformGivesSameParamsEverywhere) {
  ThermalParams p;
  p.resistance = 0.25;
  const CoolingProfile profile = CoolingProfile::Uniform(4, p);
  EXPECT_EQ(profile.num_physical(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(profile.ParamsFor(i).resistance, 0.25);
  }
}

TEST(CoolingProfileTest, PaperProfileHasEightPackages) {
  const CoolingProfile profile = CoolingProfile::PaperXSeries445();
  EXPECT_EQ(profile.num_physical(), 8u);
}

TEST(CoolingProfileTest, PaperProfileHeterogeneity) {
  // Physical 0 and 3 are the poor coolers, 4 mediocre, others good
  // (Table 3: logical 0/8, 3/11 throttle most; 4/12 throttle a little).
  const CoolingProfile profile = CoolingProfile::PaperXSeries445();
  const double r0 = profile.ParamsFor(0).resistance;
  const double r3 = profile.ParamsFor(3).resistance;
  const double r4 = profile.ParamsFor(4).resistance;
  for (std::size_t good : {1u, 2u, 5u, 6u, 7u}) {
    EXPECT_LT(profile.ParamsFor(good).resistance, r4);
  }
  EXPECT_LT(r4, r0);
  EXPECT_LT(r4, r3);
}

TEST(CoolingProfileTest, PaperProfileMaxPowerBands) {
  // At the 38 C limit: poor packages must throttle bitcnts (61 W) and even
  // pushpop (47 W); good packages must sustain bitcnts without throttling.
  const CoolingProfile profile = CoolingProfile::PaperXSeries445();
  for (std::size_t phys = 0; phys < 8; ++phys) {
    const double max_power = profile.ParamsFor(phys).MaxPowerForTemp(38.0);
    if (phys == 0 || phys == 3) {
      EXPECT_LT(max_power, 47.0) << "poor package " << phys;
    } else if (phys == 4) {
      EXPECT_GT(max_power, 47.0);
      EXPECT_LT(max_power, 61.0);
    } else {
      EXPECT_GT(max_power, 61.0) << "good package " << phys;
    }
  }
}

TEST(CoolingProfileTest, PaperProfileSharedTimeConstant) {
  const CoolingProfile profile = CoolingProfile::PaperXSeries445();
  for (std::size_t phys = 0; phys < 8; ++phys) {
    EXPECT_NEAR(profile.ParamsFor(phys).TimeConstant(), 12.0, 1e-9);
  }
}

TEST(ThermalSensorTest, QuantizesToResolution) {
  const ThermalSensor sensor(1.0, 5);
  EXPECT_DOUBLE_EQ(sensor.Read(38.7), 38.0);
  EXPECT_DOUBLE_EQ(sensor.Read(38.0), 38.0);
  EXPECT_DOUBLE_EQ(sensor.Read(-0.5), -1.0);
}

TEST(ThermalSensorTest, ReadLatencyIsExpensive) {
  // The paper's point: several milliseconds per read makes per-timeslice
  // temperature accounting impractical.
  const ThermalSensor sensor(1.0, 5);
  EXPECT_GE(sensor.read_latency_ticks(), 5);
}

TEST(ThermalSensorTest, CannotResolveOneTimesliceOfHeat) {
  // Energy of one 100 ms timeslice at 61 W into a 40 J/K capacitor changes
  // temperature by ~0.15 K - far below the 1 K diode resolution. This is the
  // quantitative argument for counter-based estimation (Section 3.1).
  ThermalParams p;
  p.capacitance = 40.0;
  const double delta_t = 61.0 * 0.1 / p.capacitance;
  EXPECT_LT(delta_t, 1.0);
  const ThermalSensor sensor(1.0, 5);
  EXPECT_DOUBLE_EQ(sensor.Read(38.0), sensor.Read(38.0 + delta_t));
}

}  // namespace
}  // namespace eas
