// A hand-controllable BalanceEnv for unit-testing balancing policies without
// a full Machine: thermal powers and max powers are set directly, tasks are
// created with fixed profile powers.

#ifndef TESTS_TESTING_FAKE_ENV_H_
#define TESTS_TESTING_FAKE_ENV_H_

#include <memory>
#include <vector>

#include "src/sched/balance_env.h"
#include "src/task/program.h"

namespace eas {

class FakeEnv : public BalanceEnv {
 public:
  explicit FakeEnv(const CpuTopology& topology, double max_power_per_logical = 60.0);
  ~FakeEnv() override;

  // Creates a runnable task with a seeded profile of `power_watts` and
  // enqueues it on `cpu`.
  Task* AddTask(double power_watts, int cpu);

  // Creates a task and makes it `cpu`'s current (running) task.
  Task* AddRunningTask(double power_watts, int cpu);

  void SetThermalPower(int cpu, double watts);
  void SetMaxPower(int cpu, double watts);

  // --- BalanceEnv -----------------------------------------------------------
  const CpuTopology& topology() const override { return topology_; }
  const DomainHierarchy& domains() const override { return domains_; }
  Runqueue& runqueue(int cpu) override { return *runqueues_[static_cast<std::size_t>(cpu)]; }
  const Runqueue& runqueue(int cpu) const override {
    return *runqueues_[static_cast<std::size_t>(cpu)];
  }
  double RunqueuePower(int cpu) const override;
  double ThermalPower(int cpu) const override;
  double MaxPower(int cpu) const override;
  bool MigrateTask(Task* task, int from, int to) override;
  std::int64_t migration_count() const override { return migrations_; }

  double idle_power = 13.6;

 private:
  CpuTopology topology_;
  DomainHierarchy domains_;
  std::unique_ptr<Program> dummy_program_;
  std::vector<std::unique_ptr<Runqueue>> runqueues_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<double> thermal_power_;
  std::vector<double> max_power_;
  std::int64_t migrations_ = 0;
  TaskId next_id_ = 1;
};

}  // namespace eas

#endif  // TESTS_TESTING_FAKE_ENV_H_
