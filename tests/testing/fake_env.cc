#include "tests/testing/fake_env.h"

namespace eas {

FakeEnv::FakeEnv(const CpuTopology& topology, double max_power_per_logical)
    : topology_(topology), domains_(DomainHierarchy::Build(topology)) {
  Phase phase;
  phase.rates = EventRates{};
  phase.mean_duration = 1000;
  dummy_program_ = std::make_unique<Program>("dummy", 999, std::vector<Phase>{phase}, 0);
  for (std::size_t cpu = 0; cpu < topology_.num_logical(); ++cpu) {
    runqueues_.push_back(std::make_unique<Runqueue>(static_cast<int>(cpu)));
    thermal_power_.push_back(idle_power);
    max_power_.push_back(max_power_per_logical);
  }
}

FakeEnv::~FakeEnv() = default;

Task* FakeEnv::AddTask(double power_watts, int cpu) {
  auto task = std::make_unique<Task>(next_id_++, dummy_program_.get(), 1234);
  task->profile().Seed(power_watts);
  Task* raw = task.get();
  tasks_.push_back(std::move(task));
  runqueue(cpu).Enqueue(raw);
  return raw;
}

Task* FakeEnv::AddRunningTask(double power_watts, int cpu) {
  Task* task = AddTask(power_watts, cpu);
  runqueue(cpu).Remove(task);
  task->set_state(TaskState::kRunning);
  task->set_cpu(cpu);
  runqueue(cpu).SetCurrent(task);
  return task;
}

void FakeEnv::SetThermalPower(int cpu, double watts) {
  thermal_power_[static_cast<std::size_t>(cpu)] = watts;
}

void FakeEnv::SetMaxPower(int cpu, double watts) {
  max_power_[static_cast<std::size_t>(cpu)] = watts;
}

double FakeEnv::RunqueuePower(int cpu) const {
  return runqueue(cpu).AveragePower(idle_power);
}

double FakeEnv::ThermalPower(int cpu) const {
  return thermal_power_[static_cast<std::size_t>(cpu)];
}

double FakeEnv::MaxPower(int cpu) const { return max_power_[static_cast<std::size_t>(cpu)]; }

bool FakeEnv::MigrateTask(Task* task, int from, int to) {
  if (from == to) {
    return false;
  }
  Runqueue& src = runqueue(from);
  if (src.current() == task) {
    src.TakeCurrent();
  } else if (!src.Remove(task)) {
    return false;
  }
  task->NoteMigration(!topology_.SameNode(from, to), 3);
  runqueue(to).Enqueue(task);
  ++migrations_;
  return true;
}

}  // namespace eas
