// Property suite: thermal-stack invariants across parameter sweeps.

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/machine.h"
#include "src/thermal/rc_model.h"
#include "src/thermal/throttle_controller.h"
#include "src/workloads/programs.h"

namespace eas {
namespace {

// --- RC model invariants over (R, C) -----------------------------------------

struct RcCase {
  double resistance;
  double capacitance;
};

class RcModelProperty : public ::testing::TestWithParam<RcCase> {};

TEST_P(RcModelProperty, SteadyStateMatchesAnalytic) {
  ThermalParams params;
  params.resistance = GetParam().resistance;
  params.capacitance = GetParam().capacitance;
  RcThermalModel model(params);
  const double tau = params.TimeConstant();
  const int steps = static_cast<int>(12.0 * tau / 0.001);
  for (int i = 0; i < steps; ++i) {
    model.Step(47.0, 0.001);
  }
  EXPECT_NEAR(model.temperature(), params.SteadyStateTemp(47.0), 0.05);
}

TEST_P(RcModelProperty, NeverOvershoots) {
  ThermalParams params;
  params.resistance = GetParam().resistance;
  params.capacitance = GetParam().capacitance;
  RcThermalModel model(params);
  const double target = params.SteadyStateTemp(55.0);
  for (int i = 0; i < 100'000; ++i) {
    model.Step(55.0, 0.001);
    ASSERT_LE(model.temperature(), target + 1e-9);
    ASSERT_GE(model.temperature(), params.ambient - 1e-9);
  }
}

TEST_P(RcModelProperty, MonotoneInPower) {
  ThermalParams params;
  params.resistance = GetParam().resistance;
  params.capacitance = GetParam().capacitance;
  RcThermalModel low(params);
  RcThermalModel high(params);
  for (int i = 0; i < 30'000; ++i) {
    low.Step(30.0, 0.001);
    high.Step(50.0, 0.001);
    ASSERT_LE(low.temperature(), high.temperature() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Params, RcModelProperty,
                         ::testing::Values(RcCase{0.2, 20.0}, RcCase{0.3, 40.0},
                                           RcCase{0.4, 30.0}, RcCase{0.25, 48.0},
                                           RcCase{0.72, 16.7}));

// --- throttle duty cycle across limits ----------------------------------------
//
// A 61 W task on a limited package must duty-cycle so the average power is
// the limit: throttled fraction = (P_task - P_limit) / (P_task - P_halt).

class ThrottleDutyProperty : public ::testing::TestWithParam<double> {};

TEST_P(ThrottleDutyProperty, DutyCycleMatchesAnalytic) {
  const double limit = GetParam();
  MachineConfig config;
  config.topology = CpuTopology(1, 1, 1);
  config.cooling = CoolingProfile::Uniform(1, ThermalParams{});
  config.explicit_max_power_physical = limit;
  config.throttling_enabled = true;
  config.sched = EnergySchedConfig::Baseline();
  config.estimator_weights = EnergyModel::Default().weights();
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  machine.Spawn(library.bitcnts());
  machine.Run(240'000);  // 4 minutes >> tau

  const double expected = (61.0 - limit) / (61.0 - 13.6);
  EXPECT_NEAR(machine.throttle(0).ThrottledFraction(), expected, 0.05) << "limit " << limit;
}

INSTANTIATE_TEST_SUITE_P(Limits, ThrottleDutyProperty,
                         ::testing::Values(30.0, 40.0, 50.0, 55.0));

// --- hot migration cadence vs the thermal time constant ------------------------
//
// From idle, the sum of sibling thermal powers reaches the limit L after
//   t = tau * ln((P - P_idle) / (P - L))
// with P the package power under the task. The migrator must hop on roughly
// that cadence.

class MigrationCadenceProperty : public ::testing::TestWithParam<double> {};

TEST_P(MigrationCadenceProperty, HopIntervalMatchesAnalytic) {
  const double limit = GetParam();
  MachineConfig config;
  config.topology = CpuTopology::PaperXSeries445(true);
  config.cooling = CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = limit;
  config.throttling_enabled = true;
  config.sched = EnergySchedConfig::EnergyAware();
  config.estimator_weights = EnergyModel::Default().weights();
  Machine machine(config);
  const ProgramLibrary library(EnergyModel::Default());
  Task* task = machine.Spawn(library.bitcnts());

  std::vector<Tick> hop_times;
  int last_cpu = task->cpu();
  for (Tick t = 0; t < 150'000; ++t) {
    machine.Step();
    const int cpu = Machine::TaskCpu(*task);
    if (cpu >= 0 && cpu != last_cpu) {
      hop_times.push_back(t);
      last_cpu = cpu;
    }
  }
  ASSERT_GE(hop_times.size(), 4u);

  const double tau = 12.0;
  const double package_power = 61.0;  // bitcnts with idle sibling
  const double idle_power = 13.6;
  const double analytic =
      tau * std::log((package_power - idle_power) / (package_power - limit));
  // Hops into not-fully-cooled packages shorten later intervals; check the
  // first hop (from a cold machine) against the analytic heat-up time.
  const double first_hop_seconds = TicksToSeconds(hop_times[0]);
  EXPECT_NEAR(first_hop_seconds, analytic, analytic * 0.35 + 1.0) << "limit " << limit;
}

INSTANTIATE_TEST_SUITE_P(Limits, MigrationCadenceProperty, ::testing::Values(35.0, 40.0, 45.0));

}  // namespace
}  // namespace eas
