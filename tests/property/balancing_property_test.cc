// Property suite: invariants of energy-aware scheduling across topologies
// and workload mixes (parameterized gtest).

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "src/sim/experiment.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

struct TopologyCase {
  std::size_t nodes;
  std::size_t physical_per_node;
  std::size_t smt;
};

// (topology, #memrw, #bitcnts)
using BalanceParam = std::tuple<TopologyCase, int, int>;

class BalancingProperty : public ::testing::TestWithParam<BalanceParam> {
 protected:
  MachineConfig MakeConfig(bool energy_aware) const {
    const TopologyCase& topo = std::get<0>(GetParam());
    MachineConfig config;
    config.topology = CpuTopology(topo.nodes, topo.physical_per_node, topo.smt);
    ThermalParams params;
    params.resistance = 0.3;
    params.capacitance = 40.0;
    config.cooling = CoolingProfile::Uniform(config.topology.num_physical(), params);
    config.explicit_max_power_physical = 60.0;
    config.throttling_enabled = false;
    config.sched =
        energy_aware ? EnergySchedConfig::EnergyAware() : EnergySchedConfig::Baseline();
    return config;
  }

  std::vector<const Program*> MakeWorkload(const ProgramLibrary& library) const {
    return HomogeneityWorkload(library, std::get<1>(GetParam()), 0, std::get<2>(GetParam()));
  }
};

TEST_P(BalancingProperty, SpreadNeverWorseThanBaseline) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 60'000;
  options.sample_interval_ticks = 1'000;

  Experiment base_experiment(MakeConfig(false), options);
  const RunResult baseline = base_experiment.Run(MakeWorkload(library));
  Experiment eas_experiment(MakeConfig(true), options);
  const RunResult eas = eas_experiment.Run(MakeWorkload(library));

  const Tick measure_from = 45'000;
  const std::size_t num_cpus = MakeConfig(true).topology.num_logical();
  if (MakeWorkload(library).size() >= num_cpus) {
    // Loaded machine: the energy balancing regime. Balancing must not widen
    // the thermal power band (small slack: homogeneous mixes have tiny
    // spreads on both sides).
    EXPECT_LE(eas.MaxThermalSpreadAfter(measure_from),
              baseline.MaxThermalSpreadAfter(measure_from) + 2.5);
  } else {
    // Underloaded machine: the hot task migration regime. Moving the hot
    // task around trades instantaneous spread for peak heat: the hottest
    // any *package* ever gets (only packages overheat) must not exceed the
    // baseline's peak, where tasks sit still and saturate their die.
    const CpuTopology topo = MakeConfig(true).topology;
    auto peak_package = [&topo](const RunResult& result) {
      double peak = 0.0;
      const std::size_t samples = result.thermal_power.at(0).size();
      for (std::size_t i = 0; i < samples; ++i) {
        for (std::size_t phys = 0; phys < topo.num_physical(); ++phys) {
          double sum = 0.0;
          for (std::size_t t = 0; t < topo.smt_per_physical(); ++t) {
            sum += result.thermal_power.at(static_cast<std::size_t>(topo.LogicalId(phys, t)))
                       .value_at(i);
          }
          peak = std::max(peak, sum);
        }
      }
      return peak;
    };
    EXPECT_LE(peak_package(eas), peak_package(baseline) + 2.5);
  }
}

TEST_P(BalancingProperty, NoMigrationStorm) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 60'000;
  Experiment experiment(MakeConfig(true), options);
  const RunResult result = experiment.Run(MakeWorkload(library));
  // Bound: fewer than 1.5 migrations per task-second on average would
  // already be excessive; the paper sees ~0.002. Allow a generous margin.
  const double tasks = static_cast<double>(MakeWorkload(library).size());
  EXPECT_LT(static_cast<double>(result.migrations), tasks * 60.0 * 1.5);
}

TEST_P(BalancingProperty, FairnessPreserved) {
  const ProgramLibrary library(EnergyModel::Default());
  Experiment::Options options;
  options.duration_ticks = 60'000;
  Experiment experiment(MakeConfig(true), options);
  experiment.Run(MakeWorkload(library));

  // Every task of the same program class must get a comparable CPU share.
  double min_work = 1e18;
  double max_work = 0.0;
  for (const auto& task : experiment.machine().tasks()) {
    const double work =
        task->work_done_ticks() + static_cast<double>(task->completions()) *
                                      static_cast<double>(task->program().total_work_ticks());
    min_work = std::min(min_work, work);
    max_work = std::max(max_work, work);
  }
  EXPECT_GT(min_work, 0.25 * max_work) << "some task starved";
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndMixes, BalancingProperty,
    ::testing::Combine(::testing::Values(TopologyCase{1, 2, 1}, TopologyCase{1, 4, 1},
                                         TopologyCase{2, 2, 1}, TopologyCase{2, 4, 1},
                                         TopologyCase{1, 2, 2}, TopologyCase{2, 4, 2}),
                       ::testing::Values(2, 5), ::testing::Values(2, 5)));

}  // namespace
}  // namespace eas
