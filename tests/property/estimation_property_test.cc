// Property suite: the estimation pipeline across meter noise levels and
// random workload mixes.

#include <gtest/gtest.h>

#include "src/counters/calibration.h"
#include "src/counters/energy_estimator.h"
#include "src/task/energy_profile.h"

namespace eas {
namespace {

class EstimationNoiseProperty : public ::testing::TestWithParam<double> {};

TEST_P(EstimationNoiseProperty, CalibrationErrorBoundedByNoise) {
  const double noise = GetParam();
  const EnergyModel truth = EnergyModel::Default();
  const CalibrationResult result = Calibrator::CalibrateDefault(truth, 2024, noise);
  // Weight error should be on the order of the meter noise: allow 5x plus a
  // small floor for the per-tick jitter.
  EXPECT_LT(result.max_relative_weight_error, 5.0 * noise + 0.02);
}

TEST_P(EstimationNoiseProperty, RandomWorkloadEstimationError) {
  const double noise = GetParam();
  const EnergyModel truth = EnergyModel::Default();
  const CalibrationResult calibration = Calibrator::CalibrateDefault(truth, 7, noise);
  const EnergyEstimator estimator(calibration.weights, truth.active_base_power());

  Rng rng(1000 + static_cast<std::uint64_t>(noise * 1e4));
  double worst = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    EventRates rates{};
    for (std::size_t i = 0; i < kNumEventTypes; ++i) {
      rates[i] = rng.Uniform(20.0, 1500.0);
    }
    EventVector total{};
    double true_energy = 0.0;
    for (int t = 0; t < 200; ++t) {
      EventVector events{};
      for (std::size_t i = 0; i < kNumEventTypes; ++i) {
        events[i] = rates[i] * (1.0 + rng.Gaussian(0.0, 0.03));
        total[i] += events[i];
      }
      true_energy += truth.DynamicEnergy(events);
    }
    const double estimated = estimator.EstimateDynamicEnergy(total);
    worst = std::max(worst, std::abs(estimated - true_energy) / true_energy);
  }
  // The paper's bound (<10%) holds for realistic noise; degrade gracefully.
  EXPECT_LT(worst, 0.10 + 3.0 * noise);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, EstimationNoiseProperty,
                         ::testing::Values(0.0, 0.01, 0.02, 0.05));

class ProfileWeightProperty : public ::testing::TestWithParam<double> {};

TEST_P(ProfileWeightProperty, ProfileConvergesForAnyWeight) {
  const double weight = GetParam();
  EnergyProfile profile(weight, 100);
  profile.Seed(40.0);
  for (int i = 0; i < 400; ++i) {
    profile.AddPeriod(6.1, 100);  // constant 61 W
  }
  EXPECT_NEAR(profile.power(), 61.0, 0.5);
}

TEST_P(ProfileWeightProperty, SmallerWeightSmoothsMore) {
  const double weight = GetParam();
  EnergyProfile profile(weight, 100);
  profile.Seed(40.0);
  profile.AddPeriod(8.0, 100);  // one 80 W spike
  const double moved = profile.power() - 40.0;
  EXPECT_NEAR(moved, weight * 40.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Weights, ProfileWeightProperty,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5, 0.8));

}  // namespace
}  // namespace eas
