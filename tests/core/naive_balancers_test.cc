#include "src/core/naive_balancers.h"

#include <gtest/gtest.h>

#include "src/core/energy_balancer.h"
#include "tests/testing/fake_env.h"

namespace eas {
namespace {

CpuTopology TwoCpus() { return CpuTopology(1, 2, 1); }

TEST(PowerOnlyBalancerTest, PullsOnRunqueuePowerAlone) {
  FakeEnv env(TwoCpus());
  env.AddRunningTask(61.0, 0);
  env.AddTask(61.0, 0);
  env.AddRunningTask(38.0, 1);
  env.AddTask(38.0, 1);
  // Thermal power says the remote die is NOT hotter - the real balancer
  // would wait; the power-only strawman pulls anyway.
  env.SetThermalPower(0, 20.0);
  env.SetThermalPower(1, 36.0);
  PowerOnlyBalancer balancer;
  EXPECT_GE(balancer.Balance(1, env), 1);
}

TEST(PowerOnlyBalancerTest, PingPongsWhereDualMetricIsQuiet) {
  // Construct the oscillation: equalish queues where each pull flips the
  // runqueue-power comparison. The strawman keeps trading tasks; the
  // paper's balancer performs the one useful swap and stops.
  auto build = [](FakeEnv& env) {
    env.AddRunningTask(61.0, 0);
    env.AddTask(55.0, 0);
    env.AddRunningTask(38.0, 1);
    env.AddTask(40.0, 1);
    env.SetThermalPower(0, 48.0);
    env.SetThermalPower(1, 47.0);  // thermally almost identical
  };

  FakeEnv naive_env(TwoCpus());
  build(naive_env);
  PowerOnlyBalancer naive;
  for (int round = 0; round < 10; ++round) {
    naive.Balance(0, naive_env);
    naive.Balance(1, naive_env);
  }

  FakeEnv paper_env(TwoCpus());
  build(paper_env);
  EnergyLoadBalancer paper;
  for (int round = 0; round < 10; ++round) {
    paper.Balance(0, paper_env);
    paper.Balance(1, paper_env);
  }

  EXPECT_GT(naive_env.migration_count(), paper_env.migration_count());
}

TEST(TemperatureOnlyBalancerTest, OverBalancesOnStaleHeat) {
  // The hot task already left cpu0, but the die is still warm. The real
  // balancer's runqueue condition blocks further pulls; the temperature-only
  // strawman keeps stealing tasks from the (now cool) queue.
  FakeEnv env(TwoCpus());
  env.AddRunningTask(38.0, 0);
  env.AddTask(38.0, 0);
  env.AddRunningTask(40.0, 1);
  env.AddTask(40.0, 1);
  env.SetThermalPower(0, 55.0);  // stale heat
  env.SetThermalPower(1, 30.0);

  TemperatureOnlyBalancer naive;
  const int migrated = naive.Balance(1, env);
  EXPECT_GE(migrated, 1) << "strawman should chase the stale temperature";

  FakeEnv paper_env(TwoCpus());
  paper_env.AddRunningTask(38.0, 0);
  paper_env.AddTask(38.0, 0);
  paper_env.AddRunningTask(40.0, 1);
  paper_env.AddTask(40.0, 1);
  paper_env.SetThermalPower(0, 55.0);
  paper_env.SetThermalPower(1, 30.0);
  EnergyLoadBalancer paper;
  EXPECT_EQ(paper.Balance(1, paper_env).energy_migrations, 0)
      << "the dual-metric design must not over-balance";
}

TEST(NaiveBalancersTest, LeaveSingleTaskQueuesAlone) {
  FakeEnv env(TwoCpus());
  env.AddRunningTask(61.0, 0);  // one running task, nothing queued
  env.SetThermalPower(0, 55.0);
  env.SetThermalPower(1, 14.0);
  PowerOnlyBalancer power_only;
  TemperatureOnlyBalancer temp_only;
  EXPECT_EQ(power_only.Balance(1, env), 0);
  EXPECT_EQ(temp_only.Balance(1, env), 0);
}

TEST(NaiveBalancersTest, StillBalanceLoad) {
  FakeEnv env(TwoCpus());
  env.AddRunningTask(40.0, 0);
  env.AddTask(40.0, 0);
  env.AddTask(40.0, 0);
  env.AddTask(40.0, 0);
  env.SetThermalPower(0, 40.0);
  env.SetThermalPower(1, 40.0);
  PowerOnlyBalancer balancer;
  EXPECT_GE(balancer.Balance(1, env), 1);
  EXPECT_LE(env.runqueue(0).nr_running(), 3u);
}

}  // namespace
}  // namespace eas
