#include "src/core/energy_balancer.h"

#include <gtest/gtest.h>

#include "tests/testing/fake_env.h"

namespace eas {
namespace {

// Two physical CPUs, no SMT, one node.
CpuTopology TwoCpus() { return CpuTopology(1, 2, 1); }

TEST(EnergyBalancerTest, PullsHeatFromHotterCpu) {
  FakeEnv env(TwoCpus());
  // cpu0: two hot tasks; cpu1: two cool tasks. Thermal state agrees.
  env.AddRunningTask(61.0, 0);
  env.AddTask(61.0, 0);
  env.AddRunningTask(38.0, 1);
  env.AddTask(38.0, 1);
  env.SetThermalPower(0, 55.0);
  env.SetThermalPower(1, 36.0);

  EnergyLoadBalancer balancer;
  const auto result = balancer.Balance(1, env);
  EXPECT_EQ(result.energy_migrations, 1);
  // Load stayed balanced: the exchange sent a cool task back.
  EXPECT_EQ(result.exchange_migrations, 1);
  EXPECT_EQ(env.runqueue(0).nr_running(), 2u);
  EXPECT_EQ(env.runqueue(1).nr_running(), 2u);
  // Power is now mixed on both queues.
  EXPECT_NEAR(env.RunqueuePower(0), env.RunqueuePower(1), 1.0);
}

TEST(EnergyBalancerTest, HysteresisBlocksWhenRemoteNotThermallyHotter) {
  FakeEnv env(TwoCpus());
  env.AddRunningTask(61.0, 0);
  env.AddTask(61.0, 0);
  env.AddRunningTask(38.0, 1);
  env.AddTask(38.0, 1);
  // Runqueue power says cpu0 is hotter, but thermal power says otherwise
  // (cpu0 just got these tasks; the die is still cool).
  env.SetThermalPower(0, 30.0);
  env.SetThermalPower(1, 36.0);

  EnergyLoadBalancer balancer;
  const auto result = balancer.Balance(1, env);
  EXPECT_EQ(result.energy_migrations, 0);
}

TEST(EnergyBalancerTest, RunqueueConditionBlocksOverPulling) {
  FakeEnv env(TwoCpus());
  // cpu0 thermally hot but its queue is already cool (the hot task left):
  // pulling more would over-balance.
  env.AddRunningTask(38.0, 0);
  env.AddTask(38.0, 0);
  env.AddRunningTask(40.0, 1);
  env.AddTask(40.0, 1);
  env.SetThermalPower(0, 55.0);
  env.SetThermalPower(1, 36.0);

  EnergyLoadBalancer balancer;
  const auto result = balancer.Balance(1, env);
  EXPECT_EQ(result.energy_migrations, 0);
}

TEST(EnergyBalancerTest, NoActionWhenBalanced) {
  FakeEnv env(TwoCpus());
  env.AddRunningTask(50.0, 0);
  env.AddTask(50.0, 0);
  env.AddRunningTask(50.0, 1);
  env.AddTask(50.0, 1);
  env.SetThermalPower(0, 48.0);
  env.SetThermalPower(1, 48.0);

  EnergyLoadBalancer balancer;
  EXPECT_EQ(balancer.Balance(0, env).total(), 0);
  EXPECT_EQ(balancer.Balance(1, env).total(), 0);
}

TEST(EnergyBalancerTest, NoPingPongAfterBalancing) {
  // After one successful energy balance, repeating the pass in both
  // directions must not migrate anything further (the dual-metric condition
  // is the anti-ping-pong mechanism).
  FakeEnv env(TwoCpus());
  env.AddRunningTask(61.0, 0);
  env.AddTask(61.0, 0);
  env.AddRunningTask(38.0, 1);
  env.AddTask(38.0, 1);
  env.SetThermalPower(0, 55.0);
  env.SetThermalPower(1, 36.0);

  EnergyLoadBalancer balancer;
  EXPECT_GT(balancer.Balance(1, env).total(), 0);
  const std::int64_t after_first = env.migration_count();
  for (int round = 0; round < 5; ++round) {
    balancer.Balance(0, env);
    balancer.Balance(1, env);
  }
  EXPECT_EQ(env.migration_count(), after_first);
}

TEST(EnergyBalancerTest, RespectsMaxPowerRatios) {
  // cpu1 has a lower max power (worse cooling): the same wattage means a
  // higher *ratio* there, so its hot task must flow to the better-cooled
  // cpu0 even though cpu0's absolute runqueue power is already higher.
  FakeEnv env(TwoCpus());
  env.SetMaxPower(0, 66.0);
  env.SetMaxPower(1, 44.0);
  env.AddRunningTask(45.0, 0);
  env.AddTask(45.0, 0);
  env.AddRunningTask(55.0, 1);
  env.AddTask(55.0, 1);
  env.SetThermalPower(0, 45.0);  // ratio 0.68
  env.SetThermalPower(1, 50.0);  // ratio 1.14

  EnergyLoadBalancer balancer;
  const auto result = balancer.Balance(0, env);
  EXPECT_EQ(result.energy_migrations, 1);
}

TEST(EnergyBalancerTest, LoadStepStillBalancesLoad) {
  FakeEnv env(TwoCpus());
  env.AddRunningTask(50.0, 0);
  env.AddTask(50.0, 0);
  env.AddTask(50.0, 0);
  env.AddTask(50.0, 0);
  env.SetThermalPower(0, 50.0);
  env.SetThermalPower(1, 50.0);

  EnergyLoadBalancer balancer;
  const auto result = balancer.Balance(1, env);
  EXPECT_GE(result.load_migrations, 1);
}

TEST(EnergyBalancerTest, LoadStepPullsCoolTaskFromCoolerGroup) {
  FakeEnv env(TwoCpus());
  env.AddRunningTask(61.0, 0);
  Task* cool = env.AddTask(38.0, 0);
  env.AddTask(61.0, 0);
  env.AddTask(38.0, 0);
  // cpu1 is hot, cpu0 cool: when cpu1 pulls for load reasons it must take a
  // cool task to preserve energy balance.
  env.SetThermalPower(0, 30.0);
  env.SetThermalPower(1, 55.0);

  EnergyLoadBalancer balancer;
  const auto result = balancer.Balance(1, env);
  ASSERT_GE(result.load_migrations, 1);
  // The first pulled task should be the coolest queued one.
  bool found = false;
  for (const Task* task : env.runqueue(1).queued()) {
    if (task == cool) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EnergyBalancerTest, SkipsEnergyStepInSmtDomain) {
  // One physical package, two SMT threads: the only domain is flagged
  // kDomainNoEnergyBalance, so only load balancing may happen.
  FakeEnv env(CpuTopology(1, 1, 2));
  env.AddRunningTask(61.0, 0);
  env.AddTask(61.0, 0);
  env.AddRunningTask(38.0, 1);
  env.AddTask(38.0, 1);
  env.SetThermalPower(0, 55.0);
  env.SetThermalPower(1, 30.0);

  EnergyLoadBalancer balancer;
  const auto result = balancer.Balance(1, env);
  EXPECT_EQ(result.energy_migrations, 0);
  EXPECT_EQ(result.load_migrations, 0);  // load is balanced
}

TEST(EnergyBalancerTest, EnergyBalancesAcrossPackagesOnSmtMachine) {
  // Two packages x 2 threads: energy balancing skips the SMT level but must
  // work at the node level between packages.
  FakeEnv env(CpuTopology(1, 2, 2));
  // Package 0 (cpus 0, 2): hot tasks. Package 1 (cpus 1, 3): cool tasks.
  env.AddRunningTask(61.0, 0);
  env.AddTask(61.0, 0);
  env.AddRunningTask(61.0, 2);
  env.AddTask(61.0, 2);
  env.AddRunningTask(38.0, 1);
  env.AddTask(38.0, 1);
  env.AddRunningTask(38.0, 3);
  env.AddTask(38.0, 3);
  for (int cpu : {0, 2}) {
    env.SetThermalPower(cpu, 28.0);  // per-logical (30 W max each)
  }
  for (int cpu : {1, 3}) {
    env.SetThermalPower(cpu, 18.0);
  }
  EnergyLoadBalancer balancer;
  const auto result = balancer.Balance(1, env);
  EXPECT_EQ(result.energy_migrations, 1);
}

TEST(EnergyBalancerTest, GroupAverageHelper) {
  FakeEnv env(TwoCpus());
  env.SetThermalPower(0, 10.0);
  env.SetThermalPower(1, 30.0);
  CpuGroup group;
  group.cpus = {0, 1};
  const double avg = EnergyLoadBalancer::GroupAverage(
      group, [&env](int cpu) { return env.ThermalPower(cpu); });
  EXPECT_DOUBLE_EQ(avg, 20.0);
}

}  // namespace
}  // namespace eas
