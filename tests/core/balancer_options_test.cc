// The EnergyLoadBalancer's option knobs: each margin must gate exactly the
// condition it documents.

#include <gtest/gtest.h>

#include "src/core/energy_balancer.h"
#include "tests/testing/fake_env.h"

namespace eas {
namespace {

CpuTopology TwoCpus() { return CpuTopology(1, 2, 1); }

// A canonical imbalance: cpu0 hot by both metrics, cpu1 cool.
void BuildImbalance(FakeEnv& env) {
  env.AddRunningTask(61.0, 0);
  env.AddTask(61.0, 0);
  env.AddRunningTask(38.0, 1);
  env.AddTask(38.0, 1);
  env.SetThermalPower(0, 55.0);
  env.SetThermalPower(1, 36.0);
}

TEST(BalancerOptionsTest, DefaultOptionsMigrate) {
  FakeEnv env(TwoCpus());
  BuildImbalance(env);
  EnergyLoadBalancer balancer;
  EXPECT_EQ(balancer.Balance(1, env).energy_migrations, 1);
}

TEST(BalancerOptionsTest, HugeThermalMarginBlocks) {
  FakeEnv env(TwoCpus());
  BuildImbalance(env);
  EnergyLoadBalancer::Options options;
  options.thermal_ratio_margin = 10.0;  // unreachable
  EnergyLoadBalancer balancer(options);
  EXPECT_EQ(balancer.Balance(1, env).energy_migrations, 0);
}

TEST(BalancerOptionsTest, HugeRunqueueMarginBlocks) {
  FakeEnv env(TwoCpus());
  BuildImbalance(env);
  EnergyLoadBalancer::Options options;
  options.rq_ratio_margin = 10.0;
  EnergyLoadBalancer balancer(options);
  EXPECT_EQ(balancer.Balance(1, env).energy_migrations, 0);
}

TEST(BalancerOptionsTest, MinTaskGainBlocksUselessPulls) {
  FakeEnv env(TwoCpus());
  BuildImbalance(env);
  EnergyLoadBalancer::Options options;
  options.min_task_gain = 2.0;  // the 61 W task is not 2x the local 38 W avg
  EnergyLoadBalancer balancer(options);
  EXPECT_EQ(balancer.Balance(1, env).energy_migrations, 0);
}

TEST(BalancerOptionsTest, GapShrinkRejectsFlippingMoves) {
  // Local already almost as hot as remote: a pull would overshoot.
  FakeEnv env(TwoCpus());
  env.AddRunningTask(52.0, 0);
  env.AddTask(61.0, 0);
  env.AddRunningTask(50.0, 1);
  env.AddTask(50.0, 1);
  env.SetThermalPower(0, 53.0);
  env.SetThermalPower(1, 48.0);
  EnergyLoadBalancer::Options strict;
  strict.min_gap_shrink = 0.2;  // demand an 80% gap reduction
  EnergyLoadBalancer balancer(strict);
  EXPECT_EQ(balancer.Balance(1, env).energy_migrations, 0);
}

TEST(BalancerOptionsTest, LoadImbalanceThresholdRespected) {
  FakeEnv env(TwoCpus());
  env.AddRunningTask(40.0, 0);
  env.AddTask(40.0, 0);
  env.AddTask(40.0, 0);  // 3 vs 0
  env.SetThermalPower(0, 40.0);
  env.SetThermalPower(1, 40.0);
  EnergyLoadBalancer::Options lax;
  lax.min_load_imbalance = 5;
  EnergyLoadBalancer balancer(lax);
  EXPECT_EQ(balancer.Balance(1, env).load_migrations, 0);
  EnergyLoadBalancer strict;  // default threshold 2
  EXPECT_GE(strict.Balance(1, env).load_migrations, 1);
}

TEST(BalancerOptionsTest, ResultTotalsAddUp) {
  FakeEnv env(TwoCpus());
  BuildImbalance(env);
  EnergyLoadBalancer balancer;
  const auto result = balancer.Balance(1, env);
  EXPECT_EQ(result.total(),
            result.energy_migrations + result.exchange_migrations + result.load_migrations);
  EXPECT_EQ(static_cast<std::int64_t>(result.total()), env.migration_count());
}

}  // namespace
}  // namespace eas
