#include "src/core/power_metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eas {
namespace {

TEST(CpuPowerStateTest, InitialThermalPowerIsSeed) {
  CpuPowerState state(60.0, 12.0, 13.6);
  EXPECT_DOUBLE_EQ(state.thermal_power(), 13.6);
  EXPECT_DOUBLE_EQ(state.max_power(), 60.0);
  EXPECT_NEAR(state.thermal_power_ratio(), 13.6 / 60.0, 1e-12);
}

TEST(CpuPowerStateTest, ThermalPowerFollowsConstantLoad) {
  CpuPowerState state(60.0, 12.0, 13.6);
  // 61 W for a long time: thermal power converges to 61 W.
  for (int i = 0; i < 100'000; ++i) {
    state.AccountEnergy(0.061, 0.001);
  }
  EXPECT_NEAR(state.thermal_power(), 61.0, 0.1);
}

TEST(CpuPowerStateTest, TimeConstantMatchesThermalModel) {
  // After exactly tau of constant load, thermal power covers ~63.2% of the
  // step - mirroring the RC model (the calibration of Section 4.3).
  const double tau = 12.0;
  CpuPowerState state(60.0, tau, 0.0);
  const int steps = static_cast<int>(tau / 0.001);
  for (int i = 0; i < steps; ++i) {
    state.AccountEnergy(0.050, 0.001);  // 50 W
  }
  EXPECT_NEAR(state.thermal_power(), 50.0 * (1.0 - std::exp(-1.0)), 0.3);
}

TEST(CpuPowerStateTest, ReactsSlowerThanInstantPower) {
  CpuPowerState state(60.0, 12.0, 13.6);
  // One tick of 61 W barely moves it.
  state.AccountEnergy(0.061, 0.001);
  EXPECT_LT(state.thermal_power(), 14.0);
}

TEST(CpuPowerStateTest, SeedOverrides) {
  CpuPowerState state(60.0, 12.0, 13.6);
  state.SeedThermalPower(40.0);
  EXPECT_DOUBLE_EQ(state.thermal_power(), 40.0);
}

TEST(CpuPowerStateTest, MaxPowerAdjustable) {
  CpuPowerState state(60.0, 12.0, 30.0);
  state.set_max_power(40.0);
  EXPECT_NEAR(state.thermal_power_ratio(), 0.75, 1e-12);
}

TEST(CpuPowerStateTest, DecaysTowardIdleWhenUnloaded) {
  CpuPowerState state(60.0, 12.0, 61.0);
  for (int i = 0; i < 100'000; ++i) {
    state.AccountEnergy(0.0136, 0.001);  // halted: 13.6 W
  }
  EXPECT_NEAR(state.thermal_power(), 13.6, 0.1);
}

}  // namespace
}  // namespace eas
