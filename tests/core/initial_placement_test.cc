#include "src/core/initial_placement.h"

#include <gtest/gtest.h>

#include "src/task/program.h"
#include "tests/testing/fake_env.h"

namespace eas {
namespace {

std::unique_ptr<Program> ProgramWithBinary(BinaryId id) {
  Phase phase;
  phase.mean_duration = 100;
  return std::make_unique<Program>("p" + std::to_string(id), id, std::vector<Phase>{phase}, 0);
}

TEST(InitialPlacementTest, LeastLoadedPicksEmptiestCpu) {
  FakeEnv env(CpuTopology(1, 4, 1));
  env.AddRunningTask(40.0, 0);
  env.AddRunningTask(40.0, 1);
  env.AddRunningTask(40.0, 3);
  EXPECT_EQ(InitialPlacement::PlaceLeastLoaded(env), 2);
}

TEST(InitialPlacementTest, SeedsProfileFromRegistry) {
  FakeEnv env(CpuTopology(1, 2, 1));
  BinaryRegistry registry(40.0);
  registry.RecordFirstTimeslice(77, 61.0);
  auto program = ProgramWithBinary(77);
  Task task(1, program.get(), 1);
  InitialPlacement placement;
  placement.Place(task, env, registry);
  EXPECT_DOUBLE_EQ(task.profile().power(), 61.0);
}

TEST(InitialPlacementTest, UnknownBinaryGetsDefaultSeed) {
  FakeEnv env(CpuTopology(1, 2, 1));
  BinaryRegistry registry(40.0);
  auto program = ProgramWithBinary(1234);
  Task task(1, program.get(), 1);
  InitialPlacement placement;
  placement.Place(task, env, registry);
  EXPECT_DOUBLE_EQ(task.profile().power(), 40.0);
}

TEST(InitialPlacementTest, OnlyLeastLoadedCpusEligible) {
  FakeEnv env(CpuTopology(1, 4, 1));
  // cpu0 empty and ice cold (most attractive energetically), others loaded.
  env.AddRunningTask(61.0, 1);
  env.AddRunningTask(61.0, 2);
  env.AddRunningTask(61.0, 3);
  BinaryRegistry registry(61.0);
  auto program = ProgramWithBinary(5);
  Task task(1, program.get(), 1);
  InitialPlacement placement;
  EXPECT_EQ(placement.Place(task, env, registry), 0);
}

TEST(InitialPlacementTest, HotTaskGoesToCoolQueue) {
  FakeEnv env(CpuTopology(1, 2, 1));
  // Equal load; cpu0 runs a hot task, cpu1 a cool one.
  env.AddRunningTask(61.0, 0);
  env.AddRunningTask(38.0, 1);
  BinaryRegistry registry(40.0);
  registry.RecordFirstTimeslice(9, 61.0);  // the new task is hot
  auto program = ProgramWithBinary(9);
  Task task(1, program.get(), 1);
  InitialPlacement placement;
  EXPECT_EQ(placement.Place(task, env, registry), 1);
}

TEST(InitialPlacementTest, CoolTaskGoesToHotQueue) {
  FakeEnv env(CpuTopology(1, 2, 1));
  env.AddRunningTask(61.0, 0);
  env.AddRunningTask(38.0, 1);
  BinaryRegistry registry(40.0);
  registry.RecordFirstTimeslice(10, 38.0);
  auto program = ProgramWithBinary(10);
  Task task(1, program.get(), 1);
  InitialPlacement placement;
  EXPECT_EQ(placement.Place(task, env, registry), 0);
}

TEST(InitialPlacementTest, AccountsForMaxPowerDifferences) {
  FakeEnv env(CpuTopology(1, 2, 1));
  env.SetMaxPower(0, 66.0);  // good cooler
  env.SetMaxPower(1, 44.0);  // poor cooler
  BinaryRegistry registry(40.0);
  registry.RecordFirstTimeslice(11, 61.0);
  auto program = ProgramWithBinary(11);
  Task task(1, program.get(), 1);
  InitialPlacement placement;
  // Both queues idle: the hot task must land on the better-cooled CPU
  // (smaller resulting ratio distance to the average).
  EXPECT_EQ(placement.Place(task, env, registry), 0);
}

}  // namespace
}  // namespace eas
