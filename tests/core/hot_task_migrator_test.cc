#include "src/core/hot_task_migrator.h"

#include <gtest/gtest.h>

#include "tests/testing/fake_env.h"

namespace eas {
namespace {

// 8-way SMT-off paper machine.
CpuTopology EightCpus() { return CpuTopology::PaperXSeries445(false); }

TEST(HotTaskMigratorTest, TriggerRequiresSingleTask) {
  FakeEnv env(EightCpus(), 40.0);
  env.AddRunningTask(61.0, 0);
  env.AddTask(61.0, 0);  // two tasks -> energy balancing territory
  env.SetThermalPower(0, 39.8);
  HotTaskMigrator migrator;
  EXPECT_FALSE(migrator.ShouldMigrate(0, env));
}

TEST(HotTaskMigratorTest, TriggerRequiresNearLimit) {
  FakeEnv env(EightCpus(), 40.0);
  env.AddRunningTask(61.0, 0);
  env.SetThermalPower(0, 30.0);
  HotTaskMigrator migrator;
  EXPECT_FALSE(migrator.ShouldMigrate(0, env));
  env.SetThermalPower(0, 39.5);
  EXPECT_TRUE(migrator.ShouldMigrate(0, env));
}

TEST(HotTaskMigratorTest, MigratesToIdleCoolCpu) {
  FakeEnv env(EightCpus(), 40.0);
  Task* hot = env.AddRunningTask(61.0, 0);
  env.SetThermalPower(0, 39.5);
  for (int cpu = 1; cpu < 8; ++cpu) {
    env.SetThermalPower(cpu, 13.6);
  }
  HotTaskMigrator migrator;
  const auto result = migrator.Check(0, env);
  EXPECT_TRUE(result.migrated);
  EXPECT_FALSE(result.exchanged);
  EXPECT_NE(result.destination, 0);
  EXPECT_EQ(hot->cpu(), result.destination);
  EXPECT_EQ(hot->migrations(), 1);
}

TEST(HotTaskMigratorTest, PrefersSameNodeDestination) {
  FakeEnv env(EightCpus(), 40.0);
  env.AddRunningTask(61.0, 0);
  env.SetThermalPower(0, 39.5);
  // All of node 0 fairly cool, node 1 coolest overall - but node 0 first.
  for (int cpu : {1, 2, 3}) {
    env.SetThermalPower(cpu, 15.0);
  }
  for (int cpu : {4, 5, 6, 7}) {
    env.SetThermalPower(cpu, 13.6);
  }
  HotTaskMigrator migrator;
  const auto result = migrator.Check(0, env);
  ASSERT_TRUE(result.migrated);
  EXPECT_LT(result.destination, 4) << "should stay on node 0";
}

TEST(HotTaskMigratorTest, CrossesNodeOnlyWhenNodeIsHot) {
  FakeEnv env(EightCpus(), 40.0);
  env.AddRunningTask(61.0, 0);
  env.SetThermalPower(0, 39.5);
  for (int cpu : {1, 2, 3}) {
    env.SetThermalPower(cpu, 38.0);  // node 0 all hot
  }
  for (int cpu : {4, 5, 6, 7}) {
    env.SetThermalPower(cpu, 13.6);
  }
  HotTaskMigrator migrator;
  const auto result = migrator.Check(0, env);
  ASSERT_TRUE(result.migrated);
  EXPECT_GE(result.destination, 4) << "node 0 offered no cool CPU";
}

TEST(HotTaskMigratorTest, StaysWhenAllCpusHot) {
  FakeEnv env(EightCpus(), 40.0);
  Task* hot = env.AddRunningTask(61.0, 0);
  for (int cpu = 0; cpu < 8; ++cpu) {
    env.SetThermalPower(cpu, 39.0);  // everything near the limit
  }
  HotTaskMigrator migrator;
  const auto result = migrator.Check(0, env);
  EXPECT_FALSE(result.migrated);
  EXPECT_EQ(hot->cpu(), 0);
}

TEST(HotTaskMigratorTest, RequiresConsiderablyCoolerDestination) {
  FakeEnv env(EightCpus(), 40.0);
  env.AddRunningTask(61.0, 0);
  env.SetThermalPower(0, 39.5);
  for (int cpu = 1; cpu < 8; ++cpu) {
    env.SetThermalPower(cpu, 33.0);  // cooler, but only by ~6 W < threshold
  }
  HotTaskMigrator::Options options;
  options.min_thermal_diff_watts = 10.0;
  HotTaskMigrator migrator(options);
  EXPECT_FALSE(migrator.Check(0, env).migrated);
}

TEST(HotTaskMigratorTest, ExchangesWithCoolTask) {
  FakeEnv env(EightCpus(), 40.0);
  Task* hot = env.AddRunningTask(61.0, 0);
  env.SetThermalPower(0, 39.5);
  // Every other CPU runs one cool task; cpu5 is the coolest.
  for (int cpu = 1; cpu < 8; ++cpu) {
    env.AddRunningTask(38.0, cpu);
    env.SetThermalPower(cpu, cpu == 5 ? 20.0 : 30.0);
  }
  HotTaskMigrator migrator;
  const auto result = migrator.Check(0, env);
  ASSERT_TRUE(result.migrated);
  EXPECT_TRUE(result.exchanged);
  EXPECT_EQ(result.destination, 5);
  EXPECT_EQ(hot->cpu(), 5);
  // The cool task moved to cpu0 in exchange: no load imbalance.
  EXPECT_EQ(env.runqueue(0).nr_running(), 1u);
  EXPECT_EQ(env.runqueue(5).nr_running(), 1u);
}

// Fails the Nth migration request, to model a return exchange that cannot
// complete after the hot half of the swap already did.
class FailingMigrateEnv : public FakeEnv {
 public:
  using FakeEnv::FakeEnv;

  bool MigrateTask(Task* task, int from, int to) override {
    ++migrate_calls;
    if (migrate_calls == fail_on_call) {
      return false;
    }
    return FakeEnv::MigrateTask(task, from, to);
  }

  int migrate_calls = 0;
  int fail_on_call = 2;
};

TEST(HotTaskMigratorTest, ReportsMigrationWhenReturnExchangeFails) {
  FailingMigrateEnv env(EightCpus(), 40.0);
  Task* hot = env.AddRunningTask(61.0, 0);
  env.SetThermalPower(0, 39.5);
  for (int cpu = 1; cpu < 8; ++cpu) {
    Task* cool = env.AddRunningTask(38.0, cpu);
    env.SetThermalPower(cpu, cpu == 5 ? 20.0 : 30.0);
    (void)cool;
  }
  HotTaskMigrator migrator;
  const auto result = migrator.Check(0, env);
  // The hot task did move - the statistics must report the completed half of
  // the swap even though the cool task never came back.
  EXPECT_TRUE(result.migrated);
  EXPECT_FALSE(result.exchanged);
  EXPECT_EQ(result.destination, 5);
  EXPECT_EQ(hot->cpu(), 5);
  EXPECT_EQ(env.migrate_calls, 2);
  EXPECT_EQ(env.runqueue(0).nr_running(), 0u);
  EXPECT_EQ(env.runqueue(5).nr_running(), 2u);
}

TEST(HotTaskMigratorTest, NoExchangeWithEquallyHotTask) {
  FakeEnv env(EightCpus(), 40.0);
  env.AddRunningTask(61.0, 0);
  env.SetThermalPower(0, 39.5);
  for (int cpu = 1; cpu < 8; ++cpu) {
    env.AddRunningTask(60.0, cpu);  // all running equally hot tasks
    env.SetThermalPower(cpu, 20.0);
  }
  HotTaskMigrator migrator;
  EXPECT_FALSE(migrator.Check(0, env).migrated);
}

// --- SMT rules (Section 4.7) -------------------------------------------------

TEST(HotTaskMigratorTest, SmtTriggerUsesSiblingSum) {
  FakeEnv env(CpuTopology::PaperXSeries445(true), 20.0);  // 20 W per logical
  env.AddRunningTask(61.0, 0);
  HotTaskMigrator::Options options;
  options.trigger_margin_watts = 1.0;
  HotTaskMigrator migrator(options);
  // Logical 0 at 33 W, sibling (8) idle at 6 W: sum 39 W < 40 - 1 W margin.
  env.SetThermalPower(0, 33.0);
  env.SetThermalPower(8, 6.0);
  EXPECT_FALSE(migrator.ShouldMigrate(0, env));
  env.SetThermalPower(8, 7.5);  // sum 40.5 W > 40 - margin
  EXPECT_TRUE(migrator.ShouldMigrate(0, env));
}

TEST(HotTaskMigratorTest, NeverMigratesToSibling) {
  FakeEnv env(CpuTopology::PaperXSeries445(true), 20.0);
  Task* hot = env.AddRunningTask(61.0, 0);
  env.SetThermalPower(0, 35.0);
  env.SetThermalPower(8, 6.0);  // the sibling is by far the coolest number
  for (int cpu = 1; cpu < 16; ++cpu) {
    if (cpu != 8) {
      env.SetThermalPower(cpu, 12.0);
    }
  }
  HotTaskMigrator migrator;
  const auto result = migrator.Check(0, env);
  ASSERT_TRUE(result.migrated);
  EXPECT_NE(result.destination, 8) << "sibling shares the die - migration there cannot help";
  EXPECT_NE(hot->cpu(), 8);
}

}  // namespace
}  // namespace eas
