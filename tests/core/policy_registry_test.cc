// BalancePolicyRegistry: built-in registration, lookup, unknown-name errors,
// runtime registration of new policies, and string selection end to end.

#include "src/core/policy_registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/sim/machine.h"
#include "src/workloads/programs.h"
#include "tests/testing/fake_env.h"

namespace eas {
namespace {

TEST(PolicyRegistryTest, BuiltinsRegistered) {
  const std::vector<std::string> names = BalancePolicyRegistry::Global().Names();
  for (const char* expected :
       {"load_only", "energy_aware", "power_only", "temperature_only"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << "missing builtin policy " << expected;
    EXPECT_TRUE(BalancePolicyRegistry::Global().Contains(expected));
  }
}

TEST(PolicyRegistryTest, CreateBuildsNamedPolicy) {
  const EnergySchedConfig config;
  for (const char* name : {"load_only", "energy_aware", "power_only", "temperature_only"}) {
    auto policy = BalancePolicyRegistry::Global().Create(name, config);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(PolicyRegistryTest, CreatedPolicyBalances) {
  // A 2-CPU imbalance the load step must fix, through the interface.
  FakeEnv env(CpuTopology(1, 2, 1));
  env.AddTask(30.0, 0);
  env.AddTask(30.0, 0);
  env.AddTask(30.0, 0);
  auto policy = BalancePolicyRegistry::Global().Create("load_only", EnergySchedConfig{});
  ASSERT_NE(policy, nullptr);
  EXPECT_GT(policy->Balance(1, env), 0);
  EXPECT_GT(env.migration_count(), 0);
}

TEST(PolicyRegistryTest, UnknownNameIsError) {
  const EnergySchedConfig config;
  EXPECT_EQ(BalancePolicyRegistry::Global().Create("no_such_policy", config), nullptr);
  EXPECT_FALSE(BalancePolicyRegistry::Global().Contains("no_such_policy"));
  EXPECT_THROW(BalancePolicyRegistry::Global().CreateOrThrow("no_such_policy", config),
               std::invalid_argument);
}

TEST(PolicyRegistryTest, UnknownNameInMachineConfigThrows) {
  MachineConfig config;
  config.topology = CpuTopology(1, 2, 1);
  config.cooling = CoolingProfile::Uniform(2, ThermalParams{});
  config.estimator_weights = EnergyModel::Default().weights();
  config.sched.balancer_name = "definitely_not_registered";
  EXPECT_THROW(Machine machine(config), std::invalid_argument);
}

TEST(PolicyRegistryTest, DuplicateRegistrationRejected) {
  auto factory = [](const EnergySchedConfig& config) {
    return BalancePolicyRegistry::Global().Create("load_only", config);
  };
  EXPECT_TRUE(BalancePolicyRegistry::Global().Register("dup_test_policy", factory));
  EXPECT_FALSE(BalancePolicyRegistry::Global().Register("dup_test_policy", factory));
  EXPECT_FALSE(BalancePolicyRegistry::Global().Register("load_only", factory));
}

TEST(PolicyRegistryTest, EffectiveNameResolution) {
  EnergySchedConfig config;
  EXPECT_EQ(EffectiveBalancerName(config), "energy_aware");
  config.balancer_kind = BalancerKind::kPowerOnly;
  EXPECT_EQ(EffectiveBalancerName(config), "power_only");
  config.balancer_kind = BalancerKind::kTemperatureOnly;
  EXPECT_EQ(EffectiveBalancerName(config), "temperature_only");
  config.balancer_name = "my_custom";  // explicit name beats the enum
  EXPECT_EQ(EffectiveBalancerName(config), "my_custom");
  config.energy_balancing = false;  // disabled beats everything
  EXPECT_EQ(EffectiveBalancerName(config), "load_only");
}

// A policy that never migrates anything, registered at runtime and selected
// by name: new scenarios without touching the engine.
class NullPolicy : public BalancePolicy {
 public:
  int Balance(int, BalanceEnv&) override { return 0; }
  const std::string& name() const override {
    static const std::string kName = "null_policy";
    return kName;
  }
};

TEST(PolicyRegistryTest, RuntimePolicySelectableByString) {
  BalancePolicyRegistry::Global().Register(
      "null_policy", [](const EnergySchedConfig&) { return std::make_unique<NullPolicy>(); });

  MachineConfig config;
  config.topology = CpuTopology(1, 2, 1);
  config.cooling = CoolingProfile::Uniform(2, ThermalParams{});
  config.estimator_weights = EnergyModel::Default().weights();
  config.sched.balancer_name = "null_policy";
  config.sched.hot_task_migration = false;
  // Least-loaded placement spreads tasks; with the null policy nothing may
  // ever migrate afterwards, however unbalanced things get.
  Machine machine(config);
  EXPECT_EQ(machine.engine().policy().name(), "null_policy");
  const ProgramLibrary library(EnergyModel::Default());
  machine.Spawn(library.bitcnts());
  machine.Spawn(library.bitcnts());
  machine.Spawn(library.memrw());
  machine.Run(10'000);
  EXPECT_EQ(machine.migration_count(), 0);
}


TEST(PolicyRegistryTest, SchedConfigForPolicyLoadOnlyIsFullBaseline) {
  const EnergySchedConfig config = SchedConfigForPolicy("load_only");
  EXPECT_FALSE(config.energy_balancing);
  EXPECT_FALSE(config.hot_task_migration);
  EXPECT_FALSE(config.energy_aware_placement);
  EXPECT_EQ(EffectiveBalancerName(config), "load_only");
}

TEST(PolicyRegistryTest, SchedConfigForPolicySelectsByName) {
  for (const char* name : {"energy_aware", "power_only", "temperature_only", "my_custom"}) {
    const EnergySchedConfig config = SchedConfigForPolicy(name);
    EXPECT_TRUE(config.energy_balancing) << name;
    EXPECT_TRUE(config.hot_task_migration) << name;
    EXPECT_TRUE(config.energy_aware_placement) << name;
    EXPECT_EQ(config.balancer_name, name);
    EXPECT_EQ(EffectiveBalancerName(config), name);
  }
}

}  // namespace
}  // namespace eas
