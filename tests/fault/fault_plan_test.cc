// FaultPlan parsing: the chaos layer's data model. Plans are pure data
// validated against a topology, churn expansion is a function of the spec
// text alone, and every malformed spec is rejected with a diagnostic naming
// the offending clause.

#include "src/fault/fault_plan.h"

#include <string>

#include <gtest/gtest.h>

namespace eas {
namespace {

CpuTopology SmallTopology() { return CpuTopology(1, 2, 1); }  // 2 logical, 2 packages

std::string MustFail(const std::string& spec) {
  std::string error;
  const auto plan = ParseFaultPlan(spec, SmallTopology(), &error);
  EXPECT_FALSE(plan.has_value()) << spec << " parsed unexpectedly";
  EXPECT_FALSE(error.empty()) << spec << " failed without a diagnostic";
  return error;
}

TEST(FaultPlanTest, EmptyAndNoneParseToAnEmptyPlan) {
  std::string error;
  for (const char* spec : {"", "none"}) {
    const auto plan = ParseFaultPlan(spec, SmallTopology(), &error);
    ASSERT_TRUE(plan.has_value()) << error;
    EXPECT_TRUE(plan->empty());
  }
}

TEST(FaultPlanTest, ParsesEveryClauseKind) {
  std::string error;
  const auto plan =
      ParseFaultPlan("off:1@5,on:1@10,spike:0@6:12.5:100,clamp:1@7:3:50", SmallTopology(),
                     &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->events.size(), 4u);

  EXPECT_EQ(plan->events[0].kind, FaultKind::kCpuOffline);
  EXPECT_EQ(plan->events[0].cpu, 1);
  EXPECT_EQ(plan->events[0].tick, 5);

  EXPECT_EQ(plan->events[1].kind, FaultKind::kCpuOnline);
  EXPECT_EQ(plan->events[1].cpu, 1);
  EXPECT_EQ(plan->events[1].tick, 10);

  EXPECT_EQ(plan->events[2].kind, FaultKind::kThermalSpike);
  EXPECT_EQ(plan->events[2].package, 0u);
  EXPECT_EQ(plan->events[2].tick, 6);
  EXPECT_DOUBLE_EQ(plan->events[2].delta_c, 12.5);
  EXPECT_EQ(plan->events[2].duration, 100);

  EXPECT_EQ(plan->events[3].kind, FaultKind::kPStateClamp);
  EXPECT_EQ(plan->events[3].package, 1u);
  EXPECT_EQ(plan->events[3].tick, 7);
  EXPECT_EQ(plan->events[3].floor, 3u);
  EXPECT_EQ(plan->events[3].duration, 50);
}

TEST(FaultPlanTest, SameTickClausesKeepSpecOrder) {
  // The engine queues events keyed (tick, position), so the vector order of
  // same-tick clauses is the injection order.
  std::string error;
  const auto plan = ParseFaultPlan("on:0@7,off:1@7,spike:0@7:5:10", SmallTopology(), &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->events.size(), 3u);
  EXPECT_EQ(plan->events[0].kind, FaultKind::kCpuOnline);
  EXPECT_EQ(plan->events[1].kind, FaultKind::kCpuOffline);
  EXPECT_EQ(plan->events[2].kind, FaultKind::kThermalSpike);
}

TEST(FaultPlanTest, ChurnExpandsDeterministically) {
  // The same churn clause must expand to the identical schedule on every
  // parse: the expansion draws only from Rng(seed), never shared state.
  std::string error;
  const auto first = ParseFaultPlan("churn:6@1000:42", SmallTopology(), &error);
  ASSERT_TRUE(first.has_value()) << error;
  const auto second = ParseFaultPlan("churn:6@1000:42", SmallTopology(), &error);
  ASSERT_TRUE(second.has_value()) << error;

  ASSERT_EQ(first->events.size(), 12u);  // 6 offline/online pairs
  ASSERT_EQ(second->events.size(), first->events.size());
  for (std::size_t i = 0; i < first->events.size(); ++i) {
    const FaultEvent& a = first->events[i];
    const FaultEvent& b = second->events[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.cpu, b.cpu) << i;
    EXPECT_EQ(a.tick, b.tick) << i;
  }
  // Each pair: a valid-CPU offline inside the horizon, then its online
  // strictly after.
  for (std::size_t i = 0; i < first->events.size(); i += 2) {
    const FaultEvent& off = first->events[i];
    const FaultEvent& on = first->events[i + 1];
    EXPECT_EQ(off.kind, FaultKind::kCpuOffline);
    EXPECT_EQ(on.kind, FaultKind::kCpuOnline);
    EXPECT_EQ(on.cpu, off.cpu);
    EXPECT_GE(off.cpu, 0);
    EXPECT_LT(off.cpu, 2);
    EXPECT_GE(off.tick, 1);
    EXPECT_LE(off.tick, 1000);
    EXPECT_GT(on.tick, off.tick);
  }
}

TEST(FaultPlanTest, DifferentChurnSeedsDiffer) {
  std::string error;
  const auto a = ParseFaultPlan("churn:8@5000:1", SmallTopology(), &error);
  ASSERT_TRUE(a.has_value()) << error;
  const auto b = ParseFaultPlan("churn:8@5000:2", SmallTopology(), &error);
  ASSERT_TRUE(b.has_value()) << error;
  bool any_difference = false;
  for (std::size_t i = 0; i < a->events.size(); ++i) {
    if (a->events[i].tick != b->events[i].tick || a->events[i].cpu != b->events[i].cpu) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference) << "seeds 1 and 2 expanded to the same schedule";
}

TEST(FaultPlanTest, RejectsMalformedSpecsNamingTheClause) {
  EXPECT_NE(MustFail("off:9@5").find("off:9@5"), std::string::npos);           // cpu range
  EXPECT_NE(MustFail("spike:7@5:10:10").find("package"), std::string::npos);   // pkg range
  EXPECT_NE(MustFail("off:0@-3").find("tick"), std::string::npos);             // bad tick
  EXPECT_NE(MustFail("spike:0@5:10:0").find("duration"), std::string::npos);   // dur >= 1
  EXPECT_NE(MustFail("clamp:0@5:2:0").find("duration"), std::string::npos);
  EXPECT_NE(MustFail("spike:0@5:nan:10").find("spike"), std::string::npos);    // finite only
  EXPECT_NE(MustFail("frobnicate:0@5").find("frobnicate"), std::string::npos); // unknown kind
  MustFail("off:0@5,,on:0@9");                                                 // empty clause
  MustFail("off:0");                                                           // missing @tick
  MustFail("churn:0@100:7");                                                   // count >= 1
  MustFail("churn:3@1:7");                                                     // horizon >= 2
}

TEST(FaultPlanTest, GrammarDocumentsEveryClauseKind) {
  const std::string grammar = FaultPlanGrammar();
  for (const char* kind : {"off:", "on:", "spike:", "clamp:", "churn:", "none"}) {
    EXPECT_NE(grammar.find(kind), std::string::npos) << kind;
  }
}

}  // namespace
}  // namespace eas
