// Fault injection end to end: the FaultPhase's reactions (drain/re-place,
// emergency stepdown, hlt backstop, clamp floors), the offline tick ledger,
// the InvariantChecker's conservation sweep, and the determinism contracts
// (bit-identical across intra-worker counts and skip-ahead settings; a
// never-firing plan changes nothing but the fault columns).

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/counters/energy_model.h"
#include "src/sim/experiment.h"
#include "src/sim/invariant_checker.h"
#include "src/sim/machine.h"
#include "src/workloads/programs.h"

namespace eas {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.topology = CpuTopology(1, 2, 1);
  ThermalParams params;
  params.resistance = 0.3;
  params.capacitance = 40.0;
  config.cooling = CoolingProfile::Uniform(2, params);
  // Generous budget: these tests exercise fault mechanics, not policies.
  config.explicit_max_power_physical = 120.0;
  config.sched = EnergySchedConfig::EnergyAware();
  config.estimator_weights = EnergyModel::Default().weights();
  return config;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : library_(EnergyModel::Default()) {}
  ProgramLibrary library_;
};

TEST_F(FaultInjectionTest, OfflineDrainsTheRunqueueAndReplacesItsTasks) {
  MachineConfig config = SmallConfig();
  config.fault_spec = "off:1@100";
  Machine machine(config);
  Task* a = machine.Spawn(library_.bitcnts());
  Task* b = machine.Spawn(library_.bitcnts());
  machine.Run(300);

  const SimulationState& state = machine.state();
  EXPECT_FALSE(state.CpuOnline(1));
  EXPECT_TRUE(state.CpuOnline(0));
  EXPECT_EQ(state.runqueue(1).nr_running(), 0u);
  // Both tasks survived the drain and landed on the surviving CPU.
  EXPECT_EQ(a->cpu(), 0);
  EXPECT_EQ(b->cpu(), 0);
  EXPECT_EQ(state.runqueue(0).nr_running(), 2u);
  EXPECT_EQ(state.faults_fired(), 1);
  EXPECT_EQ(state.offline_cpu_count(), 1);
}

TEST_F(FaultInjectionTest, OnlineRestoresCapacityWithExactAccounting) {
  MachineConfig config = SmallConfig();
  config.fault_spec = "off:1@100,on:1@200";
  Machine machine(config);
  machine.Spawn(library_.bitcnts());
  machine.Spawn(library_.bitcnts());
  machine.Run(2'000);

  const SimulationState& state = machine.state();
  EXPECT_TRUE(state.CpuOnline(1));
  EXPECT_EQ(state.offline_cpu_count(), 0);
  // The ledger accumulates exactly one offline CPU for exactly the ticks of
  // the offline window: the off event at 100 counts that tick, the on event
  // at 200 stops the count before it.
  EXPECT_EQ(state.offline_cpu_ticks(), 100);
  EXPECT_EQ(state.faults_fired(), 2);
  // Balancing repopulated the restored CPU: with two hot tasks and two
  // CPUs, both queues are busy again.
  EXPECT_EQ(state.runqueue(0).nr_running(), 1u);
  EXPECT_EQ(state.runqueue(1).nr_running(), 1u);
}

TEST_F(FaultInjectionTest, LastOnlineCpuRefusesToGoOffline) {
  MachineConfig config = SmallConfig();
  config.fault_spec = "off:0@50,off:1@60";
  Machine machine(config);
  Task* task = machine.Spawn(library_.bitcnts());
  machine.Run(200);

  const SimulationState& state = machine.state();
  // CPU 0 went down; the plan's attempt on CPU 1 - the last online CPU -
  // was refused, so the machine never loses its ability to run work.
  EXPECT_FALSE(state.CpuOnline(0));
  EXPECT_TRUE(state.CpuOnline(1));
  EXPECT_EQ(state.offline_cpu_count(), 1);
  EXPECT_EQ(state.faults_fired(), 1);  // the refused offline does not count
  EXPECT_EQ(task->cpu(), 1);
  EXPECT_GT(task->work_done_ticks(), 0.0);
}

TEST_F(FaultInjectionTest, ThermalSpikeForcesTheGovernorToTheDeepestPState) {
  MachineConfig config = SmallConfig();
  config.frequency_governor = "thermal-stepdown";
  config.fault_spec = "spike:0@50:15:200";
  Machine machine(config);
  machine.Spawn(library_.memrw());  // light load: the governor would sit at P0
  const double before = machine.Temperature(0);
  machine.Run(100);  // now = 100, inside the emergency window [50, 250)

  const SimulationState& state = machine.state();
  EXPECT_TRUE(state.EmergencyActive(0));
  EXPECT_EQ(state.freq_domain(0).current(), state.freq_domain(0).table().deepest());
  EXPECT_GT(machine.Temperature(0), before);
  // The other package is untouched.
  EXPECT_FALSE(state.EmergencyActive(1));

  machine.Run(300);  // past the window: the governor is free again
  EXPECT_FALSE(machine.state().EmergencyActive(0));
}

TEST_F(FaultInjectionTest, ThermalSpikeEngagesTheHltBackstopWhenUngoverned) {
  MachineConfig config = SmallConfig();
  // No governor and no thermal throttling configured: the emergency has no
  // frequency ladder to descend, so the hlt gate is the backstop.
  config.throttling_enabled = false;
  config.fault_spec = "spike:0@50:20:300";
  Machine machine(config);
  machine.Spawn(library_.bitcnts());
  machine.Run(1'000);

  const SimulationState& state = machine.state();
  EXPECT_GT(state.package_throttle(0).ThrottledFraction(), 0.0);
  EXPECT_EQ(state.package_throttle(1).ThrottledFraction(), 0.0);
}

TEST_F(FaultInjectionTest, ClampFloorsThePStateForItsWindow) {
  MachineConfig config = SmallConfig();
  config.frequency_governor = "thermal-stepdown";
  config.fault_spec = "clamp:0@50:2:200";
  Machine machine(config);
  machine.Spawn(library_.memrw());  // light load: governor alone would pick P0
  machine.Run(100);  // inside the clamp window

  const SimulationState& state = machine.state();
  EXPECT_TRUE(state.ClampActive(0));
  EXPECT_GE(state.freq_domain(0).current(), 2u);

  machine.Run(300);  // window expired
  EXPECT_FALSE(machine.state().ClampActive(0));
}

TEST_F(FaultInjectionTest, ClampRestoresAnUngovernedDomainOnExpiry) {
  MachineConfig config = SmallConfig();
  config.fault_spec = "clamp:0@50:3:100";
  Machine machine(config);
  machine.Spawn(library_.bitcnts());
  machine.Run(100);  // inside the window: the ungoverned domain sits at the floor
  EXPECT_EQ(machine.state().freq_domain(0).current(), 3u);
  machine.Run(100);  // expired: the FaultPhase restores P0 (the ungoverned rest state)
  EXPECT_EQ(machine.state().freq_domain(0).current(), 0u);
}

TEST_F(FaultInjectionTest, InvariantCheckerPassesACleanChaosRun) {
  MachineConfig config = SmallConfig();
  config.fault_spec = "churn:4@800:9,spike:0@100:10:200,clamp:1@300:2:200";
  Machine machine(config);
  InvariantChecker checker(machine.state());
  machine.engine().AddObserver(&checker);
  machine.Spawn(library_.bitcnts());
  machine.Spawn(library_.memrw());
  machine.Run(1'000);
  machine.engine().RemoveObserver(&checker);
  // Faulted runs never take the closed-form skip path, so the checker saw
  // every tick.
  EXPECT_EQ(checker.ticks_checked(), 1'000);
}

TEST_F(FaultInjectionTest, InvariantCheckerThrowsOnACorruptedQueue) {
  MachineConfig config = SmallConfig();
  config.fault_spec = "off:1@500000";  // arm the checker path; never fires here
  Machine machine(config);
  Task* task = machine.Spawn(library_.bitcnts());
  machine.Run(10);

  InvariantChecker checker(machine.state());
  // Corrupt the bookkeeping: the task sits on one queue but claims another.
  task->set_cpu(task->cpu() == 0 ? 1 : 0);
  EXPECT_THROW(checker.OnTick(machine.state()), std::runtime_error);
}

// --- determinism contracts ---------------------------------------------------

RunResult RunChaos(std::size_t intra_threads, bool skip_ahead, const std::string& faults) {
  MachineConfig config;
  config.topology = CpuTopology(1, 2, 2);  // 2 packages, SMT: 4 logical CPUs
  ThermalParams params;
  params.resistance = 0.3;
  params.capacitance = 40.0;
  config.cooling = CoolingProfile::Uniform(2, params);
  config.explicit_max_power_physical = 60.0;
  config.sched = EnergySchedConfig::EnergyAware();
  config.estimator_weights = EnergyModel::Default().weights();
  config.frequency_governor = "thermal-stepdown";
  config.intra_run_threads = intra_threads;
  config.skip_ahead = skip_ahead;
  config.fault_spec = faults;

  Experiment::Options options;
  options.duration_ticks = 4'000;
  Experiment experiment(config, options);
  ProgramLibrary library(EnergyModel::Default());
  Workload workload;
  workload.Add(library.bitcnts());
  workload.Add(library.memrw());
  workload.Add(library.pushpop());
  workload.Add(library.sshd(), /*tick=*/700);
  workload.Add(library.sshd(), /*tick=*/1'400);
  return experiment.Run(workload);
}

void ExpectBitIdentical(const RunResult& a, const RunResult& b, const std::string& label) {
  // Bitwise equality, not near-equality: the fault layer promises identical
  // results for every worker count and skip-ahead setting.
  EXPECT_EQ(a.work_done_ticks, b.work_done_ticks) << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.completions, b.completions) << label;
  EXPECT_EQ(a.faults_fired, b.faults_fired) << label;
  EXPECT_EQ(a.offline_cpu_ticks, b.offline_cpu_ticks) << label;
  EXPECT_EQ(a.throttled_fraction, b.throttled_fraction) << label;
  EXPECT_EQ(a.average_frequency, b.average_frequency) << label;
  EXPECT_EQ(a.pstate_residency, b.pstate_residency) << label;
  ASSERT_EQ(a.thermal_power.size(), b.thermal_power.size()) << label;
  for (std::size_t s = 0; s < a.thermal_power.size(); ++s) {
    const Series& sa = a.thermal_power.at(s);
    const Series& sb = b.thermal_power.at(s);
    ASSERT_EQ(sa.size(), sb.size()) << label;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa.value_at(i), sb.value_at(i)) << label << " sample " << i;
    }
  }
}

TEST_F(FaultInjectionTest, ChaosIsBitIdenticalAcrossIntraWorkersAndSkipAhead) {
  const std::string faults = "churn:4@3000:17,spike:0@400:12:600,clamp:1@900:2:800,off:3@200,on:3@1200";
  const RunResult base = RunChaos(0, /*skip_ahead=*/true, faults);
  ASSERT_TRUE(base.faults_fired.has_value());
  EXPECT_GT(*base.faults_fired, 0);
  ExpectBitIdentical(base, RunChaos(1, true, faults), "intra 1");
  ExpectBitIdentical(base, RunChaos(3, true, faults), "intra 3");
  ExpectBitIdentical(base, RunChaos(0, false, faults), "skip-ahead off");
  ExpectBitIdentical(base, RunChaos(3, false, faults), "intra 3, skip-ahead off");
}

TEST_F(FaultInjectionTest, NeverFiringPlanChangesNothingButTheFaultColumns) {
  // A plan whose only event sits past the horizon arms the fault machinery
  // (slow tick path, queue bounds on skip spans) but must not change one
  // bit of the physics or scheduling results.
  const RunResult faulted = RunChaos(0, true, "off:1@50000000");
  const RunResult clean = RunChaos(0, true, "");
  EXPECT_EQ(faulted.work_done_ticks, clean.work_done_ticks);
  EXPECT_EQ(faulted.migrations, clean.migrations);
  EXPECT_EQ(faulted.completions, clean.completions);
  EXPECT_EQ(faulted.throttled_fraction, clean.throttled_fraction);
  EXPECT_EQ(faulted.average_frequency, clean.average_frequency);
  EXPECT_EQ(faulted.pstate_residency, clean.pstate_residency);
  ASSERT_EQ(faulted.thermal_power.size(), clean.thermal_power.size());
  for (std::size_t s = 0; s < faulted.thermal_power.size(); ++s) {
    const Series& sa = faulted.thermal_power.at(s);
    const Series& sb = clean.thermal_power.at(s);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa.value_at(i), sb.value_at(i)) << "sample " << i;
    }
  }
  // The only difference: the faulted run reports its (zero-fired) columns.
  ASSERT_TRUE(faulted.faults_fired.has_value());
  EXPECT_EQ(*faulted.faults_fired, 0);
  EXPECT_FALSE(clean.faults_fired.has_value());
}

}  // namespace
}  // namespace eas
