#include "src/workloads/workload_builder.h"

#include <gtest/gtest.h>

namespace eas {
namespace {

class WorkloadBuilderTest : public ::testing::Test {
 protected:
  WorkloadBuilderTest() : model_(EnergyModel::Default()), library_(model_) {}
  EnergyModel model_;
  ProgramLibrary library_;
};

TEST_F(WorkloadBuilderTest, MixedInterleavesPrograms) {
  const auto spawn = MixedWorkload(library_, 2);
  ASSERT_EQ(spawn.size(), 12u);
  // One full rotation of the six programs before any repeats.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(spawn[static_cast<std::size_t>(i)], spawn[static_cast<std::size_t>(i + 6)]);
  }
}

TEST_F(WorkloadBuilderTest, MixedZeroInstancesEmpty) {
  EXPECT_TRUE(MixedWorkload(library_, 0).empty());
}

TEST_F(WorkloadBuilderTest, HomogeneityInterleavesClasses) {
  const auto spawn = HomogeneityWorkload(library_, 2, 2, 2);
  ASSERT_EQ(spawn.size(), 6u);
  // Round-robin: memrw, pushpop, bitcnts, memrw, pushpop, bitcnts.
  EXPECT_EQ(spawn[0], &library_.memrw());
  EXPECT_EQ(spawn[1], &library_.pushpop());
  EXPECT_EQ(spawn[2], &library_.bitcnts());
  EXPECT_EQ(spawn[3], &library_.memrw());
}

TEST_F(WorkloadBuilderTest, HomogeneityHandlesUnevenCounts) {
  const auto spawn = HomogeneityWorkload(library_, 0, 18, 0);
  EXPECT_EQ(spawn.size(), 18u);
  for (const Program* p : spawn) {
    EXPECT_EQ(p, &library_.pushpop());
  }
}

TEST_F(WorkloadBuilderTest, HomogeneityExhaustsLongestTail) {
  const auto spawn = HomogeneityWorkload(library_, 1, 0, 4);
  ASSERT_EQ(spawn.size(), 5u);
  EXPECT_EQ(spawn[0], &library_.memrw());
  EXPECT_EQ(spawn[1], &library_.bitcnts());
  EXPECT_EQ(spawn[4], &library_.bitcnts());
}

TEST_F(WorkloadBuilderTest, HotTaskWorkloadSizes) {
  EXPECT_TRUE(HotTaskWorkload(library_, 0).empty());
  EXPECT_EQ(HotTaskWorkload(library_, 8).size(), 8u);
}

TEST_F(WorkloadBuilderTest, ParseSpecMixed) {
  EXPECT_EQ(ParseWorkloadSpec("mixed:2", library_).size(), 12u);
  EXPECT_EQ(ParseWorkloadSpec("mixed", library_).size(), 18u);  // default 3
}

TEST_F(WorkloadBuilderTest, ParseSpecHomog) {
  const auto spawn = ParseWorkloadSpec("homog:8,2,8", library_);
  EXPECT_EQ(spawn.size(), 18u);
  EXPECT_TRUE(ParseWorkloadSpec("homog:8,2", library_).empty());  // malformed
  EXPECT_TRUE(ParseWorkloadSpec("homog:-1,2,3", library_).empty());
}

TEST_F(WorkloadBuilderTest, ParseSpecHotAndShort) {
  EXPECT_EQ(ParseWorkloadSpec("hot:4", library_).size(), 4u);
  EXPECT_EQ(ParseWorkloadSpec("hot", library_).size(), 1u);
  const auto shorts = ParseWorkloadSpec("short:6", library_);
  ASSERT_EQ(shorts.size(), 6u);
  EXPECT_EQ(shorts[0], &library_.short_hot());
  EXPECT_EQ(shorts[1], &library_.short_cool());
}

TEST_F(WorkloadBuilderTest, ParseSpecList) {
  const auto spawn = ParseWorkloadSpec("list:bitcnts*2,memrw,sshd*3", library_);
  ASSERT_EQ(spawn.size(), 6u);
  EXPECT_EQ(spawn[0], &library_.bitcnts());
  EXPECT_EQ(spawn[1], &library_.bitcnts());
  EXPECT_EQ(spawn[2], &library_.memrw());
  EXPECT_EQ(spawn[3], &library_.sshd());
  EXPECT_EQ(spawn[5], &library_.sshd());
}

TEST_F(WorkloadBuilderTest, ParseSpecListRejectsMalformed) {
  EXPECT_TRUE(ParseWorkloadSpec("list:", library_).empty());
  EXPECT_TRUE(ParseWorkloadSpec("list:nosuchprogram", library_).empty());
  EXPECT_TRUE(ParseWorkloadSpec("list:bitcnts*", library_).empty());
  EXPECT_TRUE(ParseWorkloadSpec("list:bitcnts*0", library_).empty());
  EXPECT_TRUE(ParseWorkloadSpec("list:bitcnts*x", library_).empty());
  EXPECT_TRUE(ParseWorkloadSpec("list:bitcnts,,memrw", library_).empty());
  // Overflowing / absurd repeat counts are rejected, not wrapped or OOMed.
  EXPECT_TRUE(ParseWorkloadSpec("list:bitcnts*8589934593", library_).empty());  // 2^33+1
  EXPECT_TRUE(ParseWorkloadSpec("list:bitcnts*99999999999999999999", library_).empty());
  EXPECT_TRUE(ParseWorkloadSpec("list:bitcnts*2000000000", library_).empty());
}

TEST_F(WorkloadBuilderTest, ParseSpecRejectsUnknown) {
  EXPECT_TRUE(ParseWorkloadSpec("bogus:3", library_).empty());
  EXPECT_TRUE(ParseWorkloadSpec("", library_).empty());
}

}  // namespace
}  // namespace eas
