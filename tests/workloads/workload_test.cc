// Workload container (arrival ordering, ownership) and the generator
// family: phase-shift programs, Poisson open-loop arrivals, trace playback.

#include "src/workloads/workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace eas {
namespace {

TEST(WorkloadTest, LegacyVectorArrivesAtTickZero) {
  const ProgramLibrary library(EnergyModel::Default());
  const Workload workload(std::vector<const Program*>{&library.bitcnts(), &library.memrw()});
  ASSERT_EQ(workload.size(), 2u);
  EXPECT_EQ(workload.InitialTasks(), 2u);
  EXPECT_EQ(workload.arrivals()[0].tick, 0);
  EXPECT_EQ(workload.arrivals()[0].program, &library.bitcnts());
}

TEST(WorkloadTest, ArrivalsSortedStable) {
  const ProgramLibrary library(EnergyModel::Default());
  Workload workload;
  workload.Add(library.bitcnts(), 500);
  workload.Add(library.memrw(), 0);
  workload.Add(library.pushpop(), 500);  // same tick: insertion order kept
  workload.Add(library.aluadd(), 100);
  const auto& arrivals = workload.arrivals();
  ASSERT_EQ(arrivals.size(), 4u);
  EXPECT_EQ(arrivals[0].program, &library.memrw());
  EXPECT_EQ(arrivals[1].program, &library.aluadd());
  EXPECT_EQ(arrivals[2].program, &library.bitcnts());
  EXPECT_EQ(arrivals[3].program, &library.pushpop());
  EXPECT_EQ(workload.InitialTasks(), 1u);
}

TEST(WorkloadTest, CopiesShareOwnedProgramsAndRetainedResources) {
  Workload copy;
  {
    auto library = std::make_shared<ProgramLibrary>(EnergyModel::Default());
    Workload original;
    original.Add(library->bitcnts(), 0);
    const Program* generated = original.Own(std::make_unique<Program>(
        "generated", 9001, std::vector<Phase>{Phase{}}, /*total_work_ticks=*/0));
    original.Add(*generated, 10);
    original.Retain(library);
    copy = original;
    // library and original go out of scope; the copy must stay valid.
  }
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.arrivals()[0].program->name(), "bitcnts");
  EXPECT_EQ(copy.arrivals()[1].program->name(), "generated");
}

TEST(GeneratorsTest, PhaseShiftAlternatesStartMix) {
  const EnergyModel model = EnergyModel::Default();
  PhaseShiftOptions options;
  options.tasks = 4;
  const Workload workload = PhaseShiftWorkload(model, options);
  ASSERT_EQ(workload.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const Program* program = workload.arrivals()[i].program;
    ASSERT_EQ(program->num_phases(), 2u);
    // Phases must actually shift the mix: phase powers differ by > 10 W.
    const double p0 = model.NominalTotalPower(program->phase(0).rates);
    const double p1 = model.NominalTotalPower(program->phase(1).rates);
    EXPECT_GT(std::abs(p0 - p1), 10.0);
    // Even tasks start hot, odd tasks start cool.
    if (i % 2 == 0) {
      EXPECT_GT(p0, p1);
    } else {
      EXPECT_LT(p0, p1);
    }
  }
}

TEST(GeneratorsTest, PoissonDeterministicPerSeedOpenLoop) {
  const ProgramLibrary library(EnergyModel::Default());
  PoissonOptions options;
  options.arrivals_per_second = 5.0;
  options.horizon_ticks = 100'000;  // 100 s -> ~500 arrivals
  options.initial_tasks = 2;
  options.seed = 11;
  const Workload a = PoissonWorkload(library.Table2Programs(), options);
  const Workload b = PoissonWorkload(library.Table2Programs(), options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.arrivals().size(); ++i) {
    EXPECT_EQ(a.arrivals()[i].tick, b.arrivals()[i].tick);
    EXPECT_EQ(a.arrivals()[i].program, b.arrivals()[i].program);
  }
  // Open loop: arrivals keep coming over the whole horizon, at roughly the
  // requested rate (law of large numbers; the bound is generous).
  EXPECT_EQ(a.InitialTasks(), 2u);
  const std::size_t arrivals = a.size() - a.InitialTasks();
  EXPECT_GT(arrivals, 350u);
  EXPECT_LT(arrivals, 650u);
  EXPECT_GT(a.arrivals().back().tick, 80'000);
  // A different seed moves the arrival times.
  options.seed = 12;
  const Workload c = PoissonWorkload(library.Table2Programs(), options);
  bool any_difference = c.size() != a.size();
  for (std::size_t i = a.InitialTasks(); !any_difference && i < std::min(a.size(), c.size());
       ++i) {
    any_difference = a.arrivals()[i].tick != c.arrivals()[i].tick;
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorsTest, PoissonEmptyMixAndZeroRate) {
  const ProgramLibrary library(EnergyModel::Default());
  EXPECT_TRUE(PoissonWorkload({}, PoissonOptions{}).empty());
  PoissonOptions options;
  options.arrivals_per_second = 0.0;
  options.initial_tasks = 3;
  const Workload workload = PoissonWorkload(library.Table2Programs(), options);
  EXPECT_EQ(workload.size(), 3u);  // initial tasks only, no arrivals
}

TEST(GeneratorsTest, TraceParsesHeaderCommentsAndNice) {
  const ProgramLibrary library(EnergyModel::Default());
  Workload workload;
  std::string error;
  ASSERT_TRUE(ParseTraceWorkload(
      "tick,program,nice\n"
      "# warm floor\n"
      "0,memrw\n"
      "\n"
      "150, bitcnts , 5\n",
      library, &workload, &error))
      << error;
  ASSERT_EQ(workload.size(), 2u);
  EXPECT_EQ(workload.arrivals()[0].program, &library.memrw());
  EXPECT_EQ(workload.arrivals()[1].tick, 150);
  EXPECT_EQ(workload.arrivals()[1].program, &library.bitcnts());
  EXPECT_EQ(workload.arrivals()[1].nice, 5);
}

TEST(GeneratorsTest, TraceRejectsBadRows) {
  const ProgramLibrary library(EnergyModel::Default());
  Workload workload;
  std::string error;
  EXPECT_FALSE(ParseTraceWorkload("0,no_such_program\n", library, &workload, &error));
  EXPECT_NE(error.find("no_such_program"), std::string::npos);
  EXPECT_FALSE(ParseTraceWorkload("0,memrw\n-5,bitcnts\n", library, &workload, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseTraceWorkload("0,memrw\nx,bitcnts\n", library, &workload, &error));
  EXPECT_FALSE(ParseTraceWorkload("0,memrw,1,extra\n", library, &workload, &error));
  EXPECT_FALSE(ParseTraceWorkload("0,memrw,99\n", library, &workload, &error));
  // A typoed tick in the FIRST row of a headerless trace must error, not be
  // silently swallowed as a "header".
  EXPECT_FALSE(ParseTraceWorkload("1O000,bitcnts\n0,memrw\n", library, &workload, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(GeneratorsTest, LoadTraceWorkloadRoundTrip) {
  const ProgramLibrary library(EnergyModel::Default());
  const std::string path = "/tmp/eas_workload_trace_test.csv";
  {
    std::ofstream out(path);
    out << "tick,program\n0,memrw\n1000,bitcnts\n";
  }
  Workload workload;
  std::string error;
  ASSERT_TRUE(LoadTraceWorkload(path, library, &workload, &error)) << error;
  EXPECT_EQ(workload.size(), 2u);
  std::remove(path.c_str());

  EXPECT_FALSE(LoadTraceWorkload("/nonexistent/trace.csv", library, &workload, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace eas
