#include "src/workloads/programs.h"

#include <gtest/gtest.h>

#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

class ProgramLibraryTest : public ::testing::Test {
 protected:
  ProgramLibraryTest() : model_(EnergyModel::Default()), library_(model_) {}
  EnergyModel model_;
  ProgramLibrary library_;
};

TEST_F(ProgramLibraryTest, Table2PowersMatchPaper) {
  // Table 2: bitcnts 61 W, memrw 38 W, aluadd 50 W, pushpop 47 W.
  EXPECT_NEAR(ProgramLibrary::NominalPower(model_, library_.bitcnts()), 61.0, 0.01);
  EXPECT_NEAR(ProgramLibrary::NominalPower(model_, library_.memrw()), 38.0, 0.01);
  EXPECT_NEAR(ProgramLibrary::NominalPower(model_, library_.aluadd()), 50.0, 0.01);
  EXPECT_NEAR(ProgramLibrary::NominalPower(model_, library_.pushpop()), 47.0, 0.01);
}

TEST_F(ProgramLibraryTest, OpensslSpansPaperRange) {
  // openssl varies between 42 W and 57 W across its phases.
  double lo = 1e9;
  double hi = 0.0;
  for (const Phase& phase : library_.openssl().phases()) {
    if (phase.mean_duration < 1000) {
      continue;  // transition dips are not benchmark phases
    }
    const double power = model_.NominalTotalPower(phase.rates);
    lo = std::min(lo, power);
    hi = std::max(hi, power);
  }
  EXPECT_NEAR(lo, 42.0, 0.5);
  EXPECT_NEAR(hi, 57.0, 0.5);
}

TEST_F(ProgramLibraryTest, Bzip2AveragesNear48) {
  double weighted = 0.0;
  double total_duration = 0.0;
  for (const Phase& phase : library_.bzip2().phases()) {
    weighted += model_.NominalTotalPower(phase.rates) * static_cast<double>(phase.mean_duration);
    total_duration += static_cast<double>(phase.mean_duration);
  }
  EXPECT_NEAR(weighted / total_duration, 48.0, 1.5);
}

TEST_F(ProgramLibraryTest, InteractiveProgramsBlock) {
  bool bash_blocks = false;
  for (const Phase& phase : library_.bash().phases()) {
    if (phase.mean_sleep_after > 0) {
      bash_blocks = true;
    }
  }
  EXPECT_TRUE(bash_blocks);
  bool sshd_blocks = false;
  for (const Phase& phase : library_.sshd().phases()) {
    if (phase.mean_sleep_after > 0) {
      sshd_blocks = true;
    }
  }
  EXPECT_TRUE(sshd_blocks);
}

TEST_F(ProgramLibraryTest, BatchProgramsDoNotBlock) {
  for (const Program* program : {&library_.bitcnts(), &library_.memrw(), &library_.aluadd(),
                                 &library_.pushpop()}) {
    for (const Phase& phase : program->phases()) {
      EXPECT_EQ(phase.mean_sleep_after, 0) << program->name();
    }
  }
}

TEST_F(ProgramLibraryTest, DistinctBinaryIds) {
  std::vector<const Program*> all = library_.Table2Programs();
  for (const Program* p : library_.Table1Programs()) {
    all.push_back(p);
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      if (all[i] != all[j]) {
        EXPECT_NE(all[i]->binary_id(), all[j]->binary_id())
            << all[i]->name() << " vs " << all[j]->name();
      }
    }
  }
}

TEST_F(ProgramLibraryTest, ByNameLookup) {
  EXPECT_EQ(library_.ByName("bitcnts"), &library_.bitcnts());
  EXPECT_EQ(library_.ByName("nonexistent"), nullptr);
}

TEST_F(ProgramLibraryTest, ShortTasksHaveSmallWork) {
  EXPECT_GT(library_.short_hot().total_work_ticks(), 0);
  EXPECT_LT(library_.short_hot().total_work_ticks(), 1000);
}

TEST_F(ProgramLibraryTest, MixedWorkloadComposition) {
  const auto spawn = MixedWorkload(library_, 3);
  EXPECT_EQ(spawn.size(), 18u);
  int bitcnts_count = 0;
  for (const Program* p : spawn) {
    if (p == &library_.bitcnts()) {
      ++bitcnts_count;
    }
  }
  EXPECT_EQ(bitcnts_count, 3);
}

TEST_F(ProgramLibraryTest, HomogeneityWorkloadCounts) {
  const auto spawn = HomogeneityWorkload(library_, 8, 2, 8);
  EXPECT_EQ(spawn.size(), 18u);
  int counts[3] = {0, 0, 0};
  for (const Program* p : spawn) {
    if (p == &library_.memrw()) {
      ++counts[0];
    } else if (p == &library_.pushpop()) {
      ++counts[1];
    } else if (p == &library_.bitcnts()) {
      ++counts[2];
    }
  }
  EXPECT_EQ(counts[0], 8);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 8);
}

TEST_F(ProgramLibraryTest, HotTaskWorkloadIsAllBitcnts) {
  const auto spawn = HotTaskWorkload(library_, 4);
  EXPECT_EQ(spawn.size(), 4u);
  for (const Program* p : spawn) {
    EXPECT_EQ(p, &library_.bitcnts());
  }
}

}  // namespace
}  // namespace eas
