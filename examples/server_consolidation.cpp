// Server consolidation scenario: a thermally constrained server runs a mix
// of hot (compute) and cool (memory-bound) services plus interactive
// daemons. The operator caps each package at a temperature limit; throttling
// eats throughput unless the scheduler spreads heat.
//
// Demonstrates: per-CPU thermal limits from cooling calibration, throttling
// accounting, and the throughput effect of the paper's policy (Section 6.2).

#include <cstdio>
#include <vector>

#include "src/sim/experiment.h"
#include "src/workloads/programs.h"

namespace {

struct Outcome {
  double throughput = 0.0;
  double avg_throttled = 0.0;
  std::vector<double> per_cpu_throttled;
};

Outcome RunServer(bool energy_aware) {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/true);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.temp_limit = 38.0;        // artificial limit -> per-CPU max power
  config.throttling_enabled = true;
  config.sched = energy_aware ? eas::EnergySchedConfig::EnergyAware()
                              : eas::EnergySchedConfig::Baseline();

  const eas::ProgramLibrary library(config.model);
  std::vector<const eas::Program*> services;
  for (int i = 0; i < 8; ++i) {
    services.push_back(&library.bitcnts());  // compute-heavy service workers
  }
  for (int i = 0; i < 12; ++i) {
    services.push_back(&library.memrw());  // cache/memory-bound workers
  }
  for (int i = 0; i < 8; ++i) {
    services.push_back(&library.openssl());  // TLS termination
  }
  for (int i = 0; i < 4; ++i) {
    services.push_back(&library.sshd());  // interactive daemons
  }

  eas::Experiment::Options options;
  options.duration_ticks = 180'000;  // 3 minutes
  eas::Experiment experiment(config, options);
  const eas::RunResult result = experiment.Run(services);

  Outcome outcome;
  outcome.throughput = result.Throughput();
  outcome.avg_throttled = result.AverageThrottledFraction();
  outcome.per_cpu_throttled = result.throttled_fraction;
  return outcome;
}

}  // namespace

int main() {
  std::printf("== server consolidation under a thermal cap (38 C artificial limit) ==\n\n");
  const Outcome baseline = RunServer(false);
  const Outcome eas_run = RunServer(true);

  std::printf("%-28s %14s %14s\n", "", "baseline", "energy-aware");
  std::printf("%-28s %13.1f%% %13.1f%%\n", "avg CPU throttle time", baseline.avg_throttled * 100,
              eas_run.avg_throttled * 100);
  std::printf("%-28s %14.0f %14.0f\n", "throughput (work ticks/s)", baseline.throughput,
              eas_run.throughput);
  std::printf("%-28s %28.1f%%\n", "throughput increase",
              (eas_run.throughput / baseline.throughput - 1.0) * 100);

  std::printf("\nper-logical-CPU throttle time (baseline -> energy-aware):\n");
  for (std::size_t cpu = 0; cpu < baseline.per_cpu_throttled.size(); ++cpu) {
    if (baseline.per_cpu_throttled[cpu] > 0.001 || eas_run.per_cpu_throttled[cpu] > 0.001) {
      std::printf("  cpu %2zu: %5.1f%% -> %5.1f%%\n", cpu, baseline.per_cpu_throttled[cpu] * 100,
                  eas_run.per_cpu_throttled[cpu] * 100);
    }
  }
  std::printf("\nPoorly cooled packages shed their hot tasks to well-cooled ones, cutting\n"
              "throttle time and raising total throughput - the paper's Table 3 effect.\n");
  return 0;
}
