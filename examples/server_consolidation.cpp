// Server consolidation scenario: a thermally constrained server runs a mix
// of hot (compute) and cool (memory-bound) services plus interactive
// daemons. The operator caps each package at a temperature limit; throttling
// eats throughput unless the scheduler spreads heat.
//
// Demonstrates: per-CPU thermal limits from cooling calibration, throttling
// accounting, and the throughput effect of the paper's policy (Section 6.2)
// - with the whole experiment described as two RunRequests: the service
// blend is a declarative `list:` workload spec, the machine (SMT on, 38 C
// limit, hlt throttling) is four request fields, and both policies run
// concurrently in one RunSession.

#include <cstdio>
#include <string>
#include <vector>

#include "src/api/run_session.h"

namespace {

eas::ResolvedRequest MakeRequest(bool energy_aware) {
  eas::RunRequest request;
  request.name = energy_aware ? "energy-aware" : "baseline";
  request.policy = energy_aware ? "energy_aware" : "load_only";
  request.topology = "2:4:2";    // the paper's box with SMT enabled
  request.temp_limit = 38.0;     // artificial limit -> per-CPU max power
  request.throttle = true;
  request.duration_s = 180.0;    // 3 minutes
  // The consolidation host's service blend: compute-heavy workers, cache/
  // memory-bound workers, TLS termination, interactive daemons.
  request.workload = "list:bitcnts*8,memrw*12,openssl*8,sshd*4";

  const auto resolved = eas::ResolveRunRequest(request);
  if (!resolved.ok()) {
    std::fprintf(stderr, "resolve: %s\n", resolved.error().Render().c_str());
    std::exit(1);
  }
  return *resolved;
}

}  // namespace

int main() {
  std::printf("== server consolidation under a thermal cap (38 C artificial limit) ==\n\n");

  const eas::RunSession session;
  const std::vector<eas::RunRecord> records =
      session.Run({MakeRequest(false), MakeRequest(true)});
  const eas::RunResult& baseline = records[0].result;
  const eas::RunResult& eas_run = records[1].result;

  std::printf("%-28s %14s %14s\n", "", "baseline", "energy-aware");
  std::printf("%-28s %13.1f%% %13.1f%%\n", "avg CPU throttle time",
              baseline.AverageThrottledFraction() * 100,
              eas_run.AverageThrottledFraction() * 100);
  std::printf("%-28s %14.0f %14.0f\n", "throughput (work ticks/s)", baseline.Throughput(),
              eas_run.Throughput());
  std::printf("%-28s %28.1f%%\n", "throughput increase",
              eas::ThroughputIncrease(baseline, eas_run) * 100);

  std::printf("\nper-logical-CPU throttle time (baseline -> energy-aware):\n");
  for (std::size_t cpu = 0; cpu < baseline.throttled_fraction.size(); ++cpu) {
    if (baseline.throttled_fraction[cpu] > 0.001 || eas_run.throttled_fraction[cpu] > 0.001) {
      std::printf("  cpu %2zu: %5.1f%% -> %5.1f%%\n", cpu,
                  baseline.throttled_fraction[cpu] * 100, eas_run.throttled_fraction[cpu] * 100);
    }
  }
  std::printf("\nPoorly cooled packages shed their hot tasks to well-cooled ones, cutting\n"
              "throttle time and raising total throughput - the paper's Table 3 effect.\n");
  return 0;
}
