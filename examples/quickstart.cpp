// Quickstart: build the paper's machine, run a mixed workload with and
// without energy-aware scheduling, and compare thermal behaviour.
//
//   $ ./quickstart
//
// Walks through the public API end to end: a run is *described* as a
// RunRequest (the same `key = value` text `eastool --request` reads),
// *resolved* against the registries into runnable specs, and *executed* by
// a RunSession that streams each completed run to ResultSinks as a
// RunRecord. The baseline and energy-aware runs execute concurrently on
// the session's thread pool.

#include <cstdio>
#include <string>
#include <vector>

#include "src/api/run_session.h"
#include "src/sim/scenario.h"

namespace {

eas::ResolvedRequest MakeRequest(bool energy_aware) {
  // 1. Describe the run as data: the paper's 8-way Xeon (SMT off for
  //    clarity), a 60 W per-package power budget, three instances of each
  //    Table 2 program, two simulated minutes. The exact same text could
  //    sit in a file and run via `eastool --request`.
  const std::string text = std::string("name = ") +
                           (energy_aware ? "energy_aware" : "baseline") +
                           "; policy = " + (energy_aware ? "energy_aware" : "load_only") +
                           "; workload = mixed:3; max-power = 60; duration-s = 120";
  const auto request = eas::ParseRunRequest(text);

  // 2. Resolve it: registry names are validated here, scenario defaults and
  //    the machine model are filled in, and the request expands into one
  //    ExperimentSpec per run. Failures come back as a structured
  //    RequestError; Render() is the human-readable diagnostic.
  const auto resolved = eas::ResolveRunRequest(*request);
  if (!resolved.ok()) {
    std::fprintf(stderr, "resolve: %s\n", resolved.error().Render().c_str());
    std::exit(1);
  }
  return *resolved;
}

}  // namespace

int main() {
  std::printf("== quickstart: energy-aware scheduling on a simulated 8-way SMP ==\n\n");

  // 3. Execute: one session runs both requests concurrently and returns a
  //    RunRecord per run (request + spec + result). Attaching a CsvSink or
  //    JsonlSink here would stream the records to disk as they complete.
  const eas::RunSession session;
  const std::vector<eas::RunRecord> records =
      session.Run({MakeRequest(false), MakeRequest(true)});
  const eas::RunResult& baseline = records[0].result;
  const eas::RunResult& balanced = records[1].result;

  const eas::Tick settle = 50'000;  // skip the thermal warm-up
  std::printf("thermal power spread across CPUs (after warm-up):\n");
  std::printf("  baseline scheduler   : %5.1f W\n", baseline.MaxThermalSpreadAfter(settle));
  std::printf("  energy-aware balancer: %5.1f W\n", balanced.MaxThermalSpreadAfter(settle));
  std::printf("\ntask migrations in 2 minutes:\n");
  std::printf("  baseline scheduler   : %lld\n",
              static_cast<long long>(baseline.migrations));
  std::printf("  energy-aware balancer: %lld\n",
              static_cast<long long>(balanced.migrations));
  std::printf("\nhottest CPU (peak thermal power):\n");
  std::printf("  baseline scheduler   : %5.1f W\n", baseline.thermal_power.MaxValue());
  std::printf("  energy-aware balancer: %5.1f W\n", balanced.thermal_power.MaxValue());
  std::printf("\nEnergy balancing narrows the band of per-CPU power consumption, so no\n"
              "single CPU approaches its thermal limit while others stay cool.\n");

  // 4. The catalogue, declaratively: every registered scenario is also a
  //    canned request (`eastool --list-scenarios` prints the names,
  //    `eastool --scenario NAME` runs one). Overriding its duration is one
  //    field write away.
  eas::RunRequest scenario = eas::RunRequestForScenario("paper-mixed");
  scenario.duration_s = 120.0;
  const auto resolved = eas::ResolveRunRequest(scenario);
  if (!resolved.ok()) {
    std::fprintf(stderr, "resolve: %s\n", resolved.error().Render().c_str());
    return 1;
  }
  const eas::RunResult rerun = session.Run(*resolved)[0].result;
  std::printf("\nscenario \"paper-mixed\" (same machine, via the ScenarioRegistry):\n");
  std::printf("  spread after warm-up : %5.1f W\n", rerun.MaxThermalSpreadAfter(settle));
  return 0;
}
