// Quickstart: build the paper's machine, run a mixed workload with and
// without energy-aware scheduling, and compare thermal behaviour.
//
//   $ ./quickstart
//
// Walks through the public API end to end: MachineConfig -> ExperimentSpec
// -> ExperimentRunner -> RunResult. The baseline and energy-aware runs
// execute concurrently on the runner's thread pool.

#include <cstdio>
#include <vector>

#include "src/sim/experiment_runner.h"
#include "src/sim/scenario.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

eas::ExperimentSpec MakeSpec(const eas::ProgramLibrary& library, bool energy_aware) {
  // 1. Describe the machine: the paper's 8-way Xeon (SMT off for clarity),
  //    heterogeneous cooling, a 60 W per-package power budget. The balancing
  //    policy is selected by name through the policy registry.
  eas::ExperimentSpec spec;
  spec.name = energy_aware ? "energy_aware" : "baseline";
  spec.config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/false);
  spec.config.cooling = eas::CoolingProfile::PaperXSeries445();
  spec.config.explicit_max_power_physical = 60.0;
  spec.config.sched = energy_aware ? eas::EnergySchedConfig::EnergyAware()
                                   : eas::EnergySchedConfig::Baseline();

  // 2. Build the workload: three instances of each Table 2 program.
  spec.workload = eas::MixedWorkload(library, /*instances=*/3);

  // 3. Two simulated minutes, sampling thermal power.
  spec.options.duration_ticks = 120'000;
  spec.options.sample_interval_ticks = 1'000;
  return spec;
}

}  // namespace

int main() {
  std::printf("== quickstart: energy-aware scheduling on a simulated 8-way SMP ==\n\n");

  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  const std::vector<eas::RunResult> results = eas::ExperimentRunner().RunAll(
      {MakeSpec(library, false), MakeSpec(library, true)});
  const eas::RunResult& baseline = results[0];
  const eas::RunResult& balanced = results[1];

  const eas::Tick settle = 50'000;  // skip the thermal warm-up
  std::printf("thermal power spread across CPUs (after warm-up):\n");
  std::printf("  baseline scheduler   : %5.1f W\n", baseline.MaxThermalSpreadAfter(settle));
  std::printf("  energy-aware balancer: %5.1f W\n", balanced.MaxThermalSpreadAfter(settle));
  std::printf("\ntask migrations in 2 minutes:\n");
  std::printf("  baseline scheduler   : %lld\n",
              static_cast<long long>(baseline.migrations));
  std::printf("  energy-aware balancer: %lld\n",
              static_cast<long long>(balanced.migrations));
  std::printf("\nhottest CPU (peak thermal power):\n");
  std::printf("  baseline scheduler   : %5.1f W\n", baseline.thermal_power.MaxValue());
  std::printf("  energy-aware balancer: %5.1f W\n", balanced.thermal_power.MaxValue());
  std::printf("\nEnergy balancing narrows the band of per-CPU power consumption, so no\n"
              "single CPU approaches its thermal limit while others stay cool.\n");

  // 4. The same experiment, declaratively: every (config, workload, policy)
  //    bundle above is also available as a named scenario. `eastool
  //    --list-scenarios` prints this catalogue and `eastool --scenario NAME`
  //    runs one; here we pull a spec straight from the registry.
  eas::ExperimentSpec scenario =
      eas::ScenarioRegistry::Global().BuildOrThrow("paper-mixed").ToExperimentSpec();
  scenario.options.duration_ticks = 120'000;
  const eas::RunResult rerun = eas::ExperimentRunner().RunAll({scenario})[0];
  std::printf("\nscenario \"paper-mixed\" (same machine, via the ScenarioRegistry):\n");
  std::printf("  spread after warm-up : %5.1f W\n", rerun.MaxThermalSpreadAfter(settle));
  return 0;
}
