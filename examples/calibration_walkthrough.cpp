// Calibration walkthrough: the estimation substrate on its own.
//
// Shows how the counter-weight calibration of Section 3.2 works: run
// calibration workloads against the "real hardware" (EnergyModel) while a
// noisy multimeter measures energy, solve the linear system, and check the
// resulting estimator against programs it has never seen.

#include <cstdio>

#include "src/counters/calibration.h"
#include "src/counters/energy_estimator.h"
#include "src/workloads/programs.h"

int main() {
  std::printf("== counter-weight calibration walkthrough ==\n\n");

  const eas::EnergyModel truth = eas::EnergyModel::Default();
  std::printf("calibrating against a multimeter with 2%% gaussian error...\n");
  const eas::CalibrationResult calibration =
      eas::Calibrator::CalibrateDefault(truth, /*seed=*/2026, /*meter_error_stddev=*/0.02);

  std::printf("\n%-18s %14s %14s %10s\n", "event", "true [J/kEv]", "calibrated", "error");
  for (std::size_t i = 0; i < eas::kNumEventTypes; ++i) {
    const double w_true = truth.weights()[i];
    const double w_est = calibration.weights[i];
    std::printf("%-18s %14.2e %14.2e %9.2f%%\n",
                std::string(eas::EventName(static_cast<eas::EventType>(i))).c_str(), w_true,
                w_est, (w_est / w_true - 1.0) * 100);
  }

  // Validate on unseen workloads: the Table 2 programs.
  const eas::EnergyEstimator estimator(calibration.weights, truth.active_base_power());
  const eas::ProgramLibrary library(truth);
  std::printf("\nvalidation on unseen programs (one 100 ms timeslice each):\n");
  std::printf("%-10s %12s %12s %10s\n", "program", "true [W]", "estimated", "error");
  eas::Rng rng(7);
  for (const eas::Program* program : library.Table2Programs()) {
    const eas::EventRates& rates = program->phase(0).rates;
    eas::EventVector total{};
    double true_energy = 0.0;
    for (int t = 0; t < 100; ++t) {
      eas::EventVector events{};
      for (std::size_t i = 0; i < eas::kNumEventTypes; ++i) {
        events[i] = rates[i] * (1.0 + rng.Gaussian(0.0, 0.03));
        total[i] += events[i];
      }
      true_energy += truth.DynamicEnergy(events);
    }
    true_energy += truth.active_base_power() * 0.1;
    const double estimated = estimator.EstimateEnergy(total, 100);
    std::printf("%-10s %12.1f %12.1f %9.2f%%\n", program->name().c_str(), true_energy / 0.1,
                estimated / 0.1, (estimated / true_energy - 1.0) * 100);
  }
  std::printf("\nAll errors stay well under the paper's 10%% bound; this estimator is what\n"
              "the scheduler consults at every task switch.\n");
  return 0;
}
