// Thermal headroom explorer: how much power budget does a single hot batch
// job need before throttling stops hurting? Sweeps the per-package power
// limit and shows how hot task migration exploits idle CPUs (Section 6.4).
//
// Demonstrates: hot task migration, the throttle duty cycle math, and the
// interaction of power limits with throughput.

#include <cstdio>

#include "src/sim/experiment.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

double RunWithLimit(double limit_watts, bool energy_aware, std::int64_t* migrations) {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/true);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = limit_watts;
  config.throttling_enabled = true;
  config.sched = energy_aware ? eas::EnergySchedConfig::EnergyAware()
                              : eas::EnergySchedConfig::Baseline();

  const eas::ProgramLibrary library(config.model);
  eas::Experiment::Options options;
  options.duration_ticks = 150'000;
  eas::Experiment experiment(config, options);
  const eas::RunResult result = experiment.Run(eas::HotTaskWorkload(library, 1));
  if (migrations != nullptr) {
    *migrations = result.migrations;
  }
  return result.Throughput();
}

}  // namespace

int main() {
  std::printf("== thermal headroom explorer: one 61 W batch job, varying power budget ==\n\n");
  std::printf("%10s %14s %14s %12s %12s\n", "limit [W]", "baseline", "energy-aware", "increase",
              "migrations");
  for (double limit : {35.0, 40.0, 45.0, 50.0, 55.0, 61.0}) {
    std::int64_t migrations = 0;
    const double base = RunWithLimit(limit, false, nullptr);
    const double eas_tp = RunWithLimit(limit, true, &migrations);
    std::printf("%10.0f %14.0f %14.0f %11.1f%% %12lld\n", limit, base, eas_tp,
                (eas_tp / base - 1.0) * 100, static_cast<long long>(migrations));
  }
  std::printf(
      "\nBelow the job's 61 W appetite the baseline must throttle one package while\n"
      "seven sit idle; hot task migration round-robins the job across cool packages\n"
      "instead. The tighter the budget, the bigger the win (paper Section 6.4:\n"
      "+76%% at 40 W, +27%% at 50 W).\n");
  return 0;
}
