// Thermal headroom explorer: how much power budget does a single hot batch
// job need before throttling stops hurting? Sweeps the per-package power
// limit and shows how hot task migration exploits idle CPUs (Section 6.4).
//
// Demonstrates: hot task migration, the throttle duty cycle math, the
// interaction of power limits with throughput, and sweeping a parameter grid
// through the parallel ExperimentRunner.

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/experiment_runner.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

eas::ExperimentSpec SpecWithLimit(const std::vector<const eas::Program*>& workload,
                                  double limit_watts, bool energy_aware) {
  eas::ExperimentSpec spec;
  spec.name = std::to_string(static_cast<int>(limit_watts)) + "W" +
              (energy_aware ? "/eas" : "/base");
  spec.config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/true);
  spec.config.cooling = eas::CoolingProfile::PaperXSeries445();
  spec.config.explicit_max_power_physical = limit_watts;
  spec.config.throttling_enabled = true;
  spec.config.sched = energy_aware ? eas::EnergySchedConfig::EnergyAware()
                                   : eas::EnergySchedConfig::Baseline();
  spec.options.duration_ticks = 150'000;
  spec.workload = workload;
  return spec;
}

}  // namespace

int main() {
  std::printf("== thermal headroom explorer: one 61 W batch job, varying power budget ==\n\n");

  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  const auto workload = eas::HotTaskWorkload(library, 1);
  const double limits[] = {35.0, 40.0, 45.0, 50.0, 55.0, 61.0};

  std::vector<eas::ExperimentSpec> specs;
  for (const double limit : limits) {
    specs.push_back(SpecWithLimit(workload, limit, false));
    specs.push_back(SpecWithLimit(workload, limit, true));
  }
  const std::vector<eas::RunResult> results = eas::ExperimentRunner().RunAll(specs);

  std::printf("%10s %14s %14s %12s %12s\n", "limit [W]", "baseline", "energy-aware", "increase",
              "migrations");
  for (std::size_t i = 0; i < std::size(limits); ++i) {
    const eas::RunResult& base = results[i * 2];
    const eas::RunResult& eas_run = results[i * 2 + 1];
    std::printf("%10.0f %14.0f %14.0f %11.1f%% %12lld\n", limits[i], base.Throughput(),
                eas_run.Throughput(), (eas_run.Throughput() / base.Throughput() - 1.0) * 100,
                static_cast<long long>(eas_run.migrations));
  }
  std::printf(
      "\nBelow the job's 61 W appetite the baseline must throttle one package while\n"
      "seven sit idle; hot task migration round-robins the job across cool packages\n"
      "instead. The tighter the budget, the bigger the win (paper Section 6.4:\n"
      "+76%% at 40 W, +27%% at 50 W).\n");
  return 0;
}
