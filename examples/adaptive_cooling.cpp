// Adaptive cooling scenario: on-line thermal recalibration (Section 4.2).
//
// "Calibration could also be done on-line ... to account for changes in the
// cooling system, e.g. the activation or deactivation of additional fans."
//
// A CPU runs a steady load while its chassis fan fails mid-run (thermal
// resistance doubles). The on-line calibrator watches the (power, diode)
// stream, detects the new RC parameters, and the derived maximum power for
// the 60 C limit drops accordingly - exactly the number an energy-aware
// scheduler must refresh to keep its ratios honest.

#include <cstdio>

#include "src/thermal/online_calibration.h"
#include "src/thermal/rc_model.h"
#include "src/thermal/thermal_sensor.h"

int main() {
  std::printf("== adaptive cooling: recalibrating the thermal model on-line ==\n\n");

  eas::ThermalParams healthy;
  healthy.resistance = 0.25;  // fan running
  healthy.capacitance = 48.0;
  eas::ThermalParams degraded = healthy;
  degraded.resistance = 0.50;  // fan failed: half the heat removal

  const double kTempLimit = 60.0;
  const eas::ThermalSensor diode(1.0, 5);

  auto calibrate_phase = [&](const eas::ThermalParams& truth, const char* label) {
    eas::RcThermalModel die(truth);
    eas::OnlineThermalCalibrator calibrator(truth.ambient, /*window_seconds=*/10.0);
    // Excite the model: alternate 20 W idle-ish and 55 W busy periods.
    const double dt = 0.1;
    double power = 20.0;
    calibrator.AddSample(power, diode.Read(die.temperature()), dt);
    for (int step = 0; step < 6'000; ++step) {  // 10 minutes
      if (step % 300 == 0) {
        power = (step / 300) % 2 == 0 ? 55.0 : 20.0;
      }
      die.Step(power, dt);
      calibrator.AddSample(power, diode.Read(die.temperature()), dt);
    }
    const auto fit = calibrator.Fit();
    if (!fit.has_value()) {
      std::printf("%-18s calibration failed (insufficient excitation)\n", label);
      return;
    }
    std::printf("%-18s R = %.3f K/W (true %.3f)   C = %.1f J/K (true %.1f)\n", label,
                fit->resistance, truth.resistance, fit->capacitance, truth.capacitance);
    std::printf("%-18s max power @ %.0f C limit: %.1f W (true %.1f W)\n", "",
                kTempLimit, fit->MaxPowerForTemp(kTempLimit),
                truth.MaxPowerForTemp(kTempLimit));
  };

  calibrate_phase(healthy, "fan running:");
  std::printf("\n  *** fan fails ***\n\n");
  calibrate_phase(degraded, "fan failed:");

  std::printf(
      "\nThe scheduler consumes exactly one number per CPU from this pipeline - the\n"
      "maximum sustainable power - and every ratio-based decision (energy\n"
      "balancing, hot task migration, placement) adapts the moment it is updated.\n");
  return 0;
}
