// Tick hot-path benchmark: engine ticks/sec as the task population grows,
// plus the quiescent-span skip-ahead rate on a sparse workload.
//
// The event-driven engine (heap wake queue, arrival queue, cached balance
// aggregates, active-mask sampling) must hold its tick rate roughly constant
// as tasks accumulate; the scan-based loop it replaced degrades linearly in
// the number of tasks ever spawned. This bench drives both over the same
// sleeper-heavy workload (interactive daemons that spend most ticks blocked,
// the worst case for the wake scan) at 100 / 1k / 10k tasks, then measures
// skip-ahead vs naive ticking on a cron-style mostly-idle workload where
// the machine is quiescent ~99% of ticks, and writes the ticks/sec table
// plus the speedups to BENCH_tick_hot_path.json.
//
//   $ bench_tick_hot_path [--ticks=2000] [--out=BENCH_tick_hot_path.json]
//
// The scan reference (src/sim/scan_reference.h) reproduces the
// pre-event-queue engine tick exactly (same phase components, wakeups via a
// task-table scan), so the bench also cross-checks that both loops finish in
// bit-identical states; the sparse row cross-checks that skip-ahead and the
// naive tick loop do too (the engine's bit-identity contract).
//
// Every row carries a "name" and the document carries the run configuration
// (threads, build type, wall time), so tools/bench_compare.py can refuse to
// diff runs measured under different conditions.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/api/run_request.h"
#include "src/base/flags.h"
#include "src/counters/energy_model.h"
#include "src/sim/csv_export.h"
#include "src/sim/scan_reference.h"
#include "src/sim/simulation_engine.h"
#include "src/workloads/programs.h"

namespace {

using eas::Tick;

#ifdef NDEBUG
constexpr const char kBuildType[] = "release";
#else
constexpr const char kBuildType[] = "debug";
#endif

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

eas::MachineConfig BenchConfig() {
  // The bench machine as a request (paper topology, 60 W cap, seed 7), then
  // oracle estimator weights so the timing measures the engine, not
  // calibration.
  auto resolved = eas::ResolveRunRequest(*eas::ParseRunRequest("max-power = 60; seed = 7"));
  if (!resolved.ok()) {
    std::fprintf(stderr, "resolve: %s\n", resolved.error().Render().c_str());
    std::exit(1);
  }
  eas::MachineConfig config = resolved->specs.front().config;
  config.estimator_weights = eas::EnergyModel::Default().weights();
  return config;
}

// Mostly-sleeping daemons plus a small always-running floor: the population
// a consolidation host carries, and the worst case for a per-task wake scan.
void SpawnSleeperHeavy(eas::SimulationState& state, const eas::ProgramLibrary& library,
                       int tasks) {
  for (int i = 0; i < tasks; ++i) {
    switch (i % 8) {
      case 0:
        state.Spawn(library.memrw(), 0);
        break;
      case 1:
      case 2:
      case 3:
        state.Spawn(library.bash(), 0);
        break;
      default:
        state.Spawn(library.sshd(), 0);
        break;
    }
  }
}

// Cron-style program for the sparse row: ~12-tick bursts separated by ~6000
// ticks of sleep, so a handful of tasks leaves the machine quiescent (no
// task runnable anywhere) on ~99% of ticks - the regime skip-ahead turns
// into closed-form spans.
eas::Program MakeCronProgram(const eas::EnergyModel& model) {
  eas::EventRates signature{};
  signature.fill(1.0);
  eas::Phase burst;
  burst.rates = model.RatesForTargetPower(signature, 35.0);
  burst.mean_duration = 12;
  burst.duration_jitter = 0.1;
  burst.mean_sleep_after = 6'000;
  burst.rate_noise = 0.02;
  return eas::Program("cron", 0xc407, {burst}, /*total_work_ticks=*/0);
}

struct Measurement {
  std::string name;
  int tasks = 0;
  Tick ticks = 0;
  double engine_ticks_per_second = 0.0;  // the optimized path (always gated)
  double reference_ticks_per_second = 0.0;
  const char* reference_key = "scan_ticks_per_second";
  double speedup = 0.0;
  bool identical = false;
};

Measurement MeasurePopulation(const eas::ProgramLibrary& library, int tasks, Tick ticks) {
  const eas::MachineConfig config = BenchConfig();

  eas::SimulationState engine_state(config);
  eas::SimulationEngine engine(config.sched);
  SpawnSleeperHeavy(engine_state, library, tasks);
  const auto engine_start = std::chrono::steady_clock::now();
  for (Tick t = 0; t < ticks; ++t) {
    engine.Tick(engine_state);
  }
  const double engine_seconds = SecondsSince(engine_start);

  eas::SimulationState scan_state(config);
  eas::ScanReferenceStepper scan(config.sched);
  SpawnSleeperHeavy(scan_state, library, tasks);
  const auto scan_start = std::chrono::steady_clock::now();
  for (Tick t = 0; t < ticks; ++t) {
    scan.Step(scan_state);
  }
  const double scan_seconds = SecondsSince(scan_start);

  Measurement m;
  m.name = "tasks_" + std::to_string(tasks);
  m.tasks = tasks;
  m.ticks = ticks;
  m.engine_ticks_per_second =
      engine_seconds > 0.0 ? static_cast<double>(ticks) / engine_seconds : 0.0;
  m.reference_ticks_per_second =
      scan_seconds > 0.0 ? static_cast<double>(ticks) / scan_seconds : 0.0;
  m.speedup = engine_seconds > 0.0 ? scan_seconds / engine_seconds : 0.0;
  m.identical = engine_state.TotalWorkDone() == scan_state.TotalWorkDone() &&
                engine_state.TotalTaskEnergy() == scan_state.TotalTaskEnergy() &&
                engine_state.migration_count() == scan_state.migration_count();
  return m;
}

// End states must match bitwise between the skip-ahead and naive runs: the
// scheduler-visible aggregates plus the analog state skip-ahead integrates
// in closed form (package temperature and true power).
bool BitIdentical(eas::SimulationState& a, eas::SimulationState& b) {
  if (a.TotalWorkDone() != b.TotalWorkDone() || a.TotalTaskEnergy() != b.TotalTaskEnergy() ||
      a.migration_count() != b.migration_count() || a.now() != b.now()) {
    return false;
  }
  for (std::size_t phys = 0; phys < a.num_physical(); ++phys) {
    if (a.Temperature(phys) != b.Temperature(phys) || a.TruePower(phys) != b.TruePower(phys)) {
      return false;
    }
  }
  return true;
}

Measurement MeasureSparse(const eas::EnergyModel& model, Tick ticks) {
  const eas::Program cron = MakeCronProgram(model);
  constexpr int kTasks = 4;

  eas::MachineConfig skip_config = BenchConfig();
  skip_config.skip_ahead = true;
  eas::SimulationState skip_state(skip_config);
  eas::SimulationEngine skip_engine(skip_config.sched);
  for (int i = 0; i < kTasks; ++i) {
    skip_state.Spawn(cron, 0);
  }
  const auto skip_start = std::chrono::steady_clock::now();
  skip_engine.Advance(skip_state, ticks);
  const double skip_seconds = SecondsSince(skip_start);

  eas::MachineConfig naive_config = BenchConfig();
  naive_config.skip_ahead = false;
  eas::SimulationState naive_state(naive_config);
  eas::SimulationEngine naive_engine(naive_config.sched);
  for (int i = 0; i < kTasks; ++i) {
    naive_state.Spawn(cron, 0);
  }
  const auto naive_start = std::chrono::steady_clock::now();
  naive_engine.Advance(naive_state, ticks);
  const double naive_seconds = SecondsSince(naive_start);

  Measurement m;
  m.name = "sparse_idle";
  m.tasks = kTasks;
  m.ticks = ticks;
  m.reference_key = "naive_ticks_per_second";
  m.engine_ticks_per_second =
      skip_seconds > 0.0 ? static_cast<double>(ticks) / skip_seconds : 0.0;
  m.reference_ticks_per_second =
      naive_seconds > 0.0 ? static_cast<double>(ticks) / naive_seconds : 0.0;
  m.speedup = skip_seconds > 0.0 ? naive_seconds / skip_seconds : 0.0;
  m.identical = BitIdentical(skip_state, naive_state);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  const std::vector<std::string> unknown = flags.UnknownFlags({"ticks", "out"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag --%s (known: --ticks --out)\n", unknown.front().c_str());
    return 1;
  }
  const Tick ticks = std::max<Tick>(1, flags.GetInt("ticks", 2'000));
  const std::string out = flags.GetString("out", "BENCH_tick_hot_path.json");

  const eas::EnergyModel model = eas::EnergyModel::Default();
  const eas::ProgramLibrary library(model);
  constexpr int kPopulations[] = {100, 1'000, 10'000};
  // The sparse row advances far more simulated time per wall second (that is
  // the point), so it runs a proportionally longer span for stable timing.
  const Tick sparse_ticks = ticks * 50;

  std::printf("== tick hot path: %lld ticks per population ==\n\n",
              static_cast<long long>(ticks));
  std::printf("  %-12s  %14s  %14s  %8s  %s\n", "row", "engine tick/s", "reference",
              "speedup", "identical");

  const auto bench_start = std::chrono::steady_clock::now();
  std::vector<Measurement> rows;
  for (int tasks : kPopulations) {
    rows.push_back(MeasurePopulation(library, tasks, ticks));
  }
  rows.push_back(MeasureSparse(model, sparse_ticks));
  const double wall_seconds = SecondsSince(bench_start);

  bool all_identical = true;
  std::string json = "{\n  \"bench\": \"tick_hot_path\",\n  \"ticks\": " +
                     std::to_string(static_cast<long long>(ticks)) +
                     ",\n  \"sparse_ticks\": " +
                     std::to_string(static_cast<long long>(sparse_ticks)) +
                     ",\n  \"threads\": 1,\n  \"build_type\": \"" + kBuildType +
                     "\",\n  \"populations\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    all_identical = all_identical && m.identical;
    std::printf("  %-12s  %14.0f  %14.0f  %7.2fx  %s\n", m.name.c_str(),
                m.engine_ticks_per_second, m.reference_ticks_per_second, m.speedup,
                m.identical ? "yes" : "NO");
    char entry[320];
    std::snprintf(entry, sizeof(entry),
                  "    {\"name\": \"%s\", \"tasks\": %d, \"ticks\": %lld, "
                  "\"engine_ticks_per_second\": %.0f, \"%s\": %.0f, "
                  "\"speedup\": %.2f, \"identical\": %s}%s\n",
                  m.name.c_str(), m.tasks, static_cast<long long>(m.ticks),
                  m.engine_ticks_per_second, m.reference_key, m.reference_ticks_per_second,
                  m.speedup, m.identical ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    json += entry;
  }
  char tail[64];
  std::snprintf(tail, sizeof(tail), "  ],\n  \"wall_seconds\": %.4f\n}\n", wall_seconds);
  json += tail;

  if (!eas::WriteFile(out, json)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  if (!all_identical) {
    std::fprintf(stderr, "ERROR: optimized and reference loops diverged\n");
    return 1;
  }
  return 0;
}
