// Tick hot-path benchmark: engine ticks/sec as the task population grows.
//
// The event-driven engine (heap wake queue, arrival queue, cached balance
// aggregates, active-mask sampling) must hold its tick rate roughly constant
// as tasks accumulate; the scan-based loop it replaced degrades linearly in
// the number of tasks ever spawned. This bench drives both over the same
// sleeper-heavy workload (interactive daemons that spend most ticks blocked,
// the worst case for the wake scan) at 100 / 1k / 10k tasks and writes the
// ticks/sec table plus the speedup to BENCH_tick_hot_path.json.
//
//   $ bench_tick_hot_path [--ticks=2000] [--out=BENCH_tick_hot_path.json]
//
// The scan reference (src/sim/scan_reference.h) reproduces the
// pre-event-queue engine tick exactly (same phase components, wakeups via a
// task-table scan), so the bench also cross-checks that both loops finish in
// bit-identical states.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "src/api/run_request.h"
#include "src/base/flags.h"
#include "src/sim/csv_export.h"
#include "src/sim/scan_reference.h"
#include "src/sim/simulation_engine.h"
#include "src/workloads/programs.h"

namespace {

using eas::Tick;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

eas::MachineConfig BenchConfig() {
  // The bench machine as a request (paper topology, 60 W cap, seed 7), then
  // oracle estimator weights so the timing measures the engine, not
  // calibration.
  std::string error;
  auto resolved = eas::ResolveRunRequest(
      *eas::ParseRunRequest("max-power = 60; seed = 7", &error), &error);
  if (!resolved.has_value()) {
    std::fprintf(stderr, "resolve: %s\n", error.c_str());
    std::exit(1);
  }
  eas::MachineConfig config = resolved->specs.front().config;
  config.estimator_weights = eas::EnergyModel::Default().weights();
  return config;
}

// Mostly-sleeping daemons plus a small always-running floor: the population
// a consolidation host carries, and the worst case for a per-task wake scan.
void SpawnSleeperHeavy(eas::SimulationState& state, const eas::ProgramLibrary& library,
                       int tasks) {
  for (int i = 0; i < tasks; ++i) {
    switch (i % 8) {
      case 0:
        state.Spawn(library.memrw(), 0);
        break;
      case 1:
      case 2:
      case 3:
        state.Spawn(library.bash(), 0);
        break;
      default:
        state.Spawn(library.sshd(), 0);
        break;
    }
  }
}

struct Measurement {
  double engine_ticks_per_second = 0.0;
  double scan_ticks_per_second = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

Measurement MeasurePopulation(const eas::ProgramLibrary& library, int tasks, Tick ticks) {
  const eas::MachineConfig config = BenchConfig();

  eas::SimulationState engine_state(config);
  eas::SimulationEngine engine(config.sched);
  SpawnSleeperHeavy(engine_state, library, tasks);
  const auto engine_start = std::chrono::steady_clock::now();
  for (Tick t = 0; t < ticks; ++t) {
    engine.Tick(engine_state);
  }
  const double engine_seconds = SecondsSince(engine_start);

  eas::SimulationState scan_state(config);
  eas::ScanReferenceStepper scan(config.sched);
  SpawnSleeperHeavy(scan_state, library, tasks);
  const auto scan_start = std::chrono::steady_clock::now();
  for (Tick t = 0; t < ticks; ++t) {
    scan.Step(scan_state);
  }
  const double scan_seconds = SecondsSince(scan_start);

  Measurement m;
  m.engine_ticks_per_second =
      engine_seconds > 0.0 ? static_cast<double>(ticks) / engine_seconds : 0.0;
  m.scan_ticks_per_second = scan_seconds > 0.0 ? static_cast<double>(ticks) / scan_seconds : 0.0;
  m.speedup = engine_seconds > 0.0 ? scan_seconds / engine_seconds : 0.0;
  m.identical = engine_state.TotalWorkDone() == scan_state.TotalWorkDone() &&
                engine_state.TotalTaskEnergy() == scan_state.TotalTaskEnergy() &&
                engine_state.migration_count() == scan_state.migration_count();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  const std::vector<std::string> unknown = flags.UnknownFlags({"ticks", "out"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag --%s (known: --ticks --out)\n", unknown.front().c_str());
    return 1;
  }
  const Tick ticks = std::max<Tick>(1, flags.GetInt("ticks", 2'000));
  const std::string out = flags.GetString("out", "BENCH_tick_hot_path.json");

  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  constexpr int kPopulations[] = {100, 1'000, 10'000};
  constexpr std::size_t kNumPopulations = sizeof(kPopulations) / sizeof(kPopulations[0]);

  std::printf("== tick hot path: %lld ticks per population ==\n\n",
              static_cast<long long>(ticks));
  std::printf("  %8s  %14s  %14s  %8s  %s\n", "tasks", "engine tick/s", "scan tick/s",
              "speedup", "identical");

  std::string json = "{\n  \"bench\": \"tick_hot_path\",\n  \"ticks\": " +
                     std::to_string(static_cast<long long>(ticks)) +
                     ",\n  \"populations\": [\n";
  bool all_identical = true;
  for (std::size_t i = 0; i < kNumPopulations; ++i) {
    const int tasks = kPopulations[i];
    const Measurement m = MeasurePopulation(library, tasks, ticks);
    all_identical = all_identical && m.identical;
    std::printf("  %8d  %14.0f  %14.0f  %7.2fx  %s\n", tasks, m.engine_ticks_per_second,
                m.scan_ticks_per_second, m.speedup, m.identical ? "yes" : "NO");
    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "    {\"tasks\": %d, \"engine_ticks_per_second\": %.0f, "
                  "\"scan_ticks_per_second\": %.0f, \"speedup\": %.2f, \"identical\": %s}%s\n",
                  tasks, m.engine_ticks_per_second, m.scan_ticks_per_second, m.speedup,
                  m.identical ? "true" : "false", i + 1 < kNumPopulations ? "," : "");
    json += entry;
  }
  json += "  ]\n}\n";

  if (!eas::WriteFile(out, json)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  if (!all_identical) {
    std::fprintf(stderr, "ERROR: engine and scan loop diverged\n");
    return 1;
  }
  return 0;
}
