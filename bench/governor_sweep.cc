// Governor x policy sweep: every registered frequency governor under every
// registered balancing policy, over the governor-comparison scenario (40 W
// cap, hlt backstop armed), fanned through the parallel ExperimentRunner.
// This is the one-command energy-balancing-under-DVFS vs hlt-throttling
// experiment: the "none" rows are the paper's pure-hlt baseline, the
// governed rows show how much halting each governor trades for lower
// frequency. Writes BENCH_governors.json; CI runs and uploads it.
//
//   $ bench_governor_sweep [--duration=40000] [--threads=0] [--out=BENCH_governors.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/flags.h"
#include "src/core/policy_registry.h"
#include "src/freq/governor_registry.h"
#include "src/sim/csv_export.h"
#include "src/sim/scenario.h"

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  const eas::Tick duration = flags.GetInt("duration", 40'000);
  const std::size_t threads =
      static_cast<std::size_t>(std::max(0LL, flags.GetInt("threads", 0)));
  const std::string out = flags.GetString("out", "BENCH_governors.json");

  const std::vector<std::string> governors = eas::FrequencyGovernorRegistry::Global().Names();
  const std::vector<std::string> policies = eas::BalancePolicyRegistry::Global().Names();

  std::vector<eas::ExperimentSpec> specs;
  specs.reserve(governors.size() * policies.size());
  for (const std::string& governor : governors) {
    for (const std::string& policy : policies) {
      eas::ExperimentSpec spec = eas::ScenarioRegistry::Global()
                                     .BuildOrThrow("governor-comparison")
                                     .ToExperimentSpec();
      spec.name = governor + "/" + policy;
      spec.config.frequency_governor = governor;
      // Pure-mechanism rows: hlt only on the "none" rows, the governor alone
      // otherwise - with the backstop armed the gate absorbs every overshoot
      // before a stepwise governor can react, and all rows collapse onto the
      // hlt baseline.
      spec.config.throttling_enabled = governor == "none";
      spec.config.sched = eas::SchedConfigForPolicy(policy);
      if (duration > 0) {
        spec.options.duration_ticks = duration;
      }
      specs.push_back(std::move(spec));
    }
  }

  std::printf("== governor sweep: %zu governors x %zu policies ==\n\n", governors.size(),
              policies.size());
  const eas::ExperimentRunner runner(threads);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<eas::RunResult> results = runner.RunAll(specs);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::string json = "{\n  \"bench\": \"governor_sweep\",\n";
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "  \"scenario\": \"governor-comparison\",\n"
                "  \"duration_ticks\": %lld,\n  \"threads\": %zu,\n"
                "  \"wall_seconds\": %.4f,\n  \"runs\": [\n",
                static_cast<long long>(duration), runner.num_threads(), elapsed);
  json += buffer;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const eas::RunResult& result = results[i];
    std::printf("  %-32s %9.1f work-ticks/s  %5.2f%% throttled  %.3fx avg freq\n",
                specs[i].name.c_str(), result.Throughput(),
                result.AverageThrottledFraction() * 100, result.AverageFrequencyMultiplier());
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"throughput\": %.2f, \"migrations\": %lld,\n"
                  "     \"completions\": %lld, \"avg_throttled_fraction\": %.4f,\n"
                  "     \"avg_frequency\": %.4f, \"peak_thermal_w\": %.2f}%s\n",
                  specs[i].name.c_str(), result.Throughput(),
                  static_cast<long long>(result.migrations),
                  static_cast<long long>(result.completions), result.AverageThrottledFraction(),
                  result.AverageFrequencyMultiplier(), result.thermal_power.MaxValue(),
                  i + 1 < specs.size() ? "," : "");
    json += buffer;
  }
  json += "  ]\n}\n";

  if (!eas::WriteFile(out, json)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%.1f s wall)\n", out.c_str(), elapsed);
  return 0;
}
