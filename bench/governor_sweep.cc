// Governor x policy sweep: every registered frequency governor under every
// registered balancing policy, over the governor-comparison scenario (40 W
// cap, hlt backstop armed), described as RunRequests and fanned through one
// RunSession. This is the one-command energy-balancing-under-DVFS vs
// hlt-throttling experiment: the "none" rows are the paper's pure-hlt
// baseline, the governed rows show how much halting each governor trades
// for lower frequency.
//
// Writes BENCH_governors.json (JSONL: config header, one record per run
// with every metric-schema scalar plus the request that reproduces it, a
// wall-clock trailer). CI gates it against bench/baselines/ with
// tools/bench_compare.py - the simulation is deterministic, so the per-row
// throughput values are comparable across machines.
//
//   $ bench_governor_sweep [--duration=40000] [--threads=0] [--out=BENCH_governors.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/api/run_session.h"
#include "src/base/flags.h"
#include "src/core/policy_registry.h"
#include "src/freq/governor_registry.h"

namespace {
#ifdef NDEBUG
constexpr const char kBuildType[] = "release";
#else
constexpr const char kBuildType[] = "debug";
#endif
}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  const std::vector<std::string> unknown = flags.UnknownFlags({"duration", "threads", "out"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag --%s (known: --duration --threads --out)\n",
                 unknown.front().c_str());
    return 1;
  }
  const eas::Tick duration = flags.GetInt("duration", 40'000);
  const std::size_t threads =
      static_cast<std::size_t>(std::max(0LL, flags.GetInt("threads", 0)));
  const std::string out = flags.GetString("out", "BENCH_governors.json");

  const std::vector<std::string> governors = eas::FrequencyGovernorRegistry::Global().Names();
  const std::vector<std::string> policies = eas::BalancePolicyRegistry::Global().Names();

  // Every row is a declarative request over the governor-comparison
  // scenario. Pure-mechanism rows: hlt only on the "none" rows, the
  // governor alone otherwise - with the backstop armed the gate absorbs
  // every overshoot before a stepwise governor can react, and all rows
  // collapse onto the hlt baseline.
  std::vector<eas::ResolvedRequest> resolved;
  for (const std::string& governor : governors) {
    for (const std::string& policy : policies) {
      eas::RunRequest request = eas::RunRequestForScenario("governor-comparison");
      request.name = governor + "/" + policy;
      request.governor = governor;
      request.policy = policy;
      request.throttle = governor == "none";
      if (duration > 0) {
        request.duration_s = static_cast<double>(duration) / 1000.0;
      }
      auto r = eas::ResolveRunRequest(request);
      if (!r.ok()) {
        std::fprintf(stderr, "resolve %s: %s\n", request.name.c_str(),
                     r.error().Render().c_str());
        return 1;
      }
      resolved.push_back(std::move(*r));
    }
  }

  std::printf("== governor sweep: %zu governors x %zu policies ==\n\n", governors.size(),
              policies.size());

  eas::JsonlSink jsonl(out);
  eas::RunSession session(threads);
  session.AddSink(jsonl);
  char header[224];
  std::snprintf(header, sizeof(header),
                "{\"bench\": \"governor_sweep\", \"scenario\": \"governor-comparison\", "
                "\"duration_ticks\": %lld, \"threads\": %zu, \"build_type\": \"%s\"}",
                static_cast<long long>(duration), session.runner().num_threads(), kBuildType);
  jsonl.AppendLine(header);

  const auto start = std::chrono::steady_clock::now();
  const std::vector<eas::RunRecord> records = session.Run(resolved);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  for (const eas::RunRecord& record : records) {
    std::printf("  %-32s %9.1f work-ticks/s  %5.2f%% throttled  %.3fx avg freq\n",
                record.spec.name.c_str(), record.result.Throughput(),
                record.result.AverageThrottledFraction() * 100,
                record.result.AverageFrequencyMultiplier());
  }

  char trailer[96];
  std::snprintf(trailer, sizeof(trailer), "{\"wall_seconds\": %.4f}", elapsed);
  jsonl.AppendLine(trailer);
  jsonl.Finish();
  if (!jsonl.ok()) {
    std::fprintf(stderr, "%s\n", jsonl.error().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%.1f s wall)\n", out.c_str(), elapsed);
  return 0;
}
