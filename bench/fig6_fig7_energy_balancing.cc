// Figures 6 and 7 plus the Section 6.1 migration counts.
//
// Setup (paper): 8-way machine, SMT off, max power 60 W for all CPUs,
// 18 tasks (3x each Table 2 program), 15-minute runs.
//   Fig 6 (balancing disabled): thermal power curves diverge; some CPUs
//     exceed the 50 W limit.
//   Fig 7 (balancing enabled): the band stays narrow, below the limit.
//   Migrations: 3.3 (disabled) vs 32 (enabled); SMT on: 9.8 vs 87.

#include <cstdio>
#include <string>
#include <vector>

#include "src/base/ascii_plot.h"
#include "src/sim/experiment_runner.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

eas::MachineConfig Config(bool smt, bool energy_aware) {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(smt);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = 60.0;
  config.throttling_enabled = false;  // Section 6.1 observes, does not throttle
  config.sched = energy_aware ? eas::EnergySchedConfig::EnergyAware()
                              : eas::EnergySchedConfig::Baseline();
  return config;
}

eas::ExperimentSpec Spec(const eas::ProgramLibrary& library, bool smt, bool energy_aware,
                         eas::Tick duration) {
  eas::ExperimentSpec spec;
  spec.name = std::string(smt ? "smt" : "no-smt") + (energy_aware ? "/eas" : "/base");
  spec.config = Config(smt, energy_aware);
  spec.options.duration_ticks = duration;
  spec.options.sample_interval_ticks = 2'000;
  spec.workload = eas::MixedWorkload(library, smt ? 6 : 3);
  return spec;
}

void PrintRun(const char* title, const eas::RunResult& result) {
  std::printf("--- %s ---\n", title);
  eas::PlotOptions options;
  options.y_min = 10.0;
  options.y_max = 62.0;
  options.height = 16;
  options.marker = 50.0;
  options.use_marker = true;
  options.y_label = "thermal power [W] of the 8 CPUs over 900 s; dashes mark the 50 W limit";
  std::printf("%s\n", eas::RenderPlot(result.thermal_power, options).c_str());

  const eas::Tick settle = 120'000;
  std::printf("  spread after warm-up: %.1f W   peak: %.1f W   migrations: %lld\n\n",
              result.MaxThermalSpreadAfter(settle), result.thermal_power.MaxValue(),
              static_cast<long long>(result.migrations));
}

}  // namespace

int main() {
  std::printf("== Figures 6/7: thermal power of the eight CPUs, 18-task mixed workload ==\n\n");
  const eas::Tick duration = 900'000;  // the paper's 15 minutes

  // All four 15-minute runs fan out across the ExperimentRunner's pool.
  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  const std::vector<eas::ExperimentSpec> specs = {
      Spec(library, false, false, duration),
      Spec(library, false, true, duration),
      Spec(library, true, false, duration),
      Spec(library, true, true, duration),
  };
  const std::vector<eas::RunResult> results = eas::ExperimentRunner().RunAll(specs);
  const eas::RunResult& disabled = results[0];
  const eas::RunResult& enabled = results[1];
  const eas::RunResult& smt_disabled = results[2];
  const eas::RunResult& smt_enabled = results[3];

  PrintRun("Figure 6: energy balancing DISABLED", disabled);
  PrintRun("Figure 7: energy balancing ENABLED", enabled);

  std::printf("== Section 6.1 migration counts (15 minutes) ==\n\n");
  std::printf("%-22s %16s %16s\n", "", "paper", "measured");
  std::printf("%-22s %16s %16lld\n", "SMT off, disabled", "3.3",
              static_cast<long long>(disabled.migrations));
  std::printf("%-22s %16s %16lld\n", "SMT off, enabled", "32",
              static_cast<long long>(enabled.migrations));
  std::printf("%-22s %16s %16lld\n", "SMT on, disabled", "9.8",
              static_cast<long long>(smt_disabled.migrations));
  std::printf("%-22s %16s %16lld\n", "SMT on, enabled", "87",
              static_cast<long long>(smt_enabled.migrations));

  std::printf(
      "\nShape to reproduce: without balancing the curves diverge (width tracks the\n"
      "38-61 W program spread) and cross the 50 W line; with balancing the band is\n"
      "narrow and stays below the limit, at the cost of ~10x more (still cheap)\n"
      "migrations.\n");
  return 0;
}
