// Table 3 and Section 6.2: temperature control by throttling.
//
// Setup (paper): per-CPU thermal calibration, artificial 38 C limit, SMT on,
// mixed workload. Paper results: the poorly cooled CPUs throttle 51-61% of
// the time without energy balancing, noticeably less with it; the average
// falls from 15.2% to 10.2%, and throughput rises 4.7% (4.9% with a
// short-running-task workload where initial placement dominates).
//
// All four runs (mixed/short x baseline/energy-aware) fan out over the
// ExperimentRunner.

#include <cstdio>
#include <vector>

#include "src/sim/experiment_runner.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

eas::MachineConfig Config(bool energy_aware) {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/true);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.temp_limit = 38.0;  // derive per-CPU max power from cooling params
  config.throttling_enabled = true;
  config.sched = energy_aware ? eas::EnergySchedConfig::EnergyAware()
                              : eas::EnergySchedConfig::Baseline();
  return config;
}

}  // namespace

int main() {
  std::printf("== Table 3: CPU throttling percentage (38 C artificial limit) ==\n\n");
  const eas::Tick duration = 600'000;  // 10 simulated minutes

  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  const auto mixed = eas::MixedWorkload(library, 6);
  // Short-running tasks: initial placement carries the benefit.
  std::vector<const eas::Program*> shorts;
  for (int i = 0; i < 24; ++i) {
    shorts.push_back(i % 2 == 0 ? &library.short_hot() : &library.short_cool());
  }

  std::vector<eas::ExperimentSpec> specs(4);
  specs[0] = {"mixed/base", Config(false), {}, mixed};
  specs[1] = {"mixed/eas", Config(true), {}, mixed};
  specs[2] = {"short/base", Config(false), {}, shorts};
  specs[3] = {"short/eas", Config(true), {}, shorts};
  specs[0].options.duration_ticks = duration;
  specs[1].options.duration_ticks = duration;
  specs[2].options.duration_ticks = 300'000;
  specs[3].options.duration_ticks = 300'000;

  const std::vector<eas::RunResult> results = eas::ExperimentRunner().RunAll(specs);
  const eas::RunResult& baseline = results[0];
  const eas::RunResult& eas_run = results[1];
  const eas::RunResult& base_short = results[2];
  const eas::RunResult& eas_short = results[3];

  std::printf("%-12s %22s %22s\n", "logical CPU", "energy balancing", "energy balancing");
  std::printf("%-12s %22s %22s\n", "", "disabled", "enabled");
  for (std::size_t cpu = 0; cpu < baseline.throttled_fraction.size(); ++cpu) {
    const double off = baseline.throttled_fraction[cpu] * 100;
    const double on = eas_run.throttled_fraction[cpu] * 100;
    if (off > 0.5 || on > 0.5) {
      std::printf("%-12zu %21.1f%% %21.1f%%\n", cpu, off, on);
    }
  }
  std::printf("%-12s %21.1f%% %21.1f%%\n", "average", baseline.AverageThrottledFraction() * 100,
              eas_run.AverageThrottledFraction() * 100);
  std::printf("  (paper:   average 15.2%% -> 10.2%%; hot CPUs 51-61%% -> 35-52%%)\n\n");

  const double increase = eas::ThroughputIncrease(baseline, eas_run) * 100;
  std::printf("throughput increase, mixed workload: %+.1f%%  (paper: +4.7%%)\n\n", increase);

  std::printf("throughput increase, short tasks (<1 s): %+.1f%%  (paper: +4.9%%)\n",
              eas::ThroughputIncrease(base_short, eas_short) * 100);

  std::printf(
      "\nShape to reproduce: only the poorly cooled packages throttle; energy-aware\n"
      "scheduling moves their hot tasks to well-cooled packages, cutting throttle\n"
      "time on every affected CPU and lifting total throughput by a few percent.\n");
  return 0;
}
