// Scenario x policy sweep: every registered scenario under every registered
// balancing policy, described as canned RunRequests and fanned through one
// RunSession. The cross-product is the "does every workload still behave"
// regression net - run it per change and compare the BENCH_scenarios.json it
// writes (JSONL: a config header line, one record per run with every
// metric-schema scalar plus the request that reproduces it, a wall-clock
// trailer).
//
//   $ bench_scenario_sweep [--duration=40000] [--threads=0] [--out=BENCH_scenarios.json]
//
// --duration overrides every scenario's tick count (0 keeps each scenario's
// own, paper-length duration).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/api/run_session.h"
#include "src/base/flags.h"
#include "src/core/policy_registry.h"
#include "src/sim/scenario.h"

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  const std::vector<std::string> unknown = flags.UnknownFlags({"duration", "threads", "out"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag --%s (known: --duration --threads --out)\n",
                 unknown.front().c_str());
    return 1;
  }
  const eas::Tick duration = flags.GetInt("duration", 40'000);
  const std::size_t threads =
      static_cast<std::size_t>(std::max(0LL, flags.GetInt("threads", 0)));
  const std::string out = flags.GetString("out", "BENCH_scenarios.json");

  const std::vector<std::string> policies = eas::BalancePolicyRegistry::Global().Names();

  // The whole sweep as data: one canned request per scenario, crossed with
  // every policy. Any row's "request" field in the output replays that row
  // via `eastool --request`.
  std::vector<eas::ResolvedRequest> resolved;
  for (const eas::RunRequest& canned : eas::CannedScenarioRequests()) {
    for (const std::string& policy : policies) {
      eas::RunRequest request = canned;
      request.name = request.scenario + "/" + policy;
      request.policy = policy;
      if (duration > 0) {
        request.duration_s = static_cast<double>(duration) / 1000.0;
      }
      auto r = eas::ResolveRunRequest(request);
      if (!r.ok()) {
        std::fprintf(stderr, "resolve %s: %s\n", request.name.c_str(),
                     r.error().Render().c_str());
        return 1;
      }
      resolved.push_back(std::move(*r));
    }
  }

  std::printf("== scenario sweep: %zu scenarios x %zu policies ==\n\n",
              resolved.size() / policies.size(), policies.size());

  eas::JsonlSink jsonl(out);
  eas::RunSession session(threads);
  session.AddSink(jsonl);
  char header[160];
  std::snprintf(header, sizeof(header),
                "{\"bench\": \"scenario_sweep\", \"duration_ticks\": %lld, \"threads\": %zu}",
                static_cast<long long>(duration), session.runner().num_threads());
  jsonl.AppendLine(header);

  const auto start = std::chrono::steady_clock::now();
  const std::vector<eas::RunRecord> records = session.Run(resolved);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  for (const eas::RunRecord& record : records) {
    std::printf("  %-40s %9.1f work-ticks/s  %5lld migr  %5.2f%% throttled\n",
                record.spec.name.c_str(), record.result.Throughput(),
                static_cast<long long>(record.result.migrations),
                record.result.AverageThrottledFraction() * 100);
  }

  char trailer[96];
  std::snprintf(trailer, sizeof(trailer), "{\"wall_seconds\": %.4f}", elapsed);
  jsonl.AppendLine(trailer);
  jsonl.Finish();
  if (!jsonl.ok()) {
    std::fprintf(stderr, "%s\n", jsonl.error().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%.1f s wall)\n", out.c_str(), elapsed);
  return 0;
}
