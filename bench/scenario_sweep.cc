// Scenario x policy sweep: every registered scenario under every registered
// balancing policy, fanned through the parallel ExperimentRunner. The
// cross-product is the "does every workload still behave" regression net -
// run it per change and compare the BENCH_scenarios.json it writes.
//
//   $ bench_scenario_sweep [--duration=40000] [--threads=0] [--out=BENCH_scenarios.json]
//
// --duration overrides every scenario's tick count (0 keeps each scenario's
// own, paper-length duration).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/flags.h"
#include "src/core/policy_registry.h"
#include "src/sim/csv_export.h"
#include "src/sim/scenario.h"

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  const eas::Tick duration = flags.GetInt("duration", 40'000);
  const std::size_t threads =
      static_cast<std::size_t>(std::max(0LL, flags.GetInt("threads", 0)));
  const std::string out = flags.GetString("out", "BENCH_scenarios.json");

  const std::vector<std::string> scenarios = eas::ScenarioRegistry::Global().Names();
  const std::vector<std::string> policies = eas::BalancePolicyRegistry::Global().Names();

  std::vector<eas::ExperimentSpec> specs;
  specs.reserve(scenarios.size() * policies.size());
  for (const std::string& scenario : scenarios) {
    for (const std::string& policy : policies) {
      eas::ExperimentSpec spec =
          eas::ScenarioRegistry::Global().BuildOrThrow(scenario).ToExperimentSpec();
      spec.name = scenario + "/" + policy;
      spec.config.sched = eas::SchedConfigForPolicy(policy);
      if (duration > 0) {
        spec.options.duration_ticks = duration;
      }
      specs.push_back(std::move(spec));
    }
  }

  std::printf("== scenario sweep: %zu scenarios x %zu policies ==\n\n", scenarios.size(),
              policies.size());
  const eas::ExperimentRunner runner(threads);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<eas::RunResult> results = runner.RunAll(specs);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::string json = "{\n  \"bench\": \"scenario_sweep\",\n";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  \"duration_ticks\": %lld,\n  \"threads\": %zu,\n"
                "  \"wall_seconds\": %.4f,\n  \"runs\": [\n",
                static_cast<long long>(duration), runner.num_threads(), elapsed);
  json += buffer;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const eas::RunResult& result = results[i];
    std::printf("  %-40s %9.1f work-ticks/s  %5lld migr  %5.2f%% throttled\n",
                specs[i].name.c_str(), result.Throughput(),
                static_cast<long long>(result.migrations),
                result.AverageThrottledFraction() * 100);
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"throughput\": %.2f, \"migrations\": %lld,\n"
                  "     \"completions\": %lld, \"avg_throttled_fraction\": %.4f,\n"
                  "     \"peak_thermal_w\": %.2f, \"steady_spread_w\": %.2f}%s\n",
                  specs[i].name.c_str(), result.Throughput(),
                  static_cast<long long>(result.migrations),
                  static_cast<long long>(result.completions), result.AverageThrottledFraction(),
                  result.thermal_power.MaxValue(),
                  result.MaxThermalSpreadAfter(specs[i].options.duration_ticks / 2),
                  i + 1 < specs.size() ? "," : "");
    json += buffer;
  }
  json += "  ]\n}\n";

  if (!eas::WriteFile(out, json)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%.1f s wall)\n", out.c_str(), elapsed);
  return 0;
}
