// Sweep-scaling microbenchmark: wall time of an experiment sweep through the
// ExperimentRunner at 1 thread vs all hardware threads, plus the per-tick
// engine rate. Seeds the perf trajectory: run it per change and compare the
// BENCH_sweep_scaling.json it writes.
//
//   $ bench_sweep_scaling [--runs=12] [--duration=40000] [--out=BENCH_sweep_scaling.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/flags.h"
#include "src/sim/csv_export.h"
#include "src/sim/experiment_runner.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::vector<eas::ExperimentSpec> MakeSweep(const eas::ProgramLibrary& library, int runs,
                                           eas::Tick duration) {
  eas::ExperimentSpec base;
  base.name = "sweep";
  base.config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/false);
  base.config.cooling = eas::CoolingProfile::PaperXSeries445();
  base.config.explicit_max_power_physical = 60.0;
  base.config.estimator_weights = eas::EnergyModel::Default().weights();
  base.options.duration_ticks = duration;
  base.workload = eas::MixedWorkload(library, 2);
  return eas::ExperimentRunner::SeedSweep(base, static_cast<std::size_t>(runs));
}

double TimeSweep(const std::vector<eas::ExperimentSpec>& specs, std::size_t threads,
                 double* work_done) {
  const eas::ExperimentRunner runner(threads);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<eas::RunResult> results = runner.RunAll(specs);
  const double elapsed = SecondsSince(start);
  *work_done = 0.0;
  for (const eas::RunResult& result : results) {
    *work_done += result.work_done_ticks;
  }
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  const int runs = std::max(1, static_cast<int>(flags.GetInt("runs", 12)));
  const eas::Tick duration = std::max<eas::Tick>(1, flags.GetInt("duration", 40'000));
  const std::string out = flags.GetString("out", "BENCH_sweep_scaling.json");

  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  const std::vector<eas::ExperimentSpec> specs = MakeSweep(library, runs, duration);
  const std::size_t hardware = eas::ExperimentRunner().num_threads();

  std::printf("== sweep scaling: %d runs x %lld ticks ==\n\n", runs,
              static_cast<long long>(duration));

  double work_single = 0.0;
  const double single = TimeSweep(specs, 1, &work_single);
  std::printf("  1 thread : %7.2f s  (%.0f work ticks)\n", single, work_single);

  double work_multi = 0.0;
  const double multi = TimeSweep(specs, hardware, &work_multi);
  std::printf("  %zu threads: %7.2f s  (%.0f work ticks)\n", hardware, multi, work_multi);

  const double speedup = multi > 0.0 ? single / multi : 0.0;
  const double ticks_per_second =
      single > 0.0 ? static_cast<double>(runs) * static_cast<double>(duration) / single : 0.0;
  std::printf("  speedup  : %6.2fx\n", speedup);
  std::printf("  1-thread engine rate: %.0f machine-ticks/s\n", ticks_per_second);
  if (work_single != work_multi) {
    std::printf("  WARNING: aggregate work differs across thread counts!\n");
  }

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"bench\": \"sweep_scaling\",\n"
                "  \"runs\": %d,\n"
                "  \"duration_ticks\": %lld,\n"
                "  \"threads\": %zu,\n"
                "  \"single_thread_seconds\": %.4f,\n"
                "  \"multi_thread_seconds\": %.4f,\n"
                "  \"speedup\": %.4f,\n"
                "  \"single_thread_ticks_per_second\": %.0f,\n"
                "  \"deterministic_across_threads\": %s\n"
                "}\n",
                runs, static_cast<long long>(duration), hardware, single, multi, speedup,
                ticks_per_second, work_single == work_multi ? "true" : "false");
  if (!eas::WriteFile(out, json)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
