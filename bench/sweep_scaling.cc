// Sweep-scaling microbenchmark: wall time of an experiment sweep through the
// ExperimentRunner at 1 thread vs all hardware threads, plus the per-tick
// engine rate. Seeds the perf trajectory: run it per change and compare the
// BENCH_sweep_scaling.json it writes.
//
//   $ bench_sweep_scaling [--runs=12] [--duration=40000] [--threads=0]
//                         [--out=BENCH_sweep_scaling.json]
//
// --threads pins the multi-thread leg (0 = all hardware threads); the JSON
// records it plus the build type so tools/bench_compare.py can refuse to
// diff runs measured under different configurations.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/api/run_request.h"
#include "src/base/flags.h"
#include "src/sim/csv_export.h"

namespace {

#ifdef NDEBUG
constexpr const char kBuildType[] = "release";
#else
constexpr const char kBuildType[] = "debug";
#endif

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::vector<eas::ExperimentSpec> MakeSweep(int runs, eas::Tick duration) {
  // The sweep described as a request (the same one `eastool --request`
  // would run), then tightened for benching: exact tick count and oracle
  // estimator weights, so the timing measures the engine, not calibration.
  eas::RunRequest request;
  request.name = "sweep";
  request.workload = "mixed:2";
  request.max_power = 60.0;
  request.runs = static_cast<std::uint64_t>(runs);
  auto resolved = eas::ResolveRunRequest(request);
  if (!resolved.ok()) {
    std::fprintf(stderr, "resolve: %s\n", resolved.error().Render().c_str());
    std::exit(1);
  }
  std::vector<eas::ExperimentSpec> specs = std::move(resolved->specs);
  for (eas::ExperimentSpec& spec : specs) {
    spec.options.duration_ticks = duration;
    spec.config.estimator_weights = eas::EnergyModel::Default().weights();
  }
  return specs;
}

double TimeSweep(const std::vector<eas::ExperimentSpec>& specs, std::size_t threads,
                 double* work_done) {
  const eas::ExperimentRunner runner(threads);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<eas::RunResult> results = runner.RunAll(specs);
  const double elapsed = SecondsSince(start);
  *work_done = 0.0;
  for (const eas::RunResult& result : results) {
    *work_done += result.work_done_ticks;
  }
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  const std::vector<std::string> unknown =
      flags.UnknownFlags({"runs", "duration", "threads", "out"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag --%s (known: --runs --duration --threads --out)\n",
                 unknown.front().c_str());
    return 1;
  }
  const int runs = std::max(1, static_cast<int>(flags.GetInt("runs", 12)));
  const eas::Tick duration = std::max<eas::Tick>(1, flags.GetInt("duration", 40'000));
  const std::size_t requested =
      static_cast<std::size_t>(std::max(0LL, flags.GetInt("threads", 0)));
  const std::string out = flags.GetString("out", "BENCH_sweep_scaling.json");

  const std::vector<eas::ExperimentSpec> specs = MakeSweep(runs, duration);
  const std::size_t hardware =
      requested > 0 ? requested : eas::ExperimentRunner().num_threads();

  std::printf("== sweep scaling: %d runs x %lld ticks ==\n\n", runs,
              static_cast<long long>(duration));

  double work_single = 0.0;
  const double single = TimeSweep(specs, 1, &work_single);
  std::printf("  1 thread : %7.2f s  (%.0f work ticks)\n", single, work_single);

  double work_multi = 0.0;
  const double multi = TimeSweep(specs, hardware, &work_multi);
  std::printf("  %zu threads: %7.2f s  (%.0f work ticks)\n", hardware, multi, work_multi);

  const double speedup = multi > 0.0 ? single / multi : 0.0;
  const double ticks_per_second =
      single > 0.0 ? static_cast<double>(runs) * static_cast<double>(duration) / single : 0.0;
  std::printf("  speedup  : %6.2fx\n", speedup);
  std::printf("  1-thread engine rate: %.0f machine-ticks/s\n", ticks_per_second);
  if (work_single != work_multi) {
    std::printf("  WARNING: aggregate work differs across thread counts!\n");
  }

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"bench\": \"sweep_scaling\",\n"
                "  \"runs\": %d,\n"
                "  \"duration_ticks\": %lld,\n"
                "  \"threads\": %zu,\n"
                "  \"build_type\": \"%s\",\n"
                "  \"single_thread_seconds\": %.4f,\n"
                "  \"multi_thread_seconds\": %.4f,\n"
                "  \"speedup\": %.4f,\n"
                "  \"single_thread_ticks_per_second\": %.0f,\n"
                "  \"deterministic_across_threads\": %s\n"
                "}\n",
                runs, static_cast<long long>(duration), hardware, kBuildType, single, multi,
                speedup, ticks_per_second, work_single == work_multi ? "true" : "false");
  if (!eas::WriteFile(out, json)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
