// Extension bench (paper Section 7, future work): functional-unit aware
// co-scheduling.
//
// "Energy-aware scheduling would even be beneficial for tasks having the
// same power consumption, if they dissipate energy at different functional
// units, as is the case with floating point and integer applications."
//
// Four tasks with IDENTICAL total power - two integer-bound, two FP-bound -
// are paired onto two SMT packages. Scalar energy profiles cannot tell them
// apart; FU profiles can. We co-run each pairing on the per-FU thermal model
// and report the hottest cluster temperature.

#include <cstdio>
#include <vector>

#include "src/core/fu_pairing.h"
#include "src/thermal/fu_thermal.h"

namespace {

eas::FuPowerVector ClusterLoad(eas::FunctionalUnit fu, double watts) {
  eas::FuPowerVector p{};
  p[static_cast<std::size_t>(fu)] = watts;
  return p;
}

// Steady-state peak FU temperature of a package co-running tasks a and b.
double CoRunPeakTemperature(const eas::FuPowerVector& a, const eas::FuPowerVector& b,
                            double corun_speed) {
  eas::FuThermalParams params;
  eas::FuThermalModel model(params);
  eas::FuPowerVector combined{};
  for (std::size_t i = 0; i < eas::kNumFunctionalUnits; ++i) {
    combined[i] = (a[i] + b[i]) * corun_speed;
  }
  for (int tick = 0; tick < 120'000; ++tick) {  // 2 minutes, >> both taus
    model.Step(combined, 18.0, 1e-3);
  }
  return model.MaxFuTemperature();
}

}  // namespace

int main() {
  std::printf("== Extension (Sec. 7): FU-aware co-scheduling on SMT ==\n\n");

  const double kWatts = 22.0;  // identical scalar power for every task
  const double kCorun = 0.65;
  std::vector<eas::FuPowerVector> tasks = {
      ClusterLoad(eas::FunctionalUnit::kIntegerCluster, kWatts),  // int_a
      ClusterLoad(eas::FunctionalUnit::kIntegerCluster, kWatts),  // int_b
      ClusterLoad(eas::FunctionalUnit::kFpCluster, kWatts),       // fp_a
      ClusterLoad(eas::FunctionalUnit::kFpCluster, kWatts),       // fp_b
  };
  const char* names[] = {"int_a", "int_b", "fp_a", "fp_b"};

  auto report = [&](const char* title,
                    const std::vector<std::pair<std::size_t, std::size_t>>& pairs) {
    std::printf("%s\n", title);
    double worst = 0.0;
    for (const auto& [a, b] : pairs) {
      const double peak = CoRunPeakTemperature(tasks[a], tasks[b], kCorun);
      worst = std::max(worst, peak);
      std::printf("  %-6s + %-6s -> hottest cluster %.1f C\n", names[a], names[b], peak);
    }
    std::printf("  worst package hotspot: %.1f C\n\n", worst);
    return worst;
  };

  const double naive = report("FU-blind pairing (scalar profiles are all equal):",
                              eas::PairInOrder(tasks.size()));
  const double aware = report("FU-aware pairing (minimize hotspot score):",
                              eas::PairForMinimumHotspot(tasks, kCorun));

  std::printf("hotspot reduction: %.1f K at identical total power and throughput.\n",
              naive - aware);
  std::printf(
      "\nA scalar energy profile calls all four tasks identical (%.0f W each);\n"
      "characterizing tasks by *where* they dissipate energy lets the scheduler\n"
      "cut the peak die temperature without moving a single watt - the benefit\n"
      "the paper's future-work section predicts.\n",
      kWatts);
  return 0;
}
