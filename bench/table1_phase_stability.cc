// Table 1: change in power consumption during successive timeslices.
//
// Paper numbers (maximum / average relative change between successive
// timeslices, several hundred timeslices per program):
//   bash    19.0% / 2.05%      sshd    18.3% / 1.38%
//   bzip2   88.8% / 5.45%      openssl 63.2% / 2.48%
//   grep    84.3% / 1.06%
//
// We execute each program model standalone, account energy per 100 ms
// timeslice with the calibrated estimator, and report the same statistics.

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/base/stats.h"
#include "src/counters/calibration.h"
#include "src/counters/energy_estimator.h"
#include "src/task/task.h"
#include "src/workloads/programs.h"

namespace {

struct ChangeStats {
  double max_change = 0.0;
  double avg_change = 0.0;
  int timeslices = 0;
};

ChangeStats MeasureProgram(const eas::Program& program, const eas::EnergyModel& model,
                           const eas::EnergyEstimator& estimator, int target_timeslices) {
  eas::Task task(1, &program, /*seed=*/0xfeedULL + program.binary_id());
  std::vector<double> powers;

  double period_energy = 0.0;
  int period_ticks = 0;
  while (static_cast<int>(powers.size()) < target_timeslices) {
    const eas::EventVector events = task.ExecuteTick(1.0);
    period_energy += estimator.EstimateDynamicEnergy(events) +
                     estimator.static_power_per_logical() * eas::kTickSeconds;
    ++period_ticks;
    (void)model;

    const eas::Tick sleep = task.TakePendingSleep();
    const bool timeslice_full = period_ticks >= 100;
    if (timeslice_full || sleep > 0) {
      if (period_ticks >= 10) {  // discard tiny fragments, as the kernel's
                                 // variable-period average effectively does
        powers.push_back(period_energy / (period_ticks * eas::kTickSeconds));
      }
      period_energy = 0.0;
      period_ticks = 0;
    }
    // Sleeping consumes wall time but no CPU; skip it.
  }

  ChangeStats stats;
  eas::RunningStats changes;
  for (std::size_t i = 1; i < powers.size(); ++i) {
    const double change = std::fabs(powers[i] - powers[i - 1]) / powers[i - 1];
    changes.Add(change);
  }
  stats.max_change = changes.max();
  stats.avg_change = changes.mean();
  stats.timeslices = static_cast<int>(powers.size());
  return stats;
}

}  // namespace

int main() {
  std::printf("== Table 1: change in power consumption during successive timeslices ==\n\n");

  const eas::EnergyModel model = eas::EnergyModel::Default();
  const eas::CalibrationResult calibration =
      eas::Calibrator::CalibrateDefault(model, 2026, 0.02);
  const eas::EnergyEstimator estimator(calibration.weights, model.active_base_power());
  const eas::ProgramLibrary library(model);

  struct PaperRow {
    const char* name;
    double paper_max;
    double paper_avg;
  };
  const PaperRow paper_rows[] = {
      {"bash", 19.0, 2.05},  {"bzip2", 88.8, 5.45},   {"grep", 84.3, 1.06},
      {"sshd", 18.3, 1.38},  {"openssl", 63.2, 2.48},
  };

  std::printf("%-10s %18s %18s %12s\n", "program", "maximum (paper)", "average (paper)",
              "timeslices");
  for (const PaperRow& row : paper_rows) {
    const eas::Program* program = library.ByName(row.name);
    const ChangeStats stats = MeasureProgram(*program, model, estimator, 600);
    std::printf("%-10s %7.1f%% (%5.1f%%) %7.2f%% (%5.2f%%) %12d\n", row.name,
                stats.max_change * 100, row.paper_max, stats.avg_change * 100, row.paper_avg,
                stats.timeslices);
  }
  std::printf(
      "\nShape to reproduce: interactive programs (bash, sshd) have small maximum\n"
      "changes; batch programs with phases (bzip2, grep, openssl) show rare large\n"
      "jumps, yet ALL programs keep the average change small - which is why the\n"
      "last timeslice predicts the next one well (Section 3.3).\n");
  return 0;
}
