// Microbenchmarks: the per-tick / per-decision costs of the scheduler
// extensions. The paper argues the accounting and balancing overheads are
// negligible; these numbers quantify that for the simulator's
// implementation of the same algorithms.

#include <benchmark/benchmark.h>

#include "src/core/energy_balancer.h"
#include "src/core/initial_placement.h"
#include "src/counters/calibration.h"
#include "src/counters/energy_estimator.h"
#include "src/sim/machine.h"
#include "src/task/energy_profile.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

void BM_EstimateDynamicEnergy(benchmark::State& state) {
  const eas::EnergyModel model = eas::EnergyModel::Default();
  const eas::EnergyEstimator estimator = eas::EnergyEstimator::Oracle(model, 1);
  eas::EventVector events{};
  for (std::size_t i = 0; i < eas::kNumEventTypes; ++i) {
    events[i] = 100.0 + static_cast<double>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.EstimateDynamicEnergy(events));
  }
}
BENCHMARK(BM_EstimateDynamicEnergy);

void BM_ProfileUpdate(benchmark::State& state) {
  eas::EnergyProfile profile;
  profile.Seed(40.0);
  for (auto _ : state) {
    profile.AddPeriod(5.0, 100);
    benchmark::DoNotOptimize(profile.power());
  }
}
BENCHMARK(BM_ProfileUpdate);

void BM_Calibration(benchmark::State& state) {
  const eas::EnergyModel model = eas::EnergyModel::Default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eas::Calibrator::CalibrateDefault(model, 1, 0.02));
  }
}
BENCHMARK(BM_Calibration)->Unit(benchmark::kMillisecond);

eas::MachineConfig BenchConfig(bool energy_aware) {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(false);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = 60.0;
  config.estimator_weights = eas::EnergyModel::Default().weights();
  config.sched = energy_aware ? eas::EnergySchedConfig::EnergyAware()
                              : eas::EnergySchedConfig::Baseline();
  return config;
}

void BM_MachineTickBaseline(benchmark::State& state) {
  eas::Machine machine(BenchConfig(false));
  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  for (int i = 0; i < 18; ++i) {
    machine.Spawn(*eas::MixedWorkload(library, 3)[static_cast<std::size_t>(i)]);
  }
  for (auto _ : state) {
    machine.Step();
  }
}
BENCHMARK(BM_MachineTickBaseline);

void BM_MachineTickEnergyAware(benchmark::State& state) {
  eas::Machine machine(BenchConfig(true));
  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  for (int i = 0; i < 18; ++i) {
    machine.Spawn(*eas::MixedWorkload(library, 3)[static_cast<std::size_t>(i)]);
  }
  for (auto _ : state) {
    machine.Step();
  }
}
BENCHMARK(BM_MachineTickEnergyAware);

void BM_EnergyBalancerPass(benchmark::State& state) {
  eas::Machine machine(BenchConfig(true));
  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  for (const eas::Program* p : eas::MixedWorkload(library, 3)) {
    machine.Spawn(*p);
  }
  machine.Run(2'000);  // settle
  eas::EnergyLoadBalancer balancer;
  int cpu = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balancer.Balance(cpu, machine));
    cpu = (cpu + 1) % 8;
  }
}
BENCHMARK(BM_EnergyBalancerPass);

void BM_InitialPlacement(benchmark::State& state) {
  eas::Machine machine(BenchConfig(true));
  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  for (const eas::Program* p : eas::MixedWorkload(library, 3)) {
    machine.Spawn(*p);
  }
  machine.Run(500);
  eas::InitialPlacement placement;
  eas::Program program("probe", 4242, {eas::Phase{}}, 0);
  eas::Task task(9999, &program, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement.Place(task, machine, machine.binary_registry()));
  }
}
BENCHMARK(BM_InitialPlacement);

}  // namespace
