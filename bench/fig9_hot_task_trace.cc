// Figure 9: hot task migration of a single task.
//
// Setup (paper): SMT on (16 logical CPUs), each physical package limited to
// 40 W (20 W per logical CPU), one bitcnts instance (~61 W). Every ~10 s the
// package under the task heats to the limit and the task hops to the coolest
// package - never to its SMT sibling, never across the node boundary, round-
// robin over the packages of one node.

#include <cstdio>
#include <set>

#include "src/sim/experiment.h"
#include "src/topo/cpu_topology.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

int main() {
  std::printf("== Figure 9: hot task migration of a single bitcnts task ==\n\n");

  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/true);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = 40.0;
  config.throttling_enabled = true;
  config.sched = eas::EnergySchedConfig::EnergyAware();

  const eas::ProgramLibrary library(config.model);
  eas::Experiment::Options options;
  options.duration_ticks = 200'000;  // 200 s, the paper's x-axis
  options.sample_interval_ticks = 250;
  options.record_task_cpu = true;
  eas::Experiment experiment(config, options);
  const eas::RunResult result = experiment.Run(eas::HotTaskWorkload(library, 1));

  // Scatter plot: CPU id over time, like the paper's figure.
  const eas::Series& trace = result.task_cpu.at(0);
  const eas::CpuTopology topo = config.topology;
  const int height = 16;
  std::vector<std::string> grid(height, std::string(80, ' '));
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const int cpu = static_cast<int>(trace.value_at(i));
    if (cpu < 0) {
      continue;
    }
    const int col = static_cast<int>(trace.tick_at(i) * 79 / 200'000);
    grid[static_cast<std::size_t>(height - 1 - cpu)][static_cast<std::size_t>(col)] = '#';
  }
  std::printf("CPU\n");
  for (int row = 0; row < height; ++row) {
    std::printf("%3d |%s\n", height - 1 - row, grid[static_cast<std::size_t>(row)].c_str());
  }
  std::printf("    +%s\n     time -> (200 s)\n\n", std::string(80, '-').c_str());

  // Verify the two properties the paper highlights.
  int sibling_migrations = 0;
  int node_migrations = 0;
  int hops = 0;
  std::set<std::size_t> packages;
  int last_cpu = -1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const int cpu = static_cast<int>(trace.value_at(i));
    if (cpu < 0) {
      continue;
    }
    packages.insert(topo.PhysicalOf(cpu));
    if (last_cpu >= 0 && cpu != last_cpu) {
      ++hops;
      if (topo.AreSiblings(cpu, last_cpu)) {
        ++sibling_migrations;
      }
      if (!topo.SameNode(cpu, last_cpu)) {
        ++node_migrations;
      }
    }
    last_cpu = cpu;
  }
  std::printf("hops: %d   packages visited: %zu\n", hops, packages.size());
  std::printf("migrations to an SMT sibling:   %d   (paper: 0 - sibling shares the die)\n",
              sibling_migrations);
  std::printf("migrations across node boundary: %d   (paper: 0 - cooled-down CPU found first)\n",
              node_migrations);
  std::printf("throttled fraction: %.2f%%   (paper: throttling fully avoided)\n",
              result.AverageThrottledFraction() * 100);
  std::printf("\nShape to reproduce: the task hops roughly every 10 s (tau and the 40 W limit\n"
              "set the heat-up time) and round-robins over the packages of one node.\n");
  return 0;
}
