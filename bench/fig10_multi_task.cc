// Figure 10 and the Section 6.4 limit study: hot task migration with
// multiple tasks.
//
// Paper: with a 40 W package limit, 1-2 bitcnts tasks gain ~76% throughput
// (the task always finds a cool package); the gain decays as more tasks keep
// more packages hot, reaching ~0% at 8 tasks. At a 50 W limit the single-
// task gain is ~27%.
//
// The whole grid (8 task counts x 2 policies at 40 W, plus the 50 W pair)
// fans out over the ExperimentRunner.

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/experiment_runner.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

eas::MachineConfig Config(bool energy_aware, double limit_watts) {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/true);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = limit_watts;
  config.throttling_enabled = true;
  config.sched = energy_aware ? eas::EnergySchedConfig::EnergyAware()
                              : eas::EnergySchedConfig::Baseline();
  return config;
}

}  // namespace

int main() {
  std::printf("== Figure 10: hot task migration - throughput with multiple tasks ==\n\n");
  const eas::Tick duration = 300'000;  // 5 simulated minutes per run

  const eas::ProgramLibrary library(eas::EnergyModel::Default());

  // Spec pairs (baseline, energy-aware): 8 task counts at 40 W, then the
  // single-task 50 W point. Workloads outlive the sweep.
  std::vector<std::vector<const eas::Program*>> workloads;
  for (int n = 1; n <= 8; ++n) {
    workloads.push_back(eas::HotTaskWorkload(library, n));
  }
  std::vector<eas::ExperimentSpec> specs;
  auto add_pair = [&](const std::vector<const eas::Program*>& workload, double limit,
                      const std::string& label) {
    for (const bool energy_aware : {false, true}) {
      eas::ExperimentSpec spec;
      spec.name = label + (energy_aware ? "/eas" : "/base");
      spec.config = Config(energy_aware, limit);
      spec.options.duration_ticks = duration;
      spec.workload = workload;
      specs.push_back(std::move(spec));
    }
  };
  for (int n = 1; n <= 8; ++n) {
    add_pair(workloads[static_cast<std::size_t>(n - 1)], 40.0,
             std::to_string(n) + "tasks/40W");
  }
  add_pair(workloads[0], 50.0, "1task/50W");

  const std::vector<eas::RunResult> results = eas::ExperimentRunner().RunAll(specs);
  auto increase_at = [&results](std::size_t pair) {
    return eas::ThroughputIncrease(results[pair * 2], results[pair * 2 + 1]);
  };

  std::printf("40 W package limit:\n");
  std::printf("%-8s %12s %12s\n", "tasks", "increase", "paper");
  const double paper[] = {76.0, 76.0, 60.0, 45.0, 30.0, 18.0, 8.0, 0.0};
  for (int n = 1; n <= 8; ++n) {
    std::printf("%-8d %+10.1f%% %11.0f%%\n", n,
                increase_at(static_cast<std::size_t>(n - 1)) * 100, paper[n - 1]);
  }

  std::printf("\nsingle task, limit sweep (Section 6.4):\n");
  std::printf("%-10s %12s %12s\n", "limit", "increase", "paper");
  std::printf("%-10s %+10.1f%% %11s\n", "40 W", increase_at(0) * 100, "+76%");
  std::printf("%-10s %+10.1f%% %11s\n", "50 W", increase_at(8) * 100, "+27%");

  std::printf(
      "\nShape to reproduce: 1-2 tasks always find a cool package (gain maximal and\n"
      "equal); beyond that, packages no longer cool down fast enough and the gain\n"
      "decays towards zero at 8 tasks (all packages permanently hot).\n");
  return 0;
}
