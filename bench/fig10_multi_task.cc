// Figure 10 and the Section 6.4 limit study: hot task migration with
// multiple tasks.
//
// Paper: with a 40 W package limit, 1-2 bitcnts tasks gain ~76% throughput
// (the task always finds a cool package); the gain decays as more tasks keep
// more packages hot, reaching ~0% at 8 tasks. At a 50 W limit the single-
// task gain is ~27%.

#include <cstdio>

#include "src/sim/experiment.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

eas::MachineConfig Config(bool energy_aware, double limit_watts) {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/true);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = limit_watts;
  config.throttling_enabled = true;
  config.sched = energy_aware ? eas::EnergySchedConfig::EnergyAware()
                              : eas::EnergySchedConfig::Baseline();
  return config;
}

double Increase(int n_tasks, double limit_watts, eas::Tick duration) {
  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  eas::Experiment::Options options;
  options.duration_ticks = duration;
  eas::Experiment base_experiment(Config(false, limit_watts), options);
  const eas::RunResult baseline = base_experiment.Run(eas::HotTaskWorkload(library, n_tasks));
  eas::Experiment eas_experiment(Config(true, limit_watts), options);
  const eas::RunResult eas_run = eas_experiment.Run(eas::HotTaskWorkload(library, n_tasks));
  return eas::ThroughputIncrease(baseline, eas_run);
}

}  // namespace

int main() {
  std::printf("== Figure 10: hot task migration - throughput with multiple tasks ==\n\n");
  const eas::Tick duration = 300'000;  // 5 simulated minutes per run

  std::printf("40 W package limit:\n");
  std::printf("%-8s %12s %12s\n", "tasks", "increase", "paper");
  const double paper[] = {76.0, 76.0, 60.0, 45.0, 30.0, 18.0, 8.0, 0.0};
  for (int n = 1; n <= 8; ++n) {
    std::printf("%-8d %+10.1f%% %11.0f%%\n", n, Increase(n, 40.0, duration) * 100,
                paper[n - 1]);
  }

  std::printf("\nsingle task, limit sweep (Section 6.4):\n");
  std::printf("%-10s %12s %12s\n", "limit", "increase", "paper");
  std::printf("%-10s %+10.1f%% %11s\n", "40 W", Increase(1, 40.0, duration) * 100, "+76%");
  std::printf("%-10s %+10.1f%% %11s\n", "50 W", Increase(1, 50.0, duration) * 100, "+27%");

  std::printf(
      "\nShape to reproduce: 1-2 tasks always find a cool package (gain maximal and\n"
      "equal); beyond that, packages no longer cool down fast enough and the gain\n"
      "decays towards zero at 8 tasks (all packages permanently hot).\n");
  return 0;
}
