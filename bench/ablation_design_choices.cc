// Ablations for the design choices DESIGN.md calls out:
//
//  A. Dual-metric condition (Section 4.3/4.4): disable the thermal-power
//     hysteresis so the energy step acts on runqueue power alone ->
//     ping-pong migrations.
//  B. Energy-aware initial placement (Section 4.6): turn it off for a
//     short-task workload -> the throughput benefit shrinks.
//  C. Profile exponential-average weight (Section 3.3): sweep p; too large
//     reacts to spikes (more migrations), too small reacts late.
//
// Every ablation cell is one ExperimentSpec; the whole grid runs through the
// parallel ExperimentRunner in a single sweep.

#include <cstdio>
#include <vector>

#include "src/sim/experiment_runner.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

eas::MachineConfig BaseConfig() {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/false);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = 60.0;
  config.sched = eas::EnergySchedConfig::EnergyAware();
  return config;
}

}  // namespace

int main() {
  std::printf("== Ablations: what each design ingredient buys ==\n\n");
  const eas::Tick duration = 300'000;  // 5 minutes

  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  const auto mixed = eas::MixedWorkload(library, 3);
  std::vector<const eas::Program*> shorts;
  for (int i = 0; i < 24; ++i) {
    shorts.push_back(i % 2 == 0 ? &library.short_hot() : &library.short_cool());
  }

  std::vector<eas::ExperimentSpec> specs;
  auto add = [&specs, duration](const char* name, const eas::MachineConfig& config,
                                const std::vector<const eas::Program*>& workload) {
    eas::ExperimentSpec spec;
    spec.name = name;
    spec.config = config;
    spec.options.duration_ticks = duration;
    spec.workload = workload;
    specs.push_back(std::move(spec));
  };

  // --- A: dual-metric hysteresis -------------------------------------------
  add("A/full", BaseConfig(), mixed);
  {
    eas::MachineConfig no_thermal = BaseConfig();
    // Disabling the slow thermal condition removes the hysteresis: any
    // runqueue-power difference beyond the margin triggers a pull.
    no_thermal.sched.balancer.thermal_ratio_margin = -10.0;
    add("A/no_thermal", no_thermal, mixed);
    eas::MachineConfig no_rq = BaseConfig();
    // Disabling the fast runqueue condition allows over-pulling from CPUs
    // that are merely *still* warm (temperature lags the tasks that left).
    no_rq.sched.balancer.rq_ratio_margin = -10.0;
    add("A/no_rq", no_rq, mixed);
  }

  // --- B: initial placement -------------------------------------------------
  for (const bool placement : {true, false}) {
    eas::MachineConfig config = BaseConfig();
    config.topology = eas::CpuTopology::PaperXSeries445(true);
    config.explicit_max_power_physical.reset();
    config.temp_limit = 38.0;
    config.throttling_enabled = true;
    // Isolate the ingredient: placement is the only energy-aware feature,
    // as in Section 6.2's short-task experiment where tasks die before
    // the balancer would ever touch them.
    config.sched.energy_balancing = false;
    config.sched.hot_task_migration = false;
    config.sched.energy_aware_placement = placement;
    add(placement ? "B/placement_on" : "B/placement_off", config, shorts);
  }

  // --- C: profile weight -----------------------------------------------------
  const double weights[] = {0.05, 0.15, 0.3, 0.6, 0.9};
  for (const double p : weights) {
    eas::MachineConfig config = BaseConfig();
    config.profile_sample_weight = p;
    add(("C/weight=" + std::to_string(p)).c_str(), config, mixed);
  }

  const std::vector<eas::RunResult> results = eas::ExperimentRunner().RunAll(specs);

  std::printf("A. energy-step conditions (mixed workload, migrations in 5 min):\n");
  std::printf("   %-42s %8lld\n", "both conditions (paper design)",
              static_cast<long long>(results[0].migrations));
  std::printf("   %-42s %8lld\n", "without thermal condition (no hysteresis)",
              static_cast<long long>(results[1].migrations));
  std::printf("   %-42s %8lld\n", "without runqueue condition (over-pulling)",
              static_cast<long long>(results[2].migrations));

  std::printf("\nB. energy-aware initial placement (short tasks, 38 C limit, throttling):\n");
  std::printf("   %-42s %8.0f work/s, %4.1f%% throttled\n", "with energy-aware placement",
              results[3].Throughput(), results[3].AverageThrottledFraction() * 100);
  std::printf("   %-42s %8.0f work/s, %4.1f%% throttled\n", "least-loaded placement only",
              results[4].Throughput(), results[4].AverageThrottledFraction() * 100);

  std::printf("\nC. profile exponential-average weight p (migrations in 5 min):\n");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("   p = %-4.2f %8lld\n", weights[i],
                static_cast<long long>(results[5 + i].migrations));
  }
  std::printf("\nExpected: removing either energy-step condition inflates migrations\n"
              "(ping-pong / over-balancing); placement-off costs throughput on short\n"
              "tasks; very large p makes profiles twitchy, very small p makes them\n"
              "stale - both increase churn versus the paper's middle ground.\n");
  return 0;
}
