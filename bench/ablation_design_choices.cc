// Ablations for the design choices DESIGN.md calls out:
//
//  A. Dual-metric condition (Section 4.3/4.4): disable the thermal-power
//     hysteresis so the energy step acts on runqueue power alone ->
//     ping-pong migrations.
//  B. Energy-aware initial placement (Section 4.6): turn it off for a
//     short-task workload -> the throughput benefit shrinks.
//  C. Profile exponential-average weight (Section 3.3): sweep p; too large
//     reacts to spikes (more migrations), too small reacts late.

#include <cstdio>

#include "src/sim/experiment.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

eas::MachineConfig BaseConfig() {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/false);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.explicit_max_power_physical = 60.0;
  config.sched = eas::EnergySchedConfig::EnergyAware();
  return config;
}

std::int64_t MigrationsWith(const eas::MachineConfig& config, eas::Tick duration) {
  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  eas::Experiment::Options options;
  options.duration_ticks = duration;
  eas::Experiment experiment(config, options);
  return experiment.Run(eas::MixedWorkload(library, 3)).migrations;
}

}  // namespace

int main() {
  std::printf("== Ablations: what each design ingredient buys ==\n\n");
  const eas::Tick duration = 300'000;  // 5 minutes

  // --- A: dual-metric hysteresis ------------------------------------------
  std::printf("A. energy-step conditions (mixed workload, migrations in 5 min):\n");
  {
    eas::MachineConfig full = BaseConfig();
    const std::int64_t migrations_full = MigrationsWith(full, duration);

    eas::MachineConfig no_thermal = BaseConfig();
    // Disabling the slow thermal condition removes the hysteresis: any
    // runqueue-power difference beyond the margin triggers a pull.
    no_thermal.sched.balancer.thermal_ratio_margin = -10.0;
    const std::int64_t migrations_no_thermal = MigrationsWith(no_thermal, duration);

    eas::MachineConfig no_rq = BaseConfig();
    // Disabling the fast runqueue condition allows over-pulling from CPUs
    // that are merely *still* warm (temperature lags the tasks that left).
    no_rq.sched.balancer.rq_ratio_margin = -10.0;
    const std::int64_t migrations_no_rq = MigrationsWith(no_rq, duration);

    std::printf("   %-42s %8lld\n", "both conditions (paper design)",
                static_cast<long long>(migrations_full));
    std::printf("   %-42s %8lld\n", "without thermal condition (no hysteresis)",
                static_cast<long long>(migrations_no_thermal));
    std::printf("   %-42s %8lld\n", "without runqueue condition (over-pulling)",
                static_cast<long long>(migrations_no_rq));
  }

  // --- B: initial placement -------------------------------------------------
  std::printf("\nB. energy-aware initial placement (short tasks, 38 C limit, throttling):\n");
  {
    auto run_short = [&](bool placement) {
      eas::MachineConfig config = BaseConfig();
      config.topology = eas::CpuTopology::PaperXSeries445(true);
      config.explicit_max_power_physical.reset();
      config.temp_limit = 38.0;
      config.throttling_enabled = true;
      // Isolate the ingredient: placement is the only energy-aware feature,
      // as in Section 6.2's short-task experiment where tasks die before
      // the balancer would ever touch them.
      config.sched.energy_balancing = false;
      config.sched.hot_task_migration = false;
      config.sched.energy_aware_placement = placement;
      const eas::ProgramLibrary library(eas::EnergyModel::Default());
      std::vector<const eas::Program*> shorts;
      for (int i = 0; i < 24; ++i) {
        shorts.push_back(i % 2 == 0 ? &library.short_hot() : &library.short_cool());
      }
      eas::Experiment::Options options;
      options.duration_ticks = duration;
      eas::Experiment experiment(config, options);
      return experiment.Run(shorts);
    };
    const eas::RunResult with_placement = run_short(true);
    const eas::RunResult without_placement = run_short(false);
    std::printf("   %-42s %8.0f work/s, %4.1f%% throttled\n", "with energy-aware placement",
                with_placement.Throughput(), with_placement.AverageThrottledFraction() * 100);
    std::printf("   %-42s %8.0f work/s, %4.1f%% throttled\n", "least-loaded placement only",
                without_placement.Throughput(),
                without_placement.AverageThrottledFraction() * 100);
  }

  // --- C: profile weight -----------------------------------------------------
  std::printf("\nC. profile exponential-average weight p (migrations in 5 min):\n");
  for (double p : {0.05, 0.15, 0.3, 0.6, 0.9}) {
    eas::MachineConfig config = BaseConfig();
    config.profile_sample_weight = p;
    std::printf("   p = %-4.2f %8lld\n", p,
                static_cast<long long>(MigrationsWith(config, duration)));
  }
  std::printf("\nExpected: removing either energy-step condition inflates migrations\n"
              "(ping-pong / over-balancing); placement-off costs throughput on short\n"
              "tasks; very large p makes profiles twitchy, very small p makes them\n"
              "stale - both increase churn versus the paper's middle ground.\n");
  return 0;
}
