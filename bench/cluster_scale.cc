// Cluster-scale benchmark: the package-parallel tick pipeline and the
// hierarchical balance pass at 1k CPUs.
//
// A 1024-logical machine (five-level topology 2:4:16:4:2 - 512 physical
// packages) carries a sleeper-heavy consolidation population, and the bench
// times three variants of the same run:
//
//   pool_off     intra_run_threads = 0: the historical interleaved loop.
//   pool_serial  intra_run_threads = 1: the sharded pipeline, one worker.
//   pool_on      intra_run_threads = N (--intra, default 4): the sharded
//                pipeline fanned over the worker pool.
//
// pool_serial and pool_on must finish in bit-identical states (the sharded
// pipeline's worker-count-independence contract); the bench exits non-zero
// if they diverge. The pool_on speedup over pool_off is hardware-dependent -
// a single-core container shows ~1x by construction - so the regression gate
// (tools/bench_compare.py) compares each row's ticks/s against the committed
// baseline measured on the same class of machine rather than asserting an
// absolute multiplier here.
//
// The balance rows probe the hierarchical balancer directly: a full
// policy->Balance() sweep over every CPU at 128 and at 1024 CPUs, cache
// invalidated between sweeps. With per-domain aggregate rollups one pass
// costs O(fanout x depth), so the per-pass cost must stay near-constant as
// the machine grows 8x; the balance_scaling row asserts the measured ratio
// stays sublinear (< 4x for 8x the CPUs).
//
//   $ bench_cluster_scale [--ticks=2000] [--intra=4] [--out=BENCH_cluster_scale.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/api/run_request.h"
#include "src/base/flags.h"
#include "src/core/policy_registry.h"
#include "src/counters/energy_model.h"
#include "src/sim/csv_export.h"
#include "src/sim/simulation_engine.h"
#include "src/workloads/programs.h"

namespace {

using eas::Tick;

#ifdef NDEBUG
constexpr const char kBuildType[] = "release";
#else
constexpr const char kBuildType[] = "debug";
#endif

// 2 racks x 4 boards x 16 nodes x 4 packages x SMT-2 = 512 physical, 1024
// logical - the ISSUE's 1k-CPU point. The balance probe's small machine is
// the same shape shrunk to 64 physical / 128 logical so only the width
// changes, not the tree depth.
constexpr const char kClusterTopology[] = "2:4:16:4:2";
constexpr const char kSmallTopology[] = "2:2:4:4:2";

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

eas::MachineConfig BenchConfig(const char* topology, std::size_t intra_threads) {
  auto resolved = eas::ResolveRunRequest(*eas::ParseRunRequest(
      std::string("topology = ") + topology + "; max-power = 60; seed = 7"));
  if (!resolved.ok()) {
    std::fprintf(stderr, "resolve: %s\n", resolved.error().Render().c_str());
    std::exit(1);
  }
  eas::MachineConfig config = resolved->specs.front().config;
  config.estimator_weights = eas::EnergyModel::Default().weights();
  config.intra_run_threads = intra_threads;
  return config;
}

// The consolidation-host population, ~2 tasks per logical CPU: a memrw batch
// floor that keeps every package busy plus mostly-sleeping daemons, spread
// round-robin across the machine.
void SpawnClusterPopulation(eas::SimulationState& state, const eas::ProgramLibrary& library) {
  const int logical = static_cast<int>(state.num_cpus());
  const int tasks = logical * 2;
  for (int i = 0; i < tasks; ++i) {
    const int cpu = i % logical;
    switch (i % 8) {
      case 0:
        state.Spawn(library.memrw(), cpu);
        break;
      case 1:
      case 2:
      case 3:
        state.Spawn(library.bash(), cpu);
        break;
      default:
        state.Spawn(library.sshd(), cpu);
        break;
    }
  }
}

bool BitIdentical(eas::SimulationState& a, eas::SimulationState& b) {
  if (a.TotalWorkDone() != b.TotalWorkDone() || a.TotalTaskEnergy() != b.TotalTaskEnergy() ||
      a.migration_count() != b.migration_count() || a.now() != b.now()) {
    return false;
  }
  for (std::size_t phys = 0; phys < a.num_physical(); ++phys) {
    if (a.Temperature(phys) != b.Temperature(phys) || a.TruePower(phys) != b.TruePower(phys)) {
      return false;
    }
  }
  return true;
}

struct PoolRow {
  std::string name;
  std::size_t intra_threads = 0;
  std::size_t cpus = 0;
  Tick ticks = 0;
  double ticks_per_second = 0.0;
  double speedup_vs_pool_off = 0.0;
  bool identical = false;
  std::unique_ptr<eas::SimulationState> state;  // kept for the cross-checks
};

PoolRow MeasurePool(const std::string& name, const eas::ProgramLibrary& library,
                    std::size_t intra_threads, Tick ticks) {
  const eas::MachineConfig config = BenchConfig(kClusterTopology, intra_threads);
  PoolRow row;
  row.name = name;
  row.intra_threads = intra_threads;
  row.cpus = config.topology.num_logical();
  row.ticks = ticks;
  row.state = std::make_unique<eas::SimulationState>(config);
  eas::SimulationEngine engine(config.sched);
  SpawnClusterPopulation(*row.state, library);
  const auto start = std::chrono::steady_clock::now();
  for (Tick t = 0; t < ticks; ++t) {
    engine.Tick(*row.state);
  }
  const double seconds = SecondsSince(start);
  row.ticks_per_second = seconds > 0.0 ? static_cast<double>(ticks) / seconds : 0.0;
  return row;
}

struct BalanceRow {
  std::string name;
  std::size_t cpus = 0;
  long long passes = 0;
  double passes_per_second = 0.0;
};

// Full balance sweeps over a settled machine, advancing the tick between
// sweeps so every sweep recomputes the per-domain aggregates instead of
// replaying the version-keyed cache.
BalanceRow MeasureBalance(const char* topology, const eas::ProgramLibrary& library,
                          int sweeps, Tick warmup_ticks) {
  const eas::MachineConfig config = BenchConfig(topology, 0);
  BalanceRow row;
  row.cpus = config.topology.num_logical();
  row.name = "balance_" + std::to_string(row.cpus);

  eas::SimulationState state(config);
  eas::SimulationEngine engine(config.sched);
  SpawnClusterPopulation(state, library);
  for (Tick t = 0; t < warmup_ticks; ++t) {
    engine.Tick(state);
  }

  auto policy = eas::BalancePolicyRegistry::Global().CreateOrThrow(
      eas::EffectiveBalancerName(config.sched), config.sched);
  const int logical = static_cast<int>(config.topology.num_logical());
  const auto start = std::chrono::steady_clock::now();
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (int cpu = 0; cpu < logical; ++cpu) {
      policy->Balance(cpu, state);
    }
    state.AdvanceTick();
  }
  const double seconds = SecondsSince(start);
  row.passes = static_cast<long long>(sweeps) * logical;
  row.passes_per_second = seconds > 0.0 ? static_cast<double>(row.passes) / seconds : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  const std::vector<std::string> unknown = flags.UnknownFlags({"ticks", "intra", "out"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag --%s (known: --ticks --intra --out)\n",
                 unknown.front().c_str());
    return 1;
  }
  const Tick ticks = std::max<Tick>(1, flags.GetInt("ticks", 2'000));
  const std::size_t intra = static_cast<std::size_t>(std::max<long long>(2, flags.GetInt("intra", 4)));
  const std::string out = flags.GetString("out", "BENCH_cluster_scale.json");

  const eas::EnergyModel model = eas::EnergyModel::Default();
  const eas::ProgramLibrary library(model);

  std::printf("== cluster scale: %lld ticks at 1024 logical CPUs ==\n\n",
              static_cast<long long>(ticks));

  const auto bench_start = std::chrono::steady_clock::now();

  PoolRow pool_off = MeasurePool("pool_off", library, 0, ticks);
  PoolRow pool_serial = MeasurePool("pool_serial", library, 1, ticks);
  PoolRow pool_on = MeasurePool("pool_on", library, intra, ticks);

  // The contract: every sharded worker count produces the same bits. The
  // interleaved row is cross-checked too - this workload never completes a
  // task, so lifecycle ordering cannot feed back across packages and the two
  // modes coincide.
  pool_serial.identical = BitIdentical(*pool_serial.state, *pool_on.state);
  pool_on.identical = pool_serial.identical;
  pool_off.identical = BitIdentical(*pool_off.state, *pool_serial.state);
  pool_off.speedup_vs_pool_off = 1.0;
  pool_serial.speedup_vs_pool_off =
      pool_serial.ticks_per_second > 0.0 && pool_off.ticks_per_second > 0.0
          ? pool_serial.ticks_per_second / pool_off.ticks_per_second
          : 0.0;
  pool_on.speedup_vs_pool_off =
      pool_on.ticks_per_second > 0.0 && pool_off.ticks_per_second > 0.0
          ? pool_on.ticks_per_second / pool_off.ticks_per_second
          : 0.0;

  // Balance sweeps sized off --ticks so the smoke run stays tiny; identical
  // sweep counts at both sizes keep the comparison clean.
  const int sweeps = static_cast<int>(std::max<Tick>(2, ticks / 128));
  const Tick warmup = std::min<Tick>(32, ticks);
  BalanceRow balance_small = MeasureBalance(kSmallTopology, library, sweeps, warmup);
  BalanceRow balance_large = MeasureBalance(kClusterTopology, library, sweeps, warmup);

  const double cpu_ratio =
      static_cast<double>(balance_large.cpus) / static_cast<double>(balance_small.cpus);
  // Per-pass cost ratio: small passes/s over large passes/s. 1.0 = constant
  // per-pass cost; cpu_ratio = per-pass cost growing linearly with machine
  // size (a flat O(cpus) scan). Sublinear means staying well under cpu_ratio.
  const double per_pass_cost_ratio =
      balance_large.passes_per_second > 0.0
          ? balance_small.passes_per_second / balance_large.passes_per_second
          : 0.0;
  const bool sublinear =
      per_pass_cost_ratio > 0.0 && per_pass_cost_ratio < cpu_ratio / 2.0;

  const double wall_seconds = SecondsSince(bench_start);

  std::printf("  %-12s  %6s  %6s  %14s  %8s  %s\n", "row", "intra", "cpus", "ticks/s",
              "speedup", "identical");
  const PoolRow* pool_rows[] = {&pool_off, &pool_serial, &pool_on};
  for (const PoolRow* row : pool_rows) {
    std::printf("  %-12s  %6zu  %6zu  %14.1f  %7.2fx  %s\n", row->name.c_str(),
                row->intra_threads, row->cpus, row->ticks_per_second,
                row->speedup_vs_pool_off, row->identical ? "yes" : "NO");
  }
  std::printf("\n  %-12s  %6s  %10s  %16s\n", "row", "cpus", "passes", "passes/s");
  const BalanceRow* balance_rows[] = {&balance_small, &balance_large};
  for (const BalanceRow* row : balance_rows) {
    std::printf("  %-12s  %6zu  %10lld  %16.0f\n", row->name.c_str(), row->cpus, row->passes,
                row->passes_per_second);
  }
  std::printf("\n  balance per-pass cost x%.2f for x%.0f CPUs -> %s\n", per_pass_cost_ratio,
              cpu_ratio, sublinear ? "sublinear" : "NOT SUBLINEAR");

  std::string json = "{\n  \"bench\": \"cluster_scale\",\n  \"ticks\": " +
                     std::to_string(static_cast<long long>(ticks)) +
                     ",\n  \"intra_threads\": " + std::to_string(intra) +
                     ",\n  \"balance_sweeps\": " + std::to_string(sweeps) +
                     ",\n  \"threads\": 1,\n  \"build_type\": \"" + kBuildType +
                     "\",\n  \"rows\": [\n";
  char entry[320];
  for (const PoolRow* row : pool_rows) {
    std::snprintf(entry, sizeof(entry),
                  "    {\"name\": \"%s\", \"intra_threads\": %zu, \"cpus\": %zu, "
                  "\"ticks\": %lld, \"ticks_per_second\": %.1f, "
                  "\"speedup_vs_pool_off\": %.3f, \"identical\": %s},\n",
                  row->name.c_str(), row->intra_threads, row->cpus,
                  static_cast<long long>(row->ticks), row->ticks_per_second,
                  row->speedup_vs_pool_off, row->identical ? "true" : "false");
    json += entry;
  }
  for (const BalanceRow* row : balance_rows) {
    std::snprintf(entry, sizeof(entry),
                  "    {\"name\": \"%s\", \"cpus\": %zu, \"passes\": %lld, "
                  "\"passes_per_second\": %.0f},\n",
                  row->name.c_str(), row->cpus, row->passes, row->passes_per_second);
    json += entry;
  }
  std::snprintf(entry, sizeof(entry),
                "    {\"name\": \"balance_scaling\", \"cpu_ratio\": %.1f, "
                "\"per_pass_cost_ratio\": %.3f, \"sublinear\": %s}\n",
                cpu_ratio, per_pass_cost_ratio, sublinear ? "true" : "false");
  json += entry;
  char tail[64];
  std::snprintf(tail, sizeof(tail), "  ],\n  \"wall_seconds\": %.4f\n}\n", wall_seconds);
  json += tail;

  if (!eas::WriteFile(out, json)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  if (!pool_serial.identical) {
    std::fprintf(stderr, "ERROR: sharded pipeline diverged across worker counts\n");
    return 1;
  }
  return 0;
}
