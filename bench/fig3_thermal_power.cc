// Figure 3: relation between temperature, power, and thermal power.
//
// The paper's sketch: power steps up to a higher level for a while and drops
// back; temperature (and the thermal-power metric calibrated to the RC time
// constant) rises and falls exponentially, lagging power.

#include <cstdio>

#include "src/base/ascii_plot.h"
#include "src/base/series.h"
#include "src/core/power_metrics.h"
#include "src/thermal/rc_model.h"

int main() {
  std::printf("== Figure 3: temperature, power, and thermal power under a power step ==\n\n");

  eas::ThermalParams params;
  params.resistance = 0.30;
  params.capacitance = 40.0;  // tau = 12 s
  eas::RcThermalModel thermal(params);
  eas::CpuPowerState metric(/*max_power_watts=*/60.0, params.TimeConstant(),
                            /*initial_power_watts=*/20.0);
  thermal.SetTemperature(params.SteadyStateTemp(20.0));

  eas::SeriesSet plot;
  eas::Series& power_series = plot.Create("power");
  eas::Series& thermal_power_series = plot.Create("thermal_power");
  eas::Series& temp_as_power_series = plot.Create("temperature(as power)");

  const eas::Tick total = 90'000;  // 90 s
  for (eas::Tick t = 0; t < total; ++t) {
    // 20 W -> 55 W at 15 s -> back to 20 W at 55 s.
    const double power = (t >= 15'000 && t < 55'000) ? 55.0 : 20.0;
    thermal.Step(power, eas::kTickSeconds);
    metric.AccountEnergy(power * eas::kTickSeconds, eas::kTickSeconds);
    if (t % 250 == 0) {
      power_series.Add(t, power);
      thermal_power_series.Add(t, metric.thermal_power());
      // Express temperature in the power domain (steady-state equivalent) so
      // all three curves share one axis, like the paper's sketch.
      temp_as_power_series.Add(t, params.PowerForTemp(thermal.temperature()));
    }
  }

  eas::PlotOptions options;
  options.y_min = 0.0;
  options.y_max = 60.0;
  options.height = 18;
  options.y_label = "time -> (90 s). 0=power  1=thermal power  2=temperature";
  std::printf("%s\n", eas::RenderPlot(plot, options).c_str());

  std::printf("samples (t, power, thermal power, temperature):\n");
  for (eas::Tick t : {10'000, 20'000, 30'000, 54'000, 60'000, 80'000}) {
    std::printf("  t=%4llds  P=%4.1fW  Pth=%5.2fW  T=%5.2fC\n",
                static_cast<long long>(t / 1000),
                power_series.ValueAt(t, 0.0), thermal_power_series.ValueAt(t, 0.0),
                params.SteadyStateTemp(temp_as_power_series.ValueAt(t, 0.0)));
  }
  std::printf(
      "\nShape to reproduce: thermal power tracks temperature exactly (both are\n"
      "exponentials with tau = RC = %.0f s) while instantaneous power switches\n"
      "abruptly - the dual-speed behaviour Section 4.3 exploits.\n",
      params.TimeConstant());
  return 0;
}
