// Table 2: programs used for the tests and their power consumption.
//
// Paper: bitcnts 61 W, memrw 38 W, aluadd 50 W, pushpop 47 W,
//        openssl 42-57 W, bzip2 48 W.
//
// Each program runs alone on one simulated CPU; power is measured two ways:
// by the true silicon model (the "multimeter") and by the calibrated
// counter-based estimator the scheduler actually uses.

#include <algorithm>
#include <cstdio>

#include "src/sim/machine.h"
#include "src/workloads/programs.h"

namespace {

struct Measurement {
  double mean_true = 0.0;
  double min_true = 1e9;
  double max_true = 0.0;
  double profile = 0.0;  // estimator-driven energy profile
};

Measurement MeasureAlone(const eas::Program& program) {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology(1, 1, 1);
  config.cooling = eas::CoolingProfile::Uniform(1, eas::ThermalParams{});
  config.explicit_max_power_physical = 100.0;  // no throttling interference
  eas::Machine machine(config);
  eas::Task* task = machine.Spawn(program);

  Measurement m;
  double sum = 0.0;
  int samples = 0;
  const eas::Tick ticks = 60'000;  // one minute covers all phases
  for (eas::Tick t = 0; t < ticks; ++t) {
    machine.Step();
    // Sample only while the task runs (interactive programs sleep).
    if (task->state() == eas::TaskState::kRunning) {
      const double p = machine.TruePower(0);
      sum += p;
      ++samples;
      m.min_true = std::min(m.min_true, p);
      m.max_true = std::max(m.max_true, p);
    }
  }
  m.mean_true = samples > 0 ? sum / samples : 0.0;
  m.profile = task->profile().power();
  return m;
}

}  // namespace

int main() {
  std::printf("== Table 2: program power consumption ==\n\n");
  const eas::EnergyModel model = eas::EnergyModel::Default();
  const eas::ProgramLibrary library(model);

  struct PaperRow {
    const eas::Program* program;
    const char* paper_power;
    const char* description;
  };
  const PaperRow rows[] = {
      {&library.bitcnts(), "61W", "bit counting operations"},
      {&library.memrw(), "38W", "memory reads/writes"},
      {&library.aluadd(), "50W", "integer additions"},
      {&library.pushpop(), "47W", "stack push/pop"},
      {&library.openssl(), "42W-57W", "OpenSSL benchmark"},
      {&library.bzip2(), "48W", "file compression"},
  };

  std::printf("%-10s %10s %12s %14s %12s  %s\n", "program", "paper", "measured",
              "range [W]", "profile [W]", "description");
  for (const PaperRow& row : rows) {
    const Measurement m = MeasureAlone(*row.program);
    std::printf("%-10s %10s %10.1fW %6.1f-%6.1f %12.1f  %s\n", row.program->name().c_str(),
                row.paper_power, m.mean_true, m.min_true, m.max_true, m.profile,
                row.description);
  }
  std::printf("\n'measured' integrates the true power rail; 'profile' is the task energy\n"
              "profile the scheduler derives from event counters (estimation error <10%%).\n");
  return 0;
}
