// Serve-throughput benchmark: what the resident service is for, measured.
// The same request population is driven three ways -
//
//   warm_service  ExperimentService in-process (the serve core: persistent
//                 workers + scenario cache, no transport)
//   warm_socket   the full daemon path: ExperimentServer on a Unix socket,
//                 records streamed back over the wire
//   fork_per_run  one `eastool --request` process per request, the offline
//                 workflow a sweep script would have used
//
// and reported as requests/s, plus the byte-identity cross-check: every
// path must produce the same JSONL bytes, or the speedup is meaningless.
//
//   $ bench_serve_throughput [--requests=24] [--duration=2000] [--threads=4]
//                            [--eastool=PATH] [--out=BENCH_serve.json]
//
// --eastool enables the fork_per_run leg (ctest and CI pass the built
// binary); without it only the warm legs run. --duration is simulated
// milliseconds per request; the JSON records the configuration so
// tools/bench_compare.py refuses mismatched comparisons.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/flags.h"
#include "src/service/experiment_server.h"
#include "src/service/service_client.h"

namespace {

#ifdef NDEBUG
constexpr const char kBuildType[] = "release";
#else
constexpr const char kBuildType[] = "debug";
#endif

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::vector<std::string> MakeRequests(int count, long long duration_ms) {
  std::vector<std::string> texts;
  texts.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    char text[160];
    std::snprintf(text, sizeof(text),
                  "name = serve-bench; topology = 1:2:1; workload = hot:2; "
                  "duration-s = %g; seed = %d",
                  static_cast<double>(duration_ms) / 1000.0, 100 + i);
    texts.emplace_back(text);
  }
  return texts;
}

// One request -> one record here, so "lines" are indexed by request.
struct LegResult {
  double seconds = 0.0;
  std::vector<std::string> lines;
};

LegResult RunWarmService(const std::vector<std::string>& texts, std::size_t workers) {
  eas::ServiceOptions options;
  options.queue_depth = texts.size();
  options.workers = workers;
  eas::ExperimentService service(options);

  std::mutex mutex;
  std::map<std::uint64_t, std::string> by_submission;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& text : texts) {
    auto submitted = service.Submit(text, [&](const eas::StreamedRecord& record) {
      std::lock_guard<std::mutex> lock(mutex);
      by_submission[record.submission] = record.jsonl;
    });
    if (!submitted.ok()) {
      std::fprintf(stderr, "warm_service submit: %s\n", submitted.error().Render().c_str());
      std::exit(1);
    }
  }
  service.Drain();

  LegResult leg;
  leg.seconds = SecondsSince(start);
  for (const auto& [submission, line] : by_submission) {
    leg.lines.push_back(line);  // ids ascend in submit order
  }
  return leg;
}

LegResult RunWarmSocket(const std::vector<std::string>& texts, std::size_t workers) {
  const std::string socket_path =
      "/tmp/eas_bench_serve_" + std::to_string(::getpid()) + ".sock";
  eas::ServerOptions options;
  options.socket_path = socket_path;
  options.service.queue_depth = texts.size();
  options.service.workers = workers;
  auto server = eas::ExperimentServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "warm_socket start: %s\n", server.error().Render().c_str());
    std::exit(1);
  }

  auto client = eas::ServiceClient::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "warm_socket connect: %s\n", client.error().Render().c_str());
    std::exit(1);
  }
  std::map<std::uint64_t, std::string> by_submission;
  const auto start = std::chrono::steady_clock::now();
  auto outcome = client->SubmitAndStream(texts, [&](const eas::ClientRecord& record) {
    by_submission[record.submission] = record.jsonl;
  });
  const double seconds = SecondsSince(start);
  if (!outcome.ok()) {
    std::fprintf(stderr, "warm_socket submit: %s\n", outcome.error().Render().c_str());
    std::exit(1);
  }
  (*server)->Stop();

  LegResult leg;
  leg.seconds = seconds;
  for (const auto& [submission, line] : by_submission) {
    leg.lines.push_back(line);
  }
  return leg;
}

LegResult RunForkPerRun(const std::vector<std::string>& texts, const std::string& eastool) {
  const std::string stem = "/tmp/eas_bench_fork_" + std::to_string(::getpid());
  LegResult leg;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < texts.size(); ++i) {
    const std::string request_path = stem + "_" + std::to_string(i) + ".txt";
    const std::string jsonl_path = stem + "_" + std::to_string(i) + ".jsonl";
    {
      std::ofstream request_file(request_path);
      request_file << texts[i] << "\n";
    }
    const std::string command = "'" + eastool + "' --request '" + request_path +
                                "' --jsonl '" + jsonl_path + "' > /dev/null 2>&1";
    if (std::system(command.c_str()) != 0) {
      std::fprintf(stderr, "fork_per_run: eastool failed on request %zu\n", i);
      std::exit(1);
    }
    std::ifstream jsonl_file(jsonl_path);
    std::string line;
    std::getline(jsonl_file, line);
    leg.lines.push_back(line);
    std::remove(request_path.c_str());
    std::remove(jsonl_path.c_str());
  }
  leg.seconds = SecondsSince(start);
  return leg;
}

double RequestsPerSecond(std::size_t requests, double seconds) {
  return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  const std::vector<std::string> unknown =
      flags.UnknownFlags({"requests", "duration", "threads", "eastool", "out"});
  if (!unknown.empty()) {
    std::fprintf(stderr,
                 "unknown flag --%s (known: --requests --duration --threads --eastool --out)\n",
                 unknown.front().c_str());
    return 1;
  }
  const int requests = std::max(1, static_cast<int>(flags.GetInt("requests", 24)));
  const long long duration_ms = std::max(1LL, static_cast<long long>(flags.GetInt("duration", 2000)));
  const std::size_t workers =
      static_cast<std::size_t>(std::max(1LL, static_cast<long long>(flags.GetInt("threads", 4))));
  const std::string eastool = flags.GetString("eastool", "");
  const std::string out = flags.GetString("out", "BENCH_serve.json");

  const std::vector<std::string> texts = MakeRequests(requests, duration_ms);

  std::printf("== serve throughput: %d requests x %lld ms simulated ==\n\n", requests,
              duration_ms);

  const LegResult warm_service = RunWarmService(texts, workers);
  std::printf("  warm_service: %7.3f s  (%.1f requests/s)\n", warm_service.seconds,
              RequestsPerSecond(texts.size(), warm_service.seconds));

  const LegResult warm_socket = RunWarmSocket(texts, workers);
  std::printf("  warm_socket : %7.3f s  (%.1f requests/s)\n", warm_socket.seconds,
              RequestsPerSecond(texts.size(), warm_socket.seconds));

  const bool socket_identical = warm_socket.lines == warm_service.lines;
  if (!socket_identical) {
    std::printf("  WARNING: socket bytes differ from in-process bytes!\n");
  }

  LegResult fork;
  bool fork_identical = false;
  if (!eastool.empty()) {
    fork = RunForkPerRun(texts, eastool);
    std::printf("  fork_per_run: %7.3f s  (%.1f requests/s)\n", fork.seconds,
                RequestsPerSecond(texts.size(), fork.seconds));
    fork_identical = fork.lines == warm_service.lines;
    if (!fork_identical) {
      std::printf("  WARNING: fork-per-run bytes differ from warm-service bytes!\n");
    }
    const double speedup =
        fork.seconds > 0.0 && warm_service.seconds > 0.0 ? fork.seconds / warm_service.seconds
                                                         : 0.0;
    std::printf("  warm-service speedup over fork-per-run: %.1fx\n", speedup);
  } else {
    std::printf("  fork_per_run: skipped (pass --eastool=PATH to measure it)\n");
  }

  std::ostringstream json;
  char row[256];
  json << "{\n"
       << "  \"bench\": \"serve_throughput\",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"duration_ms\": " << duration_ms << ",\n"
       << "  \"threads\": " << workers << ",\n"
       << "  \"build_type\": \"" << kBuildType << "\",\n"
       << "  \"rows\": [\n";
  std::snprintf(row, sizeof(row),
                "    {\"name\": \"warm_service\", \"seconds\": %.4f, "
                "\"requests_per_second\": %.2f, \"identical\": true},\n",
                warm_service.seconds, RequestsPerSecond(texts.size(), warm_service.seconds));
  json << row;
  std::snprintf(row, sizeof(row),
                "    {\"name\": \"warm_socket\", \"seconds\": %.4f, "
                "\"requests_per_second\": %.2f, \"identical\": %s}",
                warm_socket.seconds, RequestsPerSecond(texts.size(), warm_socket.seconds),
                socket_identical ? "true" : "false");
  json << row;
  if (!eastool.empty()) {
    std::snprintf(row, sizeof(row),
                  ",\n    {\"name\": \"fork_per_run\", \"seconds\": %.4f, "
                  "\"requests_per_second\": %.2f, \"identical\": %s}",
                  fork.seconds, RequestsPerSecond(texts.size(), fork.seconds),
                  fork_identical ? "true" : "false");
    json << row;
  }
  json << "\n  ]\n}\n";

  std::FILE* file = std::fopen(out.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  const std::string text = json.str();
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  std::printf("\nwrote %s\n", out.c_str());
  return (socket_identical && (eastool.empty() || fork_identical)) ? 0 : 1;
}
