// Figure 8: dependence of the throughput gain on workload homogeneity.
//
// Setup (paper): SMT off, 18 tasks mixing memrw (cool), pushpop (medium) and
// bitcnts (hot); scenarios 9/0/9 .. 0/18/0. Throughput increase of
// energy-aware scheduling peaks at 12.3% for 8/2/8 and vanishes for the
// homogeneous 0/18/0 mix.

#include <cstdio>

#include "src/sim/experiment.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

eas::MachineConfig Config(bool energy_aware, std::uint64_t seed) {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/false);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.temp_limit = 38.0;
  config.throttling_enabled = true;
  config.seed = seed;
  config.sched = energy_aware ? eas::EnergySchedConfig::EnergyAware()
                              : eas::EnergySchedConfig::Baseline();
  return config;
}

// Average throughput over a few seeds: baseline placement luck otherwise
// dominates the per-mix differences.
double AvgThroughput(bool energy_aware, const std::vector<const eas::Program*>& workload,
                     eas::Tick duration) {
  double sum = 0.0;
  const std::uint64_t seeds[] = {42, 1337, 90210};
  for (std::uint64_t seed : seeds) {
    eas::Experiment::Options options;
    options.duration_ticks = duration;
    eas::Experiment experiment(Config(energy_aware, seed), options);
    sum += experiment.Run(workload).Throughput();
  }
  return sum / 3.0;
}

}  // namespace

int main() {
  std::printf("== Figure 8: throughput increase vs workload homogeneity ==\n\n");
  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  const eas::Tick duration = 360'000;  // 6 simulated minutes per run

  std::printf("%-12s %14s %14s %12s\n", "scenario", "baseline", "energy-aware", "increase");
  const double paper[] = {10.5, 12.3, 9.5, 8.0, 6.5, 5.0, 3.5, 2.0, 1.0, 0.0};
  int idx = 0;
  for (int hot = 9; hot >= 0; --hot) {
    const int medium = 18 - 2 * hot;
    const auto workload = eas::HomogeneityWorkload(library, hot, medium, hot);

    const double baseline = AvgThroughput(false, workload, duration);
    const double eas_run = AvgThroughput(true, workload, duration);

    char scenario[32];
    std::snprintf(scenario, sizeof(scenario), "%d/%d/%d", hot, medium, hot);
    std::printf("%-12s %14.0f %14.0f %+10.1f%%  (paper ~%.0f%%)\n", scenario, baseline, eas_run,
                (eas_run / baseline - 1.0) * 100, paper[idx]);
    ++idx;
  }
  std::printf(
      "\nShape to reproduce: heterogeneous mixes (left) benefit most - the scheduler\n"
      "can put hot tasks on well-cooled CPUs; the peak sits near 8/2/8 because a\n"
      "few medium tasks suit the medium-cooled package; the fully homogeneous\n"
      "0/18/0 mix gains nothing (energy is inherently balanced).\n");
  return 0;
}
