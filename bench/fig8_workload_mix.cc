// Figure 8: dependence of the throughput gain on workload homogeneity.
//
// Setup (paper): SMT off, 18 tasks mixing memrw (cool), pushpop (medium) and
// bitcnts (hot); scenarios 9/0/9 .. 0/18/0. Throughput increase of
// energy-aware scheduling peaks at 12.3% for 8/2/8 and vanishes for the
// homogeneous 0/18/0 mix.
//
// The full sweep (10 mixes x 2 policies x 3 seeds = 60 runs) fans out over
// the ExperimentRunner's thread pool; results come back in spec order, so
// the aggregation below is independent of the thread count.

#include <cstdio>
#include <vector>

#include "src/sim/experiment_runner.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace {

constexpr std::uint64_t kSeeds[] = {42, 1337, 90210};
constexpr std::size_t kNumSeeds = sizeof(kSeeds) / sizeof(kSeeds[0]);
constexpr std::size_t kRunsPerMix = 2 * kNumSeeds;

eas::MachineConfig Config(bool energy_aware, std::uint64_t seed) {
  eas::MachineConfig config;
  config.topology = eas::CpuTopology::PaperXSeries445(/*smt_enabled=*/false);
  config.cooling = eas::CoolingProfile::PaperXSeries445();
  config.temp_limit = 38.0;
  config.throttling_enabled = true;
  config.seed = seed;
  config.sched = energy_aware ? eas::EnergySchedConfig::EnergyAware()
                              : eas::EnergySchedConfig::Baseline();
  return config;
}

// Average throughput over a few seeds: baseline placement luck otherwise
// dominates the per-mix differences.
double AvgThroughput(const std::vector<eas::RunResult>& results, std::size_t first) {
  double sum = 0.0;
  for (std::size_t i = 0; i < kNumSeeds; ++i) {
    sum += results[first + i].Throughput();
  }
  return sum / static_cast<double>(kNumSeeds);
}

}  // namespace

int main() {
  std::printf("== Figure 8: throughput increase vs workload homogeneity ==\n\n");
  const eas::ProgramLibrary library(eas::EnergyModel::Default());
  const eas::Tick duration = 360'000;  // 6 simulated minutes per run

  std::vector<eas::ExperimentSpec> specs;
  for (int hot = 9; hot >= 0; --hot) {
    const int medium = 18 - 2 * hot;
    const auto workload = eas::HomogeneityWorkload(library, hot, medium, hot);
    for (const bool energy_aware : {false, true}) {
      for (const std::uint64_t seed : kSeeds) {
        eas::ExperimentSpec spec;
        spec.name = std::to_string(hot) + "/" + std::to_string(medium) + "/" +
                    std::to_string(hot) + (energy_aware ? "/eas" : "/base");
        spec.config = Config(energy_aware, seed);
        spec.options.duration_ticks = duration;
        spec.workload = workload;
        specs.push_back(std::move(spec));
      }
    }
  }

  const eas::ExperimentRunner runner;
  std::printf("running %zu experiments on %zu threads...\n\n", specs.size(),
              runner.num_threads());
  const std::vector<eas::RunResult> results = runner.RunAll(specs);

  std::printf("%-12s %14s %14s %12s\n", "scenario", "baseline", "energy-aware", "increase");
  const double paper[] = {10.5, 12.3, 9.5, 8.0, 6.5, 5.0, 3.5, 2.0, 1.0, 0.0};
  int idx = 0;
  for (int hot = 9; hot >= 0; --hot) {
    const int medium = 18 - 2 * hot;
    const std::size_t first = static_cast<std::size_t>(idx) * kRunsPerMix;
    const double baseline = AvgThroughput(results, first);
    const double eas_run = AvgThroughput(results, first + kNumSeeds);

    char scenario[32];
    std::snprintf(scenario, sizeof(scenario), "%d/%d/%d", hot, medium, hot);
    std::printf("%-12s %14.0f %14.0f %+10.1f%%  (paper ~%.0f%%)\n", scenario, baseline, eas_run,
                (eas_run / baseline - 1.0) * 100, paper[idx]);
    ++idx;
  }
  std::printf(
      "\nShape to reproduce: heterogeneous mixes (left) benefit most - the scheduler\n"
      "can put hot tasks on well-cooled CPUs; the peak sits near 8/2/8 because a\n"
      "few medium tasks suit the medium-cooled package; the fully homogeneous\n"
      "0/18/0 mix gains nothing (energy is inherently balanced).\n");
  return 0;
}
