// Fault-layer overhead: the chaos-soak scenario run three ways through one
// RunSession. "fault-free" cancels the scenario's plan (`faults = none`) so
// no fault machinery is armed at all; "armed-idle" swaps in a single clause
// that never fires inside the horizon, isolating the pure cost of carrying
// an armed FaultPhase through every tick; "chaos" is the scenario's full
// baked-in plan (hotplug churn, thermal spikes, P-state clamps).
//
// The bench asserts the fault-layer contract in-process: an armed-but-idle
// plan must leave the simulated physics bit-identical to the fault-free run
// (the fault columns are the only difference), and that verdict is emitted
// as the armed-idle row's "identical_physics" field so the CI gate fails if
// it ever stops holding. Wall ticks/s per row is what makes idle overhead
// visible: a regression in the armed-idle rate against the fault-free
// baseline rate means the fault layer started costing ticks it did not
// before.
//
// Writes BENCH_chaos.json (JSONL: config header, one record per row with
// simulated throughput + wall rate + fault counters, a wall-clock trailer).
// CI gates it against bench/baselines/ with tools/bench_compare.py.
//
//   $ bench_chaos_overhead [--duration=20000] [--threads=0] [--out=BENCH_chaos.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/api/run_session.h"
#include "src/base/flags.h"

namespace {
#ifdef NDEBUG
constexpr const char kBuildType[] = "release";
#else
constexpr const char kBuildType[] = "debug";
#endif

// One clause, parked far past any horizon this bench runs: the FaultPhase
// is armed (skip-ahead stays bounded, the ledger ticks) but never reacts.
constexpr const char kNeverFiring[] = "off:0@900000000";

struct Row {
  std::string name;
  const char* faults;  // nullptr = inherit the scenario's plan
};
}  // namespace

int main(int argc, char** argv) {
  const eas::FlagParser flags(argc, argv);
  const std::vector<std::string> unknown = flags.UnknownFlags({"duration", "threads", "out"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag --%s (known: --duration --threads --out)\n",
                 unknown.front().c_str());
    return 1;
  }
  const eas::Tick duration = flags.GetInt("duration", 20'000);
  const std::size_t threads =
      static_cast<std::size_t>(std::max(0LL, flags.GetInt("threads", 0)));
  const std::string out = flags.GetString("out", "BENCH_chaos.json");

  const Row rows[] = {
      {"fault-free", "none"},
      {"armed-idle", kNeverFiring},
      {"chaos", nullptr},
  };

  eas::RunSession session(threads);
  eas::JsonlSink jsonl(out);
  char header[224];
  std::snprintf(header, sizeof(header),
                "{\"bench\": \"chaos_overhead\", \"scenario\": \"chaos-soak\", "
                "\"duration_ticks\": %lld, \"threads\": %zu, \"build_type\": \"%s\"}",
                static_cast<long long>(duration), session.runner().num_threads(), kBuildType);
  jsonl.AppendLine(header);

  std::printf("== chaos overhead: chaos-soak x 3 fault plans, %lld ticks ==\n\n",
              static_cast<long long>(duration));

  std::vector<eas::RunRecord> records;
  std::vector<double> wall_rates;
  const auto bench_start = std::chrono::steady_clock::now();
  for (const Row& row : rows) {
    eas::RunRequest request = eas::RunRequestForScenario("chaos-soak");
    request.name = row.name;
    if (row.faults != nullptr) {
      request.faults = row.faults;
    }
    if (duration > 0) {
      request.duration_s = static_cast<double>(duration) / 1000.0;
    }
    auto resolved = eas::ResolveRunRequest(request);
    if (!resolved.ok()) {
      std::fprintf(stderr, "resolve %s: %s\n", row.name.c_str(),
                   resolved.error().Render().c_str());
      return 1;
    }
    std::vector<eas::ResolvedRequest> batch;
    batch.push_back(std::move(*resolved));
    const auto start = std::chrono::steady_clock::now();
    std::vector<eas::RunRecord> ran = session.Run(batch);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (ran.size() != 1) {
      std::fprintf(stderr, "%s: expected 1 record, got %zu\n", row.name.c_str(), ran.size());
      return 1;
    }
    wall_rates.push_back(elapsed > 0 ? static_cast<double>(duration) / elapsed : 0.0);
    records.push_back(std::move(ran.front()));
  }

  // The armed-but-idle contract: a plan that never fires must leave every
  // simulated quantity bit-identical to the fault-free run - the fault
  // columns are bookkeeping, not physics.
  const eas::RunResult& clean = records[0].result;
  const eas::RunResult& idle = records[1].result;
  const bool identical_physics = clean.Throughput() == idle.Throughput() &&
                                 clean.AverageThrottledFraction() ==
                                     idle.AverageThrottledFraction() &&
                                 clean.AverageFrequencyMultiplier() ==
                                     idle.AverageFrequencyMultiplier();

  for (std::size_t i = 0; i < records.size(); ++i) {
    const eas::RunRecord& record = records[i];
    char line[384];
    int n = std::snprintf(line, sizeof(line),
                          "{\"name\": \"%s\", \"throughput\": %.6f, "
                          "\"wall_ticks_per_second\": %.1f",
                          record.spec.name.c_str(), record.result.Throughput(),
                          wall_rates[i]);
    if (record.result.faults_fired.has_value()) {
      n += std::snprintf(line + n, sizeof(line) - static_cast<std::size_t>(n),
                         ", \"faults_fired\": %lld",
                         static_cast<long long>(*record.result.faults_fired));
    }
    if (record.result.offline_cpu_ticks.has_value()) {
      n += std::snprintf(line + n, sizeof(line) - static_cast<std::size_t>(n),
                         ", \"offline_cpu_ticks\": %lld",
                         static_cast<long long>(*record.result.offline_cpu_ticks));
    }
    if (record.spec.name == "armed-idle") {
      n += std::snprintf(line + n, sizeof(line) - static_cast<std::size_t>(n),
                         ", \"identical_physics\": %s", identical_physics ? "true" : "false");
    }
    std::snprintf(line + n, sizeof(line) - static_cast<std::size_t>(n), "}");
    jsonl.AppendLine(line);
    std::printf("  %-12s %9.1f work-ticks/s  %10.0f wall-ticks/s  %lld faults\n",
                record.spec.name.c_str(), record.result.Throughput(), wall_rates[i],
                static_cast<long long>(record.result.faults_fired.value_or(0)));
  }
  if (!identical_physics) {
    std::fprintf(stderr, "\narmed-idle run diverged from the fault-free run\n");
  }

  const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                       bench_start)
                             .count();
  char trailer[96];
  std::snprintf(trailer, sizeof(trailer), "{\"wall_seconds\": %.4f}", elapsed);
  jsonl.AppendLine(trailer);
  jsonl.Finish();
  if (!jsonl.ok()) {
    std::fprintf(stderr, "%s\n", jsonl.error().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%.1f s wall)\n", out.c_str(), elapsed);
  return identical_physics ? 0 : 1;
}
