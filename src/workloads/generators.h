// Workload generators beyond the paper's fixed spawn lists.
//
// Three families of stressors:
//  - Phase-shift: programs whose event mix flips between an ALU-bound hot
//    phase and a memory-bound cool phase mid-run, so a task's energy profile
//    drifts far more than any Table 2 program - exercises profile tracking
//    and re-balancing.
//  - Poisson: open-loop task arrivals with exponential inter-arrival times -
//    exercises initial placement and idle balancing under churn.
//  - Trace: CSV playback ("tick,program[,nice]" rows) - replays recorded or
//    hand-written arrival schedules.
//
// All generators are deterministic: randomness comes from an explicit seed
// through the repo's Rng, so the same call produces the same workload.

#ifndef SRC_WORKLOADS_GENERATORS_H_
#define SRC_WORKLOADS_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/workloads/programs.h"
#include "src/workloads/workload.h"

namespace eas {

struct PhaseShiftOptions {
  int tasks = 8;                  // number of phase-shifting tasks
  Tick phase_ticks = 30'000;      // duration of each (hot|cool) phase
  double hot_power_watts = 58.0;  // ALU-bound phase target power
  double cool_power_watts = 38.0; // memory-bound phase target power
};

// Builds `options.tasks` programs that alternate between a hot ALU phase and
// a cool memory phase of `phase_ticks` each. Odd tasks start cool so the
// machine-wide mix flips every phase. The generated programs are owned by
// the returned workload.
Workload PhaseShiftWorkload(const EnergyModel& model, const PhaseShiftOptions& options);

struct PoissonOptions {
  double arrivals_per_second = 2.0;  // open-loop arrival rate
  Tick horizon_ticks = 900'000;      // generate arrivals in [0, horizon)
  int initial_tasks = 4;             // tasks already running at tick 0
  std::uint64_t seed = 1;            // arrival-process seed
};

// Open-loop Poisson arrivals drawn from `mix` (round-robin over the mix so
// the long-run blend is exact; the arrival *times* carry the randomness).
// `mix` must be non-empty; the caller keeps the pointed-to programs alive
// (retain the library on the workload if it is locally owned).
Workload PoissonWorkload(const std::vector<const Program*>& mix, const PoissonOptions& options);

// Parses a trace in "tick,program[,nice]" CSV form (an optional leading
// header whose first field is literally "tick", '#' comments and blank
// lines skipped) against `library` names. Returns
// false and sets `error` on the first malformed line or unknown program;
// `out` is only written on success.
bool ParseTraceWorkload(const std::string& csv_text, const ProgramLibrary& library, Workload* out,
                        std::string* error);

// ParseTraceWorkload over a file's contents.
bool LoadTraceWorkload(const std::string& path, const ProgramLibrary& library, Workload* out,
                       std::string* error);

}  // namespace eas

#endif  // SRC_WORKLOADS_GENERATORS_H_
