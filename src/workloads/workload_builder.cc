#include "src/workloads/workload_builder.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace eas {

std::vector<const Program*> MixedWorkload(const ProgramLibrary& library, int instances) {
  std::vector<const Program*> spawn;
  for (int i = 0; i < instances; ++i) {
    for (const Program* program : library.Table2Programs()) {
      spawn.push_back(program);
    }
  }
  return spawn;
}

std::vector<const Program*> HomogeneityWorkload(const ProgramLibrary& library, int n_memrw,
                                                int n_pushpop, int n_bitcnts) {
  std::vector<const Program*> spawn;
  int remaining[3] = {n_memrw, n_pushpop, n_bitcnts};
  const Program* programs[3] = {&library.memrw(), &library.pushpop(), &library.bitcnts()};
  // Round-robin interleave so queues mix under naive placement too.
  bool any = true;
  while (any) {
    any = false;
    for (int i = 0; i < 3; ++i) {
      if (remaining[i] > 0) {
        spawn.push_back(programs[i]);
        --remaining[i];
        any = true;
      }
    }
  }
  return spawn;
}

std::vector<const Program*> HotTaskWorkload(const ProgramLibrary& library, int n) {
  return std::vector<const Program*>(static_cast<std::size_t>(n), &library.bitcnts());
}

std::vector<const Program*> ParseWorkloadSpec(const std::string& spec,
                                              const ProgramLibrary& library) {
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg = colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (kind == "mixed") {
    const int instances = arg.empty() ? 3 : std::atoi(arg.c_str());
    return instances >= 0 ? MixedWorkload(library, instances)
                          : std::vector<const Program*>{};
  }
  if (kind == "homog") {
    int memrw = -1;
    int pushpop = -1;
    int bitcnts = -1;
    if (std::sscanf(arg.c_str(), "%d,%d,%d", &memrw, &pushpop, &bitcnts) != 3 || memrw < 0 ||
        pushpop < 0 || bitcnts < 0) {
      return {};
    }
    return HomogeneityWorkload(library, memrw, pushpop, bitcnts);
  }
  if (kind == "hot") {
    const int n = arg.empty() ? 1 : std::atoi(arg.c_str());
    return n >= 0 ? HotTaskWorkload(library, n) : std::vector<const Program*>{};
  }
  if (kind == "short") {
    const int n = arg.empty() ? 16 : std::atoi(arg.c_str());
    if (n < 0) {
      return {};
    }
    std::vector<const Program*> spawn;
    spawn.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      spawn.push_back(i % 2 == 0 ? &library.short_hot() : &library.short_cool());
    }
    return spawn;
  }
  if (kind == "list") {
    // "list:bitcnts*8,memrw*12,sshd" - an explicit spawn list by program
    // name, each entry optionally repeated with *count. Makes ad-hoc mixes
    // (e.g. a consolidation host's service blend) declarable in request
    // files instead of requiring code.
    std::vector<const Program*> spawn;
    std::size_t start = 0;
    while (start <= arg.size()) {
      const std::size_t comma = arg.find(',', start);
      const std::string entry =
          arg.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
      if (entry.empty()) {
        return {};
      }
      const std::size_t star = entry.find('*');
      const std::string name = entry.substr(0, star);
      long long count = 1;
      if (star != std::string::npos) {
        const std::string repeat = entry.substr(star + 1);
        char* end = nullptr;
        errno = 0;
        count = std::strtoll(repeat.c_str(), &end, 10);
        // Range-checked, unlike a bare atoi: an overflowing or absurd
        // count must be rejected, not wrapped into a small value or an
        // attempted multi-billion-entry spawn list.
        if (repeat.empty() || *end != '\0' || errno == ERANGE || count < 1 ||
            count > 1'000'000) {
          return {};
        }
      }
      const Program* program = library.ByName(name);
      if (program == nullptr) {
        return {};
      }
      for (long long i = 0; i < count; ++i) {
        spawn.push_back(program);
      }
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
    return spawn;
  }
  return {};
}

}  // namespace eas
