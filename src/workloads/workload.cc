#include "src/workloads/workload.h"

#include <algorithm>
#include <utility>

namespace eas {

Workload::Workload(std::vector<const Program*> programs) {
  arrivals_.reserve(programs.size());
  for (const Program* program : programs) {
    arrivals_.push_back(TaskArrival{0, program, 0});
  }
}

void Workload::Add(const Program& program, Tick tick, int nice) {
  if (!arrivals_.empty() && tick < arrivals_.back().tick) {
    sorted_ = false;
  }
  arrivals_.push_back(TaskArrival{tick, &program, nice});
}

const Program* Workload::Own(std::unique_ptr<Program> program) {
  owned_.push_back(std::move(program));
  return owned_.back().get();
}

void Workload::Retain(std::shared_ptr<const void> resource) {
  retained_.push_back(std::move(resource));
}

const std::vector<TaskArrival>& Workload::arrivals() const {
  if (!sorted_) {
    std::stable_sort(arrivals_.begin(), arrivals_.end(),
                     [](const TaskArrival& a, const TaskArrival& b) { return a.tick < b.tick; });
    sorted_ = true;
  }
  return arrivals_;
}

std::size_t Workload::InitialTasks() const {
  const auto& sorted = arrivals();
  std::size_t n = 0;
  while (n < sorted.size() && sorted[n].tick <= 0) {
    ++n;
  }
  return n;
}

}  // namespace eas
