#include "src/workloads/generators.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "src/base/rng.h"

namespace eas {
namespace {

// Binary-id block for generated programs (the paper programs use 1001-1011).
constexpr BinaryId kBinPhaseShiftBase = 2001;

// Local copies of the ALU/memory signatures (see src/workloads/programs.cc);
// what matters is only that the two phases sit at opposite ends of the
// power-per-event spectrum.
EventRates HotSignature() {
  EventRates s{};
  s[EventIndex(EventType::kUopsRetired)] = 1.0;
  s[EventIndex(EventType::kIntAluOps)] = 1.0;
  s[EventIndex(EventType::kStackOps)] = 0.05;
  s[EventIndex(EventType::kMemTransactions)] = 0.02;
  s[EventIndex(EventType::kL2CacheMisses)] = 0.002;
  return s;
}

EventRates CoolSignature() {
  EventRates s{};
  s[EventIndex(EventType::kUopsRetired)] = 0.25;
  s[EventIndex(EventType::kIntAluOps)] = 0.05;
  s[EventIndex(EventType::kMemTransactions)] = 1.0;
  s[EventIndex(EventType::kL2CacheMisses)] = 0.18;
  s[EventIndex(EventType::kStackOps)] = 0.02;
  return s;
}

Phase ShiftPhase(const EnergyModel& model, const EventRates& signature, double power_watts,
                 Tick duration) {
  Phase phase;
  phase.rates = model.RatesForTargetPower(signature, power_watts);
  phase.mean_duration = duration;
  phase.duration_jitter = 0.05;
  phase.rate_noise = 0.02;
  return phase;
}

// Splits one CSV line into trimmed fields.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) {
    const std::size_t begin = field.find_first_not_of(" \t\r");
    const std::size_t end = field.find_last_not_of(" \t\r");
    fields.push_back(begin == std::string::npos ? "" : field.substr(begin, end - begin + 1));
  }
  return fields;
}

bool ParseLongLong(const std::string& text, long long* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

Workload PhaseShiftWorkload(const EnergyModel& model, const PhaseShiftOptions& options) {
  Workload workload;
  for (int i = 0; i < options.tasks; ++i) {
    const bool start_cool = i % 2 == 1;  // odd tasks flip the machine-wide mix
    const Phase hot = ShiftPhase(model, HotSignature(), options.hot_power_watts,
                                 options.phase_ticks);
    const Phase cool = ShiftPhase(model, CoolSignature(), options.cool_power_watts,
                                  options.phase_ticks);
    std::vector<Phase> phases = start_cool ? std::vector<Phase>{cool, hot}
                                           : std::vector<Phase>{hot, cool};
    const Program* program = workload.Own(std::make_unique<Program>(
        start_cool ? "phase_shift_cool" : "phase_shift_hot",
        kBinPhaseShiftBase + (start_cool ? 1 : 0), std::move(phases),
        /*total_work_ticks=*/0));
    workload.Add(*program);
  }
  return workload;
}

Workload PoissonWorkload(const std::vector<const Program*>& mix, const PoissonOptions& options) {
  Workload workload;
  if (mix.empty()) {
    return workload;
  }
  std::size_t next_program = 0;
  for (int i = 0; i < options.initial_tasks; ++i) {
    workload.Add(*mix[next_program++ % mix.size()]);
  }
  if (options.arrivals_per_second <= 0.0) {
    return workload;
  }
  Rng rng(options.seed);
  double t_seconds = 0.0;
  const double horizon_seconds = TicksToSeconds(options.horizon_ticks);
  while (true) {
    // Exponential inter-arrival time; 1 - NextDouble() is in (0, 1].
    t_seconds += -std::log(1.0 - rng.NextDouble()) / options.arrivals_per_second;
    if (t_seconds >= horizon_seconds) {
      break;
    }
    workload.Add(*mix[next_program++ % mix.size()], SecondsToTicks(t_seconds));
  }
  return workload;
}

bool ParseTraceWorkload(const std::string& csv_text, const ProgramLibrary& library, Workload* out,
                        std::string* error) {
  Workload workload;
  std::istringstream lines(csv_text);
  std::string line;
  int line_number = 0;
  bool seen_content = false;
  while (std::getline(lines, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const std::size_t first_char = line.find_first_not_of(" \t");
    if (first_char == std::string::npos || line[first_char] == '#') {
      continue;
    }
    const std::vector<std::string> fields = SplitCsvLine(line);
    long long tick = 0;
    // Only the literal "tick,..." header is skippable - any other
    // non-numeric first field must error, or a typoed first data row in a
    // headerless trace would be silently dropped.
    if (!seen_content && !fields.empty() && fields[0] == "tick") {
      seen_content = true;
      continue;
    }
    seen_content = true;
    if (fields.size() < 2 || fields.size() > 3) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": want tick,program[,nice]";
      }
      return false;
    }
    if (!ParseLongLong(fields[0], &tick) || tick < 0) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": bad tick \"" + fields[0] + "\"";
      }
      return false;
    }
    const Program* program = library.ByName(fields[1]);
    if (program == nullptr) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": unknown program \"" + fields[1] + "\"";
      }
      return false;
    }
    long long nice = 0;
    if (fields.size() == 3 && (!ParseLongLong(fields[2], &nice) || nice < -20 || nice > 19)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": bad nice \"" + fields[2] + "\"";
      }
      return false;
    }
    workload.Add(*program, static_cast<Tick>(tick), static_cast<int>(nice));
  }
  *out = std::move(workload);
  return true;
}

bool LoadTraceWorkload(const std::string& path, const ProgramLibrary& library, Workload* out,
                       std::string* error) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream contents;
  contents << stream.rdbuf();
  return ParseTraceWorkload(contents.str(), library, out, error);
}

}  // namespace eas
