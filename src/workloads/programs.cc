#include "src/workloads/programs.h"

namespace eas {
namespace {

// Relative event signatures (scaled to target power by the EnergyModel).
EventRates AluSignature() {
  EventRates s{};
  s[EventIndex(EventType::kUopsRetired)] = 1.0;
  s[EventIndex(EventType::kIntAluOps)] = 1.0;
  s[EventIndex(EventType::kStackOps)] = 0.05;
  s[EventIndex(EventType::kMemTransactions)] = 0.02;
  s[EventIndex(EventType::kL2CacheMisses)] = 0.002;
  return s;
}

EventRates MemSignature() {
  EventRates s{};
  s[EventIndex(EventType::kUopsRetired)] = 0.25;
  s[EventIndex(EventType::kIntAluOps)] = 0.05;
  s[EventIndex(EventType::kMemTransactions)] = 1.0;
  s[EventIndex(EventType::kL2CacheMisses)] = 0.18;
  s[EventIndex(EventType::kStackOps)] = 0.02;
  return s;
}

EventRates StackSignature() {
  EventRates s{};
  s[EventIndex(EventType::kUopsRetired)] = 0.8;
  s[EventIndex(EventType::kIntAluOps)] = 0.3;
  s[EventIndex(EventType::kStackOps)] = 1.0;
  s[EventIndex(EventType::kMemTransactions)] = 0.03;
  return s;
}

EventRates CryptoSignature() {
  EventRates s{};
  s[EventIndex(EventType::kUopsRetired)] = 1.0;
  s[EventIndex(EventType::kIntAluOps)] = 0.8;
  s[EventIndex(EventType::kMemTransactions)] = 0.08;
  s[EventIndex(EventType::kL2CacheMisses)] = 0.01;
  s[EventIndex(EventType::kStackOps)] = 0.15;
  return s;
}

EventRates MixedSignature() {
  EventRates s{};
  s[EventIndex(EventType::kUopsRetired)] = 0.7;
  s[EventIndex(EventType::kIntAluOps)] = 0.5;
  s[EventIndex(EventType::kMemTransactions)] = 0.3;
  s[EventIndex(EventType::kL2CacheMisses)] = 0.05;
  s[EventIndex(EventType::kStackOps)] = 0.1;
  return s;
}

Phase MakePhase(const EnergyModel& model, const EventRates& signature, double power_watts,
                Tick duration, Tick sleep_after = 0, double rate_noise = 0.02,
                double duration_jitter = 0.1) {
  Phase phase;
  phase.rates = model.RatesForTargetPower(signature, power_watts);
  phase.mean_duration = duration;
  phase.mean_sleep_after = sleep_after;
  phase.rate_noise = rate_noise;
  phase.duration_jitter = duration_jitter;
  return phase;
}

}  // namespace

ProgramLibrary::ProgramLibrary(const EnergyModel& model, Tick work_ticks) {
  // --- Table 2: the scheduling workloads -----------------------------------

  // bitcnts: 61 W, static ALU-bound behaviour.
  bitcnts_ = Add(std::make_unique<Program>(
      "bitcnts", kBinBitcnts,
      std::vector<Phase>{MakePhase(model, AluSignature(), 61.0, 20'000)}, work_ticks));

  // memrw: 38 W, static memory-bound behaviour.
  memrw_ = Add(std::make_unique<Program>(
      "memrw", kBinMemrw,
      std::vector<Phase>{MakePhase(model, MemSignature(), 38.0, 20'000)}, work_ticks));

  // aluadd: 50 W integer additions.
  aluadd_ = Add(std::make_unique<Program>(
      "aluadd", kBinAluadd,
      std::vector<Phase>{MakePhase(model, AluSignature(), 50.0, 20'000)}, work_ticks));

  // pushpop: 47 W stack traffic.
  pushpop_ = Add(std::make_unique<Program>(
      "pushpop", kBinPushpop,
      std::vector<Phase>{MakePhase(model, StackSignature(), 47.0, 20'000)}, work_ticks));

  // openssl (benchmark mode): cycles through cipher/digest phases between
  // 42 W and 57 W; short setup dips between algorithms produce the 63% max
  // per-timeslice change of Table 1.
  openssl_ = Add(std::make_unique<Program>(
      "openssl", kBinOpenssl,
      std::vector<Phase>{
          MakePhase(model, CryptoSignature(), 57.0, 6'000),
          MakePhase(model, MixedSignature(), 35.0, 120),  // algorithm switch dip
          MakePhase(model, CryptoSignature(), 49.0, 5'000),
          MakePhase(model, CryptoSignature(), 42.0, 6'000),
          MakePhase(model, MixedSignature(), 35.0, 120),
          MakePhase(model, CryptoSignature(), 54.0, 5'000),
          MakePhase(model, CryptoSignature(), 46.0, 4'000),
          MakePhase(model, CryptoSignature(), 57.0, 5'000),
      },
      work_ticks));

  // bzip2: 48 W compression blocks separated by brief low-power I/O phases
  // (buffer refill); the rare 25 W -> 50 W jumps produce Table 1's 88.8% max
  // change while the average change stays small.
  bzip2_ = Add(std::make_unique<Program>(
      "bzip2", kBinBzip2,
      std::vector<Phase>{
          MakePhase(model, MixedSignature(), 50.0, 4'000),
          MakePhase(model, MemSignature(), 25.0, 150),  // I/O dip
          MakePhase(model, MixedSignature(), 48.0, 3'500),
          MakePhase(model, MixedSignature(), 46.0, 3'000),
          MakePhase(model, MemSignature(), 25.0, 150),
      },
      work_ticks));

  // --- Table 1 extras: interactive programs ---------------------------------

  // bash: short command bursts at ~34-35 W separated by think-time sleeps;
  // per timeslice power is nearly constant, with a rare heavier burst
  // (spawning a command) producing the ~19% maximum change of Table 1.
  bash_ = Add(std::make_unique<Program>(
      "bash", kBinBash,
      std::vector<Phase>{
          MakePhase(model, MixedSignature(), 35.0, 60, /*sleep_after=*/120, 0.03),
          MakePhase(model, MixedSignature(), 34.4, 80, /*sleep_after=*/200, 0.03),
          MakePhase(model, MixedSignature(), 41.5, 30, /*sleep_after=*/90, 0.03),
          MakePhase(model, MixedSignature(), 34.7, 50, /*sleep_after=*/150, 0.03),
      },
      /*total_work_ticks=*/0));

  // grep: steady streaming scan at ~40 W with a rare short dip (waiting on
  // input) - one large successive change, tiny average change.
  grep_ = Add(std::make_unique<Program>(
      "grep", kBinGrep,
      std::vector<Phase>{
          MakePhase(model, MemSignature(), 40.0, 12'000, 0, 0.01),
          MakePhase(model, MemSignature(), 22.0, 110, 0, 0.01),  // input stall
      },
      /*total_work_ticks=*/0));

  // sshd: interactive daemon, steady ~38 W crypto bursts, blocks on the
  // network; a rare rekeying burst gives the ~18% maximum change.
  sshd_ = Add(std::make_unique<Program>(
      "sshd", kBinSshd,
      std::vector<Phase>{
          MakePhase(model, CryptoSignature(), 38.0, 70, /*sleep_after=*/150, 0.025),
          MakePhase(model, CryptoSignature(), 37.4, 90, /*sleep_after=*/100, 0.025),
          MakePhase(model, CryptoSignature(), 44.5, 25, /*sleep_after=*/200, 0.025),
          MakePhase(model, CryptoSignature(), 37.8, 80, /*sleep_after=*/120, 0.025),
      },
      /*total_work_ticks=*/0));

  // --- short-running tasks (Section 6.2, initial placement) ----------------
  short_hot_ = Add(std::make_unique<Program>(
      "short_hot", kBinShortHot,
      std::vector<Phase>{MakePhase(model, AluSignature(), 58.0, 500)},
      /*total_work_ticks=*/500));
  short_cool_ = Add(std::make_unique<Program>(
      "short_cool", kBinShortCool,
      std::vector<Phase>{MakePhase(model, MemSignature(), 39.0, 500)},
      /*total_work_ticks=*/500));
}

const Program* ProgramLibrary::Add(std::unique_ptr<Program> program) {
  owned_.push_back(std::move(program));
  return owned_.back().get();
}

std::vector<const Program*> ProgramLibrary::Table2Programs() const {
  return {bitcnts_, memrw_, aluadd_, pushpop_, openssl_, bzip2_};
}

std::vector<const Program*> ProgramLibrary::Table1Programs() const {
  return {bash_, bzip2_, grep_, sshd_, openssl_};
}

const Program* ProgramLibrary::ByName(const std::string& name) const {
  for (const auto& program : owned_) {
    if (program->name() == name) {
      return program.get();
    }
  }
  return nullptr;
}

double ProgramLibrary::NominalPower(const EnergyModel& model, const Program& program) {
  return model.NominalTotalPower(program.phase(0).rates);
}

}  // namespace eas
