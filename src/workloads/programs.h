// The paper's benchmark programs as phase/event-rate models.
//
// Table 2 programs (the scheduling workloads):
//   bitcnts  61 W  bit counting operations      (ALU bound, hottest)
//   memrw    38 W  memory reads/writes          (memory bound, coolest)
//   aluadd   50 W  integer additions
//   pushpop  47 W  stack push/pop
//   openssl  42-57 W  benchmark mode, cycles through cipher/digest phases
//   bzip2    48 W  file compression, block phases with brief I/O dips
//
// Table 1 programs (the phase-stability study) additionally include bash,
// grep and sshd: interactive/IO-bound programs whose per-timeslice power is
// almost constant (low max change) versus batch programs with pronounced
// phase changes (high max change, still low average change).
//
// Event rates are derived from relative signatures scaled against the
// EnergyModel so each program dissipates exactly its Table 2 wattage when
// running alone on a physical CPU.

#ifndef SRC_WORKLOADS_PROGRAMS_H_
#define SRC_WORKLOADS_PROGRAMS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/counters/energy_model.h"
#include "src/task/program.h"

namespace eas {

// Stable binary ids ("inode numbers") for the initial-placement hash table.
enum PaperBinaryId : BinaryId {
  kBinBitcnts = 1001,
  kBinMemrw = 1002,
  kBinAluadd = 1003,
  kBinPushpop = 1004,
  kBinOpenssl = 1005,
  kBinBzip2 = 1006,
  kBinBash = 1007,
  kBinGrep = 1008,
  kBinSshd = 1009,
  kBinShortHot = 1010,
  kBinShortCool = 1011,
};

class ProgramLibrary {
 public:
  // Builds all program models against `model`. `work_ticks` is the default
  // amount of work after which a task completes and respawns (throughput
  // accounting); individual programs scale it.
  explicit ProgramLibrary(const EnergyModel& model, Tick work_ticks = 60'000);

  const Program& bitcnts() const { return *bitcnts_; }
  const Program& memrw() const { return *memrw_; }
  const Program& aluadd() const { return *aluadd_; }
  const Program& pushpop() const { return *pushpop_; }
  const Program& openssl() const { return *openssl_; }
  const Program& bzip2() const { return *bzip2_; }
  const Program& bash() const { return *bash_; }
  const Program& grep() const { return *grep_; }
  const Program& sshd() const { return *sshd_; }

  // Short-running tasks (<1 s of work) for the initial-placement experiment
  // (Section 6.2: "workload of short running tasks").
  const Program& short_hot() const { return *short_hot_; }
  const Program& short_cool() const { return *short_cool_; }

  // The six Table 2 programs, in table order.
  std::vector<const Program*> Table2Programs() const;

  // The five Table 1 programs, in table order.
  std::vector<const Program*> Table1Programs() const;

  const Program* ByName(const std::string& name) const;

  // Nominal full-speed power (W) of a program's phase 0 under `model`.
  static double NominalPower(const EnergyModel& model, const Program& program);

 private:
  std::vector<std::unique_ptr<Program>> owned_;
  const Program* bitcnts_;
  const Program* memrw_;
  const Program* aluadd_;
  const Program* pushpop_;
  const Program* openssl_;
  const Program* bzip2_;
  const Program* bash_;
  const Program* grep_;
  const Program* sshd_;
  const Program* short_hot_;
  const Program* short_cool_;

  const Program* Add(std::unique_ptr<Program> program);
};

}  // namespace eas

#endif  // SRC_WORKLOADS_PROGRAMS_H_
