// Workload builders: the spawn lists of the paper's experiments.

#ifndef SRC_WORKLOADS_WORKLOAD_BUILDER_H_
#define SRC_WORKLOADS_WORKLOAD_BUILDER_H_

#include <vector>

#include "src/task/program.h"
#include "src/workloads/programs.h"

namespace eas {

// Section 6.1: each Table 2 program `instances` times (3 -> 18 tasks SMT off,
// 6 -> 36 tasks SMT on). Instances interleave so CPUs get mixed queues even
// with naive placement.
std::vector<const Program*> MixedWorkload(const ProgramLibrary& library, int instances);

// Section 6.3 / Figure 8: `n_memrw` memrw + `n_pushpop` pushpop + `n_bitcnts`
// bitcnts instances.
std::vector<const Program*> HomogeneityWorkload(const ProgramLibrary& library, int n_memrw,
                                                int n_pushpop, int n_bitcnts);

// Section 6.4 / Figures 9, 10: `n` bitcnts instances.
std::vector<const Program*> HotTaskWorkload(const ProgramLibrary& library, int n);

// Parses a workload specification string (the `eastool --workload` syntax):
//   "mixed:<instances>"            - MixedWorkload
//   "homog:<memrw>,<pushpop>,<bitcnts>" - HomogeneityWorkload
//   "hot:<n>"                      - HotTaskWorkload
//   "short:<n>"                    - alternating short_hot/short_cool tasks
//   "list:<name>[*<count>],..."    - explicit spawn list by program name
//                                    (e.g. "list:bitcnts*8,memrw*12,sshd*4")
// Returns an empty vector for malformed specifications.
std::vector<const Program*> ParseWorkloadSpec(const std::string& spec,
                                              const ProgramLibrary& library);

}  // namespace eas

#endif  // SRC_WORKLOADS_WORKLOAD_BUILDER_H_
