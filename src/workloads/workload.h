// A workload: what arrives on the machine, and when.
//
// The paper's experiments spawn a fixed task set at time zero, but diverse
// scenarios (open-loop arrivals, trace replay) inject tasks mid-run. A
// Workload is therefore a list of TaskArrivals - (tick, program, nice) -
// plus the ownership needed to make it self-contained: generated programs
// and any ProgramLibrary the arrival pointers reach into are kept alive by
// the workload itself, so a Workload can be built by a factory, copied into
// ExperimentSpecs and handed across threads without dangling.

#ifndef SRC_WORKLOADS_WORKLOAD_H_
#define SRC_WORKLOADS_WORKLOAD_H_

#include <memory>
#include <vector>

#include "src/base/time.h"
#include "src/task/program.h"

namespace eas {

struct TaskArrival {
  Tick tick = 0;                     // when the task is spawned (0 = run start)
  const Program* program = nullptr;  // what it executes
  int nice = 0;                      // spawn priority
};

class Workload {
 public:
  Workload() = default;

  // The legacy shape: every program arrives at tick 0. Implicit so the
  // existing builders (MixedWorkload etc.) assign directly.
  Workload(std::vector<const Program*> programs);  // NOLINT(runtime/explicit)

  // Appends one arrival. Arrivals may be added in any order; arrivals() is
  // kept sorted by tick (stable: ties keep insertion order).
  void Add(const Program& program, Tick tick = 0, int nice = 0);

  // Takes ownership of a generated program and returns the stable pointer to
  // schedule it with.
  const Program* Own(std::unique_ptr<Program> program);

  // Keeps `resource` (e.g. a ProgramLibrary the arrival pointers point into)
  // alive as long as any copy of this workload exists.
  void Retain(std::shared_ptr<const void> resource);

  // Arrivals sorted by tick, ties in insertion order.
  const std::vector<TaskArrival>& arrivals() const;

  std::size_t size() const { return arrivals_.size(); }
  bool empty() const { return arrivals_.empty(); }

  // Number of arrivals at tick <= 0 (the initial spawn set).
  std::size_t InitialTasks() const;

 private:
  // Shared, not unique: ExperimentSpecs copy workloads freely (seed sweeps,
  // policy grids) and programs are immutable once built.
  std::vector<std::shared_ptr<const Program>> owned_;
  std::vector<std::shared_ptr<const void>> retained_;
  mutable std::vector<TaskArrival> arrivals_;
  mutable bool sorted_ = true;
};

}  // namespace eas

#endif  // SRC_WORKLOADS_WORKLOAD_H_
