#include "src/base/series.h"

#include <algorithm>

namespace eas {

double Series::MaxValue() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::max_element(values_.begin(), values_.end());
}

double Series::MinValue() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::min_element(values_.begin(), values_.end());
}

double Series::ValueAt(Tick tick, double fallback) const {
  // ticks_ is monotonically nondecreasing by construction.
  auto it = std::upper_bound(ticks_.begin(), ticks_.end(), tick);
  if (it == ticks_.begin()) {
    return fallback;
  }
  const std::size_t index = static_cast<std::size_t>(it - ticks_.begin()) - 1;
  return values_[index];
}

Series Series::Downsample(std::size_t max_points) const {
  Series out(name_);
  if (values_.empty() || max_points == 0) {
    return out;
  }
  const std::size_t stride = std::max<std::size_t>(1, values_.size() / max_points);
  for (std::size_t i = 0; i < values_.size(); i += stride) {
    out.Add(ticks_[i], values_[i]);
  }
  return out;
}

Series& SeriesSet::Create(std::string name) {
  series_.emplace_back(std::move(name));
  return series_.back();
}

Series* SeriesSet::Find(const std::string& name) {
  for (auto& s : series_) {
    if (s.name() == name) {
      return &s;
    }
  }
  return nullptr;
}

double SeriesSet::MaxValue() const {
  double best = 0.0;
  for (const auto& s : series_) {
    best = std::max(best, s.MaxValue());
  }
  return best;
}

double SeriesSet::SpreadAt(Tick tick) const {
  bool any = false;
  double lo = 0.0;
  double hi = 0.0;
  for (const auto& s : series_) {
    if (s.empty()) {
      continue;
    }
    const double v = s.ValueAt(tick, s.value_at(0));
    if (!any) {
      lo = v;
      hi = v;
      any = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  return any ? hi - lo : 0.0;
}

}  // namespace eas
