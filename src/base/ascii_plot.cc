#include "src/base/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace eas {

std::string RenderPlot(const SeriesSet& set, const PlotOptions& options) {
  const int width = std::max(10, options.width);
  const int height = std::max(4, options.height);

  double y_max = options.y_max;
  if (y_max <= options.y_min) {
    y_max = std::max(set.MaxValue() * 1.05, options.y_min + 1.0);
  }
  const double y_min = options.y_min;

  Tick t_max = 1;
  for (const auto& s : set.all()) {
    if (!s.empty()) {
      t_max = std::max(t_max, s.tick_at(s.size() - 1));
    }
  }

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));

  auto row_for = [&](double v) {
    const double frac = (v - y_min) / (y_max - y_min);
    int row = static_cast<int>(std::lround((1.0 - frac) * (height - 1)));
    return std::clamp(row, 0, height - 1);
  };

  if (options.use_marker) {
    const int row = row_for(options.marker);
    for (int c = 0; c < width; c += 2) {
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(c)] = '-';
    }
  }

  char symbol = '0';
  for (const auto& s : set.all()) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      const int col = static_cast<int>(s.tick_at(i) * (width - 1) / t_max);
      const int row = row_for(s.value_at(i));
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = symbol;
    }
    if (symbol == '9') {
      symbol = 'a';
    } else {
      ++symbol;
    }
  }

  std::string out;
  char label[64];
  for (int r = 0; r < height; ++r) {
    const double v = y_max - (y_max - y_min) * r / (height - 1);
    std::snprintf(label, sizeof(label), "%7.1f |", v);
    out += label;
    out += grid[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += "        +";
  out += std::string(static_cast<std::size_t>(width), '-');
  out += '\n';
  if (!options.y_label.empty()) {
    out += "        " + options.y_label + "\n";
  }
  return out;
}

}  // namespace eas
