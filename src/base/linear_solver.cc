#include "src/base/linear_solver.h"

#include <cassert>
#include <cmath>

namespace eas {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

std::optional<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  assert(a.cols() == n);
  assert(b.size() == n);

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the row with the largest magnitude in `col`.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a.at(r, col)) > std::fabs(a.at(pivot, col))) {
        pivot = r;
      }
    }
    if (std::fabs(a.at(pivot, col)) < 1e-12) {
      return std::nullopt;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
      }
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t c = col; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) {
      acc -= a.at(i, c) * x[c];
    }
    x[i] = acc / a.at(i, i);
  }
  return x;
}

std::optional<std::vector<double>> LeastSquares(const Matrix& a, const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  assert(b.size() == m);
  assert(m >= n);

  // Normal equations: (A^T A) x = A^T b.
  Matrix ata(n, n);
  std::vector<double> atb(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        acc += a.at(r, i) * a.at(r, j);
      }
      ata.at(i, j) = acc;
    }
    double acc = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      acc += a.at(r, i) * b[r];
    }
    atb[i] = acc;
  }
  return SolveLinearSystem(std::move(ata), std::move(atb));
}

}  // namespace eas
