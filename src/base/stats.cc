#include "src/base/stats.h"

#include <algorithm>
#include <cmath>

namespace eas {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Clear() { *this = RunningStats(); }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double Stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    acc += (x - m) * (x - m);
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return *std::max_element(xs.begin(), xs.end());
}

double Min(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return *std::min_element(xs.begin(), xs.end());
}

double Percentile(std::vector<double> xs, double q) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  const double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace eas
