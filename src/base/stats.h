// Small statistics helpers used by experiments and tests.

#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <cstddef>
#include <vector>

namespace eas {

// Online mean / variance / extrema accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  void Clear();

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Mean of a vector; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

// Population standard deviation; 0 for fewer than two samples.
double Stddev(const std::vector<double>& xs);

// Maximum; 0 for an empty vector.
double Max(const std::vector<double>& xs);

// Minimum; 0 for an empty vector.
double Min(const std::vector<double>& xs);

// Linear-interpolation percentile, q in [0, 100].
double Percentile(std::vector<double> xs, double q);

}  // namespace eas

#endif  // SRC_BASE_STATS_H_
