// Simulation time base.
//
// The simulator advances in fixed 1 ms ticks. All durations that cross module
// boundaries are expressed either in ticks (integer) or in seconds (double,
// for thermal math). Timeslices, balancing intervals etc. are tick counts.

#ifndef SRC_BASE_TIME_H_
#define SRC_BASE_TIME_H_

#include <cstdint>

namespace eas {

// One scheduler/simulation tick. The machine advances one tick at a time.
using Tick = std::int64_t;

// Duration of one tick in seconds (1 ms).
inline constexpr double kTickSeconds = 1e-3;

// Default timeslice, in ticks (100 ms, the Linux 2.6 default for the
// default priority).
inline constexpr Tick kDefaultTimesliceTicks = 100;

// Converts a tick count to seconds.
constexpr double TicksToSeconds(Tick ticks) { return static_cast<double>(ticks) * kTickSeconds; }

// Converts seconds to a (truncated) tick count.
constexpr Tick SecondsToTicks(double seconds) {
  return static_cast<Tick>(seconds / kTickSeconds);
}

}  // namespace eas

#endif  // SRC_BASE_TIME_H_
