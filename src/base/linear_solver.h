// Dense linear algebra helpers for counter-weight calibration.
//
// The calibration pipeline (paper Section 3.2) measures real energy for a set
// of test runs, records the event counts of each run, and solves the
// resulting (overdetermined) linear system for the per-event energy weights.
// We implement ordinary least squares via normal equations with Gaussian
// elimination and partial pivoting; systems are tiny (a handful of counters).

#ifndef SRC_BASE_LINEAR_SOLVER_H_
#define SRC_BASE_LINEAR_SOLVER_H_

#include <cstddef>
#include <optional>
#include <vector>

namespace eas {

// Row-major dense matrix.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

// Solves the square system a * x = b by Gaussian elimination with partial
// pivoting. Returns nullopt if the matrix is (numerically) singular.
std::optional<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b);

// Ordinary least squares: minimizes |a * x - b|^2 for a with rows >= cols.
// Returns nullopt if the normal equations are singular.
std::optional<std::vector<double>> LeastSquares(const Matrix& a, const std::vector<double>& b);

}  // namespace eas

#endif  // SRC_BASE_LINEAR_SOLVER_H_
