#include "src/base/exp_average.h"

namespace eas {

ExpAverage::ExpAverage(double weight, double standard_period)
    : weight_(weight), standard_period_(standard_period) {
  assert(weight > 0.0 && weight <= 1.0);
  assert(standard_period > 0.0);
}

ExpAverage ExpAverage::WithTimeConstant(double tau, double standard_period) {
  // For repeated standard-period updates the average follows
  //   avg(t) = x * (1 - (1-p)^(t/standard)),
  // so matching exp(-t/tau) requires (1-p)^(1/standard) = exp(-1/tau).
  assert(tau > 0.0);
  const double p = 1.0 - std::exp(-standard_period / tau);
  return ExpAverage(p, standard_period);
}

void ExpAverage::Reset(double value) {
  value_ = value;
  has_samples_ = true;
}

}  // namespace eas
