// Minimal command-line flag parsing for the tools.
//
// Supports --name=value and --name value forms plus boolean switches
// (--name). No external dependencies; the tools' needs are modest.

#ifndef SRC_BASE_FLAGS_H_
#define SRC_BASE_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace eas {

class FlagParser {
 public:
  // Parses argv; unknown arguments that do not start with "--" are collected
  // as positional arguments.
  FlagParser(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  // Value of --name; `fallback` if absent. A bare switch yields "".
  std::string GetString(const std::string& name, const std::string& fallback = "") const;
  double GetDouble(const std::string& name, double fallback) const;
  long long GetInt(const std::string& name, long long fallback) const;
  bool GetBool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Flags that were passed but are not in `known`, sorted. Tools validate
  // their flag set with this so a typo ("--polcy") is rejected with the
  // offending flag named instead of being silently ignored.
  std::vector<std::string> UnknownFlags(const std::vector<std::string>& known) const;

  // Splits "a:b:c" into its fields.
  static std::vector<std::string> SplitColons(const std::string& value);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace eas

#endif  // SRC_BASE_FLAGS_H_
