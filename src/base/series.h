// Time series recording for experiment traces (thermal power curves,
// CPU-residency traces, throughput over time).

#ifndef SRC_BASE_SERIES_H_
#define SRC_BASE_SERIES_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "src/base/time.h"

namespace eas {

// A named sequence of (tick, value) samples.
class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void Add(Tick tick, double value) {
    ticks_.push_back(tick);
    values_.push_back(value);
  }

  const std::string& name() const { return name_; }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  Tick tick_at(std::size_t i) const { return ticks_[i]; }
  double value_at(std::size_t i) const { return values_[i]; }
  const std::vector<double>& values() const { return values_; }

  // Largest / smallest sample value; 0 for an empty series.
  double MaxValue() const;
  double MinValue() const;

  // Value of the last sample at or before `tick`; `fallback` if none.
  double ValueAt(Tick tick, double fallback) const;

  // Downsamples to at most `max_points` evenly spaced samples (for printing).
  Series Downsample(std::size_t max_points) const;

 private:
  std::string name_;
  std::vector<Tick> ticks_;
  std::vector<double> values_;
};

// A bundle of series sharing a time axis (e.g. one per CPU). Stored in a
// deque so references returned by Create stay valid as the set grows.
class SeriesSet {
 public:
  Series& Create(std::string name);
  Series* Find(const std::string& name);
  const std::deque<Series>& all() const { return series_; }
  std::size_t size() const { return series_.size(); }
  Series& at(std::size_t i) { return series_[i]; }
  const Series& at(std::size_t i) const { return series_[i]; }

  // Max over every sample of every series.
  double MaxValue() const;

  // Spread (max - min) across series at the closest sample to `tick`.
  double SpreadAt(Tick tick) const;

 private:
  std::deque<Series> series_;
};

}  // namespace eas

#endif  // SRC_BASE_SERIES_H_
