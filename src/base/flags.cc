#include "src/base/flags.h"

#include <cstdlib>

namespace eas {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" if the next token is not itself a flag; else a switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "";
    }
  }
}

bool FlagParser::Has(const std::string& name) const { return values_.contains(name); }

std::string FlagParser::GetString(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    return fallback;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

long long FlagParser::GetInt(const std::string& name, long long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    return fallback;
  }
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  return false;
}

std::vector<std::string> FlagParser::UnknownFlags(const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const std::string& candidate : known) {
      if (name == candidate) {
        found = true;
        break;
      }
    }
    if (!found) {
      unknown.push_back(name);  // values_ is an ordered map, so this is sorted
    }
  }
  return unknown;
}

std::vector<std::string> FlagParser::SplitColons(const std::string& value) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = value.find(':', start);
    if (colon == std::string::npos) {
      fields.push_back(value.substr(start));
      return fields;
    }
    fields.push_back(value.substr(start, colon - start));
    start = colon + 1;
  }
}

}  // namespace eas
