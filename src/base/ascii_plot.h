// Minimal ASCII plotting for bench output: renders a SeriesSet the way the
// paper's figures present thermal power over time.

#ifndef SRC_BASE_ASCII_PLOT_H_
#define SRC_BASE_ASCII_PLOT_H_

#include <string>

#include "src/base/series.h"

namespace eas {

struct PlotOptions {
  int width = 78;        // characters along the time axis
  int height = 16;       // rows along the value axis
  double y_min = 0.0;    // bottom of the value axis
  double y_max = 0.0;    // top of the value axis; 0 -> auto from data
  double marker = 0.0;   // horizontal dashed marker line (e.g. the 50 W limit)
  bool use_marker = false;
  std::string y_label;
};

// Renders every series in the set into one character grid. Each series is
// drawn with a distinct symbol ('0'..'9', then 'a'..).
std::string RenderPlot(const SeriesSet& set, const PlotOptions& options);

}  // namespace eas

#endif  // SRC_BASE_ASCII_PLOT_H_
