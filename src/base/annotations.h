// Shard-confinement annotations, enforced by tools/easlint.
//
// The cluster-scale contract (see SimulationState's header comment and
// ARCHITECTURE.md "Cluster scale"): during the engine's package phase loop a
// package's phases read and write only their own PackageShard, so the loop
// parallelizes across packages with no cross-shard writes. That ownership
// rule used to live in comments and the TSan CI leg; these macros make it
// machine-checkable.
//
//   EAS_SHARD_LOCAL   The function runs inside the package-parallel region
//                     (or is a per-CPU/per-package accessor reached from it)
//                     and may only touch the one shard it is handed. It must
//                     never reach an EAS_CROSS_SHARD function, directly or
//                     transitively.
//   EAS_CROSS_SHARD   The function reads or writes state owned by more than
//                     one package (the shared RNG stream, the wake/arrival
//                     queues, the binary registry, whole-machine scans, the
//                     clock). It may only run in the sequential sections of
//                     a tick.
//
// The macros expand to nothing: they are structured markers for easlint's
// shard-confinement pass (`tools/easlint/easlint.py`, rule
// `shard-confinement`), which builds a call graph over src/ and reports any
// path from a shard-local function to a cross-shard one. Annotate
// declarations (headers), immediately before the return type:
//
//   EAS_SHARD_LOCAL void SwitchInPackage(SimulationState& state, std::size_t physical) const;
//   EAS_CROSS_SHARD Task* Spawn(const Program& program, int nice);
//
// Adding a new per-package phase? Mark its entry point EAS_SHARD_LOCAL and
// run the linter; it will name the offending call chain if the phase touches
// sequential-only state. Suppressions follow the linter's general form
// (`// easlint: allow(shard-confinement) -- why`), and every suppression
// needs a written justification.

#ifndef SRC_BASE_ANNOTATIONS_H_
#define SRC_BASE_ANNOTATIONS_H_

#define EAS_SHARD_LOCAL
#define EAS_CROSS_SHARD

#endif  // SRC_BASE_ANNOTATIONS_H_
