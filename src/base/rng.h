// Deterministic pseudo random number generator.
//
// All stochastic behaviour in the simulator (event rate noise, phase
// durations, meter error) is driven by explicitly seeded Rng instances so
// that every experiment is reproducible bit-for-bit. The generator is
// xoshiro256** seeded via splitmix64.

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace eas {

class Rng {
 public:
  // Seeds the generator. Two generators with the same seed produce the same
  // sequence on every platform.
  explicit Rng(std::uint64_t seed);

  // Next raw 64-bit value.
  std::uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t NextBelow(std::uint64_t n);

  // Standard normal variate (Box-Muller, cached spare).
  double NextGaussian();

  // Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Bernoulli trial with probability p of returning true.
  bool Chance(double p);

  // Derives an independent generator; useful for giving each task its own
  // stream while keeping the experiment controlled by one master seed.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace eas

#endif  // SRC_BASE_RNG_H_
