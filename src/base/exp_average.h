// Variable-period exponentially weighted moving average (paper Section 3.3).
//
// The paper extends the classic exponential average
//     avg_i = p * x_i + (1 - p) * avg_{i-1}
// to sampling periods of varying length: if a sample covers a period shorter
// than the standard period, the past is weighted more (it decays less); if a
// sample covers a longer period, the past is weighted less. This is achieved
// by scaling the decay exponentially with the period:
//     avg = (1 - d) * x_rate + d * avg,   d = (1 - p)^(period / standard)
// where x_rate is the sample expressed per standard period. For period ==
// standard this reduces exactly to the constant-weight formula.
//
// Both the per-task energy profile (standard period = one timeslice) and the
// per-CPU thermal power (weight matched to the thermal RC time constant) are
// instances of this class.

#ifndef SRC_BASE_EXP_AVERAGE_H_
#define SRC_BASE_EXP_AVERAGE_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace eas {

class ExpAverage {
 public:
  // `weight` is p in the paper's Equation 2 (weight of the new sample when
  // the sampling period equals `standard_period`); must be in (0, 1].
  // `standard_period` is expressed in arbitrary but consistent time units
  // (the simulator uses seconds).
  ExpAverage(double weight, double standard_period);

  // Creates an average whose step response matches a first-order system with
  // time constant `tau`: after time tau the average has covered ~63% of a
  // step. Used to calibrate thermal power to the thermal model (Section 4.3).
  static ExpAverage WithTimeConstant(double tau, double standard_period);

  // Folds in one sample: `value` is the quantity accumulated over `period`
  // time units (e.g. joules consumed during the period). The average tracks
  // the *rate* per standard period (e.g. joules per timeslice, i.e. power up
  // to a constant factor).
  void AddSample(double value, double period) {
    AddRateSample(value * standard_period_ / period, period);
  }

  // Folds in a rate sample directly (already per standard period).
  //
  // The decay factor (1-p)^(period/standard) is memoized on `period`: the
  // engine's hot paths feed fixed-length periods (every tick is
  // kTickSeconds, every committed timeslice round the same grant), so the
  // pow() collapses to one compare almost every call. std::pow is
  // deterministic for identical arguments, so the memoized value is
  // bit-identical to recomputing it.
  void AddRateSample(double rate, double period) {
    assert(period > 0.0);
    if (!has_samples_) {
      value_ = rate;
      has_samples_ = true;
      return;
    }
    if (period != cached_period_) {
      cached_period_ = period;
      cached_decay_ = std::pow(1.0 - weight_, period / standard_period_);
    }
    const double decay = cached_decay_;
    value_ = (1.0 - decay) * rate + decay * value_;
  }

  // Folds in `n` consecutive identical rate samples, bit-identically to
  // calling AddRateSample(rate, period) n times. The naive loop evaluates
  // the same decay and the same (1-d)*rate product every iteration (constant
  // inputs, deterministic pow), so both are hoisted; only the contraction
  //   value = blended + decay * value
  // must run per sample. The contraction reaches an exact floating-point
  // fixed point (a value that maps to itself bitwise), after which further
  // samples cannot change anything and the loop exits early - this is what
  // lets the engine's skip-ahead integrate long idle spans at a cost bounded
  // by convergence, not span length.
  void AddRateSamples(double rate, double period, std::int64_t n) {
    assert(period > 0.0);
    if (n <= 0) {
      return;
    }
    if (!has_samples_) {
      value_ = rate;
      has_samples_ = true;
      if (--n == 0) {
        return;
      }
    }
    if (period != cached_period_) {
      cached_period_ = period;
      cached_decay_ = std::pow(1.0 - weight_, period / standard_period_);
    }
    const double decay = cached_decay_;
    const double blended = (1.0 - decay) * rate;
    double value = value_;
    for (; n > 0; --n) {
      const double next = blended + decay * value;
      if (next == value) {
        break;
      }
      value = next;
    }
    value_ = value;
  }

  // Forces the average to a value (used to seed a task's profile from the
  // binary registry, Section 4.6).
  void Reset(double value);

  double value() const { return value_; }
  double weight() const { return weight_; }
  double standard_period() const { return standard_period_; }
  bool has_samples() const { return has_samples_; }

 private:
  double weight_;
  double standard_period_;
  double value_ = 0.0;
  // Memoized decay: cached_decay_ == pow(1 - weight_, cached_period_ /
  // standard_period_) whenever cached_period_ != 0 (0 is unreachable as a
  // real period, AddRateSample asserts period > 0).
  double cached_period_ = 0.0;
  double cached_decay_ = 1.0;
  bool has_samples_ = false;
};

}  // namespace eas

#endif  // SRC_BASE_EXP_AVERAGE_H_
