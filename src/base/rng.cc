#include "src/base/rng.h"

#include <cmath>

namespace eas {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

std::uint64_t Rng::NextBelow(std::uint64_t n) {
  // Rejection-free for our purposes; bias is negligible for small n.
  return NextU64() % n;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u;
  double v;
  double s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

bool Rng::Chance(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace eas
