#include "src/task/task.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace eas {

Task::Task(TaskId id, const Program* program, std::uint64_t seed)
    : id_(id), program_(program), rng_(seed) {
  EnterPhase(0);
}

Tick Task::TimesliceForNice(int nice, Tick base_ticks) {
  // nice -20 -> 2x base, nice 0 -> base, nice 19 -> ~1/20 base (5 ticks at
  // the default 100-tick base), mirroring Linux 2.6's static priority scale.
  const Tick scaled = base_ticks * (20 - nice) / 20;
  return std::max<Tick>(base_ticks / 20, scaled);
}

void Task::EnterPhase(std::size_t index) {
  phase_index_ = index % program_->num_phases();
  const Phase& phase = program_->phase(phase_index_);
  const double jitter = 1.0 + rng_.Gaussian(0.0, phase.duration_jitter);
  ticks_left_in_phase_ =
      std::max<Tick>(1, static_cast<Tick>(std::lround(
                            static_cast<double>(phase.mean_duration) * std::max(0.1, jitter))));
}

EventVector Task::ExecuteTick(double speed_factor) {
  assert(speed_factor > 0.0 && speed_factor <= 1.0);
  const Phase& phase = current_phase();

  EventVector events{};
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    const double noise = 1.0 + rng_.Gaussian(0.0, phase.rate_noise);
    events[i] = phase.rates[i] * speed_factor * std::max(0.0, noise);
  }

  if (warmup_ticks_left_ > 0) {
    --warmup_ticks_left_;
  }

  work_done_ref() += speed_factor;
  --ticks_left_in_phase_;
  if (ticks_left_in_phase_ <= 0) {
    if (phase.mean_sleep_after > 0) {
      const double jitter = 1.0 + rng_.Gaussian(0.0, 0.3);
      pending_sleep_ = std::max<Tick>(
          1, static_cast<Tick>(std::lround(
                 static_cast<double>(phase.mean_sleep_after) * std::max(0.1, jitter))));
    }
    EnterPhase(phase_index_ + 1);
  }
  return events;
}

Tick Task::TakePendingSleep() {
  const Tick sleep = pending_sleep_;
  pending_sleep_ = 0;
  return sleep;
}

bool Task::WorkComplete() const {
  return program_->total_work_ticks() > 0 &&
         work_done_ticks() >= static_cast<double>(program_->total_work_ticks());
}

void Task::RestartProgram() {
  ++completions_;
  work_done_ref() = 0.0;
  pending_sleep_ = 0;
  EnterPhase(0);
}

void Task::BeginAccountingPeriod() {
  period_energy_ = 0.0;
  period_ticks_ = 0;
}

double Task::CommitAccountingPeriod() {
  if (period_ticks_ <= 0) {
    return 0.0;
  }
  const double energy = period_energy_;
  profile_.AddPeriod(energy, period_ticks_);
  first_period_pending_ = false;
  BeginAccountingPeriod();
  return energy;
}

void Task::NoteMigration(bool crossed_node, Tick warmup_ticks) {
  ++migrations_;
  if (crossed_node) {
    ++node_migrations_;
  }
  warmup_ticks_left_ = warmup_ticks;
}

}  // namespace eas
