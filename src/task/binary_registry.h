// Binary registry for initial energy profiles (paper Section 4.6).
//
// "We store the amount of energy a task consumes during its first timeslice
// in a hash table indexed by the inode number of the task's corresponding
// binary file. If a new task is started from the same binary, we initialize
// its energy profile from the hash table. For binaries started for the very
// first time, we use a default value."

#ifndef SRC_TASK_BINARY_REGISTRY_H_
#define SRC_TASK_BINARY_REGISTRY_H_

#include <unordered_map>

#include "src/task/program.h"

namespace eas {

class BinaryRegistry {
 public:
  // `default_power_watts`: the profile seed for never-seen binaries.
  explicit BinaryRegistry(double default_power_watts = 40.0);

  // Records the power observed during a task's first timeslice. Later
  // recordings refresh the entry (first-timeslice behaviour can drift as the
  // system state changes).
  void RecordFirstTimeslice(BinaryId binary, double power_watts);

  // Initial profile power for a new task started from `binary`.
  double InitialPowerFor(BinaryId binary) const;

  bool Knows(BinaryId binary) const;
  double default_power() const { return default_power_watts_; }
  std::size_t size() const { return table_.size(); }

 private:
  double default_power_watts_;
  std::unordered_map<BinaryId, double> table_;
};

}  // namespace eas

#endif  // SRC_TASK_BINARY_REGISTRY_H_
