// Program models: what a task executes.
//
// A program is a looped sequence of phases. Each phase emits events of the
// six counter classes at a characteristic rate (giving the phase its power),
// lasts for a randomized duration, and may block (sleep) afterwards -
// modelling interactive programs like bash or sshd. Phase changes are what
// make a task's energy profile drift (paper Section 3.1/3.3, Table 1).

#ifndef SRC_TASK_PROGRAM_H_
#define SRC_TASK_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/counters/event_types.h"

namespace eas {

struct Phase {
  EventRates rates{};            // kilo-events per tick at full speed
  Tick mean_duration = 1000;     // CPU ticks spent in this phase
  double duration_jitter = 0.1;  // relative stddev of the duration
  Tick mean_sleep_after = 0;     // blocking sleep after the phase (0 = CPU bound)
  double rate_noise = 0.03;      // per-tick multiplicative noise on the rates
};

// Identifies the on-disk binary a task was started from; the initial
// placement hash table (Section 4.6) is keyed by this ("indexed by the inode
// number of the task's corresponding binary file").
using BinaryId = std::uint64_t;

class Program {
 public:
  Program(std::string name, BinaryId binary_id, std::vector<Phase> phases,
          Tick total_work_ticks);

  const std::string& name() const { return name_; }
  BinaryId binary_id() const { return binary_id_; }
  const std::vector<Phase>& phases() const { return phases_; }
  const Phase& phase(std::size_t i) const { return phases_[i]; }
  std::size_t num_phases() const { return phases_.size(); }

  // CPU ticks of work after which the task completes (and, in throughput
  // experiments, is respawned). 0 means the task runs forever.
  Tick total_work_ticks() const { return total_work_ticks_; }

 private:
  std::string name_;
  BinaryId binary_id_;
  std::vector<Phase> phases_;
  Tick total_work_ticks_;
};

}  // namespace eas

#endif  // SRC_TASK_PROGRAM_H_
