#include "src/task/energy_profile.h"

namespace eas {

EnergyProfile::EnergyProfile(double sample_weight, Tick timeslice_ticks)
    : average_(sample_weight, TicksToSeconds(timeslice_ticks)) {}

void EnergyProfile::AddPeriod(double energy_joules, Tick period_ticks) {
  if (period_ticks <= 0) {
    return;
  }
  const double period_seconds = TicksToSeconds(period_ticks);
  // Rate per standard period == average power in watts (period-normalized).
  average_.AddRateSample(energy_joules / period_seconds, period_seconds);
}

void EnergyProfile::Seed(double power_watts) { average_.Reset(power_watts); }

}  // namespace eas
