// Task energy profile (paper Section 3.3).
//
// "The energy a task consumed the last time it was executed is a good guess
// for the energy that the task will consume the next time" - smoothed with a
// variable-period exponential average so momentary spikes do not provoke
// migrations while persistent phase changes show up after a few timeslices.
//
// The profile tracks *power* in watts: each sample is the energy a task
// consumed over an execution period of arbitrary length (a full timeslice, or
// less if the task blocked or was preempted).

#ifndef SRC_TASK_ENERGY_PROFILE_H_
#define SRC_TASK_ENERGY_PROFILE_H_

#include "src/base/exp_average.h"
#include "src/base/time.h"

namespace eas {

class EnergyProfile {
 public:
  // `sample_weight` is p from Equation 2 for a standard-length timeslice;
  // `timeslice_ticks` defines the standard period.
  explicit EnergyProfile(double sample_weight = kDefaultSampleWeight,
                         Tick timeslice_ticks = kDefaultTimesliceTicks);

  // Folds in one execution period: `energy_joules` consumed over
  // `period_ticks` ticks of execution.
  void AddPeriod(double energy_joules, Tick period_ticks);

  // Seeds the profile (from the binary registry, or a default for binaries
  // started for the very first time).
  void Seed(double power_watts);

  // Expected power (W) during the task's next timeslice.
  double power() const { return average_.value(); }

  bool has_samples() const { return average_.has_samples(); }

  static constexpr double kDefaultSampleWeight = 0.3;

 private:
  ExpAverage average_;
};

}  // namespace eas

#endif  // SRC_TASK_ENERGY_PROFILE_H_
