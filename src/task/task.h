// Task: the schedulable entity (the paper's "task", Linux's task_struct).
//
// A task executes its program's phases tick by tick, emits counter events,
// carries its energy profile, and records scheduling state (runnable /
// running / sleeping), CPU placement, migration bookkeeping and completion
// statistics. Tasks are owned by the Machine; schedulers hold raw pointers.

#ifndef SRC_TASK_TASK_H_
#define SRC_TASK_TASK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/counters/event_types.h"
#include "src/task/energy_profile.h"
#include "src/task/program.h"

namespace eas {

using TaskId = std::int32_t;
inline constexpr int kInvalidCpu = -1;

enum class TaskState {
  kRunnable,  // on a runqueue, not currently executing
  kRunning,   // currently executing on its CPU
  kSleeping,  // blocked; wakes at wake_tick
  kFinished,  // completed all work and was not respawned
};

// Struct-of-arrays storage for the per-task fields the engine and the
// balancers touch every tick: the runnable flag, remaining/executed work,
// static priority, and the queued-power contribution the owning Runqueue
// recorded. SimulationState owns one instance and attaches every spawned
// task to a row, so the hot state of ten thousand tasks lives in four dense
// arrays instead of being scattered across heap-allocated task objects. A
// task constructed standalone (unit tests, calibration fixtures) is never
// attached and keeps its inline fields; either way the task's accessors are
// the single way to touch these values, so the two storages cannot diverge.
struct TaskHotColumns {
  std::vector<std::uint8_t> runnable;   // state is kRunnable or kRunning
  std::vector<double> work_done_ticks;  // work executed since (re)spawn
  std::vector<double> enqueued_power;   // Runqueue's recorded contribution
  std::vector<int> nice;                // static priority

  // Appends the row for a fresh task (spawned runnable with defaults),
  // returning its index.
  std::size_t AddRow() {
    runnable.push_back(1);
    work_done_ticks.push_back(0.0);
    enqueued_power.push_back(0.0);
    nice.push_back(0);
    return runnable.size() - 1;
  }
};

class Task {
 public:
  Task(TaskId id, const Program* program, std::uint64_t seed);

  // --- identity -----------------------------------------------------------
  TaskId id() const { return id_; }
  const Program& program() const { return *program_; }
  const std::string& name() const { return program_->name(); }

  // --- phase machine ------------------------------------------------------

  // Emits the events for one tick of execution at `speed_factor` (1.0 = full
  // speed; lower when SMT co-running or cache-cold after a migration).
  // Advances the phase machine and work accounting. Returns the events.
  EventVector ExecuteTick(double speed_factor);

  // True if the phase that just ended requests a blocking sleep; returns the
  // sleep duration in ticks (0 if the task does not block now).
  Tick TakePendingSleep();

  // True once total_work_ticks of work have been executed (never for
  // infinite programs). The machine respawns or retires the task.
  bool WorkComplete() const;

  // Restarts the program from phase 0 with fresh work accounting (respawn
  // after completion; used by throughput experiments).
  void RestartProgram();

  const Phase& current_phase() const { return program_->phase(phase_index_); }
  std::size_t phase_index() const { return phase_index_; }
  double work_done_ticks() const {
    return hot_ != nullptr ? hot_->work_done_ticks[row_] : work_done_ticks_;
  }
  std::int64_t completions() const { return completions_; }

  // --- hot-state attachment -----------------------------------------------

  // Moves the hot fields into `columns` row `row` (the struct-of-arrays a
  // SimulationState owns). Called once, right after SimulationState spawns
  // the task; the inline fields are dead from then on.
  void AttachHotColumns(TaskHotColumns* columns, std::size_t row) {
    columns->runnable[row] =
        (state_ == TaskState::kRunnable || state_ == TaskState::kRunning) ? 1 : 0;
    columns->work_done_ticks[row] = work_done_ticks_;
    columns->enqueued_power[row] = enqueued_power_;
    columns->nice[row] = nice_;
    hot_ = columns;
    row_ = row;
  }

  // --- scheduling state ---------------------------------------------------
  TaskState state() const { return state_; }
  void set_state(TaskState s) {
    state_ = s;
    if (hot_ != nullptr) {
      hot_->runnable[row_] = (s == TaskState::kRunnable || s == TaskState::kRunning) ? 1 : 0;
    }
  }
  Tick wake_tick() const { return wake_tick_; }
  void set_wake_tick(Tick t) { wake_tick_ = t; }

  int cpu() const { return cpu_; }
  void set_cpu(int cpu) { cpu_ = cpu; }

  // Nice level (-20 .. 19). Higher-priority (lower nice) tasks receive
  // proportionally longer timeslices - the reason the paper extends the
  // exponential average to variable periods (Section 3.3).
  int nice() const { return hot_ != nullptr ? hot_->nice[row_] : nice_; }
  void set_nice(int nice) {
    if (hot_ != nullptr) {
      hot_->nice[row_] = nice;
    } else {
      nice_ = nice;
    }
  }

  // Timeslice a fresh scheduling round grants this task, derived from its
  // nice level: base length at nice 0, twice that at nice -20, a small floor
  // near nice 19 (a simplified Linux 2.6 static-priority scale).
  static Tick TimesliceForNice(int nice, Tick base_ticks);

  Tick timeslice_left() const { return timeslice_left_; }
  void set_timeslice_left(Tick t) { timeslice_left_ = t; }
  void TickTimeslice() { --timeslice_left_; }

  // --- energy accounting --------------------------------------------------
  EnergyProfile& profile() { return profile_; }
  const EnergyProfile& profile() const { return profile_; }

  // Energy and duration of the current accounting period (since the task was
  // last switched in); folded into the profile at the next switch point.
  void BeginAccountingPeriod();
  void AccumulateEnergy(double joules) {
    period_energy_ += joules;
    total_energy_ += joules;
  }
  void AccountActiveTick() { ++period_ticks_; }
  double period_energy() const { return period_energy_; }
  Tick period_ticks() const { return period_ticks_; }
  double total_energy() const { return total_energy_; }

  // Folds the current period into the profile and starts a new period.
  // Returns the period energy (used to seed the binary registry with the
  // first-timeslice energy). No-op if the period is empty.
  double CommitAccountingPeriod();

  // True until the first accounting period has been committed; the machine
  // uses this to record the first-timeslice energy in the binary registry.
  bool first_period_pending() const { return first_period_pending_; }

  // Profile power recorded when the task was enqueued - the contribution the
  // owning Runqueue added to its incremental queued-power sum, so removal
  // subtracts exactly what was added. Maintained by Runqueue only.
  double enqueued_power() const {
    return hot_ != nullptr ? hot_->enqueued_power[row_] : enqueued_power_;
  }
  void set_enqueued_power(double watts) {
    if (hot_ != nullptr) {
      hot_->enqueued_power[row_] = watts;
    } else {
      enqueued_power_ = watts;
    }
  }

  // --- migration bookkeeping ----------------------------------------------
  void NoteMigration(bool crossed_node, Tick warmup_ticks);
  Tick warmup_ticks_left() const { return warmup_ticks_left_; }
  std::int64_t migrations() const { return migrations_; }
  std::int64_t node_migrations() const { return node_migrations_; }

 private:
  TaskId id_;
  const Program* program_;
  Rng rng_;

  std::size_t phase_index_ = 0;
  Tick ticks_left_in_phase_ = 0;
  Tick pending_sleep_ = 0;
  double work_done_ticks_ = 0.0;
  std::int64_t completions_ = 0;

  TaskState state_ = TaskState::kRunnable;
  Tick wake_tick_ = 0;
  int cpu_ = kInvalidCpu;
  int nice_ = 0;
  Tick timeslice_left_ = kDefaultTimesliceTicks;

  EnergyProfile profile_;
  double enqueued_power_ = 0.0;
  double period_energy_ = 0.0;
  Tick period_ticks_ = 0;
  double total_energy_ = 0.0;
  bool first_period_pending_ = true;

  Tick warmup_ticks_left_ = 0;
  std::int64_t migrations_ = 0;
  std::int64_t node_migrations_ = 0;

  // Hot-state attachment: null/unused for standalone tasks.
  TaskHotColumns* hot_ = nullptr;
  std::size_t row_ = 0;

  // The storage actually backing work_done_ticks() right now.
  double& work_done_ref() {
    return hot_ != nullptr ? hot_->work_done_ticks[row_] : work_done_ticks_;
  }

  void EnterPhase(std::size_t index);
};

}  // namespace eas

#endif  // SRC_TASK_TASK_H_
