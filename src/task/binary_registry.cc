#include "src/task/binary_registry.h"

namespace eas {

BinaryRegistry::BinaryRegistry(double default_power_watts)
    : default_power_watts_(default_power_watts) {}

void BinaryRegistry::RecordFirstTimeslice(BinaryId binary, double power_watts) {
  table_[binary] = power_watts;
}

double BinaryRegistry::InitialPowerFor(BinaryId binary) const {
  auto it = table_.find(binary);
  return it == table_.end() ? default_power_watts_ : it->second;
}

bool BinaryRegistry::Knows(BinaryId binary) const { return table_.contains(binary); }

}  // namespace eas
