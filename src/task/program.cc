#include "src/task/program.h"

#include <cassert>

namespace eas {

Program::Program(std::string name, BinaryId binary_id, std::vector<Phase> phases,
                 Tick total_work_ticks)
    : name_(std::move(name)),
      binary_id_(binary_id),
      phases_(std::move(phases)),
      total_work_ticks_(total_work_ticks) {
  assert(!phases_.empty());
}

}  // namespace eas
