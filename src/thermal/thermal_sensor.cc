#include "src/thermal/thermal_sensor.h"

#include <cmath>

namespace eas {

ThermalSensor::ThermalSensor(double resolution, Tick read_latency_ticks)
    : resolution_(resolution), read_latency_ticks_(read_latency_ticks) {}

double ThermalSensor::Read(double true_temperature) const {
  return std::floor(true_temperature / resolution_) * resolution_;
}

}  // namespace eas
