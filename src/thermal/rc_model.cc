#include "src/thermal/rc_model.h"

#include <cassert>
#include <cmath>

namespace eas {

RcThermalModel::RcThermalModel(const ThermalParams& params)
    : params_(params), temperature_(params.ambient) {
  assert(params.resistance > 0.0);
  assert(params.capacitance > 0.0);
}

void RcThermalModel::Step(double power_watts, double dt_seconds) {
  // Exact solution of the linear ODE over the step (unconditionally stable,
  // exact for constant power within the step):
  //   T(t+dt) = T_ss + (T(t) - T_ss) * exp(-dt / tau)
  const double t_ss = params_.SteadyStateTemp(power_watts);
  const double decay = std::exp(-dt_seconds / params_.TimeConstant());
  temperature_ = t_ss + (temperature_ - t_ss) * decay;
}

void RcThermalModel::StepN(double power_watts, double dt_seconds, std::int64_t n) {
  // Same expressions as Step, evaluated once: std::exp is deterministic for
  // identical arguments, so hoisting is bit-neutral. The recurrence is a
  // contraction toward t_ss; once an iterate maps to itself exactly, every
  // further step repeats it and the loop stops.
  const double t_ss = params_.SteadyStateTemp(power_watts);
  const double decay = std::exp(-dt_seconds / params_.TimeConstant());
  double temp = temperature_;
  for (; n > 0; --n) {
    const double next = t_ss + (temp - t_ss) * decay;
    if (next == temp) {
      break;
    }
    temp = next;
  }
  temperature_ = temp;
}

}  // namespace eas
