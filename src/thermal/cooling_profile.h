// Per-CPU cooling heterogeneity (paper Section 4, Table 3).
//
// "One processor may be located closer to some cooling component, such as a
// fan or an air inlet, than another one and may thus be able to dissipate
// more energy per time unit without overheating."
//
// A cooling profile assigns each physical CPU its thermal parameters. The
// default 8-way profile mirrors the paper's machine: physical CPUs 0 and 3
// (logical 0/8 and 3/11) have poor thermal properties, physical 4 (logical
// 4/12) is mediocre, the rest never throttle under the paper's workload.

#ifndef SRC_THERMAL_COOLING_PROFILE_H_
#define SRC_THERMAL_COOLING_PROFILE_H_

#include <cstddef>
#include <vector>

#include "src/thermal/rc_model.h"

namespace eas {

class CoolingProfile {
 public:
  // Uniform cooling: every physical CPU gets `params`.
  static CoolingProfile Uniform(std::size_t num_physical, const ThermalParams& params);

  // The heterogeneous 8-way profile used by the Table 3 / Fig. 8 experiments.
  // All CPUs share tau ~= 12 s; thermal resistance varies so that the
  // steady-state max power at the experiment's temperature limit spans
  // roughly 44 W (poor) to 67 W (good).
  static CoolingProfile PaperXSeries445();

  const ThermalParams& ParamsFor(std::size_t physical_cpu) const;
  std::size_t num_physical() const { return params_.size(); }

 private:
  explicit CoolingProfile(std::vector<ThermalParams> params);

  std::vector<ThermalParams> params_;
};

}  // namespace eas

#endif  // SRC_THERMAL_COOLING_PROFILE_H_
