// On-line thermal model calibration (paper Section 4.2).
//
// "Calibration could also be done on-line by simultaneously observing
// temperature (read from the chip's thermal diode) and power consumption
// (derived from energy estimation) to account for changes in the cooling
// system, e.g. the activation or deactivation of additional fans, or
// changes in the ambient temperature."
//
// The estimator fits the RC model's parameters from (power, temperature)
// samples. Discretizing C*dT/dt = P - (T - T_amb)/R over a sampling period
// dt gives the regression
//     T_{i+1} - T_i  =  (dt/C) * P_i  -  (dt/(R*C)) * (T_i - T_amb)
// which is linear in a = dt/C and b = dt/(R*C); least squares recovers
//     C = dt / a       R = a / b.
// Diode quantization (~1 K) is handled by aggregating samples over windows
// long enough for real temperature movement to dominate the quantization
// error.

#ifndef SRC_THERMAL_ONLINE_CALIBRATION_H_
#define SRC_THERMAL_ONLINE_CALIBRATION_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "src/thermal/rc_model.h"

namespace eas {

class OnlineThermalCalibrator {
 public:
  // `ambient`: assumed ambient temperature (deg C); `window_seconds`: how
  // much time one regression sample aggregates (longer windows suppress
  // diode quantization noise).
  OnlineThermalCalibrator(double ambient, double window_seconds);

  // Feeds one observation: average power over the period and the diode
  // reading at the period's end, `dt_seconds` after the previous sample.
  void AddSample(double power_watts, double diode_temperature, double dt_seconds);

  // Number of aggregated regression windows so far.
  std::size_t windows() const { return windows_.size(); }

  // Fits R and C. Returns nullopt with fewer than `kMinWindows` windows or
  // if the observations do not excite the model (constant power).
  std::optional<ThermalParams> Fit() const;

  static constexpr std::size_t kMinWindows = 8;

 private:
  struct Window {
    double mean_power = 0.0;
    double start_temp = 0.0;
    double end_temp = 0.0;
    double duration = 0.0;
  };

  double ambient_;
  double window_seconds_;

  // Accumulation state of the open window.
  double acc_power_time_ = 0.0;
  double acc_time_ = 0.0;
  double window_start_temp_ = 0.0;
  bool have_start_ = false;

  std::vector<Window> windows_;
};

}  // namespace eas

#endif  // SRC_THERMAL_ONLINE_CALIBRATION_H_
