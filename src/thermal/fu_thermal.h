// Per functional-unit thermal model (paper Section 7, future work).
//
// "Since energy is dissipated at individual functional units of a processor,
// chip temperature is likely to be distributed non-uniformly... Future work
// could incorporate a more elaborate thermal model featuring multiple
// temperatures, and could characterize tasks not only by their power
// consumption, but also by the location at which energy is dissipated."
//
// We model three on-die clusters (integer, floating point, memory/cache),
// each a small RC node coupled to a shared spreader/heat-sink node that in
// turn follows the package-level RC model. FU time constants are much
// shorter than the package's (hundreds of ms vs ~12 s), so local hotspots
// form and decay quickly - which is exactly why two tasks with equal total
// power but different instruction mixes stress a die differently.

#ifndef SRC_THERMAL_FU_THERMAL_H_
#define SRC_THERMAL_FU_THERMAL_H_

#include <array>
#include <cstddef>

#include "src/counters/energy_model.h"
#include "src/counters/event_types.h"
#include "src/thermal/rc_model.h"

namespace eas {

enum class FunctionalUnit : std::size_t {
  kIntegerCluster = 0,  // ALUs, decode, stack engine
  kFpCluster,           // FPU/SIMD
  kMemCluster,          // load/store, caches, bus interface
};

inline constexpr std::size_t kNumFunctionalUnits = 3;

// Dynamic power per functional unit (W).
using FuPowerVector = std::array<double, kNumFunctionalUnits>;

// Splits the dynamic power of an event batch across the functional units:
// uops/ALU/stack events heat the integer cluster, FPU events the FP cluster,
// memory transactions and misses the memory cluster.
FuPowerVector SplitDynamicPower(const EventVector& events_per_tick, const EventWeights& weights,
                                double tick_seconds);

struct FuThermalParams {
  // Thermal resistance from each FU cluster to the spreader (K/W). Small
  // area -> high resistance -> pronounced local hotspots.
  double fu_resistance = 0.8;
  // Thermal capacitance of one cluster (J/K). Small -> fast hotspots.
  double fu_capacitance = 0.25;
  // The spreader/heat-sink node uses the package-level params.
  ThermalParams package;

  double FuTimeConstant() const { return fu_resistance * fu_capacitance; }
};

class FuThermalModel {
 public:
  explicit FuThermalModel(const FuThermalParams& params);

  // Advances by dt with per-FU dynamic power plus a base power spread evenly
  // over the clusters.
  void Step(const FuPowerVector& fu_power, double base_power_watts, double dt_seconds);

  // Temperature of one cluster (deg C).
  double FuTemperature(FunctionalUnit fu) const;

  // Hottest cluster temperature: what a hotspot-aware throttle would watch.
  double MaxFuTemperature() const;

  // Spreader (package) temperature - what the single-diode model reports.
  double SpreaderTemperature() const { return spreader_.temperature(); }

  const FuThermalParams& params() const { return params_; }

 private:
  FuThermalParams params_;
  RcThermalModel spreader_;
  std::array<double, kNumFunctionalUnits> fu_temp_{};
};

}  // namespace eas

#endif  // SRC_THERMAL_FU_THERMAL_H_
