#include "src/thermal/online_calibration.h"

#include "src/base/linear_solver.h"

namespace eas {

OnlineThermalCalibrator::OnlineThermalCalibrator(double ambient, double window_seconds)
    : ambient_(ambient), window_seconds_(window_seconds) {}

void OnlineThermalCalibrator::AddSample(double power_watts, double diode_temperature,
                                        double dt_seconds) {
  if (!have_start_) {
    window_start_temp_ = diode_temperature;
    have_start_ = true;
    return;
  }
  acc_power_time_ += power_watts * dt_seconds;
  acc_time_ += dt_seconds;
  if (acc_time_ + 1e-9 >= window_seconds_) {
    Window window;
    window.mean_power = acc_power_time_ / acc_time_;
    window.start_temp = window_start_temp_;
    window.end_temp = diode_temperature;
    window.duration = acc_time_;
    windows_.push_back(window);
    window_start_temp_ = diode_temperature;
    acc_power_time_ = 0.0;
    acc_time_ = 0.0;
  }
}

std::optional<ThermalParams> OnlineThermalCalibrator::Fit() const {
  if (windows_.size() < kMinWindows) {
    return std::nullopt;
  }
  // Regression: dT = a * (P * dt) - b * ((T - Ta) * dt), unknowns a = 1/C,
  // b = 1/(R*C). Using per-window integrals keeps the fit correct for
  // variable window durations.
  Matrix design(windows_.size(), 2);
  std::vector<double> delta(windows_.size(), 0.0);
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const Window& w = windows_[i];
    const double mid_temp = 0.5 * (w.start_temp + w.end_temp);
    design.at(i, 0) = w.mean_power * w.duration;
    design.at(i, 1) = -(mid_temp - ambient_) * w.duration;
    delta[i] = w.end_temp - w.start_temp;
  }
  auto solution = LeastSquares(design, delta);
  if (!solution.has_value()) {
    return std::nullopt;
  }
  const double a = (*solution)[0];
  const double b = (*solution)[1];
  if (a <= 0.0 || b <= 0.0) {
    return std::nullopt;  // unphysical: the data did not excite the model
  }
  ThermalParams params;
  params.capacitance = 1.0 / a;
  params.resistance = a / b;
  params.ambient = ambient_;
  return params;
}

}  // namespace eas
