#include "src/thermal/fu_thermal.h"

#include <algorithm>
#include <cmath>

namespace eas {

FuPowerVector SplitDynamicPower(const EventVector& events_per_tick, const EventWeights& weights,
                                double tick_seconds) {
  FuPowerVector power{};
  auto energy_of = [&](EventType type) {
    return weights[EventIndex(type)] * events_per_tick[EventIndex(type)];
  };
  const double integer = energy_of(EventType::kUopsRetired) + energy_of(EventType::kIntAluOps) +
                         energy_of(EventType::kStackOps);
  const double fp = energy_of(EventType::kFpuOps);
  const double mem =
      energy_of(EventType::kMemTransactions) + energy_of(EventType::kL2CacheMisses);
  power[static_cast<std::size_t>(FunctionalUnit::kIntegerCluster)] = integer / tick_seconds;
  power[static_cast<std::size_t>(FunctionalUnit::kFpCluster)] = fp / tick_seconds;
  power[static_cast<std::size_t>(FunctionalUnit::kMemCluster)] = mem / tick_seconds;
  return power;
}

FuThermalModel::FuThermalModel(const FuThermalParams& params)
    : params_(params), spreader_(params.package) {
  fu_temp_.fill(params.package.ambient);
}

void FuThermalModel::Step(const FuPowerVector& fu_power, double base_power_watts,
                          double dt_seconds) {
  // The spreader integrates the total power with the package RC model.
  double total = base_power_watts;
  for (double p : fu_power) {
    total += p;
  }
  spreader_.Step(total, dt_seconds);

  // Each cluster relaxes toward spreader_temp + R_fu * (its power + its base
  // share) with the (fast) FU time constant.
  const double base_share = base_power_watts / static_cast<double>(kNumFunctionalUnits);
  const double decay = std::exp(-dt_seconds / params_.FuTimeConstant());
  for (std::size_t i = 0; i < kNumFunctionalUnits; ++i) {
    const double target =
        spreader_.temperature() + params_.fu_resistance * (fu_power[i] + base_share);
    fu_temp_[i] = target + (fu_temp_[i] - target) * decay;
  }
}

double FuThermalModel::FuTemperature(FunctionalUnit fu) const {
  return fu_temp_[static_cast<std::size_t>(fu)];
}

double FuThermalModel::MaxFuTemperature() const {
  return *std::max_element(fu_temp_.begin(), fu_temp_.end());
}

}  // namespace eas
