// Thermal diode model (paper Section 3.1).
//
// Contemporary thermal diodes are slow to read (several milliseconds over the
// system management bus) and coarse (about 1 K resolution) - which is exactly
// why per-timeslice energy accounting must come from event counters instead.
// The sensor exists so the simulator can demonstrate that limitation and so
// on-line thermal calibration has something to read.

#ifndef SRC_THERMAL_THERMAL_SENSOR_H_
#define SRC_THERMAL_THERMAL_SENSOR_H_

#include "src/base/time.h"

namespace eas {

class ThermalSensor {
 public:
  // `resolution` in Kelvin, `read_latency_ticks` charged per read.
  ThermalSensor(double resolution, Tick read_latency_ticks);

  // Quantized reading of the true temperature.
  double Read(double true_temperature) const;

  // Cost of one read, in ticks of CPU time (models the SMBus stall).
  Tick read_latency_ticks() const { return read_latency_ticks_; }

  double resolution() const { return resolution_; }

 private:
  double resolution_;
  Tick read_latency_ticks_;
};

}  // namespace eas

#endif  // SRC_THERMAL_THERMAL_SENSOR_H_
