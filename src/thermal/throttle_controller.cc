#include "src/thermal/throttle_controller.h"

namespace eas {

ThrottleController::ThrottleController(double hysteresis_watts)
    : hysteresis_watts_(hysteresis_watts) {}

bool ThrottleController::ShouldThrottle(double thermal_power_watts, double max_power_watts) {
  if (throttled_) {
    if (thermal_power_watts < max_power_watts - hysteresis_watts_) {
      throttled_ = false;
    }
  } else {
    if (thermal_power_watts > max_power_watts) {
      throttled_ = true;
    }
  }
  return throttled_;
}

void ThrottleController::AccountTick(bool throttled, bool had_demand) {
  ++total_ticks_;
  if (throttled) {
    ++throttled_ticks_;
  }
  if (had_demand) {
    ++demand_ticks_;
  }
}

double ThrottleController::ThrottledFraction() const {
  if (total_ticks_ == 0) {
    return 0.0;
  }
  return static_cast<double>(throttled_ticks_) / static_cast<double>(total_ticks_);
}

void ThrottleController::ResetAccounting() {
  throttled_ticks_ = 0;
  total_ticks_ = 0;
  demand_ticks_ = 0;
}

}  // namespace eas
