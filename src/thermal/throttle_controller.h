// hlt-based thermal throttling (paper Sections 6.2, 6.4).
//
// "Whenever a CPU's thermal power rose above the value corresponding to 38 C,
// we throttled the CPU by executing the hlt instruction."
//
// The controller is a per logical CPU hysteresis loop on the thermal-power
// metric: when thermal power exceeds the CPU's maximum power the CPU halts
// (no work, halt power only) until the metric has fallen below the limit by
// a hysteresis margin. Throttled ticks are accounted for Table 3.

#ifndef SRC_THERMAL_THROTTLE_CONTROLLER_H_
#define SRC_THERMAL_THROTTLE_CONTROLLER_H_

#include "src/base/time.h"

namespace eas {

class ThrottleController {
 public:
  // `hysteresis_watts`: how far thermal power must fall below the limit
  // before execution resumes. Small values duty-cycle the CPU near the limit
  // the way BIOS hlt throttling does.
  explicit ThrottleController(double hysteresis_watts = 0.5);

  // Updates the throttle state given the CPU's current thermal power and
  // limit; returns true if the CPU must halt this tick.
  bool ShouldThrottle(double thermal_power_watts, double max_power_watts);

  // Records one tick of outcome (throttled or not) for statistics.
  // `had_demand` tracks whether the CPU wanted to run this tick (a task was
  // queued or current); per-package controllers, where demand is not a
  // meaningful notion, use the default. Experiment reporting uses the demand
  // count to tell "never throttled" apart from "never wanted to run".
  void AccountTick(bool throttled, bool had_demand = true);

  bool throttled() const { return throttled_; }
  Tick throttled_ticks() const { return throttled_ticks_; }
  Tick total_ticks() const { return total_ticks_; }
  Tick demand_ticks() const { return demand_ticks_; }

  // Fraction of accounted ticks spent throttled (Table 3's percentages).
  double ThrottledFraction() const;

  void ResetAccounting();

 private:
  double hysteresis_watts_;
  bool throttled_ = false;
  Tick throttled_ticks_ = 0;
  Tick total_ticks_ = 0;
  Tick demand_ticks_ = 0;
};

}  // namespace eas

#endif  // SRC_THERMAL_THROTTLE_CONTROLLER_H_
