#include "src/thermal/cooling_profile.h"

#include <cassert>

namespace eas {

CoolingProfile::CoolingProfile(std::vector<ThermalParams> params) : params_(std::move(params)) {}

CoolingProfile CoolingProfile::Uniform(std::size_t num_physical, const ThermalParams& params) {
  return CoolingProfile(std::vector<ThermalParams>(num_physical, params));
}

CoolingProfile CoolingProfile::PaperXSeries445() {
  // Node 0: physical 0..3, node 1: physical 4..7. Resistances chosen so that
  // with the 38 C artificial limit and 22 C ambient (16 K headroom):
  //   physical 0, 3 (poor):   P_max ~ 40 W -> heavy throttling under mixed
  //                           queues (the paper's 51-61% CPUs), but an
  //                           all-memrw queue (38 W) can still run clean
  //                           so energy-aware scheduling has headroom
  //   physical 4 (mediocre):  P_max ~ 50 W    -> throttle on hot tasks only
  //   the rest (good):        P_max ~ 63-66 W -> never throttle (bitcnts=61 W)
  // All share tau = R*C ~= 12 s so a 60 W task trips a 40 W physical limit
  // about 10 s after landing on a cold CPU (Section 6.4).
  constexpr double kTau = 12.0;
  const double resistances[8] = {0.398, 0.245, 0.250, 0.402, 0.320, 0.255, 0.248, 0.252};
  std::vector<ThermalParams> params;
  params.reserve(8);
  for (double r : resistances) {
    ThermalParams p;
    p.resistance = r;
    p.capacitance = kTau / r;
    p.ambient = 22.0;
    params.push_back(p);
  }
  return CoolingProfile(std::move(params));
}

const ThermalParams& CoolingProfile::ParamsFor(std::size_t physical_cpu) const {
  assert(physical_cpu < params_.size());
  return params_[physical_cpu];
}

}  // namespace eas
