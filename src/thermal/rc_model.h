// Lumped RC thermal model (paper Section 4.2, Figure 2).
//
// One thermal resistor (heat sink to ambient) and one thermal capacitor
// (chip + heat sink) per physical CPU:
//
//   C * dT/dt = P - (T - T_ambient) / R
//
// Steady state gives T = T_ambient + R * P, so the maximum power a CPU can
// dissipate without exceeding a temperature limit is
//   P_max = (T_limit - T_ambient) / R.
// The step response is exponential with time constant tau = R * C, which the
// thermal-power exponential average is calibrated against (Section 4.3).
//
// In the simulator this model is both the ground truth (it produces the
// actual die temperature) and the model the scheduler assumes.

#ifndef SRC_THERMAL_RC_MODEL_H_
#define SRC_THERMAL_RC_MODEL_H_

#include <cstdint>

namespace eas {

struct ThermalParams {
  double resistance = 0.30;     // K/W, heat sink to ambient
  double capacitance = 40.0;    // J/K, chip + heat sink
  double ambient = 22.0;        // deg C

  double TimeConstant() const { return resistance * capacitance; }
  double SteadyStateTemp(double power_watts) const { return ambient + resistance * power_watts; }
  double MaxPowerForTemp(double temp_limit) const { return (temp_limit - ambient) / resistance; }
  // Power level whose steady-state temperature equals `temp`; the inverse of
  // SteadyStateTemp, used to express temperature limits in the power domain.
  double PowerForTemp(double temp) const { return (temp - ambient) / resistance; }
};

class RcThermalModel {
 public:
  explicit RcThermalModel(const ThermalParams& params);

  // Advances the model by `dt_seconds` with `power_watts` dissipated.
  void Step(double power_watts, double dt_seconds);

  // Advances by `n` equal steps at constant power, bit-identically to
  // calling Step(power_watts, dt_seconds) n times. Hoists the per-step
  // constants (identical inputs give identical t_ss and decay) and exits
  // early once the temperature reaches its exact floating-point fixed point.
  void StepN(double power_watts, double dt_seconds, std::int64_t n);

  // Current die temperature (deg C).
  double temperature() const { return temperature_; }

  // Forces the temperature (initialization / tests).
  void SetTemperature(double temp) { temperature_ = temp; }

  const ThermalParams& params() const { return params_; }

 private:
  ThermalParams params_;
  double temperature_;
};

}  // namespace eas

#endif  // SRC_THERMAL_RC_MODEL_H_
