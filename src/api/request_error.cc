#include "src/api/request_error.h"

namespace eas {

const char* RequestErrorCodeName(RequestErrorCode code) {
  switch (code) {
    case RequestErrorCode::kSyntax:
      return "syntax";
    case RequestErrorCode::kUnknownKey:
      return "unknown-key";
    case RequestErrorCode::kDuplicateKey:
      return "duplicate-key";
    case RequestErrorCode::kEmptyValue:
      return "empty-value";
    case RequestErrorCode::kBadValue:
      return "bad-value";
    case RequestErrorCode::kUnknownName:
      return "unknown-name";
    case RequestErrorCode::kQueueFull:
      return "queue-full";
    case RequestErrorCode::kShuttingDown:
      return "shutting-down";
    case RequestErrorCode::kProtocol:
      return "protocol";
    case RequestErrorCode::kIo:
      return "io";
  }
  return "unknown";
}

}  // namespace eas
