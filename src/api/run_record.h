// RunRecord: one completed run, self-describing.
//
// A RunResult alone cannot be exported faithfully - you also need to know
// what produced it (which spec, which seed, how long) and which request it
// belongs to (to reproduce it, and to group a sweep's runs). A RunRecord
// bundles all of that, so a ResultSink can render any record without
// side-channel context, and a record written to disk (JsonlSink embeds the
// formatted request) is enough to replay the run that produced it.

#ifndef SRC_API_RUN_RECORD_H_
#define SRC_API_RUN_RECORD_H_

#include <cstddef>
#include <cstdint>

#include "src/api/run_request.h"

namespace eas {

struct RunRecord {
  // The request this run came from (as resolved; reproduces the run).
  RunRequest request;

  // The spec that ran: name ("cli/seed42"), config (topology, seed,
  // governor...), options (duration, sampling) and workload.
  ExperimentSpec spec;

  // Position within the session: 0-based across every record the session
  // emits, and the session's total. Sinks use these to pick per-run file
  // names and the single-run vs multi-run table shape.
  std::size_t index = 0;
  std::size_t total = 1;

  RunResult result;

  std::uint64_t seed() const { return spec.config.seed; }
};

}  // namespace eas

#endif  // SRC_API_RUN_RECORD_H_
