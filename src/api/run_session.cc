#include "src/api/run_session.h"

#include <utility>

namespace eas {

RunSession::RunSession(std::size_t num_threads) : runner_(num_threads) {}

void RunSession::AddSink(ResultSink& sink) { sinks_.push_back(&sink); }

std::vector<RunRecord> RunSession::Run(const std::vector<ResolvedRequest>& requests) const {
  // Flatten every request's specs into one sweep, remembering which request
  // each flat index belongs to.
  std::vector<ExperimentSpec> specs;
  std::vector<std::size_t> request_of;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    for (const ExperimentSpec& spec : requests[r].specs) {
      specs.push_back(spec);
      request_of.push_back(r);
    }
  }

  std::vector<RunRecord> records(specs.size());
  std::vector<bool> done(specs.size(), false);
  for (ResultSink* sink : sinks_) {
    sink->Begin(specs.size());
  }

  // RunEach serializes this callback, so the reorder bookkeeping needs no
  // lock of its own: store the completed run, then deliver every record
  // whose predecessors have all arrived.
  std::size_t next_emit = 0;
  runner_.RunEach(specs, [&](std::size_t i, RunResult&& result) {
    RunRecord& record = records[i];
    record.request = requests[request_of[i]].request;
    // The runner is done with spec i once it reports the result, and no
    // other index aliases it, so the spec (and its possibly large
    // workload) moves into the record instead of being copied again.
    record.spec = std::move(specs[i]);
    record.index = i;
    record.total = specs.size();
    record.result = std::move(result);
    done[i] = true;
    while (next_emit < records.size() && done[next_emit]) {
      for (ResultSink* sink : sinks_) {
        sink->Consume(records[next_emit]);
      }
      ++next_emit;
    }
  });
  return records;
}

std::vector<RunRecord> RunSession::Run(const ResolvedRequest& request) const {
  return Run(std::vector<ResolvedRequest>{request});
}

}  // namespace eas
