// Kind -> factory registry for ResultSinks.
//
// Output destinations become one string, `kind:rest`, resolved the same way
// balancing policies and frequency governors already are - so `eastool
// --sink jsonl:out.jsonl`, a bench flag, and a serve-mode request all name
// their sink instead of hard-wiring a class. Built-in kinds:
//
//   csv:PATH          summary CSV to PATH (CsvSink, no trace)
//   trace:PATH        per-CPU thermal trace CSV to PATH (CsvSink, no summary)
//   jsonl:PATH        one JSON object per record to PATH; `jsonl:-` streams
//                     to stdout
//   plot:PATH         paper-style ASCII thermal plot; `plot:-` to stdout
//
// The part after the first ':' is passed to the sink verbatim, so paths may
// themselves contain ':'. Unknown kinds and empty paths come back as a
// structured RequestError (the same type request parsing uses), which lets
// eastool and the service render/serialize sink mistakes through one path.

#ifndef SRC_API_SINK_REGISTRY_H_
#define SRC_API_SINK_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/request_error.h"
#include "src/api/result_sink.h"

namespace eas {

class SinkRegistry {
 public:
  // A factory receives the spec's remainder (everything after `kind:`).
  using Factory = std::function<std::unique_ptr<ResultSink>(const std::string& rest)>;

  // The process-wide registry, with the built-in kinds pre-registered.
  static SinkRegistry& Global();

  // Registers `factory` under `kind`. Returns false (and leaves the existing
  // entry) if the kind is already taken.
  bool Register(const std::string& kind, Factory factory);

  // Builds the sink `spec` ("kind:rest") describes; a RequestError naming
  // the known kinds for an unknown kind, or the malformed spec.
  Expected<std::unique_ptr<ResultSink>> Create(const std::string& spec) const;

  bool Contains(const std::string& kind) const;

  // Registered kinds, sorted.
  std::vector<std::string> Names() const;

  // An empty registry (tests build private ones; Global() is the shared,
  // builtin-populated instance).
  SinkRegistry() = default;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

// Registers the built-in sink kinds into `registry` (exposed for tests that
// build private registries; Global() already includes them).
void RegisterBuiltinSinks(SinkRegistry& registry);

}  // namespace eas

#endif  // SRC_API_SINK_REGISTRY_H_
