#include "src/api/sink_registry.h"

#include <utility>

namespace eas {
namespace {

RequestError SinkError(std::string message) {
  RequestError error;
  error.code = RequestErrorCode::kBadValue;
  error.key = "sink";
  error.message = std::move(message);
  return error;
}

}  // namespace

SinkRegistry& SinkRegistry::Global() {
  static SinkRegistry* registry = [] {
    auto* r = new SinkRegistry();
    RegisterBuiltinSinks(*r);
    return r;
  }();
  return *registry;
}

bool SinkRegistry::Register(const std::string& kind, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.emplace(kind, std::move(factory)).second;
}

bool SinkRegistry::Contains(const std::string& kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.find(kind) != factories_.end();
}

std::vector<std::string> SinkRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [kind, factory] : factories_) {
    names.push_back(kind);
  }
  return names;
}

Expected<std::unique_ptr<ResultSink>> SinkRegistry::Create(const std::string& spec) const {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    return SinkError("bad sink \"" + spec + "\": want kind:path (e.g. jsonl:out.jsonl)");
  }
  const std::string kind = spec.substr(0, colon);
  const std::string rest = spec.substr(colon + 1);
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(kind);
    if (it != factories_.end()) {
      factory = it->second;
    }
  }
  if (!factory) {
    std::string known;
    for (const std::string& name : Names()) {
      known += known.empty() ? name : ", " + name;
    }
    RequestError error = SinkError("unknown sink kind \"" + kind + "\" (known: " + known + ")");
    error.code = RequestErrorCode::kUnknownName;
    return error;
  }
  if (rest.empty()) {
    return SinkError("bad sink \"" + spec + "\": empty path");
  }
  return factory(rest);
}

void RegisterBuiltinSinks(SinkRegistry& registry) {
  registry.Register("csv", [](const std::string& rest) {
    return std::make_unique<CsvSink>(rest, "");
  });
  registry.Register("trace", [](const std::string& rest) {
    return std::make_unique<CsvSink>("", rest);
  });
  registry.Register("jsonl", [](const std::string& rest) {
    return std::make_unique<JsonlSink>(rest);
  });
  registry.Register("plot", [](const std::string& rest) {
    return std::make_unique<AsciiPlotSink>(rest);
  });
}

}  // namespace eas
