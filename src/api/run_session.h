// RunSession: execute resolved RunRequests and stream RunRecords to sinks.
//
// The session flattens every request's specs into one sweep, fans it across
// the parallel ExperimentRunner, and delivers each completed run to the
// attached ResultSinks as a RunRecord - in record order (request order,
// seeds ascending within a request), as soon as the run and all its
// predecessors have completed. Sink output is therefore bit-identical for
// any thread count, while a long sweep still streams: record K is delivered
// the moment runs 0..K are done, not after the whole sweep.
//
//   RunSession session(/*num_threads=*/0);
//   CsvSink csv("summary.csv", "trace.csv");
//   session.AddSink(csv);
//   std::vector<RunRecord> records = session.Run({resolved});
//   csv.Finish();

#ifndef SRC_API_RUN_SESSION_H_
#define SRC_API_RUN_SESSION_H_

#include <vector>

#include "src/api/result_sink.h"
#include "src/api/run_record.h"
#include "src/api/run_request.h"

namespace eas {

class RunSession {
 public:
  // `num_threads` = 0 picks the hardware concurrency.
  explicit RunSession(std::size_t num_threads = 0);

  // Attaches a sink (borrowed, not owned). The session calls Begin and
  // Consume; the caller calls Finish when done with the sink.
  void AddSink(ResultSink& sink);

  // Runs every spec of every request and returns the records in record
  // order. Failure semantics follow ExperimentRunner::RunEach: records
  // streamed before the failure stay delivered, the lowest-indexed failed
  // spec's exception is rethrown after the sweep drains.
  std::vector<RunRecord> Run(const std::vector<ResolvedRequest>& requests) const;
  std::vector<RunRecord> Run(const ResolvedRequest& request) const;

  const ExperimentRunner& runner() const { return runner_; }

 private:
  ExperimentRunner runner_;
  std::vector<ResultSink*> sinks_;
};

}  // namespace eas

#endif  // SRC_API_RUN_SESSION_H_
