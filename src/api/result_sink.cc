#include "src/api/result_sink.h"

#include <iostream>
#include <utility>

#include "src/sim/csv_export.h"
#include "src/sim/metrics.h"

namespace eas {

// --- CsvSink -----------------------------------------------------------------

CsvSink::CsvSink(std::string summary_path, std::string trace_path)
    : summary_path_(std::move(summary_path)), trace_path_(std::move(trace_path)) {}

void CsvSink::Begin(std::size_t total_records) { total_records_ = total_records; }

std::string CsvSink::TracePathFor(std::size_t index) const {
  if (trace_path_.empty()) {
    return "";
  }
  // Record 0 keeps the historical name; later runs get a .runK suffix.
  return index == 0 ? trace_path_ : trace_path_ + ".run" + std::to_string(index);
}

void CsvSink::Consume(const RunRecord& record) {
  if (!summary_path_.empty()) {
    if (total_records_ <= 1) {
      // Single run: the historical key,value summary, byte for byte (the
      // same shim every legacy caller still uses).
      summary_ += RunSummaryToCsv(record.result);
    } else {
      rows_.push_back(Row{record.index, record.spec.name, record.seed(),
                          MetricRegistry::Global().Scalars(record.result)});
    }
  }
  if (!trace_path_.empty()) {
    const std::string path = TracePathFor(record.index);
    if (!WriteFile(path, SeriesSetToCsv(record.result.thermal_power)) && error_.empty()) {
      error_ = "failed to write trace CSV " + path;
    }
  }
}

void CsvSink::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (summary_path_.empty()) {
    return;
  }
  if (!rows_.empty()) {
    // Multi-run table: columns are the union of every run's schema, in
    // first-seen order, so no run's metrics are dropped (a batch can mix
    // governed and ungoverned runs, or different topologies).
    std::vector<std::string> columns;
    for (const Row& row : rows_) {
      for (const MetricValue& metric : row.metrics) {
        bool known = false;
        for (const std::string& column : columns) {
          if (column == metric.name) {
            known = true;
            break;
          }
        }
        if (!known) {
          columns.push_back(metric.name);
        }
      }
    }
    summary_ = "run,name,seed";
    for (const std::string& column : columns) {
      summary_ += ',';
      summary_ += column;
    }
    summary_ += '\n';
    for (const Row& row : rows_) {
      summary_ += std::to_string(row.index);
      summary_ += ',';
      summary_ += row.name;
      summary_ += ',';
      summary_ += std::to_string(row.seed);
      for (const std::string& column : columns) {
        summary_ += ',';
        for (const MetricValue& metric : row.metrics) {
          if (metric.name == column) {
            summary_ += FormatMetricValue(metric);
            break;
          }
        }
      }
      summary_ += '\n';
    }
  }
  if (!WriteFile(summary_path_, summary_) && error_.empty()) {
    error_ = "failed to write summary CSV " + summary_path_;
  }
}

// --- JsonlSink ---------------------------------------------------------------

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonlRecordLine(const RunRecord& record) {
  std::string line = "{\"name\": \"" + JsonEscape(record.spec.name) + "\"";
  line += ", \"seed\": " + std::to_string(record.seed());
  line += ", \"run\": " + std::to_string(record.index);
  line += ", \"request\": \"" + JsonEscape(FormatRunRequestLine(record.request)) + "\"";
  // The tag rides in the request string too, but concurrent serve-mode
  // clients demux on it, so it gets a first-class field. Absent when empty:
  // untagged output stays byte-identical to before the key existed.
  if (!record.request.tag.empty()) {
    line += ", \"tag\": \"" + JsonEscape(record.request.tag) + "\"";
  }
  for (const MetricValue& metric : MetricRegistry::Global().Scalars(record.result)) {
    line += ", \"" + metric.name + "\": " + FormatMetricValue(metric);
  }
  // Record-derived extras the bench reports always carried. They need the
  // spec (the steady-state window is half the run), so they live here
  // rather than in the result-only MetricRegistry schema - which also
  // keeps the summary-CSV byte-identity guarantee untouched.
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), ", \"peak_thermal_w\": %.2f, \"steady_spread_w\": %.2f",
                record.result.thermal_power.MaxValue(),
                record.result.MaxThermalSpreadAfter(record.spec.options.duration_ticks / 2));
  line += buffer;
  line += "}";
  return line;
}

JsonlSink::JsonlSink(std::string path) : path_(std::move(path)) {}

void JsonlSink::EnsureOpen() {
  if (opened_) {
    return;
  }
  opened_ = true;
  if (path_ == "-") {
    out_ = &std::cout;
    return;
  }
  stream_.open(path_, std::ios::binary);
  if (!stream_) {
    error_ = "failed to open " + path_;
    return;
  }
  out_ = &stream_;
}

void JsonlSink::Begin(std::size_t /*total_records*/) { EnsureOpen(); }

void JsonlSink::AppendLine(const std::string& json_object) {
  EnsureOpen();
  if (!error_.empty()) {
    return;
  }
  *out_ << json_object << '\n';
}

void JsonlSink::Consume(const RunRecord& record) { AppendLine(JsonlRecordLine(record)); }

void JsonlSink::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (!opened_ || !error_.empty()) {
    return;
  }
  if (out_ == &std::cout) {
    out_->flush();
    return;
  }
  stream_.close();
  if (!stream_) {
    error_ = "failed to write " + path_;
  }
}

// --- AsciiPlotSink -----------------------------------------------------------

AsciiPlotSink::AsciiPlotSink(std::FILE* out, PlotOptions options)
    : out_(out), options_(std::move(options)) {}

AsciiPlotSink::AsciiPlotSink(const std::string& path, PlotOptions options)
    : out_(nullptr), options_(std::move(options)), path_(path) {
  if (path == "-") {
    out_ = stdout;
    return;
  }
  out_ = std::fopen(path.c_str(), "wb");
  if (out_ == nullptr) {
    error_ = "failed to open " + path;
  } else {
    owned_ = true;
  }
}

AsciiPlotSink::~AsciiPlotSink() { Finish(); }

void AsciiPlotSink::Consume(const RunRecord& record) {
  if (out_ == nullptr) {
    return;
  }
  PlotOptions options = options_;
  if (!options.use_marker && record.spec.config.explicit_max_power_physical.has_value()) {
    options.marker = *record.spec.config.explicit_max_power_physical;
    options.use_marker = true;
  }
  if (options.y_label.empty()) {
    // std::string(...) rather than a char* assignment: gcc 12's -Wrestrict
    // misfires on the in-place assign after the copy above.
    options.y_label = std::string("W");
  }
  std::fprintf(out_, "-- %s (seed %llu) per-CPU thermal power --\n", record.spec.name.c_str(),
               static_cast<unsigned long long>(record.seed()));
  std::fputs(RenderPlot(record.result.thermal_power, options).c_str(), out_);
}

void AsciiPlotSink::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (!owned_ || out_ == nullptr) {
    return;
  }
  if (std::fclose(out_) != 0 && error_.empty()) {
    error_ = "failed to write " + path_;
  }
  out_ = nullptr;
}

}  // namespace eas
