#include "src/api/run_request.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>

#include "src/core/policy_registry.h"
#include "src/fault/fault_plan.h"
#include "src/freq/governor_registry.h"
#include "src/sim/scenario.h"
#include "src/sim/scenario_cache.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

// The request-file keys, in canonical (format) order. Kept aligned with the
// eastool flag names so a request file reads like the command line it
// replaces.
constexpr const char* kKeys[] = {"name",       "tag",      "scenario",   "topology",
                                 "workload",   "policy",   "governor",   "duration-s",
                                 "max-power",  "temp-limit", "throttle", "faults",
                                 "skip-ahead", "intra-threads", "seed",  "runs"};

std::string KnownKeys() {
  std::string known;
  for (const char* key : kKeys) {
    known += known.empty() ? key : std::string(", ") + key;
  }
  return known;
}

std::string Trim(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const std::size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

bool ParseDoubleValue(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  // strtod happily produces nan/inf (and overflows to inf); none of the
  // numeric request fields can mean anything non-finite.
  return !text.empty() && end != nullptr && *end == '\0' && std::isfinite(*out);
}

bool ParseUintValue(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') {
    return false;
  }
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseBoolValue(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "on" || text == "yes") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "off" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

// Shortest decimal that round-trips: "60", "0.5", "1e+30".
std::string FormatDouble(double value) {
  char buffer[64];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, ptr);
}

RequestError MakeError(RequestErrorCode code, std::string key, std::string message) {
  RequestError error;
  error.code = code;
  error.key = std::move(key);
  error.message = std::move(message);
  return error;
}

// Applies one parsed `key = value` pair onto `request`; the error (with no
// line attribution - ParseRunRequest adds it) on an unknown key or a
// malformed value.
std::optional<RequestError> ApplyPair(const std::string& key, const std::string& value,
                                      RunRequest* request) {
  if (key == "name") {
    request->name = value;
    return std::nullopt;
  }
  if (key == "tag") {
    request->tag = value;
    return std::nullopt;
  }
  if (key == "scenario") {
    request->scenario = value;
    return std::nullopt;
  }
  if (key == "topology") {
    request->topology = value;
    return std::nullopt;
  }
  if (key == "workload") {
    request->workload = value;
    return std::nullopt;
  }
  if (key == "policy") {
    request->policy = value;
    return std::nullopt;
  }
  if (key == "governor") {
    request->governor = value;
    return std::nullopt;
  }
  if (key == "faults") {
    request->faults = value;
    return std::nullopt;
  }
  if (key == "duration-s" || key == "max-power" || key == "temp-limit") {
    double parsed = 0.0;
    if (!ParseDoubleValue(value, &parsed)) {
      return MakeError(RequestErrorCode::kBadValue, key,
                       "bad value for " + key + ": \"" + value + "\" (want a number)");
    }
    if (key == "duration-s") {
      request->duration_s = parsed;
    } else if (key == "max-power") {
      request->max_power = parsed;
    } else {
      request->temp_limit = parsed;
    }
    return std::nullopt;
  }
  if (key == "throttle" || key == "skip-ahead") {
    bool parsed = false;
    if (!ParseBoolValue(value, &parsed)) {
      return MakeError(RequestErrorCode::kBadValue, key,
                       "bad value for " + key + ": \"" + value + "\" (want true/false)");
    }
    if (key == "throttle") {
      request->throttle = parsed;
    } else {
      request->skip_ahead = parsed;
    }
    return std::nullopt;
  }
  if (key == "seed" || key == "runs" || key == "intra-threads") {
    std::uint64_t parsed = 0;
    if (!ParseUintValue(value, &parsed)) {
      return MakeError(
          RequestErrorCode::kBadValue, key,
          "bad value for " + key + ": \"" + value + "\" (want a non-negative integer)");
    }
    if (key == "seed") {
      request->seed = parsed;
    } else if (key == "runs") {
      request->runs = parsed;
    } else {
      request->intra_threads = parsed;
    }
    return std::nullopt;
  }
  return MakeError(RequestErrorCode::kUnknownKey, key,
                   "unknown key \"" + key + "\" (known: " + KnownKeys() + ")");
}

void Append(std::string* out, const char* key, const std::string& value,
            const char* separator) {
  if (!out->empty()) {
    *out += separator;
  }
  *out += key;
  *out += " = ";
  *out += value;
}

std::string FormatWithSeparator(const RunRequest& request, const char* separator) {
  std::string out;
  if (!request.name.empty()) {
    Append(&out, "name", request.name, separator);
  }
  if (!request.tag.empty()) {
    Append(&out, "tag", request.tag, separator);
  }
  if (!request.scenario.empty()) {
    Append(&out, "scenario", request.scenario, separator);
  }
  if (request.topology.has_value()) {
    Append(&out, "topology", *request.topology, separator);
  }
  if (request.workload.has_value()) {
    Append(&out, "workload", *request.workload, separator);
  }
  if (request.policy.has_value()) {
    Append(&out, "policy", *request.policy, separator);
  }
  if (request.governor.has_value()) {
    Append(&out, "governor", *request.governor, separator);
  }
  if (request.duration_s.has_value()) {
    Append(&out, "duration-s", FormatDouble(*request.duration_s), separator);
  }
  if (request.max_power.has_value()) {
    Append(&out, "max-power", FormatDouble(*request.max_power), separator);
  }
  if (request.temp_limit.has_value()) {
    Append(&out, "temp-limit", FormatDouble(*request.temp_limit), separator);
  }
  if (request.throttle.has_value()) {
    Append(&out, "throttle", *request.throttle ? "true" : "false", separator);
  }
  if (request.faults.has_value()) {
    Append(&out, "faults", *request.faults, separator);
  }
  if (request.skip_ahead.has_value()) {
    Append(&out, "skip-ahead", *request.skip_ahead ? "true" : "false", separator);
  }
  if (request.intra_threads.has_value()) {
    Append(&out, "intra-threads", std::to_string(*request.intra_threads), separator);
  }
  if (request.seed.has_value()) {
    Append(&out, "seed", std::to_string(*request.seed), separator);
  }
  if (request.runs != 1) {
    Append(&out, "runs", std::to_string(request.runs), separator);
  }
  return out;
}

// True when `value` survives the text round trip unchanged: no comment or
// separator characters, no edge whitespace the parser would trim away.
bool TextSafe(const std::string& value) {
  return value == Trim(value) && value.find_first_of("#;\n\r") == std::string::npos;
}

}  // namespace

std::optional<RequestError> ApplyRunRequestField(const std::string& key,
                                                 const std::string& value,
                                                 RunRequest* request) {
  if (value.empty()) {
    return MakeError(RequestErrorCode::kEmptyValue, key, "empty value for \"" + key + "\"");
  }
  return ApplyPair(key, value, request);
}

Expected<RunRequest> ParseRunRequest(const std::string& text) {
  RunRequest request;
  std::vector<std::string> seen;
  std::size_t line_number = 0;
  std::size_t line_start = 0;
  // Attaches the current line to an error built below; Render() turns it
  // back into the historical "line N: ..." diagnostic.
  const auto at_line = [&line_number](RequestError error) {
    error.line = line_number;
    return error;
  };
  while (line_start <= text.size()) {
    const std::size_t newline = text.find('\n', line_start);
    std::string line = text.substr(
        line_start, newline == std::string::npos ? std::string::npos : newline - line_start);
    ++line_number;
    // Strip comments, then split the remainder into ';'-separated pairs so
    // a whole request fits on one (batch-file) line.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::size_t pair_start = 0;
    while (pair_start <= line.size()) {
      const std::size_t semi = line.find(';', pair_start);
      const std::string pair = Trim(line.substr(
          pair_start, semi == std::string::npos ? std::string::npos : semi - pair_start));
      if (!pair.empty()) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          return at_line(MakeError(RequestErrorCode::kSyntax, "",
                                   "expected key = value, got \"" + pair + "\""));
        }
        const std::string key = Trim(pair.substr(0, eq));
        const std::string value = Trim(pair.substr(eq + 1));
        if (key.empty()) {
          return at_line(MakeError(RequestErrorCode::kSyntax, "", "missing key before '='"));
        }
        if (value.empty()) {
          return at_line(MakeError(RequestErrorCode::kEmptyValue, key,
                                   "empty value for \"" + key + "\""));
        }
        for (const std::string& earlier : seen) {
          if (earlier == key) {
            return at_line(MakeError(RequestErrorCode::kDuplicateKey, key,
                                     "duplicate key \"" + key + "\""));
          }
        }
        seen.push_back(key);
        if (auto error = ApplyPair(key, value, &request)) {
          return at_line(std::move(*error));
        }
      }
      if (semi == std::string::npos) {
        break;
      }
      pair_start = semi + 1;
    }
    if (newline == std::string::npos) {
      break;
    }
    line_start = newline + 1;
  }
  return request;
}

std::string FormatRunRequest(const RunRequest& request) {
  std::string out = FormatWithSeparator(request, "\n");
  if (!out.empty()) {
    out += '\n';
  }
  return out;
}

std::string FormatRunRequestLine(const RunRequest& request) {
  return FormatWithSeparator(request, "; ");
}

std::string NormalizePolicyName(std::string name) {
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  if (name == "baseline") {
    return "load_only";
  }
  if (name == "eas") {
    return "energy_aware";
  }
  if (name == "temp_only") {  // the CLI's historical spelling was temp-only
    return "temperature_only";
  }
  return name;
}

Expected<ResolvedRequest> ResolveRunRequest(const RunRequest& request, ScenarioCache* cache) {
  ResolvedRequest resolved;
  resolved.request = request;
  const bool from_scenario = !request.scenario.empty();

  // Every resolved request must survive FormatRunRequest -> ParseRunRequest
  // unchanged - that round trip is what makes a JsonlSink record or a
  // --print-request file an exact reproduction recipe. A value the text
  // format cannot carry (comment/separator characters, edge whitespace)
  // would silently replay as a *different* run, so it is rejected here,
  // where programmatically built requests also pass through.
  const auto text_unsafe = [](const char* key) {
    return MakeError(RequestErrorCode::kBadValue, key,
                     std::string("bad ") + key +
                         ": the request text format cannot carry '#', ';', newlines or "
                         "edge whitespace");
  };
  if (!TextSafe(request.name)) {
    return text_unsafe("name");
  }
  if (!TextSafe(request.tag)) {
    return text_unsafe("tag");
  }
  if (!TextSafe(request.scenario)) {
    return text_unsafe("scenario");
  }
  if (request.topology.has_value() && !TextSafe(*request.topology)) {
    return text_unsafe("topology");
  }
  if (request.workload.has_value() && !TextSafe(*request.workload)) {
    return text_unsafe("workload");
  }
  if (request.policy.has_value() && !TextSafe(*request.policy)) {
    return text_unsafe("policy");
  }
  if (request.governor.has_value() && !TextSafe(*request.governor)) {
    return text_unsafe("governor");
  }
  if (request.faults.has_value() && !TextSafe(*request.faults)) {
    return text_unsafe("faults");
  }

  ExperimentSpec spec;
  if (from_scenario) {
    if (!ScenarioRegistry::Global().Contains(request.scenario)) {
      std::string known;
      for (const std::string& name : ScenarioRegistry::Global().Names()) {
        known += known.empty() ? name : ", " + name;
      }
      return MakeError(RequestErrorCode::kUnknownName, "scenario",
                       "unknown scenario \"" + request.scenario + "\" (known: " + known + ")");
    }
    // The cached build and a fresh factory call are the same deterministic
    // data; the cache only amortizes workload generation across requests.
    spec = cache != nullptr ? cache->Scenario(request.scenario)->ToExperimentSpec()
                            : ScenarioRegistry::Global().BuildOrThrow(request.scenario)
                                  .ToExperimentSpec();
    if (request.workload.has_value()) {
      return MakeError(RequestErrorCode::kBadValue, "workload",
                       "workload cannot override a scenario workload (scenario \"" +
                           request.scenario + "\" defines its own)");
    }
  } else {
    spec.name = "cli";
  }
  if (!request.name.empty()) {
    spec.name = request.name;
  }

  // --- machine -------------------------------------------------------------
  if (!from_scenario || request.topology.has_value()) {
    std::string topo_error;
    const auto topology = ParseTopologySpec(request.topology.value_or("2:4:1"), &topo_error);
    if (!topology.has_value()) {
      return MakeError(RequestErrorCode::kBadValue, "topology", "bad topology: " + topo_error);
    }
    spec.config.topology = *topology;
    // The paper's 8-package box gets its measured per-package cooling; any
    // other shape cools uniformly (same rule eastool always applied).
    if (spec.config.topology.num_physical() == 8) {
      spec.config.cooling = CoolingProfile::PaperXSeries445();
    } else {
      spec.config.cooling =
          CoolingProfile::Uniform(spec.config.topology.num_physical(), ThermalParams{});
    }
  }
  if (request.max_power.has_value()) {
    // Programmatically built requests bypass the parser, so the finiteness
    // guard repeats here (and for temp-limit / duration-s below).
    if (!(*request.max_power > 0.0) || !std::isfinite(*request.max_power)) {
      return MakeError(RequestErrorCode::kBadValue, "max-power",
                       "bad max-power: want a finite value > 0 W");
    }
    spec.config.explicit_max_power_physical = *request.max_power;
  }
  if (!from_scenario || request.temp_limit.has_value()) {
    const double temp_limit = request.temp_limit.value_or(38.0);
    if (!std::isfinite(temp_limit)) {
      return MakeError(RequestErrorCode::kBadValue, "temp-limit",
                       "bad temp-limit: want a finite temperature");
    }
    spec.config.temp_limit = temp_limit;
  }
  if (!from_scenario || request.throttle.has_value()) {
    spec.config.throttling_enabled = request.throttle.value_or(false);
  }
  // No scenario sets skip_ahead; an explicit request value always wins and
  // an unset one keeps the config default (on).
  if (request.skip_ahead.has_value()) {
    spec.config.skip_ahead = *request.skip_ahead;
  }
  // Likewise intra-threads: explicit wins, unset keeps the config default
  // (0 = the historical interleaved tick).
  if (request.intra_threads.has_value()) {
    spec.config.intra_run_threads = static_cast<std::size_t>(*request.intra_threads);
  }
  if (!from_scenario || request.seed.has_value()) {
    spec.config.seed = request.seed.value_or(42);
  }
  // Faults resolve after the topology is final so the plan validates against
  // the machine it will actually run on. The literal "none" cancels a
  // scenario's baked-in plan (an empty value can't travel through the text
  // format); unset inherits it.
  if (!from_scenario || request.faults.has_value()) {
    const std::string faults = request.faults.value_or("none");
    spec.config.fault_spec = faults == "none" ? "" : faults;
  }
  if (spec.config.faulted()) {
    std::string fault_error;
    if (!ParseFaultPlan(spec.config.fault_spec, spec.config.topology, &fault_error).has_value()) {
      return MakeError(RequestErrorCode::kBadValue, "faults", "bad faults: " + fault_error);
    }
  }

  // --- policy (resolved purely via the BalancePolicyRegistry) --------------
  if (!from_scenario || request.policy.has_value()) {
    const std::string policy = NormalizePolicyName(request.policy.value_or("energy_aware"));
    if (!BalancePolicyRegistry::Global().Contains(policy)) {
      std::string known;
      for (const std::string& name : BalancePolicyRegistry::Global().Names()) {
        known += known.empty() ? name : ", " + name;
      }
      return MakeError(RequestErrorCode::kUnknownName, "policy",
                       "unknown policy \"" + policy + "\" (known: " + known + ")");
    }
    spec.config.sched = SchedConfigForPolicy(policy);
    resolved.policy = policy;
  } else {
    resolved.policy = EffectiveBalancerName(spec.config.sched);
  }

  // --- frequency governor ---------------------------------------------------
  if (!from_scenario || request.governor.has_value()) {
    const std::string governor = request.governor.value_or("none");
    if (!FrequencyGovernorRegistry::Global().Contains(governor)) {
      std::string known;
      for (const std::string& name : FrequencyGovernorRegistry::Global().Names()) {
        known += known.empty() ? name : ", " + name;
      }
      return MakeError(RequestErrorCode::kUnknownName, "governor",
                       "unknown governor \"" + governor + "\" (known: " + known + ")");
    }
    spec.config.frequency_governor = governor;
  }
  resolved.governor = spec.config.frequency_governor;

  // --- workload -------------------------------------------------------------
  if (!from_scenario) {
    // Non-scenario requests all draw from the default-model library; the
    // cache shares one immutable build across them.
    std::shared_ptr<const ProgramLibrary> library =
        cache != nullptr ? cache->DefaultLibrary(spec.config.model)
                         : std::make_shared<const ProgramLibrary>(spec.config.model);
    const std::string workload_spec = request.workload.value_or("mixed:3");
    Workload workload;
    if (workload_spec.rfind("trace:", 0) == 0) {
      std::string trace_error;
      if (!LoadTraceWorkload(workload_spec.substr(6), *library, &workload, &trace_error)) {
        return MakeError(RequestErrorCode::kBadValue, "workload",
                         "bad workload trace: " + trace_error);
      }
    } else {
      workload = Workload(ParseWorkloadSpec(workload_spec, *library));
    }
    if (workload.empty()) {
      return MakeError(RequestErrorCode::kBadValue, "workload",
                       "bad workload \"" + workload_spec + "\"");
    }
    workload.Retain(library);
    spec.workload = std::move(workload);
  }

  // --- duration / sweep ------------------------------------------------------
  if (!from_scenario || request.duration_s.has_value()) {
    const double duration_s = request.duration_s.value_or(120.0);
    // !(x > 0) also rejects NaN; the upper bound keeps the tick cast far
    // from Tick overflow (9e12 s ~ 285 millennia of simulated time).
    if (!(duration_s > 0.0) || duration_s > 9.0e12) {
      return MakeError(RequestErrorCode::kBadValue, "duration-s",
                       "bad duration-s: want > 0 (and sane) simulated seconds");
    }
    // Round, don't truncate: a tick count that round-tripped through
    // seconds (e.g. a bench's duration/1000.0) must resolve to exactly that
    // tick count, not one short.
    spec.options.duration_ticks = static_cast<Tick>(std::llround(duration_s * 1000.0));
  }
  if (!from_scenario) {
    spec.options.sample_interval_ticks = 500;
  }

  if (request.runs < 1) {
    return MakeError(RequestErrorCode::kBadValue, "runs", "bad runs: want >= 1");
  }
  resolved.specs = request.runs == 1
                       ? std::vector<ExperimentSpec>{std::move(spec)}
                       : ExperimentRunner::SeedSweep(spec, static_cast<std::size_t>(request.runs));
  return resolved;
}

RunRequest RunRequestForScenario(const std::string& scenario) {
  RunRequest request;
  request.scenario = scenario;
  return request;
}

std::vector<RunRequest> CannedScenarioRequests() {
  std::vector<RunRequest> requests;
  for (const std::string& name : ScenarioRegistry::Global().Names()) {
    requests.push_back(RunRequestForScenario(name));
  }
  return requests;
}

}  // namespace eas
