// RunRequest: one experiment run, described entirely as data.
//
// Every entry point used to hand-assemble the MachineConfig +
// Experiment::Options + ExperimentSpec trio; a RunRequest subsumes them
// behind the same declarative surface eastool's flags expose - scenario,
// policy, governor, topology, workload spec, duration, seed and run count -
// with a text round-trip, so a run can be described in a file, reproduced
// exactly, batched, and diffed:
//
//   # capping comparison, 4 seeds
//   scenario = dvfs-vs-throttle
//   policy = energy_aware
//   duration-s = 60
//   runs = 4
//
// ParseRunRequest reads that `key = value` format ('#' comments, blank
// lines; ';' separates pairs on one line, so a whole request fits on a
// batch-file line) and rejects unknown keys, duplicate keys and malformed
// values with a structured RequestError naming the offending line and key
// (src/api/request_error.h; Render() is the exact legacy diagnostic).
// FormatRunRequest renders the canonical text:
// FormatRunRequest(*ParseRunRequest(s)) is a fixed point.
//
// Optional fields distinguish "not specified" from any explicit value:
// unset fields inherit the scenario's setting when `scenario` names one,
// and the historical eastool defaults otherwise, so a request file and the
// equivalent flag invocation resolve to bit-identical runs.
//
// ResolveRunRequest turns a request into runnable ExperimentSpecs (one per
// run, seed-swept) plus the effective policy/governor names; feed those to
// RunSession (src/api/run_session.h) to execute and stream RunRecords into
// ResultSinks. The overload taking a ScenarioCache is the warm-process
// path: a resident service resolves thousands of requests against one
// cached scenario/program-library set instead of rebuilding per request
// (results are bit-identical either way - the cache is pure memoization of
// deterministic builds).

#ifndef SRC_API_RUN_REQUEST_H_
#define SRC_API_RUN_REQUEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/api/request_error.h"
#include "src/sim/experiment_runner.h"

namespace eas {

class ScenarioCache;

struct RunRequest {
  // Label for reports; defaults to the scenario name, or "cli".
  std::string name;

  // Client-chosen correlation label, echoed verbatim into every RunRecord
  // and JSONL line the request produces. Concurrent serve-mode clients use
  // it to demux streamed records; offline runs may use it to join sweep
  // outputs. Empty = untagged (output stays byte-identical to before the
  // key existed).
  std::string tag;

  // ScenarioRegistry name providing the base configuration; "" builds the
  // default machine (the paper's 8-way box) from the fields below instead.
  std::string scenario;

  // "nodes:physical-per-node:smt" (default "2:4:1").
  std::optional<std::string> topology;

  // Workload spec: the ParseWorkloadSpec mini-language
  // (mixed/homog/hot/short/list) or "trace:<file.csv>". Cannot be combined
  // with `scenario` (a scenario's workload is part of its identity);
  // default "mixed:3".
  std::optional<std::string> workload;

  // BalancePolicyRegistry name; "baseline"/"eas"/"temp-only" aliases and
  // '-' for '_' accepted. Default energy_aware.
  std::optional<std::string> policy;

  // FrequencyGovernorRegistry name; default "none" (P0 pinned).
  std::optional<std::string> governor;

  std::optional<double> duration_s;   // simulated seconds (default 120)
  std::optional<double> max_power;    // explicit per-package power limit (W)
  std::optional<double> temp_limit;   // derive per-package limits (default 38 C)
  std::optional<bool> throttle;       // enforce hlt throttling (default off)

  // Seeded fault plan (src/fault/fault_plan.h grammar: off/on/spike/clamp/
  // churn clauses), validated against the resolved topology. "none" cancels
  // a scenario's baked-in plan; unset inherits it (default: no faults).
  std::optional<std::string> faults;

  // Quiescent-span skip-ahead in the engine (default on). Results are
  // bit-identical either way; turning it off is the A/B timing escape hatch
  // (eastool --no-skip-ahead).
  std::optional<bool> skip_ahead;

  // Intra-run worker threads for the package-parallel tick pipeline
  // (MachineConfig::intra_run_threads). Default 0: the historical
  // interleaved per-package loop. >= 1 selects the sharded pipeline, whose
  // results are bit-identical for every worker count >= 1.
  std::optional<std::uint64_t> intra_threads;

  std::optional<std::uint64_t> seed;  // base seed (default 42)

  // Seed-sweep width: the request expands into `runs` specs seeded
  // [seed, seed + runs).
  std::uint64_t runs = 1;

  bool operator==(const RunRequest&) const = default;
};

// Parses the `key = value` request text; a RequestError naming the line and
// the offense on unknown/duplicate keys or malformed values.
Expected<RunRequest> ParseRunRequest(const std::string& text);

// Applies one `key = value` pair onto `request` with exactly the keys and
// value validation ParseRunRequest uses (exposed so eastool's flags share
// the request file's strictness - `--seed 4z2` must be rejected the same
// way `seed = 4z2` is). Returns the error (no line attribution) on an
// unknown key, an empty value, or a malformed value; std::nullopt on
// success.
std::optional<RequestError> ApplyRunRequestField(const std::string& key,
                                                 const std::string& value,
                                                 RunRequest* request);

// Canonical multi-line rendering: set fields only, fixed key order,
// shortest-round-trip numbers. Parse(Format(r)) == r for any valid r.
std::string FormatRunRequest(const RunRequest& request);

// The same canonical rendering on one line ("key = value; key = value"),
// the shape batch files hold one request per line.
std::string FormatRunRequestLine(const RunRequest& request);

// A resolved request: everything needed to run it and label the output.
struct ResolvedRequest {
  RunRequest request;
  std::string policy;                // effective balancing-policy name
  std::string governor;              // effective governor name
  std::vector<ExperimentSpec> specs; // one per run, in seed order
};

// Resolves `request` against the scenario/policy/governor registries with
// exactly the semantics eastool's flags always had: scenario first, explicit
// fields override, defaults fill the rest. A RequestError diagnosing the
// failure (unknown names list the known ones) when the request does not
// describe a runnable experiment. With a non-null `cache`, scenario specs
// and the default program library come from the cache instead of being
// rebuilt - byte-identical results, amortized build cost (the serve-mode
// warm path).
Expected<ResolvedRequest> ResolveRunRequest(const RunRequest& request,
                                            ScenarioCache* cache = nullptr);

// The canned request a registered scenario stands for (scenario = name,
// everything else inherited).
RunRequest RunRequestForScenario(const std::string& scenario);

// One canned request per registered scenario, sorted by name: the builtin
// catalogue as data.
std::vector<RunRequest> CannedScenarioRequests();

// Registry policy name for a CLI/request spelling: '-' matches '_', plus
// the aliases eastool has always accepted (baseline, eas, temp-only).
std::string NormalizePolicyName(std::string name);

}  // namespace eas

#endif  // SRC_API_RUN_REQUEST_H_
