// RequestError / Expected<T>: structured request diagnostics.
//
// The request surface used to report failure as bool-plus-std::string*: the
// caller got prose it could print but nothing it could branch on, and the
// daemon (src/service) cannot send prose alone - a client needs to know
// *whether* a rejection was a malformed request, an unknown registry name or
// backpressure, and which key/line offended. A RequestError carries the
// machine-readable triple (code, key, line) next to the exact legacy
// message, and Render() reproduces the historical diagnostic byte for byte,
// so eastool's stderr output is pinned unchanged while the daemon can
// serialize the structure (see RequestErrorToJson in src/service/wire.h).
//
// Expected<T> is the small success-or-RequestError carrier the request
// functions return; it is deliberately minimal (no monadic combinators),
// just enough to replace std::optional<T> + std::string* out-param pairs.

#ifndef SRC_API_REQUEST_ERROR_H_
#define SRC_API_REQUEST_ERROR_H_

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

namespace eas {

enum class RequestErrorCode {
  kSyntax,        // request text is not key = value lines
  kUnknownKey,    // key is not a request-file key
  kDuplicateKey,  // key given twice in one request
  kEmptyValue,    // key with no value
  kBadValue,      // value fails the key's validation
  kUnknownName,   // scenario/policy/governor/sink name not registered
  kQueueFull,     // service backpressure: bounded work queue cannot admit
  kShuttingDown,  // service is draining; no new submissions
  kProtocol,      // malformed service wire message
  kIo,            // socket/file transport failure
};

// Stable wire spelling of a code ("bad-value", "queue-full", ...): what the
// daemon serializes and clients/tests match on.
const char* RequestErrorCodeName(RequestErrorCode code);

struct RequestError {
  RequestErrorCode code = RequestErrorCode::kSyntax;

  // The offending request key ("seed", "scenario", ...); empty when the
  // error is not attributable to one (syntax errors, transport failures).
  std::string key;

  // 1-based line of the request text the error was found on; 0 when the
  // error has no line (field application, resolution, service errors).
  std::size_t line = 0;

  // The diagnostic, without any line prefix. Render() is the full legacy
  // message; keeping the prefix out of `message` lets the daemon report the
  // line as a field instead of prose.
  std::string message;

  // Exactly the string the bool-plus-std::string* convention produced:
  // "line N: <message>" when the error names a line, `message` otherwise.
  std::string Render() const {
    return line > 0 ? "line " + std::to_string(line) + ": " + message : message;
  }
};

// Success-or-error result of the request functions. Holds either a T or a
// RequestError; the accessors assume the caller checked ok() (they assert
// via std::optional's own contract in debug builds).
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}              // NOLINT(runtime/explicit)
  Expected(RequestError error) : error_(std::move(error)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  const RequestError& error() const { return *error_; }

 private:
  std::optional<T> value_;
  std::optional<RequestError> error_;
};

}  // namespace eas

#endif  // SRC_API_REQUEST_ERROR_H_
