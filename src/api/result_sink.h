// ResultSink: where completed runs go.
//
// The old surface returned a std::vector<RunResult> and left every caller
// to hand-roll its own CSV/JSON writing; a sink consumes RunRecords as the
// RunSession streams them (in record order, as runs complete) and renders
// one output format:
//
//   CsvSink       the summary/trace CSVs eastool always wrote - byte-
//                 identical for a single run, one row / one trace file per
//                 run for sweeps
//   JsonlSink     one JSON object per record (the bench report format)
//   AsciiPlotSink a thermal-power plot per record on a stdio stream
//
// All column names, values and presence rules come from the MetricRegistry
// (src/sim/metrics.h), so sinks never special-case governed vs ungoverned
// runs. Lifecycle: Begin(total) before the first record, Consume per
// record, Finish once by the owner when done (RunSession calls Begin and
// Consume; callers call Finish, which lets them append trailer content
// first). File sinks report I/O failure through ok()/error().

#ifndef SRC_API_RESULT_SINK_H_
#define SRC_API_RESULT_SINK_H_

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/api/run_record.h"
#include "src/base/ascii_plot.h"
#include "src/sim/metrics.h"

namespace eas {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  // Called once before the first record with the number of records the
  // session will emit (sum of every request's runs).
  virtual void Begin(std::size_t /*total_records*/) {}

  // Called once per record, in record order.
  virtual void Consume(const RunRecord& record) = 0;

  // Called once by the sink's owner after the last record; flushes and
  // closes. Idempotent.
  virtual void Finish() {}

  // False after an I/O failure; error() names the path and the offense.
  virtual bool ok() const { return true; }
  virtual std::string error() const { return ""; }
};

// The summary/trace CSV writer.
//
// Summary (`summary_path`): for a single-record session, exactly the
// historical `key,value` format (byte-identical to RunSummaryToCsv). For a
// multi-record session, a wide table - header `run,name,seed,<metric...>`
// where the metric columns are the union across every run's schema in
// first-seen order (so a batch mixing governed and ungoverned runs keeps
// the DVFS columns), then one row per run; a metric a run lacks renders as
// an empty cell. The table is assembled in Finish - scalar rows are tiny,
// so buffering them costs nothing and no run's columns can be lost.
//
// Trace (`trace_path`): the per-CPU thermal power trace of every run.
// Record 0 writes to `trace_path` itself (the historical name); record K>0
// writes to `trace_path`.runK.
class CsvSink : public ResultSink {
 public:
  CsvSink(std::string summary_path, std::string trace_path);

  void Begin(std::size_t total_records) override;
  void Consume(const RunRecord& record) override;
  void Finish() override;
  bool ok() const override { return error_.empty(); }
  std::string error() const override { return error_; }

  // The trace file a record index writes to (empty if traces are off).
  std::string TracePathFor(std::size_t index) const;

 private:
  // One buffered summary row of the multi-run table.
  struct Row {
    std::size_t index = 0;
    std::string name;
    std::uint64_t seed = 0;
    std::vector<MetricValue> metrics;
  };

  std::string summary_path_;
  std::string trace_path_;
  std::size_t total_records_ = 1;
  std::string summary_;     // single-run summary, accumulated in Consume
  std::vector<Row> rows_;   // multi-run rows, rendered in Finish
  bool finished_ = false;
  std::string error_;
};

// One JSON object per record: session metadata (name, seed, run index), the
// originating request as a single `key = value; ...` string (parseable back
// into a RunRequest), every scalar metric of the run, plus the record-
// derived peak_thermal_w / steady_spread_w the bench reports always
// carried. Callers may add
// their own header/trailer lines around the records with AppendLine - the
// bench sweeps put their run configuration first and wall-clock totals
// last.
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(std::string path);

  void Begin(std::size_t total_records) override;
  void Consume(const RunRecord& record) override;
  void Finish() override;
  bool ok() const override { return error_.empty(); }
  std::string error() const override { return error_; }

  // Writes one raw line (a complete JSON object) to the stream. Opens the
  // stream if Begin has not run yet.
  void AppendLine(const std::string& json_object);

 private:
  void EnsureOpen();

  std::string path_;
  std::ofstream stream_;
  bool opened_ = false;
  bool finished_ = false;
  std::string error_;
};

// Escapes `text` as the contents of a JSON string literal (quotes not
// included).
std::string JsonEscape(const std::string& text);

// Renders each record's thermal-power trace as the paper-style ASCII plot,
// with a per-run title line. `out` is borrowed, not owned.
class AsciiPlotSink : public ResultSink {
 public:
  explicit AsciiPlotSink(std::FILE* out, PlotOptions options = {});

  void Consume(const RunRecord& record) override;

 private:
  std::FILE* out_;
  PlotOptions options_;
};

}  // namespace eas

#endif  // SRC_API_RESULT_SINK_H_
