// ResultSink: where completed runs go.
//
// The old surface returned a std::vector<RunResult> and left every caller
// to hand-roll its own CSV/JSON writing; a sink consumes RunRecords as the
// RunSession streams them (in record order, as runs complete) and renders
// one output format:
//
//   CsvSink       the summary/trace CSVs eastool always wrote - byte-
//                 identical for a single run, one row / one trace file per
//                 run for sweeps
//   JsonlSink     one JSON object per record (the bench report format);
//                 path "-" streams to stdout
//   AsciiPlotSink a thermal-power plot per record, to a borrowed stdio
//                 stream or an owned file path
//
// Sinks are constructed directly or by name through the SinkRegistry
// ("csv:out.csv", "jsonl:-", ... - src/api/sink_registry.h), the same
// string-keyed pattern the policy/governor/scenario registries use.
//
// All column names, values and presence rules come from the MetricRegistry
// (src/sim/metrics.h), so sinks never special-case governed vs ungoverned
// runs. Lifecycle: Begin(total) before the first record, Consume per
// record, Finish once by the owner when done (RunSession calls Begin and
// Consume; callers call Finish, which lets them append trailer content
// first). File sinks report I/O failure through ok()/error().

#ifndef SRC_API_RESULT_SINK_H_
#define SRC_API_RESULT_SINK_H_

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/api/run_record.h"
#include "src/base/ascii_plot.h"
#include "src/sim/metrics.h"

namespace eas {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  // Called once before the first record with the number of records the
  // session will emit (sum of every request's runs).
  virtual void Begin(std::size_t /*total_records*/) {}

  // Called once per record, in record order.
  virtual void Consume(const RunRecord& record) = 0;

  // Called once by the sink's owner after the last record; flushes and
  // closes. Idempotent.
  virtual void Finish() {}

  // Writes one raw line around the records (bench sweeps put their run
  // configuration first and wall-clock totals last). Sinks whose format has
  // no place for free-form lines ignore it, so callers can hold any sink by
  // base pointer and still annotate.
  virtual void AppendLine(const std::string& /*line*/) {}

  // False after an I/O failure; error() names the path and the offense.
  virtual bool ok() const { return true; }
  virtual std::string error() const { return ""; }
};

// The summary/trace CSV writer.
//
// Summary (`summary_path`): for a single-record session, exactly the
// historical `key,value` format (byte-identical to RunSummaryToCsv). For a
// multi-record session, a wide table - header `run,name,seed,<metric...>`
// where the metric columns are the union across every run's schema in
// first-seen order (so a batch mixing governed and ungoverned runs keeps
// the DVFS columns), then one row per run; a metric a run lacks renders as
// an empty cell. The table is assembled in Finish - scalar rows are tiny,
// so buffering them costs nothing and no run's columns can be lost.
//
// Trace (`trace_path`): the per-CPU thermal power trace of every run.
// Record 0 writes to `trace_path` itself (the historical name); record K>0
// writes to `trace_path`.runK.
class CsvSink : public ResultSink {
 public:
  CsvSink(std::string summary_path, std::string trace_path);

  void Begin(std::size_t total_records) override;
  void Consume(const RunRecord& record) override;
  void Finish() override;
  bool ok() const override { return error_.empty(); }
  std::string error() const override { return error_; }

  // The trace file a record index writes to (empty if traces are off).
  std::string TracePathFor(std::size_t index) const;

 private:
  // One buffered summary row of the multi-run table.
  struct Row {
    std::size_t index = 0;
    std::string name;
    std::uint64_t seed = 0;
    std::vector<MetricValue> metrics;
  };

  std::string summary_path_;
  std::string trace_path_;
  std::size_t total_records_ = 1;
  std::string summary_;     // single-run summary, accumulated in Consume
  std::vector<Row> rows_;   // multi-run rows, rendered in Finish
  bool finished_ = false;
  std::string error_;
};

// The one JSON object a record renders as: session metadata (name, seed,
// run index), the originating request as a single `key = value; ...` string
// (parseable back into a RunRequest), the request's tag when set, every
// scalar metric of the run, plus the record-derived peak_thermal_w /
// steady_spread_w the bench reports always carried. This free function IS
// the record wire format: the experiment service streams exactly these
// bytes per record, which is what makes serve-mode output byte-comparable
// to an offline JsonlSink file.
std::string JsonlRecordLine(const RunRecord& record);

// Streams JsonlRecordLine per record to `path`, or to stdout for path "-".
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(std::string path);

  void Begin(std::size_t total_records) override;
  void Consume(const RunRecord& record) override;
  void Finish() override;
  bool ok() const override { return error_.empty(); }
  std::string error() const override { return error_; }

  // Writes one raw line (a complete JSON object) to the stream. Opens the
  // stream if Begin has not run yet.
  void AppendLine(const std::string& json_object) override;

 private:
  void EnsureOpen();

  std::string path_;
  std::ofstream stream_;
  std::ostream* out_ = nullptr;  // &stream_, or std::cout for path "-"
  bool opened_ = false;
  bool finished_ = false;
  std::string error_;
};

// Escapes `text` as the contents of a JSON string literal (quotes not
// included).
std::string JsonEscape(const std::string& text);

// Renders each record's thermal-power trace as the paper-style ASCII plot,
// with a per-run title line. The stream ctor borrows `out`; the path ctor
// opens and owns the file ("-" borrows stdout) and reports I/O failure
// through ok()/error().
class AsciiPlotSink : public ResultSink {
 public:
  explicit AsciiPlotSink(std::FILE* out, PlotOptions options = {});
  explicit AsciiPlotSink(const std::string& path, PlotOptions options = {});
  ~AsciiPlotSink() override;

  void Consume(const RunRecord& record) override;
  void Finish() override;
  bool ok() const override { return error_.empty(); }
  std::string error() const override { return error_; }

 private:
  std::FILE* out_;
  bool owned_ = false;
  bool finished_ = false;
  PlotOptions options_;
  std::string path_;
  std::string error_;
};

}  // namespace eas

#endif  // SRC_API_RESULT_SINK_H_
