#include "src/core/energy_balancer.h"

#include <cmath>

namespace eas {

EnergyLoadBalancer::EnergyLoadBalancer() : EnergyLoadBalancer(Options{}) {}

EnergyLoadBalancer::EnergyLoadBalancer(const Options& options) : options_(options) {}

EnergyLoadBalancer::Result EnergyLoadBalancer::Balance(int cpu, BalanceEnv& env) const {
  Result result;
  env.aggregate_cache().BeginPass(env);
  for (const DomainCursor& cursor : env.domains().StackFor(cpu)) {
    const SchedDomain* domain = cursor.domain;
    const CpuGroup* local_group = cursor.group;
    if (local_group == nullptr) {
      continue;
    }

    Result level_result;
    if ((domain->flags & kDomainNoEnergyBalance) == 0) {
      level_result = EnergyStep(cpu, *domain, *local_group, env);
    }
    level_result.load_migrations = LoadStep(cpu, *domain, *local_group, env);

    result.energy_migrations += level_result.energy_migrations;
    result.exchange_migrations += level_result.exchange_migrations;
    result.load_migrations += level_result.load_migrations;

    if (level_result.total() > 0) {
      // Imbalance resolved in the lowest domain possible; do not escalate.
      break;
    }
  }
  return result;
}

EnergyLoadBalancer::Result EnergyLoadBalancer::EnergyStep(int cpu, const SchedDomain& domain,
                                                          const CpuGroup& local_group,
                                                          BalanceEnv& env) const {
  Result result;

  BalanceAggregateCache& cache = env.aggregate_cache();
  auto rq_ratio = [&env](int c) { return env.RunqueuePowerRatio(c); };

  // 1. Group with the highest average runqueue power ratio.
  const CpuGroup* hottest_group = nullptr;
  double hottest_ratio = 0.0;
  for (const auto& group : domain.groups) {
    const double ratio = cache.RunqueuePowerRatio(group, env);
    if (hottest_group == nullptr || ratio > hottest_ratio) {
      hottest_group = &group;
      hottest_ratio = ratio;
    }
  }
  if (hottest_group == nullptr || hottest_group == &local_group) {
    return result;
  }

  // 2. Dual condition: hotter (slow thermal metric, hysteresis) AND consuming
  // more (fast runqueue metric, forbids over-pulling).
  const double local_rq_ratio = cache.RunqueuePowerRatio(local_group, env);
  const double local_thermal_ratio = cache.ThermalPowerRatio(local_group, env);
  const double remote_thermal_ratio = cache.ThermalPowerRatio(*hottest_group, env);
  if (remote_thermal_ratio <= local_thermal_ratio + options_.thermal_ratio_margin ||
      hottest_ratio <= local_rq_ratio + options_.rq_ratio_margin) {
    return result;
  }

  // Hottest queue within the group. Deep hierarchies descend the
  // child-domain links by cached group ratio (O(fanout x depth)); classic
  // machines keep the historical flat scan.
  const CpuGroup* scope = hottest_group;
  if (env.domains().num_levels() > 3) {
    while (scope->child_domain >= 0) {
      const SchedDomain& child =
          env.domains().domains()[static_cast<std::size_t>(scope->child_domain)];
      const CpuGroup* hottest_sub = nullptr;
      double hottest_sub_ratio = 0.0;
      for (const CpuGroup& sub : child.groups) {
        const double ratio = cache.RunqueuePowerRatio(sub, env);
        if (hottest_sub == nullptr || ratio > hottest_sub_ratio) {
          hottest_sub = &sub;
          hottest_sub_ratio = ratio;
        }
      }
      if (hottest_sub == nullptr) {
        break;
      }
      scope = hottest_sub;
    }
  }
  int hottest_cpu = -1;
  double hottest_cpu_ratio = 0.0;
  for (int remote_cpu : scope->cpus) {
    const double ratio = rq_ratio(remote_cpu);
    if (hottest_cpu < 0 || ratio > hottest_cpu_ratio) {
      hottest_cpu = remote_cpu;
      hottest_cpu_ratio = ratio;
    }
  }
  if (hottest_cpu < 0) {
    return result;
  }

  Runqueue& remote = env.runqueue(hottest_cpu);
  // Energy balancing levels queues that consist of *multiple* tasks
  // (Section 4); a single-task queue is hot task migration's business -
  // stealing its lone task would bounce work the migrator just placed.
  if (remote.nr_running() < 2) {
    return result;
  }
  Task* hot_task = remote.HottestQueued();
  if (hot_task == nullptr) {
    return result;
  }
  // 3. Pulling must reduce the imbalance: the task must be hotter than the
  // local queue's average power...
  const double task_power = hot_task->profile().power();
  if (task_power <= env.RunqueuePower(cpu) * options_.min_task_gain) {
    return result;
  }
  // ...and the hypothetical post-migration ratio gap must shrink, otherwise
  // the move would only flip the imbalance (over-balancing). If the pull
  // would create a load imbalance, a cool task returns in exchange (step 4),
  // so the hypothesis models the full swap.
  {
    Runqueue& local = env.runqueue(cpu);
    const double n_local = static_cast<double>(local.nr_running());
    const double n_remote = static_cast<double>(remote.nr_running());
    const double local_sum = n_local > 0 ? env.RunqueuePower(cpu) * n_local : 0.0;
    const double remote_sum = env.RunqueuePower(hottest_cpu) * n_remote;

    const bool would_exchange = n_local + 1.0 > n_remote;
    double exchange_power = 0.0;
    if (would_exchange) {
      const Task* cool = local.CoolestQueued();
      exchange_power = cool != nullptr ? cool->profile().power() : 0.0;
    }

    double new_local_sum = local_sum + task_power;
    double new_local_n = n_local + 1.0;
    double new_remote_sum = remote_sum - task_power;
    double new_remote_n = n_remote - 1.0;
    if (would_exchange && exchange_power > 0.0) {
      new_local_sum -= exchange_power;
      new_local_n -= 1.0;
      new_remote_sum += exchange_power;
      new_remote_n += 1.0;
    }
    const double new_local_ratio = new_local_sum / new_local_n / env.MaxPower(cpu);
    const double new_remote_ratio =
        new_remote_n > 0.0 ? new_remote_sum / new_remote_n / env.MaxPower(hottest_cpu)
                           : env.RunqueuePowerRatio(hottest_cpu);
    const double old_gap =
        std::fabs(env.RunqueuePowerRatio(hottest_cpu) - env.RunqueuePowerRatio(cpu));
    const double new_gap = std::fabs(new_remote_ratio - new_local_ratio);
    if (new_gap >= old_gap * options_.min_gap_shrink) {
      return result;
    }
  }
  if (!env.MigrateTask(hot_task, hottest_cpu, cpu)) {
    return result;
  }
  cache.InvalidateCpus(env, hottest_cpu, cpu);
  ++result.energy_migrations;

  // 4. Migrate a cool task back if the pull created a load imbalance.
  Runqueue& local = env.runqueue(cpu);
  if (local.nr_running() > remote.nr_running() + 1) {
    Task* cool_task = nullptr;
    for (Task* candidate : local.queued()) {
      if (candidate == hot_task) {
        continue;  // do not bounce the task we just pulled
      }
      if (cool_task == nullptr || candidate->profile().power() < cool_task->profile().power()) {
        cool_task = candidate;
      }
    }
    if (cool_task != nullptr && env.MigrateTask(cool_task, cpu, hottest_cpu)) {
      cache.InvalidateCpus(env, cpu, hottest_cpu);
      ++result.exchange_migrations;
    }
  }
  return result;
}

int EnergyLoadBalancer::LoadStep(int cpu, const SchedDomain& domain, const CpuGroup& local_group,
                                 BalanceEnv& env) const {
  BalanceAggregateCache& cache = env.aggregate_cache();

  const CpuGroup* busiest_group = nullptr;
  double busiest_load = 0.0;
  for (const auto& group : domain.groups) {
    const double load = cache.Load(group, env);
    if (busiest_group == nullptr || load > busiest_load) {
      busiest_group = &group;
      busiest_load = load;
    }
  }
  if (busiest_group == nullptr || busiest_group == &local_group) {
    return 0;
  }

  // Energy-aware task selection: pull heat from hotter groups, coolness from
  // cooler groups, so the load balancing does not create energy imbalances.
  const double local_thermal = cache.ThermalPowerRatio(local_group, env);
  const double remote_thermal = cache.ThermalPowerRatio(*busiest_group, env);
  PullPreference preference = PullPreference::kAny;
  if (remote_thermal > local_thermal + options_.thermal_ratio_margin) {
    preference = PullPreference::kHot;
  } else if (remote_thermal < local_thermal - options_.thermal_ratio_margin) {
    preference = PullPreference::kCool;
  }

  return LoadBalancer::PullFromBusiest(cpu, *busiest_group, preference,
                                       options_.min_load_imbalance, env);
}

}  // namespace eas
