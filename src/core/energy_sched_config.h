// Master switchboard for the energy-aware scheduling features.
//
// Experiments toggle features against the baseline: the paper's
// "energy balancing disabled" runs use plain load balancing and least-loaded
// initial placement; "enabled" runs use the merged balancer, hot task
// migration, and energy-aware placement.

#ifndef SRC_CORE_ENERGY_SCHED_CONFIG_H_
#define SRC_CORE_ENERGY_SCHED_CONFIG_H_

#include <string>

#include "src/base/time.h"
#include "src/core/energy_balancer.h"
#include "src/core/hot_task_migrator.h"

namespace eas {

// Which balancing algorithm runs when a CPU rebalances.
enum class BalancerKind {
  kLoadOnly,          // stock Linux: load balancing only (the baseline)
  kEnergyAware,       // the paper's merged dual-metric algorithm (Figure 4)
  kPowerOnly,         // strawman: runqueue power only (ping-pongs)
  kTemperatureOnly,   // strawman: thermal power only (over-balances)
};

struct EnergySchedConfig {
  bool energy_balancing = true;
  bool hot_task_migration = true;
  bool energy_aware_placement = true;

  // Effective only when energy_balancing is true; kLoadOnly is implied
  // otherwise.
  BalancerKind balancer_kind = BalancerKind::kEnergyAware;

  // Balancing policy selected by name through the BalancePolicyRegistry
  // (src/core/policy_registry.h). When empty, the name is derived from
  // `balancer_kind`; setting it overrides the enum and admits policies the
  // enum does not know about. Like `balancer_kind`, it only takes effect
  // while `energy_balancing` is true - disabling energy balancing always
  // means the stock "load_only" policy.
  std::string balancer_name;

  // Balancing cadence (per CPU). Linux rebalances every ~100-200 ms busy.
  Tick balance_interval_ticks = 200;
  // Idle CPUs try to pull work much more eagerly.
  Tick idle_balance_interval_ticks = 10;
  // Hot-task-migration trigger check cadence.
  Tick hot_check_interval_ticks = 100;

  EnergyLoadBalancer::Options balancer;
  HotTaskMigrator::Options hot_migration;

  // Everything off: stock Linux behaviour (the paper's baseline).
  static EnergySchedConfig Baseline() {
    EnergySchedConfig config;
    config.energy_balancing = false;
    config.hot_task_migration = false;
    config.energy_aware_placement = false;
    return config;
  }

  // Everything on (the paper's policy).
  static EnergySchedConfig EnergyAware() { return EnergySchedConfig(); }
};

}  // namespace eas

#endif  // SRC_CORE_ENERGY_SCHED_CONFIG_H_
