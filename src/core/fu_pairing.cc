#include "src/core/fu_pairing.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace eas {

double HotspotScore(const FuPowerVector& a, const FuPowerVector& b, double corun_speed) {
  double peak = 0.0;
  for (std::size_t i = 0; i < kNumFunctionalUnits; ++i) {
    peak = std::max(peak, (a[i] + b[i]) * corun_speed);
  }
  return peak;
}

std::vector<std::pair<std::size_t, std::size_t>> PairForMinimumHotspot(
    const std::vector<FuPowerVector>& profiles, double corun_speed) {
  assert(profiles.size() % 2 == 0);
  std::vector<bool> used(profiles.size(), false);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(profiles.size() / 2);

  for (std::size_t rounds = 0; rounds < profiles.size() / 2; ++rounds) {
    // Pick the unpaired task with the hottest single cluster first (it
    // constrains the solution most), then its best partner.
    std::size_t hottest = profiles.size();
    double hottest_peak = -1.0;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      if (used[i]) {
        continue;
      }
      const double peak = *std::max_element(profiles[i].begin(), profiles[i].end());
      if (peak > hottest_peak) {
        hottest_peak = peak;
        hottest = i;
      }
    }
    std::size_t best_partner = profiles.size();
    double best_score = std::numeric_limits<double>::max();
    for (std::size_t j = 0; j < profiles.size(); ++j) {
      if (used[j] || j == hottest) {
        continue;
      }
      const double score = HotspotScore(profiles[hottest], profiles[j], corun_speed);
      if (score < best_score) {
        best_score = score;
        best_partner = j;
      }
    }
    used[hottest] = true;
    used[best_partner] = true;
    pairs.emplace_back(hottest, best_partner);
  }
  return pairs;
}

std::vector<std::pair<std::size_t, std::size_t>> PairInOrder(std::size_t count) {
  assert(count % 2 == 0);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(count / 2);
  for (std::size_t i = 0; i + 1 < count; i += 2) {
    pairs.emplace_back(i, i + 1);
  }
  return pairs;
}

double PeakClusterPower(const std::vector<FuPowerVector>& profiles,
                        const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
                        double corun_speed) {
  double peak = 0.0;
  for (const auto& [a, b] : pairs) {
    peak = std::max(peak, HotspotScore(profiles[a], profiles[b], corun_speed));
  }
  return peak;
}

}  // namespace eas
