// Functional-unit aware co-scheduling (paper Section 7, future work).
//
// "Energy-aware scheduling would even be beneficial for tasks having the
// same power consumption, if they dissipate energy at different functional
// units, as is the case with floating point and integer applications."
//
// Tasks are characterized by a per-FU power vector (an FU profile, the
// natural extension of the scalar energy profile). When pairing tasks on
// SMT siblings, the hotspot score of a pairing is the power of the hottest
// cluster; minimizing it pairs integer-heavy with FP-heavy tasks even when
// the scalar profiles are identical.

#ifndef SRC_CORE_FU_PAIRING_H_
#define SRC_CORE_FU_PAIRING_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/thermal/fu_thermal.h"

namespace eas {

// Peak per-cluster power when `a` and `b` co-run (both scaled by the SMT
// co-run factor).
double HotspotScore(const FuPowerVector& a, const FuPowerVector& b, double corun_speed);

// Greedy minimum-hotspot pairing of an even number of FU profiles. Returns
// index pairs; the overall peak cluster power over all pairs is minimized
// greedily (optimal for the 2-cluster case, near-optimal in practice).
std::vector<std::pair<std::size_t, std::size_t>> PairForMinimumHotspot(
    const std::vector<FuPowerVector>& profiles, double corun_speed);

// The naive pairing (task order, what an FU-blind scheduler produces).
std::vector<std::pair<std::size_t, std::size_t>> PairInOrder(std::size_t count);

// Peak cluster power over a set of pairings.
double PeakClusterPower(const std::vector<FuPowerVector>& profiles,
                        const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
                        double corun_speed);

}  // namespace eas

#endif  // SRC_CORE_FU_PAIRING_H_
