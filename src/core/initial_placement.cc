#include "src/core/initial_placement.h"

#include <cmath>
#include <limits>

namespace eas {

int InitialPlacement::PlaceLeastLoaded(const BalanceEnv& env) {
  const std::size_t n = env.topology().num_logical();
  int best = 0;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t cpu = 0; cpu < n; ++cpu) {
    if (!env.CpuOnline(static_cast<int>(cpu))) {
      continue;
    }
    const std::size_t load = env.runqueue(static_cast<int>(cpu)).nr_running();
    if (load < best_load) {
      best_load = load;
      best = static_cast<int>(cpu);
    }
  }
  return best;
}

int InitialPlacement::Place(Task& task, const BalanceEnv& env,
                            const BinaryRegistry& registry) const {
  task.profile().Seed(registry.InitialPowerFor(task.program().binary_id()));
  const double task_power = task.profile().power();

  const std::size_t n = env.topology().num_logical();

  // Eligibility: no other CPU may be running fewer tasks, and (SMT) no other
  // candidate's package may be running fewer tasks - an idle sibling of a
  // busy die is no substitute for an idle die. Offline CPUs are never
  // candidates (with every CPU online the guards never fire).
  std::size_t min_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t cpu = 0; cpu < n; ++cpu) {
    if (!env.CpuOnline(static_cast<int>(cpu))) {
      continue;
    }
    min_load = std::min(min_load, env.runqueue(static_cast<int>(cpu)).nr_running());
  }
  auto package_load = [&env](int cpu) {
    std::size_t load = 0;
    for (int sibling : env.topology().SiblingsOf(cpu)) {
      load += env.runqueue(sibling).nr_running();
    }
    return load;
  };
  std::size_t min_package_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t cpu = 0; cpu < n; ++cpu) {
    if (!env.CpuOnline(static_cast<int>(cpu))) {
      continue;
    }
    if (env.runqueue(static_cast<int>(cpu)).nr_running() == min_load) {
      min_package_load = std::min(min_package_load, package_load(static_cast<int>(cpu)));
    }
  }

  // Target: the current average runqueue power ratio over all CPUs.
  double avg_ratio = 0.0;
  for (std::size_t cpu = 0; cpu < n; ++cpu) {
    avg_ratio += env.RunqueuePowerRatio(static_cast<int>(cpu));
  }
  avg_ratio /= static_cast<double>(n);

  int best = 0;
  double best_distance = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < n; ++i) {
    const int cpu = static_cast<int>(i);
    if (!env.CpuOnline(cpu)) {
      continue;
    }
    const Runqueue& rq = env.runqueue(cpu);
    if (rq.nr_running() != min_load || package_load(cpu) != min_package_load) {
      continue;
    }
    // Hypothetical runqueue power with the new task added.
    const std::size_t count = rq.nr_running();
    const double current_power = count == 0 ? 0.0 : env.RunqueuePower(cpu);
    const double hypothetical =
        (current_power * static_cast<double>(count) + task_power) /
        static_cast<double>(count + 1);
    const double ratio = hypothetical / env.MaxPower(cpu);
    const double distance = std::fabs(ratio - avg_ratio);
    if (distance < best_distance) {
      best_distance = distance;
      best = cpu;
    }
  }
  return best;
}

}  // namespace eas
