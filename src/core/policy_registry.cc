#include "src/core/policy_registry.h"

#include <stdexcept>
#include <type_traits>
#include <utility>

#include "src/core/energy_balancer.h"
#include "src/core/naive_balancers.h"
#include "src/sched/load_balancer.h"

namespace eas {
namespace {

// A balancer class declares `static constexpr bool kIdleMachineNoop = true`
// (with the proof in a comment at the declaration) to let the engine's
// skip-ahead elide its idle-interval passes; anything without the member
// stays conservatively on the naive path.
template <typename Balancer, typename = void>
struct IdleMachineNoopTrait : std::false_type {};
template <typename Balancer>
struct IdleMachineNoopTrait<Balancer, std::void_t<decltype(Balancer::kIdleMachineNoop)>>
    : std::bool_constant<Balancer::kIdleMachineNoop> {};

// Adapts a concrete balancer (each with its own Balance signature) to the
// BalancePolicy interface. `Balancer::Balance` must be callable as
// `balancer.Balance(cpu, env)`; the migration count is derived from the
// return value.
template <typename Balancer>
class PolicyAdapter : public BalancePolicy {
 public:
  PolicyAdapter(std::string name, Balancer balancer)
      : name_(std::move(name)), balancer_(std::move(balancer)) {}

  int Balance(int cpu, BalanceEnv& env) override {
    return Migrations(balancer_.Balance(cpu, env));
  }

  const std::string& name() const override { return name_; }

  bool IdleMachineIsNoop() const override { return IdleMachineNoopTrait<Balancer>::value; }

 private:
  static int Migrations(int count) { return count; }
  static int Migrations(const EnergyLoadBalancer::Result& result) { return result.total(); }

  std::string name_;
  Balancer balancer_;
};

template <typename Balancer>
std::unique_ptr<BalancePolicy> MakeAdapter(std::string name, Balancer balancer) {
  return std::make_unique<PolicyAdapter<Balancer>>(std::move(name), std::move(balancer));
}

void RegisterBuiltins(BalancePolicyRegistry& registry) {
  registry.Register("load_only", [](const EnergySchedConfig&) {
    return MakeAdapter("load_only", LoadBalancer(LoadBalancer::Options{}));
  });
  registry.Register("energy_aware", [](const EnergySchedConfig& config) {
    return MakeAdapter("energy_aware", EnergyLoadBalancer(config.balancer));
  });
  registry.Register("power_only", [](const EnergySchedConfig&) {
    return MakeAdapter("power_only", PowerOnlyBalancer());
  });
  registry.Register("temperature_only", [](const EnergySchedConfig&) {
    return MakeAdapter("temperature_only", TemperatureOnlyBalancer());
  });
}

}  // namespace

BalancePolicyRegistry& BalancePolicyRegistry::Global() {
  static BalancePolicyRegistry* registry = [] {
    auto* r = new BalancePolicyRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

bool BalancePolicyRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.emplace(name, std::move(factory)).second;
}

std::unique_ptr<BalancePolicy> BalancePolicyRegistry::Create(
    const std::string& name, const EnergySchedConfig& config) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return nullptr;
    }
    factory = it->second;
  }
  return factory(config);
}

std::unique_ptr<BalancePolicy> BalancePolicyRegistry::CreateOrThrow(
    const std::string& name, const EnergySchedConfig& config) const {
  std::unique_ptr<BalancePolicy> policy = Create(name, config);
  if (policy == nullptr) {
    std::string known;
    for (const std::string& candidate : Names()) {
      known += known.empty() ? candidate : ", " + candidate;
    }
    throw std::invalid_argument("unknown balancing policy \"" + name + "\" (known: " + known +
                                ")");
  }
  return policy;
}

bool BalancePolicyRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.contains(name);
}

std::vector<std::string> BalancePolicyRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

std::string EffectiveBalancerName(const EnergySchedConfig& config) {
  if (!config.energy_balancing) {
    return "load_only";
  }
  if (!config.balancer_name.empty()) {
    return config.balancer_name;
  }
  switch (config.balancer_kind) {
    case BalancerKind::kLoadOnly:
      return "load_only";
    case BalancerKind::kEnergyAware:
      return "energy_aware";
    case BalancerKind::kPowerOnly:
      return "power_only";
    case BalancerKind::kTemperatureOnly:
      return "temperature_only";
  }
  return "energy_aware";
}

EnergySchedConfig SchedConfigForPolicy(const std::string& name) {
  if (name == "load_only") {
    return EnergySchedConfig::Baseline();
  }
  EnergySchedConfig config = EnergySchedConfig::EnergyAware();
  config.balancer_name = name;
  return config;
}

}  // namespace eas
