#include "src/core/power_metrics.h"

namespace eas {

CpuPowerState::CpuPowerState(double max_power_watts, double tau_seconds,
                             double initial_power_watts)
    : max_power_watts_(max_power_watts),
      thermal_average_(ExpAverage::WithTimeConstant(tau_seconds, kTickSeconds)) {
  thermal_average_.Reset(initial_power_watts);
}

void CpuPowerState::AccountEnergy(double joules, double period_seconds) {
  // Rate per standard period (one tick) == average power over the period.
  thermal_average_.AddRateSample(joules / period_seconds, period_seconds);
}

void CpuPowerState::AccountEnergyRepeated(double joules, double period_seconds,
                                          std::int64_t n) {
  // The quotient is the same every period (identical operands), so one
  // division feeds the batched average update.
  thermal_average_.AddRateSamples(joules / period_seconds, period_seconds, n);
}

}  // namespace eas
