// Per-CPU power metrics (paper Section 4.3).
//
// Two metrics with deliberately different dynamics drive all decisions:
//  - runqueue power: the average of the energy profiles of the tasks in a
//    CPU's runqueue. Changes *immediately* when a task migrates, which keeps
//    a balancer from pulling an undue number of tasks.
//  - thermal power: a per-CPU exponential average of consumed energy whose
//    weight is calibrated to the RC model's time constant, so it follows
//    temperature. Changes *slowly*, which provides hysteresis.
// Both are expressed as ratios against the CPU's maximum power so CPUs with
// different cooling characteristics balance to the same temperature.

#ifndef SRC_CORE_POWER_METRICS_H_
#define SRC_CORE_POWER_METRICS_H_

#include "src/base/exp_average.h"
#include "src/base/time.h"

namespace eas {

class CpuPowerState {
 public:
  // `max_power_watts`: maximum sustainable power of this logical CPU;
  // `tau_seconds`: thermal time constant of the package (R*C);
  // `initial_power_watts`: seed for the thermal power average (idle power).
  CpuPowerState(double max_power_watts, double tau_seconds, double initial_power_watts);

  // Folds `joules` consumed over `period_seconds` into the thermal power.
  void AccountEnergy(double joules, double period_seconds);

  // Folds `n` identical periods in one call, bit-identically to n
  // AccountEnergy calls (the skip-ahead engine's idle-span integration).
  void AccountEnergyRepeated(double joules, double period_seconds, std::int64_t n);

  // Thermal power (W): follows the package temperature.
  double thermal_power() const { return thermal_average_.value(); }

  double max_power() const { return max_power_watts_; }
  void set_max_power(double watts) { max_power_watts_ = watts; }

  double thermal_power_ratio() const { return thermal_power() / max_power_watts_; }

  // Forces the thermal power (e.g. starting an experiment from idle-warm).
  void SeedThermalPower(double watts) { thermal_average_.Reset(watts); }

 private:
  double max_power_watts_;
  ExpAverage thermal_average_;
};

}  // namespace eas

#endif  // SRC_CORE_POWER_METRICS_H_
