// Hot task migration (paper Section 4.5, Figure 5; SMT rules Section 4.7).
//
// When a runqueue holds a single task and the CPU is about to reach its
// temperature limit (thermal power within a threshold of its maximum power),
// the task is migrated to a considerably cooler CPU instead of throttling
// the hot one. The destination search walks the domain hierarchy bottom-up
// (skipping SMT levels: a sibling shares the die and would not help) and
// accepts an idle CPU, or exchanges with a CPU running a cool task so no
// load imbalance arises. If even the top-level domain has no suitable CPU,
// all CPUs are hot and the task stays (and the CPU throttles).
//
// On SMT systems the trigger is the *sum* of the sibling thermal powers
// against the physical package's maximum power, since only physical
// processors overheat.

#ifndef SRC_CORE_HOT_TASK_MIGRATOR_H_
#define SRC_CORE_HOT_TASK_MIGRATOR_H_

#include <cstdint>

#include "src/sched/balance_env.h"

namespace eas {

class HotTaskMigrator {
 public:
  struct Options {
    // Trigger: thermal power within this margin of max power (W). Must be
    // wide enough that the migration check (every ~100 ms) fires before the
    // throttle controller does.
    double trigger_margin_watts = 2.0;
    // Destination must be cooler than the source by at least this much (W);
    // "considerably cooler" limits the migration frequency.
    double min_thermal_diff_watts = 10.0;
    // For an exchange, the destination's running task must be cooler than
    // the hot task by this margin (W).
    double exchange_margin_watts = 5.0;
  };

  HotTaskMigrator();
  explicit HotTaskMigrator(const Options& options);

  struct Result {
    bool migrated = false;
    bool exchanged = false;  // a cool task was moved back in exchange
    int destination = -1;
  };

  // Checks the trigger for `cpu` and performs the migration if a suitable
  // destination exists.
  Result Check(int cpu, BalanceEnv& env) const;

  // The trigger condition alone (exposed for tests and the machine's fast
  // path): true if the CPU is about to reach its limit and runs one task.
  bool ShouldMigrate(int cpu, const BalanceEnv& env) const;

  std::int64_t attempts() const { return attempts_; }

  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable std::int64_t attempts_ = 0;
};

}  // namespace eas

#endif  // SRC_CORE_HOT_TASK_MIGRATOR_H_
