// Merged energy and load balancing (paper Section 4.4, Figure 4).
//
// Runs on every CPU and pulls only. For every domain level bottom-up:
//
//  Energy step (skipped in domains flagged kDomainNoEnergyBalance):
//    1. find the CPU group with the highest average runqueue power ratio;
//    2. if it is not the local group AND the remote group is hotter (thermal
//       power ratio - slow, provides hysteresis) AND consuming more (runqueue
//       power ratio - fast, forbids pulling an undue number of tasks),
//       migrate the hottest queued task from the group's hottest queue here;
//    3. if that created a load imbalance, migrate a cool task back.
//
//  Load step:
//    4. find the group with the highest average runqueue length; if the
//       imbalance is large enough, pull from the longest queue - picking a
//       hot task if the remote group is hotter, a cool one if it is cooler,
//       so load balancing does not destroy energy balance.
//
// Imbalances are resolved in the lowest (cheapest) domain possible.

#ifndef SRC_CORE_ENERGY_BALANCER_H_
#define SRC_CORE_ENERGY_BALANCER_H_

#include <utility>

#include "src/sched/balance_env.h"
#include "src/sched/load_balancer.h"

namespace eas {

class EnergyLoadBalancer {
 public:
  struct Options {
    // Load imbalance (difference in nr_running) tolerated before pulling.
    std::size_t min_load_imbalance = 2;
    // The remote group must exceed the local group by these margins in
    // thermal power ratio / runqueue power ratio before heat is pulled.
    // The dual condition is the paper's ping-pong/over-balancing defence.
    double thermal_ratio_margin = 0.04;
    double rq_ratio_margin = 0.04;
    // Pulling a task must actually reduce the power-ratio spread: the pulled
    // task's profile must exceed the local runqueue power by this factor...
    double min_task_gain = 1.02;
    // ...and the hypothetical post-migration ratio gap between the two
    // queues must shrink by at least this factor (over-balancing defence:
    // a pull that would merely flip the imbalance is rejected).
    double min_gap_shrink = 0.85;
  };

  EnergyLoadBalancer();
  explicit EnergyLoadBalancer(const Options& options);

  // Idle-machine no-op guarantee (the engine's skip-ahead capability flag):
  // with every runqueue empty the energy step returns at its
  // remote.nr_running() < 2 guard and the load step inherits
  // LoadBalancer's min-imbalance exit, so a pass only reads aggregates
  // (the per-pass BalanceAggregateCache is reset on every pass, so skipped
  // passes leave nothing stale behind) and draws no RNG.
  static constexpr bool kIdleMachineNoop = true;

  struct Result {
    int energy_migrations = 0;    // hot pulls from the energy step
    int exchange_migrations = 0;  // cool tasks pushed back in exchange
    int load_migrations = 0;      // pulls from the load step

    int total() const { return energy_migrations + exchange_migrations + load_migrations; }
  };

  // One balancing pass for `cpu` (both steps, every level).
  Result Balance(int cpu, BalanceEnv& env) const;

  // Average of a per-CPU metric over a group (delegates to the sched-level
  // definition so the semantics cannot fork).
  template <typename Fn>
  static double GroupAverage(const CpuGroup& group, Fn&& metric) {
    return LoadBalancer::GroupAverage(group, std::forward<Fn>(metric));
  }

  const Options& options() const { return options_; }

 private:
  Options options_;

  // Returns migrations performed by the energy step at this domain.
  Result EnergyStep(int cpu, const SchedDomain& domain, const CpuGroup& local_group,
                    BalanceEnv& env) const;
  // Returns pulls performed by the load step at this domain.
  int LoadStep(int cpu, const SchedDomain& domain, const CpuGroup& local_group,
               BalanceEnv& env) const;
};

}  // namespace eas

#endif  // SRC_CORE_ENERGY_BALANCER_H_
