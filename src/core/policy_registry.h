// Name -> factory registry for balancing policies.
//
// The engine selects its BalancePolicy by string (EnergySchedConfig::
// balancer_name), so experiments switch policies from configuration or
// command-line flags without touching scheduler or engine code. Factories
// receive the EnergySchedConfig and build the policy with its options (e.g.
// the energy balancer's margins).
//
// Built-in policies ("load_only", "energy_aware", "power_only",
// "temperature_only") are registered on first access; additional policies
// can be registered at runtime (e.g. from tests or tools).

#ifndef SRC_CORE_POLICY_REGISTRY_H_
#define SRC_CORE_POLICY_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/energy_sched_config.h"
#include "src/sched/balance_policy.h"

namespace eas {

class BalancePolicyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<BalancePolicy>(const EnergySchedConfig&)>;

  // The process-wide registry, with the built-in policies pre-registered.
  static BalancePolicyRegistry& Global();

  // Registers `factory` under `name`. Returns false (and leaves the existing
  // entry) if the name is already taken.
  bool Register(const std::string& name, Factory factory);

  // Builds the policy registered under `name`; nullptr if unknown.
  std::unique_ptr<BalancePolicy> Create(const std::string& name,
                                        const EnergySchedConfig& config) const;

  // Like Create, but throws std::invalid_argument naming the known policies
  // when `name` is unknown - the engine's constructor path.
  std::unique_ptr<BalancePolicy> CreateOrThrow(const std::string& name,
                                               const EnergySchedConfig& config) const;

  bool Contains(const std::string& name) const;

  // Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  BalancePolicyRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

// The balancing policy `config` asks for: "load_only" when energy balancing
// is disabled; otherwise `config.balancer_name`, falling back to the legacy
// `balancer_kind` enum when the name is empty.
std::string EffectiveBalancerName(const EnergySchedConfig& config);

// The scheduling configuration a registry policy name stands for:
// "load_only" is the paper's full baseline (plain load balancing, no hot
// task migration, no energy-aware placement); any other name keeps the
// energy-aware feature set and selects that balancing policy by name. The
// name is not validated here - resolve it against a BalancePolicyRegistry
// (unknown names throw from the engine's CreateOrThrow path).
EnergySchedConfig SchedConfigForPolicy(const std::string& name);

}  // namespace eas

#endif  // SRC_CORE_POLICY_REGISTRY_H_
