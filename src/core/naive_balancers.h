// The two single-metric balancing algorithms the paper rejects (Section 4.3)
// - implemented for real so the failure modes are measurable:
//
//  * PowerOnlyBalancer decides on runqueue power alone. Power reacts
//    instantly, so two CPUs can keep trading the same task: the pull flips
//    the power comparison immediately and the next balancing pass on the
//    other CPU pulls it back ("ping-pong effects").
//
//  * TemperatureOnlyBalancer decides on thermal power alone. Temperature
//    lags: after all hot tasks left a CPU it *still* looks hot, so the
//    balancer keeps pulling until the imbalance is flipped in the opposite
//    direction ("over-balancing"), which later needs correcting again.
//
// Both reuse the load-step of the baseline balancer so fairness stays
// intact; only the energy step differs from the paper's dual-metric design.

#ifndef SRC_CORE_NAIVE_BALANCERS_H_
#define SRC_CORE_NAIVE_BALANCERS_H_

#include "src/sched/balance_env.h"

namespace eas {

class PowerOnlyBalancer {
 public:
  struct Options {
    double ratio_margin = 0.04;          // same margin as the real balancer
    std::size_t min_load_imbalance = 2;
  };

  PowerOnlyBalancer();
  explicit PowerOnlyBalancer(const Options& options);

  // Idle-machine no-op (skip-ahead capability): NaiveBalance only pulls from
  // queues with nr_running() >= 2 and the trailing load step exits on the
  // min-imbalance guard, so an all-idle pass mutates nothing.
  static constexpr bool kIdleMachineNoop = true;

  // One pass for `cpu`; returns tasks migrated.
  int Balance(int cpu, BalanceEnv& env) const;

 private:
  Options options_;
};

class TemperatureOnlyBalancer {
 public:
  struct Options {
    double ratio_margin = 0.04;
    std::size_t min_load_imbalance = 2;
  };

  TemperatureOnlyBalancer();
  explicit TemperatureOnlyBalancer(const Options& options);

  // Idle-machine no-op (skip-ahead capability): same shape as
  // PowerOnlyBalancer - NaiveBalance's nr_running() >= 2 pull guard plus the
  // load step's min-imbalance exit.
  static constexpr bool kIdleMachineNoop = true;

  int Balance(int cpu, BalanceEnv& env) const;

 private:
  Options options_;
};

}  // namespace eas

#endif  // SRC_CORE_NAIVE_BALANCERS_H_
