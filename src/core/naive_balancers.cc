#include "src/core/naive_balancers.h"

#include "src/core/energy_balancer.h"
#include "src/sched/load_balancer.h"

namespace eas {
namespace {

// Shared skeleton: pull the hottest queued task from the group that `metric`
// declares hottest, then run a plain load step. No dual condition, no
// improvement hypothesis - that is the point of these strawmen.
template <typename Metric>
int NaiveBalance(int cpu, BalanceEnv& env, Metric&& metric, double margin,
                 std::size_t min_load_imbalance) {
  int migrated = 0;
  for (const DomainCursor& cursor : env.domains().StackFor(cpu)) {
    const SchedDomain* domain = cursor.domain;
    const CpuGroup* local_group = cursor.group;
    if (local_group == nullptr) {
      continue;
    }

    if ((domain->flags & kDomainNoEnergyBalance) == 0) {
      const CpuGroup* hottest_group = nullptr;
      double hottest = 0.0;
      for (const auto& group : domain->groups) {
        const double value = EnergyLoadBalancer::GroupAverage(group, metric);
        if (hottest_group == nullptr || value > hottest) {
          hottest_group = &group;
          hottest = value;
        }
      }
      if (hottest_group != nullptr && hottest_group != local_group &&
          hottest > EnergyLoadBalancer::GroupAverage(*local_group, metric) + margin) {
        int hottest_cpu = -1;
        double hottest_value = 0.0;
        for (int remote : hottest_group->cpus) {
          const double value = metric(remote);
          if (hottest_cpu < 0 || value > hottest_value) {
            hottest_cpu = remote;
            hottest_value = value;
          }
        }
        if (hottest_cpu >= 0 && env.runqueue(hottest_cpu).nr_running() >= 2) {
          Task* task = env.runqueue(hottest_cpu).HottestQueued();
          if (task != nullptr && env.MigrateTask(task, hottest_cpu, cpu)) {
            env.aggregate_cache().InvalidateCpus(env, hottest_cpu, cpu);
            ++migrated;
            // Keep load sane, as the real algorithm does.
            Runqueue& local = env.runqueue(cpu);
            Runqueue& remote = env.runqueue(hottest_cpu);
            if (local.nr_running() > remote.nr_running() + 1) {
              Task* cool = local.CoolestQueued();
              if (cool != nullptr && cool != task &&
                  env.MigrateTask(cool, cpu, hottest_cpu)) {
                env.aggregate_cache().InvalidateCpus(env, cpu, hottest_cpu);
                ++migrated;
              }
            }
          }
        }
      }
    }

    // Plain load step.
    LoadBalancer::Options load_options;
    load_options.min_imbalance = min_load_imbalance;
    migrated += LoadBalancer(load_options).Balance(cpu, env);

    if (migrated > 0) {
      break;
    }
  }
  return migrated;
}

}  // namespace

PowerOnlyBalancer::PowerOnlyBalancer() : PowerOnlyBalancer(Options{}) {}
PowerOnlyBalancer::PowerOnlyBalancer(const Options& options) : options_(options) {}

int PowerOnlyBalancer::Balance(int cpu, BalanceEnv& env) const {
  return NaiveBalance(
      cpu, env, [&env](int c) { return env.RunqueuePowerRatio(c); }, options_.ratio_margin,
      options_.min_load_imbalance);
}

TemperatureOnlyBalancer::TemperatureOnlyBalancer() : TemperatureOnlyBalancer(Options{}) {}
TemperatureOnlyBalancer::TemperatureOnlyBalancer(const Options& options) : options_(options) {}

int TemperatureOnlyBalancer::Balance(int cpu, BalanceEnv& env) const {
  return NaiveBalance(
      cpu, env, [&env](int c) { return env.ThermalPowerRatio(c); }, options_.ratio_margin,
      options_.min_load_imbalance);
}

}  // namespace eas
