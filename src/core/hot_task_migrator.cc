#include "src/core/hot_task_migrator.h"

namespace eas {

HotTaskMigrator::HotTaskMigrator() : HotTaskMigrator(Options{}) {}

HotTaskMigrator::HotTaskMigrator(const Options& options) : options_(options) {}

bool HotTaskMigrator::ShouldMigrate(int cpu, const BalanceEnv& env) const {
  const Runqueue& rq = env.runqueue(cpu);
  if (rq.nr_running() != 1 || rq.current() == nullptr) {
    return false;
  }
  // Only physical packages overheat: on SMT, trigger on the sum of the
  // sibling thermal powers against the package max (= sum of logical maxes).
  double thermal_sum = 0.0;
  double max_sum = 0.0;
  for (int sibling : env.topology().SiblingsOf(cpu)) {
    thermal_sum += env.ThermalPower(sibling);
    max_sum += env.MaxPower(sibling);
  }
  return thermal_sum > max_sum - options_.trigger_margin_watts;
}

HotTaskMigrator::Result HotTaskMigrator::Check(int cpu, BalanceEnv& env) const {
  Result result;
  if (!ShouldMigrate(cpu, env)) {
    return result;
  }
  ++attempts_;

  Task* hot_task = env.runqueue(cpu).current();
  const CpuTopology& topo = env.topology();

  // Coolness is a *package* property: an idle logical CPU on a hot package
  // is no refuge, its die is the problem (Section 4.7).
  auto package_thermal = [&](int logical) {
    double sum = 0.0;
    for (int sibling : topo.SiblingsOf(logical)) {
      sum += env.ThermalPower(sibling);
    }
    return sum;
  };
  const double source_thermal = package_thermal(cpu);

  for (const DomainCursor& cursor : env.domains().StackFor(cpu)) {
    const SchedDomain* domain = cursor.domain;
    if ((domain->flags & kDomainNoEnergyBalance) != 0) {
      // SMT level: migrating to a sibling on the same die does not help.
      continue;
    }

    // Coolest candidate within the domain (never on the source's package);
    // within the coolest package, prefer the coolest logical CPU.
    int coolest = -1;
    double coolest_package = 0.0;
    for (int candidate : domain->cpus) {
      if (candidate == cpu || topo.AreSiblings(candidate, cpu) || !env.CpuOnline(candidate)) {
        continue;
      }
      const double pkg = package_thermal(candidate);
      if (coolest < 0 || pkg < coolest_package ||
          (pkg == coolest_package && env.ThermalPower(candidate) < env.ThermalPower(coolest))) {
        coolest = candidate;
        coolest_package = pkg;
      }
    }
    if (coolest < 0) {
      continue;
    }
    // Must be considerably cooler, or the task would bounce right back.
    if (source_thermal - coolest_package < options_.min_thermal_diff_watts) {
      continue;  // ascend: maybe a higher-level domain has a cooler CPU
    }

    Runqueue& dest = env.runqueue(coolest);
    if (dest.Idle()) {
      if (env.MigrateTask(hot_task, cpu, coolest)) {
        env.aggregate_cache().InvalidateCpus(env, cpu, coolest);
        result.migrated = true;
        result.destination = coolest;
      }
      return result;
    }

    // Exchange with a CPU running a single cool task (no load imbalance).
    Task* dest_task = dest.current();
    if (dest.nr_running() == 1 && dest_task != nullptr &&
        dest_task->profile().power() + options_.exchange_margin_watts <
            hot_task->profile().power()) {
      // The two halves are reported independently: if the return exchange
      // fails, the hot task still moved and the statistics must say so.
      if (env.MigrateTask(hot_task, cpu, coolest)) {
        result.migrated = true;
        result.destination = coolest;
        result.exchanged = env.MigrateTask(dest_task, coolest, cpu);
        env.aggregate_cache().InvalidateCpus(env, cpu, coolest);
      }
      return result;
    }
    // Destination busy with a hot task: ascend one level.
  }
  return result;
}

}  // namespace eas
