// Energy-aware initial task placement (paper Section 4.6).
//
// A new task's energy profile is seeded from the binary registry (the energy
// its binary consumed during its first timeslice on an earlier run, or a
// default). Placement then avoids load imbalances first - only CPUs with the
// minimum number of running tasks are eligible - and among those picks the
// CPU whose hypothetical runqueue power ratio (including the new task) comes
// closest to the system-wide average ratio: hot tasks land on cool CPUs and
// cool tasks on hot CPUs.

#ifndef SRC_CORE_INITIAL_PLACEMENT_H_
#define SRC_CORE_INITIAL_PLACEMENT_H_

#include "src/sched/balance_env.h"
#include "src/task/binary_registry.h"

namespace eas {

class InitialPlacement {
 public:
  InitialPlacement() = default;

  // Seeds `task`'s profile from `registry` and returns the CPU it should
  // start on. Does not enqueue.
  int Place(Task& task, const BalanceEnv& env, const BinaryRegistry& registry) const;

  // Baseline placement (energy-unaware): the least loaded CPU, ties broken
  // by lowest id - what stock Linux does on exec.
  static int PlaceLeastLoaded(const BalanceEnv& env);
};

}  // namespace eas

#endif  // SRC_CORE_INITIAL_PLACEMENT_H_
