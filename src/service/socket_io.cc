#include "src/service/socket_io.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace eas {
namespace {

RequestError IoError(std::string message) {
  RequestError error;
  error.code = RequestErrorCode::kIo;
  error.message = std::move(message);
  return error;
}

// Fills a sockaddr_un for `path`; false if the path does not fit (sun_path
// is ~108 bytes - long TMPDIRs can exceed it).
bool FillAddress(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) {
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

Expected<UnixServerSocket> UnixServerSocket::Bind(const std::string& path) {
  sockaddr_un addr;
  if (!FillAddress(path, &addr)) {
    return IoError("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError("socket(): " + std::string(std::strerror(errno)));
  }
  // A stale file from a crashed daemon would make bind fail with
  // EADDRINUSE even though nobody is listening; replace it.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return IoError("bind(" + path + "): " + detail);
  }
  if (::listen(fd, 64) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return IoError("listen(" + path + "): " + detail);
  }
  return UnixServerSocket(fd, path);
}

UnixServerSocket::UnixServerSocket(UnixServerSocket&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

UnixServerSocket::~UnixServerSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

std::optional<int> UnixServerSocket::Accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) {
    return std::nullopt;
  }
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    return std::nullopt;
  }
  return client;
}

Expected<int> ConnectUnix(const std::string& path) {
  sockaddr_un addr;
  if (!FillAddress(path, &addr)) {
    return IoError("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError("socket(): " + std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return IoError("connect(" + path + "): " + detail + " (is the service running?)");
  }
  return fd;
}

LineChannel::LineChannel(LineChannel&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LineChannel::~LineChannel() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool LineChannel::ReadLine(std::string* line) {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (got == 0) {
      // EOF: hand a trailing unterminated fragment to the caller once.
      if (!buffer_.empty()) {
        *line = std::move(buffer_);
        buffer_.clear();
        return true;
      }
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

bool LineChannel::WriteLine(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE here instead of
    // killing the process with SIGPIPE.
    const ssize_t wrote =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

}  // namespace eas
