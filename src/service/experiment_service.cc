#include "src/service/experiment_service.h"

#include <exception>
#include <utility>

#include "src/api/result_sink.h"
#include "src/api/run_record.h"

namespace eas {
namespace {

RequestError ServiceError(RequestErrorCode code, std::string message) {
  RequestError error;
  error.code = code;
  error.message = std::move(message);
  return error;
}

}  // namespace

ExperimentService::ExperimentService(ServiceOptions options)
    : options_(options), queue_(options.queue_depth) {
  if (options_.workers == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    options_.workers = hardware > 0 ? hardware : 1;
  }
  if (options_.start_workers) {
    workers_.reserve(options_.workers);
    for (std::size_t i = 0; i < options_.workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ExperimentService::~ExperimentService() { Shutdown(); }

Expected<SubmitResult> ExperimentService::Submit(const std::string& request_text,
                                                 RecordFn on_record, DoneFn on_done) {
  auto results = SubmitBatch({request_text}, std::move(on_record), std::move(on_done));
  if (!results.ok()) {
    return results.error();
  }
  return (*results)[0];
}

Expected<std::vector<SubmitResult>> ExperimentService::SubmitBatch(
    const std::vector<std::string>& request_texts, RecordFn on_record, DoneFn on_done) {
  if (shutting_down_.load()) {
    ++rejected_submissions_;
    return ServiceError(RequestErrorCode::kShuttingDown,
                        "service is shutting down; no new submissions");
  }
  // Validate everything before admitting anything: a batch with one bad
  // request is rejected whole, with that request's own diagnostic.
  std::vector<std::shared_ptr<Submission>> submissions;
  std::vector<Job> jobs;
  for (const std::string& text : request_texts) {
    auto parsed = ParseRunRequest(text);
    if (!parsed.ok()) {
      ++rejected_submissions_;
      return parsed.error();
    }
    auto resolved = ResolveRunRequest(*parsed, &cache_);
    if (!resolved.ok()) {
      ++rejected_submissions_;
      return resolved.error();
    }
    auto submission = std::make_shared<Submission>();
    submission->request = resolved->request;
    submission->specs = std::move(resolved->specs);
    submission->on_record = on_record;
    submission->on_done = on_done;
    submission->remaining.store(submission->specs.size());
    for (std::size_t i = 0; i < submission->specs.size(); ++i) {
      jobs.push_back(Job{submission, i});
    }
    submissions.push_back(std::move(submission));
  }

  {
    // Reserve the outstanding count before the push: a worker may finish a
    // job before TryPushBatch even returns.
    std::lock_guard<std::mutex> lock(drain_mutex_);
    outstanding_jobs_ += jobs.size();
  }
  const std::size_t job_count = jobs.size();
  std::vector<SubmitResult> results;
  results.reserve(submissions.size());
  {
    // Ids are written into the submissions *before* the push makes their
    // jobs visible - a worker can pop a job and stream its first record
    // before TryPushBatch even returns. The admission mutex makes (assign,
    // push) atomic, so a rejected batch hands its ids back untouched.
    std::lock_guard<std::mutex> admission(admission_mutex_);
    const std::uint64_t first_id = next_submission_;
    for (const auto& submission : submissions) {
      submission->id = next_submission_++;
      results.push_back(SubmitResult{submission->id, submission->specs.size()});
    }
    if (!queue_.TryPushBatch(std::move(jobs))) {
      next_submission_ = first_id;
      {
        std::lock_guard<std::mutex> lock(drain_mutex_);
        outstanding_jobs_ -= job_count;
      }
      ++rejected_submissions_;
      return ServiceError(RequestErrorCode::kQueueFull,
                          "queue full: need " + std::to_string(job_count) + " slots, capacity " +
                              std::to_string(queue_.capacity()));
    }
  }
  return results;
}

void ExperimentService::WorkerLoop() {
  while (true) {
    std::optional<Job> job = queue_.Pop();
    if (!job.has_value()) {
      return;  // shutdown and the backlog is drained
    }
    ++in_flight_;
    RunJob(*job);
    --in_flight_;
    FinishJob();
  }
}

void ExperimentService::RunJob(const Job& job) {
  Submission& submission = *job.submission;
  const ExperimentSpec& spec = submission.specs[job.index];
  try {
    Experiment experiment(spec.config, spec.options);
    RunResult result = experiment.Run(spec.workload);

    RunRecord record;
    record.request = submission.request;
    record.spec = spec;
    record.index = job.index;
    record.total = submission.specs.size();
    record.result = std::move(result);

    StreamedRecord streamed;
    streamed.submission = submission.id;
    streamed.index = job.index;
    streamed.total = record.total;
    streamed.tag = submission.request.tag;
    streamed.jsonl = JsonlRecordLine(record);
    ++completed_runs_;
    if (submission.on_record) {
      submission.on_record(streamed);
    }
  } catch (const std::exception& e) {
    // Resolution pre-validates requests, so a throw here (e.g. bad_alloc)
    // is exceptional; keep the first diagnostic for on_done.
    std::lock_guard<std::mutex> lock(submission.error_mutex);
    if (submission.error.empty()) {
      submission.error = e.what();
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(submission.error_mutex);
    if (submission.error.empty()) {
      submission.error = "unknown run failure";
    }
  }
  if (submission.remaining.fetch_sub(1) == 1) {
    ++completed_submissions_;
    if (submission.on_done) {
      std::string error;
      {
        std::lock_guard<std::mutex> lock(submission.error_mutex);
        error = submission.error;
      }
      submission.on_done(submission.id, submission.specs.size(), error);
    }
  }
}

void ExperimentService::FinishJob() {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  --outstanding_jobs_;
  if (outstanding_jobs_ == 0) {
    drained_.notify_all();
  }
}

ServiceStatusSnapshot ExperimentService::Status() const {
  ServiceStatusSnapshot status;
  status.queue_capacity = queue_.capacity();
  status.queued = queue_.size();
  status.in_flight = in_flight_.load();
  status.completed_runs = completed_runs_.load();
  status.completed_submissions = completed_submissions_.load();
  status.rejected_submissions = rejected_submissions_.load();
  status.workers = options_.start_workers ? options_.workers : 0;
  // easlint: allow(determinism-wall-clock) -- status reporting, never feeds results
  const auto now = std::chrono::steady_clock::now();
  status.uptime_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - start_time_).count();
  status.runs_per_s =
      status.uptime_s > 0.0 ? static_cast<double>(status.completed_runs) / status.uptime_s : 0.0;
  const ScenarioCache::Stats cache_stats = cache_.stats();
  status.scenario_cache_hits = cache_stats.scenario_hits + cache_stats.library_hits;
  status.scenario_cache_misses = cache_stats.scenario_misses + cache_stats.library_misses;
  status.cache_scenario_hits = cache_stats.scenario_hits;
  status.cache_scenario_misses = cache_stats.scenario_misses;
  status.cache_library_hits = cache_stats.library_hits;
  status.cache_library_misses = cache_stats.library_misses;
  return status;
}

void ExperimentService::Drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [this] { return outstanding_jobs_ == 0; });
}

void ExperimentService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    if (shut_down_) {
      return;
    }
    shut_down_ = true;
  }
  shutting_down_.store(true);
  queue_.Shutdown();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

}  // namespace eas
