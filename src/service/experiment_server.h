// ExperimentServer: the Unix-socket daemon around ExperimentService.
//
// `eastool serve` constructs one of these; it owns the listening socket,
// accepts connections on a dedicated thread, and speaks the line protocol
// of wire.h per connection (one handler thread each; record streaming
// happens on service worker threads, serialized per connection by a write
// mutex). The server adds no execution semantics of its own - every
// submit/status/shutdown verb maps 1:1 onto the transport-free
// ExperimentService call the in-process tests exercise, so socket clients
// and direct callers observe identical behavior, including byte-identical
// record payloads.
//
// Shutdown: a client `shutdown` verb (or Stop()) ends the accept loop;
// Wait() then drains every admitted job through ExperimentService::Shutdown
// before returning - accepted work always completes.

#ifndef SRC_SERVICE_EXPERIMENT_SERVER_H_
#define SRC_SERVICE_EXPERIMENT_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/service/experiment_service.h"
#include "src/service/socket_io.h"

namespace eas {

struct ServerOptions {
  std::string socket_path;
  ServiceOptions service;
};

class ExperimentServer {
 public:
  // Binds the socket and starts the accept loop; the bound server, or the
  // bind failure.
  static Expected<std::unique_ptr<ExperimentServer>> Start(ServerOptions options);

  ~ExperimentServer();

  ExperimentServer(const ExperimentServer&) = delete;
  ExperimentServer& operator=(const ExperimentServer&) = delete;

  // Blocks until a shutdown request (client verb or Stop), then drains the
  // service and joins every connection.
  void Wait();

  // Programmatic shutdown trigger (signal handlers, tests).
  void Stop() { stop_.store(true); }

  const std::string& socket_path() const { return socket_->path(); }
  ExperimentService& service() { return service_; }

 private:
  explicit ExperimentServer(ServerOptions options, UnixServerSocket socket);

  void AcceptLoop();
  void HandleConnection(int fd);

  ServiceOptions service_options_;
  ExperimentService service_;
  std::unique_ptr<UnixServerSocket> socket_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connections_;
};

}  // namespace eas

#endif  // SRC_SERVICE_EXPERIMENT_SERVER_H_
