// ExperimentService: the resident run-execution engine behind eastool serve.
//
// One process holds the warm state an offline eastool invocation rebuilds
// every time - resolved scenarios and the program library (ScenarioCache) -
// and executes submissions against a persistent worker pool, so a sweep
// driven by many small requests stops paying process startup + workload
// generation per run. The daemon front half (socket accept, wire framing)
// lives in experiment_server.h; this class is the transport-free core the
// in-process tests drive directly.
//
// Submission lifecycle:
//
//   Submit/SubmitBatch  parse + resolve synchronously (so every malformed
//                       request is rejected before anything queues, with
//                       the same RequestError offline parsing produces),
//                       expand into one job per run, and admit all jobs
//                       all-or-nothing into the bounded queue - a refusal
//                       is an explicit kQueueFull error, never a partial
//                       submission. SubmitBatch is atomic across requests.
//   workers             pop jobs, run them (Experiment::Run), and stream
//                       each completed run to the submission's RecordFn in
//                       completion order. The streamed payload is exactly
//                       the offline JsonlSink line (JsonlRecordLine), which
//                       is what makes serve-mode output byte-comparable to
//                       `eastool --request` replay; records carry their
//                       index so clients can reorder.
//   DoneFn              fires once per submission after its last record.
//
// Determinism: each job is an independent seeded spec (the ExperimentRunner
// contract), so per-run results are bit-identical to offline execution for
// any worker count; only cross-submission completion interleaving varies.

#ifndef SRC_SERVICE_EXPERIMENT_SERVICE_H_
#define SRC_SERVICE_EXPERIMENT_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/run_request.h"
#include "src/service/wire.h"
#include "src/service/work_queue.h"
#include "src/sim/scenario_cache.h"

namespace eas {

struct ServiceOptions {
  // Job (= run) slots in the admission queue; a submission needing more
  // free slots than remain is rejected whole with kQueueFull.
  std::size_t queue_depth = 64;

  // Worker threads; 0 picks the hardware concurrency.
  std::size_t workers = 0;

  // Tests set false to exercise admission without execution (the queue
  // never drains, so queue-full behavior is deterministic).
  bool start_workers = true;
};

// One completed run as streamed to a submission's RecordFn.
struct StreamedRecord {
  std::uint64_t submission = 0;  // service-wide submission id
  std::size_t index = 0;         // record position within the submission
  std::size_t total = 1;         // records the submission produces
  std::string tag;               // the request's tag ("" = untagged)
  std::string jsonl;             // byte-exact offline JsonlSink line
};

struct SubmitResult {
  std::uint64_t submission = 0;
  std::size_t records = 0;
};

class ExperimentService {
 public:
  // Called per completed run, from a worker thread; calls for one
  // submission may be concurrent with calls for another, so sinks shared
  // across submissions need their own lock.
  using RecordFn = std::function<void(const StreamedRecord&)>;

  // Called once per submission after its last record. `error` is empty on
  // success, or the first run failure's diagnostic (runs are pre-validated
  // at resolve time, so this is exceptional).
  using DoneFn = std::function<void(std::uint64_t submission, std::size_t records,
                                    const std::string& error)>;

  explicit ExperimentService(ServiceOptions options = {});
  ~ExperimentService();

  ExperimentService(const ExperimentService&) = delete;
  ExperimentService& operator=(const ExperimentService&) = delete;

  // Submits one request (multi-line or single-line `key = value` text).
  Expected<SubmitResult> Submit(const std::string& request_text, RecordFn on_record,
                                DoneFn on_done = nullptr);

  // Submits a group of requests atomically: every request parses, resolves
  // and fits the queue, or none is admitted. The error of the first
  // offending request is returned (its `line` refers to that request's own
  // text).
  Expected<std::vector<SubmitResult>> SubmitBatch(const std::vector<std::string>& request_texts,
                                                  RecordFn on_record, DoneFn on_done = nullptr);

  ServiceStatusSnapshot Status() const;

  // Blocks until every admitted job has completed (meaningful only with
  // workers running).
  void Drain();

  // Stops admission, drains the already-admitted backlog, joins workers.
  // Idempotent; the destructor calls it.
  void Shutdown();

 private:
  // Shared fate of one submission: jobs hold a reference, the last
  // completed run fires on_done.
  struct Submission {
    std::uint64_t id = 0;
    RunRequest request;        // as resolved (carries the tag)
    std::vector<ExperimentSpec> specs;
    RecordFn on_record;
    DoneFn on_done;
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mutex;
    std::string error;         // first failure's diagnostic
  };

  struct Job {
    std::shared_ptr<Submission> submission;
    std::size_t index = 0;
  };

  void WorkerLoop();
  void RunJob(const Job& job);
  void FinishJob();

  ServiceOptions options_;
  ScenarioCache cache_;
  BoundedWorkQueue<Job> queue_;
  std::vector<std::thread> workers_;

  std::atomic<bool> shutting_down_{false};
  bool shut_down_ = false;  // Shutdown() ran (guarded by drain_mutex_)

  // Guards (id assignment, queue push) as one step: ids must be written
  // into the submissions before their jobs become visible to workers, and
  // a rejected batch hands its ids back so clients never see an id that
  // went nowhere.
  std::mutex admission_mutex_;
  std::uint64_t next_submission_ = 1;  // guarded by admission_mutex_
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> completed_runs_{0};
  std::atomic<std::size_t> completed_submissions_{0};
  std::atomic<std::size_t> rejected_submissions_{0};

  // Admitted jobs not yet completed; Drain waits for 0.
  mutable std::mutex drain_mutex_;
  std::condition_variable drained_;
  std::size_t outstanding_jobs_ = 0;

  // The status endpoint's uptime/throughput are observability about the
  // host process, not simulation state; they never feed a RunResult.
  // easlint: allow(determinism-wall-clock) -- service uptime metric, reporting only
  std::chrono::steady_clock::time_point start_time_ = std::chrono::steady_clock::now();
};

}  // namespace eas

#endif  // SRC_SERVICE_EXPERIMENT_SERVICE_H_
