#include "src/service/experiment_server.h"

#include <condition_variable>
#include <cstdlib>
#include <utility>

namespace eas {
namespace {

// Per-connection state shared between the handler thread and the service
// worker threads streaming this connection's records. Callbacks hold a
// shared_ptr, so the channel outlives the handler until the last record of
// the last outstanding submission has been written.
struct Connection {
  explicit Connection(int fd) : channel(fd) {}

  LineChannel channel;
  std::mutex write_mutex;  // serializes handler replies with record streams

  std::mutex pending_mutex;
  std::condition_variable all_done;
  std::size_t pending_submissions = 0;

  bool Write(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex);
    return channel.WriteLine(line);
  }

  void SubmissionFinished() {
    std::lock_guard<std::mutex> lock(pending_mutex);
    --pending_submissions;
    all_done.notify_all();
  }

  void WaitAllDone() {
    std::unique_lock<std::mutex> lock(pending_mutex);
    all_done.wait(lock, [this] { return pending_submissions == 0; });
  }
};

RequestError ProtocolError(std::string message) {
  RequestError error;
  error.code = RequestErrorCode::kProtocol;
  error.message = std::move(message);
  return error;
}

}  // namespace

Expected<std::unique_ptr<ExperimentServer>> ExperimentServer::Start(ServerOptions options) {
  auto socket = UnixServerSocket::Bind(options.socket_path);
  if (!socket.ok()) {
    return socket.error();
  }
  std::unique_ptr<ExperimentServer> server(
      new ExperimentServer(std::move(options), std::move(*socket)));
  return server;
}

ExperimentServer::ExperimentServer(ServerOptions options, UnixServerSocket socket)
    : service_options_(options.service),
      service_(options.service),
      socket_(std::make_unique<UnixServerSocket>(std::move(socket))) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

ExperimentServer::~ExperimentServer() {
  Stop();
  Wait();
}

void ExperimentServer::AcceptLoop() {
  while (!stop_.load()) {
    // The poll timeout is how often the loop re-checks the stop flag.
    std::optional<int> fd = socket_->Accept(/*timeout_ms=*/200);
    if (!fd.has_value()) {
      continue;
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.emplace_back([this, client = *fd] { HandleConnection(client); });
  }
}

void ExperimentServer::HandleConnection(int fd) {
  auto conn = std::make_shared<Connection>(fd);

  // Submits `texts` as one atomic group and writes the acks/errors. The
  // write mutex is held across the submit so every `sub` ack reaches the
  // client before the first `rec` of that group can be written.
  const auto submit = [this, conn](const std::vector<std::string>& texts) {
    if (stop_.load()) {
      conn->Write("err " + RequestErrorToJson(RequestError{
                               RequestErrorCode::kShuttingDown, "", 0,
                               "service is shutting down; no new submissions"}));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(conn->pending_mutex);
      conn->pending_submissions += texts.size();
    }
    std::lock_guard<std::mutex> write_lock(conn->write_mutex);
    auto results = service_.SubmitBatch(
        texts,
        [conn](const StreamedRecord& record) {
          conn->Write("rec " + std::to_string(record.submission) + " " +
                      std::to_string(record.index) + " " + record.jsonl);
        },
        [conn](std::uint64_t id, std::size_t records, const std::string& error) {
          if (!error.empty()) {
            conn->Write("err " + RequestErrorToJson(RequestError{
                                     RequestErrorCode::kIo, "", 0,
                                     "submission " + std::to_string(id) + ": " + error}));
          }
          conn->Write("ok " + std::to_string(id) + " " + std::to_string(records));
          conn->SubmissionFinished();
        });
    if (!results.ok()) {
      {
        std::lock_guard<std::mutex> lock(conn->pending_mutex);
        conn->pending_submissions -= texts.size();
        conn->all_done.notify_all();
      }
      conn->channel.WriteLine("err " + RequestErrorToJson(results.error()));
      return;
    }
    for (const SubmitResult& result : *results) {
      conn->channel.WriteLine("sub " + std::to_string(result.submission) + " " +
                              std::to_string(result.records));
    }
  };

  std::string line;
  while (conn->channel.ReadLine(&line)) {
    if (line.rfind("run ", 0) == 0) {
      submit({line.substr(4)});
      continue;
    }
    if (line.rfind("batch ", 0) == 0) {
      char* end = nullptr;
      const long count = std::strtol(line.c_str() + 6, &end, 10);
      if (count <= 0 || (end != nullptr && *end != '\0')) {
        conn->Write("err " + RequestErrorToJson(
                                 ProtocolError("bad batch count in \"" + line + "\"")));
        continue;
      }
      std::vector<std::string> texts;
      bool bad = false;
      for (long i = 0; i < count; ++i) {
        std::string member;
        if (!conn->channel.ReadLine(&member) || member.rfind("run ", 0) != 0) {
          conn->Write("err " + RequestErrorToJson(ProtocolError(
                                   "batch expected " + std::to_string(count) +
                                   " run lines, got \"" + member + "\"")));
          bad = true;
          break;
        }
        texts.push_back(member.substr(4));
      }
      if (!bad) {
        submit(texts);
      }
      continue;
    }
    if (line == "status") {
      conn->Write("status " + ServiceStatusToJson(service_.Status()));
      continue;
    }
    if (line == "done") {
      conn->WaitAllDone();
      conn->Write("end");
      break;
    }
    if (line == "shutdown") {
      conn->WaitAllDone();
      conn->Write("end");
      stop_.store(true);
      break;
    }
    conn->Write("err " + RequestErrorToJson(ProtocolError("unknown verb: \"" + line + "\"")));
  }
  // conn stays alive through the callbacks' shared_ptr until the last
  // outstanding record is streamed; nothing to wait for here.
}

void ExperimentServer::Wait() {
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Drain every admitted job (workers finish the backlog, then exit)...
  service_.Shutdown();
  // ...then reap the connection handlers; their clients see EOF or `end`.
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) {
    connection.join();
  }
}

}  // namespace eas
