// BoundedWorkQueue: the service's admission-controlled job queue.
//
// The experiment service (src/service/experiment_service.h) must reject
// load it cannot hold rather than buffer without bound - a resident daemon
// that queues arbitrarily is a memory leak with a socket. The queue is a
// fixed-capacity MPMC buffer with two deliberate properties:
//
//   all-or-nothing admission   TryPushBatch admits a whole batch or none of
//                              it. A submission expands into one job per
//                              run; admitting half a submission would
//                              stream half its records and leave the client
//                              unable to tell backpressure from loss. The
//                              caller turns a refusal into an explicit
//                              queue-full error.
//   drain-on-shutdown          Shutdown() stops admission immediately but
//                              Pop keeps handing out already-admitted jobs
//                              until the queue is empty; workers exit only
//                              then. Accepted work always completes -
//                              "clean shutdown" means drained, not dropped.

#ifndef SRC_SERVICE_WORK_QUEUE_H_
#define SRC_SERVICE_WORK_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace eas {

template <typename T>
class BoundedWorkQueue {
 public:
  explicit BoundedWorkQueue(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  // Admits every job of `batch` (in order) iff the queue has room for all
  // of them and is not shut down; false otherwise, leaving the queue
  // untouched.
  bool TryPushBatch(std::vector<T> batch) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ || jobs_.size() + batch.size() > capacity_) {
      return false;
    }
    for (T& job : batch) {
      jobs_.push_back(std::move(job));
    }
    ready_.notify_all();
    return true;
  }

  // Blocks until a job is available or the queue is shut down AND empty;
  // nullopt only in the latter case (shutdown drains, it does not drop).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return !jobs_.empty() || shutdown_; });
    if (jobs_.empty()) {
      return std::nullopt;
    }
    T job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
  }

  // Stops admission; blocked Pops return once the backlog drains.
  void Shutdown() {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> jobs_;
  bool shutdown_ = false;
};

}  // namespace eas

#endif  // SRC_SERVICE_WORK_QUEUE_H_
