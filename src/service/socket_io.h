// Minimal Unix-domain stream sockets for the experiment service.
//
// The service listens on a filesystem socket path - local-only by
// construction (no TCP port to firewall), access-controlled by directory
// permissions, and trivially namespaced per test via TMPDIR. This header
// wraps the raw fd plumbing in three small pieces:
//
//   UnixServerSocket   bind+listen on a path (stale socket files from a
//                      crashed predecessor are unlinked first); Accept with
//                      a poll timeout so the accept loop can observe a stop
//                      flag; unlinks the path on destruction
//   ConnectUnix        client connect, as a plain fd
//   LineChannel        newline-framed reads/writes over an fd: ReadLine
//                      buffers partial reads, WriteLine loops partial
//                      writes. Framing only - message semantics live in
//                      wire.h
//
// Everything reports failure as RequestError (code kIo) so transport and
// request errors flow through the same client-facing type.

#ifndef SRC_SERVICE_SOCKET_IO_H_
#define SRC_SERVICE_SOCKET_IO_H_

#include <optional>
#include <string>

#include "src/api/request_error.h"

namespace eas {

class UnixServerSocket {
 public:
  // Binds and listens on `path`; an existing socket file there is replaced
  // (a daemon that crashed leaves one behind).
  static Expected<UnixServerSocket> Bind(const std::string& path);

  UnixServerSocket(UnixServerSocket&& other) noexcept;
  UnixServerSocket& operator=(UnixServerSocket&&) = delete;
  UnixServerSocket(const UnixServerSocket&) = delete;
  ~UnixServerSocket();

  // Waits up to `timeout_ms` for a connection; the connected fd, or nullopt
  // on timeout (the accept loop's chance to check its stop flag) or error.
  std::optional<int> Accept(int timeout_ms);

  const std::string& path() const { return path_; }

 private:
  UnixServerSocket(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

// Connects to the server socket at `path`; the fd on success.
Expected<int> ConnectUnix(const std::string& path);

// Newline-framed line I/O over a connected fd. Owns and closes the fd.
// ReadLine is single-reader; WriteLine is not internally locked - callers
// with concurrent writers (the server's record streaming) serialize with
// their own mutex.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}
  LineChannel(LineChannel&& other) noexcept;
  LineChannel& operator=(LineChannel&&) = delete;
  LineChannel(const LineChannel&) = delete;
  ~LineChannel();

  // Reads the next '\n'-terminated line (terminator stripped); false on
  // EOF or error (a final unterminated fragment is delivered first).
  bool ReadLine(std::string* line);

  // Writes `line` plus the '\n' frame; false once the peer is gone.
  bool WriteLine(const std::string& line);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace eas

#endif  // SRC_SERVICE_SOCKET_IO_H_
