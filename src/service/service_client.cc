#include "src/service/service_client.h"

#include <cstdlib>

namespace eas {
namespace {

RequestError TransportError(std::string message) {
  RequestError error;
  error.code = RequestErrorCode::kIo;
  error.message = std::move(message);
  return error;
}

}  // namespace

Expected<ServiceClient> ServiceClient::Connect(const std::string& socket_path) {
  auto fd = ConnectUnix(socket_path);
  if (!fd.ok()) {
    return fd.error();
  }
  return ServiceClient(*fd);
}

Expected<SubmitOutcome> ServiceClient::SubmitAndStream(
    const std::vector<std::string>& request_texts,
    const std::function<void(const ClientRecord&)>& on_record) {
  if (request_texts.empty()) {
    return SubmitOutcome{};
  }
  if (request_texts.size() > 1 &&
      !channel_->WriteLine("batch " + std::to_string(request_texts.size()))) {
    return TransportError("connection lost while submitting");
  }
  for (const std::string& text : request_texts) {
    if (!channel_->WriteLine("run " + text)) {
      return TransportError("connection lost while submitting");
    }
  }

  SubmitOutcome outcome;
  std::size_t open_submissions = 0;
  bool acks_pending = true;
  std::string line;
  // Collect `sub` acks (or the group's `err`), then stream `rec` lines
  // until every admitted submission has reported `ok`.
  while ((acks_pending || open_submissions > 0) && channel_->ReadLine(&line)) {
    if (line.rfind("sub ", 0) == 0) {
      char* end = nullptr;
      const std::uint64_t id = std::strtoull(line.c_str() + 4, &end, 10);
      const std::size_t records =
          end != nullptr ? static_cast<std::size_t>(std::strtoull(end, nullptr, 10)) : 0;
      outcome.submissions.emplace_back(id, records);
      ++open_submissions;
      if (outcome.submissions.size() == request_texts.size()) {
        acks_pending = false;
      }
      continue;
    }
    if (line.rfind("rec ", 0) == 0) {
      ClientRecord record;
      char* end = nullptr;
      record.submission = std::strtoull(line.c_str() + 4, &end, 10);
      record.index = static_cast<std::size_t>(std::strtoull(end, &end, 10));
      if (end != nullptr && *end == ' ') {
        ++end;
      }
      record.jsonl = std::string(end != nullptr ? end : "");
      ++outcome.records;
      if (on_record) {
        on_record(record);
      }
      continue;
    }
    if (line.rfind("ok ", 0) == 0) {
      --open_submissions;
      continue;
    }
    if (line.rfind("err ", 0) == 0) {
      return RequestErrorFromJson(line.substr(4));
    }
    return TransportError("unexpected server message: \"" + line + "\"");
  }
  if (acks_pending || open_submissions > 0) {
    return TransportError("connection lost mid-stream");
  }
  return outcome;
}

Expected<std::string> ServiceClient::QueryStatus() {
  if (!channel_->WriteLine("status")) {
    return TransportError("connection lost");
  }
  std::string line;
  if (!channel_->ReadLine(&line)) {
    return TransportError("connection lost awaiting status");
  }
  if (line.rfind("status ", 0) != 0) {
    if (line.rfind("err ", 0) == 0) {
      return RequestErrorFromJson(line.substr(4));
    }
    return TransportError("unexpected server message: \"" + line + "\"");
  }
  return line.substr(7);
}

Expected<bool> ServiceClient::RequestShutdown() {
  if (!channel_->WriteLine("shutdown")) {
    return TransportError("connection lost");
  }
  std::string line;
  while (channel_->ReadLine(&line)) {
    if (line == "end") {
      return true;
    }
  }
  return TransportError("connection lost awaiting shutdown ack");
}

}  // namespace eas
