// ServiceClient: the client half of the experiment service protocol.
//
// Wraps one connection to a running `eastool serve` daemon and turns the
// wire verbs of wire.h into calls: submit a group of requests and stream
// their records back, query status, request shutdown. eastool's
// submit/status/shutdown verbs and the end-to-end tests are thin layers
// over this class, so they cannot drift from the protocol.
//
// Records arrive in completion order; each carries its submission id and
// record index, so callers that need offline-file-identical output (eastool
// submit --jsonl) reorder by index per submission before writing.

#ifndef SRC_SERVICE_SERVICE_CLIENT_H_
#define SRC_SERVICE_SERVICE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/service/socket_io.h"
#include "src/service/wire.h"

namespace eas {

// One streamed record as the client sees it.
struct ClientRecord {
  std::uint64_t submission = 0;
  std::size_t index = 0;
  std::string jsonl;  // byte-exact offline JsonlSink line
};

// What a submission group came back as.
struct SubmitOutcome {
  // Admitted submissions, in request order (id, record count).
  std::vector<std::pair<std::uint64_t, std::size_t>> submissions;
  std::size_t records = 0;  // records streamed in total
};

class ServiceClient {
 public:
  // Connects to the daemon at `socket_path`.
  static Expected<ServiceClient> Connect(const std::string& socket_path);

  // Submits `request_texts` (single-line `key = value; ...` each) as one
  // atomic group and blocks until every record has streamed back, invoking
  // `on_record` per record in arrival (completion) order. Returns the
  // outcome, or the server's rejection.
  Expected<SubmitOutcome> SubmitAndStream(const std::vector<std::string>& request_texts,
                                          const std::function<void(const ClientRecord&)>& on_record);

  // The `status` verb; the raw status JSON object.
  Expected<std::string> QueryStatus();

  // The `shutdown` verb; returns once the server acknowledged with `end`.
  Expected<bool> RequestShutdown();

 private:
  explicit ServiceClient(int fd) : channel_(std::make_unique<LineChannel>(fd)) {}

  std::unique_ptr<LineChannel> channel_;
};

}  // namespace eas

#endif  // SRC_SERVICE_SERVICE_CLIENT_H_
