// The experiment service's wire protocol.
//
// One Unix-domain stream socket, newline-framed UTF-8 lines, one message
// per line - greppable with socat, no binary framing to version. Client ->
// server:
//
//   run <request>        submit one request; <request> is the single-line
//                        `key = value; ...` form (FormatRunRequestLine)
//   batch <n>            the next <n> `run` lines are one atomic group:
//                        either every request is admitted or none is
//   status               report service counters
//   done                 no more submissions; server answers `end` once
//                        every submission of this connection has completed
//   shutdown             drain and stop the whole service
//
// Server -> client:
//
//   sub <id> <runs>      a submission was admitted: its service-wide id and
//                        how many records it will stream (acks arrive in
//                        submission order, so clients map ids to requests)
//   rec <id> <index> <json>
//                        one completed run. <json> is byte-for-byte the
//                        line an offline JsonlSink would have written for
//                        this record (JsonlRecordLine) - that identity is
//                        the protocol's determinism contract. Records
//                        arrive in completion order; <index> is the
//                        record's position within its submission, so
//                        clients reorder when they need file-identical
//                        output.
//   ok <id> <records>    submission <id> finished; all its records have
//                        been streamed
//   err <json>           a submission (or protocol message) was rejected;
//                        <json> is the serialized RequestError
//   status <json>        the counters `status` asked for
//   end                  reply to done/shutdown; the connection is finished
//
// This header carries the shared serialization helpers; framing lives in
// socket_io.h.

#ifndef SRC_SERVICE_WIRE_H_
#define SRC_SERVICE_WIRE_H_

#include <cstdint>
#include <string>

#include "src/api/request_error.h"

namespace eas {

// {"code": "bad-value", "key": "seed", "line": 2, "message": "...",
//  "render": "line 2: ..."} - code/key/line are what clients branch on,
// render is the exact string offline eastool would have printed.
std::string RequestErrorToJson(const RequestError& error);

// Parses the wire spelling back into a RequestError (clients surface
// server-side rejections with the same structure local parsing produces).
// Tolerates unknown fields; a line that is not an err payload comes back as
// a kProtocol error quoting it.
RequestError RequestErrorFromJson(const std::string& json);

// Counters the `status` verb reports; serialized as one flat JSON object.
struct ServiceStatusSnapshot {
  std::size_t queue_capacity = 0;
  std::size_t queued = 0;       // admitted jobs not yet picked up
  std::size_t in_flight = 0;    // jobs currently executing
  std::size_t completed_runs = 0;
  std::size_t completed_submissions = 0;
  std::size_t rejected_submissions = 0;
  std::size_t workers = 0;
  double uptime_s = 0.0;
  double runs_per_s = 0.0;      // completed_runs / uptime_s
  std::size_t scenario_cache_hits = 0;    // scenario + library hits combined
  std::size_t scenario_cache_misses = 0;  // scenario + library misses combined
  // The per-queue split behind the combined counters: scenario-spec builds
  // and program-library builds are cached (and therefore hit/miss) on
  // independent keys, so a cold library with a warm scenario set is visible.
  std::size_t cache_scenario_hits = 0;
  std::size_t cache_scenario_misses = 0;
  std::size_t cache_library_hits = 0;
  std::size_t cache_library_misses = 0;
};

std::string ServiceStatusToJson(const ServiceStatusSnapshot& status);

// Pulls one double/size_t field out of a flat status JSON object; the
// fallback when absent. Enough for the smoke test and eastool's status verb
// to sanity-check fields without a JSON parser dependency.
double StatusField(const std::string& json, const std::string& field, double fallback);

}  // namespace eas

#endif  // SRC_SERVICE_WIRE_H_
