#include "src/service/wire.h"

#include <cstdio>
#include <cstdlib>

#include "src/api/result_sink.h"

namespace eas {
namespace {

// Extracts the string value of `"field": "..."` from a flat JSON object
// produced by this file (no nested objects, escapes as JsonEscape writes
// them). Empty when absent.
std::string StringFieldOf(const std::string& json, const std::string& field) {
  const std::string needle = "\"" + field + "\": \"";
  const std::size_t start = json.find(needle);
  if (start == std::string::npos) {
    return "";
  }
  std::string out;
  for (std::size_t i = start + needle.size(); i < json.size(); ++i) {
    const char c = json[i];
    if (c == '\\' && i + 1 < json.size()) {
      const char next = json[++i];
      switch (next) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'u':
          // Only \u00XX controls are ever emitted; decode the low byte.
          if (i + 4 < json.size()) {
            out += static_cast<char>(std::strtol(json.substr(i + 3, 2).c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default:
          out += next;
      }
      continue;
    }
    if (c == '"') {
      break;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string RequestErrorToJson(const RequestError& error) {
  std::string json = "{\"code\": \"";
  json += RequestErrorCodeName(error.code);
  json += "\"";
  if (!error.key.empty()) {
    json += ", \"key\": \"" + JsonEscape(error.key) + "\"";
  }
  if (error.line > 0) {
    json += ", \"line\": " + std::to_string(error.line);
  }
  json += ", \"message\": \"" + JsonEscape(error.message) + "\"";
  json += ", \"render\": \"" + JsonEscape(error.Render()) + "\"";
  json += "}";
  return json;
}

RequestError RequestErrorFromJson(const std::string& json) {
  RequestError error;
  const std::string code = StringFieldOf(json, "code");
  if (code.empty()) {
    error.code = RequestErrorCode::kProtocol;
    error.message = "malformed error payload: " + json;
    return error;
  }
  // Reverse of RequestErrorCodeName; an unrecognized spelling (a newer
  // server) degrades to kProtocol but keeps the message intact.
  const std::pair<const char*, RequestErrorCode> kCodes[] = {
      {"syntax", RequestErrorCode::kSyntax},
      {"unknown-key", RequestErrorCode::kUnknownKey},
      {"duplicate-key", RequestErrorCode::kDuplicateKey},
      {"empty-value", RequestErrorCode::kEmptyValue},
      {"bad-value", RequestErrorCode::kBadValue},
      {"unknown-name", RequestErrorCode::kUnknownName},
      {"queue-full", RequestErrorCode::kQueueFull},
      {"shutting-down", RequestErrorCode::kShuttingDown},
      {"protocol", RequestErrorCode::kProtocol},
      {"io", RequestErrorCode::kIo},
  };
  error.code = RequestErrorCode::kProtocol;
  for (const auto& [name, value] : kCodes) {
    if (code == name) {
      error.code = value;
      break;
    }
  }
  error.key = StringFieldOf(json, "key");
  error.line = static_cast<std::size_t>(StatusField(json, "line", 0.0));
  error.message = StringFieldOf(json, "message");
  return error;
}

std::string ServiceStatusToJson(const ServiceStatusSnapshot& status) {
  char buffer[768];
  std::snprintf(buffer, sizeof(buffer),
                "{\"queue_capacity\": %zu, \"queued\": %zu, \"in_flight\": %zu, "
                "\"completed_runs\": %zu, \"completed_submissions\": %zu, "
                "\"rejected_submissions\": %zu, \"workers\": %zu, \"uptime_s\": %.3f, "
                "\"runs_per_s\": %.3f, \"scenario_cache_hits\": %zu, "
                "\"scenario_cache_misses\": %zu, \"cache_scenario_hits\": %zu, "
                "\"cache_scenario_misses\": %zu, \"cache_library_hits\": %zu, "
                "\"cache_library_misses\": %zu}",
                status.queue_capacity, status.queued, status.in_flight, status.completed_runs,
                status.completed_submissions, status.rejected_submissions, status.workers,
                status.uptime_s, status.runs_per_s, status.scenario_cache_hits,
                status.scenario_cache_misses, status.cache_scenario_hits,
                status.cache_scenario_misses, status.cache_library_hits,
                status.cache_library_misses);
  return std::string(buffer);
}

double StatusField(const std::string& json, const std::string& field, double fallback) {
  const std::string needle = "\"" + field + "\": ";
  const std::size_t start = json.find(needle);
  if (start == std::string::npos) {
    return fallback;
  }
  return std::strtod(json.c_str() + start + needle.size(), nullptr);
}

}  // namespace eas
