#include "src/topo/sched_domain.h"

#include <algorithm>
#include <cassert>

namespace eas {

bool CpuGroup::Contains(int cpu) const {
  return std::find(cpus.begin(), cpus.end(), cpu) != cpus.end();
}

bool SchedDomain::Contains(int cpu) const {
  return std::find(cpus.begin(), cpus.end(), cpu) != cpus.end();
}

const CpuGroup* SchedDomain::GroupOf(int cpu) const {
  for (const auto& group : groups) {
    if (group.Contains(cpu)) {
      return &group;
    }
  }
  return nullptr;
}

DomainHierarchy DomainHierarchy::Build(const CpuTopology& topology) {
  const std::vector<TopologyLevel>& levels = topology.levels();
  const std::size_t n = levels.size();
  DomainHierarchy hierarchy;
  int level = 0;

  // `cover[v]` is the index of the domain subdividing child unit v's subtree
  // (or -1 if the subtree is a single logical CPU wide). It starts indexed by
  // physical package and coarsens one topology level per loop iteration.
  std::vector<int> cover(topology.num_physical(), -1);

  // SMT level: one domain per physical package; one group per logical CPU.
  if (topology.smt_per_physical() > 1) {
    for (std::size_t phys = 0; phys < topology.num_physical(); ++phys) {
      SchedDomain domain;
      domain.level = level;
      domain.flags = kDomainNoEnergyBalance;
      domain.name = "smt" + std::to_string(phys);
      for (std::size_t t = 0; t < topology.smt_per_physical(); ++t) {
        const int cpu = topology.LogicalId(phys, t);
        domain.cpus.push_back(cpu);
        domain.groups.push_back(CpuGroup{{cpu}, -1});
      }
      cover[phys] = static_cast<int>(hierarchy.domains_.size());
      hierarchy.domains_.push_back(std::move(domain));
    }
    ++level;
  }

  // One domain level per topology level, bottom-up: level i's units become
  // the groups of a domain per parent unit at level i-1 (the whole machine
  // for i == 0). Width-1 levels collapse away; their cover carries over.
  bool created_above_smt = false;
  for (std::size_t i = n - 1; i-- > 0;) {
    const std::size_t fanout = levels[i].width;
    if (fanout <= 1) {
      continue;  // one child per parent: nothing to balance at this level
    }
    const std::size_t parent_units = i == 0 ? 1 : topology.UnitsAtLevel(i - 1);
    const std::size_t packages_per_child = topology.PackagesPerUnit(i);
    const int base_index = static_cast<int>(hierarchy.domains_.size());
    for (std::size_t u = 0; u < parent_units; ++u) {
      SchedDomain domain;
      domain.level = level;
      domain.name = i == 0 ? "top" : levels[i - 1].name + std::to_string(u);
      if (i + 2 < n) {
        domain.flags |= kDomainCrossesNode;  // groups node-or-coarser units
      }
      for (std::size_t c = 0; c < fanout; ++c) {
        const std::size_t child = u * fanout + c;
        CpuGroup group;
        group.child_domain = cover[child];
        const std::size_t first_package = child * packages_per_child;
        for (std::size_t p = first_package; p < first_package + packages_per_child; ++p) {
          for (std::size_t t = 0; t < topology.smt_per_physical(); ++t) {
            const int cpu = topology.LogicalId(p, t);
            group.cpus.push_back(cpu);
            domain.cpus.push_back(cpu);
          }
        }
        domain.groups.push_back(std::move(group));
      }
      hierarchy.domains_.push_back(std::move(domain));
    }
    created_above_smt = true;
    ++level;
    cover.assign(parent_units, -1);
    for (std::size_t u = 0; u < parent_units; ++u) {
      cover[u] = base_index + static_cast<int>(u);
    }
  }

  // Single-package machines still get one domain above SMT so every CPU has
  // a (possibly trivial) balancing scope - the legacy "node0" of 1:1:s.
  if (!created_above_smt) {
    assert(topology.num_physical() == 1);
    SchedDomain domain;
    domain.level = level;
    domain.name = n >= 3 ? levels[n - 3].name + "0" : "top";
    CpuGroup group;
    group.child_domain = cover[0];
    for (std::size_t t = 0; t < topology.smt_per_physical(); ++t) {
      const int cpu = topology.LogicalId(0, t);
      group.cpus.push_back(cpu);
      domain.cpus.push_back(cpu);
    }
    domain.groups.push_back(std::move(group));
    hierarchy.domains_.push_back(std::move(domain));
    ++level;
  }

  hierarchy.num_levels_ = static_cast<std::size_t>(level);
  int next_group = 0;
  for (SchedDomain& domain : hierarchy.domains_) {
    for (CpuGroup& group : domain.groups) {
      group.index = next_group++;
    }
  }
  hierarchy.num_groups_ = static_cast<std::size_t>(next_group);
  hierarchy.BuildStacks(topology.num_logical());
  return hierarchy;
}

void DomainHierarchy::BuildStacks(std::size_t num_cpus) {
  stacks_.assign(num_cpus, {});
  // domains_ is ordered by ascending level, so each CPU's stack comes out
  // bottom-up without sorting.
  for (const SchedDomain& domain : domains_) {
    for (const CpuGroup& group : domain.groups) {
      for (int cpu : group.cpus) {
        stacks_[static_cast<std::size_t>(cpu)].push_back(DomainCursor{&domain, &group});
      }
    }
  }
}

DomainHierarchy::DomainHierarchy(const DomainHierarchy& other)
    : domains_(other.domains_),
      num_levels_(other.num_levels_),
      num_groups_(other.num_groups_) {
  BuildStacks(other.stacks_.size());
}

DomainHierarchy& DomainHierarchy::operator=(const DomainHierarchy& other) {
  if (this != &other) {
    domains_ = other.domains_;
    num_levels_ = other.num_levels_;
    num_groups_ = other.num_groups_;
    BuildStacks(other.stacks_.size());
  }
  return *this;
}

std::vector<const SchedDomain*> DomainHierarchy::DomainsFor(int cpu) const {
  std::vector<const SchedDomain*> result;
  const std::vector<DomainCursor>& stack = stacks_[static_cast<std::size_t>(cpu)];
  result.reserve(stack.size());
  for (const DomainCursor& cursor : stack) {
    result.push_back(cursor.domain);
  }
  return result;
}

}  // namespace eas
