#include "src/topo/sched_domain.h"

#include <algorithm>

namespace eas {

bool CpuGroup::Contains(int cpu) const {
  return std::find(cpus.begin(), cpus.end(), cpu) != cpus.end();
}

bool SchedDomain::Contains(int cpu) const {
  return std::find(cpus.begin(), cpus.end(), cpu) != cpus.end();
}

const CpuGroup* SchedDomain::GroupOf(int cpu) const {
  for (const auto& group : groups) {
    if (group.Contains(cpu)) {
      return &group;
    }
  }
  return nullptr;
}

DomainHierarchy DomainHierarchy::Build(const CpuTopology& topology) {
  DomainHierarchy hierarchy;
  int level = 0;

  // SMT level: one domain per physical package; one group per logical CPU.
  if (topology.smt_per_physical() > 1) {
    for (std::size_t phys = 0; phys < topology.num_physical(); ++phys) {
      SchedDomain domain;
      domain.level = level;
      domain.flags = kDomainNoEnergyBalance;
      domain.name = "smt" + std::to_string(phys);
      for (std::size_t t = 0; t < topology.smt_per_physical(); ++t) {
        const int cpu = topology.LogicalId(phys, t);
        domain.cpus.push_back(cpu);
        domain.groups.push_back(CpuGroup{{cpu}});
      }
      hierarchy.domains_.push_back(std::move(domain));
    }
    ++level;
  }

  // Node level: one domain per node; one group per physical package.
  if (topology.physical_per_node() > 1 || topology.num_nodes() == 1) {
    for (std::size_t node = 0; node < topology.num_nodes(); ++node) {
      SchedDomain domain;
      domain.level = level;
      domain.name = "node" + std::to_string(node);
      for (std::size_t p = 0; p < topology.physical_per_node(); ++p) {
        const std::size_t phys = node * topology.physical_per_node() + p;
        CpuGroup group;
        for (std::size_t t = 0; t < topology.smt_per_physical(); ++t) {
          const int cpu = topology.LogicalId(phys, t);
          group.cpus.push_back(cpu);
          domain.cpus.push_back(cpu);
        }
        domain.groups.push_back(std::move(group));
      }
      hierarchy.domains_.push_back(std::move(domain));
    }
    ++level;
  }

  // Top level: one domain spanning the system; one group per node.
  if (topology.num_nodes() > 1) {
    SchedDomain domain;
    domain.level = level;
    domain.flags = kDomainCrossesNode;
    domain.name = "top";
    for (std::size_t node = 0; node < topology.num_nodes(); ++node) {
      CpuGroup group;
      for (std::size_t p = 0; p < topology.physical_per_node(); ++p) {
        const std::size_t phys = node * topology.physical_per_node() + p;
        for (std::size_t t = 0; t < topology.smt_per_physical(); ++t) {
          const int cpu = topology.LogicalId(phys, t);
          group.cpus.push_back(cpu);
          domain.cpus.push_back(cpu);
        }
      }
      domain.groups.push_back(std::move(group));
    }
    hierarchy.domains_.push_back(std::move(domain));
    ++level;
  }

  hierarchy.num_levels_ = static_cast<std::size_t>(level);
  return hierarchy;
}

std::vector<const SchedDomain*> DomainHierarchy::DomainsFor(int cpu) const {
  std::vector<const SchedDomain*> result;
  for (const auto& domain : domains_) {
    if (domain.Contains(cpu)) {
      result.push_back(&domain);
    }
  }
  std::sort(result.begin(), result.end(),
            [](const SchedDomain* a, const SchedDomain* b) { return a->level < b->level; });
  return result;
}

}  // namespace eas
