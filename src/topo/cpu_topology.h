// CPU topology: an arbitrary-depth tree of repeated units, described as a
// level list (outermost first, innermost level = SMT threads). The classic
// machine is the 3-level list node x package x smt; cluster-scale machines
// stack more levels on top (e.g. rack -> board -> socket -> package -> smt),
// with every unit's identity being its path in that tree.
//
// Logical CPU numbering follows the paper's machine (Section 6.4): sibling
// IDs differ in the most significant bit, i.e. logical = thread * num_physical
// + physical. On the 8-way 2-thread xSeries 445, CPU 0's sibling is CPU 8,
// CPUs 0-3 (+ siblings 8-11) live on node 0, CPUs 4-7 (+12-15) on node 1.
// Physical packages are numbered by flattening the level tree outermost
// first, so a unit at level i always covers a contiguous package range.

#ifndef SRC_TOPO_CPU_TOPOLOGY_H_
#define SRC_TOPO_CPU_TOPOLOGY_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace eas {

// One level of the topology tree: `width` units of the next level down per
// unit of this one. `name` feeds domain naming and error messages only.
struct TopologyLevel {
  std::string name;
  std::size_t width = 1;
};

class CpuTopology {
 public:
  // Legacy 3-level constructor: nodes x physical-per-node x smt.
  CpuTopology(std::size_t num_nodes, std::size_t physical_per_node, std::size_t smt_per_physical);

  // General form: levels outermost first, at least two (package-ish + smt);
  // the innermost level is always the SMT thread count.
  explicit CpuTopology(std::vector<TopologyLevel> levels);

  // The paper's evaluation machine: 2 nodes x 4 physical x 2 threads.
  static CpuTopology PaperXSeries445(bool smt_enabled);

  // The level list, outermost first; back() is the SMT level.
  const std::vector<TopologyLevel>& levels() const { return levels_; }
  std::size_t num_levels() const { return levels_.size(); }

  // Units at level i (flattened across all ancestors). Level num_levels()-2
  // is the physical-package level; level num_levels()-1 the logical CPUs.
  std::size_t UnitsAtLevel(std::size_t level) const;

  // Physical packages per unit at `level` (1 at the package level itself).
  std::size_t PackagesPerUnit(std::size_t level) const {
    return packages_per_unit_[level];
  }

  // Unit index (flattened) containing `logical` at topology level `level`
  // (level <= num_levels()-2).
  std::size_t UnitOf(int logical, std::size_t level) const;

  // Legacy grid accessors. For deep trees, "node" means the unit one level
  // above the package level (the cheapest level whose crossings carry the
  // paper's cache-affinity penalty).
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t physical_per_node() const { return physical_per_node_; }
  std::size_t smt_per_physical() const { return smt_per_physical_; }
  std::size_t num_physical() const { return num_physical_; }
  std::size_t num_logical() const { return num_physical_ * smt_per_physical_; }

  // Physical package of a logical CPU.
  std::size_t PhysicalOf(int logical) const;

  // NUMA node of a logical CPU.
  std::size_t NodeOf(int logical) const;

  // SMT thread index (0 .. smt_per_physical-1) of a logical CPU.
  std::size_t ThreadOf(int logical) const;

  // Logical CPU id for (physical package, thread index).
  int LogicalId(std::size_t physical, std::size_t thread) const;

  // All logical CPUs on the same physical package as `logical` (includes it).
  std::vector<int> SiblingsOf(int logical) const;

  // True if a and b share a physical package.
  bool AreSiblings(int a, int b) const;

  // True if a and b are on the same NUMA node.
  bool SameNode(int a, int b) const;

 private:
  void Finalize();

  std::vector<TopologyLevel> levels_;  // outermost first; back() = SMT
  // packages_per_unit_[i] = product of widths below level i (excluding SMT).
  std::vector<std::size_t> packages_per_unit_;
  std::size_t num_nodes_ = 1;
  std::size_t physical_per_node_ = 1;
  std::size_t smt_per_physical_ = 1;
  std::size_t num_physical_ = 1;
};

// Parses a colon-separated topology specification (the `eastool --topology`
// syntax): two or more level widths, outermost first, innermost = SMT.
// "2:4:1" is the classic nodes:physical-per-node:smt grid; deeper lists like
// "4:8:2:4:2" describe cluster-scale trees, and any token may carry a level
// name ("rack=4:board=8:socket=2:package=4:smt=2"). Full validation: every
// width a strictly positive integer with no trailing garbage (a `0` or
// "junk" token is rejected by token and position, not turned into a 0-CPU
// machine), depth and total CPU count capped to sane bounds.
std::optional<CpuTopology> ParseTopologySpec(const std::string& spec, std::string* error);

}  // namespace eas

#endif  // SRC_TOPO_CPU_TOPOLOGY_H_
