// CPU topology: nodes x physical packages x SMT threads.
//
// Logical CPU numbering follows the paper's machine (Section 6.4): sibling
// IDs differ in the most significant bit, i.e. logical = thread * num_physical
// + physical. On the 8-way 2-thread xSeries 445, CPU 0's sibling is CPU 8,
// CPUs 0-3 (+ siblings 8-11) live on node 0, CPUs 4-7 (+12-15) on node 1.

#ifndef SRC_TOPO_CPU_TOPOLOGY_H_
#define SRC_TOPO_CPU_TOPOLOGY_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace eas {

class CpuTopology {
 public:
  CpuTopology(std::size_t num_nodes, std::size_t physical_per_node, std::size_t smt_per_physical);

  // The paper's evaluation machine: 2 nodes x 4 physical x 2 threads.
  static CpuTopology PaperXSeries445(bool smt_enabled);

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t physical_per_node() const { return physical_per_node_; }
  std::size_t smt_per_physical() const { return smt_per_physical_; }
  std::size_t num_physical() const { return num_nodes_ * physical_per_node_; }
  std::size_t num_logical() const { return num_physical() * smt_per_physical_; }

  // Physical package of a logical CPU.
  std::size_t PhysicalOf(int logical) const;

  // NUMA node of a logical CPU.
  std::size_t NodeOf(int logical) const;

  // SMT thread index (0 .. smt_per_physical-1) of a logical CPU.
  std::size_t ThreadOf(int logical) const;

  // Logical CPU id for (physical package, thread index).
  int LogicalId(std::size_t physical, std::size_t thread) const;

  // All logical CPUs on the same physical package as `logical` (includes it).
  std::vector<int> SiblingsOf(int logical) const;

  // True if a and b share a physical package.
  bool AreSiblings(int a, int b) const;

  // True if a and b are on the same NUMA node.
  bool SameNode(int a, int b) const;

 private:
  std::size_t num_nodes_;
  std::size_t physical_per_node_;
  std::size_t smt_per_physical_;
};

// Parses a "nodes:physical-per-node:smt" topology specification (the
// `eastool --topology` syntax) with full validation: exactly three fields,
// every field a positive integer with no trailing garbage. Returns nullopt
// and sets `error` (if non-null) to a human-readable reason otherwise -
// "junk:0:x" must be rejected, not become a 0-CPU machine.
std::optional<CpuTopology> ParseTopologySpec(const std::string& spec, std::string* error);

}  // namespace eas

#endif  // SRC_TOPO_CPU_TOPOLOGY_H_
