// Per-package frequency scaling (DVFS): discrete P-states and the domain
// that tracks a physical package's current operating point.
//
// The paper's thermal management halts the whole package (hlt throttling,
// Sections 6.2/6.4) and explicitly names frequency scaling as the competing
// mechanism for capping package power. A FrequencyDomain models that
// alternative: a table of discrete P-states, each a (frequency multiplier,
// relative voltage) pair. Dynamic power scales ~ f*V^2, so each P-state
// carries a precomputed energy scale V^2 (the per-event energy factor; the
// event *rate* already scales with f through execution speed) and a power
// scale f*V^2 for a priori comparisons. Which P-state the package runs at is
// a policy decision made by a FrequencyGovernor (src/freq); the domain only
// holds hardware facts and residency statistics.

#ifndef SRC_TOPO_FREQUENCY_DOMAIN_H_
#define SRC_TOPO_FREQUENCY_DOMAIN_H_

#include <cstddef>
#include <vector>

#include "src/base/time.h"

namespace eas {

// One discrete operating point. P0 is always full speed (1.0, 1.0); deeper
// states trade frequency (and voltage) for power.
struct PState {
  double frequency_multiplier = 1.0;  // execution speed relative to P0
  double voltage = 1.0;               // supply voltage relative to P0

  // Per-event energy factor: E_event ~ V^2 (the f factor arrives through
  // the event rate, which follows execution speed).
  double EnergyScale() const { return voltage * voltage; }

  // Dynamic power relative to P0 at full utilization: f * V^2.
  double PowerScale() const { return frequency_multiplier * EnergyScale(); }
};

// An ordered P-state table, P0 (fastest) first. Shared by every package of
// a machine; per-package residency lives in the FrequencyDomain.
class PStateTable {
 public:
  PStateTable() : states_{PState{}} {}
  explicit PStateTable(std::vector<PState> states);

  // Five states patterned after a Pentium M-era ladder (the DVFS hardware
  // contemporary with the paper): 100/87/75/62/50 % frequency with voltage
  // easing from 1.0 to 0.8, i.e. dynamic power scales 1.0 down to 0.32.
  static PStateTable Default();

  std::size_t size() const { return states_.size(); }
  const PState& at(std::size_t i) const { return states_[i]; }
  std::size_t deepest() const { return states_.size() - 1; }

 private:
  std::vector<PState> states_;
};

// The frequency domain of one physical package: its current P-state plus
// residency statistics (ticks spent per P-state and the tick-weighted mean
// frequency multiplier, the quantities RunResult exports per CPU).
class FrequencyDomain {
 public:
  explicit FrequencyDomain(const PStateTable& table);

  const PStateTable& table() const { return table_; }
  std::size_t current() const { return current_; }
  const PState& state() const { return table_.at(current_); }

  double frequency_multiplier() const { return state().frequency_multiplier; }
  double energy_scale() const { return state().EnergyScale(); }

  // Clamped transitions; SetPState is the governor's direct interface.
  void SetPState(std::size_t index);
  void StepDown();  // one state deeper (slower), clamped at the deepest
  void StepUp();    // one state shallower (faster), clamped at P0

  // Records one tick of residency at the current P-state.
  void AccountTick();

  Tick residency_ticks(std::size_t pstate) const { return residency_[pstate]; }
  Tick total_ticks() const { return total_ticks_; }

  // Fraction of accounted ticks spent in `pstate` (0 if never accounted).
  double ResidencyFraction(std::size_t pstate) const;

  // Tick-weighted average frequency multiplier (1.0 if never accounted:
  // a domain that was never governed ran at P0 by definition).
  double AverageFrequency() const;

  void ResetAccounting();

 private:
  PStateTable table_;
  std::size_t current_ = 0;
  std::vector<Tick> residency_;
  Tick total_ticks_ = 0;
  double multiplier_ticks_ = 0.0;  // sum of frequency_multiplier per tick
};

}  // namespace eas

#endif  // SRC_TOPO_FREQUENCY_DOMAIN_H_
